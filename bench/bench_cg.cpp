// Figure 9: weak scaling of a conjugate-gradient solver on 2-D Poisson.
//
// The distinguishing effects reproduced here: Legate-GPU reaches ~85% of
// PETSc at small GPU counts (reshape penalty + launch overheads) and falls
// off past ~32 nodes because Legion's all-reduce carries a linear
// per-processor term that PETSc's MPI tree does not (the paper's footnoted
// known issue), landing near 65% at 192 GPUs.
#include "common.h"

#include <cmath>

#include "apps/workloads.h"
#include "baselines/petsc/petsc.h"
#include "baselines/ref/ref.h"
#include "solve/krylov.h"

namespace {

using namespace legate;

constexpr coord_t kRowsPerProc = 25600;
constexpr double kScale = 64.0;
constexpr int kIters = 20;

apps::HostProblem problem_for(int procs) {
  coord_t grid = static_cast<coord_t>(
      std::ceil(std::sqrt(static_cast<double>(kRowsPerProc) * procs)));
  return apps::poisson2d(grid);
}

struct LegateRun {
  double sim_per_iter;
  double wall_per_iter;
};

LegateRun run_legate_once(sim::ProcKind kind, int procs, const std::string& point,
                          int threads) {
  sim::PerfParams pp;
  sim::Machine machine = kind == sim::ProcKind::GPU ? sim::Machine::gpus(procs, pp)
                                                    : sim::Machine::sockets(procs, pp);
  rt::RuntimeOptions opts;
  opts.exec_threads = threads;
  opts.partition = lsr_bench::bench_partition();
  opts.fusion = lsr_bench::bench_fusion();
  rt::Runtime runtime(machine, opts);
  runtime.engine().set_cost_scale(kScale);
  apps::HostProblem prob = problem_for(procs);
  auto A = sparse::CsrMatrix::from_host(runtime, prob.rows, prob.cols, prob.indptr,
                                        prob.indices, prob.values);
  auto b = dense::DArray::full(runtime, prob.rows, 1.0);
  // Warm up: distributes the matrix and reaches the allocation steady state
  // (the paper times solver iterations, not data loading).
  auto warm = solve::cg(A, b, /*tol=*/0.0, 2);
  // Profile only the timed iterations, so the critical path attributes the
  // steady-state falloff (Fig. 9: allreduce time), not data distribution.
  lsr_bench::profile_begin(runtime.engine(), point);
  auto mbase = lsr_bench::metrics_begin(runtime, point);
  double t0 = runtime.sim_time();
  double w0 = lsr_bench::wall_now();
  auto res = solve::cg(A, b, /*tol=*/0.0, kIters);
  benchmark::DoNotOptimize(res.residual);
  runtime.fence();  // drain deferred launches before stopping the wall clock
  double wall = (lsr_bench::wall_now() - w0) / kIters;
  double sim_per_iter = (runtime.sim_time() - t0) / kIters;
  lsr_bench::metrics_end(runtime, point, mbase, sim_per_iter);
  lsr_bench::profile_end(runtime.engine(), point);
  lsr_bench::note_fusion(point, runtime);
  lsr_bench::diag_point_end(runtime, point);
  return {sim_per_iter, wall};
}

double run_legate(sim::ProcKind kind, int procs, const std::string& point) {
  int threads = lsr_bench::bench_threads();
  LegateRun run = run_legate_once(kind, procs, point, threads);
  double wall_seq = run.wall_per_iter;
  if (threads > 1) {
    // Sequential reference for the measured wall-clock speedup counter.
    wall_seq = run_legate_once(kind, procs, "", 1).wall_per_iter;
  }
  lsr_bench::note_wall(point, run.wall_per_iter, wall_seq, threads);
  return run.sim_per_iter;
}

double run_petsc(sim::ProcKind kind, int procs) {
  sim::PerfParams pp;
  baselines::mpisim::MpiSim sim(kind, procs, pp);
  sim.engine().set_cost_scale(kScale);
  apps::HostProblem prob = problem_for(procs);
  baselines::petsc::Mat A(sim, prob.rows, prob.cols, prob.indptr, prob.indices,
                          prob.values);
  baselines::petsc::Vec b(sim, std::vector<double>(
                                   static_cast<std::size_t>(prob.rows), 1.0));
  auto warm = baselines::petsc::ksp_cg(A, b, /*tol=*/0.0, 2);
  benchmark::DoNotOptimize(warm.residual);
  double t0 = sim.makespan();
  auto res = baselines::petsc::ksp_cg(A, b, /*tol=*/0.0, kIters);
  benchmark::DoNotOptimize(res.residual);
  return (sim.makespan() - t0) / kIters;
}

/// Plain sequential CG on the single-device baselines.
double run_ref(baselines::ref::Device dev, int scale_procs) {
  sim::PerfParams pp;
  baselines::ref::RefContext ctx(dev, pp);
  ctx.set_cost_scale(kScale);
  apps::HostProblem prob = problem_for(scale_procs);
  baselines::ref::RefCsr A(ctx, prob.rows, prob.cols, prob.indptr, prob.indices,
                           prob.values);
  baselines::ref::RefVector b(ctx, prob.rows, 1.0);
  double t0 = ctx.now();
  baselines::ref::RefVector x(ctx, prob.rows, 0.0);
  baselines::ref::RefVector r = b;
  baselines::ref::RefVector p = r;
  double rr = r.dot(r);
  for (int it = 0; it < kIters; ++it) {
    auto Ap = A.spmv(p);
    double alpha = rr / p.dot(Ap);
    x.axpy(alpha, p);
    r.axpy(-alpha, Ap);
    double rr_new = r.dot(r);
    p.xpay(rr_new / rr, r);
    rr = rr_new;
  }
  benchmark::DoNotOptimize(rr);
  return (ctx.now() - t0) / kIters;
}

void register_all() {
  using lsr_bench::register_point;
  for (int p : lsr_bench::gpu_points()) {
    std::string name = "Fig9/CG/Legate-GPU/" + std::to_string(p);
    register_point(name, p,
                   [p, name] { return run_legate(sim::ProcKind::GPU, p, name); });
    register_point("Fig9/CG/PETSc-GPU/" + std::to_string(p), p,
                   [p] { return run_petsc(sim::ProcKind::GPU, p); });
  }
  for (int p : lsr_bench::socket_points()) {
    std::string name = "Fig9/CG/Legate-CPU/" + std::to_string(p);
    register_point(name, p,
                   [p, name] { return run_legate(sim::ProcKind::CPU, p, name); });
    register_point("Fig9/CG/PETSc-CPU/" + std::to_string(p), p,
                   [p] { return run_petsc(sim::ProcKind::CPU, p); });
    register_point("Fig9/CG/SciPy/" + std::to_string(p), p, [p] {
      return run_ref(baselines::ref::Device::ScipyCpu, p);
    });
  }
  register_point("Fig9/CG/CuPy-1GPU/1", 1,
                 [] { return run_ref(baselines::ref::Device::CupyGpu, 1); });
}

const int registered = (register_all(), 0);

}  // namespace

LSR_BENCH_MAIN();
