// Ablation benchmarks for the design decisions the paper motivates:
//  * allocation coalescing + out-of-scope reuse (Section 4.2 / Fig. 5),
//  * key-partition reuse in the constraint solver (Section 4.1),
//  * the global-CSR reshape penalty (Section 3),
//  * Legion's all-reduce overhead vs an MPI-style tree (Fig. 9 footnote).
#include "common.h"

#include <cmath>

#include "apps/workloads.h"
#include "solve/krylov.h"
#include "sparse/csr.h"

namespace {

using namespace legate;

constexpr double kScale = 64.0;

/// Power iteration (x = A@x; x /= ||x||) on a banded matrix: the Fig. 5
/// workload. Returns seconds/iteration; exports copied bytes as counters.
void power_iteration_ablation(benchmark::State& state, bool coalescing,
                              const std::string& point) {
  sim::PerfParams pp;
  sim::Machine machine = sim::Machine::gpus(6, pp);
  rt::RuntimeOptions opts;
  opts.coalescing = coalescing;
  rt::Runtime runtime(machine, opts);
  runtime.engine().set_cost_scale(kScale);
  apps::HostProblem prob = apps::banded_matrix(240000, 5);
  auto A = sparse::CsrMatrix::from_host(runtime, prob.rows, prob.cols, prob.indptr,
                                        prob.indices, prob.values);
  auto x = dense::DArray::random(runtime, prob.rows, 3);
  for (int i = 0; i < 4; ++i) {  // warmup to steady state
    x = A.spmv(x);
    auto n = x.norm();
    x.iscale({1.0 / n.value, n.ready});
  }
  lsr_bench::profile_begin(runtime.engine(), point);
  double t0 = runtime.sim_time();
  auto st0 = runtime.engine().stats();
  constexpr int kIters = 10;
  for (int i = 0; i < kIters; ++i) {
    x = A.spmv(x);
    auto n = x.norm();
    x.iscale({1.0 / n.value, n.ready});
  }
  double sec = (runtime.sim_time() - t0) / kIters;
  lsr_bench::profile_end(runtime.engine(), point);
  for (auto _ : state) state.SetIterationTime(sec);
  const auto& st = runtime.engine().stats();
  state.counters["iters_per_s"] = 1.0 / sec;
  state.counters["copied_MB_per_iter"] =
      (st.bytes_intra + st.bytes_nvlink + st.bytes_ib - st0.bytes_intra -
       st0.bytes_nvlink - st0.bytes_ib) /
      1e6 / kIters;
}

/// Repeated aligned element-wise chains: with reuse the solver re-partitions
/// nothing after the first launch.
void partition_reuse_ablation(benchmark::State& state, bool reuse,
                              const std::string& point) {
  sim::PerfParams pp;
  sim::Machine machine = sim::Machine::gpus(6, pp);
  rt::RuntimeOptions opts;
  opts.partition_reuse = reuse;
  rt::Runtime runtime(machine, opts);
  runtime.engine().set_cost_scale(kScale);
  auto a = dense::DArray::full(runtime, 1 << 20, 1.0);
  auto b = dense::DArray::full(runtime, 1 << 20, 2.0);
  a.iadd(b);  // warmup
  long parts0 = runtime.partitions_created();
  lsr_bench::profile_begin(runtime.engine(), point);
  double t0 = runtime.sim_time();
  constexpr int kIters = 50;
  for (int i = 0; i < kIters; ++i) a.iadd(b);
  double sec = (runtime.sim_time() - t0) / kIters;
  lsr_bench::profile_end(runtime.engine(), point);
  for (auto _ : state) state.SetIterationTime(sec);
  state.counters["iters_per_s"] = 1.0 / sec;
  state.counters["partitions_per_iter"] =
      static_cast<double>(runtime.partitions_created() - parts0) / kIters;
}

/// SpMV with and without the Section-3 local reshape cost.
void reshape_ablation(benchmark::State& state, bool reshape,
                      const std::string& point) {
  sim::PerfParams pp;
  sim::Machine machine = sim::Machine::gpus(6, pp);
  rt::RuntimeOptions opts;
  opts.model_reshape = reshape;
  rt::Runtime runtime(machine, opts);
  runtime.engine().set_cost_scale(kScale);
  apps::HostProblem prob = apps::banded_matrix(240000, 5);
  auto A = sparse::CsrMatrix::from_host(runtime, prob.rows, prob.cols, prob.indptr,
                                        prob.indices, prob.values);
  auto x = dense::DArray::full(runtime, prob.rows, 1.0);
  auto warm = A.spmv(x);
  lsr_bench::profile_begin(runtime.engine(), point);
  double t0 = runtime.sim_time();
  constexpr int kIters = 10;
  for (int i = 0; i < kIters; ++i) {
    auto y = A.spmv(x);
    benchmark::DoNotOptimize(y.size());
  }
  double sec = (runtime.sim_time() - t0) / kIters;
  lsr_bench::profile_end(runtime.engine(), point);
  for (auto _ : state) state.SetIterationTime(sec);
  state.counters["iters_per_s"] = 1.0 / sec;
}

/// CG at 192 GPUs with Legion's all-reduce vs a hypothetical MPI-quality
/// tree (the fix the Legion developers planned, per the paper's footnote).
void allreduce_ablation(benchmark::State& state, bool legion_style,
                        const std::string& point) {
  sim::PerfParams pp;
  if (!legion_style) {
    pp.legate_allreduce_alpha = pp.mpi_allreduce_alpha;
    pp.legate_allreduce_linear = 0.0;
  }
  sim::Machine machine = sim::Machine::gpus(192, pp);
  rt::Runtime runtime(machine);
  runtime.engine().set_cost_scale(kScale);
  coord_t grid = static_cast<coord_t>(std::ceil(std::sqrt(25600.0 * 192)));
  apps::HostProblem prob = apps::poisson2d(grid);
  auto A = sparse::CsrMatrix::from_host(runtime, prob.rows, prob.cols, prob.indptr,
                                        prob.indices, prob.values);
  auto b = dense::DArray::full(runtime, prob.rows, 1.0);
  auto warm = solve::cg(A, b, 0.0, 2);
  lsr_bench::profile_begin(runtime.engine(), point);
  double t0 = runtime.sim_time();
  constexpr int kIters = 10;
  auto res = solve::cg(A, b, 0.0, kIters);
  benchmark::DoNotOptimize(res.residual);
  double sec = (runtime.sim_time() - t0) / kIters;
  lsr_bench::profile_end(runtime.engine(), point);
  for (auto _ : state) state.SetIterationTime(sec);
  state.counters["iters_per_s"] = 1.0 / sec;
}

void register_all() {
  auto reg = [](const std::string& name,
                void (*fn)(benchmark::State&, bool, const std::string&),
                bool flag) {
    benchmark::RegisterBenchmark(
        name.c_str(),
        [fn, flag, name](benchmark::State& s) { fn(s, flag, name); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  };
  reg("Ablation/Coalescing/on", power_iteration_ablation, true);
  reg("Ablation/Coalescing/off", power_iteration_ablation, false);
  reg("Ablation/PartitionReuse/on", partition_reuse_ablation, true);
  reg("Ablation/PartitionReuse/off", partition_reuse_ablation, false);
  reg("Ablation/Reshape/modeled", reshape_ablation, true);
  reg("Ablation/Reshape/off", reshape_ablation, false);
  reg("Ablation/Allreduce192/legion", allreduce_ablation, true);
  reg("Ablation/Allreduce192/mpi-tree", allreduce_ablation, false);
}

const int registered = (register_all(), 0);

}  // namespace

LSR_BENCH_MAIN();
