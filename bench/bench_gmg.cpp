// Figure 10: weak scaling of a two-level geometric multigrid solver
// (GMG-preconditioned CG on 2-D Poisson, injection restriction, weighted
// Jacobi smoother). No distributed reference exists, so the comparison is
// Legate-CPU vs SciPy and Legate-GPU vs CuPy, as in the paper.
//
// The V-cycle launches many *small* tasks (coarse-grid sweeps), which
// exposes Legate's task-launch overheads: CuPy ends up ~30% faster at one
// GPU even though the kernels are identical (Section 6.1).
#include "common.h"

#include <cmath>

#include "apps/workloads.h"
#include "baselines/ref/ref.h"
#include "solve/multigrid.h"

namespace {

using namespace legate;

constexpr coord_t kGridPerProc = 96;  // (96*sqrt(P))^2 unknowns
constexpr double kScale = 64.0;
constexpr int kIters = 10;

coord_t grid_for(int procs) {
  coord_t g = static_cast<coord_t>(
      std::llround(kGridPerProc * std::sqrt(static_cast<double>(procs))));
  return (g / 2) * 2;  // even, so injection restriction divides cleanly
}

double run_legate(sim::ProcKind kind, int procs, const std::string& point) {
  sim::PerfParams pp;
  sim::Machine machine = kind == sim::ProcKind::GPU ? sim::Machine::gpus(procs, pp)
                                                    : sim::Machine::sockets(procs, pp);
  rt::Runtime runtime(machine);
  runtime.engine().set_cost_scale(kScale);
  coord_t g = grid_for(procs);
  apps::HostProblem prob = apps::poisson2d(g);
  auto A = sparse::CsrMatrix::from_host(runtime, prob.rows, prob.cols, prob.indptr,
                                        prob.indices, prob.values);
  sparse::CsrMatrix R = solve::TwoLevelGmg::injection_2d(runtime, g);
  solve::TwoLevelGmg gmg(A, R);
  auto b = dense::DArray::full(runtime, prob.rows, 1.0);
  auto warm = solve::cg(A, b, 0.0, 2, gmg.preconditioner());
  lsr_bench::profile_begin(runtime.engine(), point);
  double t0 = runtime.sim_time();
  auto res = solve::cg(A, b, /*tol=*/0.0, kIters, gmg.preconditioner());
  benchmark::DoNotOptimize(res.residual);
  lsr_bench::profile_end(runtime.engine(), point);
  return (runtime.sim_time() - t0) / kIters;
}

/// Sequential two-level GMG-CG on the single-device baselines.
double run_ref(baselines::ref::Device dev, int scale_procs) {
  using baselines::ref::RefCsr;
  using baselines::ref::RefVector;
  sim::PerfParams pp;
  baselines::ref::RefContext ctx(dev, pp);
  ctx.set_cost_scale(kScale);
  coord_t g = grid_for(scale_procs);
  apps::HostProblem prob = apps::poisson2d(g);
  RefCsr A(ctx, prob.rows, prob.cols, prob.indptr, prob.indices, prob.values);

  // Injection restriction and coarse operator (setup, untimed).
  coord_t gc = g / 2;
  std::vector<coord_t> rip{0}, rid;
  std::vector<double> riv;
  for (coord_t ic = 0; ic < gc; ++ic) {
    for (coord_t jc = 0; jc < gc; ++jc) {
      rid.push_back((2 * ic) * g + (2 * jc));
      riv.push_back(1.0);
      rip.push_back(static_cast<coord_t>(rid.size()));
    }
  }
  RefCsr R(ctx, gc * gc, g * g, rip, rid, riv);
  RefCsr P = R.transpose();
  RefCsr Ac = R.spgemm(A).spgemm(P);
  RefVector dinv_f = A.diagonal();
  for (auto& v : dinv_f.data()) v = v != 0 ? 1.0 / v : 0.0;
  RefVector dinv_c = Ac.diagonal();
  for (auto& v : dinv_c.data()) v = v != 0 ? 1.0 / v : 0.0;

  constexpr double omega = 2.0 / 3.0;
  auto jacobi = [&](const RefCsr& op, const RefVector& dinv, RefVector& x,
                    const RefVector& rhs, int sweeps) {
    for (int s = 0; s < sweeps; ++s) {
      RefVector r = rhs.sub(op.spmv(x));
      r.imul(dinv);
      x.axpy(omega, r);
    }
  };
  auto vcycle = [&](const RefVector& r) {
    RefVector x(ctx, r.size(), 0.0);
    jacobi(A, dinv_f, x, r, 2);
    RefVector resid = r.sub(A.spmv(x));
    RefVector rc = R.spmv(resid);
    RefVector ec(ctx, rc.size(), 0.0);
    jacobi(Ac, dinv_c, ec, rc, 16);
    x.iadd(P.spmv(ec));
    jacobi(A, dinv_f, x, r, 2);
    return x;
  };

  RefVector b(ctx, prob.rows, 1.0);
  double t0 = ctx.now();
  RefVector x(ctx, prob.rows, 0.0);
  RefVector r = b;
  RefVector z = vcycle(r);
  RefVector p = z;
  double rz = r.dot(z);
  for (int it = 0; it < kIters; ++it) {
    auto Ap = A.spmv(p);
    double alpha = rz / p.dot(Ap);
    x.axpy(alpha, p);
    r.axpy(-alpha, Ap);
    z = vcycle(r);
    double rz_new = r.dot(z);
    p.xpay(rz_new / rz, z);
    rz = rz_new;
  }
  benchmark::DoNotOptimize(rz);
  return (ctx.now() - t0) / kIters;
}

void register_all() {
  using lsr_bench::register_point;
  for (int p : lsr_bench::gpu_points()) {
    std::string name = "Fig10/GMG/Legate-GPU/" + std::to_string(p);
    register_point(name, p,
                   [p, name] { return run_legate(sim::ProcKind::GPU, p, name); });
  }
  for (int p : lsr_bench::socket_points()) {
    std::string name = "Fig10/GMG/Legate-CPU/" + std::to_string(p);
    register_point(name, p,
                   [p, name] { return run_legate(sim::ProcKind::CPU, p, name); });
    register_point("Fig10/GMG/SciPy/" + std::to_string(p), p, [p] {
      return run_ref(baselines::ref::Device::ScipyCpu, p);
    });
  }
  register_point("Fig10/GMG/CuPy-1GPU/1", 1,
                 [] { return run_ref(baselines::ref::Device::CupyGpu, 1); });
}

const int registered = (register_all(), 0);

}  // namespace

LSR_BENCH_MAIN();
