// Resilience overhead study (beyond the paper): simulated cost of fault
// tolerance for the Fig. 9 CG kernel on a 2-node GPU machine.
//
// Reported series: a clean solve; checkpointing alone (the steady-state
// I/O tax); transient task faults absorbed by retry; a mid-solve node
// loss recovered from the last checkpoint; and the data-integrity sweep —
// checksum verification alone (the detection tax), silent bit flips plus
// ABFT/CRC recovery, and the same flips with integrity off (the
// wrong-answer baseline the hardened runs are measured against). Recovered
// solves converge to the bit-exact fault-free answer, so the series isolate
// the *time* cost of each failure mode. Detection latency lands in the
// lsr_integrity_detect_latency_seconds histogram of --metrics snapshots.
#include "common.h"

#include "dense/array.h"
#include "solve/krylov.h"
#include "sparse/formats.h"

namespace {

using namespace legate;

constexpr coord_t kRows = 4096;
constexpr int kGpus = 4;  // 2 nodes x 2 GPUs: node 1 is expendable

double run_cg(const rt::RuntimeOptions& opts, const solve::CheckpointPolicy& ckpt,
              const std::string& point) {
  sim::PerfParams pp;
  sim::Machine machine = sim::Machine::gpus(kGpus, pp, /*gpus_per_node=*/2);
  rt::Runtime runtime(machine, opts);
  auto A = sparse::diags(runtime, kRows, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
  auto b = dense::DArray::random(runtime, kRows, 1);
  // Profile the whole solve: the fault/retry/checkpoint instants are the
  // interesting part of these timelines, and there is no warmup phase.
  lsr_bench::profile_begin(runtime.engine(), point);
  auto base = lsr_bench::metrics_begin(runtime, point);
  auto res = solve::cg(A, b, /*tol=*/1e-8, /*maxiter=*/500, nullptr, ckpt);
  benchmark::DoNotOptimize(res.residual);
  // Sweep every live region once more so flips injected after their last
  // read still land in the detection counters (and latency histogram).
  if (opts.integrity != rt::Integrity::Off) runtime.integrity_scrub();
  double sec_per_iter =
      res.iterations > 0 ? runtime.engine().makespan() / res.iterations : 0;
  lsr_bench::metrics_end(runtime, point, base, sec_per_iter);
  lsr_bench::profile_end(runtime.engine(), point);
  return sec_per_iter;
}

/// Silent-corruption rates of the integrity sweep: a handful of resident
/// flips plus a few corrupted task outputs over the ~500-iteration solve.
rt::RuntimeOptions corruption_opts(rt::Integrity mode) {
  rt::RuntimeOptions opts;
  opts.integrity = mode;
  opts.faults.enabled = true;
  opts.faults.seed = 21;
  opts.faults.bitflip_rate = 2e-3;
  opts.faults.output_flip_rate = 2e-3;
  return opts;
}

void register_all() {
  using lsr_bench::register_point;
  register_point("Resilience/CG/clean", kGpus, [] {
    return run_cg({}, {}, "Resilience/CG/clean");
  });
  register_point("Resilience/CG/ckpt-every-10", kGpus, [] {
    return run_cg({}, solve::CheckpointPolicy{10}, "Resilience/CG/ckpt-every-10");
  });
  register_point("Resilience/CG/transient-1pct", kGpus, [] {
    rt::RuntimeOptions opts;
    opts.faults.enabled = true;
    opts.faults.seed = 7;
    opts.faults.task_fault_rate = 0.01;
    return run_cg(opts, {}, "Resilience/CG/transient-1pct");
  });
  register_point("Resilience/CG/node-loss+ckpt10", kGpus, [] {
    rt::RuntimeOptions opts;
    opts.faults.enabled = true;
    opts.faults.node_loss_time = 2e-3;
    opts.faults.node_loss_node = 1;
    opts.faults.node_recovery_seconds = 0.01;
    return run_cg(opts, solve::CheckpointPolicy{10},
                  "Resilience/CG/node-loss+ckpt10");
  });
  // Integrity sweep. detect-clean isolates the pure verification tax (no
  // corruption injected); bitflips-recover is the full hardened path
  // (CRC correction + ABFT retries + residual replacement); bitflips-off is
  // the undefended baseline, which runs the same corruption schedule and is
  // expected to converge slowly, stall, or finish wrong.
  register_point("Resilience/CG/integrity-detect-clean", kGpus, [] {
    rt::RuntimeOptions opts;
    opts.integrity = rt::Integrity::Detect;
    return run_cg(opts, {}, "Resilience/CG/integrity-detect-clean");
  });
  register_point("Resilience/CG/bitflips-recover", kGpus, [] {
    return run_cg(corruption_opts(rt::Integrity::Recover),
                  solve::CheckpointPolicy{10}, "Resilience/CG/bitflips-recover");
  });
  register_point("Resilience/CG/bitflips-off", kGpus, [] {
    return run_cg(corruption_opts(rt::Integrity::Off),
                  solve::CheckpointPolicy{10}, "Resilience/CG/bitflips-off");
  });
}

const int registered = (register_all(), 0);

}  // namespace

LSR_BENCH_MAIN();
