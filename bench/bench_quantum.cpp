// Figure 11: weak scaling of the Rydberg-chain quantum simulation.
//
// The wave function over blockade-allowed states evolves under 8th-order
// Runge-Kutta; the Hamiltonian's flip terms reference state indices across
// nearly the whole vector, so the image of the coordinate region is almost
// the full state — a near-all-to-all exchange pattern. Reproduced effects:
//  * efficiency falls off with processor count (communication/bandwidth),
//  * GPU beats CPU on NVLink (<= 4 GPUs = 1 node), then drops to/below the
//    CPU line once Infiniband dominates — the 16-GPU configuration uses 4
//    nodes of NIC while 16 sockets use 8 nodes (Section 6.1),
//  * the 64-GPU configuration runs out of framebuffer memory: rectangular
//    instances must cover the bounding interval of the image (nearly the
//    whole state) even though the copies themselves are precise.
//
// Uses 4 GPUs per node, as the paper does for this benchmark.
#include "common.h"

#include "apps/workloads.h"
#include "baselines/ref/ref.h"
#include "solve/rk.h"
#include "sparse/csr.h"

namespace {

using namespace legate;

constexpr coord_t kStatesPerProc = 4096;  // functional sample per processor
constexpr double kStateBytesPerProc = 160e6;  ///< modeled psi block per proc
constexpr int kSteps = 2;                     // timed RK8 steps
constexpr int kGpusPerNode = 4;

int atoms_for(int procs) {
  int atoms = 4;
  while (apps::rydberg_dim(atoms) < kStatesPerProc * procs) ++atoms;
  return atoms;
}

double scale_for(int procs, coord_t dim) {
  // cost_scale such that each processor's block of the (2*dim) state models
  // kStateBytesPerProc bytes.
  double real_block = 2.0 * static_cast<double>(dim) * 8.0 / procs;
  return kStateBytesPerProc / real_block;
}

double run_legate(sim::ProcKind kind, int procs, const std::string& point = {}) {
  sim::PerfParams pp;
  sim::Machine machine = kind == sim::ProcKind::GPU
                             ? sim::Machine::gpus(procs, pp, kGpusPerNode)
                             : sim::Machine::sockets(procs, pp);
  rt::Runtime runtime(machine);
  apps::RydbergSystem sys = apps::rydberg_chain(atoms_for(procs));
  runtime.engine().set_cost_scale(scale_for(procs, sys.dim));
  auto H = sparse::CsrMatrix::from_host(runtime, sys.hamiltonian.rows,
                                        sys.hamiltonian.cols, sys.hamiltonian.indptr,
                                        sys.hamiltonian.indices,
                                        sys.hamiltonian.values);
  std::vector<double> y0(static_cast<std::size_t>(2 * sys.dim), 0.0);
  y0[static_cast<std::size_t>(sys.ground_state)] = 1.0;
  auto y = dense::DArray::from_vector(runtime, y0);
  solve::OdeRhs rhs = [&](double, const dense::DArray& s) { return H.spmv(s); };
  const auto& tab = solve::ButcherTableau::rk8();
  auto warm = solve::integrate(tab, rhs, y, 0.0, 0.01, 1);
  lsr_bench::profile_begin(runtime.engine(), point);
  double t0 = runtime.sim_time();
  auto res = solve::integrate(tab, rhs, warm.y, 0.01, 0.01 + 0.01 * kSteps, kSteps);
  benchmark::DoNotOptimize(res.steps);
  lsr_bench::profile_end(runtime.engine(), point);
  return (runtime.sim_time() - t0) / kSteps;
}

double run_ref(baselines::ref::Device dev, int scale_procs) {
  using baselines::ref::RefCsr;
  using baselines::ref::RefVector;
  sim::PerfParams pp;
  baselines::ref::RefContext ctx(dev, pp);
  apps::RydbergSystem sys = apps::rydberg_chain(atoms_for(scale_procs));
  ctx.set_cost_scale(scale_for(scale_procs, sys.dim));
  RefCsr H(ctx, sys.hamiltonian.rows, sys.hamiltonian.cols, sys.hamiltonian.indptr,
           sys.hamiltonian.indices, sys.hamiltonian.values);
  std::vector<double> y0(static_cast<std::size_t>(2 * sys.dim), 0.0);
  y0[static_cast<std::size_t>(sys.ground_state)] = 1.0;
  RefVector y(ctx, y0);

  const auto& tab = solve::ButcherTableau::rk8();
  double h = 0.01;
  double t0 = ctx.now();
  for (int step = 0; step < kSteps; ++step) {
    std::vector<RefVector> k;
    k.reserve(static_cast<std::size_t>(tab.stages));
    for (int i = 0; i < tab.stages; ++i) {
      RefVector yi = y;
      for (int j = 0; j < i; ++j) {
        double aij = tab.at(i, j);
        if (aij != 0.0) yi.axpy(h * aij, k[static_cast<std::size_t>(j)]);
      }
      k.push_back(H.spmv(yi));
    }
    for (int i = 0; i < tab.stages; ++i) {
      if (tab.b[static_cast<std::size_t>(i)] != 0.0)
        y.axpy(h * tab.b[static_cast<std::size_t>(i)], k[static_cast<std::size_t>(i)]);
    }
  }
  benchmark::DoNotOptimize(y.data().data());
  return (ctx.now() - t0) / kSteps;
}

void register_all() {
  using lsr_bench::register_oom;
  using lsr_bench::register_point;
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    // Probe each GPU configuration at registration: the per-GPU footprint
    // grows with the *total* state (bounding-interval instances of the
    // near-all-to-all image), so large configurations exceed framebuffer
    // capacity — the paper's 64-GPU OOM. Such points appear as OOM rows.
    try {
      double probe = run_legate(sim::ProcKind::GPU, p);
      (void)probe;
      std::string gname = "Fig11/Quantum/Legate-GPU/" + std::to_string(p);
      register_point(gname, p,
                     [p, gname] { return run_legate(sim::ProcKind::GPU, p, gname); });
    } catch (const OutOfMemoryError&) {
      register_oom("Fig11/Quantum/Legate-GPU-OOM/" + std::to_string(p), p);
    }
    std::string cname = "Fig11/Quantum/Legate-CPU/" + std::to_string(p);
    register_point(cname, p,
                   [p, cname] { return run_legate(sim::ProcKind::CPU, p, cname); });
    register_point("Fig11/Quantum/SciPy/" + std::to_string(p), p, [p] {
      return run_ref(baselines::ref::Device::ScipyCpu, p);
    });
  }
  register_point("Fig11/Quantum/CuPy-1GPU/1", 1,
                 [] { return run_ref(baselines::ref::Device::CupyGpu, 1); });
}

const int registered = (register_all(), 0);

}  // namespace

LSR_BENCH_MAIN();
