#pragma once

// Shared helpers for the figure-reproduction benchmarks.
//
// Each benchmark executes a 1/S functional sample of the paper-scale
// workload and sets the engine's cost_scale to S, which charges full-size
// bytes/flops/capacity (exact for these linear-cost workloads; DESIGN.md
// "Execution & performance model"). Simulated seconds are reported through
// google-benchmark's manual-time mode, so `items_per_second`-style counters
// are directly comparable with the paper's iterations/second axes.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <iostream>
#include <string>

#include <fstream>

#include "diag/diag.h"
#include "metrics/metrics.h"
#include "prof/analysis.h"
#include "prof/trace.h"
#include "rt/runtime.h"
#include "sim/engine.h"
#include "sim/machine.h"

namespace lsr_bench {

// ---------------------------------------------------------------------------
// Profiling hooks (off by default; zero effect on simulated time and stats).
//
//   bench_cg --prof                  print utilization / traffic-matrix /
//                                    critical-path summary per profiled point
//   bench_cg --trace out.json        additionally dump a Chrome-trace JSON
//                                    (chrome://tracing, Perfetto); the file is
//                                    rewritten per point, so the last profiled
//                                    point's timeline is what remains — use
//                                    --prof-filter to pick one
//   bench_cg --prof-filter 192       only profile points whose name contains
//                                    the substring
//   bench_cg --fuse on               launch-window fusion mode (off|on|auto)
//                                    for the Legate runtime points; fused
//                                    launch counts appear as the
//                                    fused_launches / fused_eliminated
//                                    counters
//   bench_cg --comm plan             communication-planner mode
//                                    (off|plan|overlap) for the Legate
//                                    runtime points; plan-cache hits/misses
//                                    and coalesced-message counts appear as
//                                    lsr_comm_* stable counters
//   bench_cg --metrics out.json      write a per-point metrics snapshot file
//                                    (stable metrics only, so the file is
//                                    bit-identical at any --threads value);
//                                    compared against the committed
//                                    BENCH_*.json by scripts/bench_compare.py
//   bench_cg --dump-on-exit          write an lsr_diag post-mortem dump at
//                                    the end of every point (implies
//                                    LSR_DIAG=on); summarize the file with
//                                    scripts/diagnose.py
//   bench_cg --log-level info        lsr_diag stderr verbosity
//                                    (silent|warn|info|debug; LSR_DIAG_LOG)
// ---------------------------------------------------------------------------

struct ProfOptions {
  bool enabled = false;       ///< --prof or --trace given
  std::string trace_path;     ///< empty: summary only
  std::string filter;         ///< substring of the point name; empty: all
  int threads = 0;            ///< --threads N executor threads (0 = env/default)
  std::string metrics_path;   ///< --metrics PATH metrics snapshot output
  /// --partition rows|nnz|auto row-split strategy for the Legate runtime
  /// points (Unset: the runtime falls back to LSR_PARTITION, then rows).
  legate::rt::PartitionStrategy partition = legate::rt::PartitionStrategy::Unset;
  /// --fuse off|on|auto launch-window fusion mode for the Legate runtime
  /// points (Unset: the runtime falls back to LSR_FUSE, then off).
  legate::rt::Fusion fusion = legate::rt::Fusion::Unset;
  /// --comm off|plan|overlap communication-planner mode for the Legate
  /// runtime points (Unset: the runtime falls back to LSR_COMM, then off).
  legate::comm::Mode comm = legate::comm::Mode::Unset;
  /// --dump-on-exit: write an lsr_diag post-mortem dump at the end of each
  /// profiled point, even without a watchdog trip (implies LSR_DIAG=on for
  /// the benchmark's runtimes unless the env says otherwise).
  bool dump_on_exit = false;
  /// --log-level silent|warn|info|debug: lsr_diag stderr verbosity.
  std::string log_level;
};

inline ProfOptions& prof_options() {
  static ProfOptions po;
  return po;
}

/// Strip --prof / --trace PATH / --trace=PATH / --prof-filter SUB /
/// --threads N from argv before handing the rest to google-benchmark
/// (which rejects unknown flags).
inline void init_prof_flags(int* argc, char** argv) {
  ProfOptions& po = prof_options();
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string a = argv[i];
    auto value_of = [&](const std::string& flag) -> const char* {
      if (a.rfind(flag + "=", 0) == 0) return argv[i] + flag.size() + 1;
      if (a == flag && i + 1 < *argc) return argv[++i];
      return nullptr;
    };
    if (a == "--prof") {
      po.enabled = true;
    } else if (const char* v = value_of("--trace")) {
      po.enabled = true;
      po.trace_path = v;
    } else if (const char* v2 = value_of("--prof-filter")) {
      po.filter = v2;
    } else if (const char* v3 = value_of("--threads")) {
      po.threads = std::atoi(v3);
    } else if (const char* v4 = value_of("--metrics")) {
      po.metrics_path = v4;
    } else if (const char* v5 = value_of("--partition")) {
      po.partition = legate::rt::parse_partition_strategy(v5);
      if (po.partition == legate::rt::PartitionStrategy::Unset) {
        std::cerr << "warning: unknown --partition value '" << v5
                  << "' (expected rows|nnz|auto), using the runtime default\n";
      }
    } else if (const char* v6 = value_of("--fuse")) {
      po.fusion = legate::rt::parse_fusion_mode(v6);
      if (po.fusion == legate::rt::Fusion::Unset) {
        std::cerr << "warning: unknown --fuse value '" << v6
                  << "' (expected off|on|auto), using the runtime default\n";
      }
    } else if (const char* v8 = value_of("--comm")) {
      po.comm = legate::comm::parse_comm_mode(v8);
      if (po.comm == legate::comm::Mode::Unset) {
        std::cerr << "warning: unknown --comm value '" << v8
                  << "' (expected off|plan|overlap), using the runtime default\n";
      }
    } else if (a == "--dump-on-exit") {
      po.dump_on_exit = true;
    } else if (const char* v7 = value_of("--log-level")) {
      po.log_level = v7;
      legate::diag::set_log_level(legate::diag::parse_log_level(v7));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (po.dump_on_exit) {
    // The exit dump should carry flight-recorder events, so make sure the
    // recorder is on unless the environment explicitly chose a mode.
    ::setenv("LSR_DIAG", "on", /*overwrite=*/0);
  }
}

/// Executor threads requested with --threads (0: let the runtime read
/// LSR_EXEC_THREADS / default to 1).
inline int bench_threads() { return prof_options().threads; }

/// Row-split strategy requested with --partition (Unset: runtime default,
/// i.e. LSR_PARTITION or rows).
inline legate::rt::PartitionStrategy bench_partition() {
  return prof_options().partition;
}

/// Fusion mode requested with --fuse (Unset: runtime default, i.e. LSR_FUSE
/// or off).
inline legate::rt::Fusion bench_fusion() { return prof_options().fusion; }

/// Communication-planner mode requested with --comm (Unset: runtime default,
/// i.e. LSR_COMM or off).
inline legate::comm::Mode bench_comm() { return prof_options().comm; }

/// Extra per-point counters (real wall-clock seconds, measured speedup)
/// attached by the run functions and exported by register_point.
inline std::map<std::string, std::map<std::string, double>>& extra_counters() {
  static std::map<std::string, std::map<std::string, double>> m;
  return m;
}

/// Record the measured wall-clock seconds/iteration of a run executed with
/// `threads` executor threads, plus the sequential reference when one was
/// taken; register_point exports them as wall_s / wall_speedup counters.
inline void note_wall(const std::string& point, double wall_s, double wall_seq_s,
                      int threads) {
  auto& c = extra_counters()[point];
  c["wall_s"] = wall_s;
  c["threads"] = threads > 0 ? threads : 1;
  if (wall_seq_s > 0 && wall_s > 0) c["wall_speedup"] = wall_seq_s / wall_s;
}

/// Record a run's fused-launch counters (whole-runtime totals, warm-up
/// included): how many original launches were folded into fused launches and
/// how many dispatches that eliminated. Exported next to wall_s by
/// register_point, and 0/absent with fusion off.
inline void note_fusion(const std::string& point, legate::rt::Runtime& rt) {
  if (point.empty() || !rt.fusion_enabled()) return;
  auto& c = extra_counters()[point];
  c["fused_launches"] = static_cast<double>(rt.fused_participants());
  c["fused_eliminated"] = static_cast<double>(rt.fused_eliminated());
}

/// Write an lsr_diag post-mortem dump for a finished point when
/// --dump-on-exit was given (fences first; see Runtime::diag_dump). The dump
/// lands in LSR_DIAG_DIR (default: the working directory) and is summarized
/// by scripts/diagnose.py.
inline void diag_point_end(legate::rt::Runtime& rt, const std::string& point) {
  if (!prof_options().dump_on_exit || point.empty()) return;
  const std::string path = rt.diag_dump("exit:" + point);
  if (!path.empty()) std::cerr << "diag dump written to " << path << "\n";
}

/// Monotonic wall-clock seconds (for the real-execution speedup counters).
inline double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Whether the point `name` should be profiled under the current flags.
/// Unnamed runs (registration-time probes) are never profiled.
inline bool profiling_point(const std::string& name) {
  const ProfOptions& po = prof_options();
  return po.enabled && !name.empty() &&
         (po.filter.empty() || name.find(po.filter) != std::string::npos);
}

/// Enable timeline recording on `eng` if this point is being profiled.
/// With --trace, also install a flush sink: timeline windows closed by
/// Engine::reset mid-run (bench repetitions, solver restarts) export to
/// numbered `<path>.resetN` side files instead of being silently dropped.
inline void profile_begin(legate::sim::Engine& eng, const std::string& point) {
  if (!profiling_point(point)) return;
  eng.recorder().enable();
  const ProfOptions& po = prof_options();
  if (!po.trace_path.empty()) {
    std::string base = po.trace_path;
    eng.recorder().set_flush_sink([base](const legate::prof::Recorder& rec) {
      static int n = 0;
      legate::prof::write_chrome_trace(rec, base + ".reset" + std::to_string(++n));
    });
  }
}

/// Print the utilization / traffic / critical-path summary for a profiled
/// run and dump the Chrome trace when --trace was given.
inline void profile_end(legate::sim::Engine& eng, const std::string& point) {
  if (!eng.recorder().enabled()) return;
  std::cerr << "\n== profile: " << point << "\n"
            << legate::prof::summary(eng.recorder(), eng.makespan());
  const ProfOptions& po = prof_options();
  if (!po.trace_path.empty()) {
    legate::prof::write_chrome_trace(eng.recorder(), po.trace_path);
    std::cerr << "trace written to " << po.trace_path << " ("
              << eng.recorder().events().size() << " events)\n";
  }
}

// ---------------------------------------------------------------------------
// Per-point metrics snapshots (--metrics out.json).
//
// metrics_begin/metrics_end bracket the timed region of a Legate run: the
// delta between the two runtime snapshots isolates the timed iterations from
// warm-up (data distribution, steady-state allocation). Only the runtime's
// Stable metrics are written — those are incremented exclusively during the
// sequential replay at fence(), so the emitted file is bit-identical for any
// --threads value. scripts/bench_compare.py gates CI on these files.
// ---------------------------------------------------------------------------

inline bool metrics_enabled() { return !prof_options().metrics_path.empty(); }

/// One recorded point: simulated seconds/iteration plus the stable-metric
/// delta across the timed region.
struct MetricsEntry {
  double sim_s_per_iter = 0;
  legate::metrics::Snapshot snap;
};

inline std::map<std::string, MetricsEntry>& metrics_entries() {
  static std::map<std::string, MetricsEntry> m;
  return m;
}

/// Snapshot the runtime's metrics before the timed region (fences, so the
/// warm-up's deferred launches are fully attributed to the base). Unnamed
/// runs (sequential wall-clock references) are never recorded.
inline legate::metrics::Snapshot metrics_begin(legate::rt::Runtime& rt,
                                               const std::string& point) {
  if (!metrics_enabled() || point.empty()) return {};
  return rt.metrics_snapshot();
}

/// Record the timed region's metric delta and simulated seconds/iteration.
inline void metrics_end(legate::rt::Runtime& rt, const std::string& point,
                        const legate::metrics::Snapshot& base,
                        double sim_s_per_iter) {
  if (!metrics_enabled() || point.empty()) return;
  MetricsEntry& e = metrics_entries()[point];
  e.sim_s_per_iter = sim_s_per_iter;
  e.snap = rt.metrics_snapshot().delta(base);
}

/// Write the BENCH_*.json schema consumed by scripts/bench_compare.py:
///   {"schema":1,"bench":"<name>","points":{"<point>":
///      {"sim_s_per_iter":S,"wall":{...},"snapshot":{"metrics":[...]}}, ...}}
/// The "wall" object (measured wall seconds/iteration, thread count,
/// speedup vs a sequential reference — whatever note_wall recorded) is
/// informational: wall clocks are machine-specific, so bench_compare.py
/// never gates on it, but committed baselines still document e.g. the
/// rows-vs-nnz wall-time gap of the partition sweep alongside the gated
/// deterministic sim numbers. Returns false (and prints to stderr) if the
/// file cannot be written.
inline bool metrics_write(const std::string& bench_name) {
  if (!metrics_enabled()) return true;
  std::ofstream os(prof_options().metrics_path);
  if (!os) {
    std::cerr << "error: cannot write metrics file " << prof_options().metrics_path
              << "\n";
    return false;
  }
  os << "{\"schema\":1,\"bench\":\"" << bench_name << "\",\"points\":{";
  bool first = true;
  for (const auto& [point, e] : metrics_entries()) {
    if (!first) os << ',';
    first = false;
    std::string pname = point;  // point names never need JSON escaping, but
    // keep the exporter honest anyway.
    std::string quoted;
    legate::metrics::append_json_string(quoted, pname);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", e.sim_s_per_iter);
    os << quoted << ":{\"sim_s_per_iter\":" << buf;
    auto ec = extra_counters().find(point);
    if (ec != extra_counters().end() && !ec->second.empty()) {
      os << ",\"wall\":{";
      bool wfirst = true;
      for (const auto& [k, v] : ec->second) {
        if (!wfirst) os << ',';
        wfirst = false;
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        std::string kq;
        legate::metrics::append_json_string(kq, k);
        os << kq << ':' << buf;
      }
      os << '}';
    }
    os << ",\"snapshot\":" << e.snap.to_json(/*stable_only=*/true) << '}';
  }
  os << "}}\n";
  std::cerr << "metrics written to " << prof_options().metrics_path << " ("
            << metrics_entries().size() << " points)\n";
  return true;
}

/// Benchmark name for the metrics file: basename of argv[0].
inline std::string bench_name_from(const char* argv0) {
  std::string s = argv0 ? argv0 : "bench";
  std::size_t slash = s.find_last_of('/');
  if (slash != std::string::npos) s = s.substr(slash + 1);
  return s;
}

/// GPU scale points of the paper's weak-scaling plots (Figs. 8-10):
/// 1 GPU, then whole sockets' worth (3) up to 32 nodes (192).
inline const std::vector<int>& gpu_points() {
  static const std::vector<int> v{1, 3, 6, 12, 24, 48, 96, 192};
  return v;
}

/// CPU-socket scale points (1 socket ... 64 sockets = 32 nodes).
inline const std::vector<int>& socket_points() {
  static const std::vector<int> v{1, 2, 4, 8, 16, 32, 64};
  return v;
}

/// Register a single weak-scaling point. `run` returns simulated seconds
/// per solver/benchmark iteration; the reciprocal matches the paper's
/// throughput axes and is exported as the `iters_per_s` counter.
inline void register_point(const std::string& name, int procs,
                           std::function<double()> run) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [name, procs, run](benchmark::State& state) {
                                 double sec_per_iter = 0;
                                 for (auto _ : state) {
                                   sec_per_iter = run();
                                   state.SetIterationTime(sec_per_iter);
                                 }
                                 state.counters["procs"] = procs;
                                 state.counters["iters_per_s"] =
                                     sec_per_iter > 0 ? 1.0 / sec_per_iter : 0;
                                 auto it = extra_counters().find(name);
                                 if (it != extra_counters().end()) {
                                   for (const auto& [k, v] : it->second)
                                     state.counters[k] = v;
                                 }
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

/// Register a point that reports out-of-memory instead of a throughput
/// (Fig. 11's 64-GPU case, Fig. 12's CuPy large datasets).
inline void register_oom(const std::string& name, int procs) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [procs](benchmark::State& state) {
                                 for (auto _ : state) {
                                   state.SetIterationTime(1e-9);
                                 }
                                 state.counters["procs"] = procs;
                                 state.counters["OOM"] = 1;
                               })
      ->UseManualTime()
      ->Iterations(1);
}

}  // namespace lsr_bench

/// Drop-in replacement for BENCHMARK_MAIN() that strips the profiling flags
/// (--prof, --trace, --prof-filter) before google-benchmark sees argv.
#define LSR_BENCH_MAIN()                                                  \
  int main(int argc, char** argv) {                                       \
    std::string bench_name = lsr_bench::bench_name_from(argv[0]);         \
    lsr_bench::init_prof_flags(&argc, argv);                              \
    benchmark::Initialize(&argc, argv);                                   \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    benchmark::RunSpecifiedBenchmarks();                                  \
    benchmark::Shutdown();                                                \
    if (!lsr_bench::metrics_write(bench_name)) return 1;                  \
    return 0;                                                             \
  }                                                                       \
  int main(int, char**)
