#pragma once

// Shared helpers for the figure-reproduction benchmarks.
//
// Each benchmark executes a 1/S functional sample of the paper-scale
// workload and sets the engine's cost_scale to S, which charges full-size
// bytes/flops/capacity (exact for these linear-cost workloads; DESIGN.md
// "Execution & performance model"). Simulated seconds are reported through
// google-benchmark's manual-time mode, so `items_per_second`-style counters
// are directly comparable with the paper's iterations/second axes.

#include <benchmark/benchmark.h>

#include <functional>
#include <string>

#include "sim/machine.h"

namespace lsr_bench {

/// GPU scale points of the paper's weak-scaling plots (Figs. 8-10):
/// 1 GPU, then whole sockets' worth (3) up to 32 nodes (192).
inline const std::vector<int>& gpu_points() {
  static const std::vector<int> v{1, 3, 6, 12, 24, 48, 96, 192};
  return v;
}

/// CPU-socket scale points (1 socket ... 64 sockets = 32 nodes).
inline const std::vector<int>& socket_points() {
  static const std::vector<int> v{1, 2, 4, 8, 16, 32, 64};
  return v;
}

/// Register a single weak-scaling point. `run` returns simulated seconds
/// per solver/benchmark iteration; the reciprocal matches the paper's
/// throughput axes and is exported as the `iters_per_s` counter.
inline void register_point(const std::string& name, int procs,
                           std::function<double()> run) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [procs, run](benchmark::State& state) {
                                 double sec_per_iter = 0;
                                 for (auto _ : state) {
                                   sec_per_iter = run();
                                   state.SetIterationTime(sec_per_iter);
                                 }
                                 state.counters["procs"] = procs;
                                 state.counters["iters_per_s"] =
                                     sec_per_iter > 0 ? 1.0 / sec_per_iter : 0;
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

/// Register a point that reports out-of-memory instead of a throughput
/// (Fig. 11's 64-GPU case, Fig. 12's CuPy large datasets).
inline void register_oom(const std::string& name, int procs) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [procs](benchmark::State& state) {
                                 for (auto _ : state) {
                                   state.SetIterationTime(1e-9);
                                 }
                                 state.counters["procs"] = procs;
                                 state.counters["OOM"] = 1;
                               })
      ->UseManualTime()
      ->Iterations(1);
}

}  // namespace lsr_bench
