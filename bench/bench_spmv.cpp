// Figure 8: weak scaling of an SpMV microbenchmark on banded matrices.
//
// Series (as in the paper): Legate-GPU, Legate-CPU, PETSc-GPU, PETSc-CPU,
// CuPy (1 GPU), SciPy (problem keeps growing, single thread). Banded SpMV is
// embarrassingly parallel: Legate and PETSc weak-scale flat, Legate pays a
// small global-CSR reshape penalty relative to PETSc/CuPy (Section 3), and
// SciPy's throughput decays as 1/P.
#include "common.h"

#include "apps/workloads.h"
#include "baselines/petsc/petsc.h"
#include "baselines/ref/ref.h"
#include "sparse/csr.h"

namespace {

using namespace legate;

// Functional sample: 40k rows per processor, half-bandwidth 5 (11 nnz/row);
// cost_scale 64 models 2.56M rows per processor, the regime where SpMV is
// bandwidth-bound on a V100 like the paper's runs.
constexpr coord_t kRowsPerProc = 40000;
constexpr coord_t kHalfBand = 5;
constexpr double kScale = 64.0;
constexpr int kIters = 5;

struct LegateRun {
  double sim_per_iter;
  double wall_per_iter;
};

LegateRun run_legate_once(sim::ProcKind kind, int procs, const std::string& point,
                          int threads) {
  sim::PerfParams pp;
  sim::Machine machine = kind == sim::ProcKind::GPU ? sim::Machine::gpus(procs, pp)
                                                    : sim::Machine::sockets(procs, pp);
  rt::RuntimeOptions opts;
  opts.exec_threads = threads;
  opts.partition = lsr_bench::bench_partition();
  opts.fusion = lsr_bench::bench_fusion();
  opts.comm = lsr_bench::bench_comm();
  rt::Runtime runtime(machine, opts);
  runtime.engine().set_cost_scale(kScale);
  apps::HostProblem prob = apps::banded_matrix(kRowsPerProc * procs, kHalfBand);
  auto A = sparse::CsrMatrix::from_host(runtime, prob.rows, prob.cols, prob.indptr,
                                        prob.indices, prob.values);
  auto x = dense::DArray::full(runtime, prob.rows, 1.0);
  auto warm = A.spmv(x);  // first iteration pays startup copies
  lsr_bench::profile_begin(runtime.engine(), point);
  auto mbase = lsr_bench::metrics_begin(runtime, point);
  double t0 = runtime.sim_time();
  double w0 = lsr_bench::wall_now();
  for (int i = 0; i < kIters; ++i) {
    auto y = A.spmv(x);
    benchmark::DoNotOptimize(y.store().span<double>().data());
  }
  runtime.fence();  // drain deferred launches before stopping the wall clock
  double wall = (lsr_bench::wall_now() - w0) / kIters;
  double sim_per_iter = (runtime.sim_time() - t0) / kIters;
  lsr_bench::metrics_end(runtime, point, mbase, sim_per_iter);
  lsr_bench::profile_end(runtime.engine(), point);
  lsr_bench::note_fusion(point, runtime);
  return {sim_per_iter, wall};
}

double run_legate(sim::ProcKind kind, int procs, const std::string& point) {
  int threads = lsr_bench::bench_threads();
  LegateRun run = run_legate_once(kind, procs, point, threads);
  double wall_seq = run.wall_per_iter;
  if (threads > 1) {
    // Sequential reference for the measured wall-clock speedup counter.
    wall_seq = run_legate_once(kind, procs, "", 1).wall_per_iter;
  }
  lsr_bench::note_wall(point, run.wall_per_iter, wall_seq, threads);
  return run.sim_per_iter;
}

// Partition-strategy sweep: a Zipf-skewed matrix (power-law head, row 0
// holds a few percent of all nonzeros by itself) where the equal row split
// piles the head onto color 0. Both strategies run on the same matrix so
// BENCH_spmv_skew.json records the rows-vs-nnz gap directly. Fewer rows per
// processor than Fig8: the head row dominates regardless of scale.
constexpr coord_t kSkewRowsPerProc = 20000;
constexpr coord_t kSkewAvgNnz = 8;
constexpr double kSkewS = 1.05;

LegateRun run_skew_once(int procs, rt::PartitionStrategy strat,
                        const std::string& point, int threads) {
  sim::PerfParams pp;
  rt::RuntimeOptions opts;
  opts.exec_threads = threads;
  opts.partition = strat;
  opts.comm = lsr_bench::bench_comm();
  rt::Runtime runtime(sim::Machine::gpus(procs, pp), opts);
  runtime.engine().set_cost_scale(kScale);
  apps::HostProblem prob =
      apps::zipf_matrix(kSkewRowsPerProc * procs, kSkewS, kSkewAvgNnz, 97);
  auto A = sparse::CsrMatrix::from_host(runtime, prob.rows, prob.cols, prob.indptr,
                                        prob.indices, prob.values);
  auto x = dense::DArray::full(runtime, prob.rows, 1.0);
  auto warm = A.spmv(x);
  lsr_bench::profile_begin(runtime.engine(), point);
  auto mbase = lsr_bench::metrics_begin(runtime, point);
  double t0 = runtime.sim_time();
  double w0 = lsr_bench::wall_now();
  for (int i = 0; i < kIters; ++i) {
    auto y = A.spmv(x);
    benchmark::DoNotOptimize(y.store().span<double>().data());
  }
  runtime.fence();
  double wall = (lsr_bench::wall_now() - w0) / kIters;
  double sim_per_iter = (runtime.sim_time() - t0) / kIters;
  lsr_bench::metrics_end(runtime, point, mbase, sim_per_iter);
  lsr_bench::profile_end(runtime.engine(), point);
  return {sim_per_iter, wall};
}

double run_skew(int procs, rt::PartitionStrategy strat, const std::string& point) {
  int threads = lsr_bench::bench_threads();
  LegateRun run = run_skew_once(procs, strat, point, threads);
  double wall_seq = run.wall_per_iter;
  if (threads > 1) {
    wall_seq = run_skew_once(procs, strat, "", 1).wall_per_iter;
  }
  lsr_bench::note_wall(point, run.wall_per_iter, wall_seq, threads);
  return run.sim_per_iter;
}

// Communication-planner sweep: the same Zipf-skewed matrix under nnz-balanced
// partitioning, but with x *updated every iteration* so each SpMV must
// re-gather its skewed column footprint — a comm-bound steady state where the
// exchange structure repeats while the data is always stale. Per comm mode
// this records the plan-cache hit rate, the coalesced message count, and the
// per-link byte split; off vs plan shows the message-coalescing win, plan vs
// overlap the interior/boundary compute-comm overlap win.
LegateRun run_comm_once(int procs, comm::Mode mode, const std::string& point,
                        int threads) {
  sim::PerfParams pp;
  rt::RuntimeOptions opts;
  opts.exec_threads = threads;
  opts.partition = rt::PartitionStrategy::Nnz;
  opts.comm = mode;
  rt::Runtime runtime(sim::Machine::gpus(procs, pp), opts);
  runtime.engine().set_cost_scale(kScale);
  apps::HostProblem prob =
      apps::zipf_matrix(kSkewRowsPerProc * procs, kSkewS, kSkewAvgNnz, 97);
  auto A = sparse::CsrMatrix::from_host(runtime, prob.rows, prob.cols, prob.indptr,
                                        prob.indices, prob.values);
  auto x = dense::DArray::full(runtime, prob.rows, 1.0);
  {
    auto warm = A.spmv(x);
    x.axpy(dense::Scalar{1e-9}, warm);
  }
  lsr_bench::profile_begin(runtime.engine(), point);
  auto mbase = lsr_bench::metrics_begin(runtime, point);
  double t0 = runtime.sim_time();
  double w0 = lsr_bench::wall_now();
  for (int i = 0; i < kIters; ++i) {
    auto y = A.spmv(x);
    x.axpy(dense::Scalar{1e-9}, y);  // dirty x: next spmv re-gathers it
    benchmark::DoNotOptimize(y.store().span<double>().data());
  }
  runtime.fence();
  double wall = (lsr_bench::wall_now() - w0) / kIters;
  double sim_per_iter = (runtime.sim_time() - t0) / kIters;
  lsr_bench::metrics_end(runtime, point, mbase, sim_per_iter);
  lsr_bench::profile_end(runtime.engine(), point);
  return {sim_per_iter, wall};
}

double run_comm(int procs, comm::Mode mode, const std::string& point) {
  int threads = lsr_bench::bench_threads();
  LegateRun run = run_comm_once(procs, mode, point, threads);
  double wall_seq = run.wall_per_iter;
  if (threads > 1) {
    wall_seq = run_comm_once(procs, mode, "", 1).wall_per_iter;
  }
  lsr_bench::note_wall(point, run.wall_per_iter, wall_seq, threads);
  return run.sim_per_iter;
}

double run_petsc(sim::ProcKind kind, int procs) {
  sim::PerfParams pp;
  baselines::mpisim::MpiSim sim(kind, procs, pp);
  sim.engine().set_cost_scale(kScale);
  apps::HostProblem prob = apps::banded_matrix(kRowsPerProc * procs, kHalfBand);
  baselines::petsc::Mat A(sim, prob.rows, prob.cols, prob.indptr, prob.indices,
                          prob.values);
  baselines::petsc::Vec x(sim, std::vector<double>(
                                   static_cast<std::size_t>(prob.rows), 1.0));
  baselines::petsc::Vec y(sim, prob.rows);
  A.mult(x, y);  // warmup
  double t0 = sim.makespan();
  for (int i = 0; i < kIters; ++i) A.mult(x, y);
  return (sim.makespan() - t0) / kIters;
}

double run_ref(baselines::ref::Device dev, int scale_procs) {
  sim::PerfParams pp;
  baselines::ref::RefContext ctx(dev, pp);
  ctx.set_cost_scale(kScale);
  apps::HostProblem prob = apps::banded_matrix(kRowsPerProc * scale_procs, kHalfBand);
  baselines::ref::RefCsr A(ctx, prob.rows, prob.cols, prob.indptr, prob.indices,
                           prob.values);
  baselines::ref::RefVector x(ctx, prob.rows, 1.0);
  double t0 = ctx.now();
  for (int i = 0; i < kIters; ++i) {
    auto y = A.spmv(x);
    benchmark::DoNotOptimize(y.data().data());
  }
  return (ctx.now() - t0) / kIters;
}

void register_all() {
  using lsr_bench::register_point;
  for (int p : lsr_bench::gpu_points()) {
    std::string name = "Fig8/SpMV/Legate-GPU/" + std::to_string(p);
    register_point(name, p,
                   [p, name] { return run_legate(sim::ProcKind::GPU, p, name); });
    register_point("Fig8/SpMV/PETSc-GPU/" + std::to_string(p), p,
                   [p] { return run_petsc(sim::ProcKind::GPU, p); });
  }
  for (int p : lsr_bench::socket_points()) {
    std::string name = "Fig8/SpMV/Legate-CPU/" + std::to_string(p);
    register_point(name, p,
                   [p, name] { return run_legate(sim::ProcKind::CPU, p, name); });
    register_point("Fig8/SpMV/PETSc-CPU/" + std::to_string(p), p,
                   [p] { return run_petsc(sim::ProcKind::CPU, p); });
    // SciPy runs the growing problem on one thread: no weak scaling.
    register_point("Fig8/SpMV/SciPy/" + std::to_string(p), p, [p] {
      return run_ref(baselines::ref::Device::ScipyCpu, p);
    });
  }
  register_point("Fig8/SpMV/CuPy-1GPU/1", 1,
                 [] { return run_ref(baselines::ref::Device::CupyGpu, 1); });
  // Skew points deliberately avoid the "Legate" substring so the existing
  // --benchmark_filter=Legate baseline runs are unaffected; CI selects them
  // with --benchmark_filter=Skew into BENCH_spmv_skew.json.
  for (int p : {4, 12, 48}) {
    for (rt::PartitionStrategy strat :
         {rt::PartitionStrategy::Rows, rt::PartitionStrategy::Nnz}) {
      std::string name = std::string("Skew/SpMV/") +
                         rt::partition_strategy_name(strat) + "/" +
                         std::to_string(p);
      register_point(name, p,
                     [p, strat, name] { return run_skew(p, strat, name); });
    }
  }
  // Comm sweep: CI selects these with --benchmark_filter=Comm into
  // BENCH_spmv_comm.json (gated by scripts/bench_compare.py).
  for (int p : {12, 48}) {
    for (comm::Mode mode : {comm::Mode::Off, comm::Mode::Plan, comm::Mode::Overlap}) {
      std::string name = std::string("Comm/SpMV/") + comm::comm_mode_name(mode) +
                         "/" + std::to_string(p);
      register_point(name, p,
                     [p, mode, name] { return run_comm(p, mode, name); });
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace

LSR_BENCH_MAIN();
