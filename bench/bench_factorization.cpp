// Figure 12 (table): sparse matrix factorization with bias on the
// MovieLens-profile datasets — training throughput (samples/s) and minimum
// required resources per dataset.
//
// Reproduced effects (Section 6.2):
//  * CuPy is markedly faster on ML-10M (Legate's per-task overheads on the
//    small mini-batch ops),
//  * at ML-25M CuPy runs close to the single-GPU memory limit and its
//    cuSPARSE SDDMM dominates, while Legate simply adds a GPU,
//  * CuPy cannot fit ML-50M/100M at all; Legate handles them by adding
//    GPUs. The per-rating device footprint (dataset copies + the training
//    pipeline's staged sample embeddings) is calibrated to the paper's two
//    capacity observations: ML-25M nearly fills one 16 GB V100, ML-50M
//    exceeds it. Minimum-GPU counts are reported at true GPU granularity;
//    the paper reports whole-node allocations (see EXPERIMENTS.md).
#include "common.h"

#include <cmath>

#include "apps/workloads.h"
#include "baselines/ref/ref.h"
#include "sparse/formats.h"

namespace {

using namespace legate;

constexpr double kS = 10.0;        ///< dataset sample factor (nnz 1/10)
constexpr coord_t kFactors = 64;   ///< latent dimension
constexpr int kSteps = 3;          ///< timed SGD steps
/// Device bytes per (modeled) rating: CSR + COO copy + shuffle state +
/// staged sample embeddings. Calibrated to the paper's capacity anchors.
constexpr double kBytesPerRating = 544.0;

struct Sample {
  apps::RatingsDataset data;
  coord_t batch;           // real samples per step
  double modeled_samples;  // samples per step on the modeled machine
  double staging_real;     // bytes/kS of modeled pipeline residency
};

Sample make_sample(const apps::MovieLensProfile& prof) {
  Sample s;
  // Users, items and ratings all shrink by kS, so the factor matrices and
  // the dataset are modeled at exactly full size under cost_scale = kS.
  // (Density rises by kS but stays sparse, and every cost is nnz-linear.)
  s.data = apps::synthetic_movielens(
      static_cast<coord_t>(prof.users / kS),
      static_cast<coord_t>(prof.items / kS),
      static_cast<coord_t>(static_cast<double>(prof.nnz) / kS), 42);
  s.batch = std::max<coord_t>(2048, s.data.nnz() / 256);
  s.modeled_samples = static_cast<double>(s.batch) * kS;
  // Residency follows the *profile* nnz (the functional sample loses a few
  // percent to deduplication, the modeled dataset must not).
  s.staging_real = static_cast<double>(prof.nnz) * kBytesPerRating / kS;
  return s;
}

sparse::CsrMatrix make_batch(rt::Runtime& rt, const apps::RatingsDataset& d,
                             coord_t offset, coord_t count) {
  std::vector<coord_t> indptr{0}, indices;
  std::vector<double> vals;
  for (coord_t u = 0; u < d.users; ++u) {
    for (coord_t j = d.indptr[static_cast<std::size_t>(u)];
         j < d.indptr[static_cast<std::size_t>(u) + 1]; ++j) {
      if (j >= offset && j < offset + count) {
        indices.push_back(d.indices[static_cast<std::size_t>(j)]);
        vals.push_back(d.ratings[static_cast<std::size_t>(j)]);
      }
    }
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  return sparse::CsrMatrix::from_host(rt, d.users, d.items, indptr, indices, vals);
}

/// One Legate training run; returns samples/s. Throws OutOfMemoryError when
/// the configuration does not fit.
double run_legate(const Sample& s, int gpus, const std::string& point = {}) {
  sim::PerfParams pp;
  sim::Machine machine = sim::Machine::gpus(gpus, pp);
  rt::Runtime runtime(machine);
  runtime.engine().set_cost_scale(kS);
  // Device residency of the training pipeline, spread across framebuffers.
  for (const auto& proc : machine.procs())
    runtime.engine().alloc_bytes(proc.mem, s.staging_real / gpus);

  auto U = dense::DArray::random2d(runtime, s.data.users, kFactors, 1);
  auto V = dense::DArray::random2d(runtime, s.data.items, kFactors, 2);
  auto bu = dense::DArray::zeros(runtime, s.data.users);
  auto bi = dense::DArray::zeros(runtime, s.data.items);
  double lr = 1e-3;

  auto step = [&](coord_t off) {
    auto batch = make_batch(runtime, s.data, off, s.batch);
    auto mask = batch.power_values(0.0);
    auto Vt = V.transpose();  // the dense all-to-all the paper calls out
    auto pred = mask.sddmm(U, Vt)
                    .add(mask.scale_rows(bu))
                    .add(mask.scale_cols(bi))
                    .add(mask.scale(3.0));
    auto err = pred.sub(batch);
    auto dU = err.spmm(V);
    auto dV = err.transpose().spmm(U);
    auto dbu = err.sum(1);
    auto dbi = err.sum(0);
    U.axpy(-lr, dU);
    V.axpy(-lr, dV);
    bu.axpy(-lr, dbu);
    bi.axpy(-lr, dbi);
  };
  step(0);  // warmup: distributes factors, reaches allocation steady state
  lsr_bench::profile_begin(runtime.engine(), point);
  double t0 = runtime.sim_time();
  for (int k = 1; k <= kSteps; ++k) step(k * s.batch);
  double dt = (runtime.sim_time() - t0) / kSteps;
  lsr_bench::profile_end(runtime.engine(), point);
  return s.modeled_samples / dt;
}

/// CuPy training run; throws OutOfMemoryError on the larger datasets.
double run_cupy(const Sample& s) {
  using baselines::ref::RefCsr;
  using baselines::ref::RefVector;
  sim::PerfParams pp;
  baselines::ref::RefContext ctx(baselines::ref::Device::CupyGpu, pp);
  ctx.set_cost_scale(kS);
  ctx.alloc(s.staging_real);

  coord_t users = s.data.users, items = s.data.items;
  std::vector<double> U(static_cast<std::size_t>(users * kFactors), 0.05);
  std::vector<double> V(static_cast<std::size_t>(items * kFactors), 0.05);
  ctx.alloc(static_cast<double>(U.size() + V.size()) * 8.0);

  auto make_ref_batch = [&](coord_t off) {
    std::vector<coord_t> indptr{0}, indices;
    std::vector<double> vals;
    for (coord_t u = 0; u < users; ++u) {
      for (coord_t j = s.data.indptr[static_cast<std::size_t>(u)];
           j < s.data.indptr[static_cast<std::size_t>(u) + 1]; ++j) {
        if (j >= off && j < off + s.batch) {
          indices.push_back(s.data.indices[static_cast<std::size_t>(j)]);
          vals.push_back(s.data.ratings[static_cast<std::size_t>(j)]);
        }
      }
      indptr.push_back(static_cast<coord_t>(indices.size()));
    }
    return RefCsr(ctx, users, items, indptr, indices, vals);
  };

  auto step = [&](coord_t off) {
    RefCsr batch = make_ref_batch(off);
    // V^T materialization + SDDMM (cuSPARSE kernel: slow) + SpMM gradients.
    std::vector<double> Vt(static_cast<std::size_t>(kFactors * items));
    for (coord_t i = 0; i < items; ++i)
      for (coord_t l = 0; l < kFactors; ++l)
        Vt[static_cast<std::size_t>(l * items + i)] =
            V[static_cast<std::size_t>(i * kFactors + l)];
    ctx.charge(static_cast<double>(V.size()) * 16.0, 0);
    RefCsr err = batch.sddmm(U, Vt, kFactors);
    // CuPy cannot fuse: the bias terms and the subtraction are four more
    // library ops, each a full pass over the batch values.
    {
      double n = static_cast<double>(err.nnz());
      std::vector<double> vals = err.values();
      const auto& iptr = err.indptr();
      const auto& idx = err.indices();
      for (coord_t u = 0; u < users; ++u)
        for (coord_t j = iptr[static_cast<std::size_t>(u)];
             j < iptr[static_cast<std::size_t>(u) + 1]; ++j)
          vals[static_cast<std::size_t>(j)] += 3.0;
      (void)idx;
      for (int pass = 0; pass < 4; ++pass) ctx.charge(n * 40.0, n);
      err = RefCsr(ctx, users, items, iptr, idx, vals);
    }
    auto dU = err.spmm(V, kFactors);
    auto dV = err.transpose().spmm(U, kFactors);
    for (std::size_t i = 0; i < U.size(); ++i) U[i] -= 1e-3 * dU[i];
    for (std::size_t i = 0; i < V.size(); ++i) V[i] -= 1e-3 * dV[i];
    ctx.charge(static_cast<double>(U.size() + V.size()) * 24.0,
               static_cast<double>(U.size() + V.size()));
  };
  step(0);
  double t0 = ctx.now();
  for (int k = 1; k <= kSteps; ++k) step(k * s.batch);
  double dt = (ctx.now() - t0) / kSteps;
  return s.modeled_samples / dt;
}

void register_all() {
  using lsr_bench::register_oom;
  using lsr_bench::register_point;
  for (const auto& prof : apps::movielens_profiles()) {
    // Shared pointer so the (expensive) dataset is built once per profile.
    auto sample = std::make_shared<Sample>(make_sample(prof));
    std::string base = std::string("Fig12/Factorization/") + prof.name;

    // CuPy: single GPU or bust.
    try {
      double thr = run_cupy(*sample);
      (void)thr;
      register_point(base + "/CuPy-1GPU", 1, [sample] { return 1.0 / run_cupy(*sample); });
    } catch (const OutOfMemoryError&) {
      register_oom(base + "/CuPy-OOM", 1);
    }

    // Legate: smallest GPU count that fits.
    for (int gpus : {1, 2, 3, 4, 6, 8, 12, 16, 24}) {
      try {
        double thr = run_legate(*sample, gpus);
        (void)thr;
        std::string pname = base + "/Legate-minGPUs";
        register_point(pname, gpus, [sample, gpus, pname] {
          return 1.0 / run_legate(*sample, gpus, pname);
        });
        break;
      } catch (const OutOfMemoryError&) {
        continue;
      }
    }
    // The paper ran ML-100M on 12 GPUs (two full nodes), which pushes the
    // gradient's dense transposes onto Infiniband — the throughput cliff it
    // reports. Register that configuration too.
    if (std::string(prof.name) == "ML-100M") {
      std::string pname = base + "/Legate-2nodes";
      register_point(pname, 12,
                     [sample, pname] { return 1.0 / run_legate(*sample, 12, pname); });
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace

LSR_BENCH_MAIN();
