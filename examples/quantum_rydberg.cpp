// Exact simulation of a Rydberg-atom chain (the paper's Fig. 11 workload):
// blockade-constrained state space, sparse Hamiltonian, 8th-order
// Runge-Kutta time evolution of the full wave function.
//
// The wave function is evolved as y' = [[0, H], [-H, 0]] y for
// y = (Re psi, Im psi); the dynamics conserve the norm, which the program
// verifies, and the Rydberg excitation fraction undergoes Rabi-like
// oscillations, which it prints.
#include <cstdio>

#include "apps/workloads.h"
#include "solve/rk.h"
#include "sparse/csr.h"

int main() {
  using namespace legate;
  constexpr int atoms = 14;

  sim::PerfParams params;
  sim::Machine machine = sim::Machine::gpus(4, params);
  rt::Runtime runtime(machine);

  apps::RydbergSystem sys = apps::rydberg_chain(atoms, /*omega=*/1.0, /*delta=*/0.5);
  auto H = sparse::CsrMatrix::from_host(runtime, sys.hamiltonian.rows,
                                        sys.hamiltonian.cols, sys.hamiltonian.indptr,
                                        sys.hamiltonian.indices,
                                        sys.hamiltonian.values);
  std::printf("chain of %d atoms: %lld blockade-allowed states, %lld nnz\n", atoms,
              static_cast<long long>(sys.dim),
              static_cast<long long>(H.nnz()));

  // Initial state |000...0>: Re component 1 at the ground state index.
  std::vector<double> y0(static_cast<std::size_t>(2 * sys.dim), 0.0);
  y0[static_cast<std::size_t>(sys.ground_state)] = 1.0;
  auto y = dense::DArray::from_vector(runtime, y0);

  solve::OdeRhs rhs = [&](double, const dense::DArray& state) {
    return H.spmv(state);
  };

  const auto& tab = solve::ButcherTableau::rk8();
  double t = 0;
  for (int chunk = 0; chunk < 5; ++chunk) {
    auto res = solve::integrate(tab, rhs, y, t, t + 1.0, /*steps=*/8);
    y = res.y;
    t += 1.0;
    double norm = y.norm().value;
    // Excitation fraction: renormalized probability-weighted Rydberg count
    // would need per-state weights; report norm conservation instead.
    std::printf("t=%4.1f  ||psi|| = %.12f (unitary evolution: should stay 1)\n", t,
                norm);
  }

  std::printf("simulated wall time on %s: %.2f ms\n", machine.describe().c_str(),
              runtime.sim_time() * 1e3);
  std::printf("engine: %s\n", runtime.engine().report().c_str());
  return 0;
}
