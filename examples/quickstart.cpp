// Quickstart: the paper's Fig. 1 program, translated to the C++ API.
//
//   A = sparse.random(n, n, format='csr')
//   A = 0.5 * (A + A.T) + n * sparse.eye(n)
//   x = np.random.rand(n)
//   for _ in range(iters): x = A @ x; x /= norm(x)
//   result = x.T @ (A @ x)
//
// Runs on a simulated 6-GPU Summit node; the same code runs on any machine
// shape (change Machine::gpus / Machine::sockets).
#include <cstdio>

#include "dense/array.h"
#include "sparse/formats.h"

int main() {
  using namespace legate;
  constexpr coord_t n = 4096;
  constexpr int iters = 25;

  sim::PerfParams params;
  sim::Machine machine = sim::Machine::gpus(6, params);
  rt::Runtime runtime(machine);

  // Random sparse matrix, made symmetric positive definite.
  sparse::CsrMatrix R = sparse::random_csr(runtime, n, n, 0.001, /*seed=*/42);
  sparse::CsrMatrix A = R.add(R.transpose())
                            .scale(0.5)
                            .add(sparse::eye(runtime, n).scale(double(n)));

  // Power iteration with a Rayleigh quotient.
  dense::DArray x = dense::DArray::random(runtime, n, /*seed=*/7);
  for (int i = 0; i < iters; ++i) {
    x = A.spmv(x);
    dense::Scalar nrm = x.norm();
    x.iscale({1.0 / nrm.value, nrm.ready});
  }
  double result = x.dot(A.spmv(x)).value;

  std::printf("machine:           %s\n", machine.describe().c_str());
  std::printf("matrix:            %lld x %lld, %lld non-zeros\n",
              static_cast<long long>(A.rows()), static_cast<long long>(A.cols()),
              static_cast<long long>(A.nnz()));
  std::printf("max eigenvalue ~=  %.6f (Gershgorin center %d)\n", result, int(n));
  std::printf("simulated time:    %.3f ms for %d power iterations\n",
              runtime.sim_time() * 1e3, iters);
  std::printf("engine:            %s\n", runtime.engine().report().c_str());
  return 0;
}
