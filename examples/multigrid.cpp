// Two-level geometric multigrid preconditioned CG on a 2-D Poisson problem
// (the paper's Fig. 10 workload): injection restriction, weighted-Jacobi
// smoother. Compares plain and GMG-preconditioned iteration counts.
#include <cstdio>

#include "solve/multigrid.h"
#include "sparse/formats.h"

int main() {
  using namespace legate;
  constexpr coord_t grid = 64;

  sim::PerfParams params;
  sim::Machine machine = sim::Machine::gpus(3, params);
  rt::Runtime runtime(machine);

  // A = kron(I, T) + kron(T, I): the 5-point Laplacian.
  sparse::CsrMatrix t =
      sparse::diags(runtime, grid, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
  sparse::CsrMatrix i = sparse::eye(runtime, grid);
  sparse::CsrMatrix A = sparse::kron(i, t).add(sparse::kron(t, i));

  sparse::CsrMatrix R = solve::TwoLevelGmg::injection_2d(runtime, grid);
  solve::TwoLevelGmg gmg(A, R);

  auto b = dense::DArray::random(runtime, grid * grid, 1);

  std::printf("2-D Poisson %lldx%lld (%lld unknowns), coarse grid %lld unknowns\n",
              static_cast<long long>(grid), static_cast<long long>(grid),
              static_cast<long long>(A.rows()),
              static_cast<long long>(gmg.coarse_operator().rows()));

  auto plain = solve::cg(A, b, 1e-8, 20000);
  std::printf("plain CG:   %5d iterations, residual %.2e\n", plain.iterations,
              plain.residual);

  auto pre = solve::cg(A, b, 1e-8, 20000, gmg.preconditioner());
  std::printf("GMG-CG:     %5d iterations, residual %.2e\n", pre.iterations,
              pre.residual);

  double diff = plain.x.sub(pre.x).norm().value / plain.x.norm().value;
  std::printf("solutions agree to %.2e (relative)\n", diff);
  std::printf("engine: %s\n", runtime.engine().report().c_str());
  return 0;
}
