// PageRank on a synthetic power-law web graph: the classic SpMV-driven
// workload, written exactly as the SciPy version would be —
//
//   r = (1-d)/n + d * (A_norm.T @ r)      until ||r - r_prev||_1 < tol
//
// and exercising the composition of the sparse library (transpose,
// scale_rows, spmv) with the dense library (axpy, norms, reductions).
#include <cstdio>

#include "dense/array.h"
#include "sparse/formats.h"
#include "util/rng.h"

int main() {
  using namespace legate;
  constexpr coord_t n = 20000;     // pages
  constexpr coord_t avg_deg = 12;  // links per page
  constexpr double d = 0.85;       // damping

  sim::PerfParams params;
  sim::Machine machine = sim::Machine::gpus(4, params);
  rt::Runtime runtime(machine);

  // Synthetic link graph: Zipf-popular targets (hubs), uniform sources.
  Rng rng(1234);
  std::vector<coord_t> indptr{0}, indices;
  std::vector<double> values;
  for (coord_t src = 0; src < n; ++src) {
    coord_t deg = 1 + static_cast<coord_t>(rng.next_below(2 * avg_deg));
    std::vector<coord_t> targets;
    for (coord_t k = 0; k < deg; ++k) targets.push_back(rng.next_zipf(n, 1.3));
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (coord_t t : targets) {
      indices.push_back(t);
      values.push_back(1.0);
    }
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  auto A = sparse::CsrMatrix::from_host(runtime, n, n, indptr, indices, values);

  // Row-normalize (each page splits its rank across its out-links), then
  // transpose so that ranks flow along in-links.
  auto out_deg = A.row_nnz();
  auto inv_deg = out_deg.maximum(dense::DArray::full(runtime, n, 1.0)).reciprocal();
  auto M = A.scale_rows(inv_deg).transpose();

  auto r = dense::DArray::full(runtime, n, 1.0 / n);
  double teleport = (1.0 - d) / static_cast<double>(n);
  int iters = 0;
  double delta = 1.0;
  while (delta > 1e-10 && iters < 200) {
    auto next = M.spmv(r).scale(d).add_scalar(teleport);
    delta = next.sub(r).abs().sum().value;
    r = next;
    ++iters;
  }

  auto ranks = r.to_vector();
  coord_t best = 0;
  for (coord_t i = 1; i < n; ++i)
    if (ranks[static_cast<std::size_t>(i)] > ranks[static_cast<std::size_t>(best)])
      best = i;

  std::printf("graph:      %lld pages, %lld links\n", static_cast<long long>(n),
              static_cast<long long>(A.nnz()));
  std::printf("converged:  %d iterations (L1 delta %.2e)\n", iters, delta);
  std::printf("rank mass:  %.6f (should stay ~1 up to dangling leakage)\n",
              r.sum().value);
  std::printf("top page:   #%lld with rank %.3e (hubs win under Zipf targets)\n",
              static_cast<long long>(best),
              ranks[static_cast<std::size_t>(best)]);
  std::printf("simulated:  %.2f ms on %s\n", runtime.sim_time() * 1e3,
              machine.describe().c_str());
  return 0;
}
