// Conjugate-gradient solve of a 2-D Poisson problem (the paper's Fig. 9
// workload), comparing the same algorithm on a GPU machine and a CPU
// machine, plus the PETSc-style baseline on identical data.
//
// Pass `--trace out.json` to record the 3-GPU solve's timeline and dump a
// Chrome-trace file (open in chrome://tracing or https://ui.perfetto.dev),
// along with the utilization / traffic / critical-path summary.
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/workloads.h"
#include "baselines/petsc/petsc.h"
#include "prof/analysis.h"
#include "prof/trace.h"
#include "solve/krylov.h"
#include "sparse/csr.h"

int main(int argc, char** argv) {
  using namespace legate;
  constexpr coord_t grid = 128;

  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else {
      std::fprintf(stderr, "usage: %s [--trace out.json]\n", argv[0]);
      return 1;
    }
  }

  sim::PerfParams params;
  apps::HostProblem prob = apps::poisson2d(grid);
  std::vector<double> rhs(static_cast<std::size_t>(prob.rows), 1.0);

  std::printf("2-D Poisson, %lld x %lld grid (%lld unknowns, %lld nnz)\n\n",
              static_cast<long long>(grid), static_cast<long long>(grid),
              static_cast<long long>(prob.rows), static_cast<long long>(prob.nnz()));

  // --- Legate Sparse on 3 GPUs --------------------------------------------
  {
    sim::Machine machine = sim::Machine::gpus(3, params);
    rt::Runtime runtime(machine);
    if (!trace_path.empty()) runtime.engine().recorder().enable();
    auto A = sparse::CsrMatrix::from_host(runtime, prob.rows, prob.cols,
                                          prob.indptr, prob.indices, prob.values);
    auto b = dense::DArray::from_vector(runtime, rhs);
    auto res = solve::cg(A, b, 1e-8, 5000);
    std::printf("Legate-GPU (3 GPUs):   %4d iterations, residual %.2e, %.2f ms simulated\n",
                res.iterations, res.residual, runtime.sim_time() * 1e3);
    if (!trace_path.empty()) {
      std::printf("\n%s", prof::summary(runtime.engine().recorder(),
                                        runtime.engine().makespan()).c_str());
      prof::write_chrome_trace(runtime.engine().recorder(), trace_path);
      std::printf("trace written to %s (%zu events)\n\n", trace_path.c_str(),
                  runtime.engine().recorder().events().size());
    }
  }

  // --- Legate Sparse on 2 CPU sockets ---------------------------------------
  {
    sim::Machine machine = sim::Machine::sockets(2, params);
    rt::Runtime runtime(machine);
    auto A = sparse::CsrMatrix::from_host(runtime, prob.rows, prob.cols,
                                          prob.indptr, prob.indices, prob.values);
    auto b = dense::DArray::from_vector(runtime, rhs);
    auto res = solve::cg(A, b, 1e-8, 5000);
    std::printf("Legate-CPU (2 sockets): %4d iterations, residual %.2e, %.2f ms simulated\n",
                res.iterations, res.residual, runtime.sim_time() * 1e3);
  }

  // --- PETSc baseline on 3 GPUs ----------------------------------------------
  {
    baselines::mpisim::MpiSim sim(sim::ProcKind::GPU, 3, params);
    baselines::petsc::Mat A(sim, prob.rows, prob.cols, prob.indptr, prob.indices,
                            prob.values);
    baselines::petsc::Vec b(sim, rhs);
    auto res = baselines::petsc::ksp_cg(A, b, 1e-8, 5000);
    std::printf("PETSc-GPU (3 GPUs):    %4d iterations, residual %.2e, %.2f ms simulated\n",
                res.iterations, res.residual, sim.makespan() * 1e3);
  }
  return 0;
}
