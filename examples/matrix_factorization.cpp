// Sparse matrix factorization with bias (the paper's Fig. 12 workload):
// rating(u, i) ~ mu + b_u + b_i + U_u . V_i, trained with mini-batch SGD.
//
// The key optimization is the SDDMM kernel (sampled dense-dense matmul),
// which evaluates the model only at the sampled ratings instead of
// materializing the dense U @ V^T (Section 6.2 of the paper). The gradient
// uses a dense transpose (an all-to-all shuffle) each step — the
// communication pattern the paper calls out at larger scales.
#include <cstdio>

#include "apps/workloads.h"
#include "sparse/formats.h"
#include "util/rng.h"

namespace {

using namespace legate;

/// One epoch of mini-batch SGD; returns the mean squared training error of
/// the last batch.
struct Trainer {
  rt::Runtime& rt;
  coord_t users, items, k;
  dense::DArray U, V, bu, bi;
  double mu, lr, reg;

  Trainer(rt::Runtime& rt_, coord_t users_, coord_t items_, coord_t k_, double mu_)
      : rt(rt_),
        users(users_),
        items(items_),
        k(k_),
        U(dense::DArray::random2d(rt_, users_, k_, 1)),
        V(dense::DArray::random2d(rt_, items_, k_, 2)),
        bu(dense::DArray::zeros(rt_, users_)),
        bi(dense::DArray::zeros(rt_, items_)),
        mu(mu_),
        lr(0.004),
        reg(0.05) {
    U.iscale(0.1);
    V.iscale(0.1);
  }

  double step(const sparse::CsrMatrix& batch) {
    coord_t n = batch.nnz();
    if (n == 0) return 0.0;
    // mask: the batch pattern with unit values.
    sparse::CsrMatrix mask = batch.power_values(0.0);
    // Model predictions on the sampled pattern: mu + b_u + b_i + U V^T.
    dense::DArray Vt = V.transpose();  // all-to-all shuffle, as in the paper
    sparse::CsrMatrix pred = mask.sddmm(U, Vt)
                                 .add(mask.scale_rows(bu))
                                 .add(mask.scale_cols(bi))
                                 .add(mask.scale(mu));
    sparse::CsrMatrix err = pred.sub(batch);
    double mse = err.power_values(2.0).sum_all().value / static_cast<double>(n);

    // Gradients; factors also get L2 shrinkage.
    dense::DArray dU = err.spmm(V);
    dense::DArray dV = err.transpose().spmm(U);
    dense::DArray dbu = err.sum(1);
    dense::DArray dbi = err.sum(0);
    U.iscale(1.0 - lr * reg);
    V.iscale(1.0 - lr * reg);
    U.axpy(-lr, dU);
    V.axpy(-lr, dV);
    bu.axpy(-lr, dbu);
    bi.axpy(-lr, dbi);
    return mse;
  }
};

/// Slice `count` ratings starting at `offset` (wrapping) into a batch CSR.
sparse::CsrMatrix make_batch(rt::Runtime& rt, const apps::RatingsDataset& data,
                             coord_t offset, coord_t count) {
  std::vector<coord_t> indptr{0}, indices;
  std::vector<double> vals;
  coord_t taken = 0;
  for (coord_t u = 0; u < data.users; ++u) {
    for (coord_t j = data.indptr[static_cast<std::size_t>(u)];
         j < data.indptr[static_cast<std::size_t>(u) + 1]; ++j) {
      coord_t pos = j;
      bool in_batch = pos >= offset && pos < offset + count;
      if (in_batch) {
        indices.push_back(data.indices[static_cast<std::size_t>(j)]);
        vals.push_back(data.ratings[static_cast<std::size_t>(j)]);
        ++taken;
      }
    }
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  (void)taken;
  return sparse::CsrMatrix::from_host(rt, data.users, data.items, indptr, indices,
                                      vals);
}

}  // namespace

int main() {
  constexpr coord_t users = 2000, items = 800, nnz = 40000, k = 16;

  sim::PerfParams params;
  sim::Machine machine = sim::Machine::gpus(2, params);
  rt::Runtime runtime(machine);

  apps::RatingsDataset data = apps::synthetic_movielens(users, items, nnz, 42);
  double mu = 0;
  for (double r : data.ratings) mu += r;
  mu /= static_cast<double>(data.nnz());

  Trainer trainer(runtime, users, items, k, mu);
  std::printf("dataset: %lld users x %lld items, %lld ratings (mean %.2f)\n",
              static_cast<long long>(users), static_cast<long long>(items),
              static_cast<long long>(data.nnz()), mu);

  const coord_t batch = 8000;
  double first_mse = -1, last_mse = 0;
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (coord_t off = 0; off + batch <= data.nnz(); off += batch) {
      last_mse = trainer.step(make_batch(runtime, data, off, batch));
      if (first_mse < 0) first_mse = last_mse;
    }
    std::printf("epoch %d: batch MSE %.4f\n", epoch, last_mse);
    trainer.lr *= 0.7;  // simple step-decay schedule keeps SGD stable
  }
  std::printf("MSE improved %.4f -> %.4f (training works)\n", first_mse, last_mse);
  std::printf("simulated time: %.1f ms on %s\n", runtime.sim_time() * 1e3,
              machine.describe().c_str());
  return 0;
}
