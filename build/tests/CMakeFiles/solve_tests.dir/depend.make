# Empty dependencies file for solve_tests.
# This may be replaced when dependencies are built.
