file(REMOVE_RECURSE
  "CMakeFiles/solve_tests.dir/solve/krylov_test.cpp.o"
  "CMakeFiles/solve_tests.dir/solve/krylov_test.cpp.o.d"
  "CMakeFiles/solve_tests.dir/solve/lanczos_test.cpp.o"
  "CMakeFiles/solve_tests.dir/solve/lanczos_test.cpp.o.d"
  "CMakeFiles/solve_tests.dir/solve/multigrid_test.cpp.o"
  "CMakeFiles/solve_tests.dir/solve/multigrid_test.cpp.o.d"
  "CMakeFiles/solve_tests.dir/solve/rk_test.cpp.o"
  "CMakeFiles/solve_tests.dir/solve/rk_test.cpp.o.d"
  "solve_tests"
  "solve_tests.pdb"
  "solve_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
