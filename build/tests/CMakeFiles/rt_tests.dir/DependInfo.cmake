
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rt/coalescing_test.cpp" "tests/CMakeFiles/rt_tests.dir/rt/coalescing_test.cpp.o" "gcc" "tests/CMakeFiles/rt_tests.dir/rt/coalescing_test.cpp.o.d"
  "/root/repo/tests/rt/constraint_test.cpp" "tests/CMakeFiles/rt_tests.dir/rt/constraint_test.cpp.o" "gcc" "tests/CMakeFiles/rt_tests.dir/rt/constraint_test.cpp.o.d"
  "/root/repo/tests/rt/partition_test.cpp" "tests/CMakeFiles/rt_tests.dir/rt/partition_test.cpp.o" "gcc" "tests/CMakeFiles/rt_tests.dir/rt/partition_test.cpp.o.d"
  "/root/repo/tests/rt/runtime_test.cpp" "tests/CMakeFiles/rt_tests.dir/rt/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/rt_tests.dir/rt/runtime_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/lsr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
