# Empty dependencies file for rt_tests.
# This may be replaced when dependencies are built.
