file(REMOVE_RECURSE
  "CMakeFiles/rt_tests.dir/rt/coalescing_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/coalescing_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/constraint_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/constraint_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/partition_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/partition_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/runtime_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/runtime_test.cpp.o.d"
  "rt_tests"
  "rt_tests.pdb"
  "rt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
