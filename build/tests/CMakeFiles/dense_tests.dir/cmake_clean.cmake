file(REMOVE_RECURSE
  "CMakeFiles/dense_tests.dir/dense/dense_test.cpp.o"
  "CMakeFiles/dense_tests.dir/dense/dense_test.cpp.o.d"
  "dense_tests"
  "dense_tests.pdb"
  "dense_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
