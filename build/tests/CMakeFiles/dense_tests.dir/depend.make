# Empty dependencies file for dense_tests.
# This may be replaced when dependencies are built.
