# Empty compiler generated dependencies file for sparse_tests.
# This may be replaced when dependencies are built.
