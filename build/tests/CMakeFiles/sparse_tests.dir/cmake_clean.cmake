file(REMOVE_RECURSE
  "CMakeFiles/sparse_tests.dir/sparse/construct_test.cpp.o"
  "CMakeFiles/sparse_tests.dir/sparse/construct_test.cpp.o.d"
  "CMakeFiles/sparse_tests.dir/sparse/convert_test.cpp.o"
  "CMakeFiles/sparse_tests.dir/sparse/convert_test.cpp.o.d"
  "CMakeFiles/sparse_tests.dir/sparse/csr_test.cpp.o"
  "CMakeFiles/sparse_tests.dir/sparse/csr_test.cpp.o.d"
  "CMakeFiles/sparse_tests.dir/sparse/extra_test.cpp.o"
  "CMakeFiles/sparse_tests.dir/sparse/extra_test.cpp.o.d"
  "CMakeFiles/sparse_tests.dir/sparse/pattern_test.cpp.o"
  "CMakeFiles/sparse_tests.dir/sparse/pattern_test.cpp.o.d"
  "CMakeFiles/sparse_tests.dir/sparse/property_test.cpp.o"
  "CMakeFiles/sparse_tests.dir/sparse/property_test.cpp.o.d"
  "sparse_tests"
  "sparse_tests.pdb"
  "sparse_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
