
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sparse/construct_test.cpp" "tests/CMakeFiles/sparse_tests.dir/sparse/construct_test.cpp.o" "gcc" "tests/CMakeFiles/sparse_tests.dir/sparse/construct_test.cpp.o.d"
  "/root/repo/tests/sparse/convert_test.cpp" "tests/CMakeFiles/sparse_tests.dir/sparse/convert_test.cpp.o" "gcc" "tests/CMakeFiles/sparse_tests.dir/sparse/convert_test.cpp.o.d"
  "/root/repo/tests/sparse/csr_test.cpp" "tests/CMakeFiles/sparse_tests.dir/sparse/csr_test.cpp.o" "gcc" "tests/CMakeFiles/sparse_tests.dir/sparse/csr_test.cpp.o.d"
  "/root/repo/tests/sparse/extra_test.cpp" "tests/CMakeFiles/sparse_tests.dir/sparse/extra_test.cpp.o" "gcc" "tests/CMakeFiles/sparse_tests.dir/sparse/extra_test.cpp.o.d"
  "/root/repo/tests/sparse/pattern_test.cpp" "tests/CMakeFiles/sparse_tests.dir/sparse/pattern_test.cpp.o" "gcc" "tests/CMakeFiles/sparse_tests.dir/sparse/pattern_test.cpp.o.d"
  "/root/repo/tests/sparse/property_test.cpp" "tests/CMakeFiles/sparse_tests.dir/sparse/property_test.cpp.o" "gcc" "tests/CMakeFiles/sparse_tests.dir/sparse/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/lsr_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/lsr_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/lsr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
