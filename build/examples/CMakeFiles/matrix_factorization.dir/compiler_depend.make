# Empty compiler generated dependencies file for matrix_factorization.
# This may be replaced when dependencies are built.
