
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quantum_rydberg.cpp" "examples/CMakeFiles/quantum_rydberg.dir/quantum_rydberg.cpp.o" "gcc" "examples/CMakeFiles/quantum_rydberg.dir/quantum_rydberg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solve/CMakeFiles/lsr_solve.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lsr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lsr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/lsr_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/lsr_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/lsr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
