# Empty dependencies file for quantum_rydberg.
# This may be replaced when dependencies are built.
