file(REMOVE_RECURSE
  "CMakeFiles/quantum_rydberg.dir/quantum_rydberg.cpp.o"
  "CMakeFiles/quantum_rydberg.dir/quantum_rydberg.cpp.o.d"
  "quantum_rydberg"
  "quantum_rydberg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantum_rydberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
