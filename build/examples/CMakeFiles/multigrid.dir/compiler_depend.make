# Empty compiler generated dependencies file for multigrid.
# This may be replaced when dependencies are built.
