file(REMOVE_RECURSE
  "CMakeFiles/multigrid.dir/multigrid.cpp.o"
  "CMakeFiles/multigrid.dir/multigrid.cpp.o.d"
  "multigrid"
  "multigrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
