# Empty dependencies file for multigrid.
# This may be replaced when dependencies are built.
