# Empty dependencies file for lsr_apps.
# This may be replaced when dependencies are built.
