file(REMOVE_RECURSE
  "CMakeFiles/lsr_apps.dir/workloads.cpp.o"
  "CMakeFiles/lsr_apps.dir/workloads.cpp.o.d"
  "liblsr_apps.a"
  "liblsr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
