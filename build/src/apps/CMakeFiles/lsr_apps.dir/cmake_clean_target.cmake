file(REMOVE_RECURSE
  "liblsr_apps.a"
)
