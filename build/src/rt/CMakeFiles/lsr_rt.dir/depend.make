# Empty dependencies file for lsr_rt.
# This may be replaced when dependencies are built.
