file(REMOVE_RECURSE
  "liblsr_rt.a"
)
