file(REMOVE_RECURSE
  "CMakeFiles/lsr_rt.dir/partition.cpp.o"
  "CMakeFiles/lsr_rt.dir/partition.cpp.o.d"
  "CMakeFiles/lsr_rt.dir/runtime.cpp.o"
  "CMakeFiles/lsr_rt.dir/runtime.cpp.o.d"
  "liblsr_rt.a"
  "liblsr_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsr_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
