file(REMOVE_RECURSE
  "CMakeFiles/lsr_solve.dir/krylov.cpp.o"
  "CMakeFiles/lsr_solve.dir/krylov.cpp.o.d"
  "CMakeFiles/lsr_solve.dir/lanczos.cpp.o"
  "CMakeFiles/lsr_solve.dir/lanczos.cpp.o.d"
  "CMakeFiles/lsr_solve.dir/multigrid.cpp.o"
  "CMakeFiles/lsr_solve.dir/multigrid.cpp.o.d"
  "CMakeFiles/lsr_solve.dir/rk.cpp.o"
  "CMakeFiles/lsr_solve.dir/rk.cpp.o.d"
  "liblsr_solve.a"
  "liblsr_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsr_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
