# Empty compiler generated dependencies file for lsr_solve.
# This may be replaced when dependencies are built.
