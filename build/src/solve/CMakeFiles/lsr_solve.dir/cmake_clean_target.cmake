file(REMOVE_RECURSE
  "liblsr_solve.a"
)
