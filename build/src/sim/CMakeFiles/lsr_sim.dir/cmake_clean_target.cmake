file(REMOVE_RECURSE
  "liblsr_sim.a"
)
