file(REMOVE_RECURSE
  "CMakeFiles/lsr_sim.dir/engine.cpp.o"
  "CMakeFiles/lsr_sim.dir/engine.cpp.o.d"
  "CMakeFiles/lsr_sim.dir/machine.cpp.o"
  "CMakeFiles/lsr_sim.dir/machine.cpp.o.d"
  "liblsr_sim.a"
  "liblsr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
