# Empty compiler generated dependencies file for lsr_sim.
# This may be replaced when dependencies are built.
