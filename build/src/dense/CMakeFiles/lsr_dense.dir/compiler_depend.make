# Empty compiler generated dependencies file for lsr_dense.
# This may be replaced when dependencies are built.
