file(REMOVE_RECURSE
  "CMakeFiles/lsr_dense.dir/array.cpp.o"
  "CMakeFiles/lsr_dense.dir/array.cpp.o.d"
  "liblsr_dense.a"
  "liblsr_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsr_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
