file(REMOVE_RECURSE
  "liblsr_dense.a"
)
