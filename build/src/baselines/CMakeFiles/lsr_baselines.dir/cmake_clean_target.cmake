file(REMOVE_RECURSE
  "liblsr_baselines.a"
)
