# Empty dependencies file for lsr_baselines.
# This may be replaced when dependencies are built.
