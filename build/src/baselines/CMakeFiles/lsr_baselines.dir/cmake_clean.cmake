file(REMOVE_RECURSE
  "CMakeFiles/lsr_baselines.dir/mpisim/mpisim.cpp.o"
  "CMakeFiles/lsr_baselines.dir/mpisim/mpisim.cpp.o.d"
  "CMakeFiles/lsr_baselines.dir/petsc/petsc.cpp.o"
  "CMakeFiles/lsr_baselines.dir/petsc/petsc.cpp.o.d"
  "CMakeFiles/lsr_baselines.dir/ref/ref.cpp.o"
  "CMakeFiles/lsr_baselines.dir/ref/ref.cpp.o.d"
  "liblsr_baselines.a"
  "liblsr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
