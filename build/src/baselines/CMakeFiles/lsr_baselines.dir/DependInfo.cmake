
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/mpisim/mpisim.cpp" "src/baselines/CMakeFiles/lsr_baselines.dir/mpisim/mpisim.cpp.o" "gcc" "src/baselines/CMakeFiles/lsr_baselines.dir/mpisim/mpisim.cpp.o.d"
  "/root/repo/src/baselines/petsc/petsc.cpp" "src/baselines/CMakeFiles/lsr_baselines.dir/petsc/petsc.cpp.o" "gcc" "src/baselines/CMakeFiles/lsr_baselines.dir/petsc/petsc.cpp.o.d"
  "/root/repo/src/baselines/ref/ref.cpp" "src/baselines/CMakeFiles/lsr_baselines.dir/ref/ref.cpp.o" "gcc" "src/baselines/CMakeFiles/lsr_baselines.dir/ref/ref.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lsr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
