file(REMOVE_RECURSE
  "CMakeFiles/lsr_sparse.dir/construct.cpp.o"
  "CMakeFiles/lsr_sparse.dir/construct.cpp.o.d"
  "CMakeFiles/lsr_sparse.dir/convert.cpp.o"
  "CMakeFiles/lsr_sparse.dir/convert.cpp.o.d"
  "CMakeFiles/lsr_sparse.dir/csr.cpp.o"
  "CMakeFiles/lsr_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/lsr_sparse.dir/extra.cpp.o"
  "CMakeFiles/lsr_sparse.dir/extra.cpp.o.d"
  "CMakeFiles/lsr_sparse.dir/pattern.cpp.o"
  "CMakeFiles/lsr_sparse.dir/pattern.cpp.o.d"
  "liblsr_sparse.a"
  "liblsr_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsr_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
