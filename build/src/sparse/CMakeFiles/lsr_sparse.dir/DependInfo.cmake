
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/construct.cpp" "src/sparse/CMakeFiles/lsr_sparse.dir/construct.cpp.o" "gcc" "src/sparse/CMakeFiles/lsr_sparse.dir/construct.cpp.o.d"
  "/root/repo/src/sparse/convert.cpp" "src/sparse/CMakeFiles/lsr_sparse.dir/convert.cpp.o" "gcc" "src/sparse/CMakeFiles/lsr_sparse.dir/convert.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/lsr_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/lsr_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/extra.cpp" "src/sparse/CMakeFiles/lsr_sparse.dir/extra.cpp.o" "gcc" "src/sparse/CMakeFiles/lsr_sparse.dir/extra.cpp.o.d"
  "/root/repo/src/sparse/pattern.cpp" "src/sparse/CMakeFiles/lsr_sparse.dir/pattern.cpp.o" "gcc" "src/sparse/CMakeFiles/lsr_sparse.dir/pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dense/CMakeFiles/lsr_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/lsr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lsr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
