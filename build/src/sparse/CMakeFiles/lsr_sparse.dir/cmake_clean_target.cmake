file(REMOVE_RECURSE
  "liblsr_sparse.a"
)
