# Empty compiler generated dependencies file for lsr_sparse.
# This may be replaced when dependencies are built.
