file(REMOVE_RECURSE
  "CMakeFiles/bench_gmg.dir/bench_gmg.cpp.o"
  "CMakeFiles/bench_gmg.dir/bench_gmg.cpp.o.d"
  "bench_gmg"
  "bench_gmg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
