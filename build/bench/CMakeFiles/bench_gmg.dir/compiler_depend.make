# Empty compiler generated dependencies file for bench_gmg.
# This may be replaced when dependencies are built.
