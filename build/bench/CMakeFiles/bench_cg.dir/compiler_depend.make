# Empty compiler generated dependencies file for bench_cg.
# This may be replaced when dependencies are built.
