file(REMOVE_RECURSE
  "CMakeFiles/bench_cg.dir/bench_cg.cpp.o"
  "CMakeFiles/bench_cg.dir/bench_cg.cpp.o.d"
  "bench_cg"
  "bench_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
