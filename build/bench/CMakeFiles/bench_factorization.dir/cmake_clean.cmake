file(REMOVE_RECURSE
  "CMakeFiles/bench_factorization.dir/bench_factorization.cpp.o"
  "CMakeFiles/bench_factorization.dir/bench_factorization.cpp.o.d"
  "bench_factorization"
  "bench_factorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_factorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
