#pragma once

#include <memory>
#include <span>
#include <vector>

#include "rt/dtype.h"
#include "util/interval.h"

namespace legate::rt {

class Runtime;
using StoreId = std::uint64_t;

namespace detail {
/// Backing state of a store. The canonical data always lives in this host
/// buffer (leaf tasks compute on it directly and bit-exactly); the runtime's
/// allocation/validity machinery models where copies of it live on the
/// simulated machine. On destruction the runtime is notified so simulated
/// allocations are released (this is what lets the mapper reuse the
/// out-of-scope x0 allocations in the paper's Fig. 5 walk-through).
///
/// The buffer itself is held through a shared_ptr: deferred launches
/// (legate::exec) keep the *bytes* alive via StoreView without extending the
/// store's runtime-visible lifetime, so release accounting still fires at
/// the caller's drop position in the task stream.
struct StoreImpl {
  StoreImpl(Runtime* rt_, StoreId id_, DType dtype_, std::vector<coord_t> shape_);
  ~StoreImpl();
  StoreImpl(const StoreImpl&) = delete;
  StoreImpl& operator=(const StoreImpl&) = delete;

  Runtime* rt;
  StoreId id;
  DType dtype;
  std::vector<coord_t> shape;  ///< 1 or 2 dims; 2-D is row-major
  std::shared_ptr<std::vector<std::byte>> data;

  [[nodiscard]] coord_t volume() const {
    coord_t v = 1;
    for (auto s : shape) v *= s;
    return v;
  }
};

/// Out-of-line fence hook (Runtime is incomplete here): drains the deferred
/// execution pipeline before the caller touches canonical bytes, and marks
/// the store externally accessed (spans are mutable, so cached
/// eagerly-computed image partitions of it must be invalidated).
void sync_for_access(const StoreImpl* impl);

/// Identity + canonical-buffer view of a store, used by the deferred
/// execution path (leaf tasks on pool threads, replayed simulation
/// accounting). Copyable into closures; does NOT fence on access.
struct StoreView {
  StoreId id{0};
  DType dtype{DType::F64};
  coord_t basis{0};   ///< partitionable units (rows for 2-D)
  coord_t stride{1};  ///< elements per basis unit
  coord_t volume{0};
  std::shared_ptr<std::vector<std::byte>> data;

  [[nodiscard]] Interval extent() const { return {0, volume}; }
  [[nodiscard]] std::span<std::byte> raw() const { return {data->data(), data->size()}; }
  template <typename T>
  [[nodiscard]] std::span<T> span() const {
    LSR_CHECK(dtype_of<T>::value == dtype);
    return {reinterpret_cast<T*>(data->data()), static_cast<std::size_t>(volume)};
  }
};
}  // namespace detail

/// Lightweight handle to a region-backed array (a Legate "store").
/// Copies share the same underlying data, like Legion region handles.
class Store {
 public:
  Store() = default;
  explicit Store(std::shared_ptr<detail::StoreImpl> impl) : impl_(std::move(impl)) {}

  [[nodiscard]] bool valid() const { return impl_ != nullptr; }
  [[nodiscard]] StoreId id() const { return impl_->id; }
  [[nodiscard]] DType dtype() const { return impl_->dtype; }
  [[nodiscard]] const std::vector<coord_t>& shape() const { return impl_->shape; }
  [[nodiscard]] int dim() const { return static_cast<int>(impl_->shape.size()); }
  [[nodiscard]] coord_t volume() const { return impl_->volume(); }
  /// Number of partitionable basis units: rows for 2-D, elements for 1-D.
  [[nodiscard]] coord_t basis() const { return impl_->shape[0]; }
  /// Elements per basis unit (row length for 2-D, 1 for 1-D).
  [[nodiscard]] coord_t stride() const {
    return dim() == 2 ? impl_->shape[1] : 1;
  }
  [[nodiscard]] Interval extent() const { return {0, volume()}; }
  [[nodiscard]] Runtime& runtime() const { return *impl_->rt; }

  /// Raw view of the canonical byte buffer (checkpoint snapshots). Observes
  /// real data: drains any deferred execution first (a fence point).
  [[nodiscard]] std::span<std::byte> raw() const {
    detail::sync_for_access(impl_.get());
    return {impl_->data->data(), impl_->data->size()};
  }

  /// Typed view of the whole canonical buffer. Observes real data: drains
  /// any deferred execution first (a fence point).
  template <typename T>
  [[nodiscard]] std::span<T> span() const {
    LSR_CHECK(dtype_of<T>::value == impl_->dtype);
    detail::sync_for_access(impl_.get());
    return {reinterpret_cast<T*>(impl_->data->data()),
            static_cast<std::size_t>(volume())};
  }

  /// Deferred-execution view (no fence). Internal to the runtime/exec stack.
  [[nodiscard]] detail::StoreView view() const {
    return {impl_->id, impl_->dtype, basis(), stride(), volume(), impl_->data};
  }

  [[nodiscard]] bool same_as(const Store& o) const { return impl_ == o.impl_; }

 private:
  std::shared_ptr<detail::StoreImpl> impl_;
};

}  // namespace legate::rt
