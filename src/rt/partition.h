#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/interval.h"
#include "util/interval_map.h"

namespace legate::rt {

/// Which row split distributed sparse kernels launch over.
///
///  - Rows: `Partition::equal` over rows — every color gets ~rows/P rows
///    regardless of how the nonzeros are distributed (the historical
///    default, and optimal for uniform matrices).
///  - Nnz:  `Partition::balanced` over per-row nnz — every color gets
///    ~nnz/P nonzeros, so power-law matrices stop serializing on the
///    color that owns the hot rows.
///  - Auto: per matrix, pick Nnz when the equal split's nnz imbalance
///    ratio (max color nnz / mean color nnz) exceeds a threshold,
///    otherwise stay on Rows.
///  - Unset: defer to the `LSR_PARTITION` environment variable
///    (`rows|nnz|auto`), defaulting to Rows.
enum class PartitionStrategy { Unset, Rows, Nnz, Auto };

[[nodiscard]] const char* partition_strategy_name(PartitionStrategy s);

/// Parse `rows|nnz|auto` (case-sensitive); anything else -> Unset.
[[nodiscard]] PartitionStrategy parse_partition_strategy(const char* s);

/// A first-class partition: a mapping from colors to intervals of a store's
/// *basis units* (rows of a 2-D store, elements of a 1-D store).
///
/// Image partitions are generally *aliased* (overlapping) and need not cover
/// the basis (Section 2.2). Following Legion, each color's subspace has two
/// views: the *bounding* interval, which is what rectangular instances
/// allocate (this drives memory footprints, e.g. the quantum benchmark's
/// 64-GPU OOM), and an optional *precise* set of touched intervals, which is
/// what the copy engine actually moves (this keeps halo traffic at the
/// data-dependent minimum).
class Partition {
 public:
  Partition(std::vector<Interval> subs, bool disjoint)
      : subs_(std::move(subs)), disjoint_(disjoint), uid_(next_uid()) {}
  Partition(std::vector<Interval> subs, std::vector<IntervalSet> precise,
            bool disjoint)
      : subs_(std::move(subs)), precise_(std::move(precise)), disjoint_(disjoint),
        uid_(next_uid()) {}

  /// Process-unique identity, assigned at construction. Caches key on this
  /// instead of the object address: a freed partition's address can be
  /// reused by an unrelated one, which would silently alias cache entries
  /// (and made cache hit/miss sequences — hence simulated control-lane
  /// time — depend on heap layout).
  [[nodiscard]] std::uint64_t uid() const { return uid_; }

  [[nodiscard]] int colors() const { return static_cast<int>(subs_.size()); }
  [[nodiscard]] Interval sub(int color) const { return subs_.at(color); }
  [[nodiscard]] const std::vector<Interval>& subs() const { return subs_; }
  [[nodiscard]] bool disjoint() const { return disjoint_; }

  /// Precise touched set for a color, or nullptr when the bounding interval
  /// is exact (equal partitions, contiguous images).
  [[nodiscard]] const IntervalSet* precise(int color) const {
    return precise_.empty() ? nullptr : &precise_.at(static_cast<std::size_t>(color));
  }

  /// Equal block partition of [0, extent) into `colors` pieces.
  static std::shared_ptr<const Partition> equal(coord_t extent, int colors);

  /// Weight-balanced contiguous partition of [0, weights.size()) into
  /// `colors` pieces by prefix-sum cuts: cut c is the smallest index i with
  /// prefix(i) >= c * total / colors (compared exactly in integers), so each
  /// color carries ~total/colors weight. Degenerates to `equal` when every
  /// weight is zero; emits zero-length subspaces when the weights are so
  /// skewed (or so few) that some colors have nothing to carry.
  static std::shared_ptr<const Partition> balanced(
      const std::vector<coord_t>& weights, int colors);

  friend bool operator==(const Partition& a, const Partition& b) {
    return a.subs_ == b.subs_;
  }

 private:
  static std::uint64_t next_uid();

  std::vector<Interval> subs_;
  std::vector<IntervalSet> precise_;  ///< empty, or one set per color
  bool disjoint_;
  std::uint64_t uid_;
};

using PartitionRef = std::shared_ptr<const Partition>;

}  // namespace legate::rt
