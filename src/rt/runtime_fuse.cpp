// Fusion half of the runtime (lsr_fuse integration): the execute() tail
// that buffers eager-solved launches into a fusion window, the flush that
// rewrites a legal run into one fused launch, and the synthesis of the
// fused record itself. Legality analysis is pure and lives in
// src/fuse/fuse.cpp; everything here owns the window lifecycle and threads
// the fused record back through the normal issue paths (sim_apply /
// pipelined enqueue), so the simulated and real halves never special-case
// fusion. See DESIGN.md "Task & kernel fusion".

#include <algorithm>
#include <cctype>
#include <string>

#include "fuse/fuse.h"
#include "rt/runtime.h"
#include "rt/runtime_detail.h"

namespace legate::rt {

using detail::LaunchRecord;

Fusion parse_fusion_mode(const char* s) {
  if (s == nullptr) return Fusion::Unset;
  std::string v(s);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "off" || v == "0") return Fusion::Off;
  if (v == "on" || v == "1") return Fusion::On;
  if (v == "auto") return Fusion::Auto;
  return Fusion::Unset;
}

const char* fusion_mode_name(Fusion f) {
  switch (f) {
    case Fusion::Off: return "off";
    case Fusion::On: return "on";
    case Fusion::Auto: return "auto";
    default: return "unset";
  }
}

Future Runtime::fuse_execute(const std::shared_ptr<LaunchRecord>& R) {
  const auto elig = fuse::classify(*R);
  if (elig == fuse::Eligibility::Ineligible) {
    flush_fuse_window();
    return issue_record(R);
  }
  // Image/halo-constrained launches may only *start* a window: their eager
  // solve scans real source bytes, which open-window members could still be
  // about to write. Flush before solving them.
  if (elig == fuse::Eligibility::HeadOnly && !fuse_window_.empty()) {
    flush_fuse_window();
  }
  // Every window candidate is solved at issue time, in both pipelined and
  // sequential modes: legality needs concrete partition identities, and the
  // fused leaf replays the children's per-point intervals. The decisions are
  // structural, so they are identical at any exec thread count.
  eager_solve(*R);
  if (!fuse_window_.empty() && !fuse_tracker_->admits(*R)) {
    flush_fuse_window();
  }
  fuse_window_.push_back(R);
  fuse_tracker_->add(*R);
  if (auto& fr = engine_->flight(); fr.enabled()) {
    fr.note_window(fuse_window_.size());
  }
  if (R->has_redop) {
    // Terminal link: the scalar future must resolve before execute() returns.
    flush_fuse_window();
    return R->result;
  }
  // Backstop: bound the buffered window (fence-free elementwise programs).
  if (fuse_window_.size() >= 64) flush_fuse_window();
  return Future{};
}

Future Runtime::issue_record(const std::shared_ptr<LaunchRecord>& R) {
  if (!pipeline_ || R->has_redop) {
    // Scalar futures resolve immediately (a fence point); without pipelining
    // the launch is applied in place. Leaves still run on the pool when
    // exec_threads > 1 — intra-launch parallelism needs no deferral.
    if (R->has_redop) drain_sim_queue();
    sim_apply(*R, /*deferred=*/false);
    if (!pipeline_ && fusion_on_) {
      // Sequential fusion mode still memoizes eager images: invalidate them
      // for everything this launch just rewrote.
      for (const auto& a : R->args) {
        if (a.priv != Priv::Read) ++eager_epoch_[a.view.id];
      }
    }
    return R->result;
  }

  // Pipelined: hand the leaf bodies to the task graph and defer every
  // simulated effect to the fence, replayed in issue order.
  if (R->eager_parts.empty()) eager_solve(*R);
  enqueue_record(R);
  sim_queue_.push_back([this, R] {
    if (R->node) pool_->wait(R->node);
    sim_apply(*R, /*deferred=*/true);
  });
  // Backstop: bound deferred state so pathological fence-free programs can't
  // accumulate unbounded records.
  if (sim_queue_.size() >= 1024) drain_sim_queue();
  // Non-scalar launches return an empty future, exactly as the sequential
  // path does on a fault-free run (poison requires fault injection, which
  // disables pipelining).
  return Future{};
}

void Runtime::flush_fuse_window() {
  if (fuse_flushing_ || fuse_window_.empty()) return;
  fuse_flushing_ = true;
  std::vector<std::shared_ptr<LaunchRecord>> window;
  window.swap(fuse_window_);
  fuse_tracker_->clear();
  met_.fuse_windows.inc();
  if (auto& fr = engine_->flight(); fr.enabled()) {
    // Window contents are structural (identical at any exec thread count),
    // so the flush event rides the stable sim ring.
    fr.record(diag::EventKind::WindowFlush, "flush",
              static_cast<std::int64_t>(window.size()));
    fr.note_window(0);
  }

  // Stores destroyed while this window was open: their release accounting
  // was deferred (window leaves may still read their views). Replay the
  // releases at the post-window stream position, even if the issue throws.
  auto run_releases = [this] {
    auto rel = std::move(fuse_pending_release_);
    fuse_pending_release_.clear();
    for (const auto& [id, esize] : rel) {
      // The window's records are enqueued now, with their hazard edges
      // against this store registered; the id is finally unreachable.
      retire_eager_state(id);
      if (!sim_queue_.empty()) {
        sim_queue_.push_back([this, id, esize] { release_store(id, esize); });
      } else {
        release_store(id, esize);
      }
    }
  };

  try {
    if (window.size() >= 2) {
      const auto k = window.size();
      auto F = make_fused_record(window);
      met_.fuse_fused.inc(static_cast<double>(k));
      met_.fuse_eliminated.inc(static_cast<double>(k - 1));
      if (auto& fr = engine_->flight(); fr.enabled()) {
        fr.record(diag::EventKind::FuseDecision, "fused",
                  static_cast<std::int64_t>(k),
                  static_cast<std::int64_t>(k - 1));
      }
      fuse_participants_ += static_cast<long>(k);
      fuse_eliminated_launches_ += static_cast<long>(k - 1);
      engine_->note_fused();
      issue_record(F);
      // The terminal link owns the window's scalar future (if any).
      window.back()->result = F->result;
    } else {
      if (auto& fr = engine_->flight(); fr.enabled()) {
        fr.record(diag::EventKind::FuseDecision, "passthrough", 1, 0);
      }
      issue_record(window.front());
    }
  } catch (...) {
    fuse_flushing_ = false;
    run_releases();
    throw;
  }
  fuse_flushing_ = false;
  run_releases();
}

void Runtime::drain_sim_queue() {
  if (draining_ || sim_queue_.empty()) return;
  met_.fences.inc();  // Volatile: drain count depends on pipelining depth
  draining_ = true;
  long replayed = 0;
  try {
    while (!sim_queue_.empty()) {
      auto fn = std::move(sim_queue_.front());
      sim_queue_.pop_front();
      fn();
      ++replayed;
    }
  } catch (...) {
    // Leave the remaining launches queued (a later fence continues the
    // drain); hazard nodes may still be pending, so keep them too.
    draining_ = false;
    throw;
  }
  draining_ = false;
  // Every queued launch waited on its node before replay, so all real work
  // is finished: the hazard graph is fully retired.
  hazards_.clear();
  if (auto& fr = engine_->flight(); fr.enabled()) {
    // Fence count depends on pipelining depth, so this is a volatile
    // (thread-ring) event; Launch/Retire replay already charged the stable
    // ring inside sim_apply.
    fr.record_thread(diag::EventKind::Fence, "fence", replayed);
    fr.progress();
  }
}

std::shared_ptr<LaunchRecord> Runtime::make_fused_record(
    std::vector<std::shared_ptr<LaunchRecord>> children) {
  auto plan = fuse::make_plan(children);
  met_.fuse_bytes_saved.inc(plan.bytes_saved);

  auto F = std::make_shared<LaunchRecord>();
  std::string name = "fused[";
  for (std::size_t k = 0; k < children.size(); ++k) {
    if (k > 0) name += '+';
    name += children[k]->name;
  }
  name += ']';
  F->name = std::move(name);

  const auto& head = children.front();
  if (!head->prof_label.empty()) {
    F->prof_label =
        head->prof_label + " [fused:" + std::to_string(children.size()) + "]";
  }
  F->wall_prof = head->wall_prof;
  F->wall_epoch = head->wall_epoch;

  F->args = std::move(plan.args);
  // Scalar reductions are terminal links (fuse_execute flushes on them), so
  // only the last child can carry one.
  F->redop = children.back()->redop;
  F->has_redop = children.back()->has_redop;
  F->forced_colors = -1;
  for (const auto& kid : children) {
    F->future_dep = std::max(F->future_dep, kid->future_dep);
    F->poisoned_dep = F->poisoned_dep || kid->poisoned_dep;
  }
  // Every written combined argument is alignment-solved over one disjoint
  // partition (WindowTracker invariant + per-child parallel_safe), so the
  // fused points may run concurrently.
  F->parallel_safe = true;

  // The fused leaf: per color, run each child's leaf over that child's own
  // eager-solved intervals, in window (= program) order, then report the
  // chain's combined cost with the merged-read round-trips discounted. The
  // captured shared_ptrs keep the children's views (canonical bytes) and
  // intervals alive even if their stores were destroyed mid-window.
  std::vector<double> saved = std::move(plan.saved_per_color);
  F->leaf = [children, saved](TaskContext& ctx) {
    const int c = ctx.color();
    double bytes = 0, flops = 0, eff = 1.0, reshape = 0, partial = 0;
    bool contributed = false;
    for (const auto& kid : children) {
      if (kid->all_empty[static_cast<std::size_t>(c)] != 0) continue;
      TaskContext sub;
      sub.color_ = c;
      sub.colors_ = ctx.colors();
      sub.rec_ = kid.get();
      kid->leaf(sub);
      bytes += sub.cost_.bytes;
      flops += sub.cost_.flops;
      eff = std::min(eff, sub.cost_.efficiency);
      reshape += sub.reshape_bytes_;
      if (sub.contributed_) {
        partial = sub.partial_;
        contributed = true;
      }
    }
    bytes = std::max(0.0, bytes - saved[static_cast<std::size_t>(c)]);
    ctx.add_cost(bytes, flops, eff);
    if (reshape > 0) ctx.add_reshape_bytes(reshape);
    if (contributed) ctx.contribute(partial);
  };
  return F;
}

}  // namespace legate::rt
