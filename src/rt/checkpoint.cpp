#include "rt/checkpoint.h"

namespace legate::rt {

double Checkpoint::bytes() const {
  double b = 0;
  for (const auto& e : entries_) b += static_cast<double>(e.data.size());
  return b;
}

double Checkpoint::scalar(const std::string& key, double fallback) const {
  auto it = scalars_.find(key);
  return it == scalars_.end() ? fallback : it->second;
}

}  // namespace legate::rt
