#include "rt/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "integrity/crc32c.h"

namespace legate::rt {

double Checkpoint::bytes() const {
  double b = 0;
  for (const auto& e : entries_) b += static_cast<double>(e.data.size());
  return b;
}

double Checkpoint::scalar(const std::string& key, double fallback) const {
  auto it = scalars_.find(key);
  return it == scalars_.end() ? fallback : it->second;
}

// --- file format -----------------------------------------------------------
// [8]  magic "LSRCKPT\0"
// [u32] format version (1)
// [f64] taken_at
// [u32] scalar count, then per scalar: [u32 keylen][key bytes][f64 value]
// [u32] entry count, then per entry:   [u64 nbytes][u32 crc32c][payload]
// All integers little-endian (the only byte order the stack supports).

namespace {

constexpr char kMagic[8] = {'L', 'S', 'R', 'C', 'K', 'P', 'T', '\0'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
[[nodiscard]] bool get(std::ifstream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return is.gcount() == static_cast<std::streamsize>(sizeof(T));
}

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  throw std::runtime_error("corrupt checkpoint file '" + path + "': " + why);
}

}  // namespace

void Checkpoint::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot write checkpoint file '" + path + "'");
  os.write(kMagic, sizeof(kMagic));
  put(os, kVersion);
  put(os, taken_at_);
  put(os, static_cast<std::uint32_t>(scalars_.size()));
  for (const auto& [key, value] : scalars_) {
    put(os, static_cast<std::uint32_t>(key.size()));
    os.write(key.data(), static_cast<std::streamsize>(key.size()));
    put(os, value);
  }
  put(os, static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    put(os, static_cast<std::uint64_t>(e.data.size()));
    put(os, integrity::crc32c(0, e.data.data(), e.data.size()));
    os.write(reinterpret_cast<const char*>(e.data.data()),
             static_cast<std::streamsize>(e.data.size()));
  }
  os.flush();
  if (!os) throw std::runtime_error("short write to checkpoint file '" + path + "'");
}

Checkpoint Checkpoint::load(const std::string& path,
                            const std::vector<Store>& stores) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open checkpoint file '" + path + "'");
  char magic[8] = {};
  is.read(magic, sizeof(magic));
  if (is.gcount() == 0) reject(path, "file is empty");
  if (is.gcount() != sizeof(magic) || std::memcmp(magic, kMagic, sizeof(magic)) != 0)
    reject(path, "bad magic (not a checkpoint file)");
  std::uint32_t version = 0;
  if (!get(is, version)) reject(path, "truncated header");
  if (version != kVersion)
    reject(path, "unsupported format version " + std::to_string(version));

  Checkpoint ck;
  if (!get(is, ck.taken_at_)) reject(path, "truncated header");
  std::uint32_t nscalars = 0;
  if (!get(is, nscalars)) reject(path, "truncated header");
  for (std::uint32_t i = 0; i < nscalars; ++i) {
    std::uint32_t klen = 0;
    if (!get(is, klen)) reject(path, "truncated scalar table");
    std::string key(klen, '\0');
    is.read(key.data(), klen);
    double value = 0;
    if (is.gcount() != static_cast<std::streamsize>(klen) || !get(is, value))
      reject(path, "truncated scalar table");
    ck.scalars_[key] = value;
  }

  std::uint32_t nentries = 0;
  if (!get(is, nentries)) reject(path, "truncated entry table");
  if (nentries != stores.size())
    reject(path, "holds " + std::to_string(nentries) + " stores, expected " +
                     std::to_string(stores.size()));
  for (std::uint32_t i = 0; i < nentries; ++i) {
    std::uint64_t nbytes = 0;
    std::uint32_t crc = 0;
    if (!get(is, nbytes) || !get(is, crc))
      reject(path, "truncated at entry " + std::to_string(i));
    std::vector<std::byte> data(static_cast<std::size_t>(nbytes));
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(nbytes));
    if (is.gcount() != static_cast<std::streamsize>(nbytes))
      reject(path, "truncated payload at entry " + std::to_string(i));
    if (integrity::crc32c(0, data.data(), data.size()) != crc)
      reject(path, "payload checksum mismatch at entry " + std::to_string(i));
    ck.entries_.push_back({stores[i], std::move(data)});
  }
  return ck;
}

}  // namespace legate::rt
