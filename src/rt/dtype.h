#pragma once

#include <cstddef>

#include "util/common.h"

namespace legate::rt {

/// A 1-D rectangle with *inclusive* bounds, mirroring Legion's Rect<1>.
/// CSR/CSC `pos` arrays store one Rect1 per row/column (Fig. 3 of the paper):
/// the nonzeros of row i live at crd/vals indices [lo, hi]. Empty when lo>hi.
struct Rect1 {
  coord_t lo{0};
  coord_t hi{-1};

  [[nodiscard]] constexpr bool empty() const { return lo > hi; }
  [[nodiscard]] constexpr coord_t size() const { return empty() ? 0 : hi - lo + 1; }
  friend constexpr bool operator==(Rect1 a, Rect1 b) = default;
};

enum class DType { F64, I64, Rect1 };

[[nodiscard]] constexpr std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::F64: return sizeof(double);
    case DType::I64: return sizeof(coord_t);
    case DType::Rect1: return sizeof(Rect1);
  }
  return 0;
}

template <typename T>
struct dtype_of;
template <>
struct dtype_of<double> {
  static constexpr DType value = DType::F64;
};
template <>
struct dtype_of<coord_t> {
  static constexpr DType value = DType::I64;
};
template <>
struct dtype_of<Rect1> {
  static constexpr DType value = DType::Rect1;
};

}  // namespace legate::rt
