#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "comm/comm.h"
#include "exec/pool.h"
#include "integrity/integrity.h"
#include "rt/partition.h"
#include "rt/store.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "util/interval_map.h"

namespace legate::fuse {
class WindowTracker;
}

namespace legate::rt {

class Checkpoint;
class Runtime;
class TaskLauncher;

namespace detail {
struct LaunchRecord;
}

/// Access privilege of a task argument.
enum class Priv {
  Read,          ///< read-only
  WriteDiscard,  ///< whole sub-interval overwritten; prior contents dead
  ReadWrite,     ///< in-place update
  Reduce,        ///< every point produces a full-store partial, summed
};

/// How an argument's partition is constrained (Section 4.1).
enum class ConstraintKind {
  None,
  Broadcast,    ///< whole store visible to every point task
  ImageRects,   ///< partition = image of a Rect1-typed source argument
  ImagePoints,  ///< partition = image of an i64 coordinate source argument
  Halo,         ///< partition = source partition expanded by fixed offsets
};

enum class ScalarRedop { Sum, Max, Min };

/// Result of a scalar reduction (dot, norm, ...). `value` is exact (computed
/// for real); `ready` is the simulated completion time including the
/// all-reduce model. `poisoned` marks a value produced from data the modeled
/// machine lost (exhausted retries, unrecovered node loss): the canonical
/// bits are still the fault-free values, but consumers must not trust them.
/// Producing a scalar future is a fence point of the execution pipeline:
/// the value is fully resolved by the time execute() returns it.
struct Future {
  double value{0};
  double ready{0};
  bool valid{false};
  bool poisoned{false};
};

/// Per-point view handed to leaf task bodies. Mirrors the paper's Fig. 7
/// tasks: leaves index the *global* store span within their assigned bounds.
/// Under exec_threads > 1 the points of one launch run concurrently on the
/// pool, so a context only ever touches its own intervals/buffers.
class TaskContext {
 public:
  [[nodiscard]] int color() const { return color_; }
  [[nodiscard]] int colors() const { return colors_; }

  /// Basis-unit interval assigned to this point for argument `arg`
  /// (rows of a 2-D store, elements of a 1-D store).
  [[nodiscard]] Interval interval(int arg) const;
  /// Element interval (basis interval scaled by the row stride).
  [[nodiscard]] Interval elem_interval(int arg) const;

  /// Typed view of argument `arg`. For Reduce arguments this is a private
  /// zero-initialized partial buffer; otherwise the canonical store data.
  template <typename T>
  [[nodiscard]] std::span<T> full(int arg) const {
    auto bytes = arg_bytes(arg);
    return {reinterpret_cast<T*>(bytes.data()), bytes.size() / sizeof(T)};
  }

  /// Charge roofline work to this point task. Leaves report the bytes and
  /// flops they actually touched, so simulated time tracks real work.
  void add_cost(double bytes, double flops, double efficiency = 1.0);
  /// Charge the Section-3 penalty of reshaping a global-CSR piece into a
  /// local matrix before calling an external (cuSPARSE-style) kernel.
  void add_reshape_bytes(double bytes);
  /// Contribute a partial value to the launch's scalar reduction.
  void contribute(double v);

 private:
  friend class Runtime;
  [[nodiscard]] std::span<std::byte> arg_bytes(int arg) const;

  int color_{0};
  int colors_{1};
  const detail::LaunchRecord* rec_{nullptr};
  std::vector<std::vector<std::byte>>* reduce_bufs_{nullptr};  // per arg; empty if none
  sim::Cost cost_;
  double reshape_bytes_{0};
  double partial_{0};
  bool contributed_{false};
};

/// Declarative task launch: stores + privileges + partitioning constraints.
/// The runtime's constraint solver picks concrete partitions at execute()
/// time, reusing existing ("key") partitions whenever they satisfy the
/// constraints — the mechanism that lets Legate Sparse and the dense library
/// compose without knowing about each other (Section 4.1).
class TaskLauncher {
 public:
  TaskLauncher(Runtime& rt, std::string name);

  int add_input(const Store& s) { return add_arg(s, Priv::Read); }
  int add_output(const Store& s) { return add_arg(s, Priv::WriteDiscard); }
  int add_inout(const Store& s) { return add_arg(s, Priv::ReadWrite); }
  int add_reduction(const Store& s) { return add_arg(s, Priv::Reduce); }

  /// Constrain two arguments to use aligned partitions of their bases.
  void align(int a, int b);
  /// Constrain dst's partition to the image of src's (Rect1 entries).
  void image_rects(int src, int dst);
  /// Constrain dst's partition to the image of src's (i64 coordinates).
  void image_points(int src, int dst);
  /// Constrain dst's partition to src's expanded by [lo_off, hi_off] basis
  /// units and clipped (stencil/banded access patterns).
  void halo(int src, int dst, coord_t lo_off, coord_t hi_off);
  /// Replicate the whole argument to every point task.
  void broadcast(int arg);
  /// Pin `arg`'s partition explicitly (must be disjoint, cover the basis and
  /// match the launch's color count); arguments aligned with it share it.
  /// The partitioning-strategy subsystem uses this to launch sparse kernels
  /// over nnz-balanced row splits instead of the equal default. Explicit
  /// partitions win over key-partition reuse but are never adopted as key
  /// partitions themselves, so downstream dense launches keep their equal
  /// splits (and the issue-time eager solve stays in lock-step with the
  /// simulated solve).
  void set_partition(int arg, PartitionRef p);

  /// Request a scalar reduction combined across point tasks.
  void reduce_scalar(ScalarRedop op) {
    redop_ = op;
    has_redop_ = true;
  }

  void set_leaf(std::function<void(TaskContext&)> fn) { leaf_ = std::move(fn); }
  /// Tag this launch with provenance for the profiler (e.g. the sparse
  /// format or algorithm phase). Overrides the runtime's provenance scope;
  /// purely observational — has no effect on scheduling or timing.
  void set_provenance(std::string p) { provenance_ = std::move(p); }
  /// Force the number of point tasks (e.g. 1 for sequential glue work).
  void require_colors(int n) { forced_colors_ = n; }
  /// Add a dependence on a scalar future (tasks consume futures without
  /// blocking the control lane, like Legate's scalar plumbing). A poisoned
  /// future poisons this launch and everything it writes.
  void depend_on(double future_ready, bool poisoned = false) {
    future_dep_ = std::max(future_dep_, future_ready);
    poisoned_dep_ = poisoned_dep_ || poisoned;
  }

  Future execute();

  struct Arg {
    Store store;
    Priv priv;
    ConstraintKind ckind{ConstraintKind::None};
    int image_src{-1};
    coord_t halo_lo{0}, halo_hi{0};
    int align_root{-1};  // union-find parent (index into args_)
    PartitionRef part;   // explicit partition pin (see set_partition)
  };

 private:
  friend class Runtime;
  friend class TaskContext;
  int add_arg(const Store& s, Priv p);
  int find_root(int a);

  Runtime& rt_;
  std::string name_;
  std::vector<Arg> args_;
  std::function<void(TaskContext&)> leaf_;
  std::optional<ScalarRedop> redop_;
  bool has_redop_{false};
  int forced_colors_{-1};
  double future_dep_{0};
  bool poisoned_dep_{false};
  std::string provenance_;
};

/// Data-integrity policy for silent-corruption protection (checksummed
/// stores + ABFT solver checks). See DESIGN.md "Data integrity & ABFT".
enum class Integrity {
  Off,      ///< no checksums; injected flips silently corrupt results
  Detect,   ///< verify-on-read; corruption poisons the store (solvers abort
            ///< or roll back but never return silently-wrong values)
  Recover,  ///< detect + repair: single-bit CRC correction in place, ABFT
            ///< retry of corrupted SpMVs, rollback for anything else
};

/// Task & kernel fusion policy (src/fuse). See DESIGN.md "Task & kernel
/// fusion". `Auto` is reserved for future heuristics and currently behaves
/// like `On`.
enum class Fusion {
  Unset,  ///< read LSR_FUSE (`off|on|auto`), defaulting to Off
  Off,
  On,
  Auto,
};

/// Parse `off|0|on|1|auto` (anything else = Unset → default).
[[nodiscard]] Fusion parse_fusion_mode(const char* s);
[[nodiscard]] const char* fusion_mode_name(Fusion f);

/// Behaviour toggles, used by the ablation benchmarks.
struct RuntimeOptions {
  bool coalescing = true;       ///< Section 4.2 allocation coalescing
  bool partition_reuse = true;  ///< Section 4.1 key-partition reuse
  bool model_reshape = true;    ///< Section 3 local-reshape penalty
  double task_overhead = -1;    ///< control-lane seconds/launch; <0 = default
  /// Core fraction for CPU leaf tasks (Legate reserves runtime cores).
  double cpu_core_fraction = -1;  ///< <0 = params default
  /// When an allocation would exceed capacity, evict LRU clean allocations
  /// (spilling dirty ones to system memory) before surfacing the OOM.
  bool spill_on_oom = true;
  /// Deterministic fault schedule; disabled by default (zero overhead and
  /// bit-identical makespans to a fault-free build when off).
  sim::FaultConfig faults;
  /// Real executor threads for leaf tasks (legate::exec). 0 reads the
  /// LSR_EXEC_THREADS environment variable (default 1). 1 = sequential
  /// inline execution, bit-identical to the pre-exec runtime; >1 runs the
  /// point tasks of each launch on a work-stealing pool and (when
  /// pipelining is on) defers launches until a fence must observe real
  /// data. Results, simulated makespans and stats are bit-identical at any
  /// thread count.
  int exec_threads = 0;
  /// Cross-launch pipelining: <0 reads LSR_EXEC_PIPELINE (default on).
  /// Only active with exec_threads > 1 and fault injection disabled
  /// (fault-injection retries drain at every launch by design).
  int exec_pipeline = -1;
  /// Checksummed-store policy. Off by default (zero per-launch overhead).
  /// Detect/Recover maintain per-chunk CRC32C over every canonical store,
  /// verified on read and refreshed on write-back/copy/shuffle/checkpoint;
  /// like fault injection, a non-Off policy disables pipelining (verification
  /// must observe real bytes at the sequential replay point).
  Integrity integrity = Integrity::Off;
  /// Row-split strategy for distributed sparse kernels (see PartitionStrategy
  /// in rt/partition.h). Unset reads the LSR_PARTITION environment variable
  /// (`rows|nnz|auto`), defaulting to Rows. Individual matrices can override
  /// via CsrMatrix::set_partition_strategy.
  PartitionStrategy partition = PartitionStrategy::Unset;
  /// Task & kernel fusion over the deferred launch window (src/fuse).
  /// Unset reads the LSR_FUSE environment variable (`off|on|auto`),
  /// defaulting to Off. Fault injection disables fusion (like pipelining,
  /// its retry/poison bookkeeping must observe each launch individually);
  /// everything else — pipelining, partition pins, integrity, checkpoints —
  /// composes.
  Fusion fusion = Fusion::Unset;
  /// Always-on flight recorder + hang watchdog + post-mortem dumps
  /// (src/diag). Unset reads the LSR_DIAG environment variable
  /// (`off|on|abort-on-hang`), defaulting to Off. Recording never perturbs
  /// replay ordering or simulated time: results and every Stable metric are
  /// bit-identical with diag on or off, at any exec thread count.
  diag::Mode diag = diag::Mode::Unset;
  /// Recorder/watchdog tuning (ring capacity, stall deadline, divergence
  /// window, dump directory). Defaults come from the LSR_DIAG_* environment
  /// variables; tests override fields directly.
  diag::Options diag_opts = diag::Options::from_env();
  /// Communication planner (src/comm): cached halo-exchange plans with
  /// per-link message coalescing (`plan`) and interior/boundary kernel
  /// splitting so compute overlaps the exchange (`overlap`). Unset reads the
  /// LSR_COMM environment variable (`off|plan|overlap`), defaulting to Off.
  /// Results are bit-identical across modes and exec thread counts; only the
  /// simulated copy schedule changes. Fault injection disables the planner
  /// (its per-point retry accounting needs the per-piece staging path), as
  /// does the coalescing=false ablation (plans assume disjoint allocation
  /// extents).
  comm::Mode comm = comm::Mode::Unset;
};

/// The Legion-model runtime: dynamic dependence analysis over the task
/// stream, constraint solving, mapping, allocation management with
/// coalescing, and discrete-event time accounting. Leaf tasks execute for
/// real on canonical host buffers; wall-clock time is simulated, but with
/// exec_threads > 1 the leaf bodies additionally run in parallel on a real
/// thread pool (src/exec) without changing a single simulated or computed
/// bit.
class Runtime {
 public:
  explicit Runtime(const sim::Machine& machine, RuntimeOptions opts = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  Store create_store(DType dtype, std::vector<coord_t> shape);

  /// Create a 1-D store initialized from host data (lives in the home
  /// system memory, like a NumPy array handed to Legate).
  template <typename T>
  Store attach(const std::vector<T>& data) {
    Store s = create_store(dtype_of<T>::value, {static_cast<coord_t>(data.size())});
    auto dst = s.span<T>();
    std::copy(data.begin(), data.end(), dst.begin());
    mark_attached(s);
    return s;
  }

  /// Engine access observes simulated state: drains the pipeline first.
  [[nodiscard]] sim::Engine& engine() {
    fence();
    return *engine_;
  }
  [[nodiscard]] const sim::Machine& machine() const { return machine_; }

  // -- metrics ---------------------------------------------------------------
  /// Always-on metrics registry (lives on this runtime's engine, so separate
  /// Runtimes never share counters). Unlike engine(), this does NOT fence:
  /// registering metrics and bumping volatile ones is safe mid-pipeline.
  [[nodiscard]] metrics::Registry& metrics() { return engine_->metrics(); }
  /// Drain the pipeline and take a consistent snapshot of every metric.
  /// Stable-tagged values in the result are bit-identical at any exec thread
  /// count (see src/metrics/metrics.h). Records an instant marker on the
  /// profiler timeline when tracing is enabled.
  [[nodiscard]] metrics::Snapshot metrics_snapshot();

  // -- diagnostics -----------------------------------------------------------
  /// The engine's always-on flight recorder (lsr_diag). Like metrics(), this
  /// does NOT fence: recording and watchdog state are safe mid-pipeline.
  [[nodiscard]] diag::FlightRecorder& flight() { return engine_->flight(); }
  /// Drain the pipeline and write a post-mortem diagnostic dump (the
  /// `--dump-on-exit` bench hook). Returns the dump path, "" on failure.
  std::string diag_dump(const std::string& reason);

  // -- execution backend -----------------------------------------------------
  /// Drain the deferred execution pipeline: finish every enqueued leaf task
  /// for real (on the pool) and replay the launch stream's simulated
  /// accounting in issue order. No-op when nothing is pending. Runs
  /// automatically at every point where the control path observes real data
  /// or simulated state: Store::raw()/span(), scalar futures,
  /// checkpoint/restore/shuffle, sim_time(), engine(), stats accessors.
  void fence();
  [[nodiscard]] int exec_threads() const { return exec_threads_; }
  /// Whether launches are being deferred across fences (exec_threads > 1,
  /// pipelining enabled, fault injection off).
  [[nodiscard]] bool pipelining() const { return pipeline_; }
  /// Launches deferred but not yet applied (test/diagnostic hook): the
  /// pipelined replay queue plus the open fusion window.
  [[nodiscard]] std::size_t pending_launches() const {
    return sim_queue_.size() + fuse_window_.size();
  }

  // -- fusion ----------------------------------------------------------------
  /// Whether the fusion pass is active (mode on/auto and fault injection
  /// off). Resolved once in the constructor.
  [[nodiscard]] bool fusion_enabled() const { return fusion_on_; }
  /// Resolved fusion mode (never Unset).
  [[nodiscard]] Fusion fusion_mode() const { return fusion_mode_; }
  /// Launches currently buffered in the open fusion window (test hook).
  [[nodiscard]] std::size_t fuse_window_size() const { return fuse_window_.size(); }
  /// Task launches actually applied (after fusion), mirroring the
  /// lsr_rt_launches_total counter. A fence point.
  [[nodiscard]] long launches_applied() {
    fence();
    return launches_applied_;
  }
  /// Original launches folded into fused launches / launches eliminated by
  /// fusion so far. Fence points.
  [[nodiscard]] long fused_participants() {
    fence();
    return fuse_participants_;
  }
  [[nodiscard]] long fused_eliminated() {
    fence();
    return fuse_eliminated_launches_;
  }

  // -- communication planner (src/comm) --------------------------------------
  /// Whether the comm planner is active (mode plan/overlap, fault injection
  /// off, allocation coalescing on). Resolved once in the constructor.
  [[nodiscard]] bool comm_enabled() const { return comm_on_; }
  /// Resolved comm mode (never Unset).
  [[nodiscard]] comm::Mode comm_mode() const { return comm_mode_; }
  /// Exchange-plan cache statistics (hits/misses/invalidations), mirroring
  /// the lsr_comm_plan_* counters. A fence point.
  [[nodiscard]] comm::PlanCache::Stats comm_plan_stats() {
    fence();
    return comm_cache_.stats();
  }

  // -- profiling -------------------------------------------------------------
  /// Nested provenance scopes label every event recorded while active
  /// (solver name, algorithm phase) — Legate's provenance strings. Use the
  /// RAII ProvenanceScope below rather than calling these directly.
  void push_provenance(std::string p) { provenance_.push_back(std::move(p)); }
  void pop_provenance() {
    if (!provenance_.empty()) provenance_.pop_back();
  }
  [[nodiscard]] const std::string& current_provenance() const {
    static const std::string empty;
    return provenance_.empty() ? empty : provenance_.back();
  }

  [[nodiscard]] const RuntimeOptions& options() const { return opts_; }
  [[nodiscard]] int default_colors() const { return machine_.num_procs(); }
  /// Resolved runtime-wide partitioning strategy (never Unset: the
  /// constructor folds in LSR_PARTITION and the Rows default).
  [[nodiscard]] PartitionStrategy partition_strategy() const {
    return partition_strategy_;
  }
  [[nodiscard]] double sim_time() {
    fence();
    return engine_->makespan();
  }

  /// Key partition currently tracked for a store (may be null).
  [[nodiscard]] PartitionRef key_partition(const Store& s);

  /// Number of partitions materialized so far (ablation metric).
  [[nodiscard]] long partitions_created() {
    fence();
    return partitions_created_;
  }

  // -- fault tolerance ------------------------------------------------------
  /// Whether `s` holds data the modeled machine lost (retry exhaustion or a
  /// node loss whose memories owned the latest version). Cleared when the
  /// store is fully overwritten by a healthy launch or restored. Poison can
  /// only arise with fault injection enabled, which disables pipelining, so
  /// this never needs to fence.
  [[nodiscard]] bool store_poisoned(const Store& s) const {
    return poisoned_stores_.count(s.id()) > 0;
  }
  /// True once after a scheduled node loss fired; solvers poll this to
  /// trigger checkpoint recovery.
  [[nodiscard]] bool consume_node_loss() {
    bool v = node_loss_pending_;
    node_loss_pending_ = false;
    return v;
  }
  [[nodiscard]] const sim::FaultInjector* fault_injector() const {
    return injector_.get();
  }

  // -- data integrity -------------------------------------------------------
  /// Active checksummed-store policy.
  [[nodiscard]] Integrity integrity() const { return opts_.integrity; }
  /// Verify every tracked store against its ledger checksums (a full scrub),
  /// detecting — and under Recover, repairing — any resident corruption the
  /// normal verify-on-read path has not reached yet. A fence point. Tests
  /// and benches call this at end-of-run so `flips_detected` accounts for
  /// every injected flip still live in a store.
  void integrity_scrub();

  /// Snapshot the canonical contents of `stores` (plus caller-attached
  /// scalars) and charge the simulated checkpoint write. See rt/checkpoint.h.
  /// A fence point: the snapshot observes fully-written real data.
  [[nodiscard]] Checkpoint checkpoint(const std::vector<Store>& stores);
  /// Restore a snapshot: canonical buffers are rewritten, the stores'
  /// version/ownership state is reset to the home memory, poison is cleared,
  /// and the simulated restore read is charged. Returns the completion time.
  /// A fence point.
  double restore(const Checkpoint& ckpt);

  /// All-to-all repartitioning primitive (distributed transpose & friends):
  /// every processor's block of `out` draws on every block of `in`. `body`
  /// performs the real data movement on the canonical buffers; the engine is
  /// charged one copy per (src, dst) processor pair of volume/P² bytes —
  /// the communication pattern the paper cites for the factorization's dense
  /// transposes (Section 6.2). A fence point.
  double shuffle(const Store& in, const Store& out,
                 const std::function<void()>& body);

  // -- internal API (used by TaskLauncher / StoreImpl) --
  Future execute(TaskLauncher& launcher);
  void on_store_destroyed(detail::StoreImpl* impl);
  void mark_attached(const Store& s);
  /// Store::raw()/span() hook: fence, then invalidate eager image caches of
  /// `id` (the returned span is mutable, so assume the bytes change).
  void sync_store_access(StoreId id);

 private:
  struct SyncState;
  struct Alloc;
  struct MemState;

  PartitionRef image_partition(const detail::StoreView& src,
                               const PartitionRef& src_part, ConstraintKind kind,
                               const PartitionRef& precomputed);
  /// Ensure `elem` of `store` is materialized in memory `mem`; returns the
  /// simulated time at which the data is valid there. `discard` skips
  /// staleness copies (write-only outputs); `precise`, when given, restricts
  /// staleness copies to the touched subset of `elem` (precise images).
  double ensure_in_memory(const detail::StoreView& store, Interval elem, int mem,
                          bool discard, const IntervalSet* precise = nullptr);
  Alloc& find_or_create_alloc(const detail::StoreView& store, Interval elem, int mem);
  SyncState& sync(StoreId id);

  // -- execution backend internals ------------------------------------------
  /// Copy a launcher into a self-contained record (views, leaf, flags).
  std::shared_ptr<detail::LaunchRecord> make_record(TaskLauncher& L);
  /// Issue-time constraint solving for a deferred launch: colors, concrete
  /// partitions (images computed from real data, waiting on pending writers
  /// of the source), per-point intervals. Touches no simulated state.
  void eager_solve(detail::LaunchRecord& R);
  /// Run the launch's leaf bodies for real (inline, or parallel-for on the
  /// pool) and fold Reduce partials in fixed color order.
  void run_leaves(detail::LaunchRecord& R);
  /// The launch's simulated half: constraint solve (with key-partition
  /// reuse and image caching), dependence analysis, staging, time
  /// accounting, write publication — a faithful replay of the sequential
  /// execute() body consuming the recorded per-point costs. When
  /// `deferred`, leaves already ran; otherwise runs them in place.
  void sim_apply(detail::LaunchRecord& R, bool deferred);
  /// Submit the record's real work as a task-graph node with dependence
  /// edges from the per-store reader/writer hazard state.
  void enqueue_record(const std::shared_ptr<detail::LaunchRecord>& R);
  // -- fusion internals (src/rt/runtime_fuse.cpp) ----------------------------
  /// execute() tail when fusion is active: eager-solve the record, then
  /// append it to the open window, flush the window, or pass it through,
  /// per the legality rules in fuse/fuse.h.
  Future fuse_execute(const std::shared_ptr<detail::LaunchRecord>& R);
  /// Issue one (possibly fused) record into the normal execution paths —
  /// the pre-fusion execute() tail: pipelined enqueue or direct sim_apply.
  Future issue_record(const std::shared_ptr<detail::LaunchRecord>& R);
  /// Rewrite the buffered window into a single fused launch (≥2 records)
  /// or pass the singleton through, then issue it. Idempotent when empty.
  void flush_fuse_window();
  /// Synthesize the fused record for a legal run: combined argument plan,
  /// chained leaf, max/OR-folded dependences, terminal scalar reduction.
  std::shared_ptr<detail::LaunchRecord> make_fused_record(
      std::vector<std::shared_ptr<detail::LaunchRecord>> children);
  // -- comm-planner internals (src/rt/runtime_comm.cpp) ----------------------
  /// Pass B of sim_apply when the comm planner is active: stage allocations,
  /// look up or derive the launch's ExchangePlan, charge the coalesced
  /// transfers on the link model, and charge the kernels (split into
  /// interior/boundary phases under Overlap). Bit-identical canonical
  /// results to the per-piece path — only simulated copy ops differ.
  void comm_pass_b(detail::LaunchRecord& R,
                   const std::vector<PartitionRef>& parts,
                   const std::vector<std::vector<Interval>>& point_ivs,
                   const std::vector<char>& all_empty,
                   const std::vector<double>& dep_time,
                   std::vector<double>& completion, std::vector<int>& point_mem,
                   std::vector<double>& partials, double& max_completion);
  /// First allocation of `id` in `mem` covering `elem`, or null. Unlike
  /// find_or_create_alloc this never allocates, touches LRU state, or bumps
  /// metrics — safe for signature computation.
  [[nodiscard]] Alloc* comm_find_alloc(StoreId id, Interval elem, int mem) const;
  /// Drop cached exchange plans touching `id` (store mutation/destruction/
  /// shuffle/restore) and bump the invalidation counter. No-op when the
  /// planner is off.
  void comm_invalidate(StoreId id);

  /// The pre-fusion fence() body: drain sim_queue_ in issue order.
  void drain_sim_queue();
  /// Block until the last pending real writer of `id` finished (eager image
  /// computation reads real bytes mid-pipeline).
  void wait_store_writer(StoreId id);
  /// Simulated release accounting for an out-of-scope store (deferred to
  /// its stream position when the pipeline is non-empty).
  void release_store(StoreId id, double esize);
  /// Drop a dead store's hazard entry and eager memo state. Must not run
  /// while an open fusion window still holds launches referencing the id:
  /// their enqueue at flush resolves dependence edges through hazards_.
  void retire_eager_state(StoreId id);

  /// alloc_bytes with graceful OOM degradation: on capacity overflow, evict
  /// least-recently-used allocations (spilling dirty data to the node's
  /// system memory with a charged copy) and retry before rethrowing.
  void alloc_with_spill(int mem, double bytes, StoreId requesting);
  /// Evict the LRU evictable allocation in `mem`; returns false if none.
  bool evict_lru(int mem, StoreId requesting);
  /// Drop every allocation in the lost node's memories, poison stores whose
  /// latest data lived only there, and charge the recovery outage.
  void handle_node_loss(int node);
  void poll_faults();
  [[nodiscard]] int sysmem_of_node(int node) const;

  // -- diagnostics internals --------------------------------------------------
  /// Record a Poison flight-recorder event + board update for store `id`;
  /// the first poison per runtime also writes a post-mortem dump (unless
  /// `allow_dump` is false because a more specific dump follows, e.g.
  /// node-loss). Control path only.
  void diag_note_poison(StoreId id, const char* why, bool allow_dump = true);

  // -- data-integrity internals ---------------------------------------------
  /// Apply due scripted and rate-drawn silent bit flips to live canonical
  /// buffers (deterministic: stores visited in id order, draws keyed on a
  /// control-path poll counter). Called from poll_faults().
  void poll_silent_flips();
  /// Flip bit `bit` of the byte at `offset` in store `id` (no-op when the
  /// store is dead or too small) and account the injection.
  void apply_flip(StoreId id, std::uint64_t offset, int bit, double now);
  /// Verify `data` against the ledger; on mismatch account detection,
  /// attempt in-place CRC correction under Recover, and poison the store
  /// when the damage is uncorrectable (or the policy is Detect).
  void integrity_verify(StoreId id, std::byte* data, std::size_t nbytes);
  /// Refresh the ledger over [lo, hi) after a write-back; flips overwritten
  /// before detection are retired as dead.
  void integrity_record(StoreId id, const std::byte* data, std::size_t nbytes,
                        std::size_t lo, std::size_t hi);
  /// Post-leaf hook for one launch: apply any in-flight output flip to the
  /// written arguments, then checksum them.
  void integrity_after_leaves(detail::LaunchRecord& R);
  [[nodiscard]] detail::StoreImpl* find_live_store(StoreId id) const;

  sim::Machine machine_;
  std::unique_ptr<sim::Engine> engine_;
  RuntimeOptions opts_;
  double task_overhead_;
  double cpu_fraction_;
  PartitionStrategy partition_strategy_{PartitionStrategy::Rows};
  bool diag_poison_dumped_{false};  ///< first-poison dump fired

  StoreId next_store_id_{1};
  std::unordered_set<detail::StoreImpl*> live_stores_;
  std::unordered_map<StoreId, std::unique_ptr<SyncState>> sync_;
  std::vector<std::unique_ptr<MemState>> mem_state_;  // per memory

  struct ImageKey {
    StoreId src;
    std::uint64_t part;  ///< Partition::uid() — stable, never address-reused
    ConstraintKind kind;
    std::uint64_t epoch;
    bool operator<(const ImageKey& o) const {
      return std::tie(src, part, kind, epoch) <
             std::tie(o.src, o.part, o.kind, o.epoch);
    }
  };
  std::map<ImageKey, PartitionRef> image_cache_;
  long partitions_created_{0};

  // -- execution backend state ----------------------------------------------
  std::unique_ptr<exec::Pool> pool_;  ///< null when exec_threads == 1
  int exec_threads_{1};
  bool pipeline_{false};
  bool draining_{false};  ///< inside fence(); nested fences are no-ops
  /// Deferred simulated accounting, one closure per launch (plus store
  /// releases), replayed strictly in issue order at fence().
  std::deque<std::function<void()>> sim_queue_;
  /// Whole-store real-data hazard tracking for the node graph.
  struct Hazard {
    exec::NodeRef writer;                ///< last pending writer node
    std::vector<exec::NodeRef> readers;  ///< readers since that writer
  };
  std::unordered_map<StoreId, Hazard> hazards_;
  /// Bumped whenever a store's real bytes may change (writer node enqueued,
  /// external span access); keys the eager image cache.
  std::unordered_map<StoreId, std::uint64_t> eager_epoch_;
  std::map<ImageKey, PartitionRef> eager_images_;
  std::map<std::pair<coord_t, int>, PartitionRef> eager_equal_;  ///< (basis, colors)
  std::map<std::pair<coord_t, int>, PartitionRef> eager_whole_;  ///< broadcast/reduce

  // -- fusion state (src/rt/runtime_fuse.cpp) --------------------------------
  Fusion fusion_mode_{Fusion::Off};
  bool fusion_on_{false};
  bool fuse_flushing_{false};  ///< inside flush_fuse_window(); re-entry is a no-op
  /// Open fusion window: consecutive eager-solved fusable launches awaiting
  /// rewrite. Flushed by fences, ineligible launches, legality breaks,
  /// terminal scalar reductions, and a size backstop.
  std::vector<std::shared_ptr<detail::LaunchRecord>> fuse_window_;
  /// Window-compatibility state mirroring fuse_window_ (see fuse/fuse.h).
  std::unique_ptr<fuse::WindowTracker> fuse_tracker_;
  /// Stores destroyed while a window was open: their release accounting is
  /// deferred until the window (which may still read their views) flushes.
  std::vector<std::pair<StoreId, double>> fuse_pending_release_;
  long launches_applied_{0};         ///< mirrors met_.launches (fenced accessor)
  long fuse_participants_{0};        ///< original launches folded into fused ones
  long fuse_eliminated_launches_{0}; ///< participants minus fused launches

  // -- comm-planner state (src/rt/runtime_comm.cpp) --------------------------
  comm::Mode comm_mode_{comm::Mode::Off};
  bool comm_on_{false};
  comm::PlanCache comm_cache_;

  // -- fault-tolerance state -------------------------------------------------
  std::unique_ptr<sim::FaultInjector> injector_;
  long task_seq_{0};   ///< deterministic point-task sequence number
  double use_tick_{0};  ///< logical clock stamping allocation touches (LRU)
  std::unordered_set<StoreId> poisoned_stores_;
  /// Stores staged for the in-flight launch; never spill victims.
  std::unordered_set<StoreId> pinned_;
  bool node_loss_pending_{false};
  bool spilling_{false};  ///< guards against recursive spill

  // -- data-integrity state --------------------------------------------------
  integrity::ChecksumLedger ledger_;
  /// One injected-but-undetected resident flip (byte offset + simulated
  /// injection time, for the detection-latency metric).
  struct LiveFlip {
    std::uint64_t offset{0};
    double time{0};
  };
  std::map<StoreId, std::vector<LiveFlip>> outstanding_flips_;
  long flip_poll_seq_{0};    ///< control-path poll counter keying flip draws
  double last_flip_poll_{0};  ///< simulated time of the previous flip poll
  long output_seq_{0};  ///< written-arg counter keying in-flight flip draws
  std::vector<std::string> provenance_;  ///< profiler provenance scope stack

  /// Runtime-layer metric handles (registered once in the constructor). All
  /// Stable handles are bumped exclusively on the control thread during the
  /// sequential sim_apply replay — the determinism contract of the registry.
  struct Met {
    metrics::Counter launches;
    metrics::Counter part_reuse_hits, part_reuse_misses;
    metrics::Counter image_hits, image_misses;
    metrics::Counter alloc_existing, alloc_fresh, alloc_pool_reuse,
        alloc_coalesced;
    metrics::Counter partitions_created;
    metrics::Counter checkpoint_bytes, restore_bytes;
    metrics::Counter fences;  ///< Volatile: drain count depends on pipelining
    /// Injected flips retired by a full overwrite before any read could
    /// observe them (dead data; not a detection failure).
    metrics::Counter flips_overwritten;
    /// Launch-domain strategy accounting: launches solved over equal row
    /// splits vs explicit nnz-balanced pins, plus per-launch work-spread
    /// gauges (max/mean leaf-recorded work over non-empty points, and the
    /// imbalance percentage 100*(max/mean - 1)). All bumped on the replay
    /// path only, so they are Stable.
    metrics::Counter part_strategy_rows, part_strategy_nnz;
    metrics::Gauge part_imbalance_pct, part_max_work, part_mean_work;
    /// Fusion-pass accounting (src/fuse): windows analyzed, original
    /// launches folded into fused launches, launches eliminated, and
    /// intermediate store round-trip bytes the fused chains no longer pay.
    /// Bumped only in flush_fuse_window() on the control thread → Stable.
    metrics::Counter fuse_windows, fuse_fused, fuse_eliminated,
        fuse_bytes_saved;
    /// Communication-planner accounting (src/comm): exchange-plan cache
    /// hits/misses/invalidations, coalesced transfers issued, per-piece
    /// copies those transfers replaced, bytes moved by link class, and
    /// kernels split into interior/boundary phases under Overlap. All bumped
    /// on the sequential replay path → Stable.
    metrics::Counter comm_plan_hits, comm_plan_misses, comm_plan_invalidations;
    metrics::Counter comm_messages, comm_messages_saved;
    metrics::Counter comm_bytes, comm_bytes_intra, comm_bytes_nvlink,
        comm_bytes_ib;
    metrics::Counter comm_overlap_splits;
  } met_;
};

/// RAII provenance scope: every task launched while alive is labeled
/// `name @scope` on the profiler timeline.
class ProvenanceScope {
 public:
  ProvenanceScope(Runtime& rt, std::string p) : rt_(rt) {
    rt_.push_provenance(std::move(p));
  }
  ~ProvenanceScope() { rt_.pop_provenance(); }
  ProvenanceScope(const ProvenanceScope&) = delete;
  ProvenanceScope& operator=(const ProvenanceScope&) = delete;

 private:
  Runtime& rt_;
};

}  // namespace legate::rt
