#pragma once

#include <map>
#include <string>
#include <vector>

#include "rt/store.h"

namespace legate::rt {

/// A consistent snapshot of canonical store contents plus caller-attached
/// scalars (iteration counters, recurrence values), produced by
/// Runtime::checkpoint(). The snapshot is an in-process deep copy of the
/// byte-exact canonical buffers; the simulated cost of writing it to (and
/// reading it back from) the modeled parallel file system is charged by the
/// engine's shared checkpoint I/O channel. Solvers keep the latest snapshot
/// and hand it back to Runtime::restore() after a node loss, which rewinds
/// the stores — and, because execution is deterministic, the entire solve —
/// to a state bit-identical to the fault-free run.
class Checkpoint {
 public:
  Checkpoint() = default;

  [[nodiscard]] bool valid() const { return !entries_.empty(); }
  /// Total payload bytes snapshotted (what checkpoint/restore I/O charges).
  [[nodiscard]] double bytes() const;
  /// Simulated time at which the checkpoint write completed.
  [[nodiscard]] double taken_at() const { return taken_at_; }

  /// Attach a named scalar (e.g. the solver's iteration counter) so restarts
  /// can resume recurrences exactly where the snapshot left them.
  void set_scalar(const std::string& key, double v) { scalars_[key] = v; }
  [[nodiscard]] double scalar(const std::string& key, double fallback = 0) const;

  /// Serialize the snapshot to `path`: a versioned header (magic + format
  /// version) followed by the scalars and one length + CRC32C + payload
  /// record per store entry. Throws std::runtime_error if the file cannot
  /// be written.
  void save(const std::string& path) const;

  /// Deserialize a snapshot from `path`, rebinding the payloads to `stores`
  /// (the same stores, in the same order, as the checkpoint() call that
  /// produced the file). Restart safety: an empty, truncated, wrong-magic,
  /// wrong-version, or checksum-mismatched file is rejected with a
  /// descriptive std::runtime_error naming the problem and the offending
  /// entry — never loaded as garbage.
  static Checkpoint load(const std::string& path,
                         const std::vector<Store>& stores);

 private:
  friend class Runtime;
  struct Entry {
    Store store;                  ///< handle keeps the backing buffer alive
    std::vector<std::byte> data;  ///< deep copy of the canonical bytes
  };
  std::vector<Entry> entries_;
  std::map<std::string, double> scalars_;
  double taken_at_{0};
};

}  // namespace legate::rt
