// Communication-planner half of the runtime (lsr_comm integration): the
// sim_apply Pass B replacement that materializes each launch's staleness-copy
// set into a cached ExchangePlan, charges it as coalesced per-link transfers,
// and (under Overlap) splits kernels into interior/boundary phases so compute
// proceeds while ghost transfers are in flight. The per-piece baseline path
// lives in runtime.cpp (ensure_in_memory); canonical results are identical —
// only the simulated copy schedule differs. See DESIGN.md §15.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <tuple>

#include "rt/runtime.h"
#include "rt/runtime_detail.h"
#include "rt/runtime_state.h"

namespace legate::rt {

using detail::LaunchRecord;

Runtime::Alloc* Runtime::comm_find_alloc(StoreId id, Interval elem,
                                         int mem) const {
  auto it = mem_state_[static_cast<std::size_t>(mem)]->allocs.find(id);
  if (it == mem_state_[static_cast<std::size_t>(mem)]->allocs.end()) {
    return nullptr;
  }
  for (auto& a : it->second) {
    if (a.extent.contains(elem)) return &a;
  }
  return nullptr;
}

void Runtime::comm_invalidate(StoreId id) {
  if (!comm_on_) return;
  long n = comm_cache_.invalidate_store(id);
  if (n > 0) met_.comm_plan_invalidations.inc(static_cast<double>(n));
}

void Runtime::comm_pass_b(LaunchRecord& R, const std::vector<PartitionRef>& parts,
                          const std::vector<std::vector<Interval>>& point_ivs,
                          const std::vector<char>& all_empty,
                          const std::vector<double>& dep_time,
                          std::vector<double>& completion,
                          std::vector<int>& point_mem,
                          std::vector<double>& partials, double& max_completion) {
  const auto& pp = machine_.params();
  const int colors = R.colors;
  const int nargs = static_cast<int>(R.args.size());
  const int nprocs = machine_.num_procs();

  std::vector<int> mem_node(machine_.memories().size(), 0);
  for (const auto& m : machine_.memories()) {
    mem_node[static_cast<std::size_t>(m.id)] = m.node;
  }

  // Staged arguments get instances (everything but Reduce, whose partials
  // live in private buffers); the keyed subset can additionally carry ghosts
  // (WriteDiscard instances need no staleness copies — and iterative solvers
  // rotate fresh output stores every iteration, so discard outputs must not
  // perturb the plan key either).
  std::vector<int> staged, keyed;
  for (int i = 0; i < nargs; ++i) {
    if (R.args[i].priv == Priv::Reduce) continue;
    staged.push_back(i);
    if (R.args[i].priv != Priv::WriteDiscard) keyed.push_back(i);
  }

  auto elem_of = [&](int c, int i) {
    Interval iv = point_ivs[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)];
    coord_t stride = R.args[static_cast<std::size_t>(i)].view.stride;
    return Interval{iv.lo * stride, iv.hi * stride};
  };
  auto precise_of = [&](int c, int i) -> const IntervalSet* {
    return R.args[static_cast<std::size_t>(i)].view.stride == 1
               ? parts[static_cast<std::size_t>(i)]->precise(c)
               : nullptr;
  };

  for (int c = 0; c < colors; ++c) {
    point_mem[static_cast<std::size_t>(c)] = machine_.proc(c % nprocs).mem;
  }

  // ---- Stage instances; collect pre-exchange (local) readiness -----------
  // Same allocation side effects as the per-piece path (LRU touches, pool
  // reuse, coalescing resize copies, OOM spilling); only the staleness
  // copies themselves are planned and coalesced below.
  std::vector<double> local_ready = dep_time;
  for (int c = 0; c < colors; ++c) {
    if (all_empty[static_cast<std::size_t>(c)] != 0) continue;
    const int mem = point_mem[static_cast<std::size_t>(c)];
    for (int i : staged) {
      Interval elem = elem_of(c, i);
      if (elem.empty()) continue;
      Alloc& a = find_or_create_alloc(R.args[static_cast<std::size_t>(i)].view,
                                      elem, mem);
      a.ready.for_each_in(elem, [&](Interval, double t) {
        local_ready[static_cast<std::size_t>(c)] =
            std::max(local_ready[static_cast<std::size_t>(c)], t);
      });
    }
  }

  // ---- Structural plan key ------------------------------------------------
  // Partition *content* (sub-intervals + precise runs), never uids: the
  // runtime rebuilds broadcast/halo/equal Partition objects every launch.
  // Store ids are excluded too — solvers rotate temporaries each iteration
  // while the exchange structure stays fixed; the signature below binds the
  // plan to the actual store states.
  comm::Hash kh;
  for (char ch : R.name) kh.mix(static_cast<std::uint64_t>(ch));
  kh.mix(static_cast<std::uint64_t>(colors));
  kh.mix(static_cast<std::uint64_t>(keyed.size()));
  for (int i : keyed) {
    const auto& a = R.args[static_cast<std::size_t>(i)];
    kh.mix(static_cast<std::uint64_t>(a.ckind));
    kh.mix_i(a.view.stride);
    kh.mix_i(a.view.basis);
    for (int c = 0; c < colors; ++c) {
      Interval elem = elem_of(c, i);
      kh.mix_i(elem.lo);
      kh.mix_i(elem.hi);
      if (const IntervalSet* pr = precise_of(c, i)) {
        pr->for_each(elem, [&](Interval r) {
          kh.mix_i(r.lo);
          kh.mix_i(r.hi);
        });
      }
    }
  }
  const std::uint64_t key = kh.digest();

  // ---- Valid-set signature ------------------------------------------------
  // Everything the derivation below reads, normalized so a hit guarantees an
  // identical staleness set: per keyed argument the version runs (as deltas
  // from the store's version counter — absolute versions advance every
  // iteration while the *pattern* repeats), the owner runs, and per point
  // the covering allocation's extent plus its held runs (same delta
  // normalization) over the required pieces. Gap markers distinguish
  // never-written/never-held from version 0.
  comm::Hash sh;
  for (int i : keyed) {
    const auto& a = R.args[static_cast<std::size_t>(i)];
    auto& ss = sync(a.view.id);
    const Interval whole = a.view.extent();
    ss.version.for_each_in(whole, [&](Interval iv, std::uint64_t v) {
      sh.mix_i(iv.lo);
      sh.mix_i(iv.hi);
      sh.mix(ss.version_counter - v);
    });
    ss.version.for_each_gap(whole, [&](Interval iv) {
      sh.mix_i(iv.lo);
      sh.mix_i(iv.hi);
      sh.mix(~0ULL);
    });
    ss.owner.for_each_in(whole, [&](Interval iv, int m) {
      sh.mix_i(iv.lo);
      sh.mix_i(iv.hi);
      sh.mix(static_cast<std::uint64_t>(m));
    });
    for (int c = 0; c < colors; ++c) {
      if (all_empty[static_cast<std::size_t>(c)] != 0) continue;
      Interval elem = elem_of(c, i);
      if (elem.empty()) continue;
      const Alloc* al =
          comm_find_alloc(a.view.id, elem, point_mem[static_cast<std::size_t>(c)]);
      if (al == nullptr) {
        // Staging always creates a covering allocation, but be conservative.
        sh.mix(0xA110CULL);
        continue;
      }
      sh.mix_i(al->extent.lo);
      sh.mix_i(al->extent.hi);
      auto scan = [&](Interval r) {
        al->held.for_each_in(r, [&](Interval iv, std::uint64_t v) {
          sh.mix_i(iv.lo);
          sh.mix_i(iv.hi);
          sh.mix(ss.version_counter - v);
        });
        al->held.for_each_gap(r, [&](Interval iv) {
          sh.mix_i(iv.lo);
          sh.mix_i(iv.hi);
          sh.mix(~0ULL);
        });
      };
      const IntervalSet* pr = precise_of(c, i);
      if (pr != nullptr) {
        pr->for_each(elem, scan);
      } else {
        scan(elem);
      }
    }
  }
  const std::uint64_t sig = sh.digest();

  // ---- Cache lookup / plan derivation -------------------------------------
  const comm::ExchangePlan* plan = comm_cache_.lookup(key, sig);
  // LSR_COMM_DEBUG=1: per-launch hit/miss trace for diagnosing key or
  // signature instability (e.g. a solver that should reach steady-state
  // reuse but keeps re-deriving).
  static const bool debug = std::getenv("LSR_COMM_DEBUG") != nullptr;
  if (debug)
    std::fprintf(stderr, "[comm] %-24s key=%016llx sig=%016llx %s\n",
                 R.name.c_str(), static_cast<unsigned long long>(key),
                 static_cast<unsigned long long>(sig),
                 plan != nullptr ? "HIT" : "miss");
  const bool hit = plan != nullptr;
  (hit ? met_.comm_plan_hits : met_.comm_plan_misses).inc();
  if (!hit) {
    comm::ExchangePlan fresh;
    // Scheduled-piece overlay per (mem, store, allocation): points sharing a
    // memory (CPU sockets on one node) must not double-schedule the same
    // ghost the per-piece path would have deduplicated through `held`.
    std::map<std::tuple<int, StoreId, coord_t>, IntervalMap<std::uint64_t>>
        overlay;
    for (int c = 0; c < colors; ++c) {
      if (all_empty[static_cast<std::size_t>(c)] != 0) continue;
      const int mem = point_mem[static_cast<std::size_t>(c)];
      for (int ord = 0; ord < static_cast<int>(keyed.size()); ++ord) {
        const int i = keyed[static_cast<std::size_t>(ord)];
        const auto& a = R.args[static_cast<std::size_t>(i)];
        Interval elem = elem_of(c, i);
        if (elem.empty()) continue;
        auto& ss = sync(a.view.id);
        Alloc* al = comm_find_alloc(a.view.id, elem, mem);
        LSR_CHECK_MSG(al != nullptr, "comm plan derivation before staging");
        auto& ov = overlay[{mem, a.view.id, al->extent.lo}];
        const double esize = static_cast<double>(dtype_size(a.view.dtype));
        // Required version per piece (implicit 0 = never written, no
        // movement), restricted to the precise touched set when one exists —
        // the same walk ensure_in_memory does.
        std::vector<std::pair<Interval, std::uint64_t>> required;
        auto collect = [&](Interval range) {
          ss.version.for_each_in(range, [&](Interval iv, std::uint64_t v) {
            required.emplace_back(iv, v);
          });
        };
        const IntervalSet* pr = precise_of(c, i);
        if (pr != nullptr) {
          pr->for_each(elem, collect);
        } else {
          collect(elem);
        }
        for (auto& [iv, v] : required) {
          if (v == 0) continue;
          std::vector<Interval> stale;
          al->held.for_each_in(iv, [&](Interval piece, std::uint64_t held_v) {
            if (held_v < v) stale.push_back(piece);
          });
          al->held.for_each_gap(iv, [&](Interval gap) { stale.push_back(gap); });
          for (Interval want : stale) {
            // Drop sub-pieces an earlier ghost into this allocation already
            // delivers at a sufficient version.
            std::vector<Interval> need;
            ov.for_each_in(want, [&](Interval p, std::uint64_t sv) {
              if (sv < v) need.push_back(p);
            });
            ov.for_each_gap(want, [&](Interval p) { need.push_back(p); });
            for (Interval piece : need) {
              std::vector<std::pair<Interval, int>> sources;
              ss.owner.for_each_in(piece, [&](Interval p, int m) {
                sources.emplace_back(p, m);
              });
              ss.owner.for_each_gap(piece, [&](Interval p) {
                sources.emplace_back(p, machine_.home_memory());
              });
              for (auto& [p, src_mem] : sources) {
                fresh.ghosts.push_back(comm::Ghost{
                    p, ord, src_mem, mem, c,
                    static_cast<double>(p.size()) * esize});
              }
              ov.assign(piece, v);
            }
          }
        }
      }
    }
    fresh.coalesce(colors, mem_node);
    fresh.signature = sig;
    // Bind only ghost-bearing stores into the invalidation index: aligned
    // reads of rotating solver temporaries must not evict the plan when the
    // temporary dies (see ExchangePlan::stores).
    for (const auto& g : fresh.ghosts) {
      const int i = keyed[static_cast<std::size_t>(g.arg)];
      fresh.stores.push_back(R.args[static_cast<std::size_t>(i)].view.id);
    }
    std::sort(fresh.stores.begin(), fresh.stores.end());
    fresh.stores.erase(std::unique(fresh.stores.begin(), fresh.stores.end()),
                       fresh.stores.end());
    if (debug)
      std::fprintf(stderr, "[comm]   insert ghosts=%zu stores=%zu\n",
                   fresh.ghosts.size(), fresh.stores.size());
    plan = comm_cache_.insert(key, std::move(fresh));
  }

  // ---- Apply: one engine copy per coalesced transfer ----------------------
  double bytes_intra = 0, bytes_nvlink = 0, bytes_ib = 0;
  // Issue earliest-ready-first: links are modeled as serialized clocks, so a
  // transfer stuck behind a late producer would convoy every transfer issued
  // after it on the same link. Equal-readiness ties break by ring offset
  // ((dst_node - src_node) mod N, the classic staggered all-to-all): if every
  // source served destinations in the same ascending order, the last
  // destination would be served last by everyone and its whole iteration
  // chain — including its own outgoing link — would trail the fleet. All key
  // components are deterministic, keeping the engine-op sequence reproducible.
  const int nnodes = machine_.nodes();
  struct IssueKey {
    double ready;
    int ring;
    std::size_t ti;
  };
  std::vector<IssueKey> order;
  order.reserve(plan->transfers.size());
  for (std::size_t ti = 0; ti < plan->transfers.size(); ++ti) {
    const auto& t = plan->transfers[ti];
    double src_ready = 0;
    for (std::uint32_t gi : t.ghosts) {
      const auto& g = plan->ghosts[static_cast<std::size_t>(gi)];
      auto& ss = sync(
          R.args[static_cast<std::size_t>(keyed[static_cast<std::size_t>(g.arg)])]
              .view.id);
      ss.last_write.for_each_in(g.piece, [&](Interval, double w) {
        src_ready = std::max(src_ready, w);
      });
    }
    const int sn = mem_node[static_cast<std::size_t>(t.src_mem)];
    const int dn = mem_node[static_cast<std::size_t>(t.dst_mem)];
    order.push_back({src_ready, (dn - sn + nnodes) % nnodes, ti});
  }
  std::stable_sort(order.begin(), order.end(), [](const IssueKey& a, const IssueKey& b) {
    if (a.ready != b.ready) return a.ready < b.ready;
    if (a.ring != b.ring) return a.ring < b.ring;
    return a.ti < b.ti;
  });
  for (const auto& [src_ready, ring, ti] : order) {
    const auto& t = plan->transfers[ti];
    const double done = engine_->copy(t.src_mem, t.dst_mem, t.bytes, src_ready);
    for (std::uint32_t gi : t.ghosts) {
      const auto& g = plan->ghosts[static_cast<std::size_t>(gi)];
      const StoreId sid =
          R.args[static_cast<std::size_t>(keyed[static_cast<std::size_t>(g.arg)])]
              .view.id;
      auto& ss = sync(sid);
      Alloc* al = comm_find_alloc(sid, g.piece, g.dst_mem);
      if (al == nullptr) continue;
      ss.version.for_each_in(g.piece, [&](Interval iv, std::uint64_t v) {
        al->held.assign(iv, v);
      });
      al->ready.assign(g.piece, done);
    }
    if (t.src_mem == t.dst_mem) {
      bytes_intra += t.bytes;
    } else if (mem_node[static_cast<std::size_t>(t.src_mem)] ==
               mem_node[static_cast<std::size_t>(t.dst_mem)]) {
      bytes_nvlink += t.bytes;
    } else {
      bytes_ib += t.bytes;
    }
  }

  // ---- Post-exchange data readiness per point ------------------------------
  // Walk the required (written) pieces' arrival times, exactly like the
  // per-piece path's final gate: this also picks up ghosts delivered to a
  // shared-memory neighbor's instance by an earlier transfer.
  std::vector<double> data_gate = local_ready;
  for (int c = 0; c < colors; ++c) {
    if (all_empty[static_cast<std::size_t>(c)] != 0) continue;
    for (int i : keyed) {
      const auto& a = R.args[static_cast<std::size_t>(i)];
      Interval elem = elem_of(c, i);
      if (elem.empty()) continue;
      auto& ss = sync(a.view.id);
      const Alloc* al =
          comm_find_alloc(a.view.id, elem, point_mem[static_cast<std::size_t>(c)]);
      if (al == nullptr) continue;
      auto gate = [&](Interval range) {
        ss.version.for_each_in(range, [&](Interval iv, std::uint64_t v) {
          if (v == 0) return;
          al->ready.for_each_in(iv, [&](Interval, double t) {
            data_gate[static_cast<std::size_t>(c)] =
                std::max(data_gate[static_cast<std::size_t>(c)], t);
          });
        });
      };
      const IntervalSet* pr = precise_of(c, i);
      if (pr != nullptr) {
        pr->for_each(elem, gate);
      } else {
        gate(elem);
      }
    }
  }

  // ---- Charge the kernels --------------------------------------------------
  for (int c = 0; c < colors; ++c) {
    if (all_empty[static_cast<std::size_t>(c)] != 0) {
      completion[static_cast<std::size_t>(c)] = dep_time[static_cast<std::size_t>(c)];
      continue;
    }
    const int proc_id = c % nprocs;
    const auto& proc = machine_.proc(proc_id);
    const auto& po = R.out[static_cast<std::size_t>(c)];
    if (po.contributed) partials.push_back(po.partial);
    sim::Cost cost = po.cost;
    if (opts_.model_reshape && proc.kind == sim::ProcKind::GPU) {
      cost.bytes += po.reshape * pp.legate_csr_reshape_fraction;
    }
    cost.bytes *= engine_->cost_scale();
    cost.flops *= engine_->cost_scale();
    double duration = engine_->cost_model().kernel_seconds(
        proc.kind, cost, proc.kind == sim::ProcKind::CPU ? cpu_fraction_ : 1.0);
    if (proc.kind == sim::ProcKind::GPU) duration += pp.gpu_kernel_launch;
    engine_->note_task();
    ++task_seq_;  // keep the point sequence aligned with the per-piece path
    const double lready = local_ready[static_cast<std::size_t>(c)];
    const double gready = data_gate[static_cast<std::size_t>(c)];
    const double gbytes =
        plan->ghost_bytes_by_color[static_cast<std::size_t>(c)];
    double done;
    if (comm_mode_ == comm::Mode::Overlap && gbytes > 0 && po.cost.bytes > 0 &&
        duration > 0 && gready > lready) {
      // Interior/boundary split: the fraction of the leaf's traffic that is
      // ghost data bounds the boundary phase; the interior (capped at half
      // the kernel so a ghost-dominated task still overlaps something)
      // starts on local data alone, hiding the exchange behind it.
      const double frac = std::min(0.5, gbytes / po.cost.bytes);
      const double t_int = engine_->busy_proc(
          proc_id, lready, duration * (1.0 - frac), R.prof_label);
      done = engine_->busy_proc(proc_id, std::max(t_int, gready),
                                duration * frac, R.prof_label);
      met_.comm_overlap_splits.inc();
    } else {
      done = engine_->busy_proc(proc_id, gready, duration, R.prof_label);
    }
    if (R.wall_prof && po.wall0 >= 0) {
      engine_->recorder().set_last_wall(po.wall0, po.wall1);
    }
    completion[static_cast<std::size_t>(c)] = done;
    max_completion = std::max(max_completion, done);
  }

  // ---- Accounting ----------------------------------------------------------
  const double scale = engine_->cost_scale();
  met_.comm_messages.inc(static_cast<double>(plan->transfers.size()));
  if (plan->ghosts.size() > plan->transfers.size()) {
    met_.comm_messages_saved.inc(
        static_cast<double>(plan->ghosts.size() - plan->transfers.size()));
  }
  if (plan->total_bytes > 0) met_.comm_bytes.inc(plan->total_bytes * scale);
  if (bytes_intra > 0) met_.comm_bytes_intra.inc(bytes_intra * scale);
  if (bytes_nvlink > 0) met_.comm_bytes_nvlink.inc(bytes_nvlink * scale);
  if (bytes_ib > 0) met_.comm_bytes_ib.inc(bytes_ib * scale);
  engine_->note_comm();
  auto& fr = engine_->flight();
  if (fr.enabled()) {
    fr.record(diag::EventKind::Comm, R.name,
              static_cast<std::int64_t>(plan->transfers.size()), hit ? 1 : 0,
              plan->total_bytes * scale);
  }
}

}  // namespace legate::rt
