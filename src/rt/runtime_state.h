#pragma once

// Definitions of Runtime's private dynamic-analysis state, shared by the
// runtime translation units (runtime.cpp, runtime_comm.cpp). Internal header:
// include only after rt/runtime.h.

#include "rt/runtime.h"

namespace legate::rt {

/// Per-store dynamic analysis state. All interval maps are in *element*
/// coordinates (2-D stores linearized row-major).
struct Runtime::SyncState {
  IntervalMap<double> last_write;  ///< completion time of the last writer
  std::vector<std::pair<Interval, double>> readers;  ///< reads since last write
  IntervalMap<std::uint64_t> version;  ///< data version (implicit 0)
  IntervalMap<int> owner;              ///< memory holding the latest version
  std::uint64_t version_counter{0};
  std::uint64_t epoch{0};  ///< bumped on writes; invalidates image cache
  PartitionRef key;        ///< last partition used to write (basis units)
};

/// One simulated allocation of (part of) a store in one memory.
struct Runtime::Alloc {
  Interval extent;  ///< element interval covered
  IntervalMap<std::uint64_t> held;  ///< version of data held (implicit: none)
  IntervalMap<double> ready;        ///< time the held data became valid
  double last_use{0};  ///< logical touch tick; eviction picks the minimum
  double esize{8};     ///< bytes per element (needed to release/spill by id)
};

struct Runtime::MemState {
  std::unordered_map<StoreId, std::vector<Alloc>> allocs;
  /// Extents of allocations whose stores went out of scope. New requirements
  /// matching a pooled extent reuse it directly — this is how the paper's
  /// Fig. 5 steady state avoids per-iteration allocation resizing (x2 reuses
  /// a slice of x0's old allocation).
  std::vector<Interval> pool;
};

}  // namespace legate::rt
