#include "rt/runtime.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "fuse/fuse.h"
#include "rt/checkpoint.h"
#include "rt/runtime_detail.h"
#include "rt/runtime_state.h"

namespace legate::rt {

using detail::LaunchRecord;

// ---------------------------------------------------------------------------
// StoreImpl
// ---------------------------------------------------------------------------

namespace detail {

StoreImpl::StoreImpl(Runtime* rt_, StoreId id_, DType dtype_,
                     std::vector<coord_t> shape_)
    : rt(rt_), id(id_), dtype(dtype_), shape(std::move(shape_)) {
  LSR_CHECK(shape.size() == 1 || shape.size() == 2);
  // Shared buffer: deferred launches (legate::exec) keep the bytes alive
  // through StoreViews past this handle's destruction.
  data = std::make_shared<std::vector<std::byte>>(
      static_cast<std::size_t>(volume()) * dtype_size(dtype));
}

StoreImpl::~StoreImpl() {
  if (rt != nullptr) rt->on_store_destroyed(this);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Internal runtime state: SyncState / Alloc / MemState definitions live in
// rt/runtime_state.h, shared with the comm-planner translation unit.
// ---------------------------------------------------------------------------
// TaskContext
// ---------------------------------------------------------------------------

Interval TaskContext::interval(int arg) const {
  return rec_->ivs[static_cast<std::size_t>(color_)][static_cast<std::size_t>(arg)];
}

Interval TaskContext::elem_interval(int arg) const {
  Interval iv = interval(arg);
  coord_t stride = rec_->args[static_cast<std::size_t>(arg)].view.stride;
  return {iv.lo * stride, iv.hi * stride};
}

std::span<std::byte> TaskContext::arg_bytes(int arg) const {
  if (reduce_bufs_ != nullptr && !(*reduce_bufs_)[arg].empty()) {
    return {(*reduce_bufs_)[arg].data(), (*reduce_bufs_)[arg].size()};
  }
  // Canonical bytes through the record's view — deliberately NOT Store::raw()
  // (that is a fence point; leaves may run mid-pipeline on pool threads).
  return rec_->args[static_cast<std::size_t>(arg)].view.raw();
}

void TaskContext::add_cost(double bytes, double flops, double efficiency) {
  // Catch misconfigured kernel descriptors at the source (CostModel rejects
  // non-positive efficiency too, but here the task name is on the stack).
  LSR_CHECK_MSG(efficiency > 0, "kernel efficiency must be positive");
  cost_.bytes += bytes;
  cost_.flops += flops;
  if (efficiency < cost_.efficiency) cost_.efficiency = efficiency;
}

void TaskContext::add_reshape_bytes(double bytes) { reshape_bytes_ += bytes; }

void TaskContext::contribute(double v) {
  partial_ = v;
  contributed_ = true;
}

// ---------------------------------------------------------------------------
// TaskLauncher
// ---------------------------------------------------------------------------

TaskLauncher::TaskLauncher(Runtime& rt, std::string name)
    : rt_(rt), name_(std::move(name)) {}

int TaskLauncher::add_arg(const Store& s, Priv p) {
  int idx = static_cast<int>(args_.size());
  Arg a{};
  a.store = s;
  a.priv = p;
  a.align_root = idx;
  args_.push_back(std::move(a));
  return idx;
}

int TaskLauncher::find_root(int a) {
  int r = a;
  while (args_[r].align_root != r) r = args_[r].align_root;
  while (args_[a].align_root != r) {
    int next = args_[a].align_root;
    args_[a].align_root = r;
    a = next;
  }
  return r;
}

void TaskLauncher::align(int a, int b) {
  LSR_CHECK_MSG(args_[a].store.basis() == args_[b].store.basis(),
                "aligned arguments must share a basis extent");
  int ra = find_root(a), rb = find_root(b);
  if (ra != rb) args_[rb].align_root = ra;
}

void TaskLauncher::image_rects(int src, int dst) {
  LSR_CHECK(args_[src].store.dtype() == DType::Rect1);
  args_[dst].ckind = ConstraintKind::ImageRects;
  args_[dst].image_src = src;
}

void TaskLauncher::image_points(int src, int dst) {
  LSR_CHECK(args_[src].store.dtype() == DType::I64);
  args_[dst].ckind = ConstraintKind::ImagePoints;
  args_[dst].image_src = src;
}

void TaskLauncher::halo(int src, int dst, coord_t lo_off, coord_t hi_off) {
  args_[dst].ckind = ConstraintKind::Halo;
  args_[dst].image_src = src;
  args_[dst].halo_lo = lo_off;
  args_[dst].halo_hi = hi_off;
}

void TaskLauncher::broadcast(int arg) { args_[arg].ckind = ConstraintKind::Broadcast; }

void TaskLauncher::set_partition(int arg, PartitionRef p) {
  LSR_CHECK(p != nullptr);
  LSR_CHECK_MSG(p->disjoint(), "explicit partitions must be disjoint");
  LSR_CHECK_MSG(args_[arg].ckind == ConstraintKind::None,
                "explicit partitions only apply to alignment-constrained args");
  args_[arg].part = std::move(p);
}

Future TaskLauncher::execute() { return rt_.execute(*this); }

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(const sim::Machine& machine, RuntimeOptions opts)
    : machine_(machine), engine_(std::make_unique<sim::Engine>(machine_)), opts_(opts) {
  const auto& pp = machine_.params();
  task_overhead_ = opts.task_overhead >= 0 ? opts.task_overhead : pp.legate_task_overhead;
  cpu_fraction_ =
      opts.cpu_core_fraction > 0 ? opts.cpu_core_fraction : pp.legate_cpu_core_fraction;
  mem_state_.reserve(machine_.memories().size());
  for (std::size_t i = 0; i < machine_.memories().size(); ++i) {
    mem_state_.push_back(std::make_unique<MemState>());
  }
  // Real execution backend (legate::exec). Thread count / pipelining come
  // from options, falling back to LSR_EXEC_THREADS / LSR_EXEC_PIPELINE.
  int threads = opts_.exec_threads;
  if (threads <= 0) {
    if (const char* e = std::getenv("LSR_EXEC_THREADS")) threads = std::atoi(e);
    if (threads <= 0) threads = 1;
  }
  exec_threads_ = threads;
  int pl = opts_.exec_pipeline;
  if (pl < 0) {
    pl = 1;
    if (const char* e = std::getenv("LSR_EXEC_PIPELINE")) pl = std::atoi(e);
  }
  // Fault-injection retries must observe real completion at every launch, so
  // pipelining is only active on fault-free runs. Checksummed stores impose
  // the same constraint: verify-on-read must observe real bytes at the
  // sequential replay point.
  pipeline_ = exec_threads_ > 1 && pl != 0 && !opts_.faults.enabled &&
              opts_.integrity == Integrity::Off;
  if (exec_threads_ > 1) {
    pool_ = std::make_unique<exec::Pool>(exec_threads_, &engine_->metrics());
  }
  // Partitioning strategy: option, else LSR_PARTITION env, else rows.
  partition_strategy_ = opts_.partition;
  if (partition_strategy_ == PartitionStrategy::Unset) {
    partition_strategy_ = parse_partition_strategy(std::getenv("LSR_PARTITION"));
  }
  if (partition_strategy_ == PartitionStrategy::Unset) {
    partition_strategy_ = PartitionStrategy::Rows;
  }
  // Fusion mode: option, else LSR_FUSE env, else off. Fault injection
  // disables the pass — its retry/poison bookkeeping must observe each
  // launch individually, exactly like pipelining.
  fusion_mode_ = opts_.fusion;
  if (fusion_mode_ == Fusion::Unset) {
    fusion_mode_ = parse_fusion_mode(std::getenv("LSR_FUSE"));
  }
  if (fusion_mode_ == Fusion::Unset) fusion_mode_ = Fusion::Off;
  fusion_on_ = fusion_mode_ != Fusion::Off && !opts_.faults.enabled;
  if (fusion_on_) fuse_tracker_ = std::make_unique<fuse::WindowTracker>();
  // Comm-planner mode: option, else LSR_COMM env, else off. Fault injection
  // disables the planner (per-point retry accounting needs the per-piece
  // staging path), and so does the coalescing=false ablation (the plan's
  // ghost→allocation resolution assumes disjoint allocation extents).
  comm_mode_ = opts_.comm;
  if (comm_mode_ == comm::Mode::Unset) {
    comm_mode_ = comm::parse_comm_mode(std::getenv("LSR_COMM"));
  }
  if (comm_mode_ == comm::Mode::Unset) comm_mode_ = comm::Mode::Off;
  comm_on_ = comm_mode_ != comm::Mode::Off && !opts_.faults.enabled &&
             opts_.coalescing;
  // Diagnostics mode: option, else LSR_DIAG env, else off. The engine already
  // configured itself from the environment at construction; reconfigure with
  // the resolved option set and wire the watchdog's executor-pool probe.
  diag::Mode dmode = opts_.diag;
  if (dmode == diag::Mode::Unset) dmode = diag::parse_mode(std::getenv("LSR_DIAG"));
  if (dmode == diag::Mode::Unset) dmode = diag::Mode::Off;
  engine_->flight().configure(dmode, opts_.diag_opts);
  engine_->flight().note_partition_nnz(partition_strategy_ ==
                                       PartitionStrategy::Nnz);
  if (pool_ != nullptr) {
    engine_->flight().set_pool_status([p = pool_.get()] {
      exec::Pool::Status s = p->status();
      return diag::PoolStatus{s.queued, s.running, s.completed, true};
    });
  }

  auto& mreg = engine_->metrics();
  met_.launches = mreg.counter("lsr_rt_launches_total", "task launches applied");
  met_.part_reuse_hits = mreg.counter(
      "lsr_rt_partition_reuse_hits_total",
      "alignment groups satisfied by an existing key partition");
  met_.part_reuse_misses =
      mreg.counter("lsr_rt_partition_reuse_misses_total",
                   "alignment groups needing a fresh equal partition");
  met_.image_hits = mreg.counter("lsr_rt_image_cache_hits_total",
                                 "dependent partitions served from cache");
  met_.image_misses = mreg.counter("lsr_rt_image_cache_misses_total",
                                   "dependent partitions computed");
  met_.alloc_existing = mreg.counter("lsr_rt_alloc_existing_total",
                                     "requirements served by a covering allocation");
  met_.alloc_fresh =
      mreg.counter("lsr_rt_alloc_fresh_total", "exact fresh allocations");
  met_.alloc_pool_reuse = mreg.counter("lsr_rt_alloc_pool_reuse_total",
                                       "allocations recycled from the free pool");
  met_.alloc_coalesced = mreg.counter(
      "lsr_rt_alloc_coalesced_total",
      "allocations grown by merging overlapping neighbors (Section 4.2)");
  met_.partitions_created =
      mreg.counter("lsr_rt_partitions_created_total", "partitions materialized");
  met_.checkpoint_bytes = mreg.counter("lsr_rt_checkpoint_bytes_total",
                                       "bytes snapshotted to the modeled PFS");
  met_.restore_bytes = mreg.counter("lsr_rt_restore_bytes_total",
                                    "bytes restored from the modeled PFS");
  met_.fences = mreg.counter("lsr_rt_fences_total",
                             "pipeline drains (count depends on pipelining)",
                             metrics::Stability::Volatile);
  met_.flips_overwritten =
      mreg.counter("lsr_integrity_flips_overwritten_total",
                   "injected flips retired by a full overwrite before any read");
  met_.part_strategy_rows =
      mreg.counter("lsr_part_strategy_rows_total",
                   "launches whose primary domain used the equal row split");
  met_.part_strategy_nnz =
      mreg.counter("lsr_part_strategy_nnz_total",
                   "launches whose primary domain used an nnz-balanced split");
  met_.part_imbalance_pct = mreg.gauge(
      "lsr_part_imbalance_pct",
      "last launch's work imbalance: 100 * (max point work / mean - 1)");
  met_.part_max_work = mreg.gauge(
      "lsr_part_max_work", "last launch's max per-point work (bytes + flops)");
  met_.part_mean_work = mreg.gauge(
      "lsr_part_mean_work", "last launch's mean per-point work (bytes + flops)");
  met_.fuse_windows = mreg.counter("lsr_fuse_windows_scanned_total",
                                   "fusion windows analyzed at flush");
  met_.fuse_fused =
      mreg.counter("lsr_fuse_launches_fused_total",
                   "original launches folded into a fused launch");
  met_.fuse_eliminated = mreg.counter("lsr_fuse_launches_eliminated_total",
                                      "task launches eliminated by fusion");
  met_.fuse_bytes_saved = mreg.counter(
      "lsr_fuse_bytes_saved_total",
      "intermediate store round-trip bytes eliminated by fused chains");
  met_.comm_plan_hits = mreg.counter(
      "lsr_comm_plan_hits_total",
      "launches whose halo-exchange plan was served from the cache");
  met_.comm_plan_misses = mreg.counter("lsr_comm_plan_misses_total",
                                       "halo-exchange plans derived fresh");
  met_.comm_plan_invalidations =
      mreg.counter("lsr_comm_plan_invalidations_total",
                   "cached exchange plans dropped by store mutation/"
                   "destruction/shuffle/restore");
  met_.comm_messages = mreg.counter(
      "lsr_comm_messages_total", "coalesced exchange transfers issued");
  met_.comm_messages_saved =
      mreg.counter("lsr_comm_messages_saved_total",
                   "per-piece staging copies replaced by coalescing");
  met_.comm_bytes = mreg.counter("lsr_comm_bytes_total",
                                 "ghost bytes moved by exchange plans");
  met_.comm_bytes_intra = mreg.counter(
      "lsr_comm_bytes_intra_total", "exchange-plan bytes within one memory");
  met_.comm_bytes_nvlink = mreg.counter(
      "lsr_comm_bytes_nvlink_total",
      "exchange-plan bytes over intra-node (nvlink-class) links");
  met_.comm_bytes_ib = mreg.counter(
      "lsr_comm_bytes_ib_total",
      "exchange-plan bytes over inter-node (ib-class) links");
  met_.comm_overlap_splits = mreg.counter(
      "lsr_comm_overlap_splits_total",
      "kernels split into interior/boundary phases to overlap the exchange");
  ledger_.set_hashed_counter(mreg.counter(
      "lsr_integrity_bytes_hashed_total",
      "bytes run through CRC32C by checksum maintenance and verification"));

  if (opts_.faults.enabled) {
    injector_ = std::make_unique<sim::FaultInjector>(opts_.faults);
    // Phantom reservation shrinking every framebuffer, so the spill path can
    // be exercised without paper-scale problem sizes.
    if (opts_.faults.oom_pressure_bytes > 0) {
      for (const auto& m : machine_.memories()) {
        if (m.kind == sim::MemKind::Frame) {
          engine_->alloc_bytes(m.id, opts_.faults.oom_pressure_bytes);
        }
      }
    }
  }
}

Runtime::~Runtime() {
  // Finish any deferred work before tearing the machine state down; errors
  // surfacing this late have nowhere to go.
  try {
    fence();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
  // Detach the watchdog's pool probe before the pool dies; set_pool_status
  // blocks until any in-flight watchdog sample finished with the old probe.
  engine_->flight().set_pool_status({});
  pool_.reset();
  for (auto* impl : live_stores_) impl->rt = nullptr;
}

std::string Runtime::diag_dump(const std::string& reason) {
  fence();
  return engine_->flight().dump(reason);
}

Store Runtime::create_store(DType dtype, std::vector<coord_t> shape) {
  auto impl =
      std::make_shared<detail::StoreImpl>(this, next_store_id_++, dtype, std::move(shape));
  live_stores_.insert(impl.get());
  sync_.emplace(impl->id, std::make_unique<SyncState>());
  // Checksum the zero-initialized buffer so every live store is tracked
  // from birth (a flip landing before the first write is still caught).
  integrity_record(impl->id, impl->data->data(), impl->data->size(), 0,
                   impl->data->size());
  return Store(std::move(impl));
}

void Runtime::mark_attached(const Store& s) {
  fence();  // attachment observes and republishes the canonical bytes
  auto& ss = sync(s.id());
  ss.version_counter = 1;
  ss.version.assign(s.extent(), 1);
  ss.owner.assign(s.extent(), machine_.home_memory());
  ss.last_write.assign(s.extent(), 0.0);
  // Materialize the backing allocation in the home memory.
  double esize = static_cast<double>(dtype_size(s.dtype()));
  double bytes = static_cast<double>(s.volume()) * esize;
  alloc_with_spill(machine_.home_memory(), bytes, s.id());
  Alloc a{s.extent(), {}, {}, ++use_tick_, esize};
  a.held.assign(s.extent(), 1);
  a.ready.assign(s.extent(), 0.0);
  mem_state_[machine_.home_memory()]->allocs[s.id()].push_back(std::move(a));
  // The attach wrote the canonical bytes externally: refresh the checksums.
  auto v = s.view();
  integrity_record(s.id(), v.raw().data(), v.raw().size(), 0, v.raw().size());
  comm_invalidate(s.id());
}

void Runtime::on_store_destroyed(detail::StoreImpl* impl) {
  live_stores_.erase(impl);
  StoreId id = impl->id;
  ledger_.forget(id);
  // Flips still outstanding on a dying store were never read again: masked
  // corruption on dead data, retired (not detected) so the flip ledger
  // balances — injected == detected + overwritten at scrub time.
  if (auto it = outstanding_flips_.find(id); it != outstanding_flips_.end()) {
    met_.flips_overwritten.inc(static_cast<double>(it->second.size()));
    outstanding_flips_.erase(it);
  }
  if ((pipeline_ || fusion_on_) && fuse_window_.empty()) {
    // The id is unreachable from future launches; retire its eager state.
    // (Pending nodes stay alive through the pool queue and their records.)
    // With an open fusion window the retirement must wait: window members
    // referencing this store are not enqueued yet, and erasing the hazard
    // entry now would sever the writer edge their enqueue still has to see.
    retire_eager_state(id);
  }
  double esize = static_cast<double>(dtype_size(impl->dtype));
  if (!fuse_window_.empty()) {
    // An open fusion window may still read this store's view; defer the
    // release accounting (and the eager-state retirement above) to the
    // window's stream position (flush).
    fuse_pending_release_.emplace_back(id, esize);
  } else if (!sim_queue_.empty()) {
    // Queued launches may still reference this store's sync state; release
    // at the store's position in the replayed stream so pool/coalescing/OOM
    // behavior is identical to sequential execution.
    sim_queue_.push_back([this, id, esize] { release_store(id, esize); });
  } else {
    release_store(id, esize);
  }
}

void Runtime::retire_eager_state(StoreId id) {
  hazards_.erase(id);
  eager_epoch_.erase(id);
  for (auto it = eager_images_.begin(); it != eager_images_.end();) {
    it = it->first.src == id ? eager_images_.erase(it) : std::next(it);
  }
}

void Runtime::release_store(StoreId id, double esize) {
  for (std::size_t mem = 0; mem < mem_state_.size(); ++mem) {
    auto it = mem_state_[mem]->allocs.find(id);
    if (it == mem_state_[mem]->allocs.end()) continue;
    for (auto& a : it->second) {
      engine_->free_bytes(static_cast<int>(mem),
                          static_cast<double>(a.extent.size()) * esize);
      // Remember the extent so a future same-shaped requirement can reuse it.
      auto& pool = mem_state_[mem]->pool;
      pool.push_back(a.extent);
      if (pool.size() > 64) pool.erase(pool.begin());
    }
    mem_state_[mem]->allocs.erase(it);
  }
  sync_.erase(id);
  // Plans referencing the dead id must not survive: runs at the store's
  // stream position in both sequential and pipelined modes, so the hit/miss/
  // invalidation sequence is deterministic.
  comm_invalidate(id);
}

Runtime::SyncState& Runtime::sync(StoreId id) {
  auto it = sync_.find(id);
  LSR_CHECK_MSG(it != sync_.end(), "unknown store");
  return *it->second;
}

PartitionRef Runtime::key_partition(const Store& s) {
  fence();  // key assignment happens during simulated replay
  auto it = sync_.find(s.id());
  return it == sync_.end() ? nullptr : it->second->key;
}

namespace detail {

PartitionRef build_image_partition(const StoreView& src, const Partition& src_part,
                                   ConstraintKind kind) {
  std::vector<Interval> subs;
  subs.reserve(src_part.colors());
  if (kind == ConstraintKind::ImageRects) {
    auto data = src.span<Rect1>();
    for (int c = 0; c < src_part.colors(); ++c) {
      Interval s = src_part.sub(c).intersect(src.extent());
      coord_t lo = 0, hi = -1;
      bool any = false;
      for (coord_t i = s.lo; i < s.hi; ++i) {
        const Rect1& r = data[static_cast<std::size_t>(i)];
        if (r.empty()) continue;
        if (!any) {
          lo = r.lo;
          hi = r.hi;
          any = true;
        } else {
          lo = std::min(lo, r.lo);
          hi = std::max(hi, r.hi);
        }
      }
      subs.emplace_back(any ? Interval{lo, hi + 1} : Interval{});
    }
    return std::make_shared<const Partition>(std::move(subs), /*disjoint=*/false);
  }

  LSR_CHECK(kind == ConstraintKind::ImagePoints);
  // Point images carry both views Legion maintains: the bounding interval
  // (what a rectangular instance allocates) and the precise set of touched
  // coordinates (what the copy engine moves). Sparse access patterns with
  // wide bounding boxes — the quantum benchmark's flip terms — make the
  // distinction matter: traffic stays data-dependent while allocations
  // balloon (the paper's 64-GPU OOM).
  auto data = src.span<coord_t>();
  std::vector<IntervalSet> precise;
  precise.reserve(static_cast<std::size_t>(src_part.colors()));
  std::vector<coord_t> touched;
  bool any_sparse = false;
  for (int c = 0; c < src_part.colors(); ++c) {
    Interval s = src_part.sub(c).intersect(src.extent());
    coord_t lo = 0, hi = -1;
    bool any = false;
    touched.clear();
    touched.reserve(static_cast<std::size_t>(s.size()));
    for (coord_t i = s.lo; i < s.hi; ++i) {
      coord_t v = data[static_cast<std::size_t>(i)];
      touched.push_back(v);
      if (!any) {
        lo = hi = v;
        any = true;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    subs.emplace_back(any ? Interval{lo, hi + 1} : Interval{});
    // Coalesce the touched coordinates into maximal intervals.
    IntervalSet set;
    if (any) {
      std::sort(touched.begin(), touched.end());
      coord_t run_lo = touched.front(), run_hi = touched.front();
      for (coord_t v : touched) {
        if (v <= run_hi + 1) {
          run_hi = std::max(run_hi, v);
        } else {
          set.add({run_lo, run_hi + 1});
          run_lo = run_hi = v;
        }
      }
      set.add({run_lo, run_hi + 1});
      if (set.size_within({lo, hi + 1}) < (hi + 1 - lo) * 9 / 10) any_sparse = true;
    }
    precise.push_back(std::move(set));
  }
  if (any_sparse) {
    return std::make_shared<const Partition>(std::move(subs), std::move(precise),
                                             /*disjoint=*/false);
  }
  // Dense image: the bounding interval is (nearly) exact; skip the
  // precise sets to keep validity bookkeeping cheap.
  return std::make_shared<const Partition>(std::move(subs), /*disjoint=*/false);
}

}  // namespace detail

PartitionRef Runtime::image_partition(const detail::StoreView& src,
                                      const PartitionRef& src_part,
                                      ConstraintKind kind,
                                      const PartitionRef& precomputed) {
  auto& ss = sync(src.id);
  ImageKey key{src.id, src_part->uid(), kind, ss.epoch};
  if (auto it = image_cache_.find(key); it != image_cache_.end()) {
    met_.image_hits.inc();
    return it->second;
  }
  met_.image_misses.inc();

  // Dependent partitioning runs on the runtime's control path.
  engine_->control_advance(5e-6, "dependent-partitioning");
  // Deferred replay must not scan the canonical bytes (later launches have
  // already overwritten them) — it injects the image computed eagerly at
  // issue time, which saw exactly the data this stream position implies.
  // Rewrap the injected image in a fresh Partition: an eager run builds a
  // new object on every miss, and chained-image cache keys embed that
  // object's uid, so reusing the memoized eager object (stable uid across
  // launches) would turn downstream misses into hits and skew accounting.
  PartitionRef part;
  if (precomputed) {
    std::vector<IntervalSet> precise;
    if (precomputed->colors() > 0 && precomputed->precise(0) != nullptr) {
      precise.reserve(precomputed->subs().size());
      for (int c = 0; c < precomputed->colors(); ++c) precise.push_back(*precomputed->precise(c));
    }
    part = std::make_shared<const Partition>(precomputed->subs(), std::move(precise),
                                             precomputed->disjoint());
  } else {
    part = detail::build_image_partition(src, *src_part, kind);
  }
  ++partitions_created_;
  met_.partitions_created.inc();
  image_cache_.emplace(key, part);
  return part;
}

Runtime::Alloc& Runtime::find_or_create_alloc(const detail::StoreView& store,
                                              Interval elem, int mem) {
  auto& allocs = mem_state_[mem]->allocs[store.id];
  for (auto& a : allocs) {
    if (a.extent.contains(elem)) {
      a.last_use = ++use_tick_;
      met_.alloc_existing.inc();
      return a;
    }
  }
  double esize = static_cast<double>(dtype_size(store.dtype));

  if (!opts_.coalescing) {
    // Ablation mode: exact-extent allocation per new requirement.
    met_.alloc_fresh.inc();
    alloc_with_spill(mem, static_cast<double>(elem.size()) * esize, store.id);
    allocs.push_back(Alloc{elem, {}, {}, ++use_tick_, esize});
    return allocs.back();
  }

  // Recycle a pooled extent (from an out-of-scope store) when nothing
  // overlaps the requirement; this is the Fig. 5 steady-state path.
  bool any_overlap = false;
  for (auto& a : allocs) any_overlap = any_overlap || a.extent.overlaps(elem);
  if (!any_overlap) {
    auto& pool = mem_state_[mem]->pool;
    for (auto it = pool.begin(); it != pool.end(); ++it) {
      if (it->contains(elem) && it->size() <= 2 * elem.size() + 64) {
        Interval ext = *it;
        pool.erase(it);
        met_.alloc_pool_reuse.inc();
        alloc_with_spill(mem, static_cast<double>(ext.size()) * esize, store.id);
        allocs.push_back(Alloc{ext, {}, {}, ++use_tick_, esize});
        return allocs.back();
      }
    }
  }

  // Coalescing (Section 4.2): grow a new allocation to the bounding union of
  // the requirement and every existing overlapping allocation, migrating the
  // valid data of the merged allocations (the paper's "resize RA1 to RA5").
  Interval ext = elem;
  std::vector<std::size_t> merged;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < allocs.size(); ++i) {
      if (std::find(merged.begin(), merged.end(), i) != merged.end()) continue;
      if (allocs[i].extent.overlaps(ext)) {
        ext = ext.span_union(allocs[i].extent);
        merged.push_back(i);
        changed = true;
      }
    }
  }

  if (merged.empty()) {
    met_.alloc_fresh.inc();
  } else {
    met_.alloc_coalesced.inc();
  }
  Alloc merged_alloc{ext, {}, {}, ++use_tick_, esize};
  alloc_with_spill(mem, static_cast<double>(ext.size()) * esize, store.id);
  for (std::size_t i : merged) {
    Alloc& old = allocs[i];
    // Intra-memory copy of the valid contents into the resized allocation.
    coord_t valid_elems = old.held.covered_size(old.extent);
    if (valid_elems > 0) {
      double src_ready = 0;
      old.ready.for_each_in(old.extent,
                            [&](Interval, double t) { src_ready = std::max(src_ready, t); });
      double done = engine_->copy(mem, mem, static_cast<double>(valid_elems) * esize,
                                  src_ready);
      old.held.for_each_in(old.extent, [&](Interval iv, std::uint64_t v) {
        // Keep the newest version when merged allocations overlap.
        merged_alloc.held.update(iv, [&](Interval, std::optional<std::uint64_t> prev) {
          return prev ? std::max(*prev, v) : v;
        });
        merged_alloc.ready.update(iv, [&](Interval, std::optional<double> prev) {
          return prev ? std::max(*prev, done) : done;
        });
      });
    }
    engine_->free_bytes(mem, static_cast<double>(old.extent.size()) * esize);
  }
  // Erase merged allocations (descending index order keeps indices valid).
  std::sort(merged.rbegin(), merged.rend());
  for (std::size_t i : merged) allocs.erase(allocs.begin() + static_cast<long>(i));
  allocs.push_back(std::move(merged_alloc));
  return allocs.back();
}

double Runtime::ensure_in_memory(const detail::StoreView& store, Interval elem,
                                 int mem, bool discard, const IntervalSet* precise) {
  if (elem.empty()) return 0.0;
  auto& ss = sync(store.id);
  // The instance always covers the bounding interval (rectangular
  // allocation), but when a precise image is available only the touched
  // pieces are staged.
  Alloc& alloc = find_or_create_alloc(store, elem, mem);
  double esize = static_cast<double>(dtype_size(store.dtype));

  double data_ready = 0;
  // Resize copies recorded their completion in `ready`; account for them.
  alloc.ready.for_each_in(elem,
                          [&](Interval, double t) { data_ready = std::max(data_ready, t); });
  if (discard) return data_ready;

  // Determine the required version per piece (implicit version 0 for
  // never-written data, which needs no movement), restricted to the precise
  // touched set when one exists.
  std::vector<std::pair<Interval, std::uint64_t>> required;
  auto collect = [&](Interval range) {
    ss.version.for_each_in(
        range, [&](Interval iv, std::uint64_t v) { required.emplace_back(iv, v); });
  };
  if (precise != nullptr) {
    precise->for_each(elem, collect);
  } else {
    collect(elem);
  }
  for (auto& [iv, v] : required) {
    if (v == 0) continue;
    // Compare against what the allocation holds.
    std::vector<Interval> stale;
    alloc.held.for_each_in(iv, [&](Interval piece, std::uint64_t held_v) {
      if (held_v < v) stale.push_back(piece);
    });
    alloc.held.for_each_gap(iv, [&](Interval gap) { stale.push_back(gap); });
    for (Interval piece : stale) {
      // Copy from the owner memory; a piece may have several owners.
      std::vector<std::pair<Interval, int>> sources;
      ss.owner.for_each_in(piece,
                           [&](Interval p, int m) { sources.emplace_back(p, m); });
      ss.owner.for_each_gap(piece, [&](Interval p) {
        sources.emplace_back(p, machine_.home_memory());
      });
      for (auto& [p, src_mem] : sources) {
        double src_ready = 0;
        ss.last_write.for_each_in(
            p, [&](Interval, double t) { src_ready = std::max(src_ready, t); });
        double done =
            engine_->copy(src_mem, mem, static_cast<double>(p.size()) * esize, src_ready);
        alloc.held.assign(p, v);
        alloc.ready.assign(p, done);
        data_ready = std::max(data_ready, done);
      }
    }
    // Up-to-date pieces still gate on when they arrived.
    alloc.ready.for_each_in(iv, [&](Interval, double t) {
      data_ready = std::max(data_ready, t);
    });
  }
  return data_ready;
}

// ---------------------------------------------------------------------------
// Fault tolerance: spill-on-OOM, node loss, checkpoint/restart
// ---------------------------------------------------------------------------

int Runtime::sysmem_of_node(int node) const {
  for (const auto& m : machine_.memories()) {
    if (m.node == node && m.kind == sim::MemKind::Sys) return m.id;
  }
  return machine_.home_memory();
}

void Runtime::alloc_with_spill(int mem, double bytes, StoreId requesting) {
  for (;;) {
    try {
      engine_->alloc_bytes(mem, bytes);
      return;
    } catch (const OutOfMemoryError&) {
      if (!opts_.spill_on_oom || spilling_ || !evict_lru(mem, requesting)) throw;
    }
  }
}

bool Runtime::evict_lru(int mem, StoreId requesting) {
  auto& ms = *mem_state_[mem];
  const bool is_frame = machine_.memory(mem).kind == sim::MemKind::Frame;

  // Pieces of `a` holding the *only* up-to-date copy (this memory owns the
  // latest version there). Everything else in the allocation is a clean
  // replica that can simply be dropped.
  auto dirty_pieces = [&](StoreId sid, const Alloc& a) {
    std::vector<std::pair<Interval, std::uint64_t>> out;
    auto& ss = sync(sid);
    a.held.for_each_in(a.extent, [&](Interval iv, std::uint64_t v) {
      ss.owner.for_each_in(iv, [&](Interval p, int m) {
        if (m != mem) return;
        ss.version.for_each_in(p, [&](Interval q, std::uint64_t cur) {
          if (cur == v) out.emplace_back(q, v);
        });
      });
    });
    return out;
  };

  StoreId victim_sid = 0;
  std::size_t victim_idx = 0;
  double oldest = std::numeric_limits<double>::infinity();
  bool found = false;
  for (auto& [sid, allocs] : ms.allocs) {
    if (sid == requesting || pinned_.count(sid) > 0) continue;
    for (std::size_t i = 0; i < allocs.size(); ++i) {
      if (allocs[i].last_use >= oldest) continue;
      // System memory is the spill target of last resort: dirty data there
      // has nowhere cheaper to go, so only clean replicas are evictable.
      if (!is_frame && !dirty_pieces(sid, allocs[i]).empty()) continue;
      oldest = allocs[i].last_use;
      victim_sid = sid;
      victim_idx = i;
      found = true;
    }
  }
  if (!found) return false;

  spilling_ = true;
  auto& vec = ms.allocs[victim_sid];
  Alloc victim = std::move(vec[victim_idx]);
  vec.erase(vec.begin() + static_cast<long>(victim_idx));
  if (vec.empty()) ms.allocs.erase(victim_sid);

  auto dirty = dirty_pieces(victim_sid, victim);
  if (!dirty.empty() && is_frame) {
    // Spill sole copies to the node's system memory with a charged copy;
    // ownership follows so later readers fetch from there.
    int dst = sysmem_of_node(machine_.memory(mem).node);
    auto& dvec = mem_state_[dst]->allocs[victim_sid];
    Alloc* target = nullptr;
    for (auto& a : dvec) {
      if (a.extent.contains(victim.extent)) {
        target = &a;
        break;
      }
    }
    if (target == nullptr) {
      engine_->alloc_bytes(dst,
                           static_cast<double>(victim.extent.size()) * victim.esize);
      dvec.push_back(Alloc{victim.extent, {}, {}, victim.last_use, victim.esize});
      target = &dvec.back();
    }
    auto& ss = sync(victim_sid);
    for (auto& [piece, v] : dirty) {
      double src_ready = 0;
      victim.ready.for_each_in(
          piece, [&](Interval, double t) { src_ready = std::max(src_ready, t); });
      double done = engine_->copy(
          mem, dst, static_cast<double>(piece.size()) * victim.esize, src_ready);
      target->held.assign(piece, v);
      target->ready.assign(piece, done);
      ss.owner.assign(piece, dst);
      // The spill copy joins the dependence chain for this data.
      ss.last_write.update(piece, [&](Interval, std::optional<double> prev) {
        return std::max(prev.value_or(0.0), done);
      });
    }
  }
  engine_->free_bytes(mem, static_cast<double>(victim.extent.size()) * victim.esize);
  engine_->note_spill();
  spilling_ = false;
  return true;
}

void Runtime::handle_node_loss(int node) {
  engine_->note_fault();
  // Hot-spare model: a replacement node with the same shape is admitted, so
  // partitioning — and therefore every bit of the canonical computation —
  // is unchanged. Only the data resident on the lost node is gone.
  for (const auto& m : machine_.memories()) {
    if (m.node != node) continue;
    auto& ms = *mem_state_[m.id];
    for (auto& [sid, allocs] : ms.allocs) {
      for (auto& a : allocs) {
        engine_->free_bytes(m.id, static_cast<double>(a.extent.size()) * a.esize);
      }
    }
    ms.allocs.clear();
    ms.pool.clear();
  }
  // A store whose latest version was owned by a lost memory is poisoned
  // until restored or fully rewritten. Ownership falls back to the home
  // memory so later staging still has a (stale) source to copy from.
  const Interval kAll{0, std::numeric_limits<coord_t>::max()};
  for (auto& [sid, ss] : sync_) {
    std::vector<Interval> lost;
    ss->owner.for_each_in(kAll, [&](Interval iv, int m) {
      if (machine_.memory(m).node == node) lost.push_back(iv);
    });
    if (lost.empty()) continue;
    poisoned_stores_.insert(sid);
    diag_note_poison(sid, "node-loss", /*allow_dump=*/false);
    for (Interval iv : lost) ss->owner.assign(iv, machine_.home_memory());
  }
  // Loss detection + replacement admission stall the whole machine.
  engine_->stall_all(engine_->makespan(), opts_.faults.node_recovery_seconds);
  node_loss_pending_ = true;
  auto& fr = engine_->flight();
  if (fr.enabled()) {
    fr.record(diag::EventKind::NodeLoss, "node-loss", node);
    fr.note_node_loss(node);
    fr.dump("node-loss");
  }
}

void Runtime::poll_faults() {
  if (injector_ == nullptr) return;
  if (injector_->node_loss_due(engine_->makespan())) {
    handle_node_loss(injector_->config().node_loss_node);
  }
  poll_silent_flips();
}

// ---------------------------------------------------------------------------
// Data integrity: silent-flip injection + checksummed stores
// ---------------------------------------------------------------------------

detail::StoreImpl* Runtime::find_live_store(StoreId id) const {
  for (auto* impl : live_stores_) {
    if (impl->id == id) return impl;
  }
  return nullptr;
}

void Runtime::poll_silent_flips() {
  const auto& fc = opts_.faults;
  if (fc.bitflip_rate <= 0 && fc.scripted_flips.empty()) return;
  const double now = engine_->makespan();
  for (std::size_t i : injector_->scripted_flips_due(now)) {
    const auto& f = fc.scripted_flips[i];
    apply_flip(f.store, f.offset, f.bit, now);
  }
  if (fc.bitflip_rate > 0) {
    const double dt = now - last_flip_poll_;
    if (dt > 0) {
      // Stores in id order: the flip schedule must not depend on the
      // unordered_set's iteration order.
      std::vector<detail::StoreImpl*> stores(live_stores_.begin(),
                                             live_stores_.end());
      std::sort(stores.begin(), stores.end(),
                [](const auto* a, const auto* b) { return a->id < b->id; });
      const long poll = flip_poll_seq_++;
      for (auto* s : stores) {
        // The random upset model covers the floating-point data plane only:
        // a flipped pos rect or crd index is not silent — it sends a leaf out
        // of bounds, which on real hardware is a crash, not a wrong answer.
        // Structural stores remain reachable via scripted_flips for targeted
        // experiments.
        if (s->dtype != DType::F64) continue;
        const auto nbytes = static_cast<std::uint64_t>(s->data->size());
        const double exposure = static_cast<double>(nbytes) * dt;
        const int k = injector_->resident_flips(poll, s->id, exposure);
        for (int j = 0; j < k; ++j) {
          apply_flip(s->id, injector_->flip_offset(poll, s->id, j, nbytes),
                     injector_->flip_bit(poll, s->id, j), now);
        }
      }
    }
    last_flip_poll_ = now;
  }
}

void Runtime::apply_flip(StoreId id, std::uint64_t offset, int bit,
                         double now) {
  detail::StoreImpl* impl = find_live_store(id);
  if (impl == nullptr || offset >= impl->data->size()) return;
  auto& byte = (*impl->data)[static_cast<std::size_t>(offset)];
  byte ^= static_cast<std::byte>(1U << static_cast<unsigned>(bit));
  engine_->note_flip_injected();
  if (opts_.integrity != Integrity::Off) {
    outstanding_flips_[id].push_back({offset, now});
  }
}

void Runtime::integrity_verify(StoreId id, std::byte* data,
                               std::size_t nbytes) {
  if (opts_.integrity == Integrity::Off || !ledger_.tracked(id)) return;
  auto bad = ledger_.verify(id, data, nbytes);
  if (bad.empty()) return;
  const double now = engine_->makespan();
  auto& live = outstanding_flips_[id];
  for (const auto& b : bad) {
    // Account every injected-but-undetected flip this chunk covers (the
    // detection-latency metric); a bad chunk with no injection record still
    // counts once (corruption from an unmodeled source).
    bool counted = false;
    for (auto it = live.begin(); it != live.end();) {
      if (it->offset >= b.lo && it->offset < b.hi) {
        engine_->note_flip_detected(now - it->time);
        counted = true;
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    if (!counted) engine_->note_flip_detected(0.0);
    bool fixed = false;
    if (opts_.integrity == Integrity::Recover) {
      fixed = ledger_.try_correct(id, data, nbytes, b);
      if (fixed) engine_->note_flip_recovered();
    }
    if (!fixed) {
      // Uncorrectable (or Detect policy): the bytes are untrusted. Poison
      // the store — the same path PR 1's retry exhaustion takes, so solvers
      // roll back to a clean checkpoint instead of consuming garbage — and
      // accept the damaged bytes as the new baseline so the same corruption
      // is not re-detected on every subsequent read.
      poisoned_stores_.insert(id);
      diag_note_poison(id, "integrity");
      ledger_.record(id, data, nbytes, b.lo, b.hi);
    }
  }
  if (live.empty()) outstanding_flips_.erase(id);
}

void Runtime::integrity_record(StoreId id, const std::byte* data,
                               std::size_t nbytes, std::size_t lo,
                               std::size_t hi) {
  if (opts_.integrity == Integrity::Off) return;
  ledger_.record(id, data, nbytes, lo, hi);
  auto it = outstanding_flips_.find(id);
  if (it != outstanding_flips_.end()) {
    auto& live = it->second;
    const auto before = live.size();
    std::erase_if(live, [&](const LiveFlip& f) {
      return f.offset >= lo && f.offset < hi;
    });
    if (before != live.size()) {
      met_.flips_overwritten.inc(static_cast<double>(before - live.size()));
    }
    if (live.empty()) outstanding_flips_.erase(it);
  }
}

void Runtime::integrity_after_leaves(detail::LaunchRecord& R) {
  // The rate-based in-flight model targets the SpMV data path: that is the
  // kernel the Huang–Abraham checksum protects, and the classical ABFT fault
  // model (corruption inside the matrix product, invisible to memory
  // checksums because the wrong bytes are hashed as written). Output flips
  // elsewhere would be silent by construction — nothing in the stack claims
  // to catch them — so drawing them would only poison the determinism story.
  const bool spmv_path = R.name.find("spmv") != std::string::npos;
  for (const auto& a : R.args) {
    if (a.priv == Priv::Read) continue;
    auto raw = a.view.raw();
    // In-flight corruption: the launch's written bytes take a flip *before*
    // they are checksummed, so the ledger faithfully protects wrong data and
    // only the algorithmic (ABFT) layer can notice. Drawn per written store
    // from its own deterministic sequence.
    if (spmv_path && injector_ != nullptr &&
        injector_->config().output_flip_rate > 0 &&
        a.view.dtype == DType::F64) {
      const long oseq = output_seq_++;
      if (injector_->output_flip(oseq)) {
        const std::uint64_t n = static_cast<std::uint64_t>(a.view.volume);
        const std::uint64_t idx = injector_->output_flip_index(oseq, n);
        const int bit = injector_->output_flip_bit(oseq);
        auto* words = reinterpret_cast<std::uint64_t*>(raw.data());
        words[idx] ^= 1ULL << static_cast<unsigned>(bit);
        engine_->note_flip_injected();
      }
    }
    integrity_record(a.view.id, raw.data(), raw.size(), 0, raw.size());
  }
}

void Runtime::integrity_scrub() {
  if (opts_.integrity == Integrity::Off) return;
  fence();
  poll_faults();
  std::vector<detail::StoreImpl*> stores(live_stores_.begin(),
                                         live_stores_.end());
  std::sort(stores.begin(), stores.end(),
            [](const auto* a, const auto* b) { return a->id < b->id; });
  for (auto* s : stores) {
    integrity_verify(s->id, s->data->data(), s->data->size());
  }
}

Checkpoint Runtime::checkpoint(const std::vector<Store>& stores) {
  fence();  // the snapshot must observe fully-written real data
  Checkpoint ck;
  double ready = engine_->control_advance(task_overhead_, "checkpoint");
  double bytes = 0;
  for (const Store& s : stores) {
    auto& ss = sync(s.id());
    // The snapshot is consistent: it waits for every in-flight writer.
    ss.last_write.for_each_in(
        s.extent(), [&](Interval, double t) { ready = std::max(ready, t); });
    auto raw = s.raw();
    ck.entries_.push_back({s, std::vector<std::byte>(raw.begin(), raw.end())});
    bytes += static_cast<double>(raw.size());
  }
  met_.checkpoint_bytes.inc(bytes * engine_->cost_scale());
  double done = engine_->checkpoint_io(bytes, ready, /*restore=*/false);
  // The checkpoint reads the stores: subsequent writers must wait for it.
  for (const Store& s : stores) sync(s.id()).readers.emplace_back(s.extent(), done);
  ck.taken_at_ = done;
  return ck;
}

double Runtime::restore(const Checkpoint& ckpt) {
  fence();  // in-flight work must not race the canonical rewrite
  double ready = engine_->control_advance(task_overhead_, "restore");
  met_.restore_bytes.inc(ckpt.bytes() * engine_->cost_scale());
  double done = engine_->checkpoint_io(ckpt.bytes(), ready, /*restore=*/true);
  for (const auto& e : ckpt.entries_) {
    auto raw = e.store.raw();
    LSR_CHECK_MSG(raw.size() == e.data.size(), "restore into resized store");
    std::memcpy(raw.data(), e.data.data(), e.data.size());
    auto& ss = sync(e.store.id());
    Interval ext = e.store.extent();
    ++ss.version_counter;
    ++ss.epoch;
    ss.version.assign(ext, ss.version_counter);
    ss.owner.assign(ext, machine_.home_memory());
    ss.last_write.assign(ext, done);
    ss.readers.clear();
    Alloc& a = find_or_create_alloc(e.store.view(), ext, machine_.home_memory());
    a.held.assign(ext, ss.version_counter);
    a.ready.assign(ext, done);
    poisoned_stores_.erase(e.store.id());
    // The rewrite re-baselines the checksums and retires any outstanding
    // corruption: the snapshot bytes are clean by construction (verified on
    // checkpoint, payload-checksummed on disk).
    integrity_record(e.store.id(), raw.data(), raw.size(), 0, raw.size());
    outstanding_flips_.erase(e.store.id());
    comm_invalidate(e.store.id());
  }
  return done;
}

double Runtime::shuffle(const Store& in, const Store& out,
                        const std::function<void()>& body) {
  fence();  // `body` reads/writes canonical bytes on the control thread
  const int P = machine_.num_procs();
  poll_faults();
  double t_launch = engine_->control_advance(task_overhead_, "shuffle");
  pinned_.insert(in.id());
  pinned_.insert(out.id());

  auto& sin = sync(in.id());
  double src_ready = t_launch;
  sin.last_write.for_each_in(in.extent(),
                             [&](Interval, double t) { src_ready = std::max(src_ready, t); });

  body();  // real data movement on canonical buffers

  // The body rewrote `out` externally (through spans): refresh checksums
  // before anything reads it back.
  {
    auto v = out.view();
    integrity_record(out.id(), v.raw().data(), v.raw().size(), 0,
                     v.raw().size());
  }

  double esize = static_cast<double>(dtype_size(out.dtype()));
  double block_bytes =
      static_cast<double>(in.volume()) * esize / (static_cast<double>(P) * P);
  std::vector<double> dst_ready(static_cast<std::size_t>(P), src_ready);
  if (!comm_on_) {
    for (int s = 0; s < P; ++s) {
      for (int d = 0; d < P; ++d) {
        // A processor sends nothing to itself (s == d was previously charged
        // whenever two procs shared a memory, and skipped when they did not —
        // backwards on both counts). Distinct processors sharing one memory
        // (CPU sockets on a node) exchange their blocks as local memory
        // traffic: the engine models src == dst copies on the per-memory
        // intra clock.
        if (s == d) continue;
        int ms = machine_.proc(s).mem;
        int md = machine_.proc(d).mem;
        double done = engine_->copy(ms, md, block_bytes, src_ready);
        dst_ready[static_cast<std::size_t>(d)] =
            std::max(dst_ready[static_cast<std::size_t>(d)], done);
      }
    }
  } else {
    // Comm planner: aggregate the volume/P² all-to-all into one transfer per
    // modeled link — per memory (shared-memory socket pairs), per memory
    // pair (same node), per node pair (ib) — like an MPI_Alltoall built on
    // per-peer message combining.
    struct Agg {
      int src_mem, dst_mem;
      double bytes{0};
      long pieces{0};
      std::vector<int> dst_procs;
    };
    std::map<std::tuple<int, int, int>, Agg> groups;
    for (int s = 0; s < P; ++s) {
      for (int d = 0; d < P; ++d) {
        if (s == d) continue;
        int ms = machine_.proc(s).mem;
        int md = machine_.proc(d).mem;
        int ns = machine_.memory(ms).node;
        int nd = machine_.memory(md).node;
        std::tuple<int, int, int> link =
            ms == md  ? std::tuple{0, ms, ms}
            : ns == nd ? std::tuple{1, ms, md}
                       : std::tuple{2, ns, nd};
        auto [it, fresh] = groups.try_emplace(link, Agg{ms, md, 0, 0, {}});
        it->second.bytes += block_bytes;
        ++it->second.pieces;
        it->second.dst_procs.push_back(d);
      }
    }
    double bytes_total = 0;
    for (auto& [link, g] : groups) {
      double done = engine_->copy(g.src_mem, g.dst_mem, g.bytes, src_ready);
      for (int d : g.dst_procs) {
        dst_ready[static_cast<std::size_t>(d)] =
            std::max(dst_ready[static_cast<std::size_t>(d)], done);
      }
      bytes_total += g.bytes;
      met_.comm_messages.inc();
      if (g.pieces > 1) {
        met_.comm_messages_saved.inc(static_cast<double>(g.pieces - 1));
      }
      const double scaled = g.bytes * engine_->cost_scale();
      met_.comm_bytes.inc(scaled);
      (std::get<0>(link) == 0   ? met_.comm_bytes_intra
       : std::get<0>(link) == 1 ? met_.comm_bytes_nvlink
                                : met_.comm_bytes_ib)
          .inc(scaled);
    }
    engine_->note_comm();
    auto& sfr = engine_->flight();
    if (sfr.enabled()) {
      sfr.record(diag::EventKind::Comm, "shuffle",
                 static_cast<std::int64_t>(groups.size()), 0,
                 bytes_total * engine_->cost_scale());
    }
  }

  // Each destination runs a local repack kernel and then owns its block.
  auto part = Partition::equal(out.basis(), P);
  auto& sout = sync(out.id());
  ++sout.version_counter;
  ++sout.epoch;
  double max_done = t_launch;
  for (int d = 0; d < P; ++d) {
    Interval iv = part->sub(d);
    Interval elem{iv.lo * out.stride(), iv.hi * out.stride()};
    if (elem.empty()) continue;
    const auto& proc = machine_.proc(d);
    sim::Cost cost{2.0 * static_cast<double>(elem.size()) * esize * engine_->cost_scale(),
                   0, 1.0};
    double dur = engine_->cost_model().kernel_seconds(
        proc.kind, cost, proc.kind == sim::ProcKind::CPU ? cpu_fraction_ : 1.0);
    if (proc.kind == sim::ProcKind::GPU) dur += machine_.params().gpu_kernel_launch;
    engine_->note_task();
    double done = engine_->busy_proc(d, dst_ready[static_cast<std::size_t>(d)], dur,
                                     "shuffle_repack");
    sout.version.assign(elem, sout.version_counter);
    sout.owner.assign(elem, proc.mem);
    sout.last_write.assign(elem, done);
    Alloc& alloc = find_or_create_alloc(out.view(), elem, proc.mem);
    alloc.held.assign(elem, sout.version_counter);
    alloc.ready.assign(elem, done);
    max_done = std::max(max_done, done);
  }
  sout.key = part;
  sout.readers.clear();
  sin.readers.emplace_back(in.extent(), max_done);
  // The shuffle fully rewrites `out` from `in`: poison follows the source.
  if (poisoned_stores_.count(in.id()) > 0) {
    poisoned_stores_.insert(out.id());
    diag_note_poison(out.id(), "shuffle-propagate");
  } else {
    poisoned_stores_.erase(out.id());
  }
  // The shuffle rewrote `out`'s version/ownership layout wholesale.
  comm_invalidate(out.id());
  pinned_.clear();
  return max_done;
}


// ---------------------------------------------------------------------------
// Task execution: issue (execute) + simulated accounting (sim_apply)
// ---------------------------------------------------------------------------

Future Runtime::execute(TaskLauncher& L) {
  LSR_CHECK_MSG(L.leaf_ != nullptr, "task has no leaf function");
  auto R = make_record(L);
  // With fusion active, records route through the window analysis first
  // (src/rt/runtime_fuse.cpp); issue_record is the pre-fusion execute()
  // tail, shared by both paths.
  if (fusion_on_) return fuse_execute(R);
  return issue_record(R);
}

void Runtime::sim_apply(LaunchRecord& R, bool deferred) {
  const auto& pp = machine_.params();
  if (deferred) {
    // Leaves already ran on the pool; surface the first (lowest-color) leaf
    // failure at the fence, in issue order.
    if (auto err = R.first_error()) std::rethrow_exception(err);
  }
  poll_faults();
  // Verify-on-read: every argument whose current bytes this launch consumes
  // (including image-constraint sources read during partitioning below) is
  // checked against the ledger before any real work observes it.
  if (!deferred && opts_.integrity != Integrity::Off) {
    for (const auto& a : R.args) {
      if (a.priv != Priv::Read && a.priv != Priv::ReadWrite) continue;
      auto raw = a.view.raw();
      integrity_verify(a.view.id, raw.data(), raw.size());
    }
  }
  met_.launches.inc();
  ++launches_applied_;  // plain mirror for the fenced accessor
  // Flight recorder: publish the launch on the board before any simulated
  // work, so a hang anywhere below names this launch as the suspect. The
  // board is cleared even on the exception paths (OOM, surfaced leaf
  // errors) — a dead launch must not keep the watchdog's busy signal high.
  auto& fr = engine_->flight();
  struct LaunchScope {
    diag::FlightRecorder& fr;
    explicit LaunchScope(diag::FlightRecorder& f) : fr(f) {}
    ~LaunchScope() { fr.end_launch(); }
  };
  std::optional<LaunchScope> diag_scope;
  if (fr.enabled()) {
    fr.begin_launch(R.name, static_cast<long>(pending_launches()));
    fr.record(diag::EventKind::Launch, R.name,
              static_cast<std::int64_t>(R.args.size()));
    diag_scope.emplace(fr);
  }
  double t_launch = engine_->control_advance(task_overhead_, R.name);

  const int nargs = static_cast<int>(R.args.size());

  // ---- 1. Choose the color count ----------------------------------------
  int colors = R.forced_colors > 0 ? R.forced_colors : default_colors();
  coord_t primary_basis = 0;
  for (const auto& a : R.args) {
    if (a.ckind == ConstraintKind::None && a.priv != Priv::Reduce) {
      primary_basis = std::max(primary_basis, a.view.basis);
    }
  }
  if (primary_basis > 0) {
    colors = static_cast<int>(
        std::min<coord_t>(colors, std::max<coord_t>(1, primary_basis)));
  }
  LSR_CHECK_MSG(!deferred || colors == R.colors,
                "deferred color count diverged from eager solve");

  // ---- 2. Solve partitioning constraints (Section 4.1) -------------------
  std::vector<PartitionRef> parts(static_cast<std::size_t>(nargs));
  // Alignment groups first: reuse a key partition of the largest member when
  // it satisfies the constraints, else make a fresh equal partition.
  std::unordered_map<int, std::vector<int>> groups;
  for (int i = 0; i < nargs; ++i) {
    const auto& a = R.args[i];
    if (a.ckind == ConstraintKind::None && a.priv != Priv::Reduce) {
      groups[a.root].push_back(i);
    }
  }
  std::vector<char> from_pin(static_cast<std::size_t>(nargs), 0);
  std::vector<PartitionRef> pin_key(static_cast<std::size_t>(nargs));
  bool any_pin = false;
  for (auto& [root, members] : groups) {
    coord_t basis = R.args[members[0]].view.basis;
    PartitionRef chosen;
    PartitionRef pin;
    for (int m : members) {
      if (R.args[m].part) {
        pin = R.args[m].part;
        break;
      }
    }
    PartitionRef keyed;
    if (opts_.partition_reuse) {
      // Prefer the key partition of the largest store in the group
      // ("keep the largest region in place").
      std::vector<int> order = members;
      std::sort(order.begin(), order.end(), [&](int x, int y) {
        return R.args[x].view.volume > R.args[y].view.volume;
      });
      for (int m : order) {
        auto key = sync(R.args[m].view.id).key;
        if (key && key->colors() == colors && key->disjoint()) {
          // The key partition must cover this basis exactly.
          coord_t hi = 0;
          for (auto& iv : key->subs()) hi = std::max(hi, iv.hi);
          if (hi == basis) {
            keyed = key;
            break;
          }
        }
      }
    }
    if (pin) {
      // Explicit pin (set_partition): the caller computed a strategy-specific
      // split, e.g. nnz-balanced rows. Wins over key reuse for this launch,
      // but the pin itself never becomes a key partition — keys stay
      // structurally equal so the issue-time eager solve (which assumes
      // equal splits for unpinned groups) keeps matching this replay. The
      // group still adopts an equal-structured key (see Pass C) so later
      // unpinned launches on the same stores reuse instead of re-creating.
      LSR_CHECK_MSG(pin->colors() == colors,
                    "explicit partition color count does not match the launch");
      coord_t hi = 0;
      for (const auto& iv : pin->subs()) hi = std::max(hi, iv.hi);
      LSR_CHECK_MSG(hi == basis, "explicit partition does not cover the basis");
      chosen = pin;
      any_pin = true;
      if (!keyed && opts_.partition_reuse) {
        keyed = Partition::equal(basis, colors);
        ++partitions_created_;
        met_.partitions_created.inc();
      }
      for (int m : members) {
        from_pin[static_cast<std::size_t>(m)] = 1;
        pin_key[static_cast<std::size_t>(m)] = keyed;
      }
      // Pins are provided, not reused: they count toward the strategy
      // counters below, not the reuse hit/miss pair.
    } else if (keyed) {
      chosen = keyed;
      met_.part_reuse_hits.inc();
    } else {
      met_.part_reuse_misses.inc();
      chosen = Partition::equal(basis, colors);
      ++partitions_created_;
      met_.partitions_created.inc();
    }
    for (int m : members) parts[m] = chosen;
  }
  // Strategy accounting for launches that have a primary (alignment-solved)
  // domain at all: did it run over equal row splits or an explicit
  // nnz-balanced pin?
  if (!groups.empty()) {
    (any_pin ? met_.part_strategy_nnz : met_.part_strategy_rows).inc();
  }
  // Broadcast & reduce arguments see the whole store from every point.
  for (int i = 0; i < nargs; ++i) {
    const auto& a = R.args[i];
    if (a.ckind == ConstraintKind::Broadcast || a.priv == Priv::Reduce) {
      std::vector<Interval> whole(static_cast<std::size_t>(colors),
                                  Interval{0, a.view.basis});
      parts[i] = std::make_shared<const Partition>(std::move(whole), false);
    }
  }
  // Image/halo constraints, iterated to handle chains (pos -> crd -> x).
  for (int pass = 0; pass < nargs; ++pass) {
    bool progress = false, pending = false;
    for (int i = 0; i < nargs; ++i) {
      const auto& a = R.args[i];
      if (a.ckind != ConstraintKind::ImageRects &&
          a.ckind != ConstraintKind::ImagePoints && a.ckind != ConstraintKind::Halo)
        continue;
      if (parts[i]) continue;
      if (!parts[a.image_src]) {
        pending = true;
        continue;
      }
      if (a.ckind == ConstraintKind::Halo) {
        std::vector<Interval> subs;
        subs.reserve(parts[a.image_src]->colors());
        for (const Interval& s : parts[a.image_src]->subs()) {
          if (s.empty()) {
            subs.emplace_back();
            continue;
          }
          Interval expanded{s.lo + a.halo_lo, s.hi + a.halo_hi};
          subs.push_back(expanded.intersect({0, a.view.basis}));
        }
        parts[i] = std::make_shared<const Partition>(std::move(subs), false);
        ++partitions_created_;
        met_.partitions_created.inc();
      } else {
        parts[i] = image_partition(
            R.args[a.image_src].view, parts[a.image_src], a.ckind,
            deferred ? R.eager_parts[static_cast<std::size_t>(i)] : nullptr);
      }
      progress = true;
    }
    if (!pending) break;
    LSR_CHECK_MSG(progress || !pending, "cyclic image constraints");
  }
  for (int i = 0; i < nargs; ++i) LSR_CHECK_MSG(parts[i] != nullptr, "unsolved arg");

  // Pin this launch's stores so OOM spilling never evicts in-flight
  // arguments, and compute launch-level poison: a poisoned future dependence
  // or a poisoned input taints everything this launch writes.
  bool poisoned = R.poisoned_dep;
  for (const auto& a : R.args) {
    pinned_.insert(a.view.id);
    if (a.priv != Priv::WriteDiscard && poisoned_stores_.count(a.view.id) > 0) {
      poisoned = true;
    }
  }

  // Per-point basis intervals. For a deferred launch these must match what
  // the eager solve used — the proof that key-partition reuse only ever
  // reuses structurally-equal partitions, checked here at runtime.
  std::vector<std::vector<Interval>> point_ivs(static_cast<std::size_t>(colors));
  std::vector<char> all_empty(static_cast<std::size_t>(colors), 1);
  for (int c = 0; c < colors; ++c) {
    auto& ivs = point_ivs[static_cast<std::size_t>(c)];
    ivs.resize(static_cast<std::size_t>(nargs));
    for (int i = 0; i < nargs; ++i) {
      ivs[i] = parts[i]->sub(c).intersect({0, R.args[i].view.basis});
      if (!ivs[i].empty() && R.args[i].ckind != ConstraintKind::Broadcast) {
        all_empty[static_cast<std::size_t>(c)] = 0;
      }
    }
    if (deferred) {
      for (int i = 0; i < nargs; ++i) {
        LSR_CHECK_MSG(ivs[i] == R.ivs[static_cast<std::size_t>(c)][i],
                      "deferred point intervals diverged from eager solve");
      }
    }
  }
  if (!deferred) {
    R.colors = colors;
    R.ivs = point_ivs;
    R.all_empty = all_empty;
    // Run the leaf bodies for real (inline, or parallel-for on the pool).
    // Leaves touch no simulated state, so running them before the
    // dependence/accounting passes keeps the engine-op sequence identical
    // to the pre-exec runtime.
    run_leaves(R);
    if (auto err = R.first_error()) std::rethrow_exception(err);
    // Write-back checksums (and possible in-flight output corruption ahead
    // of them) for everything this launch wrote.
    if (opts_.integrity != Integrity::Off ||
        (injector_ != nullptr && injector_->config().output_flip_rate > 0)) {
      integrity_after_leaves(R);
    }
  }

  // Work-spread gauges over the leaf-recorded per-point costs (replay path,
  // so Stable): how well the chosen row split balanced this launch.
  if (colors > 1) {
    double max_work = 0, total_work = 0;
    int busy = 0;
    for (int c = 0; c < colors; ++c) {
      if (all_empty[static_cast<std::size_t>(c)] != 0) continue;
      const auto& cost = R.out[static_cast<std::size_t>(c)].cost;
      double work = cost.bytes + cost.flops;
      max_work = std::max(max_work, work);
      total_work += work;
      ++busy;
    }
    if (busy > 0 && total_work > 0) {
      double mean_work = total_work / colors;
      met_.part_max_work.set(max_work);
      met_.part_mean_work.set(mean_work);
      met_.part_imbalance_pct.set(100.0 * (max_work / mean_work - 1.0));
    }
  }

  // ---- 3. Pass A: dependence analysis against pre-launch state -----------
  double t_base = std::max(t_launch, R.future_dep);
  std::vector<double> dep_time(static_cast<std::size_t>(colors), t_base);
  for (int c = 0; c < colors; ++c) {
    double t = t_base;
    for (int i = 0; i < nargs; ++i) {
      const auto& a = R.args[i];
      Interval iv = point_ivs[static_cast<std::size_t>(c)][i];
      Interval elem{iv.lo * a.view.stride, iv.hi * a.view.stride};
      if (elem.empty()) continue;
      auto& ss = sync(a.view.id);
      if (a.priv != Priv::WriteDiscard) {
        // RAW: wait for writers of data we read (also ReadWrite/Reduce).
        ss.last_write.for_each_in(elem,
                                  [&](Interval, double w) { t = std::max(t, w); });
      }
      if (a.priv != Priv::Read) {
        // WAW + WAR.
        ss.last_write.for_each_in(elem,
                                  [&](Interval, double w) { t = std::max(t, w); });
        for (auto& [riv, rt_] : ss.readers) {
          if (riv.overlaps(elem)) t = std::max(t, rt_);
        }
      }
    }
    dep_time[c] = t;
  }

  // ---- 4. Pass B: map, move data, account execution ----------------------
  std::vector<double> completion(static_cast<std::size_t>(colors), t_launch);
  std::vector<int> point_mem(static_cast<std::size_t>(colors), machine_.home_memory());
  std::vector<double> partials;
  double max_completion = t_launch;

  if (comm_on_) {
    // Comm planner (src/comm, DESIGN.md §15): the staleness copies below are
    // materialized into a cached ExchangePlan and charged as coalesced
    // per-link transfers instead; canonical results are identical. The
    // planner never runs with fault injection, so the retry loop in the
    // per-piece path has no comm counterpart.
    comm_pass_b(R, parts, point_ivs, all_empty, dep_time, completion,
                point_mem, partials, max_completion);
  } else {
  for (int c = 0; c < colors; ++c) {
    // Mapper: consistent color -> processor assignment across libraries.
    int proc_id = c % machine_.num_procs();
    const auto& proc = machine_.proc(proc_id);
    point_mem[static_cast<std::size_t>(c)] = proc.mem;

    if (all_empty[static_cast<std::size_t>(c)] != 0) {
      completion[static_cast<std::size_t>(c)] = dep_time[static_cast<std::size_t>(c)];
      continue;
    }

    // Stage the data (allocation + validity machinery).
    double data_ready = dep_time[static_cast<std::size_t>(c)];
    for (int i = 0; i < nargs; ++i) {
      const auto& a = R.args[i];
      if (a.priv == Priv::Reduce) continue;  // partials live in temp buffers
      Interval iv = point_ivs[static_cast<std::size_t>(c)][i];
      Interval elem{iv.lo * a.view.stride, iv.hi * a.view.stride};
      bool discard = a.priv == Priv::WriteDiscard;
      const IntervalSet* precise =
          a.view.stride == 1 ? parts[i]->precise(c) : nullptr;
      data_ready = std::max(
          data_ready, ensure_in_memory(a.view, elem, proc.mem, discard, precise));
    }

    // Charge the recorded leaf cost (the real execution already happened in
    // run_leaves — inline for this launch, or earlier on the pool).
    const auto& po = R.out[static_cast<std::size_t>(c)];
    if (po.contributed) partials.push_back(po.partial);
    sim::Cost cost = po.cost;
    if (opts_.model_reshape && proc.kind == sim::ProcKind::GPU) {
      cost.bytes += po.reshape * pp.legate_csr_reshape_fraction;
    }
    cost.bytes *= engine_->cost_scale();
    cost.flops *= engine_->cost_scale();
    double duration = engine_->cost_model().kernel_seconds(
        proc.kind, cost, proc.kind == sim::ProcKind::CPU ? cpu_fraction_ : 1.0);
    if (proc.kind == sim::ProcKind::GPU) duration += pp.gpu_kernel_launch;
    engine_->note_task();
    // Transient-fault model. The leaf ran exactly once, so canonical data is
    // always the fault-free bits; failures cost only time and metadata. Each
    // failed attempt occupies the processor for part of the duration, then
    // pays detection latency and exponential backoff before the retry.
    // Exhausting max_attempts poisons the launch instead of producing a
    // wrong value.
    long seq = task_seq_++;
    double start_ready = data_ready;
    bool exhausted = false;
    if (injector_ != nullptr) {
      const auto& fc = injector_->config();
      int attempt = 0;
      while (injector_->should_fail(seq, attempt)) {
        engine_->note_fault();
        double wasted = duration * injector_->fail_fraction(seq, attempt);
        double failed_at =
            engine_->busy_proc(proc_id, start_ready, wasted, R.prof_label);
        double detected = failed_at + fc.detect_seconds;
        ++attempt;
        if (attempt >= fc.max_attempts) {
          exhausted = true;
          start_ready = detected;
          break;
        }
        engine_->note_retry();
        start_ready =
            detected + fc.backoff_seconds * std::pow(2.0, attempt - 1);
      }
    }
    double done;
    if (exhausted) {
      // The point never completes healthy; dependences advance at the time
      // the permanent failure is detected.
      poisoned = true;
      done = start_ready;
      engine_->bump_to(done);
    } else {
      done = engine_->busy_proc(proc_id, start_ready, duration, R.prof_label);
      // Pair the simulated event with the measured wall-clock interval of
      // the real leaf execution (Chrome trace wall process).
      if (R.wall_prof && po.wall0 >= 0) {
        engine_->recorder().set_last_wall(po.wall0, po.wall1);
      }
    }
    completion[static_cast<std::size_t>(c)] = done;
    max_completion = std::max(max_completion, done);
  }
  }  // !comm_on_

  // ---- 5. Pass C: publish writes into the dependence state ---------------
  for (int i = 0; i < nargs; ++i) {
    const auto& a = R.args[i];
    if (a.priv == Priv::Read) continue;
    auto& ss = sync(a.view.id);
    if (a.priv == Priv::Reduce) continue;  // handled below
    ++ss.version_counter;
    ++ss.epoch;
    for (int c = 0; c < colors; ++c) {
      Interval iv = point_ivs[static_cast<std::size_t>(c)][i];
      Interval elem{iv.lo * a.view.stride, iv.hi * a.view.stride};
      if (elem.empty()) continue;
      int mem = point_mem[static_cast<std::size_t>(c)];
      double done = completion[static_cast<std::size_t>(c)];
      ss.version.assign(elem, ss.version_counter);
      ss.owner.assign(elem, mem);
      ss.last_write.assign(elem, done);
      // The writer's allocation now holds the fresh data.
      Alloc& alloc = find_or_create_alloc(a.view, elem, mem);
      alloc.held.assign(elem, ss.version_counter);
      alloc.ready.assign(elem, done);
    }
    // Writes clear the reader set they superseded.
    std::erase_if(ss.readers, [&](const std::pair<Interval, double>& r) {
      for (int c = 0; c < colors; ++c) {
        Interval iv = point_ivs[static_cast<std::size_t>(c)][i];
        Interval elem{iv.lo * a.view.stride, iv.hi * a.view.stride};
        if (r.first.overlaps(elem)) return true;
      }
      return false;
    });
    // Poison bookkeeping: a poisoned launch taints what it writes; a healthy
    // launch that rewrites a store's full extent washes old poison out.
    if (poisoned) {
      poisoned_stores_.insert(a.view.id);
      diag_note_poison(a.view.id, "retry-exhausted");
    } else if (poisoned_stores_.count(a.view.id) > 0) {
      IntervalSet written;
      for (int c = 0; c < colors; ++c) {
        Interval iv = point_ivs[static_cast<std::size_t>(c)][i];
        written.add({iv.lo * a.view.stride, iv.hi * a.view.stride});
      }
      if (written.size_within(a.view.extent()) == a.view.volume) {
        poisoned_stores_.erase(a.view.id);
      }
    }
    // Track the key partition of written stores for future reuse. Pinned
    // groups adopt the equal-structured stand-in instead of the pin itself:
    // a balanced split as a key would leak into later launches the
    // issue-time eager solve cannot predict.
    if (a.ckind == ConstraintKind::None) {
      if (from_pin[static_cast<std::size_t>(i)] == 0) {
        ss.key = parts[i];
      } else if (pin_key[static_cast<std::size_t>(i)]) {
        ss.key = pin_key[static_cast<std::size_t>(i)];
      }
    }
  }
  // Reads register for WAR tracking; read-only stores also adopt the
  // partition they were last used with as their key partition, so future
  // launches (and their cached images) can align with them — read-mostly
  // data like a solver's matrix would otherwise never anchor reuse.
  for (int i = 0; i < nargs; ++i) {
    const auto& a = R.args[i];
    if (a.priv != Priv::Read) continue;
    auto& ss = sync(a.view.id);
    for (int c = 0; c < colors; ++c) {
      Interval iv = point_ivs[static_cast<std::size_t>(c)][i];
      Interval elem{iv.lo * a.view.stride, iv.hi * a.view.stride};
      if (!elem.empty())
        ss.readers.emplace_back(elem, completion[static_cast<std::size_t>(c)]);
    }
    if (a.ckind == ConstraintKind::None && !ss.key) {
      if (from_pin[static_cast<std::size_t>(i)] == 0) {
        ss.key = parts[i];
      } else if (pin_key[static_cast<std::size_t>(i)]) {
        ss.key = pin_key[static_cast<std::size_t>(i)];
      }
    }
  }

  // ---- 6. Store reductions: all-reduce + replication ---------------------
  // (The real write-back of the folded partials happened in run_leaves, in
  // fixed color order; only the simulated collective is charged here.)
  for (int i = 0; i < nargs; ++i) {
    const auto& a = R.args[i];
    if (a.priv != Priv::Reduce) continue;
    double bytes = static_cast<double>(a.view.volume) * sizeof(double);
    double t_red = engine_->allreduce_bytes(colors, bytes, max_completion, true);
    auto& ss = sync(a.view.id);
    ++ss.version_counter;
    ++ss.epoch;
    ss.version.assign(a.view.extent(), ss.version_counter);
    ss.last_write.assign(a.view.extent(), t_red);
    ss.readers.clear();
    // After the all-reduce every participating memory holds the result.
    bool first = true;
    for (const auto& proc : machine_.procs()) {
      Alloc& alloc = find_or_create_alloc(a.view, a.view.extent(), proc.mem);
      alloc.held.assign(a.view.extent(), ss.version_counter);
      alloc.ready.assign(a.view.extent(), t_red);
      if (first) {
        ss.owner.assign(a.view.extent(), proc.mem);
        first = false;
      }
    }
    // Reductions rewrite the whole store: poison follows the launch state.
    if (poisoned) {
      poisoned_stores_.insert(a.view.id);
      diag_note_poison(a.view.id, "retry-exhausted");
    } else {
      poisoned_stores_.erase(a.view.id);
    }
    max_completion = std::max(max_completion, t_red);
  }
  pinned_.clear();

  // ---- 7. Scalar reduction future -----------------------------------------
  Future fut;
  if (R.has_redop) {
    double v = 0;
    bool first = true;
    for (double p : partials) {
      if (first) {
        v = p;
        first = false;
        continue;
      }
      switch (*R.redop) {
        case ScalarRedop::Sum: v += p; break;
        case ScalarRedop::Max: v = std::max(v, p); break;
        case ScalarRedop::Min: v = std::min(v, p); break;
      }
    }
    fut.value = v;
    fut.ready = engine_->allreduce(colors, max_completion, true);
    fut.valid = true;
  }
  fut.poisoned = poisoned;
  R.result = fut;
  if (fr.enabled()) {
    fr.record(diag::EventKind::Retire, R.name, colors, poisoned ? 1 : 0,
              max_completion);
  }
  fr.progress();
}

void Runtime::diag_note_poison(StoreId id, const char* why, bool allow_dump) {
  auto& fr = engine_->flight();
  if (!fr.enabled()) return;
  fr.record(diag::EventKind::Poison, why, static_cast<std::int64_t>(id));
  fr.note_poison(id);
  // One post-mortem dump per runtime on the first poison propagation: that
  // is the moment the terminal injected fault became user-visible damage.
  if (allow_dump && !diag_poison_dumped_) {
    diag_poison_dumped_ = true;
    fr.dump("poison");
  }
}

}  // namespace legate::rt
