#pragma once

// Internal runtime structures shared between the simulated half
// (runtime.cpp) and the deferred-execution half (runtime_exec.cpp).
// Not part of the public API.

#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/pool.h"
#include "rt/partition.h"
#include "rt/runtime.h"
#include "rt/store.h"
#include "sim/engine.h"

namespace legate::rt::detail {

/// A self-contained copy of one task launch: everything needed to (a) run
/// the leaf bodies for real on the pool and (b) replay the launch's
/// simulated accounting later, in issue order, at a fence. Records hold
/// StoreViews — the canonical bytes stay alive through the view's
/// shared_ptr, but the Store's runtime-visible lifetime (release accounting)
/// is not extended.
struct LaunchRecord {
  std::string name;
  std::string prof_label;  ///< built at issue time (provenance is scoped)

  struct RArg {
    StoreView view;
    Priv priv;
    ConstraintKind ckind;
    int image_src;
    coord_t halo_lo, halo_hi;
    int root;           ///< alignment-group root (index into args)
    PartitionRef part;  ///< explicit partition pin (TaskLauncher::set_partition)
  };
  std::vector<RArg> args;
  std::function<void(TaskContext&)> leaf;
  std::optional<ScalarRedop> redop;
  bool has_redop{false};
  int forced_colors{-1};
  double future_dep{0};
  bool poisoned_dep{false};

  // -- filled by the eager solve (issue time) --------------------------------
  int colors{1};
  bool parallel_safe{true};  ///< points may run concurrently (make_record)
  bool wall_prof{false};     ///< stamp real wall-clock times per point
  std::chrono::steady_clock::time_point wall_epoch{};
  std::vector<PartitionRef> eager_parts;   ///< per arg
  std::vector<std::vector<Interval>> ivs;  ///< [color][arg], basis units
  std::vector<char> all_empty;             ///< per color: no real work

  // -- filled by run_leaves (pool threads) -----------------------------------
  struct PointOut {
    sim::Cost cost;
    double reshape{0};
    double partial{0};
    bool contributed{false};
    double wall0{-1}, wall1{-1};  ///< measured leaf interval (profiling)
  };
  std::vector<PointOut> out;                 ///< per color
  std::vector<std::exception_ptr> errors;    ///< per color; rethrown at fence
  exec::NodeRef node;                        ///< real-work node (pipelined)

  // -- filled by sim_apply (replay) ------------------------------------------
  Future result;

  [[nodiscard]] std::exception_ptr first_error() const {
    for (const auto& e : errors) {
      if (e) return e;
    }
    return nullptr;
  }
};

/// Structural image-partition computation: scan the source argument's real
/// data under `src_part` and build the image (bounding interval + precise
/// touched set for sparse point images). Pure — no engine time, no caches,
/// no counters; both the eager solve and the simulated replay route through
/// this.
PartitionRef build_image_partition(const StoreView& src, const Partition& src_part,
                                   ConstraintKind kind);

}  // namespace legate::rt::detail
