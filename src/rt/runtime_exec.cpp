// Deferred-execution half of the runtime (legate::exec integration):
// LaunchRecord construction, eager constraint solving, real leaf execution
// on the work-stealing pool, hazard-graph enqueue, and fence() draining.
// The simulated half (sim_apply) lives in runtime.cpp.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "rt/runtime.h"
#include "rt/runtime_detail.h"

namespace legate::rt {

namespace detail {

/// Out-of-line fence hook for Store::raw()/span(): see store.h.
void sync_for_access(const StoreImpl* impl) {
  if (impl != nullptr && impl->rt != nullptr) impl->rt->sync_store_access(impl->id);
}

}  // namespace detail

using detail::LaunchRecord;

void Runtime::sync_store_access(StoreId id) {
  // An open fusion window holds launches whose writes have not happened yet:
  // flush it before the caller observes (and integrity verifies) the bytes.
  flush_fuse_window();
  if (opts_.integrity != Integrity::Off) {
    // External access verifies the bytes first (the caller is about to trust
    // them), then re-records: the returned span is mutable, so the runtime
    // conservatively treats every external access as a rewrite. External
    // writers that bypass this path must republish via mark_attached.
    if (auto* impl = find_live_store(id)) {
      integrity_verify(id, impl->data->data(), impl->data->size());
      integrity_record(id, impl->data->data(), impl->data->size(), 0,
                       impl->data->size());
    }
  }
  if (!pipeline_) {
    // Sequential fusion mode still memoizes eager images off real bytes:
    // the returned span is mutable, so they must not be reused.
    if (fusion_on_) ++eager_epoch_[id];
    // The caller may mutate the canonical bytes through the returned span;
    // cached exchange plans signed against this store's state are stale.
    comm_invalidate(id);
    return;
  }
  drain_sim_queue();
  // The returned span is mutable: assume the caller changes the bytes, so
  // eagerly computed images of this store must not be reused.
  ++eager_epoch_[id];
  comm_invalidate(id);
}

void Runtime::fence() {
  // Window flush first: it may enqueue the (fused) launch onto sim_queue_,
  // which the drain then replays.
  flush_fuse_window();
  drain_sim_queue();
}

metrics::Snapshot Runtime::metrics_snapshot() {
  fence();  // observe a consistent stable set (all replays applied)
  engine_->note_snapshot();
  return engine_->metrics().snapshot();
}

void Runtime::wait_store_writer(StoreId id) {
  auto it = hazards_.find(id);
  if (it != hazards_.end() && it->second.writer) pool_->wait(it->second.writer);
}

std::shared_ptr<LaunchRecord> Runtime::make_record(TaskLauncher& L) {
  auto R = std::make_shared<LaunchRecord>();
  R->name = L.name_;
  if (engine_->profiling()) {
    // Timeline label: operation name plus provenance (launcher tag, else the
    // enclosing provenance scope). Provenance is an issue-time property, so
    // it is captured here rather than at replay time.
    R->prof_label = L.name_;
    const std::string& prov =
        !L.provenance_.empty() ? L.provenance_ : current_provenance();
    if (!prov.empty()) R->prof_label += " @" + prov;
    R->wall_prof = true;
    R->wall_epoch = engine_->recorder().wall_epoch();
  }
  R->args.reserve(L.args_.size());
  bool any_pin = false;
  for (int i = 0; i < static_cast<int>(L.args_.size()); ++i) {
    const auto& a = L.args_[i];
    R->args.push_back({a.store.view(), a.priv, a.ckind, a.image_src, a.halo_lo,
                       a.halo_hi, L.find_root(i), a.part});
    any_pin = any_pin || a.part != nullptr;
  }
  // Partitioning-strategy provenance: explicit pins are the nnz-balanced row
  // splits of the strategy subsystem, so tag the timeline label with the
  // strategy (the equal row split is the unlabeled default).
  if (any_pin && engine_->profiling()) R->prof_label += " [part=nnz]";
  if (comm_on_ && engine_->profiling())
    R->prof_label +=
        comm_mode_ == comm::Mode::Overlap ? " [comm:overlap]" : " [comm:plan]";
  R->leaf = L.leaf_;
  R->redop = L.redop_;
  R->has_redop = L.has_redop_;
  R->forced_colors = L.forced_colors_;
  R->future_dep = L.future_dep_;
  R->poisoned_dep = L.poisoned_dep_;

  // A launch's points may run concurrently only when every written argument
  // uses a disjoint equal partition (ckind None) and no other argument views
  // the same store through a non-None constraint (a broadcast read of a
  // store being written would race). Reduce arguments never race: partials
  // live in private buffers and the write-back is serial.
  bool safe = true;
  for (std::size_t i = 0; i < R->args.size() && safe; ++i) {
    const auto& w = R->args[i];
    if (w.priv != Priv::WriteDiscard && w.priv != Priv::ReadWrite) continue;
    if (w.ckind != ConstraintKind::None) {
      safe = false;
      break;
    }
    for (std::size_t j = 0; j < R->args.size(); ++j) {
      if (j == i) continue;
      const auto& o = R->args[j];
      if (o.view.id != w.view.id || o.priv == Priv::Reduce) continue;
      if (o.ckind != ConstraintKind::None) safe = false;
    }
  }
  R->parallel_safe = safe;
  return R;
}

void Runtime::eager_solve(LaunchRecord& R) {
  const int nargs = static_cast<int>(R.args.size());

  // Color count: same formula as the simulated solve (constants only).
  int colors = R.forced_colors > 0 ? R.forced_colors : default_colors();
  coord_t primary_basis = 0;
  for (const auto& a : R.args) {
    if (a.ckind == ConstraintKind::None && a.priv != Priv::Reduce) {
      primary_basis = std::max(primary_basis, a.view.basis);
    }
  }
  if (primary_basis > 0) {
    colors = static_cast<int>(
        std::min<coord_t>(colors, std::max<coord_t>(1, primary_basis)));
  }
  R.colors = colors;

  // Every key partition the simulated solve can reuse is structurally an
  // equal partition of its basis (equal partitions and shuffle keys are the
  // only partitions ever assigned as keys, inductively), so the eager solve
  // skips the reuse machinery and uses equal-partition math directly. The
  // replay asserts the resulting intervals match (sim_apply).
  auto equal_part = [&](coord_t basis) {
    auto key = std::make_pair(basis, colors);
    auto it = eager_equal_.find(key);
    if (it == eager_equal_.end()) {
      it = eager_equal_.emplace(key, Partition::equal(basis, colors)).first;
    }
    return it->second;
  };
  auto whole_part = [&](coord_t basis) {
    auto key = std::make_pair(basis, colors);
    auto it = eager_whole_.find(key);
    if (it == eager_whole_.end()) {
      std::vector<Interval> whole(static_cast<std::size_t>(colors),
                                  Interval{0, basis});
      it = eager_whole_
               .emplace(key, std::make_shared<const Partition>(std::move(whole),
                                                               false))
               .first;
    }
    return it->second;
  };

  // Explicit pins (set_partition) apply to the pinned argument's whole
  // alignment group — first pin per group wins, in argument order, exactly
  // as the simulated solve resolves them.
  std::map<int, PartitionRef> pins;
  for (int i = 0; i < nargs; ++i) {
    const auto& a = R.args[i];
    if (a.part && a.ckind == ConstraintKind::None && a.priv != Priv::Reduce) {
      pins.emplace(a.root, a.part);
    }
  }

  std::vector<PartitionRef> parts(static_cast<std::size_t>(nargs));
  for (int i = 0; i < nargs; ++i) {
    const auto& a = R.args[i];
    if (a.ckind == ConstraintKind::None && a.priv != Priv::Reduce) {
      auto pin = pins.find(a.root);
      parts[i] = pin != pins.end() ? pin->second : equal_part(a.view.basis);
    } else if (a.ckind == ConstraintKind::Broadcast || a.priv == Priv::Reduce) {
      parts[i] = whole_part(a.view.basis);
    }
  }
  // Image/halo constraints, iterated to handle chains (pos -> crd -> x).
  // Images read real source data: wait for that store's pending writer node
  // first, then memoize per (source, partition, epoch) so steady-state
  // iterations skip the scan.
  for (int pass = 0; pass < nargs; ++pass) {
    bool progress = false, pending = false;
    for (int i = 0; i < nargs; ++i) {
      const auto& a = R.args[i];
      if (a.ckind != ConstraintKind::ImageRects &&
          a.ckind != ConstraintKind::ImagePoints && a.ckind != ConstraintKind::Halo)
        continue;
      if (parts[i]) continue;
      if (!parts[a.image_src]) {
        pending = true;
        continue;
      }
      if (a.ckind == ConstraintKind::Halo) {
        std::vector<Interval> subs;
        subs.reserve(parts[a.image_src]->colors());
        for (const Interval& s : parts[a.image_src]->subs()) {
          if (s.empty()) {
            subs.emplace_back();
            continue;
          }
          Interval expanded{s.lo + a.halo_lo, s.hi + a.halo_hi};
          subs.push_back(expanded.intersect({0, a.view.basis}));
        }
        parts[i] = std::make_shared<const Partition>(std::move(subs), false);
      } else {
        const auto& src = R.args[a.image_src].view;
        wait_store_writer(src.id);
        ImageKey key{src.id, parts[a.image_src]->uid(), a.ckind,
                     eager_epoch_[src.id]};
        auto it = eager_images_.find(key);
        if (it == eager_images_.end()) {
          it = eager_images_
                   .emplace(key, detail::build_image_partition(
                                     src, *parts[a.image_src], a.ckind))
                   .first;
        }
        parts[i] = it->second;
      }
      progress = true;
    }
    if (!pending) break;
    LSR_CHECK_MSG(progress || !pending, "cyclic image constraints");
  }
  for (int i = 0; i < nargs; ++i) LSR_CHECK_MSG(parts[i] != nullptr, "unsolved arg");

  R.eager_parts = parts;
  R.ivs.assign(static_cast<std::size_t>(colors),
               std::vector<Interval>(static_cast<std::size_t>(nargs)));
  R.all_empty.assign(static_cast<std::size_t>(colors), 1);
  for (int c = 0; c < colors; ++c) {
    for (int i = 0; i < nargs; ++i) {
      Interval iv = parts[i]->sub(c).intersect({0, R.args[i].view.basis});
      R.ivs[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)] = iv;
      if (!iv.empty() && R.args[i].ckind != ConstraintKind::Broadcast) {
        R.all_empty[static_cast<std::size_t>(c)] = 0;
      }
    }
  }
}

void Runtime::enqueue_record(const std::shared_ptr<LaunchRecord>& R) {
  std::vector<exec::NodeRef> deps;
  for (const auto& a : R->args) {
    auto& h = hazards_[a.view.id];
    if (h.writer) deps.push_back(h.writer);
    if (a.priv != Priv::Read) {
      for (const auto& r : h.readers) deps.push_back(r);
    }
  }
  auto node = pool_->submit([this, R] { run_leaves(*R); }, deps);
  for (const auto& a : R->args) {
    auto& h = hazards_[a.view.id];
    if (a.priv == Priv::Read) {
      h.readers.push_back(node);
    } else {
      // WriteDiscard / ReadWrite / Reduce all rewrite real bytes (the reduce
      // write-back happens inside run_leaves).
      h.writer = node;
      h.readers.clear();
      ++eager_epoch_[a.view.id];
    }
  }
  R->node = node;
}

void Runtime::run_leaves(LaunchRecord& R) {
  // Scripted execution stall (hung kernel / wedged driver model): sleep on
  // the executing thread before any leaf body runs. With fault injection
  // enabled pipelining is off, so this runs inline on the control thread and
  // the stateful injector access stays single-threaded. Charges no simulated
  // time — its purpose is tripping the lsr_diag watchdog.
  if (injector_ != nullptr) {
    const double stall_s = injector_->stall_seconds_due(R.name);
    if (stall_s > 0) {
      auto& fr = engine_->flight();
      if (fr.enabled())
        fr.record_thread(diag::EventKind::Stall, R.name, 0, 0, stall_s);
      std::this_thread::sleep_for(std::chrono::duration<double>(stall_s));
    }
  }
  const int nargs = static_cast<int>(R.args.size());
  const int colors = R.colors;
  R.out.assign(static_cast<std::size_t>(colors), {});
  R.errors.assign(static_cast<std::size_t>(colors), nullptr);

  // Reduction accumulators; partials are folded in ascending color order at
  // any thread count, so the left-fold is bit-identical to sequential.
  std::vector<std::vector<double>> acc(static_cast<std::size_t>(nargs));
  bool has_reduce = false;
  for (int i = 0; i < nargs; ++i) {
    if (R.args[i].priv == Priv::Reduce) {
      LSR_CHECK_MSG(R.args[i].view.dtype == DType::F64,
                    "store reductions support f64 only");
      acc[i].assign(static_cast<std::size_t>(R.args[i].view.volume), 0.0);
      has_reduce = true;
    }
  }

  auto wall_now = [&R] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         R.wall_epoch)
        .count();
  };

  auto run_point = [&](int c, std::vector<std::vector<std::byte>>& bufs) {
    if (R.all_empty[static_cast<std::size_t>(c)] != 0) return;
    TaskContext ctx;
    ctx.color_ = c;
    ctx.colors_ = colors;
    ctx.rec_ = &R;
    for (int i = 0; i < nargs; ++i) {
      if (R.args[i].priv == Priv::Reduce) {
        bufs[i].assign(
            static_cast<std::size_t>(R.args[i].view.volume) * sizeof(double),
            std::byte{0});
      }
    }
    ctx.reduce_bufs_ = &bufs;
    auto& po = R.out[static_cast<std::size_t>(c)];
    if (R.wall_prof) po.wall0 = wall_now();
    try {
      R.leaf(ctx);
    } catch (...) {
      R.errors[static_cast<std::size_t>(c)] = std::current_exception();
    }
    if (R.wall_prof) po.wall1 = wall_now();
    po.cost = ctx.cost_;
    po.reshape = ctx.reshape_bytes_;
    po.partial = ctx.partial_;
    po.contributed = ctx.contributed_;
  };

  auto fold = [&](int i, std::vector<std::byte>& buf) {
    if (buf.empty()) return;
    const double* src = reinterpret_cast<const double*>(buf.data());
    for (std::size_t k = 0; k < acc[i].size(); ++k) acc[i][k] += src[k];
    buf.clear();
  };

  bool failed = false;
  const bool parallel = pool_ != nullptr && R.parallel_safe && colors > 1;
  if (!parallel) {
    // Sequential point loop on the calling thread (deterministic color
    // order, last-writer-wins preserved for aliased partitions).
    std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(nargs));
    for (int c = 0; c < colors; ++c) {
      run_point(c, bufs);
      if (R.errors[static_cast<std::size_t>(c)]) {
        failed = true;
        break;  // sequential semantics: later points never ran
      }
      for (int i = 0; i < nargs; ++i) {
        if (R.args[i].priv == Priv::Reduce) fold(i, bufs[i]);
      }
    }
  } else {
    std::vector<std::vector<std::vector<std::byte>>> bufs(
        static_cast<std::size_t>(colors),
        std::vector<std::vector<std::byte>>(static_cast<std::size_t>(nargs)));
    pool_->parallel_for(colors, [&](long c) {
      run_point(static_cast<int>(c), bufs[static_cast<std::size_t>(c)]);
    });
    for (int c = 0; c < colors; ++c) {
      if (R.errors[static_cast<std::size_t>(c)]) failed = true;
      for (int i = 0; i < nargs; ++i) {
        if (R.args[i].priv == Priv::Reduce) {
          fold(i, bufs[static_cast<std::size_t>(c)][i]);
        }
      }
    }
  }

  // Write the folded partials back to the canonical buffers (the simulated
  // all-reduce accounting stays in sim_apply).
  if (has_reduce && !failed) {
    for (int i = 0; i < nargs; ++i) {
      if (R.args[i].priv != Priv::Reduce) continue;
      auto dst = R.args[i].view.span<double>();
      std::copy(acc[i].begin(), acc[i].end(), dst.begin());
    }
  }
  // Leaf batch done: wall-clock evidence of forward progress from whichever
  // thread ran it (pool worker under pipelining, control thread otherwise).
  auto& fr = engine_->flight();
  if (fr.enabled()) {
    fr.record_thread(diag::EventKind::LeafExec, R.name, colors,
                     failed ? 1 : 0);
    fr.progress();
  }
}

}  // namespace legate::rt
