#include "rt/partition.h"

namespace legate::rt {

std::uint64_t Partition::next_uid() {
  // Atomic only for safety; partitions are created on the control thread.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const Partition> Partition::equal(coord_t extent, int colors) {
  LSR_CHECK(colors >= 1);
  std::vector<Interval> subs;
  subs.reserve(colors);
  coord_t base = extent / colors;
  coord_t rem = extent % colors;
  coord_t lo = 0;
  for (int c = 0; c < colors; ++c) {
    coord_t len = base + (c < rem ? 1 : 0);
    subs.emplace_back(lo, lo + len);
    lo += len;
  }
  return std::make_shared<const Partition>(std::move(subs), /*disjoint=*/true);
}

}  // namespace legate::rt
