#include "rt/partition.h"

#include <algorithm>
#include <cstring>

namespace legate::rt {

const char* partition_strategy_name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::Rows: return "rows";
    case PartitionStrategy::Nnz: return "nnz";
    case PartitionStrategy::Auto: return "auto";
    case PartitionStrategy::Unset: return "unset";
  }
  return "unset";
}

PartitionStrategy parse_partition_strategy(const char* s) {
  if (s == nullptr) return PartitionStrategy::Unset;
  if (std::strcmp(s, "rows") == 0) return PartitionStrategy::Rows;
  if (std::strcmp(s, "nnz") == 0) return PartitionStrategy::Nnz;
  if (std::strcmp(s, "auto") == 0) return PartitionStrategy::Auto;
  return PartitionStrategy::Unset;
}

std::uint64_t Partition::next_uid() {
  // Atomic only for safety; partitions are created on the control thread.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const Partition> Partition::equal(coord_t extent, int colors) {
  LSR_CHECK(colors >= 1);
  std::vector<Interval> subs;
  subs.reserve(colors);
  coord_t base = extent / colors;
  coord_t rem = extent % colors;
  coord_t lo = 0;
  for (int c = 0; c < colors; ++c) {
    coord_t len = base + (c < rem ? 1 : 0);
    subs.emplace_back(lo, lo + len);
    lo += len;
  }
  return std::make_shared<const Partition>(std::move(subs), /*disjoint=*/true);
}

std::shared_ptr<const Partition> Partition::balanced(
    const std::vector<coord_t>& weights, int colors) {
  LSR_CHECK(colors >= 1);
  const coord_t n = static_cast<coord_t>(weights.size());
  coord_t total = 0;
  for (coord_t w : weights) {
    LSR_CHECK_MSG(w >= 0, "balanced partition weights must be non-negative");
    total += w;
  }
  if (total == 0) return equal(n, colors);

  // Cut c (1 <= c < colors) lands at the smallest index i whose prefix sum
  // reaches c/colors of the total: prefix(i) * colors >= c * total, compared
  // in 128-bit so huge nnz totals cannot wrap.
  std::vector<Interval> subs;
  subs.reserve(colors);
  coord_t lo = 0;
  coord_t i = 0;
  __int128 prefix = 0;
  for (int c = 1; c < colors; ++c) {
    const __int128 target = static_cast<__int128>(c) * total;
    while (i < n && prefix * colors < target) prefix += weights[i++];
    subs.emplace_back(lo, i);
    lo = i;
  }
  subs.emplace_back(lo, n);
  return std::make_shared<const Partition>(std::move(subs), /*disjoint=*/true);
}

}  // namespace legate::rt
