#include "rt/partition.h"

namespace legate::rt {

std::shared_ptr<const Partition> Partition::equal(coord_t extent, int colors) {
  LSR_CHECK(colors >= 1);
  std::vector<Interval> subs;
  subs.reserve(colors);
  coord_t base = extent / colors;
  coord_t rem = extent % colors;
  coord_t lo = 0;
  for (int c = 0; c < colors; ++c) {
    coord_t len = base + (c < rem ? 1 : 0);
    subs.emplace_back(lo, lo + len);
    lo += len;
  }
  return std::make_shared<const Partition>(std::move(subs), /*disjoint=*/true);
}

}  // namespace legate::rt
