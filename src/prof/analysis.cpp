#include "prof/analysis.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace legate::prof {

std::vector<Utilization> utilization(const Recorder& rec, double makespan) {
  std::vector<Utilization> rows;
  for (std::size_t t = 0; t < rec.tracks().size(); ++t) {
    double busy = rec.busy_seconds(static_cast<int>(t));
    if (busy <= 0) continue;
    rows.push_back(Utilization{rec.tracks()[t].name, rec.tracks()[t].node, busy,
                               makespan > 0 ? busy / makespan : 0.0});
  }
  return rows;
}

CriticalPath critical_path(const Recorder& rec) {
  CriticalPath cp;
  const auto& evs = rec.events();
  if (evs.empty()) return cp;

  // Anchor: the event that finishes last (its completion is the makespan as
  // seen by the recorder). Instant markers have start == end and never win.
  std::size_t tail = 0;
  for (std::size_t i = 1; i < evs.size(); ++i) {
    if (evs[i].end > evs[tail].end) tail = i;
  }

  // Walk predecessor edges back to a source. Ids are assigned in record
  // order and pred < id always holds, so the walk terminates. The chain is
  // measured from its own source's start: recording can begin mid-run and
  // the control lane's issue stream runs ahead of execution on a separate
  // virtual clock, so a global minimum over event starts is meaningless.
  std::vector<std::uint64_t> rev;
  std::int64_t cur = static_cast<std::int64_t>(tail);
  double covered_until = evs[tail].end;
  double source_start = evs[tail].start;
  while (cur >= 0) {
    const Event& ev = evs[static_cast<std::size_t>(cur)];
    // Only count the portion of the event not already attributed to a later
    // chain member (overlaps can occur when a pred edge points at an event
    // that finished after this one started — conservative clamp).
    double seg_end = std::min(ev.end, covered_until);
    double dur = std::max(0.0, seg_end - ev.start);
    cp.by_category[category_name(ev.cat)] += dur;
    rev.push_back(ev.id);
    source_start = ev.start;
    if (ev.pred >= 0) {
      const Event& p = evs[static_cast<std::size_t>(ev.pred)];
      // Time between the predecessor finishing and this event starting is
      // dependence fan-in / backoff the single edge cannot attribute.
      if (ev.start > p.end) cp.wait_seconds += ev.start - p.end;
      covered_until = std::min(ev.start, p.end);
    }
    cur = ev.pred;
  }
  cp.total_seconds = evs[tail].end - source_start;
  cp.chain.assign(rev.rbegin(), rev.rend());
  return cp;
}

namespace {

std::string human_bytes(double b) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (b >= 1e9) {
    os << b / 1e9 << " GB";
  } else if (b >= 1e6) {
    os << b / 1e6 << " MB";
  } else if (b >= 1e3) {
    os << b / 1e3 << " kB";
  } else {
    os << b << " B";
  }
  return os.str();
}

}  // namespace

std::string utilization_report(const Recorder& rec, double makespan) {
  std::ostringstream os;
  os << "utilization (window " << std::setprecision(4) << makespan * 1e3
     << " ms):\n";
  for (const auto& u : utilization(rec, makespan)) {
    os << "  " << std::left << std::setw(16) << u.track << std::right
       << std::fixed << std::setprecision(1) << std::setw(6)
       << u.fraction * 100.0 << "%  (" << std::setprecision(3)
       << u.busy_seconds * 1e3 << " ms busy)\n";
  }
  return os.str();
}

std::string traffic_report(const Recorder& rec) {
  std::ostringstream os;
  if (rec.traffic().empty()) return "traffic: none recorded\n";
  int nodes = 0;
  for (const auto& [key, bytes] : rec.traffic()) {
    nodes = std::max({nodes, key.first + 1, key.second + 1});
  }
  os << "traffic matrix (src node x dst node):\n      ";
  for (int d = 0; d < nodes; ++d) os << std::setw(10) << d;
  os << '\n';
  for (int s = 0; s < nodes; ++s) {
    os << "  " << std::setw(3) << s << " ";
    for (int d = 0; d < nodes; ++d) {
      auto it = rec.traffic().find({s, d});
      os << std::setw(10) << (it == rec.traffic().end() ? "-" : human_bytes(it->second));
    }
    os << '\n';
  }
  return os.str();
}

std::string critical_path_report(const Recorder& rec) {
  CriticalPath cp = critical_path(rec);
  std::ostringstream os;
  os << "critical path: " << std::setprecision(4) << cp.total_seconds * 1e3
     << " ms over " << cp.chain.size() << " events\n";
  // Sort categories by attributed time, largest first.
  std::vector<std::pair<std::string, double>> cats(cp.by_category.begin(),
                                                   cp.by_category.end());
  cats.emplace_back("wait", cp.wait_seconds);
  std::sort(cats.begin(), cats.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [cat, sec] : cats) {
    if (sec <= 0) continue;
    os << "  " << std::left << std::setw(16) << cat << std::right << std::fixed
       << std::setprecision(3) << std::setw(10) << sec * 1e3 << " ms  ("
       << std::setprecision(1)
       << (cp.total_seconds > 0 ? 100.0 * sec / cp.total_seconds : 0.0)
       << "%)\n";
  }
  return os.str();
}

std::string summary(const Recorder& rec, double makespan) {
  // Utilization fractions are relative to the recording window, which can be
  // shorter than the full run when recording starts after a warmup phase.
  // Launch events live on the control lane's run-ahead clock (an issue
  // stream that starts at zero and never waits on data), so they are
  // excluded from the window bounds.
  double window = makespan;
  bool any = false;
  double t0 = 0, t1 = 0;
  for (const auto& ev : rec.events()) {
    if (ev.cat == Category::Launch) continue;
    if (!any) {
      t0 = ev.start;
      t1 = ev.end;
      any = true;
    } else {
      t0 = std::min(t0, ev.start);
      t1 = std::max(t1, ev.end);
    }
  }
  if (any && t1 > t0) window = t1 - t0;
  return utilization_report(rec, window) + traffic_report(rec) +
         critical_path_report(rec);
}

}  // namespace legate::prof
