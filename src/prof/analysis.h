#pragma once

#include <map>
#include <string>
#include <vector>

#include "prof/prof.h"

namespace legate::prof {

/// Busy fraction of one resource track over the run.
struct Utilization {
  std::string track;
  int node{0};
  double busy_seconds{0};
  double fraction{0};  ///< busy_seconds / makespan
};

/// Per-track utilization, skipping tracks that never did work.
[[nodiscard]] std::vector<Utilization> utilization(const Recorder& rec,
                                                   double makespan);

/// Longest dependency chain ending at the latest-finishing event, with time
/// attributed per category. `wait_seconds` is chain time not covered by any
/// recorded event (an event starting after its predecessor finished —
/// dependence fan-in the single pred edge cannot see, or untraced gaps).
/// All times are measured within the recording window (recording may be
/// enabled mid-run, after warmup), so `total_seconds` spans from the first
/// recorded start to the chain's final completion.
struct CriticalPath {
  double total_seconds{0};  ///< chain end minus recording-window start
  std::vector<std::uint64_t> chain;  ///< event ids, source first
  std::map<std::string, double> by_category;
  double wait_seconds{0};
};

[[nodiscard]] CriticalPath critical_path(const Recorder& rec);

/// Human-readable reports.
[[nodiscard]] std::string utilization_report(const Recorder& rec, double makespan);
[[nodiscard]] std::string traffic_report(const Recorder& rec);
[[nodiscard]] std::string critical_path_report(const Recorder& rec);
/// All three reports concatenated — what the benchmarks print per point.
[[nodiscard]] std::string summary(const Recorder& rec, double makespan);

}  // namespace legate::prof
