#include "prof/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace legate::prof {

namespace {

/// JSON string escaping (quotes, backslashes, control characters).
void append_escaped(std::ostringstream& os, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

void append_str(std::ostringstream& os, std::string_view key, std::string_view v,
                bool comma = true) {
  os << '"';
  append_escaped(os, key);
  os << "\":\"";
  append_escaped(os, v);
  os << '"';
  if (comma) os << ',';
}

}  // namespace

std::string chrome_trace_json(const Recorder& rec) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };

  // Metadata: processes are nodes, threads are resource tracks.
  std::vector<int> seen_nodes;
  for (std::size_t t = 0; t < rec.tracks().size(); ++t) {
    const Track& tr = rec.tracks()[t];
    bool new_node = true;
    for (int n : seen_nodes) new_node = new_node && n != tr.node;
    if (new_node) {
      seen_nodes.push_back(tr.node);
      sep();
      os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << tr.node
         << ",\"args\":{\"name\":\"node " << tr.node << "\"}}";
    }
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << tr.node
       << ",\"tid\":" << t << ",\"args\":{";
    append_str(os, "name", tr.name, /*comma=*/false);
    os << "}}";
  }

  // Events arrive in append order, which interleaves arbitrarily when the
  // exec pool records from several worker threads. Emit both timelines in
  // timestamp order (stable on ties, keyed by record id) so the trace — and
  // any tool that streams it — sees monotonic ts per process.
  std::vector<const Event*> ordered;
  ordered.reserve(rec.events().size());
  for (const Event& ev : rec.events()) ordered.push_back(&ev);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) {
                     if (a->start != b->start) return a->start < b->start;
                     return a->id < b->id;
                   });

  for (const Event* evp : ordered) {
    const Event& ev = *evp;
    const Track& tr = rec.tracks()[static_cast<std::size_t>(ev.track)];
    bool instant = ev.cat == Category::Fault || ev.cat == Category::Retry ||
                   ev.cat == Category::Spill || ev.cat == Category::Snapshot ||
                   ev.cat == Category::Fused;
    sep();
    os << '{';
    append_str(os, "name", ev.name.empty() ? category_name(ev.cat) : ev.name);
    append_str(os, "cat", category_name(ev.cat));
    // Timestamps are microseconds in the trace-event format.
    if (instant) {
      os << "\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ev.start * 1e6 << ',';
    } else {
      os << "\"ph\":\"X\",\"ts\":" << ev.start * 1e6
         << ",\"dur\":" << (ev.end - ev.start) * 1e6 << ',';
    }
    os << "\"pid\":" << tr.node << ",\"tid\":" << ev.track << ",\"args\":{";
    os << "\"id\":" << ev.id << ",\"pred\":" << ev.pred;
    if (ev.bytes > 0) os << ",\"bytes\":" << ev.bytes;
    if (ev.src_mem >= 0) os << ",\"src_mem\":" << ev.src_mem;
    if (ev.dst_mem >= 0) os << ",\"dst_mem\":" << ev.dst_mem;
    if (ev.src_node >= 0) os << ",\"src_node\":" << ev.src_node;
    if (ev.dst_node >= 0) os << ",\"dst_node\":" << ev.dst_node;
    os << "}}";
  }

  // Measured wall-clock timeline: events carrying a real leaf-execution
  // interval are emitted a second time under a dedicated process, on the
  // same logical track ids, so the simulated and measured timelines can be
  // compared side by side in the viewer. Wall timestamps are seconds since
  // Recorder::wall_epoch().
  constexpr int kWallPid = 999;
  bool wall_meta = false;
  std::vector<int> wall_tracks;
  std::vector<const Event*> wall_ordered;
  for (const Event& ev : rec.events()) {
    if (ev.wall_end >= 0) wall_ordered.push_back(&ev);
  }
  std::stable_sort(wall_ordered.begin(), wall_ordered.end(),
                   [](const Event* a, const Event* b) {
                     if (a->wall_start != b->wall_start) {
                       return a->wall_start < b->wall_start;
                     }
                     return a->id < b->id;
                   });
  for (const Event* evp : wall_ordered) {
    const Event& ev = *evp;
    if (!wall_meta) {
      wall_meta = true;
      sep();
      os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << kWallPid
         << ",\"args\":{\"name\":\"measured wall-clock\"}}";
    }
    bool new_track = true;
    for (int t : wall_tracks) new_track = new_track && t != ev.track;
    if (new_track) {
      wall_tracks.push_back(ev.track);
      const Track& tr = rec.tracks()[static_cast<std::size_t>(ev.track)];
      sep();
      os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << kWallPid
         << ",\"tid\":" << ev.track << ",\"args\":{";
      append_str(os, "name", tr.name, /*comma=*/false);
      os << "}}";
    }
    sep();
    os << '{';
    append_str(os, "name", ev.name.empty() ? category_name(ev.cat) : ev.name);
    append_str(os, "cat", "wall");
    os << "\"ph\":\"X\",\"ts\":" << ev.wall_start * 1e6
       << ",\"dur\":" << (ev.wall_end - ev.wall_start) * 1e6 << ',';
    os << "\"pid\":" << kWallPid << ",\"tid\":" << ev.track << ",\"args\":{";
    os << "\"id\":" << ev.id << ",\"sim_start\":" << ev.start
       << ",\"sim_end\":" << ev.end;
    os << "}}";
  }
  os << "]}";
  return os.str();
}

void write_chrome_trace(const Recorder& rec, const std::string& path) {
  std::string json = chrome_trace_json(rec);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("cannot open trace file: " + path);
  std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = n == json.size() && std::fclose(f) == 0;
  if (!ok) throw std::runtime_error("short write to trace file: " + path);
}

}  // namespace legate::prof
