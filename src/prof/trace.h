#pragma once

#include <string>

#include "prof/prof.h"

namespace legate::prof {

/// Serialize the recorded timeline in Chrome-trace ("Trace Event") JSON.
/// Loads directly in chrome://tracing and Perfetto: tracks become threads,
/// nodes become processes, and every task/copy/allreduce/stall/checkpoint is
/// one complete ("X") event carrying its payload in `args`. Instant markers
/// (fault/retry/spill) are emitted as "i" events.
[[nodiscard]] std::string chrome_trace_json(const Recorder& rec);

/// Write chrome_trace_json() to `path`; throws std::runtime_error on I/O
/// failure.
void write_chrome_trace(const Recorder& rec, const std::string& path);

}  // namespace legate::prof
