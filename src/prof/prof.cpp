#include "prof/prof.h"

#include "util/common.h"

namespace legate::prof {

const char* category_name(Category c) {
  switch (c) {
    case Category::Kernel: return "kernel";
    case Category::Copy: return "copy";
    case Category::Allreduce: return "allreduce";
    case Category::Launch: return "launch-overhead";
    case Category::Stall: return "stall";
    case Category::Checkpoint: return "checkpoint";
    case Category::Fault: return "fault";
    case Category::Retry: return "retry";
    case Category::Spill: return "spill";
    case Category::Snapshot: return "metrics-snapshot";
    case Category::Integrity: return "integrity";
    case Category::Fused: return "fused";
    case Category::Comm: return "comm";
  }
  return "unknown";
}

int Recorder::track(const std::string& name, int node) {
  auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  int id = static_cast<int>(tracks_.size());
  tracks_.push_back(Track{name, node});
  track_busy_.push_back(0.0);
  track_last_end_.push_back(-1.0);
  track_last_event_.push_back(-1);
  track_ids_.emplace(name, id);
  return id;
}

std::uint64_t Recorder::record(Category cat, int track, double start, double end,
                               double ready, std::string name) {
  LSR_CHECK_MSG(track >= 0 && track < static_cast<int>(tracks_.size()),
                "event on unregistered track");
  Event ev;
  ev.id = static_cast<std::uint64_t>(events_.size());
  ev.cat = cat;
  ev.start = start;
  ev.end = end;
  ev.track = track;
  ev.name = std::move(name);

  // Resolve the gating edge. When the dependence gate (`ready`) is what set
  // the start time, chase the producer through the completion index — this
  // is the edge that lets the critical path hop across resources. Otherwise
  // the event queued behind the previous occupant of its track.
  double res_end = track_last_end_[track];
  if (ready >= 0 && ready >= res_end && start <= ready) {
    auto it = by_completion_.find(ready);
    if (it != by_completion_.end()) {
      ev.pred = static_cast<std::int64_t>(it->second);
    } else if (track_last_event_[track] >= 0) {
      ev.pred = track_last_event_[track];
    }
  } else if (track_last_event_[track] >= 0) {
    ev.pred = track_last_event_[track];
  }

  // Busy time is accounted separately (add_busy): an inter-node copy shows
  // once on the timeline but occupies two NIC queues for its transmission
  // time only, not the full latency-inclusive interval.
  track_last_end_[track] = end;
  track_last_event_[track] = static_cast<std::int64_t>(ev.id);
  by_completion_[end] = ev.id;
  events_.push_back(std::move(ev));
  return events_.back().id;
}

void Recorder::extend_last(double new_end) {
  LSR_CHECK_MSG(!events_.empty(), "extend_last with no recorded events");
  Event& ev = events_.back();
  auto it = by_completion_.find(ev.end);
  if (it != by_completion_.end() && it->second == ev.id) by_completion_.erase(it);
  ev.end = new_end;
  track_last_end_[ev.track] = std::max(track_last_end_[ev.track], new_end);
  by_completion_[new_end] = ev.id;
}

void Recorder::add_busy(int track, double seconds) {
  track_busy_.at(track) += seconds;
}

void Recorder::add_traffic(int src_node, int dst_node, double bytes) {
  traffic_[{src_node, dst_node}] += bytes;
}

void Recorder::reset() {
  // Flush captured timelines before dropping them: a profile window closed
  // by Engine::reset (bench repetitions, solver restarts) would otherwise
  // silently lose every event recorded before the reset.
  if (flush_sink_ && enabled_ && !events_.empty()) flush_sink_(*this);
  events_.clear();
  by_completion_.clear();
  traffic_.clear();
  tracks_.clear();
  track_ids_.clear();
  track_busy_.clear();
  track_last_end_.clear();
  track_last_event_.clear();
}

}  // namespace legate::prof
