#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace legate::prof {

/// What a timeline event represents; maps 1:1 onto the critical-path
/// attribution buckets (kernel / copy / launch-overhead / allreduce / stall)
/// plus the resilience markers.
enum class Category {
  Kernel,     ///< a point-task execution on a processor
  Copy,       ///< data movement between (or within) memories
  Allreduce,  ///< a collective across the launch's processors
  Launch,     ///< control-lane time (op dispatch, dependence analysis)
  Stall,      ///< whole-machine outage (node-loss detection/admission)
  Checkpoint, ///< checkpoint write / restore read on the PFS channel
  Fault,      ///< instant marker: a fault was injected
  Retry,      ///< instant marker: a point task re-execution was scheduled
  Spill,      ///< instant marker: an allocation was evicted under OOM
  Snapshot,   ///< instant marker: a metrics snapshot was taken
  Integrity,  ///< instant marker: a silent flip was injected/detected/repaired
  Fused,      ///< instant marker: a launch window was rewritten into a fused launch
  Comm,       ///< instant marker: a cached exchange plan was applied
};

[[nodiscard]] const char* category_name(Category c);

/// One interval on the recorded timeline. Times are simulated seconds.
struct Event {
  std::uint64_t id{0};
  Category cat{Category::Kernel};
  double start{0};
  double end{0};
  std::int32_t track{-1};   ///< index into Recorder::tracks()
  std::int64_t pred{-1};    ///< id of the event gating `start`; -1 = none
  std::string name;         ///< label (task name [provenance], copy route, ...)
  // Payload for copies / payload collectives.
  double bytes{0};
  int src_mem{-1}, dst_mem{-1};
  int src_node{-1}, dst_node{-1};
  /// Measured wall-clock interval of the real leaf execution backing this
  /// event (seconds since Recorder::wall_epoch()); negative when the event
  /// has no real counterpart (copies, collectives, simulated-only paths).
  /// Emitted as a separate process in the Chrome trace so simulated and
  /// measured timelines can be compared side by side.
  double wall_start{-1};
  double wall_end{-1};
};

/// A timeline row: one hardware resource (processor, link, NIC side, copy
/// engine, control lane, PFS channel). `node` groups tracks into
/// chrome-trace processes.
struct Track {
  std::string name;
  int node{0};
};

/// Per-event timeline recorder. Off by default: every mutating entry point
/// early-outs on `enabled()`, so a disabled recorder costs one branch per
/// engine call and allocates nothing.
///
/// Besides the event list, the recorder accumulates per-track busy seconds
/// (a single copy can occupy two NIC tracks but should appear once on the
/// timeline) and a node x node traffic matrix.
class Recorder {
 public:
  void enable(bool on = true) {
    enabled_ = on;
    // Epoch for the measured wall-clock track: leaf executions stamp their
    // real duration relative to this instant.
    if (on) wall_epoch_ = std::chrono::steady_clock::now();
  }
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::chrono::steady_clock::time_point wall_epoch() const {
    return wall_epoch_;
  }

  /// Intern a track by name; repeated calls with the same name return the
  /// same index.
  int track(const std::string& name, int node);

  /// Record one event. `ready` is the dependence gate the engine's caller
  /// passed in (use a negative value when the event is purely
  /// resource-serialized, e.g. control-lane advances). The predecessor edge
  /// is resolved here: if the start was set by data readiness, the producer
  /// is looked up by its completion time; otherwise the previous event on
  /// the same track gates it.
  std::uint64_t record(Category cat, int track, double start, double end,
                       double ready, std::string name);

  /// The most recently recorded event, for attaching payload fields.
  /// Only valid immediately after record() while enabled.
  Event& last() { return events_.back(); }

  /// Attach the measured wall-clock interval of the real execution backing
  /// the most recent event (seconds since wall_epoch()). No-op when disabled
  /// or when nothing has been recorded yet.
  void set_last_wall(double w0, double w1) {
    if (!enabled_ || events_.empty()) return;
    events_.back().wall_start = w0;
    events_.back().wall_end = w1;
  }

  /// Push the most recent event's end time out to `new_end`, keeping the
  /// completion index and track clock consistent (payload collectives add a
  /// ring term after the base event is recorded).
  void extend_last(double new_end);

  /// Extra busy time on a track that should count toward utilization but
  /// not add a timeline event (e.g. the receive side of an inter-node copy).
  void add_busy(int track, double seconds);

  void add_traffic(int src_node, int dst_node, double bytes);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] const std::vector<Track>& tracks() const { return tracks_; }
  [[nodiscard]] double busy_seconds(int track) const { return track_busy_.at(track); }
  [[nodiscard]] const std::map<std::pair<int, int>, double>& traffic() const {
    return traffic_;
  }

  /// Drop all recorded state (events, busy time, traffic), keeping the
  /// enabled flag. If a flush sink is set and events were recorded, the sink
  /// runs first so captured timelines are exported rather than silently
  /// dropped (Engine::reset routes through here).
  void reset();

  /// Install a pre-reset export hook. The sink receives the recorder with
  /// its events still intact; exceptions it throws propagate out of reset().
  void set_flush_sink(std::function<void(const Recorder&)> sink) {
    flush_sink_ = std::move(sink);
  }

 private:
  bool enabled_{false};
  std::function<void(const Recorder&)> flush_sink_;
  std::chrono::steady_clock::time_point wall_epoch_{};
  std::vector<Event> events_;
  std::vector<Track> tracks_;
  std::unordered_map<std::string, int> track_ids_;
  std::vector<double> track_busy_;
  std::vector<double> track_last_end_;
  std::vector<std::int64_t> track_last_event_;
  /// Most recent event completing at a given (exact) simulated time; lets
  /// record() resolve "start == ready" back to the producing event. Engine
  /// callers pass ready values that are bit-exact copies of previously
  /// returned completion times, so exact double keying works.
  std::unordered_map<double, std::uint64_t> by_completion_;
  std::map<std::pair<int, int>, double> traffic_;
};

}  // namespace legate::prof
