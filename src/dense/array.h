#pragma once

#include <string>
#include <vector>

#include "rt/runtime.h"
#include "util/rng.h"

namespace legate::dense {

/// A scalar produced by a distributed reduction. Carries both the exact
/// value and the simulated time at which it is available; operations that
/// consume a Scalar register a future dependence instead of blocking the
/// control lane, mirroring Legate's future plumbing.
struct Scalar {
  double value{0};
  double ready{0};
  /// Set when the value derives from data the modeled machine lost (retry
  /// exhaustion, unrecovered node loss). The bits are still the fault-free
  /// ones — leaves always run — but consumers must not trust them; solvers
  /// use this to trigger checkpoint recovery.
  bool poisoned{false};
  Scalar() = default;
  Scalar(double v) : value(v) {}  // NOLINT(google-explicit-constructor)
  Scalar(double v, double r) : value(v), ready(r) {}
  Scalar(double v, double r, bool p) : value(v), ready(r), poisoned(p) {}
  operator double() const { return value; }  // NOLINT
};

/// Distributed dense array (the cuNumeric analog): a 1-D vector or a 2-D
/// row-major matrix backed by a runtime store. All operations are task
/// launches through the constraint system, so partitions flow between this
/// library and the sparse library without either knowing about the other.
class DArray {
 public:
  DArray() = default;
  DArray(rt::Runtime& rt, rt::Store store) : rt_(&rt), store_(std::move(store)) {}

  // ---- constructors -------------------------------------------------------
  static DArray zeros(rt::Runtime& rt, coord_t n);
  static DArray zeros2d(rt::Runtime& rt, coord_t m, coord_t n);
  static DArray full(rt::Runtime& rt, coord_t n, double v);
  static DArray arange(rt::Runtime& rt, coord_t n);
  /// Uniform [0,1) values, deterministic per (seed, index).
  static DArray random(rt::Runtime& rt, coord_t n, std::uint64_t seed);
  static DArray random2d(rt::Runtime& rt, coord_t m, coord_t n, std::uint64_t seed);
  static DArray from_vector(rt::Runtime& rt, const std::vector<double>& v);

  // ---- metadata -----------------------------------------------------------
  [[nodiscard]] bool valid() const { return rt_ != nullptr; }
  [[nodiscard]] coord_t size() const { return store_.volume(); }
  [[nodiscard]] int dim() const { return store_.dim(); }
  [[nodiscard]] coord_t rows() const { return store_.shape()[0]; }
  [[nodiscard]] coord_t cols() const { return store_.shape().size() == 2 ? store_.shape()[1] : 1; }
  [[nodiscard]] const rt::Store& store() const { return store_; }
  [[nodiscard]] rt::Runtime& runtime() const { return *rt_; }

  // ---- elementwise (new array) ---------------------------------------------
  [[nodiscard]] DArray add(const DArray& o) const;
  [[nodiscard]] DArray sub(const DArray& o) const;
  [[nodiscard]] DArray mul(const DArray& o) const;
  [[nodiscard]] DArray div(const DArray& o) const;
  /// numpy.maximum / numpy.minimum (elementwise).
  [[nodiscard]] DArray maximum(const DArray& o) const;
  [[nodiscard]] DArray minimum(const DArray& o) const;
  [[nodiscard]] DArray scale(Scalar a) const;
  [[nodiscard]] DArray add_scalar(Scalar a) const;
  [[nodiscard]] DArray abs() const;
  [[nodiscard]] DArray sqrt() const;
  [[nodiscard]] DArray exp() const;
  [[nodiscard]] DArray log() const;
  [[nodiscard]] DArray neg() const;
  [[nodiscard]] DArray square() const;
  [[nodiscard]] DArray reciprocal() const;
  /// numpy.clip(lo, hi).
  [[nodiscard]] DArray clip(double lo, double hi) const;
  [[nodiscard]] DArray copy() const;
  /// Contiguous 1-D slice [lo, hi) as a new array (numpy's a[lo:hi].copy()).
  [[nodiscard]] DArray slice(coord_t lo, coord_t hi) const;

  // ---- elementwise (in place) ----------------------------------------------
  void iadd(const DArray& o);
  void isub(const DArray& o);
  void imul(const DArray& o);
  void iscale(Scalar a);
  /// this += a * x (the BLAS axpy; `a` may be an unready future).
  void axpy(Scalar a, const DArray& x);
  /// this = x + a * this (BLAS xpay, used by CG's direction update).
  void xpay(Scalar a, const DArray& x);
  void fill(Scalar v);

  // ---- reductions ------------------------------------------------------------
  [[nodiscard]] Scalar dot(const DArray& o) const;
  [[nodiscard]] Scalar norm() const;  ///< 2-norm
  [[nodiscard]] Scalar sum() const;
  [[nodiscard]] Scalar max() const;
  [[nodiscard]] Scalar min() const;

  // ---- linear algebra ---------------------------------------------------------
  /// 2-D matmul: this[m,k] @ b[k,n] -> [m,n]. Rows of the result align with
  /// rows of `this`; `b` is broadcast (the Legate strategy for tall-skinny).
  [[nodiscard]] DArray matmul(const DArray& b) const;
  /// Distributed 2-D transpose (all-to-all shuffle).
  [[nodiscard]] DArray transpose() const;

  // ---- host access -------------------------------------------------------------
  [[nodiscard]] std::vector<double> to_vector() const;
  [[nodiscard]] double at(coord_t i) const { return store_.span<double>()[i]; }

 private:
  DArray binary(const DArray& o, const char* name,
                double (*op)(double, double)) const;
  DArray unary(const char* name, double (*op)(double)) const;
  void inplace_binary(const DArray& o, const char* name, double (*op)(double, double));
  Scalar reduce(const char* name, rt::ScalarRedop rop, double init,
                double (*fold)(double, double), const DArray* other) const;

  rt::Runtime* rt_{nullptr};
  rt::Store store_;
};

}  // namespace legate::dense
