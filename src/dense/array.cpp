#include "dense/array.h"

#include <cmath>
#include <cstring>

namespace legate::dense {

namespace {

/// Hash-based per-element random value so results are independent of the
/// partitioning (important: distributed and sequential runs must agree).
double hashed_uniform(std::uint64_t seed, coord_t i) {
  std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

DArray DArray::zeros(rt::Runtime& rt, coord_t n) {
  DArray a(rt, rt.create_store(rt::DType::F64, {n}));
  a.fill(0.0);
  return a;
}

DArray DArray::zeros2d(rt::Runtime& rt, coord_t m, coord_t n) {
  DArray a(rt, rt.create_store(rt::DType::F64, {m, n}));
  a.fill(0.0);
  return a;
}

DArray DArray::full(rt::Runtime& rt, coord_t n, double v) {
  DArray a(rt, rt.create_store(rt::DType::F64, {n}));
  a.fill(v);
  return a;
}

DArray DArray::arange(rt::Runtime& rt, coord_t n) {
  DArray a(rt, rt.create_store(rt::DType::F64, {n}));
  rt::TaskLauncher launch(rt, "arange");
  int out = launch.add_output(a.store_);
  launch.set_leaf([out](rt::TaskContext& ctx) {
    auto y = ctx.full<double>(out);
    Interval iv = ctx.elem_interval(out);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = static_cast<double>(i);
    ctx.add_cost(static_cast<double>(iv.size()) * 8.0, 0);
  });
  launch.execute();
  return a;
}

DArray DArray::random(rt::Runtime& rt, coord_t n, std::uint64_t seed) {
  DArray a(rt, rt.create_store(rt::DType::F64, {n}));
  rt::TaskLauncher launch(rt, "random");
  int out = launch.add_output(a.store_);
  launch.set_leaf([out, seed](rt::TaskContext& ctx) {
    auto y = ctx.full<double>(out);
    Interval iv = ctx.elem_interval(out);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = hashed_uniform(seed, i);
    ctx.add_cost(static_cast<double>(iv.size()) * 8.0,
                 static_cast<double>(iv.size()) * 10.0);
  });
  launch.execute();
  return a;
}

DArray DArray::random2d(rt::Runtime& rt, coord_t m, coord_t n, std::uint64_t seed) {
  DArray a(rt, rt.create_store(rt::DType::F64, {m, n}));
  rt::TaskLauncher launch(rt, "random2d");
  int out = launch.add_output(a.store_);
  launch.set_leaf([out, seed](rt::TaskContext& ctx) {
    auto y = ctx.full<double>(out);
    Interval iv = ctx.elem_interval(out);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = hashed_uniform(seed, i);
    ctx.add_cost(static_cast<double>(iv.size()) * 8.0,
                 static_cast<double>(iv.size()) * 10.0);
  });
  launch.execute();
  return a;
}

DArray DArray::from_vector(rt::Runtime& rt, const std::vector<double>& v) {
  return DArray(rt, rt.attach(v));
}

// ---------------------------------------------------------------------------
// Elementwise helpers
// ---------------------------------------------------------------------------

DArray DArray::binary(const DArray& o, const char* name,
                      double (*op)(double, double)) const {
  LSR_CHECK_MSG(size() == o.size(), "shape mismatch");
  DArray r(*rt_, rt_->create_store(rt::DType::F64, store_.shape()));
  rt::TaskLauncher launch(*rt_, name);
  int ia = launch.add_input(store_);
  int ib = launch.add_input(o.store_);
  int ic = launch.add_output(r.store_);
  launch.align(ia, ib);
  launch.align(ia, ic);
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto a = ctx.full<double>(ia);
    auto b = ctx.full<double>(ib);
    auto c = ctx.full<double>(ic);
    Interval iv = ctx.elem_interval(ic);
    for (coord_t i = iv.lo; i < iv.hi; ++i) c[i] = op(a[i], b[i]);
    ctx.add_cost(static_cast<double>(iv.size()) * 24.0,
                 static_cast<double>(iv.size()));
  });
  launch.execute();
  return r;
}

void DArray::inplace_binary(const DArray& o, const char* name,
                            double (*op)(double, double)) {
  LSR_CHECK_MSG(size() == o.size(), "shape mismatch");
  rt::TaskLauncher launch(*rt_, name);
  int ia = launch.add_inout(store_);
  int ib = launch.add_input(o.store_);
  launch.align(ia, ib);
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto a = ctx.full<double>(ia);
    auto b = ctx.full<double>(ib);
    Interval iv = ctx.elem_interval(ia);
    for (coord_t i = iv.lo; i < iv.hi; ++i) a[i] = op(a[i], b[i]);
    ctx.add_cost(static_cast<double>(iv.size()) * 24.0,
                 static_cast<double>(iv.size()));
  });
  launch.execute();
}

DArray DArray::unary(const char* name, double (*op)(double)) const {
  DArray r(*rt_, rt_->create_store(rt::DType::F64, store_.shape()));
  rt::TaskLauncher launch(*rt_, name);
  int ia = launch.add_input(store_);
  int ic = launch.add_output(r.store_);
  launch.align(ia, ic);
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto a = ctx.full<double>(ia);
    auto c = ctx.full<double>(ic);
    Interval iv = ctx.elem_interval(ic);
    for (coord_t i = iv.lo; i < iv.hi; ++i) c[i] = op(a[i]);
    ctx.add_cost(static_cast<double>(iv.size()) * 16.0,
                 static_cast<double>(iv.size()));
  });
  launch.execute();
  return r;
}

DArray DArray::add(const DArray& o) const {
  return binary(o, "add", [](double a, double b) { return a + b; });
}
DArray DArray::sub(const DArray& o) const {
  return binary(o, "sub", [](double a, double b) { return a - b; });
}
DArray DArray::mul(const DArray& o) const {
  return binary(o, "mul", [](double a, double b) { return a * b; });
}
DArray DArray::div(const DArray& o) const {
  return binary(o, "div", [](double a, double b) { return a / b; });
}
DArray DArray::maximum(const DArray& o) const {
  return binary(o, "maximum", [](double a, double b) { return a > b ? a : b; });
}
DArray DArray::minimum(const DArray& o) const {
  return binary(o, "minimum", [](double a, double b) { return a < b ? a : b; });
}
DArray DArray::abs() const {
  return unary("abs", [](double a) { return std::fabs(a); });
}
DArray DArray::sqrt() const {
  return unary("sqrt", [](double a) { return std::sqrt(a); });
}
DArray DArray::exp() const {
  return unary("exp", [](double a) { return std::exp(a); });
}
DArray DArray::log() const {
  return unary("log", [](double a) { return std::log(a); });
}
DArray DArray::neg() const {
  return unary("neg", [](double a) { return -a; });
}
DArray DArray::square() const {
  return unary("square", [](double a) { return a * a; });
}
DArray DArray::reciprocal() const {
  return unary("reciprocal", [](double a) { return 1.0 / a; });
}
DArray DArray::copy() const {
  return unary("copy", [](double a) { return a; });
}

DArray DArray::clip(double lo, double hi) const {
  DArray r(*rt_, rt_->create_store(rt::DType::F64, store_.shape()));
  rt::TaskLauncher launch(*rt_, "clip");
  int ia = launch.add_input(store_);
  int ic = launch.add_output(r.store());
  launch.align(ia, ic);
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto a = ctx.full<double>(ia);
    auto c = ctx.full<double>(ic);
    Interval iv = ctx.elem_interval(ic);
    for (coord_t i = iv.lo; i < iv.hi; ++i)
      c[i] = a[i] < lo ? lo : (a[i] > hi ? hi : a[i]);
    ctx.add_cost(static_cast<double>(iv.size()) * 16.0,
                 static_cast<double>(iv.size()));
  });
  launch.execute();
  return r;
}

DArray DArray::slice(coord_t lo, coord_t hi) const {
  LSR_CHECK_MSG(dim() == 1 && lo >= 0 && hi <= size() && lo <= hi,
                "invalid 1-D slice bounds");
  DArray r(*rt_, rt_->create_store(rt::DType::F64, {hi - lo}));
  rt::TaskLauncher launch(*rt_, "slice");
  int ic = launch.add_output(r.store());
  int ia = launch.add_input(store_);
  // The input window tracks the output block shifted by `lo`.
  launch.halo(ic, ia, lo, lo);
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto a = ctx.full<double>(ia);
    auto c = ctx.full<double>(ic);
    Interval iv = ctx.elem_interval(ic);
    for (coord_t i = iv.lo; i < iv.hi; ++i) c[i] = a[i + lo];
    ctx.add_cost(static_cast<double>(iv.size()) * 16.0, 0);
  });
  launch.execute();
  return r;
}

void DArray::iadd(const DArray& o) {
  inplace_binary(o, "iadd", [](double a, double b) { return a + b; });
}
void DArray::isub(const DArray& o) {
  inplace_binary(o, "isub", [](double a, double b) { return a - b; });
}
void DArray::imul(const DArray& o) {
  inplace_binary(o, "imul", [](double a, double b) { return a * b; });
}

DArray DArray::scale(Scalar a) const {
  DArray r(*rt_, rt_->create_store(rt::DType::F64, store_.shape()));
  rt::TaskLauncher launch(*rt_, "scale");
  int ia = launch.add_input(store_);
  int ic = launch.add_output(r.store_);
  launch.align(ia, ic);
  launch.depend_on(a.ready, a.poisoned);
  double av = a.value;
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto x = ctx.full<double>(ia);
    auto y = ctx.full<double>(ic);
    Interval iv = ctx.elem_interval(ic);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = av * x[i];
    ctx.add_cost(static_cast<double>(iv.size()) * 16.0,
                 static_cast<double>(iv.size()));
  });
  launch.execute();
  return r;
}

DArray DArray::add_scalar(Scalar a) const {
  DArray r(*rt_, rt_->create_store(rt::DType::F64, store_.shape()));
  rt::TaskLauncher launch(*rt_, "add_scalar");
  int ia = launch.add_input(store_);
  int ic = launch.add_output(r.store_);
  launch.align(ia, ic);
  launch.depend_on(a.ready, a.poisoned);
  double av = a.value;
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto x = ctx.full<double>(ia);
    auto y = ctx.full<double>(ic);
    Interval iv = ctx.elem_interval(ic);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = x[i] + av;
    ctx.add_cost(static_cast<double>(iv.size()) * 16.0,
                 static_cast<double>(iv.size()));
  });
  launch.execute();
  return r;
}

void DArray::iscale(Scalar a) {
  rt::TaskLauncher launch(*rt_, "iscale");
  int ia = launch.add_inout(store_);
  launch.depend_on(a.ready, a.poisoned);
  double av = a.value;
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto x = ctx.full<double>(ia);
    Interval iv = ctx.elem_interval(ia);
    for (coord_t i = iv.lo; i < iv.hi; ++i) x[i] *= av;
    ctx.add_cost(static_cast<double>(iv.size()) * 16.0,
                 static_cast<double>(iv.size()));
  });
  launch.execute();
}

void DArray::axpy(Scalar a, const DArray& x) {
  LSR_CHECK_MSG(size() == x.size(), "shape mismatch");
  rt::TaskLauncher launch(*rt_, "axpy");
  int iy = launch.add_inout(store_);
  int ix = launch.add_input(x.store_);
  launch.align(iy, ix);
  launch.depend_on(a.ready, a.poisoned);
  double av = a.value;
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto y = ctx.full<double>(iy);
    auto xs = ctx.full<double>(ix);
    Interval iv = ctx.elem_interval(iy);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] += av * xs[i];
    ctx.add_cost(static_cast<double>(iv.size()) * 24.0,
                 2.0 * static_cast<double>(iv.size()));
  });
  launch.execute();
}

void DArray::xpay(Scalar a, const DArray& x) {
  LSR_CHECK_MSG(size() == x.size(), "shape mismatch");
  rt::TaskLauncher launch(*rt_, "xpay");
  int iy = launch.add_inout(store_);
  int ix = launch.add_input(x.store_);
  launch.align(iy, ix);
  launch.depend_on(a.ready, a.poisoned);
  double av = a.value;
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto y = ctx.full<double>(iy);
    auto xs = ctx.full<double>(ix);
    Interval iv = ctx.elem_interval(iy);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = xs[i] + av * y[i];
    ctx.add_cost(static_cast<double>(iv.size()) * 24.0,
                 2.0 * static_cast<double>(iv.size()));
  });
  launch.execute();
}

void DArray::fill(Scalar v) {
  rt::TaskLauncher launch(*rt_, "fill");
  int ia = launch.add_output(store_);
  launch.depend_on(v.ready, v.poisoned);
  double vv = v.value;
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto x = ctx.full<double>(ia);
    Interval iv = ctx.elem_interval(ia);
    for (coord_t i = iv.lo; i < iv.hi; ++i) x[i] = vv;
    ctx.add_cost(static_cast<double>(iv.size()) * 8.0, 0);
  });
  launch.execute();
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

Scalar DArray::reduce(const char* name, rt::ScalarRedop rop, double init,
                      double (*fold)(double, double), const DArray* other) const {
  rt::TaskLauncher launch(*rt_, name);
  int ia = launch.add_input(store_);
  int ib = -1;
  if (other != nullptr) {
    ib = launch.add_input(other->store_);
    launch.align(ia, ib);
  }
  launch.reduce_scalar(rop);
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto a = ctx.full<double>(ia);
    Interval iv = ctx.elem_interval(ia);
    double acc = init;
    if (ib >= 0) {
      auto b = ctx.full<double>(ib);
      for (coord_t i = iv.lo; i < iv.hi; ++i) acc = fold(acc, a[i] * b[i]);
      ctx.add_cost(static_cast<double>(iv.size()) * 16.0,
                   2.0 * static_cast<double>(iv.size()));
    } else {
      for (coord_t i = iv.lo; i < iv.hi; ++i) acc = fold(acc, a[i]);
      ctx.add_cost(static_cast<double>(iv.size()) * 8.0,
                   static_cast<double>(iv.size()));
    }
    ctx.contribute(acc);
  });
  rt::Future f = launch.execute();
  return {f.value, f.ready, f.poisoned};
}

Scalar DArray::dot(const DArray& o) const {
  LSR_CHECK_MSG(size() == o.size(), "shape mismatch");
  return reduce("dot", rt::ScalarRedop::Sum, 0.0,
                [](double a, double b) { return a + b; }, &o);
}

Scalar DArray::norm() const {
  Scalar s = reduce("norm", rt::ScalarRedop::Sum, 0.0,
                    [](double a, double b) { return a + b; }, this);
  return {std::sqrt(s.value), s.ready, s.poisoned};
}

Scalar DArray::sum() const {
  return reduce("sum", rt::ScalarRedop::Sum, 0.0,
                [](double a, double b) { return a + b; }, nullptr);
}

Scalar DArray::max() const {
  return reduce("max", rt::ScalarRedop::Max,
                -std::numeric_limits<double>::infinity(),
                [](double a, double b) { return a > b ? a : b; }, nullptr);
}

Scalar DArray::min() const {
  return reduce("min", rt::ScalarRedop::Min,
                std::numeric_limits<double>::infinity(),
                [](double a, double b) { return a < b ? a : b; }, nullptr);
}

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

DArray DArray::matmul(const DArray& b) const {
  LSR_CHECK_MSG(dim() == 2 && b.dim() == 2 && cols() == b.rows(),
                "matmul shape mismatch");
  coord_t m = rows(), k = cols(), n = b.cols();
  DArray c(*rt_, rt_->create_store(rt::DType::F64, {m, n}));
  rt::TaskLauncher launch(*rt_, "matmul");
  int ia = launch.add_input(store_);
  int ibx = launch.add_input(b.store_);
  int ic = launch.add_output(c.store_);
  launch.align(ia, ic);
  launch.broadcast(ibx);
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto A = ctx.full<double>(ia);
    auto B = ctx.full<double>(ibx);
    auto C = ctx.full<double>(ic);
    Interval riv = ctx.interval(ic);  // row interval
    for (coord_t i = riv.lo; i < riv.hi; ++i) {
      for (coord_t j = 0; j < n; ++j) {
        double acc = 0;
        for (coord_t l = 0; l < k; ++l) acc += A[i * k + l] * B[l * n + j];
        C[i * n + j] = acc;
      }
    }
    double rows_here = static_cast<double>(riv.size());
    ctx.add_cost(rows_here * static_cast<double>(k + n) * 8.0 +
                     static_cast<double>(k) * static_cast<double>(n) * 8.0,
                 2.0 * rows_here * static_cast<double>(k) * static_cast<double>(n));
  });
  launch.execute();
  return c;
}

DArray DArray::transpose() const {
  LSR_CHECK_MSG(dim() == 2, "transpose requires a 2-D array");
  coord_t m = rows(), n = cols();
  DArray t(*rt_, rt_->create_store(rt::DType::F64, {n, m}));
  const rt::Store in = store_;
  const rt::Store out = t.store_;
  rt_->shuffle(in, out, [in, out, m, n]() {
    auto a = in.span<double>();
    auto b = out.span<double>();
    for (coord_t i = 0; i < m; ++i) {
      for (coord_t j = 0; j < n; ++j) b[j * m + i] = a[i * n + j];
    }
  });
  return t;
}

std::vector<double> DArray::to_vector() const {
  auto sp = store_.span<double>();
  return {sp.begin(), sp.end()};
}

}  // namespace legate::dense
