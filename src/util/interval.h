#pragma once

#include <algorithm>
#include <ostream>

#include "util/common.h"

namespace legate {

/// Half-open 1-D coordinate range [lo, hi). Empty when lo >= hi.
///
/// All runtime metadata (partitions, dependence records, validity maps) is
/// expressed in terms of these ranges; 2-D dense stores are linearized
/// row-major so a row block is a single Interval.
struct Interval {
  coord_t lo{0};
  coord_t hi{0};

  constexpr Interval() = default;
  constexpr Interval(coord_t lo_, coord_t hi_) : lo(lo_), hi(hi_) {}

  [[nodiscard]] constexpr bool empty() const { return lo >= hi; }
  [[nodiscard]] constexpr coord_t size() const { return empty() ? 0 : hi - lo; }
  [[nodiscard]] constexpr bool contains(coord_t p) const { return p >= lo && p < hi; }
  [[nodiscard]] constexpr bool contains(Interval o) const {
    return o.empty() || (o.lo >= lo && o.hi <= hi);
  }
  [[nodiscard]] constexpr bool overlaps(Interval o) const {
    return std::max(lo, o.lo) < std::min(hi, o.hi);
  }
  [[nodiscard]] constexpr Interval intersect(Interval o) const {
    Interval r{std::max(lo, o.lo), std::min(hi, o.hi)};
    return r.empty() ? Interval{} : r;
  }
  /// Smallest interval containing both (the "bounding" union used by image
  /// approximations and allocation coalescing).
  [[nodiscard]] constexpr Interval span_union(Interval o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  friend constexpr bool operator==(Interval a, Interval b) {
    if (a.empty() && b.empty()) return true;
    return a.lo == b.lo && a.hi == b.hi;
  }
};

inline std::ostream& operator<<(std::ostream& os, Interval iv) {
  return os << "[" << iv.lo << "," << iv.hi << ")";
}

}  // namespace legate
