#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

namespace legate {

/// Coordinate type used for all index spaces, matching Legion's 64-bit coords.
using coord_t = std::int64_t;

/// Thrown when a simulated memory would exceed its capacity (models a real OOM
/// on the target machine, e.g. a V100 framebuffer).
class OutOfMemoryError : public std::runtime_error {
 public:
  explicit OutOfMemoryError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a sparse-format invariant is violated (non-monotone pos rows,
/// out-of-bounds column coordinates, array-length mismatches). Carries the
/// offending field name and index so corrupted inputs can be pinpointed.
class FormatError : public std::runtime_error {
 public:
  FormatError(const std::string& what, std::string field, coord_t index)
      : std::runtime_error(what), field_(std::move(field)), index_(index) {}
  [[nodiscard]] const std::string& field() const { return field_; }
  [[nodiscard]] coord_t index() const { return index_; }

 private:
  std::string field_;
  coord_t index_{-1};
};

/// Thrown when an element/row/column accessor is given an out-of-range
/// coordinate (SciPy raises IndexError for the same misuse). Carries the
/// offending axis name, the coordinate, and the valid extent so callers can
/// report exactly which index was bad instead of launching a task that would
/// read out-of-range memory.
class IndexError : public std::out_of_range {
 public:
  IndexError(const std::string& what, std::string axis, coord_t index,
             coord_t extent)
      : std::out_of_range(what),
        axis_(std::move(axis)),
        index_(index),
        extent_(extent) {}
  [[nodiscard]] const std::string& axis() const { return axis_; }
  [[nodiscard]] coord_t index() const { return index_; }
  [[nodiscard]] coord_t extent() const { return extent_; }

 private:
  std::string axis_;
  coord_t index_{-1};
  coord_t extent_{0};
};

/// Global switch for construction-time sparse-format validation. On by
/// default (the scan is cheap next to kernel work and catches corrupted
/// inputs at the source); benchmarks that construct many matrices in a
/// timed loop may turn it off.
inline bool& validate_formats() {
  static bool on = true;
  return on;
}

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  std::string full = std::string("check failed: ") + cond + " at " + file + ":" +
                     std::to_string(line) + (msg.empty() ? "" : (": " + msg));
  throw std::logic_error(full);
}
}  // namespace detail

}  // namespace legate

/// Internal invariant check; active in all build types. These guard runtime
/// metadata invariants (partition bounds, version monotonicity, ...) whose
/// violation would silently corrupt the simulation, so they stay on in release.
#define LSR_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) ::legate::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define LSR_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) ::legate::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
