#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace legate {

/// Coordinate type used for all index spaces, matching Legion's 64-bit coords.
using coord_t = std::int64_t;

/// Thrown when a simulated memory would exceed its capacity (models a real OOM
/// on the target machine, e.g. a V100 framebuffer).
class OutOfMemoryError : public std::runtime_error {
 public:
  explicit OutOfMemoryError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  std::string full = std::string("check failed: ") + cond + " at " + file + ":" +
                     std::to_string(line) + (msg.empty() ? "" : (": " + msg));
  throw std::logic_error(full);
}
}  // namespace detail

}  // namespace legate

/// Internal invariant check; active in all build types. These guard runtime
/// metadata invariants (partition bounds, version monotonicity, ...) whose
/// violation would silently corrupt the simulation, so they stay on in release.
#define LSR_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) ::legate::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define LSR_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) ::legate::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
