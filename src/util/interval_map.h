#pragma once

#include <concepts>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "util/interval.h"

namespace legate {

/// Ordered map from disjoint half-open intervals to values.
///
/// This is the workhorse data structure of the runtime: per-store version
/// maps, last-writer dependence records, allocation validity, and ownership
/// maps are all IntervalMaps. Adjacent segments with equal values are merged
/// when V is equality-comparable.
///
/// Invariants: segments are disjoint, non-empty, sorted by lo.
template <typename V>
class IntervalMap {
  struct Seg {
    coord_t hi;
    V value;
  };
  // Keyed by segment lo.
  std::map<coord_t, Seg> segs_;

 public:
  IntervalMap() = default;

  [[nodiscard]] bool empty() const { return segs_.empty(); }
  [[nodiscard]] std::size_t segment_count() const { return segs_.size(); }

  void clear() { segs_.clear(); }

  /// Assign `value` over `range`, overwriting any previous contents there.
  void assign(Interval range, V value) {
    if (range.empty()) return;
    carve(range);
    auto [it, inserted] = segs_.emplace(range.lo, Seg{range.hi, std::move(value)});
    LSR_CHECK(inserted);
    try_merge_around(it);
  }

  /// Remove all values over `range`.
  void erase(Interval range) {
    if (range.empty()) return;
    carve(range);
  }

  /// Value covering point `p`, if any.
  [[nodiscard]] std::optional<V> at(coord_t p) const {
    auto it = segs_.upper_bound(p);
    if (it == segs_.begin()) return std::nullopt;
    --it;
    if (p < it->second.hi) return it->second.value;
    return std::nullopt;
  }

  /// Visit every (sub-interval, value) overlapping `range`, in order.
  /// The visited sub-intervals are clipped to `range`.
  template <typename F>
  void for_each_in(Interval range, F&& fn) const {
    if (range.empty()) return;
    auto it = segs_.upper_bound(range.lo);
    if (it != segs_.begin()) --it;
    for (; it != segs_.end() && it->first < range.hi; ++it) {
      Interval seg{it->first, it->second.hi};
      Interval clipped = seg.intersect(range);
      if (!clipped.empty()) fn(clipped, it->second.value);
    }
  }

  /// Visit every maximal sub-interval of `range` NOT covered by any segment.
  template <typename F>
  void for_each_gap(Interval range, F&& fn) const {
    if (range.empty()) return;
    coord_t cursor = range.lo;
    for_each_in(range, [&](Interval iv, const V&) {
      if (iv.lo > cursor) fn(Interval{cursor, iv.lo});
      cursor = iv.hi;
    });
    if (cursor < range.hi) fn(Interval{cursor, range.hi});
  }

  /// Read-modify-write: for each covered piece of `range` call
  /// fn(piece, old_value) -> new value; for each gap call fn(piece, nullopt).
  /// The results are assigned back over `range`.
  template <typename F>
  void update(Interval range, F&& fn) {
    if (range.empty()) return;
    std::vector<std::pair<Interval, V>> results;
    coord_t cursor = range.lo;
    for_each_in(range, [&](Interval iv, const V& old) {
      if (iv.lo > cursor) {
        results.emplace_back(Interval{cursor, iv.lo},
                             fn(Interval{cursor, iv.lo}, std::optional<V>{}));
      }
      results.emplace_back(iv, fn(iv, std::optional<V>{old}));
      cursor = iv.hi;
    });
    if (cursor < range.hi) {
      results.emplace_back(Interval{cursor, range.hi},
                           fn(Interval{cursor, range.hi}, std::optional<V>{}));
    }
    for (auto& [iv, v] : results) assign(iv, std::move(v));
  }

  /// True iff every point of `range` is covered.
  [[nodiscard]] bool covers(Interval range) const {
    bool gap = false;
    for_each_gap(range, [&](Interval) { gap = true; });
    return !gap;
  }

  /// Collect (interval, value) pairs overlapping `range` (clipped).
  [[nodiscard]] std::vector<std::pair<Interval, V>> snapshot(Interval range) const {
    std::vector<std::pair<Interval, V>> out;
    for_each_in(range, [&](Interval iv, const V& v) { out.emplace_back(iv, v); });
    return out;
  }

  /// Total number of covered coordinates within `range`.
  [[nodiscard]] coord_t covered_size(Interval range) const {
    coord_t n = 0;
    for_each_in(range, [&](Interval iv, const V&) { n += iv.size(); });
    return n;
  }

 private:
  // Remove coverage over `range`, splitting boundary segments.
  void carve(Interval range) {
    // Split a segment straddling range.lo.
    auto it = segs_.upper_bound(range.lo);
    if (it != segs_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.hi > range.lo) {
        // prev covers range.lo; keep [prev.lo, range.lo), re-add tail later.
        Seg tail{prev->second.hi, prev->second.value};
        coord_t tail_lo = range.lo;
        prev->second.hi = range.lo;
        if (prev->second.hi <= prev->first) segs_.erase(prev);
        if (tail.hi > tail_lo) segs_.emplace(tail_lo, std::move(tail));
      }
    }
    // Erase/trim segments starting within [range.lo, range.hi).
    it = segs_.lower_bound(range.lo);
    while (it != segs_.end() && it->first < range.hi) {
      if (it->second.hi <= range.hi) {
        it = segs_.erase(it);
      } else {
        // Straddles range.hi: move its lo up to range.hi.
        Seg moved = std::move(it->second);
        segs_.erase(it);
        segs_.emplace(range.hi, std::move(moved));
        break;
      }
    }
  }

  void try_merge_around(typename std::map<coord_t, Seg>::iterator it) {
    if constexpr (std::equality_comparable<V>) {
      // Merge with successor.
      auto next = std::next(it);
      if (next != segs_.end() && it->second.hi == next->first &&
          it->second.value == next->second.value) {
        it->second.hi = next->second.hi;
        segs_.erase(next);
      }
      // Merge with predecessor.
      if (it != segs_.begin()) {
        auto prev = std::prev(it);
        if (prev->second.hi == it->first && prev->second.value == it->second.value) {
          prev->second.hi = it->second.hi;
          segs_.erase(it);
        }
      }
    }
  }
};

/// A set of disjoint intervals (an IntervalMap without values), used for
/// validity arithmetic: needed = required − valid.
class IntervalSet {
  IntervalMap<char> map_;

 public:
  void add(Interval iv) { map_.assign(iv, 1); }
  void subtract(Interval iv) { map_.erase(iv); }
  void clear() { map_.clear(); }

  [[nodiscard]] bool empty() const { return map_.empty(); }
  [[nodiscard]] bool contains(Interval iv) const { return map_.covers(iv); }
  [[nodiscard]] coord_t size_within(Interval iv) const { return map_.covered_size(iv); }

  template <typename F>
  void for_each(Interval within, F&& fn) const {
    map_.for_each_in(within, [&](Interval iv, char) { fn(iv); });
  }
  template <typename F>
  void for_each_gap(Interval within, F&& fn) const {
    map_.for_each_gap(within, std::forward<F>(fn));
  }
};

}  // namespace legate
