#pragma once

#include <cmath>
#include <cstdint>

#include "util/common.h"

namespace legate {

/// Deterministic, seedable RNG (xoshiro256** seeded via splitmix64).
///
/// Used everywhere instead of <random> engines so that test oracles and
/// benchmark workloads are bit-reproducible across platforms and runs.
///
/// Thread-safety: an Rng instance is NOT synchronized — it is a mutable
/// state machine and must never be shared across concurrently-running leaf
/// points. Code that needs randomness inside a parallel launch derives one
/// independent stream per point with Rng(seed, color): the draws of each
/// stream are then a pure function of (seed, color), independent of the
/// executor's thread count or interleaving. Host-side generators (matrix
/// construction, workload synthesis) run on the control thread only.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : s_) word = splitmix64(x);
  }

  /// Independent per-point stream: the splitmix64 avalanche decorrelates
  /// (seed, stream) pairs, so stream k of seed s never overlaps stream k'
  /// in practice. Use the launch color as the stream id for bit-identical
  /// results at any exec_threads setting.
  Rng(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t x = seed;
    std::uint64_t mixed = splitmix64(x) ^ (stream * 0x9e3779b97f4a7c15ULL);
    std::uint64_t y = mixed;
    for (auto& word : s_) word = splitmix64(y);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    LSR_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform coordinate in [lo, hi).
  coord_t next_coord(coord_t lo, coord_t hi) {
    LSR_CHECK(lo < hi);
    return lo + static_cast<coord_t>(next_below(static_cast<std::uint64_t>(hi - lo)));
  }

  /// Standard normal via Box-Muller.
  double next_normal() {
    double u1 = next_double();
    double u2 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  /// Zipf-distributed integer in [0, n) with exponent `s` (used by the
  /// synthetic MovieLens generator). Uses inverse-CDF on a precomputed-free
  /// approximation (rejection-inversion is overkill at our sizes).
  coord_t next_zipf(coord_t n, double s) {
    // Approximate inverse CDF of the Zipf distribution via the continuous
    // bounded Pareto; adequate for workload shaping.
    double u = next_double();
    double h = std::pow(static_cast<double>(n), 1.0 - s);
    double x = std::pow(u * (h - 1.0) + 1.0, 1.0 / (1.0 - s));
    coord_t k = static_cast<coord_t>(x) - 1;
    if (k < 0) k = 0;
    if (k >= n) k = n - 1;
    return k;
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  std::uint64_t s_[4];
};

}  // namespace legate
