#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "util/common.h"

namespace legate::baselines::ref {

/// Which single-device system is being modeled.
enum class Device {
  ScipyCpu,  ///< standard SciPy: one CPU thread of a POWER9 socket
  CupyGpu,   ///< CuPy: one V100, small per-op dispatch overhead
};

/// Sequential execution context for the SciPy/CuPy baselines. Kernels run
/// for real; each operation charges a per-op dispatch overhead plus roofline
/// kernel time, and allocations count against a single device's memory
/// (CuPy's OOM behaviour on ML-50M/100M in Fig. 12 and Fig. 11's quantum
/// footprints come from this capacity accounting).
class RefContext {
 public:
  RefContext(Device dev, const sim::PerfParams& pp);

  /// Charge one operation: dispatch overhead + kernel time.
  void charge(double bytes, double flops, double efficiency = 1.0);
  /// Account `bytes` of device memory; throws OutOfMemoryError when the
  /// device is full.
  void alloc(double bytes);
  void free(double bytes);

  [[nodiscard]] double now() const { return clock_; }
  [[nodiscard]] double used_bytes() const { return used_; }
  [[nodiscard]] double peak_bytes() const { return peak_; }
  [[nodiscard]] Device device() const { return dev_; }
  [[nodiscard]] const sim::PerfParams& params() const { return pp_; }

  /// Workload scale factor (see sim::Engine::set_cost_scale).
  void set_cost_scale(double s) { cost_scale_ = s; }
  [[nodiscard]] double cost_scale() const { return cost_scale_; }

 private:
  Device dev_;
  sim::PerfParams pp_;
  sim::CostModel cost_;
  double clock_{0};
  double used_{0}, peak_{0}, capacity_{0};
  double cost_scale_{1.0};
};

/// Device vector tracked by a RefContext.
class RefVector {
 public:
  RefVector() = default;
  RefVector(RefContext& ctx, std::vector<double> data);
  RefVector(RefContext& ctx, coord_t n, double fill = 0.0);
  ~RefVector();
  RefVector(const RefVector& o);
  RefVector& operator=(const RefVector& o);
  RefVector(RefVector&& o) noexcept;
  RefVector& operator=(RefVector&& o) noexcept;

  [[nodiscard]] coord_t size() const { return static_cast<coord_t>(v_.size()); }
  [[nodiscard]] const std::vector<double>& data() const { return v_; }
  [[nodiscard]] std::vector<double>& data() { return v_; }

  void axpy(double a, const RefVector& x);
  void xpay(double a, const RefVector& x);
  void scale(double a);
  void iadd(const RefVector& x);
  void isub(const RefVector& x);
  void imul(const RefVector& x);
  [[nodiscard]] double dot(const RefVector& x) const;
  [[nodiscard]] double norm() const;
  [[nodiscard]] RefVector add(const RefVector& x) const;
  [[nodiscard]] RefVector sub(const RefVector& x) const;
  [[nodiscard]] RefVector mul(const RefVector& x) const;

 private:
  RefContext* ctx_{nullptr};
  std::vector<double> v_;
};

/// Device CSR matrix tracked by a RefContext.
class RefCsr {
 public:
  RefCsr() = default;
  RefCsr(RefContext& ctx, coord_t rows, coord_t cols, std::vector<coord_t> indptr,
         std::vector<coord_t> indices, std::vector<double> values);
  ~RefCsr();
  RefCsr(const RefCsr&);
  RefCsr& operator=(const RefCsr&);
  RefCsr(RefCsr&&) noexcept;
  RefCsr& operator=(RefCsr&&) noexcept;

  [[nodiscard]] coord_t rows() const { return rows_; }
  [[nodiscard]] coord_t cols() const { return cols_; }
  [[nodiscard]] coord_t nnz() const { return static_cast<coord_t>(values_.size()); }

  [[nodiscard]] RefVector spmv(const RefVector& x) const;
  /// C = A @ B, B row-major dense (n x k); returns row-major (rows x k).
  [[nodiscard]] std::vector<double> spmm(const std::vector<double>& b, coord_t k) const;
  /// out_vals = A ⊙ (B Cᵀ-style product); see CsrMatrix::sddmm. CuPy charges
  /// the cuSPARSE SDDMM inefficiency factor here (Section 6.2).
  [[nodiscard]] RefCsr sddmm(const std::vector<double>& b, const std::vector<double>& c,
                             coord_t k) const;
  [[nodiscard]] RefCsr transpose() const;
  [[nodiscard]] RefCsr spgemm(const RefCsr& b) const;
  [[nodiscard]] RefVector diagonal() const;
  [[nodiscard]] RefCsr scale(double a) const;
  [[nodiscard]] RefCsr add(const RefCsr& b) const;

  [[nodiscard]] const std::vector<coord_t>& indptr() const { return indptr_; }
  [[nodiscard]] const std::vector<coord_t>& indices() const { return indices_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] RefContext& ctx() const { return *ctx_; }

 private:
  [[nodiscard]] double bytes() const {
    return static_cast<double>(indptr_.size() + indices_.size()) * 8.0 +
           static_cast<double>(values_.size()) * 8.0;
  }

  RefContext* ctx_{nullptr};
  coord_t rows_{0}, cols_{0};
  std::vector<coord_t> indptr_, indices_;
  std::vector<double> values_;
};

}  // namespace legate::baselines::ref
