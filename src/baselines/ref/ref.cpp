#include "baselines/ref/ref.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace legate::baselines::ref {

// ---------------------------------------------------------------------------
// RefContext
// ---------------------------------------------------------------------------

RefContext::RefContext(Device dev, const sim::PerfParams& pp)
    : dev_(dev), pp_(pp), cost_(pp) {
  // CuPy gets the raw framebuffer minus CUDA context overhead; it does not
  // pay Legate's Legion/NCCL reservation, which is why it can fit ML-25M
  // on one GPU where Legate Sparse cannot (Section 6.2).
  capacity_ = dev == Device::CupyGpu ? pp.gpu_fb_capacity - 0.7e9
                                     : pp.sysmem_capacity;
}

void RefContext::charge(double bytes, double flops, double efficiency) {
  // Near the memory limit CuPy's pooled allocator starts synchronizing and
  // splitting blocks; the paper observes exactly this on ML-25M ("CuPy runs
  // close to the GPU memory limit"). Model it as degraded efficiency and
  // extra per-op overhead once usage crosses 85% of the framebuffer.
  double pressure = used_ / capacity_;
  bool thrashing = dev_ == Device::CupyGpu && pressure > 0.85;
  if (thrashing) efficiency *= 0.25;
  sim::Cost c{bytes * cost_scale_, flops * cost_scale_, efficiency};
  if (dev_ == Device::ScipyCpu) {
    clock_ += pp_.scipy_op_overhead +
              cost_.kernel_seconds(sim::ProcKind::CPU, c, pp_.scipy_core_fraction);
  } else {
    clock_ += (thrashing ? 8.0 : 1.0) * pp_.cupy_op_overhead + pp_.gpu_kernel_launch +
              cost_.kernel_seconds(sim::ProcKind::GPU, c);
  }
}

void RefContext::alloc(double bytes) {
  bytes *= cost_scale_;
  if (used_ + bytes > capacity_) {
    throw OutOfMemoryError("single-device baseline out of memory: " +
                           std::to_string((used_ + bytes) / 1e9) + " GB of " +
                           std::to_string(capacity_ / 1e9) + " GB");
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
}

void RefContext::free(double bytes) { used_ -= bytes * cost_scale_; }

// ---------------------------------------------------------------------------
// RefVector
// ---------------------------------------------------------------------------

RefVector::RefVector(RefContext& ctx, std::vector<double> data) : ctx_(&ctx) {
  // Account device capacity before touching host memory, so a modeled OOM
  // fires before a real allocation failure.
  ctx_->alloc(static_cast<double>(data.size()) * 8.0);
  v_ = std::move(data);
}

RefVector::RefVector(RefContext& ctx, coord_t n, double fill) : ctx_(&ctx) {
  ctx_->alloc(static_cast<double>(n) * 8.0);
  v_.assign(static_cast<std::size_t>(n), fill);
}

RefVector::~RefVector() {
  if (ctx_ != nullptr) ctx_->free(static_cast<double>(v_.size()) * 8.0);
}

RefVector::RefVector(const RefVector& o) : ctx_(o.ctx_), v_(o.v_) {
  if (ctx_ != nullptr) ctx_->alloc(static_cast<double>(v_.size()) * 8.0);
}

RefVector& RefVector::operator=(const RefVector& o) {
  if (this == &o) return *this;
  if (ctx_ != nullptr) ctx_->free(static_cast<double>(v_.size()) * 8.0);
  ctx_ = o.ctx_;
  v_ = o.v_;
  if (ctx_ != nullptr) ctx_->alloc(static_cast<double>(v_.size()) * 8.0);
  return *this;
}

RefVector::RefVector(RefVector&& o) noexcept : ctx_(o.ctx_), v_(std::move(o.v_)) {
  o.ctx_ = nullptr;
  o.v_.clear();
}

RefVector& RefVector::operator=(RefVector&& o) noexcept {
  if (this == &o) return *this;
  if (ctx_ != nullptr) ctx_->free(static_cast<double>(v_.size()) * 8.0);
  ctx_ = o.ctx_;
  v_ = std::move(o.v_);
  o.ctx_ = nullptr;
  o.v_.clear();
  return *this;
}

void RefVector::axpy(double a, const RefVector& x) {
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] += a * x.v_[i];
  ctx_->charge(static_cast<double>(v_.size()) * 24.0, 2.0 * static_cast<double>(v_.size()));
}

void RefVector::xpay(double a, const RefVector& x) {
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] = x.v_[i] + a * v_[i];
  ctx_->charge(static_cast<double>(v_.size()) * 24.0, 2.0 * static_cast<double>(v_.size()));
}

void RefVector::scale(double a) {
  for (auto& e : v_) e *= a;
  ctx_->charge(static_cast<double>(v_.size()) * 16.0, static_cast<double>(v_.size()));
}

void RefVector::iadd(const RefVector& x) {
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] += x.v_[i];
  ctx_->charge(static_cast<double>(v_.size()) * 24.0, static_cast<double>(v_.size()));
}

void RefVector::isub(const RefVector& x) {
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] -= x.v_[i];
  ctx_->charge(static_cast<double>(v_.size()) * 24.0, static_cast<double>(v_.size()));
}

void RefVector::imul(const RefVector& x) {
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] *= x.v_[i];
  ctx_->charge(static_cast<double>(v_.size()) * 24.0, static_cast<double>(v_.size()));
}

double RefVector::dot(const RefVector& x) const {
  double acc = 0;
  for (std::size_t i = 0; i < v_.size(); ++i) acc += v_[i] * x.v_[i];
  ctx_->charge(static_cast<double>(v_.size()) * 16.0, 2.0 * static_cast<double>(v_.size()));
  return acc;
}

double RefVector::norm() const {
  double acc = 0;
  for (double e : v_) acc += e * e;
  ctx_->charge(static_cast<double>(v_.size()) * 8.0, 2.0 * static_cast<double>(v_.size()));
  return std::sqrt(acc);
}

RefVector RefVector::add(const RefVector& x) const {
  RefVector r(*this);
  r.iadd(x);
  return r;
}

RefVector RefVector::sub(const RefVector& x) const {
  RefVector r(*this);
  r.isub(x);
  return r;
}

RefVector RefVector::mul(const RefVector& x) const {
  RefVector r(*this);
  r.imul(x);
  return r;
}

// ---------------------------------------------------------------------------
// RefCsr
// ---------------------------------------------------------------------------

RefCsr::RefCsr(RefContext& ctx, coord_t rows, coord_t cols,
               std::vector<coord_t> indptr, std::vector<coord_t> indices,
               std::vector<double> values)
    : ctx_(&ctx),
      rows_(rows),
      cols_(cols),
      indptr_(std::move(indptr)),
      indices_(std::move(indices)),
      values_(std::move(values)) {
  ctx_->alloc(bytes());
}

RefCsr::~RefCsr() {
  if (ctx_ != nullptr) ctx_->free(bytes());
}

RefCsr::RefCsr(const RefCsr& o)
    : ctx_(o.ctx_),
      rows_(o.rows_),
      cols_(o.cols_),
      indptr_(o.indptr_),
      indices_(o.indices_),
      values_(o.values_) {
  if (ctx_ != nullptr) ctx_->alloc(bytes());
}

RefCsr& RefCsr::operator=(const RefCsr& o) {
  if (this == &o) return *this;
  if (ctx_ != nullptr) ctx_->free(bytes());
  ctx_ = o.ctx_;
  rows_ = o.rows_;
  cols_ = o.cols_;
  indptr_ = o.indptr_;
  indices_ = o.indices_;
  values_ = o.values_;
  if (ctx_ != nullptr) ctx_->alloc(bytes());
  return *this;
}

RefCsr::RefCsr(RefCsr&& o) noexcept
    : ctx_(o.ctx_),
      rows_(o.rows_),
      cols_(o.cols_),
      indptr_(std::move(o.indptr_)),
      indices_(std::move(o.indices_)),
      values_(std::move(o.values_)) {
  o.ctx_ = nullptr;
}

RefCsr& RefCsr::operator=(RefCsr&& o) noexcept {
  if (this == &o) return *this;
  if (ctx_ != nullptr) ctx_->free(bytes());
  ctx_ = o.ctx_;
  rows_ = o.rows_;
  cols_ = o.cols_;
  indptr_ = std::move(o.indptr_);
  indices_ = std::move(o.indices_);
  values_ = std::move(o.values_);
  o.ctx_ = nullptr;
  return *this;
}

RefVector RefCsr::spmv(const RefVector& x) const {
  RefVector y(*ctx_, rows_, 0.0);
  for (coord_t i = 0; i < rows_; ++i) {
    double acc = 0;
    for (coord_t j = indptr_[static_cast<std::size_t>(i)];
         j < indptr_[static_cast<std::size_t>(i) + 1]; ++j)
      acc += values_[static_cast<std::size_t>(j)] *
             x.data()[static_cast<std::size_t>(indices_[static_cast<std::size_t>(j)])];
    y.data()[static_cast<std::size_t>(i)] = acc;
  }
  double n = static_cast<double>(values_.size());
  ctx_->charge(n * 16.0 + static_cast<double>(rows_) * 16.0, 2.0 * n);
  return y;
}

std::vector<double> RefCsr::spmm(const std::vector<double>& b, coord_t k) const {
  std::vector<double> c(static_cast<std::size_t>(rows_ * k), 0.0);
  ctx_->alloc(static_cast<double>(c.size()) * 8.0);
  for (coord_t i = 0; i < rows_; ++i) {
    for (coord_t j = indptr_[static_cast<std::size_t>(i)];
         j < indptr_[static_cast<std::size_t>(i) + 1]; ++j) {
      double a = values_[static_cast<std::size_t>(j)];
      coord_t brow = indices_[static_cast<std::size_t>(j)];
      for (coord_t l = 0; l < k; ++l)
        c[static_cast<std::size_t>(i * k + l)] +=
            a * b[static_cast<std::size_t>(brow * k + l)];
    }
  }
  double n = static_cast<double>(values_.size());
  ctx_->charge(n * (16.0 + 8.0 * static_cast<double>(k)),
               2.0 * n * static_cast<double>(k));
  ctx_->free(static_cast<double>(c.size()) * 8.0);
  return c;
}

RefCsr RefCsr::sddmm(const std::vector<double>& b, const std::vector<double>& c,
                     coord_t k) const {
  std::vector<double> out(values_.size());
  for (coord_t i = 0; i < rows_; ++i) {
    for (coord_t j = indptr_[static_cast<std::size_t>(i)];
         j < indptr_[static_cast<std::size_t>(i) + 1]; ++j) {
      coord_t col = indices_[static_cast<std::size_t>(j)];
      double acc = 0;
      for (coord_t l = 0; l < k; ++l)
        acc += b[static_cast<std::size_t>(i * k + l)] *
               c[static_cast<std::size_t>(l * cols_ + col)];
      out[static_cast<std::size_t>(j)] = values_[static_cast<std::size_t>(j)] * acc;
    }
  }
  double n = static_cast<double>(values_.size());
  // CuPy must call cuSPARSE's SDDMM, which the paper found far slower than
  // the DISTAL-generated kernel.
  double eff = ctx_->device() == Device::CupyGpu
                   ? 1.0 / ctx_->params().cupy_sddmm_slowdown
                   : 1.0;
  ctx_->charge(n * (24.0 + 8.0 * static_cast<double>(k)),
               2.0 * n * static_cast<double>(k), eff);
  return RefCsr(*ctx_, rows_, cols_, indptr_, indices_, std::move(out));
}

RefCsr RefCsr::transpose() const {
  std::vector<coord_t> counts(static_cast<std::size_t>(cols_) + 1, 0);
  for (coord_t c : indices_) ++counts[static_cast<std::size_t>(c) + 1];
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  std::vector<coord_t> tind(indices_.size());
  std::vector<double> tval(values_.size());
  std::vector<coord_t> fill(counts.begin(), counts.end() - 1);
  for (coord_t i = 0; i < rows_; ++i) {
    for (coord_t j = indptr_[static_cast<std::size_t>(i)];
         j < indptr_[static_cast<std::size_t>(i) + 1]; ++j) {
      coord_t c = indices_[static_cast<std::size_t>(j)];
      coord_t slot = fill[static_cast<std::size_t>(c)]++;
      tind[static_cast<std::size_t>(slot)] = i;
      tval[static_cast<std::size_t>(slot)] = values_[static_cast<std::size_t>(j)];
    }
  }
  double n = static_cast<double>(values_.size());
  ctx_->charge(n * 48.0, n);
  return RefCsr(*ctx_, cols_, rows_, std::move(counts), std::move(tind),
                std::move(tval));
}

RefCsr RefCsr::spgemm(const RefCsr& b) const {
  std::vector<coord_t> indptr{0};
  std::vector<coord_t> indices;
  std::vector<double> values;
  std::map<coord_t, double> acc;
  double work = 0;
  for (coord_t i = 0; i < rows_; ++i) {
    acc.clear();
    for (coord_t j = indptr_[static_cast<std::size_t>(i)];
         j < indptr_[static_cast<std::size_t>(i) + 1]; ++j) {
      coord_t brow = indices_[static_cast<std::size_t>(j)];
      double av = values_[static_cast<std::size_t>(j)];
      for (coord_t l = b.indptr_[static_cast<std::size_t>(brow)];
           l < b.indptr_[static_cast<std::size_t>(brow) + 1]; ++l) {
        acc[b.indices_[static_cast<std::size_t>(l)]] +=
            av * b.values_[static_cast<std::size_t>(l)];
        work += 1;
      }
    }
    for (auto& [c, v] : acc) {
      indices.push_back(c);
      values.push_back(v);
    }
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  ctx_->charge(work * 32.0, 2.0 * work);
  return RefCsr(*ctx_, rows_, b.cols_, std::move(indptr), std::move(indices),
                std::move(values));
}

RefVector RefCsr::diagonal() const {
  RefVector d(*ctx_, rows_, 0.0);
  for (coord_t i = 0; i < std::min(rows_, cols_); ++i)
    for (coord_t j = indptr_[static_cast<std::size_t>(i)];
         j < indptr_[static_cast<std::size_t>(i) + 1]; ++j)
      if (indices_[static_cast<std::size_t>(j)] == i)
        d.data()[static_cast<std::size_t>(i)] += values_[static_cast<std::size_t>(j)];
  ctx_->charge(static_cast<double>(values_.size()) * 16.0,
               static_cast<double>(values_.size()));
  return d;
}

RefCsr RefCsr::scale(double a) const {
  std::vector<double> out = values_;
  for (auto& v : out) v *= a;
  ctx_->charge(static_cast<double>(out.size()) * 16.0, static_cast<double>(out.size()));
  return RefCsr(*ctx_, rows_, cols_, indptr_, indices_, std::move(out));
}

RefCsr RefCsr::add(const RefCsr& b) const {
  std::vector<coord_t> indptr{0};
  std::vector<coord_t> indices;
  std::vector<double> values;
  for (coord_t i = 0; i < rows_; ++i) {
    coord_t ja = indptr_[static_cast<std::size_t>(i)],
            jae = indptr_[static_cast<std::size_t>(i) + 1];
    coord_t jb = b.indptr_[static_cast<std::size_t>(i)],
            jbe = b.indptr_[static_cast<std::size_t>(i) + 1];
    while (ja < jae || jb < jbe) {
      coord_t ca = ja < jae ? indices_[static_cast<std::size_t>(ja)] : cols_;
      coord_t cb = jb < jbe ? b.indices_[static_cast<std::size_t>(jb)] : cols_;
      if (ca == cb) {
        indices.push_back(ca);
        values.push_back(values_[static_cast<std::size_t>(ja++)] +
                         b.values_[static_cast<std::size_t>(jb++)]);
      } else if (ca < cb) {
        indices.push_back(ca);
        values.push_back(values_[static_cast<std::size_t>(ja++)]);
      } else {
        indices.push_back(cb);
        values.push_back(b.values_[static_cast<std::size_t>(jb++)]);
      }
    }
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  double n = static_cast<double>(values_.size() + b.values_.size());
  ctx_->charge(n * 32.0, n);
  return RefCsr(*ctx_, rows_, cols_, std::move(indptr), std::move(indices),
                std::move(values));
}

}  // namespace legate::baselines::ref
