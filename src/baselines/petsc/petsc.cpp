#include "baselines/petsc/petsc.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace legate::baselines::petsc {

namespace {

std::vector<coord_t> even_offsets(coord_t n, int ranks) {
  std::vector<coord_t> off(static_cast<std::size_t>(ranks) + 1, 0);
  coord_t base = n / ranks, rem = n % ranks;
  for (int r = 0; r < ranks; ++r) {
    off[static_cast<std::size_t>(r) + 1] =
        off[static_cast<std::size_t>(r)] + base + (r < rem ? 1 : 0);
  }
  return off;
}

}  // namespace

// ---------------------------------------------------------------------------
// Vec
// ---------------------------------------------------------------------------

Vec::Vec(mpisim::MpiSim& sim, coord_t n, double fill) : sim_(&sim), n_(n) {
  offsets_ = even_offsets(n, sim.nranks());
  local_.resize(static_cast<std::size_t>(sim.nranks()));
  for (int r = 0; r < sim.nranks(); ++r) {
    auto sz = static_cast<std::size_t>(row_hi(r) - row_lo(r));
    local_[static_cast<std::size_t>(r)].assign(sz, fill);
    sim.alloc(r, static_cast<double>(sz) * 8.0);
  }
}

Vec::Vec(mpisim::MpiSim& sim, const std::vector<double>& global)
    : Vec(sim, static_cast<coord_t>(global.size())) {
  for (int r = 0; r < sim.nranks(); ++r) {
    std::copy(global.begin() + row_lo(r), global.begin() + row_hi(r),
              local_[static_cast<std::size_t>(r)].begin());
  }
}

std::vector<double> Vec::gather() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n_));
  for (const auto& l : local_) out.insert(out.end(), l.begin(), l.end());
  return out;
}

void Vec::axpy(double a, const Vec& x) {
  for (int r = 0; r < sim_->nranks(); ++r) {
    auto& y = local_[static_cast<std::size_t>(r)];
    const auto& xs = x.local_[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += a * xs[i];
    sim_->compute(r, static_cast<double>(y.size()) * 24.0,
                  2.0 * static_cast<double>(y.size()));
  }
}

void Vec::xpay(double a, const Vec& x) {
  for (int r = 0; r < sim_->nranks(); ++r) {
    auto& y = local_[static_cast<std::size_t>(r)];
    const auto& xs = x.local_[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = xs[i] + a * y[i];
    sim_->compute(r, static_cast<double>(y.size()) * 24.0,
                  2.0 * static_cast<double>(y.size()));
  }
}

void Vec::scale(double a) {
  for (int r = 0; r < sim_->nranks(); ++r) {
    auto& y = local_[static_cast<std::size_t>(r)];
    for (auto& v : y) v *= a;
    sim_->compute(r, static_cast<double>(y.size()) * 16.0,
                  static_cast<double>(y.size()));
  }
}

void Vec::copy_from(const Vec& x) {
  for (int r = 0; r < sim_->nranks(); ++r) {
    local_[static_cast<std::size_t>(r)] = x.local_[static_cast<std::size_t>(r)];
    sim_->compute(r, static_cast<double>(local_[static_cast<std::size_t>(r)].size()) * 16.0, 0);
  }
}

double Vec::dot(const Vec& x) const {
  double acc = 0;
  for (int r = 0; r < sim_->nranks(); ++r) {
    const auto& y = local_[static_cast<std::size_t>(r)];
    const auto& xs = x.local_[static_cast<std::size_t>(r)];
    double part = 0;
    for (std::size_t i = 0; i < y.size(); ++i) part += y[i] * xs[i];
    acc += part;
    sim_->compute(r, static_cast<double>(y.size()) * 16.0,
                  2.0 * static_cast<double>(y.size()));
  }
  sim_->allreduce_scalar();
  return acc;
}

double Vec::norm() const { return std::sqrt(dot(*this)); }

// ---------------------------------------------------------------------------
// Mat
// ---------------------------------------------------------------------------

Mat::Mat(mpisim::MpiSim& sim, coord_t rows, coord_t cols,
         const std::vector<coord_t>& indptr, const std::vector<coord_t>& indices,
         const std::vector<double>& values)
    : sim_(&sim), rows_(rows), cols_(cols) {
  int ranks = sim.nranks();
  row_off_ = even_offsets(rows, ranks);
  col_off_ = even_offsets(cols, ranks);
  blocks_.resize(static_cast<std::size_t>(ranks));

  auto col_owner = [&](coord_t c) {
    int r = static_cast<int>(std::upper_bound(col_off_.begin(), col_off_.end(), c) -
                             col_off_.begin()) -
            1;
    return r;
  };

  for (int r = 0; r < ranks; ++r) {
    RankBlock& blk = blocks_[static_cast<std::size_t>(r)];
    std::unordered_map<coord_t, coord_t> ghost_slot;
    blk.dia_ptr.push_back(0);
    blk.off_ptr.push_back(0);
    for (coord_t i = row_off_[static_cast<std::size_t>(r)];
         i < row_off_[static_cast<std::size_t>(r) + 1]; ++i) {
      for (coord_t j = indptr[static_cast<std::size_t>(i)];
           j < indptr[static_cast<std::size_t>(i) + 1]; ++j) {
        coord_t c = indices[static_cast<std::size_t>(j)];
        double v = values[static_cast<std::size_t>(j)];
        if (col_owner(c) == r) {
          blk.dia_idx.push_back(c - col_off_[static_cast<std::size_t>(r)]);
          blk.dia_val.push_back(v);
        } else {
          auto [it, inserted] =
              ghost_slot.emplace(c, static_cast<coord_t>(blk.ghosts.size()));
          if (inserted) blk.ghosts.push_back(c);
          blk.off_idx.push_back(it->second);
          blk.off_val.push_back(v);
        }
      }
      blk.dia_ptr.push_back(static_cast<coord_t>(blk.dia_idx.size()));
      blk.off_ptr.push_back(static_cast<coord_t>(blk.off_idx.size()));
    }
    double bytes = static_cast<double>(blk.dia_idx.size() + blk.off_idx.size()) * 16.0 +
                   static_cast<double>(blk.dia_ptr.size() + blk.off_ptr.size()) * 8.0;
    sim.alloc(r, bytes);
    // Scatter volume: ghosts grouped by owner rank.
    for (coord_t g : blk.ghosts) {
      scatter_bytes_[{col_owner(g), r}] += 8.0;
    }
  }
}

void Mat::mult(const Vec& x, Vec& y) const {
  int ranks = sim_->nranks();
  // VecScatter: gather ghost entries of x from their owners.
  sim_->exchange(scatter_bytes_);
  for (int r = 0; r < ranks; ++r) {
    const RankBlock& blk = blocks_[static_cast<std::size_t>(r)];
    const auto& xl = x.local(r);
    auto& yl = y.local(r);
    // Materialize ghost values (host-side: read directly from owner blocks).
    std::vector<double> ghost_vals(blk.ghosts.size());
    for (std::size_t g = 0; g < blk.ghosts.size(); ++g) {
      coord_t c = blk.ghosts[g];
      int owner = static_cast<int>(std::upper_bound(col_off_.begin(), col_off_.end(), c) -
                                   col_off_.begin()) -
                  1;
      ghost_vals[g] = x.local(owner)[static_cast<std::size_t>(
          c - col_off_[static_cast<std::size_t>(owner)])];
    }
    coord_t nrows = row_off_[static_cast<std::size_t>(r) + 1] -
                    row_off_[static_cast<std::size_t>(r)];
    for (coord_t i = 0; i < nrows; ++i) {
      double acc = 0;
      for (coord_t j = blk.dia_ptr[static_cast<std::size_t>(i)];
           j < blk.dia_ptr[static_cast<std::size_t>(i) + 1]; ++j)
        acc += blk.dia_val[static_cast<std::size_t>(j)] *
               xl[static_cast<std::size_t>(blk.dia_idx[static_cast<std::size_t>(j)])];
      for (coord_t j = blk.off_ptr[static_cast<std::size_t>(i)];
           j < blk.off_ptr[static_cast<std::size_t>(i) + 1]; ++j)
        acc += blk.off_val[static_cast<std::size_t>(j)] *
               ghost_vals[static_cast<std::size_t>(blk.off_idx[static_cast<std::size_t>(j)])];
      yl[static_cast<std::size_t>(i)] = acc;
    }
    double nnz = static_cast<double>(blk.dia_val.size() + blk.off_val.size());
    sim_->compute(r, nnz * 16.0 + static_cast<double>(nrows) * 16.0, 2.0 * nnz);
  }
}

// ---------------------------------------------------------------------------
// KSP CG
// ---------------------------------------------------------------------------

KspResult ksp_cg(const Mat& A, const Vec& b, double tol, int maxiter) {
  mpisim::MpiSim& sim = b.sim();
  KspResult res;
  Vec x(sim, b.size(), 0.0);
  Vec r(sim, b.size());
  r.copy_from(b);
  Vec p(sim, b.size());
  p.copy_from(r);
  Vec Ap(sim, b.size());
  double bnorm = b.norm();
  if (bnorm == 0) bnorm = 1;
  double rr = r.dot(r);
  if (std::sqrt(rr) / bnorm < tol) {
    res.converged = true;
    res.x = x;
    return res;
  }
  for (int it = 0; it < maxiter; ++it) {
    A.mult(p, Ap);
    double pAp = p.dot(Ap);
    double alpha = rr / pAp;
    x.axpy(alpha, p);
    r.axpy(-alpha, Ap);
    double rr_new = r.dot(r);
    res.iterations = it + 1;
    res.residual = std::sqrt(rr_new);
    if (res.residual / bnorm < tol) {
      res.converged = true;
      break;
    }
    p.xpay(rr_new / rr, r);
    rr = rr_new;
  }
  res.x = x;
  return res;
}

}  // namespace legate::baselines::petsc
