#pragma once

#include <map>
#include <vector>

#include "baselines/mpisim/mpisim.h"

namespace legate::baselines::petsc {

/// PETSc-style distributed vector: a contiguous row block per rank.
class Vec {
 public:
  Vec() = default;
  Vec(mpisim::MpiSim& sim, coord_t n, double fill = 0.0);
  /// Scatter host data into rank-local blocks.
  Vec(mpisim::MpiSim& sim, const std::vector<double>& global);

  [[nodiscard]] coord_t size() const { return n_; }
  [[nodiscard]] coord_t row_lo(int rank) const { return offsets_[static_cast<std::size_t>(rank)]; }
  [[nodiscard]] coord_t row_hi(int rank) const { return offsets_[static_cast<std::size_t>(rank) + 1]; }
  [[nodiscard]] std::vector<double>& local(int rank) { return local_[static_cast<std::size_t>(rank)]; }
  [[nodiscard]] const std::vector<double>& local(int rank) const {
    return local_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::vector<double> gather() const;

  // BLAS-1, each charged per rank then (for reductions) all-reduced.
  void axpy(double a, const Vec& x);
  void xpay(double a, const Vec& x);  ///< this = x + a*this
  void scale(double a);
  void copy_from(const Vec& x);
  [[nodiscard]] double dot(const Vec& x) const;
  [[nodiscard]] double norm() const;

  [[nodiscard]] mpisim::MpiSim& sim() const { return *sim_; }

 private:
  mpisim::MpiSim* sim_{nullptr};
  coord_t n_{0};
  std::vector<coord_t> offsets_;  // nranks+1
  std::vector<std::vector<double>> local_;
};

/// PETSc MPIAIJ-style distributed CSR: each rank holds its row block split
/// into a diagonal block (columns it owns) and an off-diagonal block whose
/// columns are compacted through a column map; MatMult scatters the needed
/// remote x entries first (VecScatter), exactly PETSc's structure.
class Mat {
 public:
  Mat() = default;
  /// Build from global host CSR arrays, partitioning rows evenly.
  Mat(mpisim::MpiSim& sim, coord_t rows, coord_t cols,
      const std::vector<coord_t>& indptr, const std::vector<coord_t>& indices,
      const std::vector<double>& values);

  [[nodiscard]] coord_t rows() const { return rows_; }
  [[nodiscard]] coord_t cols() const { return cols_; }

  /// y = A x with halo exchange.
  void mult(const Vec& x, Vec& y) const;

  /// Bytes moved per (src,dst) pair in one halo exchange (diagnostics).
  [[nodiscard]] const std::map<std::pair<int, int>, double>& scatter_bytes() const {
    return scatter_bytes_;
  }

 private:
  struct RankBlock {
    // Diagonal block: local columns, rebased.
    std::vector<coord_t> dia_ptr, dia_idx;
    std::vector<double> dia_val;
    // Off-diagonal block: columns compacted via ghost list.
    std::vector<coord_t> off_ptr, off_idx;
    std::vector<double> off_val;
    std::vector<coord_t> ghosts;  // global column id per compacted index
  };

  mpisim::MpiSim* sim_{nullptr};
  coord_t rows_{0}, cols_{0};
  std::vector<coord_t> row_off_, col_off_;
  std::vector<RankBlock> blocks_;
  std::map<std::pair<int, int>, double> scatter_bytes_;
};

/// KSP conjugate-gradient solve, the paper's PETSc comparison point.
struct KspResult {
  Vec x;
  int iterations{0};
  double residual{0};
  bool converged{false};
};
KspResult ksp_cg(const Mat& A, const Vec& b, double tol = 1e-8, int maxiter = 1000);

}  // namespace legate::baselines::petsc
