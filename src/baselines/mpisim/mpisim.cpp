#include "baselines/mpisim/mpisim.h"

#include <algorithm>

namespace legate::baselines::mpisim {

MpiSim::MpiSim(sim::ProcKind kind, int nranks, const sim::PerfParams& pp)
    : machine_(kind == sim::ProcKind::GPU ? sim::Machine::gpus(nranks, pp)
                                          : sim::Machine::sockets(nranks, pp)),
      engine_(std::make_unique<sim::Engine>(machine_)),
      pp_(pp) {
  clock_.assign(static_cast<std::size_t>(machine_.num_procs()), 0.0);
}

void MpiSim::compute(int rank, double bytes, double flops, double efficiency) {
  sim::Cost c{bytes * engine_->cost_scale(), flops * engine_->cost_scale(), efficiency};
  // PETSc uses every core of the socket (no runtime-reserved cores).
  double t = engine_->cost_model().kernel_seconds(machine_.target(), c, 1.0);
  t += pp_.petsc_op_overhead;
  if (machine_.target() == sim::ProcKind::GPU) t += pp_.gpu_kernel_launch;
  double& clk = clock_[static_cast<std::size_t>(rank)];
  clk = engine_->busy_proc(rank, clk, t);
  engine_->note_task();
}

void MpiSim::exchange(const std::map<std::pair<int, int>, double>& bytes) {
  // All messages of the phase depart based on the pre-phase rank clocks;
  // only link/NIC contention serializes them. (Chaining each copy on the
  // destination's updated clock would falsely serialize the whole scatter.)
  std::vector<double> depart = clock_;
  double phase_end = 0;
  for (auto& [pair, b] : bytes) {
    auto [src, dst] = pair;
    if (src == dst || b <= 0) continue;
    int ms = machine_.proc(src).mem;
    int md = machine_.proc(dst).mem;
    double done = engine_->copy(ms, md, b, depart[static_cast<std::size_t>(src)]);
    phase_end = std::max(phase_end, done);
  }
  // Neighborhood collectives complete when every participant's data landed.
  for (auto& c : clock_) c = std::max(c, phase_end);
}

void MpiSim::allreduce_scalar() {
  double start = *std::max_element(clock_.begin(), clock_.end());
  double done = engine_->allreduce(nranks(), start, /*legate_style=*/false);
  for (auto& c : clock_) c = done;
}

void MpiSim::allreduce_bytes(double bytes) {
  double start = *std::max_element(clock_.begin(), clock_.end());
  double done = engine_->allreduce_bytes(nranks(), bytes, start, false);
  for (auto& c : clock_) c = done;
}

void MpiSim::barrier() {
  double mx = *std::max_element(clock_.begin(), clock_.end());
  for (auto& c : clock_) c = mx;
}

void MpiSim::alloc(int rank, double bytes) {
  engine_->alloc_bytes(machine_.proc(rank).mem, bytes);
}

void MpiSim::free(int rank, double bytes) {
  engine_->free_bytes(machine_.proc(rank).mem, bytes);
}

double MpiSim::makespan() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

}  // namespace legate::baselines::mpisim
