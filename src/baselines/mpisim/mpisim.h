#pragma once

#include <map>
#include <memory>
#include <vector>

#include "sim/engine.h"

namespace legate::baselines::mpisim {

/// SPMD rank simulator for the explicitly-parallel baselines (PETSc).
///
/// Ranks map one-to-one onto the processors of a Summit-like Machine (one
/// rank per GPU in GPU mode, one per socket in CPU mode, the configurations
/// the paper compares against). Leaf computation is executed sequentially on
/// the host but charged to the owning rank's clock; point-to-point messages
/// and collectives go through the same Engine link model as the runtime, so
/// both systems see identical hardware.
class MpiSim {
 public:
  MpiSim(sim::ProcKind kind, int nranks, const sim::PerfParams& pp);

  [[nodiscard]] int nranks() const { return machine_.num_procs(); }
  [[nodiscard]] sim::ProcKind kind() const { return machine_.target(); }
  [[nodiscard]] const sim::Machine& machine() const { return machine_; }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }

  /// Charge a local kernel to `rank` (includes the per-op library overhead).
  void compute(int rank, double bytes, double flops, double efficiency = 1.0);

  /// Point-to-point exchange phase: `bytes[src][dst]` transferred between
  /// rank pairs; all ranks synchronize at the end (a neighborhood
  /// collective, like PETSc's VecScatter).
  void exchange(const std::map<std::pair<int, int>, double>& bytes);

  /// Small all-reduce (dot products): MPI log-tree cost; synchronizes ranks.
  void allreduce_scalar();
  /// All-reduce carrying a payload per rank (dense gradients).
  void allreduce_bytes(double bytes);

  /// Synchronize all rank clocks to the max (barrier).
  void barrier();

  /// Device-memory accounting per rank (GPU OOM behaviour).
  void alloc(int rank, double bytes);
  void free(int rank, double bytes);

  [[nodiscard]] double now(int rank) const { return clock_[static_cast<std::size_t>(rank)]; }
  [[nodiscard]] double makespan() const;

 private:
  sim::Machine machine_;
  std::unique_ptr<sim::Engine> engine_;
  sim::PerfParams pp_;
  std::vector<double> clock_;
};

}  // namespace legate::baselines::mpisim
