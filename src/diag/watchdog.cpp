#include "diag/watchdog.h"

#include <cstdio>

namespace legate::diag {

Watchdog::Watchdog(FlightRecorder& rec, Options opts)
    : rec_(rec), opts_(std::move(opts)) {
  thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, std::chrono::duration<double>(opts_.poll_interval_s),
                 [this] { return stop_; });
    if (stop_) return;
    lk.unlock();
    sample();
    lk.lock();
  }
}

void Watchdog::sample() {
  const std::uint64_t progress = rec_.progress_count();
  const double now = rec_.wall_now();
  if (progress != last_progress_ || stuck_since_ < 0) {
    last_progress_ = progress;
    stuck_since_ = now;
    tripped_ = false;
  }
  const FlightRecorder::Board bd = rec_.board();
  const PoolStatus pool = rec_.pool_status();
  const bool busy = bd.active || bd.pending > 0 ||
                    (pool.valid && (pool.running > 0 || pool.queued > 0));
  if (!busy) {
    // Idle is not a stall: re-arm so a later burst gets the full deadline.
    stuck_since_ = now;
    tripped_ = false;
    return;
  }
  if (tripped_ || now - stuck_since_ < opts_.stall_deadline_s) return;
  tripped_ = true;
  const bool deadlock = pool.valid && pool.queued > 0 && pool.running == 0;
  char detail[160];
  std::snprintf(detail, sizeof detail,
                "no progress for %.3gs (progress=%llu queued=%ld running=%ld "
                "pending=%ld active=%d)",
                now - stuck_since_,
                static_cast<unsigned long long>(progress), pool.queued,
                pool.running, bd.pending, bd.active ? 1 : 0);
  rec_.trip(deadlock ? "deadlock" : "stall", detail);
}

}  // namespace legate::diag
