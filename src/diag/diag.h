#pragma once

// legate::diag — always-on flight recorder, watchdog, and post-mortem dumps
// (lsr_diag). Third leg of the observability stack next to legate::prof
// (opt-in timelines) and legate::metrics (always-on aggregates): it answers
// "what was the system doing in the last N events before it died or hung?".
//
// Model: per-thread lock-free bounded ring buffers of compact structured
// events. The deterministic control path (the sequential launch replay)
// records into a dedicated "sim" ring; every other thread — pool workers,
// the watchdog itself — gets its own ring on first use. Writers are
// single-producer per ring and never block; readers (dumps) are rare,
// best-effort seqlock scans that can run while writers are live, which is
// exactly the post-mortem situation. Recording never touches simulated
// state, so simulated times, stats and every Stable metric are bit-identical
// with diag on or off (the determinism argument in DESIGN.md §14).
//
// Gate via rt::RuntimeOptions::diag or LSR_DIAG (`off|on|abort-on-hang`).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/metrics.h"

namespace legate::diag {

class Watchdog;

// ---------------------------------------------------------------------------
// Mode / options / logging
// ---------------------------------------------------------------------------

/// Diagnostics gate. `AbortOnHang` behaves like `On` but additionally calls
/// std::abort() after a stall/deadlock watchdog trip has written its dump.
enum class Mode {
  Unset,  ///< read LSR_DIAG (`off|on|abort-on-hang`), defaulting to Off
  Off,
  On,
  AbortOnHang,
};

/// Parse `off|0|on|1|abort-on-hang|abort` (anything else = Unset → default).
[[nodiscard]] Mode parse_mode(const char* s);
[[nodiscard]] const char* mode_name(Mode m);

/// Stderr verbosity of the diag subsystem (watchdog trips, dump paths).
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

[[nodiscard]] LogLevel parse_log_level(const char* s);
/// Process-wide level; initialized from LSR_DIAG_LOG (default warn).
void set_log_level(LogLevel lvl);
[[nodiscard]] LogLevel log_level();
/// printf-style message to stderr when `lvl` <= the active level.
void logf(LogLevel lvl, const char* fmt, ...);

/// Recorder / watchdog tuning. Tests set fields directly; CLI users tune via
/// the LSR_DIAG_* environment variables (see from_env).
struct Options {
  /// Events retained per ring (rounded up to a power of two). The sim ring
  /// and every per-thread ring use the same bound.
  std::size_t ring_capacity{4096};
  /// Run the background watchdog thread (stall / deadlock detection).
  bool watchdog{true};
  /// Wall seconds without progress while work is pending before the
  /// watchdog declares a stall.
  double stall_deadline_s{5.0};
  /// Watchdog sampling period (wall seconds).
  double poll_interval_s{0.05};
  /// Solver iterations without a relative residual improvement of at least
  /// `divergence_rtol` before the divergence watchdog trips.
  int divergence_window{100};
  double divergence_rtol{1e-3};
  /// Write a post-mortem dump when a watchdog (stall/deadlock/divergence)
  /// trips.
  bool dump_on_trip{true};
  /// Directory for lsr_dump_<ts>.json files; empty = LSR_DIAG_DIR, else ".".
  std::string dump_dir{};

  /// Defaults overlaid with LSR_DIAG_RING / LSR_DIAG_STALL_S /
  /// LSR_DIAG_POLL_S / LSR_DIAG_DIVERGENCE_WINDOW / LSR_DIAG_DIR.
  [[nodiscard]] static Options from_env();
};

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What a flight-recorder event records. Kinds tagged [stable] are only ever
/// recorded on the deterministic control path (FlightRecorder::record);
/// the rest may come from any thread (record_thread).
enum class EventKind : std::uint8_t {
  Launch,        ///< [stable] a launch entered the simulated replay
  Retire,        ///< [stable] the launch's replay finished (v = sim done)
  LeafExec,      ///< real leaf bodies of a launch ran (worker or control)
  Fence,         ///< a pipeline drain completed (a = launches replayed)
  WindowFlush,   ///< [stable] a fusion window flushed (a = window size)
  FuseDecision,  ///< [stable] fusion verdict (a = folded, b = eliminated)
  Copy,          ///< [stable] simulated copy (a = src mem, b = dst, v = bytes)
  Fault,         ///< [stable] fault injected
  Retry,         ///< [stable] point-task retry scheduled
  NodeLoss,      ///< [stable] whole-node loss (a = node)
  Checkpoint,    ///< [stable] checkpoint write (v = bytes)
  Restore,       ///< [stable] restore read (v = bytes)
  Integrity,     ///< [stable] integrity verdict (a: 0 inj / 1 det / 2 rec)
  Poison,        ///< [stable] a store was poisoned (a = store id)
  SolverIter,    ///< [stable] solver iteration (a = iter, v = residual)
  Spill,         ///< [stable] allocation spilled under OOM pressure
  Comm,          ///< [stable] exchange plan applied (a = transfers, b = 1 hit / 0 miss, v = bytes)
  Stall,         ///< an injected/observed execution stall (v = seconds)
  WatchdogTrip,  ///< a watchdog fired (label = stall|deadlock|divergence)
  Dump,          ///< a post-mortem dump was written
  Mark,          ///< generic marker
};

[[nodiscard]] const char* event_kind_name(EventKind k);

/// One compact recorded event; 80 bytes, trivially copyable (events are
/// serialized through the ring slots as raw 64-bit words).
struct Event {
  double t_sim{-1};      ///< simulated seconds at record time; -1 off-path
  double wall{0};        ///< wall seconds since the recorder epoch
  std::uint64_t seq{0};  ///< global record order (monotone across rings)
  std::int64_t a{0};     ///< payload (node, store id, colors, iteration, ...)
  std::int64_t b{0};
  double v{0};           ///< payload value (bytes, residual, seconds)
  EventKind kind{EventKind::Mark};
  char label[31]{};      ///< truncated NUL-terminated name
};
static_assert(sizeof(Event) == 80, "Event must stay 10 words");
static_assert(std::is_trivially_copyable_v<Event>);

// ---------------------------------------------------------------------------
// Ring — bounded single-producer ring of events with seqlock slots
// ---------------------------------------------------------------------------

/// Bounded overwrite-oldest event ring. push() is owner-thread only and
/// lock-free; drain() may run from any thread concurrently with the writer
/// (per-slot seqlock: torn slots are skipped, which is acceptable for the
/// post-mortem read side). All payload accesses go through atomics, so
/// concurrent drains are data-race-free (TSan-clean) by construction.
class Ring {
 public:
  Ring(std::size_t capacity, std::string name);

  /// Append one event, overwriting the oldest when full. Owner thread only.
  /// Returns true when the push overwrote a live (post-floor) event — i.e.
  /// the bounded ring dropped history.
  bool push(const Event& e);

  /// Copy out the resident events, oldest first, skipping any slot the
  /// writer is mid-update on. Safe from any thread. Events with seq below
  /// `min_seq` are filtered (Engine::reset raises the floor instead of
  /// touching live slots).
  [[nodiscard]] std::vector<Event> drain(std::uint64_t min_seq = 0) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t pushed() const {
    return head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Events currently resident above the floor (bounded by capacity).
  [[nodiscard]] std::uint64_t resident() const;
  /// Declare the ring logically empty without touching live slots (reset).
  void set_floor_head();
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  static constexpr std::size_t kWords = sizeof(Event) / sizeof(std::uint64_t);
  struct Slot {
    std::atomic<std::uint64_t> sq{0};
    std::atomic<std::uint64_t> w[kWords] = {};
  };

  std::string name_;
  std::size_t capacity_;  ///< power of two
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};        ///< next write position (monotone)
  std::atomic<std::uint64_t> floor_head_{0};  ///< head at the last reset
  std::atomic<std::uint64_t> dropped_{0};     ///< live events overwritten
};

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

/// Executor-pool status sampled by the watchdog (exec::Pool::status adapted;
/// `valid` is false when the runtime runs without a pool).
struct PoolStatus {
  long queued{0};     ///< tasks parked in the deques
  long running{0};    ///< tasks currently executing
  long completed{0};  ///< tasks finished since pool start
  bool valid{false};
};

/// Stable metric handles bumped by the recorder (registered by the Engine on
/// its registry; default-constructed handles are inert, so a bare recorder
/// needs no registry). See DESIGN.md §14 for the stability argument.
struct MetricHooks {
  metrics::Counter events_recorded;   ///< Stable: replay-path events
  metrics::Counter events_dropped;    ///< Stable: sim-ring overwrites
  metrics::Counter thread_events;     ///< Volatile: per-thread/wall events
  metrics::Counter thread_dropped;    ///< Volatile: thread-ring overwrites
  metrics::Counter watchdog_trips;    ///< Stable (zero in any healthy run)
  metrics::Counter dumps_written;     ///< Stable (zero in any healthy run)
  metrics::Gauge ring_high_water;     ///< Volatile: max events resident
};

/// The always-on flight recorder: owns the rings, the control-path "board"
/// (what is in flight right now), the watchdog, and the dump trigger state.
/// One recorder per sim::Engine, mirroring prof::Recorder and
/// metrics::Registry.
class FlightRecorder {
 public:
  FlightRecorder();
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// (Re)configure: sets mode/options, resets the wall epoch, and
  /// stops/starts the watchdog thread accordingly. Engine construction
  /// configures from the environment; rt::Runtime reconfigures from
  /// RuntimeOptions. Also installs the process fatal-signal dump handler
  /// the first time any recorder turns on.
  void configure(Mode mode, Options o);

  [[nodiscard]] bool enabled() const {
    return on_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] bool abort_on_hang() const { return mode_ == Mode::AbortOnHang; }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// Wall seconds since the recorder epoch (configure time).
  [[nodiscard]] double wall_now() const;

  // -- recording ------------------------------------------------------------
  /// Record a deterministic replay-path event into the sim ring. Control
  /// thread only (the sequential launch replay); counted by the Stable
  /// lsr_diag_events_recorded/_dropped metrics. `t_sim` is read from the
  /// engine's makespan via set_sim_clock.
  void record(EventKind k, std::string_view label, std::int64_t a = 0,
              std::int64_t b = 0, double v = 0);
  /// Record a wall-clock event from any thread into that thread's ring
  /// (created on first use). Counted by the Volatile thread-event metrics.
  void record_thread(EventKind k, std::string_view label, std::int64_t a = 0,
                     std::int64_t b = 0, double v = 0);

  /// Bind the simulated clock sampled by record(). The pointee is only read
  /// on the control thread (record() is control-path only), so no
  /// synchronization is needed.
  void set_sim_clock(const double* makespan) { sim_clock_ = makespan; }

  // -- control-path board (what is in flight right now) ----------------------
  /// Mark a launch as entering / leaving the sequential replay. The board is
  /// what dumps report as the suspect in-flight launch.
  void begin_launch(std::string_view name, long pending);
  void end_launch();
  void note_window(std::size_t open_window);
  void note_poison(std::uint64_t store);
  void note_node_loss(int node);
  void note_partition_nnz(bool nnz);

  struct Board {
    std::string last_launch;      ///< name of the most recent replayed launch
    bool active{false};           ///< a launch is inside the replay right now
    long pending{0};              ///< deferred launches at last begin_launch
    long launches{0};             ///< launches replayed so far
    std::size_t window{0};        ///< open fusion-window size
    long poisoned{0};             ///< stores poisoned so far
    std::uint64_t last_poisoned{0};
    int lost_node{-1};
    bool partition_nnz{false};
  };
  [[nodiscard]] Board board() const;

  // -- watchdog feed ---------------------------------------------------------
  /// Bumped whenever forward progress happens (a launch replayed, a leaf
  /// batch finished, a fence drained). The watchdog trips when this counter
  /// stops moving while work is pending.
  void progress() { progress_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t progress_count() const {
    return progress_.load(std::memory_order_relaxed);
  }
  /// Executor-pool probe for deadlock classification; pass nullptr before
  /// destroying the pool. Blocks until any in-flight watchdog sample that
  /// uses the previous probe has finished.
  void set_pool_status(std::function<PoolStatus()> fn);
  [[nodiscard]] PoolStatus pool_status() const;

  /// A watchdog fired (`what` = stall|deadlock|divergence): records the
  /// event, bumps the trip metric, logs, writes a dump (per options), and —
  /// for stall/deadlock under AbortOnHang — aborts the process.
  void trip(const char* what, std::string_view detail);
  [[nodiscard]] std::uint64_t trips() const {
    return trips_.load(std::memory_order_relaxed);
  }

  // -- drains & dumps --------------------------------------------------------
  struct Drained {
    std::vector<std::string> rings;  ///< ring names, index referenced below
    /// (ring index, event), merged across rings and sorted by (wall, seq)
    /// so dump timelines are monotonic even when rings drain out of order.
    std::vector<std::pair<int, Event>> events;
  };
  [[nodiscard]] Drained drain() const;

  /// Serialize the drained recorder, a metrics snapshot, the board, and the
  /// pool status into a versioned lsr_dump_<ts>.json in the dump directory.
  /// Returns the path ("" on write failure). Safe from any thread.
  std::string dump(const std::string& reason);
  [[nodiscard]] std::uint64_t dumps_written() const {
    return dumps_.load(std::memory_order_relaxed);
  }

  /// Metrics registry snapshotted into dumps (the engine's).
  void set_registry(const metrics::Registry* reg) { registry_ = reg; }
  void set_metrics(MetricHooks m) { met_ = m; }

  /// Drain-and-drop for Engine::reset: runs the flush sink (if any events
  /// are resident), raises the event floor so drains start empty, resets the
  /// board, and joins + restarts the watchdog so no background thread leaks
  /// across resets (the prof flush-sink contract, extended to threads).
  void reset();

  /// Install a pre-reset export hook (mirrors prof::Recorder).
  void set_flush_sink(std::function<void(FlightRecorder&)> sink) {
    flush_sink_ = std::move(sink);
  }

  /// Total events pushed across all rings (diagnostic/test hook).
  [[nodiscard]] std::uint64_t events_recorded() const;

 private:
  friend class Watchdog;
  Ring* thread_ring();
  void start_watchdog();
  void stop_watchdog();
  void update_high_water();

  std::atomic<bool> on_{false};
  Mode mode_{Mode::Off};
  Options opts_{};
  const double* sim_clock_{nullptr};
  std::chrono::steady_clock::time_point epoch_{};
  std::uint64_t uid_{0};  ///< process-unique id keying thread-local caches

  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> floor_{0};  ///< reset() raises; drains filter
  mutable std::mutex rings_mu_;          ///< guards ring registration
  std::unique_ptr<Ring> sim_ring_;
  std::vector<std::unique_ptr<Ring>> thread_rings_;

  mutable std::mutex board_mu_;
  Board board_;

  std::atomic<std::uint64_t> progress_{0};
  std::atomic<std::uint64_t> trips_{0};
  std::atomic<std::uint64_t> dumps_{0};
  mutable std::mutex pool_mu_;
  std::function<PoolStatus()> pool_status_;

  std::unique_ptr<Watchdog> watchdog_;
  std::mutex dump_mu_;
  const metrics::Registry* registry_{nullptr};
  MetricHooks met_{};
  std::function<void(FlightRecorder&)> flush_sink_;
};

// ---------------------------------------------------------------------------
// DivergenceGuard — deterministic solver-stagnation watchdog
// ---------------------------------------------------------------------------

/// Control-thread divergence/stagnation detector fed by solver telemetry:
/// trips when the best residual has not improved by `divergence_rtol`
/// (relative) for `divergence_window` consecutive iterations. Runs on the
/// sequential control path against bit-identical residuals, so trip counts
/// are deterministic at any exec thread count (unlike the wall-clock
/// watchdog). A non-finite residual (breakdown) never counts as progress.
class DivergenceGuard {
 public:
  DivergenceGuard(FlightRecorder& rec, const char* solver)
      : rec_(rec), solver_(solver) {}

  /// Observe one iteration's residual; returns true if this call tripped.
  bool observe(int iteration, double residual);

  [[nodiscard]] bool tripped() const { return tripped_; }

 private:
  FlightRecorder& rec_;
  const char* solver_;
  double best_{-1};
  int since_improve_{0};
  bool tripped_{false};
};

}  // namespace legate::diag
