#include "diag/dump.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <vector>

#include "diag/diag.h"

namespace legate::diag {

// ---------------------------------------------------------------------------
// JSON helpers (append into a growing string; doubles with round-trip
// precision, shared string escaping from lsr_metrics)
// ---------------------------------------------------------------------------

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_kv(std::string& out, const char* key, const std::string& v,
               bool comma = true) {
  metrics::append_json_string(out, key);
  out += ':';
  metrics::append_json_string(out, v);
  if (comma) out += ',';
}

void append_kv(std::string& out, const char* key, double v, bool comma = true) {
  metrics::append_json_string(out, key);
  out += ':';
  append_double(out, v);
  if (comma) out += ',';
}

void append_kv(std::string& out, const char* key, long long v,
               bool comma = true) {
  metrics::append_json_string(out, key);
  out += ':';
  out += std::to_string(v);
  if (comma) out += ',';
}

void append_kv(std::string& out, const char* key, bool v, bool comma = true) {
  metrics::append_json_string(out, key);
  out += v ? ":true" : ":false";
  if (comma) out += ',';
}

std::string dump_file_name(std::uint64_t ordinal) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(now);
  char buf[96];
  std::snprintf(buf, sizeof buf, "lsr_dump_%lld_%llu.json",
                static_cast<long long>(ns.count()),
                static_cast<unsigned long long>(ordinal));
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// FlightRecorder::dump
// ---------------------------------------------------------------------------

std::string FlightRecorder::dump(const std::string& reason) {
  std::lock_guard<std::mutex> lk(dump_mu_);
  const Drained d = drain();
  const Board bd = board();
  const PoolStatus pool = pool_status();

  std::string j;
  j.reserve(4096 + d.events.size() * 140);
  j += '{';
  append_kv(j, "schema", static_cast<long long>(kDumpSchema));
  append_kv(j, "tool", std::string("lsr_diag"));
  append_kv(j, "reason", reason);
  append_kv(j, "mode", std::string(mode_name(mode_)));
  append_kv(j, "wall_seconds", wall_now());
  if (sim_clock_ != nullptr) append_kv(j, "sim_seconds", *sim_clock_);

  // The suspect block is what diagnose.py leads with: the launch that was in
  // flight (or most recently replayed), the node lost to fault injection (or
  // the home node when none was), and the last poisoned store if any.
  j += "\"suspect\":{";
  append_kv(j, "launch", bd.last_launch);
  append_kv(j, "active", bd.active);
  append_kv(j, "node",
            static_cast<long long>(bd.lost_node >= 0 ? bd.lost_node : 0));
  append_kv(j, "node_lost", bd.lost_node >= 0);
  if (bd.poisoned > 0)
    append_kv(j, "store", static_cast<long long>(bd.last_poisoned));
  append_kv(j, "pending", static_cast<long long>(bd.pending), false);
  j += "},";

  j += "\"board\":{";
  append_kv(j, "last_launch", bd.last_launch);
  append_kv(j, "active", bd.active);
  append_kv(j, "pending", static_cast<long long>(bd.pending));
  append_kv(j, "launches", static_cast<long long>(bd.launches));
  append_kv(j, "open_window", static_cast<long long>(bd.window));
  append_kv(j, "partition",
            std::string(bd.partition_nnz ? "nnz-balanced" : "row-blocks"));
  append_kv(j, "poisoned_stores", static_cast<long long>(bd.poisoned));
  append_kv(j, "last_poisoned_store", static_cast<long long>(bd.last_poisoned));
  append_kv(j, "lost_node", static_cast<long long>(bd.lost_node), false);
  j += "},";

  j += "\"pool\":{";
  append_kv(j, "valid", pool.valid);
  append_kv(j, "queued", static_cast<long long>(pool.queued));
  append_kv(j, "running", static_cast<long long>(pool.running));
  append_kv(j, "completed", static_cast<long long>(pool.completed), false);
  j += "},";

  j += "\"counters\":{";
  append_kv(j, "events_total",
            static_cast<long long>(events_recorded()));
  append_kv(j, "watchdog_trips", static_cast<long long>(trips()));
  append_kv(j, "dumps_written", static_cast<long long>(dumps_written()), false);
  j += "},";

  j += "\"rings\":[";
  for (std::size_t i = 0; i < d.rings.size(); ++i) {
    if (i > 0) j += ',';
    metrics::append_json_string(j, d.rings[i]);
  }
  j += "],";

  // Events merged across rings, already sorted by (wall, seq) in drain(), so
  // the timeline reads monotonically.
  j += "\"events\":[";
  for (std::size_t i = 0; i < d.events.size(); ++i) {
    if (i > 0) j += ',';
    const Event& e = d.events[i].second;
    j += '{';
    append_kv(j, "ring", static_cast<long long>(d.events[i].first));
    append_kv(j, "seq", static_cast<long long>(e.seq));
    append_kv(j, "wall", e.wall);
    append_kv(j, "sim", e.t_sim);
    append_kv(j, "kind", std::string(event_kind_name(e.kind)));
    append_kv(j, "label", std::string(e.label));
    append_kv(j, "a", static_cast<long long>(e.a));
    append_kv(j, "b", static_cast<long long>(e.b));
    append_kv(j, "v", e.v, false);
    j += '}';
  }
  j += "],";

  metrics::append_json_string(j, "metrics");
  j += ':';
  j += registry_ != nullptr ? registry_->snapshot().to_json(false) : "null";
  j += '}';

  std::string dir = opts_.dump_dir.empty() ? "." : opts_.dump_dir;
  ::mkdir(dir.c_str(), 0777);  // best effort; EEXIST is the common case
  const std::string path =
      dir + "/" + dump_file_name(dumps_.load(std::memory_order_relaxed));
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    logf(LogLevel::Warn, "failed to open dump file %s", path.c_str());
    return "";
  }
  const std::size_t wrote = std::fwrite(j.data(), 1, j.size(), f);
  std::fclose(f);
  if (wrote != j.size()) {
    logf(LogLevel::Warn, "short write on dump file %s", path.c_str());
    return "";
  }
  dumps_.fetch_add(1, std::memory_order_relaxed);
  met_.dumps_written.inc();
  record_thread(EventKind::Dump, reason);
  logf(LogLevel::Info, "wrote dump %s (%zu events, reason: %s)", path.c_str(),
       d.events.size(), reason.c_str());
  return path;
}

// ---------------------------------------------------------------------------
// Fatal-signal dumps
// ---------------------------------------------------------------------------

namespace {

std::mutex g_crash_mu;
std::vector<FlightRecorder*> g_crash_recorders;
std::atomic<bool> g_handlers_installed{false};
std::atomic<bool> g_fatal_dump_done{false};

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

void crash_handler(int sig) {
  // Restore default disposition first so any crash inside the handler (or
  // the re-raise below) terminates instead of recursing.
  std::signal(sig, SIG_DFL);
  if (!g_fatal_dump_done.exchange(true, std::memory_order_acq_rel)) {
    // Deliberately best-effort: this allocates and locks, which is not
    // async-signal-safe, but the process is dying anyway and a partial dump
    // beats none (the same trade every production failure handler makes).
    std::unique_lock<std::mutex> lk(g_crash_mu, std::try_to_lock);
    if (lk.owns_lock()) {
      for (FlightRecorder* rec : g_crash_recorders)
        rec->dump(std::string("fatal-signal-") + std::to_string(sig));
    }
  }
  std::raise(sig);
}

}  // namespace

void install_crash_dump_handler(FlightRecorder* rec) {
  {
    std::lock_guard<std::mutex> lk(g_crash_mu);
    if (std::find(g_crash_recorders.begin(), g_crash_recorders.end(), rec) ==
        g_crash_recorders.end())
      g_crash_recorders.push_back(rec);
  }
  if (!g_handlers_installed.exchange(true, std::memory_order_acq_rel))
    for (int sig : kFatalSignals) std::signal(sig, crash_handler);
}

void unregister_crash_dump(FlightRecorder* rec) {
  std::lock_guard<std::mutex> lk(g_crash_mu);
  g_crash_recorders.erase(
      std::remove(g_crash_recorders.begin(), g_crash_recorders.end(), rec),
      g_crash_recorders.end());
}

void note_fatal_dump_done() {
  g_fatal_dump_done.store(true, std::memory_order_release);
}

}  // namespace legate::diag
