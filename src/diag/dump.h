#pragma once

// Post-mortem dump plumbing for lsr_diag.
//
// FlightRecorder::dump (implemented in dump.cpp) serializes the drained
// rings, a metrics snapshot, the control-path board, and the executor-pool
// status into a versioned `lsr_dump_<ts>.json` that scripts/diagnose.py
// summarizes. This header carries the process-global fatal-signal hook: on
// SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT every live enabled recorder writes a
// best-effort dump before the default handler re-raises.

#include <string>

namespace legate::diag {

class FlightRecorder;

/// Dump-file schema version (the "schema" field in lsr_dump_*.json).
inline constexpr int kDumpSchema = 1;

/// Install the fatal-signal handlers once per process and register `rec` to
/// be dumped when one fires. Idempotent per recorder.
void install_crash_dump_handler(FlightRecorder* rec);

/// Drop `rec` from the fatal-signal registry (recorder destruction).
void unregister_crash_dump(FlightRecorder* rec);

/// Mark the fatal-state dump as already written, so an imminent abort (e.g.
/// LSR_DIAG=abort-on-hang after a watchdog trip already dumped) does not
/// produce a second dump from the SIGABRT handler.
void note_fatal_dump_done();

}  // namespace legate::diag
