#include "diag/diag.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "diag/dump.h"
#include "diag/watchdog.h"

namespace legate::diag {

// ---------------------------------------------------------------------------
// Mode / log level
// ---------------------------------------------------------------------------

namespace {

std::string lower(const char* s) {
  std::string out;
  for (; s != nullptr && *s != '\0'; ++s)
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*s))));
  return out;
}

}  // namespace

Mode parse_mode(const char* s) {
  if (s == nullptr) return Mode::Unset;
  std::string v = lower(s);
  if (v == "off" || v == "0" || v == "none") return Mode::Off;
  if (v == "on" || v == "1") return Mode::On;
  if (v == "abort-on-hang" || v == "abort_on_hang" || v == "abort")
    return Mode::AbortOnHang;
  return Mode::Unset;
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::Unset: return "unset";
    case Mode::Off: return "off";
    case Mode::On: return "on";
    case Mode::AbortOnHang: return "abort-on-hang";
  }
  return "?";
}

namespace {

std::atomic<int> g_log_level{-1};  // -1 = not yet initialized from env

int env_log_level() {
  int lvl = g_log_level.load(std::memory_order_relaxed);
  if (lvl >= 0) return lvl;
  lvl = static_cast<int>(parse_log_level(std::getenv("LSR_DIAG_LOG")));
  g_log_level.store(lvl, std::memory_order_relaxed);
  return lvl;
}

}  // namespace

LogLevel parse_log_level(const char* s) {
  if (s == nullptr) return LogLevel::Warn;
  std::string v = lower(s);
  if (v == "silent" || v == "off" || v == "0") return LogLevel::Silent;
  if (v == "warn" || v == "warning" || v == "1") return LogLevel::Warn;
  if (v == "info" || v == "2") return LogLevel::Info;
  if (v == "debug" || v == "3") return LogLevel::Debug;
  return LogLevel::Warn;
}

void set_log_level(LogLevel lvl) {
  g_log_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

LogLevel log_level() { return static_cast<LogLevel>(env_log_level()); }

void logf(LogLevel lvl, const char* fmt, ...) {
  if (static_cast<int>(lvl) > env_log_level() || lvl == LogLevel::Silent) return;
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[lsr_diag] %s\n", buf);
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

Options Options::from_env() {
  Options o;
  if (const char* e = std::getenv("LSR_DIAG_RING")) {
    long v = std::atol(e);
    if (v > 0) o.ring_capacity = static_cast<std::size_t>(v);
  }
  if (const char* e = std::getenv("LSR_DIAG_STALL_S")) {
    double v = std::atof(e);
    if (v > 0) o.stall_deadline_s = v;
  }
  if (const char* e = std::getenv("LSR_DIAG_POLL_S")) {
    double v = std::atof(e);
    if (v > 0) o.poll_interval_s = v;
  }
  if (const char* e = std::getenv("LSR_DIAG_DIVERGENCE_WINDOW")) {
    long v = std::atol(e);
    if (v > 0) o.divergence_window = static_cast<int>(v);
  }
  if (const char* e = std::getenv("LSR_DIAG_DIR")) o.dump_dir = e;
  return o;
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::Launch: return "launch";
    case EventKind::Retire: return "retire";
    case EventKind::LeafExec: return "leaf-exec";
    case EventKind::Fence: return "fence";
    case EventKind::WindowFlush: return "window-flush";
    case EventKind::FuseDecision: return "fuse-decision";
    case EventKind::Copy: return "copy";
    case EventKind::Fault: return "fault";
    case EventKind::Retry: return "retry";
    case EventKind::NodeLoss: return "node-loss";
    case EventKind::Checkpoint: return "checkpoint";
    case EventKind::Restore: return "restore";
    case EventKind::Integrity: return "integrity";
    case EventKind::Poison: return "poison";
    case EventKind::SolverIter: return "solver-iter";
    case EventKind::Spill: return "spill";
    case EventKind::Comm: return "comm";
    case EventKind::Stall: return "stall";
    case EventKind::WatchdogTrip: return "watchdog-trip";
    case EventKind::Dump: return "dump";
    case EventKind::Mark: return "mark";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

namespace {

std::size_t round_pow2(std::size_t v) {
  std::size_t p = 8;  // keep a usable minimum even for tiny test capacities
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

Ring::Ring(std::size_t capacity, std::string name)
    : name_(std::move(name)),
      capacity_(round_pow2(capacity)),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]) {}

bool Ring::push(const Event& e) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  const bool drop =
      h - floor_head_.load(std::memory_order_relaxed) >= capacity_;
  if (drop) dropped_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[h & mask_];
  std::uint64_t w[kWords];
  std::memcpy(w, &e, sizeof(Event));
  // Seqlock write (Boehm's recipe): odd marker, release fence, payload,
  // even marker with release. Readers that observe the even marker twice
  // around their payload loads got a consistent copy.
  s.sq.store(2 * h + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t i = 0; i < kWords; ++i)
    s.w[i].store(w[i], std::memory_order_relaxed);
  s.sq.store(2 * h + 2, std::memory_order_release);
  head_.store(h + 1, std::memory_order_release);
  return drop;
}

std::uint64_t Ring::resident() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t f = floor_head_.load(std::memory_order_relaxed);
  const std::uint64_t n = h > f ? h - f : 0;
  return n < capacity_ ? n : capacity_;
}

void Ring::set_floor_head() {
  floor_head_.store(head_.load(std::memory_order_acquire),
                    std::memory_order_relaxed);
}

std::vector<Event> Ring::drain(std::uint64_t min_seq) const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t lo = h > capacity_ ? h - capacity_ : 0;
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(h - lo));
  for (std::uint64_t i = lo; i < h; ++i) {
    const Slot& s = slots_[i & mask_];
    Event e;
    bool ok = false;
    for (int attempt = 0; attempt < 3 && !ok; ++attempt) {
      const std::uint64_t q1 = s.sq.load(std::memory_order_acquire);
      if (q1 != 2 * i + 2) break;  // slot overwritten or mid-write; skip
      std::uint64_t w[kWords];
      for (std::size_t j = 0; j < kWords; ++j)
        w[j] = s.w[j].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t q2 = s.sq.load(std::memory_order_relaxed);
      if (q1 == q2) {
        std::memcpy(&e, w, sizeof(Event));
        ok = true;
      }
    }
    if (ok && e.seq >= min_seq) out.push_back(e);
  }
  return out;
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

namespace {

// Process-unique recorder ids; never reused, so a stale thread-local cache
// entry from a destroyed recorder can never alias a new one.
std::atomic<std::uint64_t> g_next_uid{1};

struct ThreadRingCache {
  std::uint64_t uid{0};
  Ring* ring{nullptr};
};
thread_local ThreadRingCache t_ring_cache;

}  // namespace

FlightRecorder::FlightRecorder()
    : uid_(g_next_uid.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

FlightRecorder::~FlightRecorder() {
  unregister_crash_dump(this);
  stop_watchdog();
}

void FlightRecorder::configure(Mode mode, Options o) {
  stop_watchdog();
  if (mode == Mode::Unset) mode = Mode::Off;
  mode_ = mode;
  opts_ = std::move(o);
  epoch_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(rings_mu_);
    if (sim_ring_ == nullptr || sim_ring_->capacity() < opts_.ring_capacity)
      sim_ring_ = std::make_unique<Ring>(opts_.ring_capacity, "sim");
  }
  on_.store(mode != Mode::Off, std::memory_order_relaxed);
  if (enabled()) {
    install_crash_dump_handler(this);
    start_watchdog();
    logf(LogLevel::Info, "flight recorder %s (ring=%zu, stall=%.3gs)",
         mode_name(mode_), opts_.ring_capacity, opts_.stall_deadline_s);
  }
}

double FlightRecorder::wall_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

namespace {

void fill_event(Event& e, EventKind k, std::string_view label, std::int64_t a,
                std::int64_t b, double v) {
  e.kind = k;
  e.a = a;
  e.b = b;
  e.v = v;
  const std::size_t n = label.size() < sizeof(e.label) - 1 ? label.size()
                                                           : sizeof(e.label) - 1;
  std::memcpy(e.label, label.data(), n);
  e.label[n] = '\0';
}

}  // namespace

void FlightRecorder::record(EventKind k, std::string_view label, std::int64_t a,
                            std::int64_t b, double v) {
  if (!enabled()) return;
  Event e;
  fill_event(e, k, label, a, b, v);
  e.t_sim = sim_clock_ != nullptr ? *sim_clock_ : -1;
  e.wall = wall_now();
  e.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  if (sim_ring_->push(e)) met_.events_dropped.inc();
  met_.events_recorded.inc();
  update_high_water();
}

void FlightRecorder::record_thread(EventKind k, std::string_view label,
                                   std::int64_t a, std::int64_t b, double v) {
  if (!enabled()) return;
  Event e;
  fill_event(e, k, label, a, b, v);
  e.t_sim = -1;  // off the control path: no safe read of the sim clock
  e.wall = wall_now();
  e.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  if (thread_ring()->push(e)) met_.thread_dropped.inc();
  met_.thread_events.inc();
}

Ring* FlightRecorder::thread_ring() {
  if (t_ring_cache.uid == uid_) return t_ring_cache.ring;
  std::lock_guard<std::mutex> lk(rings_mu_);
  thread_rings_.push_back(std::make_unique<Ring>(
      opts_.ring_capacity, "thr-" + std::to_string(thread_rings_.size())));
  t_ring_cache = {uid_, thread_rings_.back().get()};
  return t_ring_cache.ring;
}

void FlightRecorder::update_high_water() {
  // Resident events in the sim ring only — cheap, and the sim ring is where
  // the deterministic control path lands. Volatile by registration: wall
  // interleaving decides when it is sampled relative to drops.
  met_.ring_high_water.update_max(static_cast<double>(sim_ring_->resident()));
}

// -- board --------------------------------------------------------------------

void FlightRecorder::begin_launch(std::string_view name, long pending) {
  std::lock_guard<std::mutex> lk(board_mu_);
  board_.last_launch.assign(name.data(), name.size());
  board_.active = true;
  board_.pending = pending;
  ++board_.launches;
}

void FlightRecorder::end_launch() {
  std::lock_guard<std::mutex> lk(board_mu_);
  board_.active = false;
}

void FlightRecorder::note_window(std::size_t open_window) {
  std::lock_guard<std::mutex> lk(board_mu_);
  board_.window = open_window;
}

void FlightRecorder::note_poison(std::uint64_t store) {
  std::lock_guard<std::mutex> lk(board_mu_);
  ++board_.poisoned;
  board_.last_poisoned = store;
}

void FlightRecorder::note_node_loss(int node) {
  std::lock_guard<std::mutex> lk(board_mu_);
  board_.lost_node = node;
}

void FlightRecorder::note_partition_nnz(bool nnz) {
  std::lock_guard<std::mutex> lk(board_mu_);
  board_.partition_nnz = nnz;
}

FlightRecorder::Board FlightRecorder::board() const {
  std::lock_guard<std::mutex> lk(board_mu_);
  return board_;
}

// -- watchdog feed ------------------------------------------------------------

void FlightRecorder::set_pool_status(std::function<PoolStatus()> fn) {
  std::lock_guard<std::mutex> lk(pool_mu_);
  pool_status_ = std::move(fn);
}

PoolStatus FlightRecorder::pool_status() const {
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (!pool_status_) return {};
  return pool_status_();
}

void FlightRecorder::trip(const char* what, std::string_view detail) {
  trips_.fetch_add(1, std::memory_order_relaxed);
  met_.watchdog_trips.inc();
  record_thread(EventKind::WatchdogTrip, what);
  Board bd = board();
  logf(LogLevel::Warn, "watchdog trip: %s (%.*s; in-flight launch '%s')", what,
       static_cast<int>(detail.size()), detail.data(), bd.last_launch.c_str());
  std::string path;
  if (opts_.dump_on_trip) path = dump(std::string("watchdog-") + what);
  const bool hang = std::string_view(what) != "divergence";
  if (hang && abort_on_hang()) {
    logf(LogLevel::Warn, "LSR_DIAG=abort-on-hang: aborting after %s trip (dump: %s)",
         what, path.empty() ? "<none>" : path.c_str());
    std::fflush(nullptr);
    note_fatal_dump_done();  // the dump above already captured the state
    std::abort();
  }
}

// -- drain / reset ------------------------------------------------------------

FlightRecorder::Drained FlightRecorder::drain() const {
  const std::uint64_t floor = floor_.load(std::memory_order_acquire);
  Drained d;
  std::vector<const Ring*> rings;
  {
    std::lock_guard<std::mutex> lk(rings_mu_);
    if (sim_ring_ != nullptr) rings.push_back(sim_ring_.get());
    for (const auto& r : thread_rings_) rings.push_back(r.get());
  }
  for (const Ring* r : rings) {
    const int idx = static_cast<int>(d.rings.size());
    d.rings.push_back(r->name());
    for (Event& e : r->drain(floor)) d.events.emplace_back(idx, e);
  }
  // Rings drain one at a time while writers may still append, so the raw
  // concatenation is not chronological. Sort by (wall, seq) — seq breaks
  // same-stamp ties in true record order — so dump timelines are monotonic.
  std::stable_sort(d.events.begin(), d.events.end(),
                   [](const std::pair<int, Event>& x, const std::pair<int, Event>& y) {
                     if (x.second.wall != y.second.wall)
                       return x.second.wall < y.second.wall;
                     return x.second.seq < y.second.seq;
                   });
  return d;
}

std::uint64_t FlightRecorder::events_recorded() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::uint64_t n = sim_ring_ != nullptr ? sim_ring_->pushed() : 0;
  for (const auto& r : thread_rings_) n += r->pushed();
  return n;
}

void FlightRecorder::reset() {
  if (flush_sink_ && events_recorded() > floor_.load(std::memory_order_relaxed))
    flush_sink_(*this);
  // Raise the event floor instead of touching slots: per-thread rings may
  // still be cached by live worker threads, so their storage must survive.
  floor_.store(next_seq_.load(std::memory_order_relaxed),
               std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(rings_mu_);
    if (sim_ring_ != nullptr) sim_ring_->set_floor_head();
    for (auto& r : thread_rings_) r->set_floor_head();
  }
  {
    std::lock_guard<std::mutex> lk(board_mu_);
    board_ = Board{};
  }
  // Join and restart the watchdog so a reset engine never leaks the old
  // thread (mirrors the prof flush-sink contract from the profiler).
  stop_watchdog();
  if (enabled()) start_watchdog();
}

void FlightRecorder::start_watchdog() {
  if (!opts_.watchdog || watchdog_ != nullptr) return;
  watchdog_ = std::make_unique<Watchdog>(*this, opts_);
}

void FlightRecorder::stop_watchdog() { watchdog_.reset(); }

// ---------------------------------------------------------------------------
// DivergenceGuard
// ---------------------------------------------------------------------------

bool DivergenceGuard::observe(int iteration, double residual) {
  if (!rec_.enabled() || tripped_) return false;
  const Options& o = rec_.options();
  const bool finite = std::isfinite(residual);
  if (finite && (best_ < 0 || residual < best_ * (1.0 - o.divergence_rtol))) {
    best_ = residual;
    since_improve_ = 0;
    return false;
  }
  ++since_improve_;
  if (since_improve_ < o.divergence_window) return false;
  tripped_ = true;
  char detail[128];
  std::snprintf(detail, sizeof detail,
                "%s stagnated: no %.3g improvement in %d iters (iter=%d, res=%g)",
                solver_, o.divergence_rtol, o.divergence_window, iteration,
                residual);
  // Record the deterministic trip on the control path before the volatile
  // trip bookkeeping so the stable event stream names the solver.
  rec_.record(EventKind::WatchdogTrip, solver_, iteration, 0, residual);
  rec_.trip("divergence", detail);
  return true;
}

}  // namespace legate::diag
