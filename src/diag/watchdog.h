#pragma once

// Background hang watchdog for the flight recorder (lsr_diag).
//
// A single sampling thread per FlightRecorder wakes every poll interval and
// compares the recorder's progress counter against the last sample. If the
// system is busy (a launch mid-replay, deferred work pending, or pool tasks
// queued/running) and progress has not moved for the stall deadline, it
// trips — classified as `deadlock` when the executor pool reports ready work
// with every worker parked, `stall` otherwise. One trip per stall episode;
// the detector re-arms as soon as progress moves again.
//
// Solver divergence detection is deliberately NOT here: it runs
// synchronously on the control path (diag::DivergenceGuard) so its trips are
// deterministic.

#include <condition_variable>
#include <mutex>
#include <thread>

#include "diag/diag.h"

namespace legate::diag {

class Watchdog {
 public:
  /// Starts the sampling thread immediately. `rec` must outlive the watchdog.
  Watchdog(FlightRecorder& rec, Options opts);
  ~Watchdog();  ///< joins the sampling thread
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

 private:
  void loop();
  void sample();

  FlightRecorder& rec_;
  Options opts_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_{false};
  std::thread thread_;

  // Sampling state (loop thread only).
  std::uint64_t last_progress_{0};
  double stuck_since_{-1};  ///< wall time progress last moved; -1 = idle
  bool tripped_{false};     ///< already fired for this stall episode
};

}  // namespace legate::diag
