#pragma once

#include "sparse/csr.h"

namespace legate::sparse {

/// Coordinate-format sparse matrix: parallel row/col/vals stores
/// (Section 3). The natural construction and interchange format.
class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(rt::Runtime& rt, coord_t rows, coord_t cols, rt::Store row,
            rt::Store col, rt::Store vals)
      : rt_(&rt),
        rows_(rows),
        cols_(cols),
        row_(std::move(row)),
        col_(std::move(col)),
        vals_(std::move(vals)) {}

  static CooMatrix from_host(rt::Runtime& rt, coord_t rows, coord_t cols,
                             const std::vector<coord_t>& row,
                             const std::vector<coord_t>& col,
                             const std::vector<double>& vals);

  [[nodiscard]] bool valid() const { return rt_ != nullptr; }
  [[nodiscard]] coord_t rows() const { return rows_; }
  [[nodiscard]] coord_t cols() const { return cols_; }
  [[nodiscard]] coord_t nnz() const { return vals_.volume(); }
  [[nodiscard]] const rt::Store& row() const { return row_; }
  [[nodiscard]] const rt::Store& col() const { return col_; }
  [[nodiscard]] const rt::Store& vals() const { return vals_; }
  [[nodiscard]] rt::Runtime& runtime() const { return *rt_; }

  /// Sort-based conversion (hand-written group, Section 5.3). Duplicate
  /// coordinates are summed, matching SciPy's tocsr semantics.
  [[nodiscard]] CsrMatrix tocsr() const;
  [[nodiscard]] dense::DArray spmv(const dense::DArray& x) const;
  [[nodiscard]] CooMatrix transpose() const;

 private:
  rt::Runtime* rt_{nullptr};
  coord_t rows_{0}, cols_{0};
  rt::Store row_, col_, vals_;
};

/// Compressed sparse columns: `pos` indexed by column, `crd` holds rows.
class CscMatrix {
 public:
  CscMatrix() = default;
  CscMatrix(rt::Runtime& rt, coord_t rows, coord_t cols, rt::Store pos,
            rt::Store crd, rt::Store vals)
      : rt_(&rt),
        rows_(rows),
        cols_(cols),
        pos_(std::move(pos)),
        crd_(std::move(crd)),
        vals_(std::move(vals)) {}

  [[nodiscard]] bool valid() const { return rt_ != nullptr; }
  [[nodiscard]] coord_t rows() const { return rows_; }
  [[nodiscard]] coord_t cols() const { return cols_; }
  [[nodiscard]] coord_t nnz() const { return crd_.volume(); }
  [[nodiscard]] const rt::Store& pos() const { return pos_; }
  [[nodiscard]] const rt::Store& crd() const { return crd_; }
  [[nodiscard]] const rt::Store& vals() const { return vals_; }
  [[nodiscard]] rt::Runtime& runtime() const { return *rt_; }

  /// Column-split SpMV: partials scattered into y via a store reduction.
  [[nodiscard]] dense::DArray spmv(const dense::DArray& x) const;
  [[nodiscard]] CsrMatrix tocsr() const;
  /// Aᵀ as CSR shares this matrix's arrays (free relabeling).
  [[nodiscard]] CsrMatrix transpose_as_csr() const;

 private:
  rt::Runtime* rt_{nullptr};
  coord_t rows_{0}, cols_{0};
  rt::Store pos_, crd_, vals_;
};

/// Diagonal format: `offsets` (small host metadata) plus a dense data store
/// of shape (n, ndiag) — transposed from SciPy's layout so that a row block
/// of the data aligns with a block of the output vector.
class DiaMatrix {
 public:
  DiaMatrix() = default;
  DiaMatrix(rt::Runtime& rt, coord_t rows, coord_t cols,
            std::vector<coord_t> offsets, rt::Store data)
      : rt_(&rt),
        rows_(rows),
        cols_(cols),
        offsets_(std::move(offsets)),
        data_(std::move(data)) {}

  [[nodiscard]] bool valid() const { return rt_ != nullptr; }
  [[nodiscard]] coord_t rows() const { return rows_; }
  [[nodiscard]] coord_t cols() const { return cols_; }
  [[nodiscard]] const std::vector<coord_t>& offsets() const { return offsets_; }
  [[nodiscard]] const rt::Store& data() const { return data_; }
  [[nodiscard]] rt::Runtime& runtime() const { return *rt_; }

  [[nodiscard]] dense::DArray spmv(const dense::DArray& x) const;
  [[nodiscard]] CsrMatrix tocsr() const;

 private:
  rt::Runtime* rt_{nullptr};
  coord_t rows_{0}, cols_{0};
  std::vector<coord_t> offsets_;
  rt::Store data_;  // (rows, ndiag); entry (i, d) is A(i, i + offsets[d])
};

// ---- constructors (SciPy sparse module functions) ---------------------------

/// Identity (scipy.sparse.eye).
CsrMatrix eye(rt::Runtime& rt, coord_t n, double value = 1.0);
/// Banded matrix of given half-bandwidth with constant values — the SpMV
/// microbenchmark workload (Fig. 8).
CsrMatrix banded(rt::Runtime& rt, coord_t n, coord_t half_bandwidth,
                 double value = 1.0);
/// scipy.sparse.diags: one diagonal per (offset, value).
CsrMatrix diags(rt::Runtime& rt, coord_t n,
                const std::vector<std::pair<coord_t, double>>& diagonals);
/// Uniform random CSR (scipy.sparse.random with format='csr').
CsrMatrix random_csr(rt::Runtime& rt, coord_t rows, coord_t cols, double density,
                     std::uint64_t seed);
/// Kronecker product (setup-time host construction; used to assemble the
/// 2-D Poisson operator as kron(I,T) + kron(T,I)).
CsrMatrix kron(const CsrMatrix& a, const CsrMatrix& b);
/// Dense row-major (rows, cols) array -> CSR, dropping zeros.
CsrMatrix csr_from_dense(const dense::DArray& a);
/// Stack matrices vertically (scipy.sparse.vstack); column counts must match.
CsrMatrix vstack(const std::vector<CsrMatrix>& mats);
/// Stack matrices horizontally (scipy.sparse.hstack); row counts must match.
CsrMatrix hstack(const std::vector<CsrMatrix>& mats);
/// Block-diagonal assembly (scipy.sparse.block_diag).
CsrMatrix block_diag(const std::vector<CsrMatrix>& mats);

/// Block sparse rows — the format the paper lists as the next target
/// (Section 5.4: "72 of the remaining functions are defined on the BSR
/// format, which we plan to support"). Square bs x bs dense blocks; `pos`
/// indexes block rows, `crd` holds block-column ids, and `data` is a 2-D
/// store of shape (nblocks, bs*bs) so a block-row split aligns blocks with
/// their pos entries through the same image constraints as CSR.
class BsrMatrix {
 public:
  BsrMatrix() = default;
  BsrMatrix(rt::Runtime& rt, coord_t rows, coord_t cols, coord_t block,
            rt::Store pos, rt::Store crd, rt::Store data)
      : rt_(&rt),
        rows_(rows),
        cols_(cols),
        block_(block),
        pos_(std::move(pos)),
        crd_(std::move(crd)),
        data_(std::move(data)) {}

  /// Convert a CSR matrix into BSR with block size `bs` (rows/cols must be
  /// divisible by bs; zero-fill inside partially-occupied blocks).
  static BsrMatrix from_csr(const CsrMatrix& a, coord_t bs);

  [[nodiscard]] bool valid() const { return rt_ != nullptr; }
  [[nodiscard]] coord_t rows() const { return rows_; }
  [[nodiscard]] coord_t cols() const { return cols_; }
  [[nodiscard]] coord_t block_size() const { return block_; }
  [[nodiscard]] coord_t block_rows() const { return rows_ / block_; }
  [[nodiscard]] coord_t nnz_blocks() const { return crd_.volume(); }
  [[nodiscard]] rt::Runtime& runtime() const { return *rt_; }

  /// Block-row-split SpMV (the DISTAL-generated kernel family).
  [[nodiscard]] dense::DArray spmv(const dense::DArray& x) const;
  [[nodiscard]] CsrMatrix tocsr() const;

 private:
  rt::Runtime* rt_{nullptr};
  coord_t rows_{0}, cols_{0}, block_{0};
  rt::Store pos_;   ///< Rect1 per block row
  rt::Store crd_;   ///< block-column index per block
  rt::Store data_;  ///< (nblocks, bs*bs) row-major block values
};

}  // namespace legate::sparse
