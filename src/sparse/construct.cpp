// Matrix constructors (scipy.sparse.eye / diags / random / kron).
// Assembly happens on host arrays and enters the runtime via attach() — the
// same path a NumPy-built matrix takes into Legate — so construction is
// excluded from simulated compute time (benchmarks time the solve loops, as
// the paper does).
#include <algorithm>
#include <vector>

#include "sparse/formats.h"
#include "util/rng.h"

namespace legate::sparse {

CsrMatrix eye(rt::Runtime& rt, coord_t n, double value) {
  std::vector<coord_t> indptr(static_cast<std::size_t>(n) + 1), indices(
      static_cast<std::size_t>(n));
  std::vector<double> values(static_cast<std::size_t>(n), value);
  for (coord_t i = 0; i <= n; ++i) indptr[static_cast<std::size_t>(i)] = i;
  for (coord_t i = 0; i < n; ++i) indices[static_cast<std::size_t>(i)] = i;
  return CsrMatrix::from_host(rt, n, n, indptr, indices, values);
}

CsrMatrix banded(rt::Runtime& rt, coord_t n, coord_t half_bandwidth, double value) {
  std::vector<coord_t> indptr, indices;
  std::vector<double> values;
  indptr.reserve(static_cast<std::size_t>(n) + 1);
  indptr.push_back(0);
  for (coord_t i = 0; i < n; ++i) {
    coord_t lo = std::max<coord_t>(0, i - half_bandwidth);
    coord_t hi = std::min<coord_t>(n - 1, i + half_bandwidth);
    for (coord_t j = lo; j <= hi; ++j) {
      indices.push_back(j);
      values.push_back(value);
    }
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  return CsrMatrix::from_host(rt, n, n, indptr, indices, values);
}

CsrMatrix diags(rt::Runtime& rt, coord_t n,
                const std::vector<std::pair<coord_t, double>>& diagonals) {
  std::vector<std::pair<coord_t, double>> sorted = diagonals;
  std::sort(sorted.begin(), sorted.end());
  std::vector<coord_t> indptr, indices;
  std::vector<double> values;
  indptr.push_back(0);
  for (coord_t i = 0; i < n; ++i) {
    for (auto& [off, v] : sorted) {
      coord_t j = i + off;
      if (j < 0 || j >= n) continue;
      indices.push_back(j);
      values.push_back(v);
    }
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  return CsrMatrix::from_host(rt, n, n, indptr, indices, values);
}

CsrMatrix random_csr(rt::Runtime& rt, coord_t rows, coord_t cols, double density,
                     std::uint64_t seed) {
  LSR_CHECK(density > 0.0 && density <= 1.0);
  Rng rng(seed);
  // Per-row Bernoulli column selection keeps rows sorted and duplicate-free;
  // expected nnz matches rows*cols*density like scipy.sparse.random.
  std::vector<coord_t> indptr, indices;
  std::vector<double> values;
  indptr.push_back(0);
  for (coord_t i = 0; i < rows; ++i) {
    for (coord_t j = 0; j < cols; ++j) {
      if (rng.next_double() < density) {
        indices.push_back(j);
        values.push_back(rng.next_double());
      }
    }
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  return CsrMatrix::from_host(rt, rows, cols, indptr, indices, values);
}

CsrMatrix kron(const CsrMatrix& a, const CsrMatrix& b) {
  rt::Runtime& rt = a.runtime();
  std::vector<coord_t> pa, ia, pb, ib;
  std::vector<double> va, vb;
  a.to_host(pa, ia, va);
  b.to_host(pb, ib, vb);
  coord_t rows = a.rows() * b.rows();
  coord_t cols = a.cols() * b.cols();
  std::vector<coord_t> indptr, indices;
  std::vector<double> values;
  indptr.reserve(static_cast<std::size_t>(rows) + 1);
  indptr.push_back(0);
  for (coord_t i = 0; i < rows; ++i) {
    coord_t ar = i / b.rows(), br = i % b.rows();
    for (coord_t ja = pa[static_cast<std::size_t>(ar)];
         ja < pa[static_cast<std::size_t>(ar) + 1]; ++ja) {
      for (coord_t jb = pb[static_cast<std::size_t>(br)];
           jb < pb[static_cast<std::size_t>(br) + 1]; ++jb) {
        indices.push_back(ia[static_cast<std::size_t>(ja)] * b.cols() +
                          ib[static_cast<std::size_t>(jb)]);
        values.push_back(va[static_cast<std::size_t>(ja)] *
                         vb[static_cast<std::size_t>(jb)]);
      }
    }
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  return CsrMatrix::from_host(rt, rows, cols, indptr, indices, values);
}

}  // namespace legate::sparse
