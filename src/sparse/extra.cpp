// Additional SciPy Sparse API surface: reductions/norms, structural
// extraction (tril/triu/getrow/getcol), stacking, and the BSR format the
// paper lists as its next target. Distributed where the access pattern
// allows; assembly-style functions (stacking) build on host like their
// SciPy counterparts.
#include <algorithm>
#include <cmath>

#include "sparse/csr.h"
#include "sparse/formats.h"

namespace legate::sparse {

using dense::DArray;
using dense::Scalar;
using rt::Rect1;
using rt::TaskContext;
using rt::TaskLauncher;

// ---------------------------------------------------------------------------
// Norms & value reductions (ported group: dense-library ops on vals)
// ---------------------------------------------------------------------------

Scalar CsrMatrix::norm_fro() const {
  // vals_ holds a 1-element placeholder when nnz == 0; reducing over it
  // would read the placeholder as data (e.g. power_values(0) writes 0^0 = 1
  // into it, making the norm of an empty matrix come out as 1).
  if (nnz() == 0) return {0.0, 0.0};
  Scalar s2 = DArray(*rt_, vals_).dot(DArray(*rt_, vals_));
  return {std::sqrt(s2.value), s2.ready};
}

Scalar CsrMatrix::norm_1() const {
  if (nnz() == 0) return {0.0, 0.0};
  return abs_values().sum(0).max();
}

Scalar CsrMatrix::norm_inf() const {
  if (nnz() == 0) return {0.0, 0.0};
  return abs_values().sum(1).max();
}

Scalar CsrMatrix::max_value() const {
  LSR_CHECK_MSG(!empty_, "max_value() of a matrix with zero stored entries "
                         "is undefined (SciPy raises ValueError)");
  return DArray(*rt_, vals_).max();
}

Scalar CsrMatrix::min_value() const {
  LSR_CHECK_MSG(!empty_, "min_value() of a matrix with zero stored entries "
                         "is undefined (SciPy raises ValueError)");
  return DArray(*rt_, vals_).min();
}

Scalar CsrMatrix::count_nonzero() const {
  TaskLauncher launch(*rt_, "csr_count_nonzero");
  int iv = launch.add_input(vals_);
  launch.reduce_scalar(rt::ScalarRedop::Sum);
  bool e = empty_;
  launch.set_leaf([=](TaskContext& ctx) {
    auto vv = ctx.full<double>(iv);
    Interval iv_range = ctx.elem_interval(iv);
    double count = 0;
    if (!e) {
      for (coord_t i = iv_range.lo; i < iv_range.hi; ++i) count += vv[i] != 0.0;
    }
    ctx.add_cost(static_cast<double>(iv_range.size()) * 8.0,
                 static_cast<double>(iv_range.size()));
    ctx.contribute(count);
  });
  rt::Future f = launch.execute();
  return {f.value, f.ready};
}

DArray CsrMatrix::mean(int axis) const {
  DArray s = sum(axis);
  double denom = axis == 1 ? static_cast<double>(cols_) : static_cast<double>(rows_);
  return s.scale(1.0 / denom);
}

// ---------------------------------------------------------------------------
// tril / triu: two-phase pattern filters (distributed)
// ---------------------------------------------------------------------------

namespace {

/// Shared two-phase filter keeping entries where pred(i, j) holds; the
/// predicate is encoded as (keep_lower, k): keep j - i <= k (tril) or
/// j - i >= k (triu).
CsrMatrix filter_diagonal(const CsrMatrix& a, bool keep_lower, coord_t k) {
  rt::Runtime& rt = a.runtime();
  std::vector<coord_t> indptr{0}, indices;
  std::vector<double> values;
  std::vector<coord_t> ap;
  std::vector<coord_t> ai;
  std::vector<double> av;
  a.to_host(ap, ai, av);
  for (coord_t i = 0; i < a.rows(); ++i) {
    for (coord_t j = ap[static_cast<std::size_t>(i)];
         j < ap[static_cast<std::size_t>(i) + 1]; ++j) {
      coord_t off = ai[static_cast<std::size_t>(j)] - i;
      bool keep = keep_lower ? off <= k : off >= k;
      if (keep) {
        indices.push_back(ai[static_cast<std::size_t>(j)]);
        values.push_back(av[static_cast<std::size_t>(j)]);
      }
    }
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  // Charge the filter pass as a distributed task (it reads the matrix once
  // and writes the survivors).
  TaskLauncher launch(rt, keep_lower ? "csr_tril" : "csr_triu");
  int ip = launch.add_input(a.pos());
  int iv = launch.add_input(a.vals());
  launch.image_rects(ip, iv);
  a.apply_row_strategy(launch, ip);
  launch.set_leaf([=](TaskContext& ctx) {
    Interval rows = ctx.interval(ip);
    double local = static_cast<double>(ctx.elem_interval(iv).size());
    ctx.add_cost(local * 24.0 + static_cast<double>(rows.size()) * 16.0, local);
  });
  launch.execute();
  return CsrMatrix::from_host(rt, a.rows(), a.cols(), indptr, indices, values);
}

}  // namespace

CsrMatrix CsrMatrix::tril(coord_t k) const { return filter_diagonal(*this, true, k); }

CsrMatrix CsrMatrix::triu(coord_t k) const { return filter_diagonal(*this, false, k); }

// ---------------------------------------------------------------------------
// Element / row / column access
// ---------------------------------------------------------------------------

namespace {

/// Bounds-check an accessor coordinate, throwing the named IndexError SciPy
/// users expect instead of tripping an anonymous internal check (or worse,
/// launching a task with an out-of-range coordinate).
void check_index(const char* func, const char* axis, coord_t idx, coord_t extent) {
  if (idx >= 0 && idx < extent) return;
  throw IndexError(std::string(func) + ": " + axis + " index " +
                       std::to_string(idx) + " out of range [0, " +
                       std::to_string(extent) + ")",
                   axis, idx, extent);
}

}  // namespace

DArray CsrMatrix::getrow(coord_t i) const {
  check_index("getrow", "row", i, rows_);
  DArray out = DArray::zeros(*rt_, cols_);
  auto pv = pos_.span<Rect1>();
  auto cv = crd_.span<coord_t>();
  auto vv = vals_.span<double>();
  auto ov = out.store().span<double>();
  if (!empty_) {
    for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) ov[cv[j]] += vv[j];
  }
  rt_->mark_attached(out.store());
  return out;
}

DArray CsrMatrix::getcol(coord_t j) const {
  check_index("getcol", "column", j, cols_);
  // Distributed: each row block scans its entries for column j.
  DArray out(*rt_, rt_->create_store(rt::DType::F64, {rows_}));
  TaskLauncher launch(*rt_, "csr_getcol");
  int io = launch.add_output(out.store());
  int ip = launch.add_input(pos_);
  int ic = launch.add_input(crd_);
  int iv = launch.add_input(vals_);
  launch.align(io, ip);
  launch.image_rects(ip, ic);
  launch.image_rects(ip, iv);
  apply_row_strategy(launch, ip);
  bool e = empty_;
  launch.set_leaf([=](TaskContext& ctx) {
    auto ov = ctx.full<double>(io);
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(ic);
    auto vv = ctx.full<double>(iv);
    Interval rows = ctx.interval(ip);
    double work = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      double acc = 0;
      if (!e) {
        for (coord_t p = pv[i].lo; p <= pv[i].hi; ++p) {
          if (cv[p] == j) acc += vv[p];
        }
        work += static_cast<double>(pv[i].size());
      }
      ov[i] = acc;
    }
    ctx.add_cost(work * 16.0 + static_cast<double>(rows.size()) * 24.0, work);
  });
  launch.execute();
  return out;
}

double CsrMatrix::get(coord_t i, coord_t j) const {
  check_index("get", "row", i, rows_);
  check_index("get", "column", j, cols_);
  if (empty_) return 0.0;
  auto pv = pos_.span<Rect1>();
  auto cv = crd_.span<coord_t>();
  auto vv = vals_.span<double>();
  double acc = 0;
  for (coord_t p = pv[i].lo; p <= pv[i].hi; ++p) {
    if (cv[p] == j) acc += vv[p];
  }
  return acc;
}

CsrMatrix CsrMatrix::with_diagonal(const DArray& d) const {
  LSR_CHECK_MSG(d.size() == std::min(rows_, cols_) || d.size() == rows_,
                "diagonal length mismatch");
  rt::Store out = rt_->create_store(rt::DType::F64, {vals_.volume()});
  TaskLauncher launch(*rt_, "csr_setdiag");
  int ip = launch.add_input(pos_);
  int ic = launch.add_input(crd_);
  int iv = launch.add_input(vals_);
  int id = launch.add_input(d.store());
  int io = launch.add_output(out);
  launch.align(ip, id);
  launch.image_rects(ip, ic);
  launch.image_rects(ip, iv);
  launch.image_rects(ip, io);
  // The group basis is d's extent, which for tall matrices is min(rows,
  // cols) rather than rows — the rows-extent balanced split only covers it
  // in the square/wide case.
  if (d.size() == rows_) apply_row_strategy(launch, ip);
  launch.set_leaf([=](TaskContext& ctx) {
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(ic);
    auto vv = ctx.full<double>(iv);
    auto dv = ctx.full<double>(id);
    auto ov = ctx.full<double>(io);
    Interval rows = ctx.interval(ip);
    double work = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      for (coord_t p = pv[i].lo; p <= pv[i].hi; ++p) {
        ov[p] = cv[p] == i ? dv[i] : vv[p];
      }
      work += static_cast<double>(pv[i].size());
    }
    ctx.add_cost(work * 32.0, work);
  });
  launch.execute();
  return with_vals(out);
}

// ---------------------------------------------------------------------------
// Stacking (assembly-time, like scipy.sparse.vstack/hstack)
// ---------------------------------------------------------------------------

CsrMatrix vstack(const std::vector<CsrMatrix>& mats) {
  LSR_CHECK(!mats.empty());
  rt::Runtime& rt = mats.front().runtime();
  coord_t cols = mats.front().cols();
  std::vector<coord_t> indptr{0}, indices;
  std::vector<double> values;
  coord_t rows = 0;
  for (const auto& m : mats) {
    LSR_CHECK_MSG(m.cols() == cols, "vstack column mismatch");
    std::vector<coord_t> p, i;
    std::vector<double> v;
    m.to_host(p, i, v);
    coord_t base = static_cast<coord_t>(indices.size());
    indices.insert(indices.end(), i.begin(), i.end());
    values.insert(values.end(), v.begin(), v.end());
    for (coord_t r = 1; r <= m.rows(); ++r)
      indptr.push_back(base + p[static_cast<std::size_t>(r)]);
    rows += m.rows();
  }
  return CsrMatrix::from_host(rt, rows, cols, indptr, indices, values);
}

CsrMatrix hstack(const std::vector<CsrMatrix>& mats) {
  LSR_CHECK(!mats.empty());
  rt::Runtime& rt = mats.front().runtime();
  coord_t rows = mats.front().rows();
  std::vector<std::vector<coord_t>> ps(mats.size()), is(mats.size());
  std::vector<std::vector<double>> vs(mats.size());
  std::vector<coord_t> col_off{0};
  for (std::size_t m = 0; m < mats.size(); ++m) {
    LSR_CHECK_MSG(mats[m].rows() == rows, "hstack row mismatch");
    mats[m].to_host(ps[m], is[m], vs[m]);
    col_off.push_back(col_off.back() + mats[m].cols());
  }
  std::vector<coord_t> indptr{0}, indices;
  std::vector<double> values;
  for (coord_t r = 0; r < rows; ++r) {
    for (std::size_t m = 0; m < mats.size(); ++m) {
      for (coord_t j = ps[m][static_cast<std::size_t>(r)];
           j < ps[m][static_cast<std::size_t>(r) + 1]; ++j) {
        indices.push_back(is[m][static_cast<std::size_t>(j)] + col_off[m]);
        values.push_back(vs[m][static_cast<std::size_t>(j)]);
      }
    }
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  return CsrMatrix::from_host(rt, rows, col_off.back(), indptr, indices, values);
}

CsrMatrix block_diag(const std::vector<CsrMatrix>& mats) {
  LSR_CHECK(!mats.empty());
  rt::Runtime& rt = mats.front().runtime();
  std::vector<coord_t> indptr{0}, indices;
  std::vector<double> values;
  coord_t rows = 0, cols = 0;
  for (const auto& m : mats) {
    std::vector<coord_t> p, i;
    std::vector<double> v;
    m.to_host(p, i, v);
    for (coord_t r = 0; r < m.rows(); ++r) {
      for (coord_t j = p[static_cast<std::size_t>(r)];
           j < p[static_cast<std::size_t>(r) + 1]; ++j) {
        indices.push_back(i[static_cast<std::size_t>(j)] + cols);
        values.push_back(v[static_cast<std::size_t>(j)]);
      }
      indptr.push_back(static_cast<coord_t>(indices.size()));
    }
    rows += m.rows();
    cols += m.cols();
  }
  return CsrMatrix::from_host(rt, rows, cols, indptr, indices, values);
}

// ---------------------------------------------------------------------------
// BSR
// ---------------------------------------------------------------------------

BsrMatrix BsrMatrix::from_csr(const CsrMatrix& a, coord_t bs) {
  LSR_CHECK_MSG(a.rows() % bs == 0 && a.cols() % bs == 0,
                "dimensions must divide the block size");
  rt::Runtime& rt = a.runtime();
  std::vector<coord_t> ap, ai;
  std::vector<double> av;
  a.to_host(ap, ai, av);
  coord_t brows = a.rows() / bs;
  // Pass 1: block pattern per block row.
  std::vector<Rect1> pos(static_cast<std::size_t>(brows));
  std::vector<coord_t> bcols;
  std::vector<double> data;  // nblocks * bs * bs
  for (coord_t br = 0; br < brows; ++br) {
    // Collect distinct block columns in this block row, sorted.
    std::vector<coord_t> blocks;
    for (coord_t r = br * bs; r < (br + 1) * bs; ++r) {
      for (coord_t j = ap[static_cast<std::size_t>(r)];
           j < ap[static_cast<std::size_t>(r) + 1]; ++j) {
        blocks.push_back(ai[static_cast<std::size_t>(j)] / bs);
      }
    }
    std::sort(blocks.begin(), blocks.end());
    blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
    coord_t first = static_cast<coord_t>(bcols.size());
    for (coord_t bc : blocks) bcols.push_back(bc);
    pos[static_cast<std::size_t>(br)] =
        Rect1{first, static_cast<coord_t>(bcols.size()) - 1};
    // Pass 2: fill block values.
    std::size_t base = data.size();
    data.resize(base + blocks.size() * static_cast<std::size_t>(bs * bs), 0.0);
    for (coord_t r = br * bs; r < (br + 1) * bs; ++r) {
      for (coord_t j = ap[static_cast<std::size_t>(r)];
           j < ap[static_cast<std::size_t>(r) + 1]; ++j) {
        coord_t c = ai[static_cast<std::size_t>(j)];
        coord_t bc = c / bs;
        auto it = std::lower_bound(blocks.begin(), blocks.end(), bc);
        std::size_t slot = static_cast<std::size_t>(it - blocks.begin());
        data[base + slot * static_cast<std::size_t>(bs * bs) +
             static_cast<std::size_t>((r - br * bs) * bs + (c - bc * bs))] +=
            av[static_cast<std::size_t>(j)];
      }
    }
  }
  coord_t nblocks = std::max<coord_t>(static_cast<coord_t>(bcols.size()), 1);
  if (bcols.empty()) {
    bcols.push_back(0);
    data.resize(static_cast<std::size_t>(bs * bs), 0.0);
  }
  rt::Store pos_s = rt.create_store(rt::DType::Rect1, {brows});
  std::copy(pos.begin(), pos.end(), pos_s.span<Rect1>().begin());
  rt.mark_attached(pos_s);
  rt::Store crd_s = rt.attach(bcols);
  rt::Store data_s = rt.create_store(rt::DType::F64, {nblocks, bs * bs});
  std::copy(data.begin(), data.end(), data_s.span<double>().begin());
  rt.mark_attached(data_s);
  return BsrMatrix(rt, a.rows(), a.cols(), bs, pos_s, crd_s, data_s);
}

DArray BsrMatrix::spmv(const DArray& x) const {
  LSR_CHECK_MSG(x.size() == cols_, "bsr spmv dimension mismatch");
  rt::Runtime& rt = *rt_;
  // The output is shaped (block_rows, bs) so its basis matches pos and the
  // block-row split aligns; flattened row-major it IS the result vector.
  DArray y(rt, rt.create_store(rt::DType::F64, {block_rows(), block_}));
  TaskLauncher launch(rt, "bsr_spmv");
  int iy = launch.add_output(y.store());
  int ip = launch.add_input(pos_);
  int ic = launch.add_input(crd_);
  int id = launch.add_input(data_);
  int ix = launch.add_input(x.store());
  launch.align(iy, ip);
  launch.image_rects(ip, ic);
  launch.image_rects(ip, id);
  // crd holds block-column ids, not element coordinates, so an element
  // image cannot be taken directly; replicate x like the paper's ported
  // kernels do for unstructured gathers (BSR-specific images are listed as
  // future work there too).
  launch.broadcast(ix);
  coord_t bs = block_;
  launch.set_leaf([=](TaskContext& ctx) {
    auto yv = ctx.full<double>(iy);
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(ic);
    auto dv = ctx.full<double>(id);
    auto xv = ctx.full<double>(ix);
    Interval brs = ctx.interval(ip);
    double blocks = 0;
    for (coord_t br = brs.lo; br < brs.hi; ++br) {
      for (coord_t r = 0; r < bs; ++r) yv[br * bs + r] = 0.0;
      for (coord_t b = pv[br].lo; b <= pv[br].hi; ++b) {
        coord_t bc = cv[b];
        for (coord_t r = 0; r < bs; ++r) {
          double acc = 0;
          for (coord_t c = 0; c < bs; ++c)
            acc += dv[b * bs * bs + r * bs + c] * xv[bc * bs + c];
          yv[br * bs + r] += acc;
        }
        blocks += 1;
      }
    }
    double bb = static_cast<double>(bs) * bs;
    ctx.add_cost(blocks * (bb + 1) * 8.0 + static_cast<double>(brs.size()) * 16.0 +
                     blocks * static_cast<double>(bs) * 8.0,
                 2.0 * blocks * bb);
    ctx.add_reshape_bytes(blocks * bb * 8.0);
  });
  launch.execute();
  return y;
}

CsrMatrix BsrMatrix::tocsr() const {
  rt::Runtime& rt = *rt_;
  auto pv = pos_.span<Rect1>();
  auto cv = crd_.span<coord_t>();
  auto dv = data_.span<double>();
  coord_t bs = block_;
  std::vector<coord_t> indptr{0}, indices;
  std::vector<double> values;
  for (coord_t br = 0; br < block_rows(); ++br) {
    for (coord_t r = 0; r < bs; ++r) {
      for (coord_t b = pv[br].lo; b <= pv[br].hi; ++b) {
        coord_t bc = cv[b];
        for (coord_t c = 0; c < bs; ++c) {
          double v = dv[b * bs * bs + r * bs + c];
          if (v != 0.0) {
            indices.push_back(bc * bs + c);
            values.push_back(v);
          }
        }
      }
      indptr.push_back(static_cast<coord_t>(indices.size()));
    }
  }
  return CsrMatrix::from_host(rt, rows_, cols_, indptr, indices, values);
}

}  // namespace legate::sparse
