#include "sparse/csr.h"

#include <algorithm>
#include <cmath>

#include "sparse/formats.h"

namespace legate::sparse {

using dense::DArray;
using dense::Scalar;
using rt::Rect1;
using rt::TaskContext;
using rt::TaskLauncher;

CsrMatrix CsrMatrix::from_host(rt::Runtime& rt, coord_t rows, coord_t cols,
                               const std::vector<coord_t>& indptr,
                               const std::vector<coord_t>& indices,
                               const std::vector<double>& values) {
  LSR_CHECK(static_cast<coord_t>(indptr.size()) == rows + 1);
  LSR_CHECK(indices.size() == values.size());
  rt::Store pos = rt.create_store(rt::DType::Rect1, {rows});
  auto pv = pos.span<Rect1>();
  for (coord_t i = 0; i < rows; ++i) {
    pv[i] = Rect1{indptr[static_cast<std::size_t>(i)],
                  indptr[static_cast<std::size_t>(i) + 1] - 1};
  }
  rt.mark_attached(pos);
  // Keep stores non-empty so partitioning logic stays uniform.
  rt::Store crd, vals;
  if (indices.empty()) {
    crd = rt.create_store(rt::DType::I64, {1});
    crd.span<coord_t>()[0] = 0;
    rt.mark_attached(crd);
    vals = rt.create_store(rt::DType::F64, {1});
    vals.span<double>()[0] = 0;
    rt.mark_attached(vals);
    // pos rects are all empty, so the placeholder entry is never read; but
    // nnz() must report 0, so remember emptiness via an empty-shaped wrapper.
    CsrMatrix m(rt, rows, cols, pos, crd, vals);
    m.empty_ = true;
    return m;
  }
  crd = rt.attach(indices);
  vals = rt.attach(values);
  return CsrMatrix(rt, rows, cols, std::move(pos), std::move(crd), std::move(vals));
}

void CsrMatrix::validate() const {
  if (rt_ == nullptr) return;
  if (pos_.volume() != rows_) {
    throw FormatError("pos store has " + std::to_string(pos_.volume()) +
                          " rows but the matrix has " + std::to_string(rows_),
                      "pos", pos_.volume());
  }
  if (crd_.volume() != vals_.volume()) {
    throw FormatError("crd holds " + std::to_string(crd_.volume()) +
                          " entries but vals holds " + std::to_string(vals_.volume()),
                      "vals", vals_.volume());
  }
  auto pv = pos_.span<Rect1>();
  auto cv = crd_.span<coord_t>();
  auto vv = vals_.span<double>();
  const coord_t len = nnz_store_len();
  coord_t prev_hi = -1;
  for (coord_t i = 0; i < rows_; ++i) {
    const Rect1& r = pv[static_cast<std::size_t>(i)];
    if (r.empty()) continue;
    if (r.lo < 0 || r.hi >= len) {
      throw FormatError("pos rect [" + std::to_string(r.lo) + ", " +
                            std::to_string(r.hi) + "] of row " + std::to_string(i) +
                            " exceeds the " + std::to_string(len) + "-entry crd store",
                        "pos", i);
    }
    if (r.lo <= prev_hi) {
      throw FormatError("pos rows are non-monotone at row " + std::to_string(i) +
                            " (rect starts at " + std::to_string(r.lo) +
                            ", previous row ended at " + std::to_string(prev_hi) + ")",
                        "pos", i);
    }
    prev_hi = r.hi;
    coord_t prev_col = -1;
    for (coord_t j = r.lo; j <= r.hi; ++j) {
      coord_t c = cv[static_cast<std::size_t>(j)];
      if (c < 0 || c >= cols_) {
        throw FormatError("column coordinate " + std::to_string(c) + " at entry " +
                              std::to_string(j) + " outside [0, " +
                              std::to_string(cols_) + ")",
                          "crd", j);
      }
      // Silent corruption of crd often surfaces as a swapped/garbage index:
      // columns within a row must be strictly increasing (the canonical CSR
      // order every kernel here assumes).
      if (c <= prev_col) {
        throw FormatError("column coordinates out of order in row " +
                              std::to_string(i) + " (column " + std::to_string(c) +
                              " at entry " + std::to_string(j) +
                              " follows column " + std::to_string(prev_col) + ")",
                          "crd", i);
      }
      prev_col = c;
      // Bit flips in value bytes frequently surface as NaN/Inf first; reject
      // them at construction so corruption is pinpointed at the source.
      double v = vv[static_cast<std::size_t>(j)];
      if (!std::isfinite(v)) {
        throw FormatError("non-finite value " + std::to_string(v) + " in row " +
                              std::to_string(i) + " (entry " + std::to_string(j) + ")",
                          "vals", i);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Partitioning strategy (nnz-balanced row splits)
// ---------------------------------------------------------------------------

namespace {
/// Auto picks the balanced split once the equal split's per-color nnz
/// imbalance (max / mean) exceeds this ratio; uniform matrices sit at ~1.
constexpr double kAutoImbalanceThreshold = 1.5;
}  // namespace

const CsrMatrix::RowPartCache& CsrMatrix::row_part_cache() const {
  const int colors = static_cast<int>(
      std::min<coord_t>(rt_->default_colors(), std::max<coord_t>(1, rows_)));
  if (row_part_ && row_part_->colors == colors) return *row_part_;
  auto cache = std::make_shared<RowPartCache>();
  cache->colors = colors;
  if (colors > 1 && !empty_) {
    // One host scan of pos (a fence point), amortized across every kernel
    // launch of this matrix and its value-sharing derivatives.
    auto pv = pos_.span<Rect1>();
    std::vector<coord_t> weights(static_cast<std::size_t>(rows_));
    coord_t total = 0;
    for (coord_t i = 0; i < rows_; ++i) {
      weights[static_cast<std::size_t>(i)] = pv[static_cast<std::size_t>(i)].size();
      total += weights[static_cast<std::size_t>(i)];
    }
    if (total > 0) {
      coord_t max_color_nnz = 0;
      const auto eq = rt::Partition::equal(rows_, colors);
      for (const Interval& iv : eq->subs()) {
        coord_t w = 0;
        for (coord_t i = iv.lo; i < iv.hi; ++i) {
          w += weights[static_cast<std::size_t>(i)];
        }
        max_color_nnz = std::max(max_color_nnz, w);
      }
      cache->imbalance_ratio = static_cast<double>(max_color_nnz) *
                               static_cast<double>(colors) /
                               static_cast<double>(total);
      cache->balanced = rt::Partition::balanced(weights, colors);
    }
  }
  row_part_ = std::move(cache);
  return *row_part_;
}

double CsrMatrix::row_imbalance_ratio() const {
  return row_part_cache().imbalance_ratio;
}

rt::PartitionStrategy CsrMatrix::partition_strategy() const {
  rt::PartitionStrategy s = part_strategy_ != rt::PartitionStrategy::Unset
                                ? part_strategy_
                                : rt_->partition_strategy();
  if (s == rt::PartitionStrategy::Auto) {
    s = (!empty_ && row_imbalance_ratio() > kAutoImbalanceThreshold)
            ? rt::PartitionStrategy::Nnz
            : rt::PartitionStrategy::Rows;
  }
  return s == rt::PartitionStrategy::Nnz ? rt::PartitionStrategy::Nnz
                                         : rt::PartitionStrategy::Rows;
}

rt::PartitionRef CsrMatrix::balanced_row_partition() const {
  if (partition_strategy() != rt::PartitionStrategy::Nnz) return nullptr;
  // Null for empty/single-color matrices: the equal split is already right.
  return row_part_cache().balanced;
}

void CsrMatrix::apply_row_strategy(rt::TaskLauncher& launch, int arg) const {
  if (auto part = balanced_row_partition()) {
    launch.set_partition(arg, std::move(part));
  }
}

// ---------------------------------------------------------------------------
// SpMV (DISTAL-generated structure; cf. Fig. 7 of the paper)
// ---------------------------------------------------------------------------

DArray CsrMatrix::spmv(const DArray& x) const {
  LSR_CHECK_MSG(x.size() == cols_, "spmv dimension mismatch");
  DArray y(*rt_, rt_->create_store(rt::DType::F64, {rows_}));
  TaskLauncher launch(*rt_, "csr_spmv");
  int iy = launch.add_output(y.store());
  int ip = launch.add_input(pos_);
  int ic = launch.add_input(crd_);
  int iv = launch.add_input(vals_);
  int ix = launch.add_input(x.store());
  launch.align(iy, ip);
  launch.image_rects(ip, ic);
  launch.image_rects(ip, iv);
  launch.image_points(ic, ix);
  apply_row_strategy(launch, ip);
  launch.set_leaf([=](TaskContext& ctx) {
    auto yv = ctx.full<double>(iy);
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(ic);
    auto vv = ctx.full<double>(iv);
    auto xv = ctx.full<double>(ix);
    Interval rows = ctx.elem_interval(iy);
    double local_nnz = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      double acc = 0;
      for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) acc += vv[j] * xv[cv[j]];
      yv[i] = acc;
      local_nnz += static_cast<double>(pv[i].size());
    }
    double touched_x = static_cast<double>(ctx.elem_interval(ix).size());
    ctx.add_cost(static_cast<double>(rows.size()) * 24.0 + local_nnz * 16.0 +
                     touched_x * 8.0,
                 2.0 * local_nnz);
    // Global-CSR pieces are rebased into a local matrix before the
    // cuSPARSE-style call (Section 3).
    ctx.add_reshape_bytes(local_nnz * 8.0 + static_cast<double>(rows.size()) * 16.0);
  });
  launch.execute();
  return y;
}

// ---------------------------------------------------------------------------
// SpMM: C[m,k] = A @ B, B dense (row gather through the crd image)
// ---------------------------------------------------------------------------

DArray CsrMatrix::spmm(const DArray& b) const {
  LSR_CHECK_MSG(b.dim() == 2 && b.rows() == cols_, "spmm dimension mismatch");
  coord_t k = b.cols();
  DArray c(*rt_, rt_->create_store(rt::DType::F64, {rows_, k}));
  TaskLauncher launch(*rt_, "csr_spmm");
  int ic_out = launch.add_output(c.store());
  int ip = launch.add_input(pos_);
  int icrd = launch.add_input(crd_);
  int iv = launch.add_input(vals_);
  int ib = launch.add_input(b.store());
  launch.align(ic_out, ip);
  launch.image_rects(ip, icrd);
  launch.image_rects(ip, iv);
  launch.image_points(icrd, ib);
  apply_row_strategy(launch, ip);
  launch.set_leaf([=](TaskContext& ctx) {
    auto C = ctx.full<double>(ic_out);
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(icrd);
    auto vv = ctx.full<double>(iv);
    auto B = ctx.full<double>(ib);
    Interval rows = ctx.interval(ic_out);
    double local_nnz = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      for (coord_t col = 0; col < k; ++col) C[i * k + col] = 0;
      for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) {
        double a = vv[j];
        coord_t brow = cv[j];
        for (coord_t col = 0; col < k; ++col) C[i * k + col] += a * B[brow * k + col];
      }
      local_nnz += static_cast<double>(pv[i].size());
    }
    double touched_b = static_cast<double>(ctx.elem_interval(ib).size());
    ctx.add_cost(static_cast<double>(rows.size()) * (16.0 + 8.0 * k) +
                     local_nnz * 16.0 + touched_b * 8.0,
                 2.0 * local_nnz * static_cast<double>(k));
    ctx.add_reshape_bytes(local_nnz * 8.0);
  });
  launch.execute();
  return c;
}

// ---------------------------------------------------------------------------
// SDDMM: out = A ⊙ (B @ C) — the factorization kernel (Section 6.2)
// ---------------------------------------------------------------------------

CsrMatrix CsrMatrix::sddmm(const DArray& b, const DArray& c) const {
  LSR_CHECK_MSG(b.dim() == 2 && c.dim() == 2, "sddmm needs 2-D operands");
  LSR_CHECK_MSG(b.rows() == rows_ && c.cols() == cols_ && b.cols() == c.rows(),
                "sddmm dimension mismatch");
  coord_t k = b.cols(), n = c.cols();
  rt::Store out_vals = rt_->create_store(rt::DType::F64, {nnz_store_len()});
  TaskLauncher launch(*rt_, "csr_sddmm");
  int io = launch.add_output(out_vals);
  int ip = launch.add_input(pos_);
  int icrd = launch.add_input(crd_);
  int iv = launch.add_input(vals_);
  int ib = launch.add_input(b.store());
  int icd = launch.add_input(c.store());
  launch.align(ip, ib);
  launch.image_rects(ip, icrd);
  launch.image_rects(ip, iv);
  launch.image_rects(ip, io);
  launch.broadcast(icd);
  apply_row_strategy(launch, ip);
  launch.set_leaf([=](TaskContext& ctx) {
    auto O = ctx.full<double>(io);
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(icrd);
    auto vv = ctx.full<double>(iv);
    auto B = ctx.full<double>(ib);
    auto C = ctx.full<double>(icd);
    Interval rows = ctx.interval(ip);
    double local_nnz = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) {
        coord_t col = cv[j];
        double acc = 0;
        for (coord_t l = 0; l < k; ++l) acc += B[i * k + l] * C[l * n + col];
        O[j] = vv[j] * acc;
      }
      local_nnz += static_cast<double>(pv[i].size());
    }
    ctx.add_cost(local_nnz * (24.0 + 8.0 * static_cast<double>(k)) +
                     static_cast<double>(rows.size()) * (16.0 + 8.0 * k),
                 2.0 * local_nnz * static_cast<double>(k));
  });
  launch.execute();
  return with_vals(out_vals);
}

// ---------------------------------------------------------------------------
// Value-space operations (the "ported to NumPy ops" group, Section 5.2):
// non-zero-preserving unary/scaling operations reuse the dense library on
// the vals store, sharing pos/crd with this matrix.
// ---------------------------------------------------------------------------

CsrMatrix CsrMatrix::with_vals(rt::Store vals) const {
  CsrMatrix r(*rt_, rows_, cols_, pos_, crd_, std::move(vals));
  r.empty_ = empty_;
  // Same pos store, same row split: share the strategy override and the
  // cached balanced partition (a stable uid keeps image caches warm).
  r.part_strategy_ = part_strategy_;
  r.row_part_ = row_part_;
  return r;
}

CsrMatrix CsrMatrix::scale(Scalar a) const {
  return with_vals(DArray(*rt_, vals_).scale(a).store());
}

CsrMatrix CsrMatrix::abs_values() const {
  return with_vals(DArray(*rt_, vals_).abs().store());
}

CsrMatrix CsrMatrix::power_values(double p) const {
  DArray v(*rt_, vals_);
  // Reuse the dense task machinery with a custom unary body.
  rt::Store out = rt_->create_store(rt::DType::F64, {vals_.volume()});
  TaskLauncher launch(*rt_, "csr_power");
  int ia = launch.add_input(vals_);
  int ic = launch.add_output(out);
  launch.align(ia, ic);
  launch.set_leaf([=](TaskContext& ctx) {
    auto x = ctx.full<double>(ia);
    auto y = ctx.full<double>(ic);
    Interval iv = ctx.elem_interval(ic);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = std::pow(x[i], p);
    ctx.add_cost(static_cast<double>(iv.size()) * 16.0,
                 static_cast<double>(iv.size()) * 10.0);
  });
  launch.execute();
  return with_vals(out);
}

CsrMatrix CsrMatrix::copy() const {
  return with_vals(DArray(*rt_, vals_).copy().store());
}

CsrMatrix CsrMatrix::scale_rows(const DArray& d) const {
  LSR_CHECK_MSG(d.size() == rows_, "scale_rows dimension mismatch");
  rt::Store out = rt_->create_store(rt::DType::F64, {vals_.volume()});
  TaskLauncher launch(*rt_, "csr_scale_rows");
  int ip = launch.add_input(pos_);
  int id = launch.add_input(d.store());
  int iv = launch.add_input(vals_);
  int io = launch.add_output(out);
  launch.align(ip, id);
  launch.image_rects(ip, iv);
  launch.image_rects(ip, io);
  apply_row_strategy(launch, ip);
  launch.set_leaf([=](TaskContext& ctx) {
    auto pv = ctx.full<Rect1>(ip);
    auto dv = ctx.full<double>(id);
    auto vv = ctx.full<double>(iv);
    auto ov = ctx.full<double>(io);
    Interval rows = ctx.interval(ip);
    double local_nnz = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) ov[j] = vv[j] * dv[i];
      local_nnz += static_cast<double>(pv[i].size());
    }
    ctx.add_cost(local_nnz * 24.0 + static_cast<double>(rows.size()) * 24.0,
                 local_nnz);
  });
  launch.execute();
  return with_vals(out);
}

CsrMatrix CsrMatrix::scale_cols(const DArray& d) const {
  LSR_CHECK_MSG(d.size() == cols_, "scale_cols dimension mismatch");
  rt::Store out = rt_->create_store(rt::DType::F64, {vals_.volume()});
  TaskLauncher launch(*rt_, "csr_scale_cols");
  int ip = launch.add_input(pos_);
  int ic = launch.add_input(crd_);
  int id = launch.add_input(d.store());
  int iv = launch.add_input(vals_);
  int io = launch.add_output(out);
  launch.image_rects(ip, ic);
  launch.image_rects(ip, iv);
  launch.image_rects(ip, io);
  launch.image_points(ic, id);
  apply_row_strategy(launch, ip);
  launch.set_leaf([=](TaskContext& ctx) {
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(ic);
    auto dv = ctx.full<double>(id);
    auto vv = ctx.full<double>(iv);
    auto ov = ctx.full<double>(io);
    Interval rows = ctx.interval(ip);
    double local_nnz = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) ov[j] = vv[j] * dv[cv[j]];
      local_nnz += static_cast<double>(pv[i].size());
    }
    ctx.add_cost(local_nnz * 32.0 + static_cast<double>(rows.size()) * 16.0,
                 local_nnz);
  });
  launch.execute();
  return with_vals(out);
}

// ---------------------------------------------------------------------------
// Reductions & extraction
// ---------------------------------------------------------------------------

DArray CsrMatrix::diagonal() const {
  coord_t n = std::min(rows_, cols_);
  DArray d(*rt_, rt_->create_store(rt::DType::F64, {rows_}));
  TaskLauncher launch(*rt_, "csr_diagonal");
  int id = launch.add_output(d.store());
  int ip = launch.add_input(pos_);
  int ic = launch.add_input(crd_);
  int iv = launch.add_input(vals_);
  launch.align(id, ip);
  launch.image_rects(ip, ic);
  launch.image_rects(ip, iv);
  apply_row_strategy(launch, ip);
  launch.set_leaf([=](TaskContext& ctx) {
    auto dv = ctx.full<double>(id);
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(ic);
    auto vv = ctx.full<double>(iv);
    Interval rows = ctx.interval(ip);
    double local_nnz = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      double diag = 0;
      if (i < n) {
        for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) {
          if (cv[j] == i) diag += vv[j];
        }
      }
      dv[i] = diag;
      local_nnz += static_cast<double>(pv[i].size());
    }
    ctx.add_cost(local_nnz * 16.0 + static_cast<double>(rows.size()) * 24.0,
                 local_nnz);
  });
  launch.execute();
  return d;
}

DArray CsrMatrix::row_nnz() const {
  DArray d(*rt_, rt_->create_store(rt::DType::F64, {rows_}));
  TaskLauncher launch(*rt_, "csr_row_nnz");
  int id = launch.add_output(d.store());
  int ip = launch.add_input(pos_);
  launch.align(id, ip);
  apply_row_strategy(launch, ip);
  launch.set_leaf([=](TaskContext& ctx) {
    auto dv = ctx.full<double>(id);
    auto pv = ctx.full<Rect1>(ip);
    Interval rows = ctx.interval(ip);
    for (coord_t i = rows.lo; i < rows.hi; ++i)
      dv[i] = static_cast<double>(pv[i].size());
    ctx.add_cost(static_cast<double>(rows.size()) * 24.0, 0);
  });
  launch.execute();
  return d;
}

DArray CsrMatrix::sum(int axis) const {
  LSR_CHECK_MSG(axis == 0 || axis == 1, "axis must be 0 or 1");
  if (axis == 1) {
    // Row sums: aligned row-split.
    DArray d(*rt_, rt_->create_store(rt::DType::F64, {rows_}));
    TaskLauncher launch(*rt_, "csr_row_sum");
    int id = launch.add_output(d.store());
    int ip = launch.add_input(pos_);
    int iv = launch.add_input(vals_);
    launch.align(id, ip);
    launch.image_rects(ip, iv);
    apply_row_strategy(launch, ip);
    launch.set_leaf([=](TaskContext& ctx) {
      auto dv = ctx.full<double>(id);
      auto pv = ctx.full<Rect1>(ip);
      auto vv = ctx.full<double>(iv);
      Interval rows = ctx.interval(ip);
      double local_nnz = 0;
      for (coord_t i = rows.lo; i < rows.hi; ++i) {
        double acc = 0;
        for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) acc += vv[j];
        dv[i] = acc;
        local_nnz += static_cast<double>(pv[i].size());
      }
      ctx.add_cost(local_nnz * 8.0 + static_cast<double>(rows.size()) * 24.0,
                   local_nnz);
    });
    launch.execute();
    return d;
  }
  // Column sums: scatter partials, combined by a store reduction.
  DArray d(*rt_, rt_->create_store(rt::DType::F64, {cols_}));
  TaskLauncher launch(*rt_, "csr_col_sum");
  int id = launch.add_reduction(d.store());
  int ip = launch.add_input(pos_);
  int ic = launch.add_input(crd_);
  int iv = launch.add_input(vals_);
  launch.image_rects(ip, ic);
  launch.image_rects(ip, iv);
  apply_row_strategy(launch, ip);
  launch.set_leaf([=](TaskContext& ctx) {
    auto dv = ctx.full<double>(id);
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(ic);
    auto vv = ctx.full<double>(iv);
    Interval rows = ctx.interval(ip);
    double local_nnz = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) dv[cv[j]] += vv[j];
      local_nnz += static_cast<double>(pv[i].size());
    }
    ctx.add_cost(local_nnz * 24.0 + static_cast<double>(rows.size()) * 16.0,
                 local_nnz);
  });
  launch.execute();
  return d;
}

Scalar CsrMatrix::sum_all() const {
  // Never reduce over the 1-element placeholder vals store of an empty
  // matrix — its contents are not data (see norm_fro()).
  if (nnz() == 0) return {0.0, 0.0};
  return DArray(*rt_, vals_).sum();
}

const DArray& CsrMatrix::check_row() const {
  if (!check_row_) check_row_ = std::make_shared<DArray>(sum(0));
  return *check_row_;
}

const DArray& CsrMatrix::abs_check_row() const {
  if (!abs_check_row_) abs_check_row_ = std::make_shared<DArray>(abs_values().sum(0));
  return *abs_check_row_;
}

void CsrMatrix::to_host(std::vector<coord_t>& indptr, std::vector<coord_t>& indices,
                        std::vector<double>& values) const {
  auto pv = pos_.span<Rect1>();
  indptr.assign(static_cast<std::size_t>(rows_) + 1, 0);
  indices.clear();
  values.clear();
  if (empty_) return;
  auto cv = crd_.span<coord_t>();
  auto vv = vals_.span<double>();
  for (coord_t i = 0; i < rows_; ++i) {
    for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) {
      indices.push_back(cv[j]);
      values.push_back(vv[j]);
    }
    indptr[static_cast<std::size_t>(i) + 1] = static_cast<coord_t>(indices.size());
  }
}

}  // namespace legate::sparse
