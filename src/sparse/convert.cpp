// Format conversions (Section 5: sorts and data reorganization are the
// "hand-written" implementation group). Expansion-style conversions
// (CSR->COO, DIA fill, dense) run distributed; sort-based conversions
// (COO->CSR, CSR->CSC/transpose) run as single sequential tasks with honest
// costs, as conversions are assembly-time operations in all benchmarks.
#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "sparse/csr.h"
#include "sparse/formats.h"

namespace legate::sparse {

using dense::DArray;
using rt::Rect1;
using rt::TaskContext;
using rt::TaskLauncher;

// ---------------------------------------------------------------------------
// CSR -> COO (distributed row expansion)
// ---------------------------------------------------------------------------

CooMatrix CsrMatrix::tocoo() const {
  rt::Runtime& rt = *rt_;
  coord_t len = nnz_store_len();
  rt::Store row = rt.create_store(rt::DType::I64, {len});
  rt::Store col = rt.create_store(rt::DType::I64, {len});
  rt::Store vals = rt.create_store(rt::DType::F64, {len});
  TaskLauncher launch(rt, "csr_to_coo");
  int ip = launch.add_input(pos_);
  int ic = launch.add_input(crd_);
  int iv = launch.add_input(vals_);
  int ir = launch.add_output(row);
  int io = launch.add_output(col);
  int iw = launch.add_output(vals);
  launch.image_rects(ip, ic);
  launch.image_rects(ip, iv);
  launch.image_rects(ip, ir);
  launch.image_rects(ip, io);
  launch.image_rects(ip, iw);
  bool e = empty_;
  launch.set_leaf([=](TaskContext& ctx) {
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(ic);
    auto vv = ctx.full<double>(iv);
    auto rv = ctx.full<coord_t>(ir);
    auto ov = ctx.full<coord_t>(io);
    auto wv = ctx.full<double>(iw);
    Interval rows = ctx.interval(ip);
    double work = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      if (e) break;
      for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) {
        rv[j] = i;
        ov[j] = cv[j];
        wv[j] = vv[j];
      }
      work += static_cast<double>(pv[i].size());
    }
    ctx.add_cost(work * 40.0 + static_cast<double>(rows.size()) * 16.0, 0);
  });
  launch.execute();
  if (empty_) {
    row.span<coord_t>()[0] = 0;
    col.span<coord_t>()[0] = 0;
    vals.span<double>()[0] = 0;
  }
  CooMatrix out(rt, rows_, cols_, row, col, vals);
  return out;
}

// ---------------------------------------------------------------------------
// CSR transpose / CSR -> CSC (sequential counting sort with honest cost)
// ---------------------------------------------------------------------------

namespace {

struct TransposedArrays {
  std::vector<Rect1> pos;
  std::vector<coord_t> crd;
  std::vector<double> vals;
};

/// Counting-sort transpose of host-visible CSR arrays.
TransposedArrays transpose_host(coord_t rows, coord_t cols,
                                std::span<const Rect1> pos,
                                std::span<const coord_t> crd,
                                std::span<const double> vals, bool empty) {
  TransposedArrays out;
  std::vector<coord_t> counts(static_cast<std::size_t>(cols), 0);
  if (!empty) {
    for (coord_t i = 0; i < rows; ++i)
      for (coord_t j = pos[i].lo; j <= pos[i].hi; ++j)
        ++counts[static_cast<std::size_t>(crd[j])];
  }
  out.pos.resize(static_cast<std::size_t>(cols));
  coord_t cursor = 0;
  std::vector<coord_t> fill(static_cast<std::size_t>(cols));
  for (coord_t c = 0; c < cols; ++c) {
    out.pos[static_cast<std::size_t>(c)] = Rect1{cursor, cursor + counts[static_cast<std::size_t>(c)] - 1};
    fill[static_cast<std::size_t>(c)] = cursor;
    cursor += counts[static_cast<std::size_t>(c)];
  }
  out.crd.resize(static_cast<std::size_t>(std::max<coord_t>(cursor, 1)), 0);
  out.vals.resize(out.crd.size(), 0.0);
  if (!empty) {
    for (coord_t i = 0; i < rows; ++i) {
      for (coord_t j = pos[i].lo; j <= pos[i].hi; ++j) {
        coord_t c = crd[j];
        coord_t slot = fill[static_cast<std::size_t>(c)]++;
        out.crd[static_cast<std::size_t>(slot)] = i;
        out.vals[static_cast<std::size_t>(slot)] = vals[j];
      }
    }
  }
  return out;
}

}  // namespace

CscMatrix CsrMatrix::tocsc() const {
  rt::Runtime& rt = *rt_;
  rt::Store pos_t = rt.create_store(rt::DType::Rect1, {cols_});
  rt::Store crd_t = rt.create_store(rt::DType::I64, {nnz_store_len()});
  rt::Store vals_t = rt.create_store(rt::DType::F64, {nnz_store_len()});
  TaskLauncher launch(rt, "csr_to_csc");
  int ip = launch.add_input(pos_);
  int ic = launch.add_input(crd_);
  int iv = launch.add_input(vals_);
  int op = launch.add_output(pos_t);
  int oc = launch.add_output(crd_t);
  int ov = launch.add_output(vals_t);
  launch.require_colors(1);
  coord_t rows = rows_, cols = cols_;
  bool e = empty_;
  launch.set_leaf([=](TaskContext& ctx) {
    auto t = transpose_host(rows, cols, ctx.full<Rect1>(ip), ctx.full<coord_t>(ic),
                            ctx.full<double>(iv), e);
    std::copy(t.pos.begin(), t.pos.end(), ctx.full<Rect1>(op).begin());
    std::copy(t.crd.begin(), t.crd.end(), ctx.full<coord_t>(oc).begin());
    std::copy(t.vals.begin(), t.vals.end(), ctx.full<double>(ov).begin());
    double nnzs = static_cast<double>(t.crd.size());
    // Three passes over the data: count, scan, scatter.
    ctx.add_cost(nnzs * 3.0 * 16.0 + static_cast<double>(rows + cols) * 16.0, nnzs);
  });
  launch.execute();
  return CscMatrix(rt, rows_, cols_, pos_t, crd_t, vals_t);
}

CsrMatrix CsrMatrix::transpose() const {
  // Aᵀ in CSR has the same arrays as A in CSC.
  CscMatrix csc = tocsc();
  CsrMatrix out(*rt_, cols_, rows_, csc.pos(), csc.crd(), csc.vals());
  out.empty_ = empty_;
  return out;
}

// ---------------------------------------------------------------------------
// CSR -> DIA (offset scan + distributed fill)
// ---------------------------------------------------------------------------

DiaMatrix CsrMatrix::todia() const {
  rt::Runtime& rt = *rt_;
  // Offsets are small metadata, computed eagerly like SciPy does.
  std::set<coord_t> offsets_set;
  if (!empty_) {
    auto pv = pos_.span<Rect1>();
    auto cv = crd_.span<coord_t>();
    for (coord_t i = 0; i < rows_; ++i)
      for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) offsets_set.insert(cv[j] - i);
  }
  std::vector<coord_t> offsets(offsets_set.begin(), offsets_set.end());
  coord_t ndiag = std::max<coord_t>(static_cast<coord_t>(offsets.size()), 1);
  rt::Store data = rt.create_store(rt::DType::F64, {rows_, ndiag});
  DArray(rt, data).fill(0.0);

  if (!offsets.empty()) {
    TaskLauncher launch(rt, "csr_to_dia_fill");
    int id = launch.add_inout(data);
    int ip = launch.add_input(pos_);
    int ic = launch.add_input(crd_);
    int iv = launch.add_input(vals_);
    launch.align(id, ip);
    launch.image_rects(ip, ic);
    launch.image_rects(ip, iv);
    auto offs = offsets;  // captured by value
    launch.set_leaf([=](TaskContext& ctx) {
      auto dv = ctx.full<double>(id);
      auto pv = ctx.full<Rect1>(ip);
      auto cv = ctx.full<coord_t>(ic);
      auto vv = ctx.full<double>(iv);
      Interval rows = ctx.interval(ip);
      double work = 0;
      for (coord_t i = rows.lo; i < rows.hi; ++i) {
        for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) {
          coord_t off = cv[j] - i;
          auto it = std::lower_bound(offs.begin(), offs.end(), off);
          coord_t d = static_cast<coord_t>(it - offs.begin());
          dv[i * ndiag + d] = vv[j];
        }
        work += static_cast<double>(pv[i].size());
      }
      ctx.add_cost(work * 32.0, work * 8.0);
    });
    launch.execute();
  }
  return DiaMatrix(rt, rows_, cols_, offsets, data);
}

// ---------------------------------------------------------------------------
// CSR -> dense (distributed)
// ---------------------------------------------------------------------------

DArray CsrMatrix::todense() const {
  rt::Runtime& rt = *rt_;
  DArray out = DArray::zeros2d(rt, rows_, cols_);
  TaskLauncher launch(rt, "csr_to_dense");
  int id = launch.add_inout(out.store());
  int ip = launch.add_input(pos_);
  int ic = launch.add_input(crd_);
  int iv = launch.add_input(vals_);
  launch.align(id, ip);
  launch.image_rects(ip, ic);
  launch.image_rects(ip, iv);
  coord_t cols = cols_;
  bool e = empty_;
  launch.set_leaf([=](TaskContext& ctx) {
    auto dv = ctx.full<double>(id);
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(ic);
    auto vv = ctx.full<double>(iv);
    Interval rows = ctx.interval(ip);
    double work = 0;
    for (coord_t i = rows.lo; i < rows.hi && !e; ++i) {
      for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) dv[i * cols + cv[j]] += vv[j];
      work += static_cast<double>(pv[i].size());
    }
    ctx.add_cost(work * 32.0, work);
  });
  launch.execute();
  return out;
}

// ---------------------------------------------------------------------------
// Row slice (assembly-time, like SciPy's A[lo:hi])
// ---------------------------------------------------------------------------

CsrMatrix CsrMatrix::row_slice(coord_t lo, coord_t hi) const {
  if (lo < 0 || lo > rows_)
    throw IndexError("row_slice: start " + std::to_string(lo) +
                         " out of range [0, " + std::to_string(rows_) + "]",
                     "row", lo, rows_);
  if (hi < lo || hi > rows_)
    throw IndexError("row_slice: stop " + std::to_string(hi) +
                         " out of range [" + std::to_string(lo) + ", " +
                         std::to_string(rows_) + "]",
                     "row", hi, rows_);
  std::vector<coord_t> indptr, indices;
  std::vector<double> values;
  indptr.push_back(0);
  auto pv = pos_.span<Rect1>();
  auto cv = crd_.span<coord_t>();
  auto vv = vals_.span<double>();
  for (coord_t i = lo; i < hi; ++i) {
    if (!empty_) {
      for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) {
        indices.push_back(cv[j]);
        values.push_back(vv[j]);
      }
    }
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  return from_host(*rt_, hi - lo, cols_, indptr, indices, values);
}

// ---------------------------------------------------------------------------
// COO
// ---------------------------------------------------------------------------

CooMatrix CooMatrix::from_host(rt::Runtime& rt, coord_t rows, coord_t cols,
                               const std::vector<coord_t>& row,
                               const std::vector<coord_t>& col,
                               const std::vector<double>& vals) {
  LSR_CHECK(row.size() == col.size() && col.size() == vals.size());
  LSR_CHECK_MSG(!row.empty(), "empty COO matrices unsupported; use CsrMatrix");
  return CooMatrix(rt, rows, cols, rt.attach(row), rt.attach(col), rt.attach(vals));
}

CsrMatrix CooMatrix::tocsr() const {
  rt::Runtime& rt = *rt_;
  // Hand-written sort + duplicate sum (Section 5.3), sequential with honest
  // sort cost: nnz log nnz comparisons over 24-byte triples.
  coord_t n = nnz();
  std::vector<std::size_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0u);
  auto rv = row_.span<coord_t>();
  auto cv = col_.span<coord_t>();
  auto vv = vals_.span<double>();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::tie(rv[a], cv[a]) < std::tie(rv[b], cv[b]);
  });
  std::vector<coord_t> indptr(static_cast<std::size_t>(rows_) + 1, 0), indices;
  std::vector<double> values;
  coord_t prev_r = -1, prev_c = -1;
  for (std::size_t k = 0; k < order.size(); ++k) {
    coord_t r = rv[order[k]], c = cv[order[k]];
    double v = vv[order[k]];
    if (r == prev_r && c == prev_c) {
      values.back() += v;  // duplicate coordinate: sum (SciPy semantics)
    } else {
      indices.push_back(c);
      values.push_back(v);
      prev_r = r;
      prev_c = c;
    }
    indptr[static_cast<std::size_t>(r) + 1] = static_cast<coord_t>(indices.size());
  }
  // Fill gaps for empty rows (indptr must be monotone).
  for (std::size_t i = 1; i < indptr.size(); ++i)
    indptr[i] = std::max(indptr[i], indptr[i - 1]);

  // Charge the sort to the simulated machine as a sequential task.
  rt::TaskLauncher launch(rt, "coo_sort");
  int ir = launch.add_input(row_);
  launch.require_colors(1);
  launch.set_leaf([=](rt::TaskContext& ctx) {
    double nn = static_cast<double>(ctx.full<coord_t>(ir).size());
    ctx.add_cost(nn * 24.0 * std::max(1.0, std::log2(nn)), nn * std::max(1.0, std::log2(nn)));
  });
  launch.execute();

  return CsrMatrix::from_host(rt, rows_, cols_, indptr, indices, values);
}

CooMatrix CooMatrix::transpose() const {
  return CooMatrix(*rt_, cols_, rows_, col_, row_, vals_);
}

DArray CooMatrix::spmv(const DArray& x) const {
  LSR_CHECK_MSG(x.size() == cols_, "coo spmv dimension mismatch");
  rt::Runtime& rt = *rt_;
  DArray y(rt, rt.create_store(rt::DType::F64, {rows_}));
  TaskLauncher launch(rt, "coo_spmv");
  int iy = launch.add_reduction(y.store());
  int ir = launch.add_input(row_);
  int ic = launch.add_input(col_);
  int iv = launch.add_input(vals_);
  int ix = launch.add_input(x.store());
  launch.align(ir, ic);
  launch.align(ir, iv);
  launch.image_points(ic, ix);
  launch.set_leaf([=](TaskContext& ctx) {
    auto yv = ctx.full<double>(iy);
    auto rv = ctx.full<coord_t>(ir);
    auto cv = ctx.full<coord_t>(ic);
    auto vv = ctx.full<double>(iv);
    auto xv = ctx.full<double>(ix);
    Interval ent = ctx.elem_interval(ir);
    for (coord_t j = ent.lo; j < ent.hi; ++j) yv[rv[j]] += vv[j] * xv[cv[j]];
    ctx.add_cost(static_cast<double>(ent.size()) * 40.0,
                 2.0 * static_cast<double>(ent.size()));
  });
  launch.execute();
  return y;
}

// ---------------------------------------------------------------------------
// CSC
// ---------------------------------------------------------------------------

CsrMatrix CscMatrix::transpose_as_csr() const {
  return CsrMatrix(*rt_, cols_, rows_, pos_, crd_, vals_);
}

CsrMatrix CscMatrix::tocsr() const { return transpose_as_csr().transpose(); }

DArray CscMatrix::spmv(const DArray& x) const {
  LSR_CHECK_MSG(x.size() == cols_, "csc spmv dimension mismatch");
  rt::Runtime& rt = *rt_;
  DArray y(rt, rt.create_store(rt::DType::F64, {rows_}));
  TaskLauncher launch(rt, "csc_spmv");
  int iy = launch.add_reduction(y.store());
  int ip = launch.add_input(pos_);
  int ic = launch.add_input(crd_);
  int iv = launch.add_input(vals_);
  int ix = launch.add_input(x.store());
  launch.align(ip, ix);  // both indexed by column
  launch.image_rects(ip, ic);
  launch.image_rects(ip, iv);
  launch.set_leaf([=](TaskContext& ctx) {
    auto yv = ctx.full<double>(iy);
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(ic);
    auto vv = ctx.full<double>(iv);
    auto xv = ctx.full<double>(ix);
    Interval cols = ctx.interval(ip);
    double work = 0;
    for (coord_t c = cols.lo; c < cols.hi; ++c) {
      double xc = xv[c];
      for (coord_t j = pv[c].lo; j <= pv[c].hi; ++j) yv[cv[j]] += vv[j] * xc;
      work += static_cast<double>(pv[c].size());
    }
    ctx.add_cost(work * 32.0 + static_cast<double>(cols.size()) * 24.0, 2.0 * work);
  });
  launch.execute();
  return y;
}

// ---------------------------------------------------------------------------
// DIA
// ---------------------------------------------------------------------------

DArray DiaMatrix::spmv(const DArray& x) const {
  LSR_CHECK_MSG(x.size() == cols_, "dia spmv dimension mismatch");
  rt::Runtime& rt = *rt_;
  DArray y(rt, rt.create_store(rt::DType::F64, {rows_}));
  coord_t ndiag = data_.shape()[1];
  coord_t min_off = 0, max_off = 0;
  for (coord_t o : offsets_) {
    min_off = std::min(min_off, o);
    max_off = std::max(max_off, o);
  }
  TaskLauncher launch(rt, "dia_spmv");
  int iy = launch.add_output(y.store());
  int id = launch.add_input(data_);
  int ix = launch.add_input(x.store());
  launch.align(iy, id);
  launch.halo(iy, ix, min_off, max_off);
  auto offs = offsets_;
  coord_t cols = cols_;
  launch.set_leaf([=](TaskContext& ctx) {
    auto yv = ctx.full<double>(iy);
    auto dv = ctx.full<double>(id);
    auto xv = ctx.full<double>(ix);
    Interval rows = ctx.interval(iy);
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      double acc = 0;
      for (std::size_t d = 0; d < offs.size(); ++d) {
        coord_t j = i + offs[d];
        if (j >= 0 && j < cols) acc += dv[i * ndiag + static_cast<coord_t>(d)] * xv[j];
      }
      yv[i] = acc;
    }
    double work = static_cast<double>(rows.size()) * static_cast<double>(offs.size());
    ctx.add_cost(work * 16.0 + static_cast<double>(rows.size()) * 8.0, 2.0 * work);
  });
  launch.execute();
  return y;
}

CsrMatrix DiaMatrix::tocsr() const {
  rt::Runtime& rt = *rt_;
  // Counts per row are closed-form; emit all in-band entries like SciPy.
  std::vector<coord_t> indptr(static_cast<std::size_t>(rows_) + 1, 0), indices;
  std::vector<double> values;
  auto dv = data_.span<double>();
  coord_t ndiag = data_.shape()[1];
  std::vector<coord_t> sorted = offsets_;
  std::sort(sorted.begin(), sorted.end());
  for (coord_t i = 0; i < rows_; ++i) {
    for (coord_t off : sorted) {
      coord_t j = i + off;
      if (j < 0 || j >= cols_) continue;
      auto it = std::lower_bound(offsets_.begin(), offsets_.end(), off);
      coord_t d = static_cast<coord_t>(it - offsets_.begin());
      indices.push_back(j);
      values.push_back(dv[i * ndiag + d]);
    }
    indptr[static_cast<std::size_t>(i) + 1] = static_cast<coord_t>(indices.size());
  }
  return CsrMatrix::from_host(rt, rows_, cols_, indptr, indices, values);
}

}  // namespace legate::sparse
