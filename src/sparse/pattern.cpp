// Pattern-producing CSR operations (SpGEMM, sparse add/subtract, Hadamard
// multiply, prune, dense->CSR). All follow the two-phase scheme real
// distributed SpGEMM implementations use: a symbolic pass counts the output
// entries per row, a scan builds the output `pos` region, and a numeric pass
// fills `crd`/`vals` through an image of the new pos.
#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sparse/csr.h"
#include "sparse/formats.h"

namespace legate::sparse {

using dense::DArray;
using rt::Rect1;
using rt::TaskContext;
using rt::TaskLauncher;

namespace {

/// Scan per-row counts into a Rect1 `pos` store; returns total entries.
/// The scan is a single sequential task (prefix sums are latency-bound
/// metadata work; the paper's implementation similarly serializes them).
std::pair<rt::Store, coord_t> scan_counts(rt::Runtime& rt, const rt::Store& counts) {
  rt::Store pos = rt.create_store(rt::DType::Rect1, {counts.volume()});
  TaskLauncher launch(rt, "scan_counts");
  int ic = launch.add_input(counts);
  int ip = launch.add_output(pos);
  launch.align(ic, ip);
  launch.require_colors(1);
  launch.reduce_scalar(rt::ScalarRedop::Sum);
  launch.set_leaf([=](TaskContext& ctx) {
    auto cv = ctx.full<coord_t>(ic);
    auto pv = ctx.full<Rect1>(ip);
    coord_t cursor = 0;
    for (coord_t i = 0; i < static_cast<coord_t>(cv.size()); ++i) {
      pv[i] = Rect1{cursor, cursor + cv[i] - 1};
      cursor += cv[i];
    }
    ctx.add_cost(static_cast<double>(cv.size()) * 24.0,
                 static_cast<double>(cv.size()));
    ctx.contribute(static_cast<double>(cursor));
  });
  rt::Future f = launch.execute();
  return {pos, static_cast<coord_t>(f.value)};
}

/// Allocate crd/vals stores for `total` entries (1-element placeholder when
/// the result is empty so downstream partitioning stays uniform).
std::pair<rt::Store, rt::Store> make_output_arrays(rt::Runtime& rt, coord_t total) {
  coord_t len = std::max<coord_t>(total, 1);
  rt::Store crd = rt.create_store(rt::DType::I64, {len});
  rt::Store vals = rt.create_store(rt::DType::F64, {len});
  if (total == 0) {
    crd.span<coord_t>()[0] = 0;
    vals.span<double>()[0] = 0;
    rt.mark_attached(crd);
    rt.mark_attached(vals);
  }
  return {crd, vals};
}

CsrMatrix assemble(rt::Runtime& rt, coord_t rows, coord_t cols, rt::Store pos,
                   rt::Store crd, rt::Store vals, coord_t total) {
  CsrMatrix out(rt, rows, cols, std::move(pos), std::move(crd), std::move(vals));
  if (total == 0) {
    // Rebuild through from_host to set the empty flag consistently.
    return CsrMatrix::from_host(rt, rows, cols,
                                std::vector<coord_t>(static_cast<std::size_t>(rows) + 1, 0),
                                {}, {});
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SpGEMM
// ---------------------------------------------------------------------------

CsrMatrix CsrMatrix::spgemm(const CsrMatrix& b) const {
  LSR_CHECK_MSG(cols_ == b.rows_, "spgemm dimension mismatch");
  rt::Runtime& rt = *rt_;

  // Symbolic phase: per-row distinct-column counts.
  rt::Store counts = rt.create_store(rt::DType::I64, {rows_});
  {
    TaskLauncher launch(rt, "spgemm_count");
    int ik = launch.add_output(counts);
    int ipa = launch.add_input(pos_);
    int ica = launch.add_input(crd_);
    int ipb = launch.add_input(b.pos_);
    int icb = launch.add_input(b.crd_);
    launch.align(ik, ipa);
    launch.image_rects(ipa, ica);
    launch.image_points(ica, ipb);
    launch.image_rects(ipb, icb);
    apply_row_strategy(launch, ipa);
    bool a_empty = empty_, b_empty = b.empty_;
    launch.set_leaf([=](TaskContext& ctx) {
      auto kv = ctx.full<coord_t>(ik);
      auto pa = ctx.full<Rect1>(ipa);
      auto ca = ctx.full<coord_t>(ica);
      auto pb = ctx.full<Rect1>(ipb);
      auto cb = ctx.full<coord_t>(icb);
      Interval rows = ctx.interval(ipa);
      std::unordered_set<coord_t> seen;
      double work = 0;
      for (coord_t i = rows.lo; i < rows.hi; ++i) {
        seen.clear();
        if (!a_empty && !b_empty) {
          for (coord_t j = pa[i].lo; j <= pa[i].hi; ++j) {
            coord_t brow = ca[j];
            for (coord_t l = pb[brow].lo; l <= pb[brow].hi; ++l) seen.insert(cb[l]);
            work += static_cast<double>(pb[brow].size());
          }
        }
        kv[i] = static_cast<coord_t>(seen.size());
      }
      ctx.add_cost(work * 24.0 + static_cast<double>(rows.size()) * 32.0, work);
    });
    launch.execute();
  }

  auto [pos_out, total] = scan_counts(rt, counts);
  auto [crd_out, vals_out] = make_output_arrays(rt, total);
  if (total == 0) return assemble(rt, rows_, b.cols_, pos_out, crd_out, vals_out, 0);

  // Numeric phase: row-wise accumulator, emitted in sorted column order.
  TaskLauncher launch(rt, "spgemm_fill");
  int ipo = launch.add_input(pos_out);
  int ico = launch.add_output(crd_out);
  int ivo = launch.add_output(vals_out);
  int ipa = launch.add_input(pos_);
  int ica = launch.add_input(crd_);
  int iva = launch.add_input(vals_);
  int ipb = launch.add_input(b.pos_);
  int icb = launch.add_input(b.crd_);
  int ivb = launch.add_input(b.vals_);
  launch.align(ipo, ipa);
  launch.image_rects(ipo, ico);
  launch.image_rects(ipo, ivo);
  launch.image_rects(ipa, ica);
  launch.image_rects(ipa, iva);
  launch.image_points(ica, ipb);
  launch.image_rects(ipb, icb);
  launch.image_rects(ipb, ivb);
  apply_row_strategy(launch, ipa);
  launch.set_leaf([=](TaskContext& ctx) {
    auto po = ctx.full<Rect1>(ipo);
    auto co = ctx.full<coord_t>(ico);
    auto vo = ctx.full<double>(ivo);
    auto pa = ctx.full<Rect1>(ipa);
    auto ca = ctx.full<coord_t>(ica);
    auto va = ctx.full<double>(iva);
    auto pb = ctx.full<Rect1>(ipb);
    auto cb = ctx.full<coord_t>(icb);
    auto vb = ctx.full<double>(ivb);
    Interval rows = ctx.interval(ipa);
    std::unordered_map<coord_t, double> acc;
    std::vector<std::pair<coord_t, double>> sorted;
    double work = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      acc.clear();
      for (coord_t j = pa[i].lo; j <= pa[i].hi; ++j) {
        coord_t brow = ca[j];
        double av = va[j];
        for (coord_t l = pb[brow].lo; l <= pb[brow].hi; ++l) acc[cb[l]] += av * vb[l];
        work += static_cast<double>(pb[brow].size());
      }
      sorted.assign(acc.begin(), acc.end());
      std::sort(sorted.begin(), sorted.end());
      coord_t cursor = po[i].lo;
      for (auto& [col, v] : sorted) {
        co[cursor] = col;
        vo[cursor] = v;
        ++cursor;
      }
    }
    ctx.add_cost(work * 32.0 + static_cast<double>(rows.size()) * 40.0, 2.0 * work);
  });
  launch.execute();
  return assemble(rt, rows_, b.cols_, pos_out, crd_out, vals_out, total);
}

// ---------------------------------------------------------------------------
// Sparse add / subtract / Hadamard multiply (merge kernels)
// ---------------------------------------------------------------------------

namespace {
enum class MergeOp { Add, Sub, Mul };
}

static CsrMatrix merge_patterns(const CsrMatrix& a, const CsrMatrix& b, MergeOp op) {
  LSR_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                "element-wise shape mismatch");
  rt::Runtime& rt = a.runtime();
  const bool intersect = op == MergeOp::Mul;

  rt::Store counts = rt.create_store(rt::DType::I64, {a.rows()});
  {
    TaskLauncher launch(rt, "merge_count");
    int ik = launch.add_output(counts);
    int ipa = launch.add_input(a.pos());
    int ica = launch.add_input(a.crd());
    int ipb = launch.add_input(b.pos());
    int icb = launch.add_input(b.crd());
    launch.align(ik, ipa);
    launch.align(ipa, ipb);
    launch.image_rects(ipa, ica);
    launch.image_rects(ipb, icb);
    a.apply_row_strategy(launch, ipa);
    bool ae = a.nnz() == 0, be = b.nnz() == 0;
    launch.set_leaf([=](TaskContext& ctx) {
      auto kv = ctx.full<coord_t>(ik);
      auto pa = ctx.full<Rect1>(ipa);
      auto ca = ctx.full<coord_t>(ica);
      auto pb = ctx.full<Rect1>(ipb);
      auto cb = ctx.full<coord_t>(icb);
      Interval rows = ctx.interval(ipa);
      double work = 0;
      for (coord_t i = rows.lo; i < rows.hi; ++i) {
        coord_t ja = ae ? 1 : pa[i].lo, jae = ae ? 0 : pa[i].hi;
        coord_t jb = be ? 1 : pb[i].lo, jbe = be ? 0 : pb[i].hi;
        coord_t count = 0;
        while (ja <= jae && jb <= jbe) {
          if (ca[ja] == cb[jb]) {
            ++count;
            ++ja;
            ++jb;
          } else if (ca[ja] < cb[jb]) {
            count += intersect ? 0 : 1;
            ++ja;
          } else {
            count += intersect ? 0 : 1;
            ++jb;
          }
        }
        if (!intersect) count += (jae - ja + 1) + (jbe - jb + 1);
        kv[i] = count;
        work += static_cast<double>((ae ? 0 : pa[i].size()) + (be ? 0 : pb[i].size()));
      }
      ctx.add_cost(work * 16.0 + static_cast<double>(rows.size()) * 40.0, work);
    });
    launch.execute();
  }

  auto [pos_out, total] = scan_counts(rt, counts);
  auto [crd_out, vals_out] = make_output_arrays(rt, total);
  if (total == 0) return assemble(rt, a.rows(), a.cols(), pos_out, crd_out, vals_out, 0);

  TaskLauncher launch(rt, "merge_fill");
  int ipo = launch.add_input(pos_out);
  int ico = launch.add_output(crd_out);
  int ivo = launch.add_output(vals_out);
  int ipa = launch.add_input(a.pos());
  int ica = launch.add_input(a.crd());
  int iva = launch.add_input(a.vals());
  int ipb = launch.add_input(b.pos());
  int icb = launch.add_input(b.crd());
  int ivb = launch.add_input(b.vals());
  launch.align(ipo, ipa);
  launch.align(ipa, ipb);
  launch.image_rects(ipo, ico);
  launch.image_rects(ipo, ivo);
  launch.image_rects(ipa, ica);
  launch.image_rects(ipa, iva);
  launch.image_rects(ipb, icb);
  launch.image_rects(ipb, ivb);
  a.apply_row_strategy(launch, ipa);
  bool ae = a.nnz() == 0, be = b.nnz() == 0;
  launch.set_leaf([=](TaskContext& ctx) {
    auto po = ctx.full<Rect1>(ipo);
    auto co = ctx.full<coord_t>(ico);
    auto vo = ctx.full<double>(ivo);
    auto pa = ctx.full<Rect1>(ipa);
    auto ca = ctx.full<coord_t>(ica);
    auto va = ctx.full<double>(iva);
    auto pb = ctx.full<Rect1>(ipb);
    auto cb = ctx.full<coord_t>(icb);
    auto vb = ctx.full<double>(ivb);
    Interval rows = ctx.interval(ipa);
    double work = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      coord_t ja = ae ? 1 : pa[i].lo, jae = ae ? 0 : pa[i].hi;
      coord_t jb = be ? 1 : pb[i].lo, jbe = be ? 0 : pb[i].hi;
      coord_t cursor = po[i].lo;
      auto emit = [&](coord_t col, double v) {
        co[cursor] = col;
        vo[cursor] = v;
        ++cursor;
      };
      while (ja <= jae && jb <= jbe) {
        if (ca[ja] == cb[jb]) {
          double v = op == MergeOp::Add   ? va[ja] + vb[jb]
                     : op == MergeOp::Sub ? va[ja] - vb[jb]
                                          : va[ja] * vb[jb];
          emit(ca[ja], v);
          ++ja;
          ++jb;
        } else if (ca[ja] < cb[jb]) {
          if (!intersect) emit(ca[ja], op == MergeOp::Mul ? 0.0 : va[ja]);
          ++ja;
        } else {
          if (!intersect) emit(cb[jb], op == MergeOp::Sub ? -vb[jb] : vb[jb]);
          ++jb;
        }
      }
      if (!intersect) {
        for (; ja <= jae; ++ja) emit(ca[ja], va[ja]);
        for (; jb <= jbe; ++jb) emit(cb[jb], op == MergeOp::Sub ? -vb[jb] : vb[jb]);
      }
      work += static_cast<double>((ae ? 0 : pa[i].size()) + (be ? 0 : pb[i].size()));
    }
    ctx.add_cost(work * 40.0 + static_cast<double>(rows.size()) * 40.0, work);
  });
  launch.execute();
  return assemble(rt, a.rows(), a.cols(), pos_out, crd_out, vals_out, total);
}

CsrMatrix CsrMatrix::add(const CsrMatrix& b) const {
  return merge_patterns(*this, b, MergeOp::Add);
}
CsrMatrix CsrMatrix::sub(const CsrMatrix& b) const {
  return merge_patterns(*this, b, MergeOp::Sub);
}
CsrMatrix CsrMatrix::multiply(const CsrMatrix& b) const {
  return merge_patterns(*this, b, MergeOp::Mul);
}

// ---------------------------------------------------------------------------
// Prune (eliminate entries with |v| <= tol)
// ---------------------------------------------------------------------------

CsrMatrix CsrMatrix::prune(double tol) const {
  rt::Runtime& rt = *rt_;
  rt::Store counts = rt.create_store(rt::DType::I64, {rows_});
  {
    TaskLauncher launch(rt, "prune_count");
    int ik = launch.add_output(counts);
    int ip = launch.add_input(pos_);
    int iv = launch.add_input(vals_);
    launch.align(ik, ip);
    launch.image_rects(ip, iv);
    apply_row_strategy(launch, ip);
    bool e = empty_;
    launch.set_leaf([=](TaskContext& ctx) {
      auto kv = ctx.full<coord_t>(ik);
      auto pv = ctx.full<Rect1>(ip);
      auto vv = ctx.full<double>(iv);
      Interval rows = ctx.interval(ip);
      double work = 0;
      for (coord_t i = rows.lo; i < rows.hi; ++i) {
        coord_t count = 0;
        if (!e) {
          for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j)
            count += std::fabs(vv[j]) > tol;
        }
        kv[i] = count;
        work += static_cast<double>(pv[i].size());
      }
      ctx.add_cost(work * 8.0 + static_cast<double>(rows.size()) * 24.0, work);
    });
    launch.execute();
  }
  auto [pos_out, total] = scan_counts(rt, counts);
  auto [crd_out, vals_out] = make_output_arrays(rt, total);
  if (total == 0) return assemble(rt, rows_, cols_, pos_out, crd_out, vals_out, 0);

  TaskLauncher launch(rt, "prune_fill");
  int ipo = launch.add_input(pos_out);
  int ico = launch.add_output(crd_out);
  int ivo = launch.add_output(vals_out);
  int ip = launch.add_input(pos_);
  int ic = launch.add_input(crd_);
  int iv = launch.add_input(vals_);
  launch.align(ipo, ip);
  launch.image_rects(ipo, ico);
  launch.image_rects(ipo, ivo);
  launch.image_rects(ip, ic);
  launch.image_rects(ip, iv);
  apply_row_strategy(launch, ip);
  launch.set_leaf([=](TaskContext& ctx) {
    auto po = ctx.full<Rect1>(ipo);
    auto co = ctx.full<coord_t>(ico);
    auto vo = ctx.full<double>(ivo);
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(ic);
    auto vv = ctx.full<double>(iv);
    Interval rows = ctx.interval(ip);
    double work = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      coord_t cursor = po[i].lo;
      for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) {
        if (std::fabs(vv[j]) > tol) {
          co[cursor] = cv[j];
          vo[cursor] = vv[j];
          ++cursor;
        }
      }
      work += static_cast<double>(pv[i].size());
    }
    ctx.add_cost(work * 32.0, work);
  });
  launch.execute();
  return assemble(rt, rows_, cols_, pos_out, crd_out, vals_out, total);
}

// ---------------------------------------------------------------------------
// Dense -> CSR
// ---------------------------------------------------------------------------

CsrMatrix csr_from_dense(const DArray& a) {
  LSR_CHECK_MSG(a.dim() == 2, "csr_from_dense needs a 2-D array");
  rt::Runtime& rt = a.runtime();
  coord_t rows = a.rows(), cols = a.cols();
  rt::Store counts = rt.create_store(rt::DType::I64, {rows});
  {
    TaskLauncher launch(rt, "from_dense_count");
    int ik = launch.add_output(counts);
    int ia = launch.add_input(a.store());
    launch.align(ik, ia);
    launch.set_leaf([=](TaskContext& ctx) {
      auto kv = ctx.full<coord_t>(ik);
      auto av = ctx.full<double>(ia);
      Interval riv = ctx.interval(ia);
      for (coord_t i = riv.lo; i < riv.hi; ++i) {
        coord_t count = 0;
        for (coord_t j = 0; j < cols; ++j) count += av[i * cols + j] != 0.0;
        kv[i] = count;
      }
      ctx.add_cost(static_cast<double>(riv.size()) * static_cast<double>(cols) * 8.0,
                   static_cast<double>(riv.size()) * static_cast<double>(cols));
    });
    launch.execute();
  }
  auto [pos_out, total] = scan_counts(rt, counts);
  auto [crd_out, vals_out] = make_output_arrays(rt, total);
  if (total == 0) return assemble(rt, rows, cols, pos_out, crd_out, vals_out, 0);

  TaskLauncher launch(rt, "from_dense_fill");
  int ipo = launch.add_input(pos_out);
  int ico = launch.add_output(crd_out);
  int ivo = launch.add_output(vals_out);
  int ia = launch.add_input(a.store());
  launch.align(ipo, ia);
  launch.image_rects(ipo, ico);
  launch.image_rects(ipo, ivo);
  launch.set_leaf([=](TaskContext& ctx) {
    auto po = ctx.full<Rect1>(ipo);
    auto co = ctx.full<coord_t>(ico);
    auto vo = ctx.full<double>(ivo);
    auto av = ctx.full<double>(ia);
    Interval riv = ctx.interval(ia);
    for (coord_t i = riv.lo; i < riv.hi; ++i) {
      coord_t cursor = po[i].lo;
      for (coord_t j = 0; j < cols; ++j) {
        double v = av[i * cols + j];
        if (v != 0.0) {
          co[cursor] = j;
          vo[cursor] = v;
          ++cursor;
        }
      }
    }
    ctx.add_cost(static_cast<double>(riv.size()) * static_cast<double>(cols) * 8.0,
                 static_cast<double>(riv.size()) * static_cast<double>(cols));
  });
  launch.execute();
  return assemble(rt, rows, cols, pos_out, crd_out, vals_out, total);
}

}  // namespace legate::sparse
