#pragma once

#include <memory>

#include "dense/array.h"
#include "rt/runtime.h"

namespace legate::sparse {

class CooMatrix;
class CscMatrix;
class DiaMatrix;

/// Distributed CSR sparse matrix in the paper's region-backed encoding
/// (Fig. 3): a `pos` store of one inclusive Rect1 per row pointing into
/// parallel `crd` (column) and `vals` stores. Partitions of `crd`/`vals` are
/// always derived from a row partition of `pos` via image constraints, and
/// partitions of dense operands via an image of `crd` — so distributed
/// kernels never name concrete partitions (Section 4.1).
///
/// Kernel provenance mirrors Section 5: tensor-algebra kernels (spmv, spmm,
/// spgemm, sddmm) follow the DISTAL-generated structure of Fig. 7;
/// element-wise and reduction operations are "ports" built on the dense
/// library; sorts/conversions are the hand-written group.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(rt::Runtime& rt, coord_t rows, coord_t cols, rt::Store pos,
            rt::Store crd, rt::Store vals)
      : rt_(&rt),
        rows_(rows),
        cols_(cols),
        pos_(std::move(pos)),
        crd_(std::move(crd)),
        vals_(std::move(vals)) {
    if (validate_formats()) validate();
  }

  /// Build from host-side CSR triples (indptr has rows+1 entries).
  static CsrMatrix from_host(rt::Runtime& rt, coord_t rows, coord_t cols,
                             const std::vector<coord_t>& indptr,
                             const std::vector<coord_t>& indices,
                             const std::vector<double>& values);

  // ---- metadata -----------------------------------------------------------
  [[nodiscard]] bool valid() const { return rt_ != nullptr; }
  [[nodiscard]] coord_t rows() const { return rows_; }
  [[nodiscard]] coord_t cols() const { return cols_; }
  [[nodiscard]] coord_t nnz() const { return empty_ ? 0 : crd_.volume(); }
  [[nodiscard]] const rt::Store& pos() const { return pos_; }
  [[nodiscard]] const rt::Store& crd() const { return crd_; }
  [[nodiscard]] const rt::Store& vals() const { return vals_; }
  [[nodiscard]] rt::Runtime& runtime() const { return *rt_; }

  // ---- tensor algebra (DISTAL-generated kernel group) ----------------------
  /// y = A @ x — the row-split SpMV of Fig. 4/7.
  [[nodiscard]] dense::DArray spmv(const dense::DArray& x) const;
  /// C = A @ B with dense B[n,k]: row-split, B rows gathered by image.
  [[nodiscard]] dense::DArray spmm(const dense::DArray& b) const;
  /// C = A @ B with sparse B (two-phase symbolic/numeric SpGEMM).
  [[nodiscard]] CsrMatrix spgemm(const CsrMatrix& b) const;
  /// out = A ⊙ (B @ C): sampled dense-dense matmul, B[m,k], C[k,n].
  /// The key factorization-benchmark kernel (Section 6.2).
  [[nodiscard]] CsrMatrix sddmm(const dense::DArray& b, const dense::DArray& c) const;

  // ---- element-wise & structural (ported group) ------------------------------
  [[nodiscard]] CsrMatrix add(const CsrMatrix& b) const;
  [[nodiscard]] CsrMatrix sub(const CsrMatrix& b) const;
  /// Element-wise (Hadamard) product; result keeps the intersection pattern.
  [[nodiscard]] CsrMatrix multiply(const CsrMatrix& b) const;
  [[nodiscard]] CsrMatrix scale(dense::Scalar a) const;
  [[nodiscard]] CsrMatrix neg() const { return scale(-1.0); }
  [[nodiscard]] CsrMatrix abs_values() const;
  [[nodiscard]] CsrMatrix power_values(double p) const;
  [[nodiscard]] CsrMatrix copy() const;
  /// Drop stored zeros (SciPy's eliminate_zeros).
  [[nodiscard]] CsrMatrix prune(double tol = 0.0) const;

  /// Scale row i by d[i] (diag(d) @ A) — used by the Jacobi smoother.
  [[nodiscard]] CsrMatrix scale_rows(const dense::DArray& d) const;
  /// Scale column j by d[j] (A @ diag(d)); d gathered through the crd image.
  [[nodiscard]] CsrMatrix scale_cols(const dense::DArray& d) const;

  // ---- reductions & extraction ----------------------------------------------
  [[nodiscard]] dense::DArray diagonal() const;
  /// axis 0: column sums (length cols); axis 1: row sums (length rows).
  [[nodiscard]] dense::DArray sum(int axis) const;
  [[nodiscard]] dense::Scalar sum_all() const;
  /// axis 0/1 means like scipy's A.mean(axis).
  [[nodiscard]] dense::DArray mean(int axis) const;
  /// Count of stored entries per row.
  [[nodiscard]] dense::DArray row_nnz() const;
  /// Entries with value != 0 (scipy.count_nonzero vs nnz).
  [[nodiscard]] dense::Scalar count_nonzero() const;
  /// Frobenius norm sqrt(sum v^2).
  [[nodiscard]] dense::Scalar norm_fro() const;
  /// max_j sum_i |a_ij| (1-norm) / max_i sum_j |a_ij| (inf-norm).
  [[nodiscard]] dense::Scalar norm_1() const;
  [[nodiscard]] dense::Scalar norm_inf() const;
  /// Largest / smallest stored value (scipy's max()/min() on data).
  [[nodiscard]] dense::Scalar max_value() const;
  [[nodiscard]] dense::Scalar min_value() const;

  // ---- structure ---------------------------------------------------------------
  /// Keep entries on/below the k-th diagonal (scipy.sparse.tril).
  [[nodiscard]] CsrMatrix tril(coord_t k = 0) const;
  /// Keep entries on/above the k-th diagonal (scipy.sparse.triu).
  [[nodiscard]] CsrMatrix triu(coord_t k = 0) const;
  /// Row i as a dense vector of length cols (scipy's getrow().todense()).
  [[nodiscard]] dense::DArray getrow(coord_t i) const;
  /// Column j as a dense vector of length rows.
  [[nodiscard]] dense::DArray getcol(coord_t j) const;
  /// Single element lookup (0 when not stored).
  [[nodiscard]] double get(coord_t i, coord_t j) const;
  /// Set the main diagonal to d (scipy's setdiag; pattern must contain it).
  [[nodiscard]] CsrMatrix with_diagonal(const dense::DArray& d) const;

  // ---- format conversions ------------------------------------------------------
  [[nodiscard]] CooMatrix tocoo() const;
  [[nodiscard]] CscMatrix tocsc() const;
  [[nodiscard]] DiaMatrix todia() const;
  [[nodiscard]] CsrMatrix transpose() const;
  [[nodiscard]] dense::DArray todense() const;  ///< row-major (rows, cols)

  // ---- slicing -----------------------------------------------------------------
  /// Rows [lo, hi) as a new matrix (SciPy A[lo:hi]).
  [[nodiscard]] CsrMatrix row_slice(coord_t lo, coord_t hi) const;

  /// Read back as host triples (testing / small matrices).
  void to_host(std::vector<coord_t>& indptr, std::vector<coord_t>& indices,
               std::vector<double>& values) const;

  /// Check the Fig. 3 encoding invariants — pos rows strictly monotone and
  /// in-bounds for crd/vals, column coordinates within [0, cols) and strictly
  /// increasing within each row, values finite (no NaN/Inf), crd and vals the
  /// same length — throwing FormatError on the first violation, naming the
  /// offending row. Runs automatically at construction while
  /// validate_formats() is on.
  void validate() const;

  // ---- partitioning strategy ----------------------------------------------
  /// Override the runtime-wide row-split strategy for this matrix's kernels
  /// (rt::PartitionStrategy::Unset = inherit the runtime's). Value-sharing
  /// derivatives (with_vals results: scale, abs_values, sddmm, ...) inherit
  /// the override and the cached balanced split.
  void set_partition_strategy(rt::PartitionStrategy s) { part_strategy_ = s; }
  /// Effective strategy for this matrix, with Auto resolved against the
  /// nnz-imbalance heuristic: the result is Rows or Nnz, never Auto/Unset.
  [[nodiscard]] rt::PartitionStrategy partition_strategy() const;
  /// Equal-split nnz imbalance ratio (max color nnz / mean color nnz) that
  /// the Auto heuristic compares against its threshold; 1.0 when the matrix
  /// is too small to split.
  [[nodiscard]] double row_imbalance_ratio() const;
  /// The nnz-balanced row partition for this matrix under the effective
  /// strategy, or nullptr when kernels should use the equal default.
  /// Computed lazily from the pos store (one host scan, cached; the stable
  /// Partition::uid keeps the runtime's image caches warm across launches).
  [[nodiscard]] rt::PartitionRef balanced_row_partition() const;
  /// Pin `arg` of `launch` to the balanced row split when the effective
  /// strategy is Nnz; no-op under Rows. `arg` must be a ckind-None argument
  /// whose alignment group has basis rows().
  void apply_row_strategy(rt::TaskLauncher& launch, int arg) const;

  // ---- ABFT check rows (integrity) ---------------------------------------
  /// Cached column-sum check row c (c_j = Σ_i a_ij). Exact arithmetic gives
  /// the Huang–Abraham invariant c·x == Σ(A@x); a violation beyond rounding
  /// flags a corrupted SpMV. Computed lazily, shared across copies.
  [[nodiscard]] const dense::DArray& check_row() const;
  /// Cached |a| column sums — the magnitude scale for the ABFT tolerance.
  /// Needed separately because plain column sums of typical operators (e.g.
  /// a Poisson stencil) cancel to ~0 and would make the tolerance vacuous.
  [[nodiscard]] const dense::DArray& abs_check_row() const;

 private:
  /// New matrix sharing this one's pos/crd (non-zero-preserving value ops).
  [[nodiscard]] CsrMatrix with_vals(rt::Store vals) const;
  /// Length of the crd/vals stores (1-element placeholder when nnz == 0).
  [[nodiscard]] coord_t nnz_store_len() const { return crd_.volume(); }

  /// Lazily computed balanced split + equal-split imbalance, shared across
  /// value-sharing derivatives (same pos store).
  struct RowPartCache {
    int colors{0};
    double imbalance_ratio{1.0};
    rt::PartitionRef balanced;
  };
  [[nodiscard]] const RowPartCache& row_part_cache() const;

  rt::Runtime* rt_{nullptr};
  coord_t rows_{0}, cols_{0};
  bool empty_{false};  ///< true when the matrix has no stored entries
  rt::Store pos_, crd_, vals_;
  rt::PartitionStrategy part_strategy_{rt::PartitionStrategy::Unset};
  mutable std::shared_ptr<RowPartCache> row_part_;
  /// Lazily built ABFT check rows; shared_ptr so copies reuse one cache.
  mutable std::shared_ptr<dense::DArray> check_row_;
  mutable std::shared_ptr<dense::DArray> abs_check_row_;
};

}  // namespace legate::sparse
