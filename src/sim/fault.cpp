#include "sim/fault.h"

#include <cmath>

namespace legate::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double to_unit(std::uint64_t u) {
  return static_cast<double>(u >> 11) * 0x1.0p-53;  // [0, 1)
}

}  // namespace

std::uint64_t FaultInjector::hash(long task_seq, int attempt,
                                  std::uint64_t salt) const {
  std::uint64_t x = cfg_.seed;
  x = splitmix64(x ^ (static_cast<std::uint64_t>(task_seq) * 0x9e3779b97f4a7c15ULL));
  x = splitmix64(x ^ (static_cast<std::uint64_t>(attempt) + salt));
  return x;
}

bool FaultInjector::should_fail(long task_seq, int attempt) const {
  for (const auto& s : cfg_.scripted) {
    if (s.task == task_seq && s.attempt == attempt) return true;
  }
  if (cfg_.task_fault_rate <= 0) return false;
  return to_unit(hash(task_seq, attempt, 0x5fa41ULL)) < cfg_.task_fault_rate;
}

double FaultInjector::fail_fraction(long task_seq, int attempt) const {
  // Faults land somewhere in the middle of the kernel: at least 10% of the
  // work is wasted, never the full duration (the fault preempts completion).
  return 0.1 + 0.9 * to_unit(hash(task_seq, attempt, 0xf7ac7ULL));
}

bool FaultInjector::node_loss_due(double now) {
  if (node_loss_fired_ || cfg_.node_loss_time < 0) return false;
  if (now < cfg_.node_loss_time) return false;
  node_loss_fired_ = true;
  return true;
}

std::uint64_t FaultInjector::mix(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t salt) const {
  std::uint64_t x = cfg_.seed;
  x = splitmix64(x ^ (a * 0x9e3779b97f4a7c15ULL));
  x = splitmix64(x ^ b);
  x = splitmix64(x ^ salt);
  return x;
}

int FaultInjector::resident_flips(long poll_seq, std::uint64_t store,
                                  double byte_seconds) const {
  if (cfg_.bitflip_rate <= 0 || byte_seconds <= 0) return 0;
  const double lambda = cfg_.bitflip_rate * byte_seconds;
  const double whole = std::floor(lambda);
  int n = static_cast<int>(whole);
  const std::uint64_t u =
      mix(static_cast<std::uint64_t>(poll_seq), store, 0x3c4d1ULL);
  if (to_unit(u) < lambda - whole) ++n;
  return n;
}

std::uint64_t FaultInjector::flip_offset(long poll_seq, std::uint64_t store,
                                         int k, std::uint64_t nbytes) const {
  if (nbytes == 0) return 0;
  const std::uint64_t u = mix(static_cast<std::uint64_t>(poll_seq),
                              store * 0x100 + static_cast<std::uint64_t>(k),
                              0x3c4d2ULL);
  return u % nbytes;
}

int FaultInjector::flip_bit(long poll_seq, std::uint64_t store, int k) const {
  const std::uint64_t u = mix(static_cast<std::uint64_t>(poll_seq),
                              store * 0x100 + static_cast<std::uint64_t>(k),
                              0x3c4d3ULL);
  return static_cast<int>(u % 8);
}

bool FaultInjector::output_flip(long task_seq) const {
  if (cfg_.output_flip_rate <= 0) return false;
  return to_unit(hash(task_seq, 0, 0x3c4d4ULL)) < cfg_.output_flip_rate;
}

std::uint64_t FaultInjector::output_flip_index(long task_seq,
                                               std::uint64_t n) const {
  if (n == 0) return 0;
  return hash(task_seq, 0, 0x3c4d5ULL) % n;
}

int FaultInjector::output_flip_bit(long task_seq) const {
  // Exponent bits of an IEEE-754 double: the injected relative error is
  // always >= 2x, which scaled ABFT checks are guaranteed to notice.
  return 52 + static_cast<int>(hash(task_seq, 0, 0x3c4d6ULL) % 11);
}

std::vector<std::size_t> FaultInjector::scripted_flips_due(double now) {
  std::vector<std::size_t> due;
  if (cfg_.scripted_flips.empty()) return due;
  flips_fired_.resize(cfg_.scripted_flips.size(), false);
  for (std::size_t i = 0; i < cfg_.scripted_flips.size(); ++i) {
    if (flips_fired_[i] || cfg_.scripted_flips[i].time > now) continue;
    flips_fired_[i] = true;
    due.push_back(i);
  }
  return due;
}

double FaultInjector::stall_seconds_due(const std::string& task) {
  if (cfg_.scripted_stalls.empty()) return 0;
  stalls_fired_.resize(cfg_.scripted_stalls.size(), false);
  double total = 0;
  for (std::size_t i = 0; i < cfg_.scripted_stalls.size(); ++i) {
    const ScriptedStall& s = cfg_.scripted_stalls[i];
    if (stalls_fired_[i] || task.find(s.task) == std::string::npos) continue;
    stalls_fired_[i] = true;
    total += s.seconds;
  }
  return total;
}

}  // namespace legate::sim
