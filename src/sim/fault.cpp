#include "sim/fault.h"

namespace legate::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double to_unit(std::uint64_t u) {
  return static_cast<double>(u >> 11) * 0x1.0p-53;  // [0, 1)
}

}  // namespace

std::uint64_t FaultInjector::hash(long task_seq, int attempt,
                                  std::uint64_t salt) const {
  std::uint64_t x = cfg_.seed;
  x = splitmix64(x ^ (static_cast<std::uint64_t>(task_seq) * 0x9e3779b97f4a7c15ULL));
  x = splitmix64(x ^ (static_cast<std::uint64_t>(attempt) + salt));
  return x;
}

bool FaultInjector::should_fail(long task_seq, int attempt) const {
  for (const auto& s : cfg_.scripted) {
    if (s.task == task_seq && s.attempt == attempt) return true;
  }
  if (cfg_.task_fault_rate <= 0) return false;
  return to_unit(hash(task_seq, attempt, 0x5fa41ULL)) < cfg_.task_fault_rate;
}

double FaultInjector::fail_fraction(long task_seq, int attempt) const {
  // Faults land somewhere in the middle of the kernel: at least 10% of the
  // work is wasted, never the full duration (the fault preempts completion).
  return 0.1 + 0.9 * to_unit(hash(task_seq, attempt, 0xf7ac7ULL));
}

bool FaultInjector::node_loss_due(double now) {
  if (node_loss_fired_ || cfg_.node_loss_time < 0) return false;
  if (now < cfg_.node_loss_time) return false;
  node_loss_fired_ = true;
  return true;
}

}  // namespace legate::sim
