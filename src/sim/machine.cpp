#include "sim/machine.h"

#include <sstream>

namespace legate::sim {

Machine Machine::gpus(int n, const PerfParams& pp, int gpus_per_node) {
  LSR_CHECK(n >= 1);
  int per_node = gpus_per_node > 0 ? gpus_per_node : pp.gpus_per_node;
  Machine m(pp, ProcKind::GPU);
  m.nodes_ = (n + per_node - 1) / per_node;
  int made = 0;
  for (int node = 0; node < m.nodes_; ++node) {
    int sys = static_cast<int>(m.mems_.size());
    m.mems_.push_back(Memory{sys, MemKind::Sys, node, pp.sysmem_capacity});
    if (node == 0) m.home_mem_ = sys;
    for (int g = 0; g < per_node && made < n; ++g, ++made) {
      int fb = static_cast<int>(m.mems_.size());
      m.mems_.push_back(
          Memory{fb, MemKind::Frame, node, pp.gpu_fb_capacity - pp.legate_fb_reserved});
      int pid = static_cast<int>(m.procs_.size());
      m.procs_.push_back(Processor{pid, ProcKind::GPU, node, fb});
    }
  }
  return m;
}

Machine Machine::sockets(int n, const PerfParams& pp) {
  LSR_CHECK(n >= 1);
  int per_node = pp.sockets_per_node;
  Machine m(pp, ProcKind::CPU);
  m.nodes_ = (n + per_node - 1) / per_node;
  int made = 0;
  for (int node = 0; node < m.nodes_; ++node) {
    int sys = static_cast<int>(m.mems_.size());
    m.mems_.push_back(Memory{sys, MemKind::Sys, node, pp.sysmem_capacity});
    if (node == 0) m.home_mem_ = sys;
    for (int s = 0; s < per_node && made < n; ++s, ++made) {
      int pid = static_cast<int>(m.procs_.size());
      m.procs_.push_back(Processor{pid, ProcKind::CPU, node, sys});
    }
  }
  return m;
}

std::string Machine::describe() const {
  std::ostringstream os;
  os << nodes_ << " node(s), " << procs_.size()
     << (target_ == ProcKind::GPU ? " GPU(s)" : " CPU socket(s)");
  return os.str();
}

}  // namespace legate::sim
