#pragma once

#include <string>
#include <vector>

#include "sim/perf_params.h"
#include "util/common.h"

namespace legate::sim {

/// Processor varieties; one CPU processor models a whole socket running an
/// OpenMP-parallel leaf task (the granularity Legate uses), one GPU processor
/// models a V100.
enum class ProcKind { CPU, GPU };

enum class MemKind { Sys, Frame };

struct Processor {
  int id{};
  ProcKind kind{};
  int node{};
  int mem{};  ///< id of the memory this processor computes out of
};

struct Memory {
  int id{};
  MemKind kind{};
  int node{};
  double capacity{};  ///< bytes usable by application data
};

/// A Summit-like machine instance: `nodes` nodes, each with
/// `sockets_per_node` CPU sockets sharing one system memory and
/// `gpus_per_node` GPUs each with a private framebuffer.
///
/// Only the first `target_procs` processors of kind `target` are enumerated
/// as compute processors (matching the paper's 1/1, 1/3, 2/6, ... sweeps).
class Machine {
 public:
  /// Machine with `n` GPUs, packing `gpus_per_node` per node.
  static Machine gpus(int n, const PerfParams& pp, int gpus_per_node = -1);
  /// Machine with `n` CPU sockets, packing `sockets_per_node` per node.
  static Machine sockets(int n, const PerfParams& pp);

  [[nodiscard]] const std::vector<Processor>& procs() const { return procs_; }
  [[nodiscard]] const std::vector<Memory>& memories() const { return mems_; }
  [[nodiscard]] const Processor& proc(int id) const { return procs_.at(id); }
  [[nodiscard]] const Memory& memory(int id) const { return mems_.at(id); }
  [[nodiscard]] int num_procs() const { return static_cast<int>(procs_.size()); }
  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] ProcKind target() const { return target_; }
  [[nodiscard]] const PerfParams& params() const { return pp_; }

  /// The node-0 system memory, where freshly attached host data lives.
  [[nodiscard]] int home_memory() const { return home_mem_; }

  [[nodiscard]] std::string describe() const;

 private:
  Machine(const PerfParams& pp, ProcKind target) : pp_(pp), target_(target) {}

  PerfParams pp_;
  ProcKind target_;
  int nodes_{0};
  int home_mem_{0};
  std::vector<Processor> procs_;
  std::vector<Memory> mems_;
};

}  // namespace legate::sim
