#include "sim/engine.h"

#include <cmath>
#include <sstream>

namespace legate::sim {

Engine::Engine(const Machine& machine)
    : machine_(machine), cost_model_(machine.params()), pp_(machine.params()) {
  proc_clock_.assign(machine.num_procs(), 0.0);
  const auto n_mems = machine.memories().size();
  mem_copy_clock_.assign(n_mems, 0.0);
  mem_used_.assign(n_mems, 0.0);
  mem_peak_.assign(n_mems, 0.0);
  nic_in_.assign(machine.nodes(), 0.0);
  nic_out_.assign(machine.nodes(), 0.0);
}

double Engine::control_advance(double overhead) {
  control_clock_ += overhead;
  bump(control_clock_);
  return control_clock_;
}

double Engine::busy_proc(int proc, double ready, double duration) {
  double& clk = proc_clock_.at(proc);
  double start = std::max(clk, ready);
  clk = start + duration;
  bump(clk);
  return clk;
}

double& Engine::pair_link(int src_mem, int dst_mem) {
  auto key = std::minmax(src_mem, dst_mem);
  return pair_links_[{key.first, key.second}];
}

double Engine::copy(int src, int dst, double bytes, double ready) {
  ++stats_.copies;
  bytes *= cost_scale_;
  const auto& sm = machine_.memory(src);
  const auto& dm = machine_.memory(dst);
  double done;
  if (src == dst) {
    // Intra-memory movement: allocation resizing, local reshape.
    double bw = sm.kind == MemKind::Frame ? pp_.gpu_mem_bw : pp_.sysmem_bw;
    double& clk = mem_copy_clock_.at(src);
    double start = std::max(clk, ready);
    done = start + pp_.sysmem_lat + bytes / bw;
    clk = done;
    stats_.bytes_intra += bytes;
  } else if (sm.node == dm.node) {
    // Intra-node: NVLink-class point-to-point link per memory pair.
    double& clk = pair_link(src, dst);
    double start = std::max(clk, ready);
    done = start + pp_.nvlink_lat + bytes / pp_.nvlink_bw;
    clk = done;
    stats_.bytes_nvlink += bytes;
  } else {
    // Inter-node: the transfer occupies the source NIC-out and destination
    // NIC-in queues independently (LogGP-style). Each side serializes its
    // own traffic — the bottleneck that throttles the quantum simulation's
    // near-all-to-all pattern — without coupling unrelated transfers
    // through each other's completion times.
    double& out = nic_out_.at(sm.node);
    double& in = nic_in_.at(dm.node);
    double tx = bytes / pp_.ib_bw;
    out = std::max(out, ready) + tx;
    in = std::max(in, ready) + tx;
    done = std::max(out, in) + pp_.ib_lat;
    stats_.bytes_ib += bytes;
  }
  bump(done);
  return done;
}

double Engine::allreduce(int nprocs, double ready, bool legate_style) {
  ++stats_.allreduces;
  if (nprocs <= 1) return ready;
  double hops = std::ceil(std::log2(static_cast<double>(nprocs)));
  double t;
  if (legate_style) {
    t = ready + hops * pp_.legate_allreduce_alpha +
        nprocs * pp_.legate_allreduce_linear;
  } else {
    t = ready + hops * pp_.mpi_allreduce_alpha;
  }
  bump(t);
  return t;
}

double Engine::allreduce_bytes(int nprocs, double bytes, double ready,
                               bool legate_style) {
  bytes *= cost_scale_;
  double t = allreduce(nprocs, ready, legate_style);
  if (nprocs > 1 && bytes > 0) {
    // Bottleneck link of the ring: Infiniband once multiple nodes are
    // involved, NVLink (GPU) or system memory (CPU) within one node.
    double bw;
    if (machine_.nodes() > 1) {
      bw = pp_.ib_bw;
    } else if (machine_.target() == ProcKind::GPU) {
      bw = pp_.nvlink_bw;
    } else {
      bw = pp_.sysmem_bw;
    }
    double p = static_cast<double>(nprocs);
    t += 2.0 * bytes * ((p - 1.0) / p) / bw;
    stats_.bytes_ib += machine_.nodes() > 1 ? 2.0 * bytes : 0.0;
    bump(t);
  }
  return t;
}

void Engine::alloc_bytes(int mem, double bytes) {
  bytes *= cost_scale_;
  double& used = mem_used_.at(mem);
  const auto& m = machine_.memory(mem);
  if (used + bytes > m.capacity) {
    std::ostringstream os;
    os << "memory " << mem << " (node " << m.node << ", "
       << (m.kind == MemKind::Frame ? "framebuffer" : "sysmem")
       << ") over capacity: allocating " << bytes / 1e9 << " GB with "
       << used / 1e9 << " GB used of " << m.capacity / 1e9 << " GB";
    throw OutOfMemoryError(os.str());
  }
  used += bytes;
  mem_peak_.at(mem) = std::max(mem_peak_.at(mem), used);
}

void Engine::free_bytes(int mem, double bytes) {
  bytes *= cost_scale_;
  LSR_CHECK_MSG(bytes >= 0, "negative release");
  double& used = mem_used_.at(mem);
  const auto& m = machine_.memory(mem);
  std::ostringstream os;
  os << "memory " << mem << " (node " << m.node << ") released " << bytes
     << " B with only " << used << " B reserved of " << m.capacity
     << " B capacity";
  // Tolerate accumulated floating-point slack; anything larger means a
  // double-free in the allocation store.
  LSR_CHECK_MSG(bytes <= used + 1.0, os.str());
  used = std::max(0.0, used - bytes);
}

double Engine::stall_all(double at, double seconds) {
  control_clock_ = std::max(control_clock_, at) + seconds;
  double latest = control_clock_;
  for (double& clk : proc_clock_) {
    clk = std::max(clk, at) + seconds;
    latest = std::max(latest, clk);
  }
  for (double& clk : mem_copy_clock_) clk = std::max(clk, at) + seconds;
  for (double& clk : nic_in_) clk = std::max(clk, at) + seconds;
  for (double& clk : nic_out_) clk = std::max(clk, at) + seconds;
  bump(latest);
  return latest;
}

double Engine::checkpoint_io(double bytes, double ready, bool restore) {
  bytes *= cost_scale_;
  if (restore) {
    ++stats_.restores;
  } else {
    ++stats_.checkpoints;
  }
  stats_.bytes_ckpt += bytes;
  double start = std::max(io_clock_, ready);
  io_clock_ = start + pp_.checkpoint_lat + bytes / pp_.checkpoint_bw;
  bump(io_clock_);
  return io_clock_;
}

std::string Engine::report() const {
  std::ostringstream os;
  os << "makespan=" << makespan_ << "s tasks=" << stats_.tasks
     << " copies=" << stats_.copies << " allreduces=" << stats_.allreduces
     << " bytes{intra=" << stats_.bytes_intra / 1e6 << "MB, nvlink="
     << stats_.bytes_nvlink / 1e6 << "MB, ib=" << stats_.bytes_ib / 1e6 << "MB}";
  if (stats_.faults_injected + stats_.retries + stats_.spills +
          stats_.checkpoints + stats_.restores >
      0) {
    os << " faults{injected=" << stats_.faults_injected
       << ", retries=" << stats_.retries << ", spills=" << stats_.spills
       << ", checkpoints=" << stats_.checkpoints
       << ", restores=" << stats_.restores
       << ", ckpt_bytes=" << stats_.bytes_ckpt / 1e6 << "MB}";
  }
  return os.str();
}

}  // namespace legate::sim
