#include "sim/engine.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace legate::sim {

Engine::Engine(const Machine& machine)
    : machine_(machine), cost_model_(machine.params()), pp_(machine.params()) {
  proc_clock_.assign(machine.num_procs(), 0.0);
  const auto n_mems = machine.memories().size();
  mem_copy_clock_.assign(n_mems, 0.0);
  mem_used_.assign(n_mems, 0.0);
  mem_peak_.assign(n_mems, 0.0);
  nic_in_.assign(machine.nodes(), 0.0);
  nic_out_.assign(machine.nodes(), 0.0);

  using metrics::Registry;
  auto bytes = Registry::byte_buckets();
  met_.tasks = metrics_.counter("lsr_sim_tasks_total", "leaf point tasks executed");
  met_.copies = metrics_.counter("lsr_sim_copies_total", "copies issued");
  met_.allreduces =
      metrics_.counter("lsr_sim_allreduces_total", "collectives issued");
  met_.bytes_intra = metrics_.counter("lsr_sim_traffic_intra_bytes_total",
                                      "intra-memory bytes moved (scaled)");
  met_.bytes_nvlink = metrics_.counter("lsr_sim_traffic_nvlink_bytes_total",
                                       "intra-node inter-memory bytes (scaled)");
  met_.bytes_ib = metrics_.counter("lsr_sim_traffic_ib_bytes_total",
                                   "inter-node bytes (scaled)");
  met_.bytes_ckpt = metrics_.counter("lsr_sim_traffic_ckpt_bytes_total",
                                     "checkpoint/restore PFS bytes (scaled)");
  met_.faults = metrics_.counter("lsr_sim_faults_total", "faults injected");
  met_.retries = metrics_.counter("lsr_sim_retries_total",
                                  "point-task re-executions after faults");
  met_.spills =
      metrics_.counter("lsr_sim_spills_total", "allocations spilled under OOM");
  met_.checkpoints =
      metrics_.counter("lsr_sim_checkpoints_total", "checkpoint snapshots");
  met_.restores =
      metrics_.counter("lsr_sim_restores_total", "restore rollbacks");
  met_.flips_injected = metrics_.counter("lsr_integrity_flips_injected_total",
                                         "silent bit flips injected");
  met_.flips_detected = metrics_.counter(
      "lsr_integrity_flips_detected_total",
      "injected flips caught by checksum verification");
  met_.flips_recovered = metrics_.counter(
      "lsr_integrity_flips_recovered_total",
      "injected flips repaired bit-exactly in place");
  met_.copy_intra = metrics_.histogram("lsr_sim_copy_bytes_intra",
                                       "per-copy intra-memory bytes", bytes);
  met_.copy_nvlink = metrics_.histogram("lsr_sim_copy_bytes_nvlink",
                                        "per-copy NVLink-class bytes", bytes);
  met_.copy_ib = metrics_.histogram("lsr_sim_copy_bytes_ib",
                                    "per-copy inter-node bytes", bytes);
  met_.stall_seconds =
      metrics_.histogram("lsr_sim_stall_seconds", "whole-machine stall time",
                         Registry::seconds_buckets());
  met_.ckpt_bytes = metrics_.histogram("lsr_sim_ckpt_bytes",
                                       "per-checkpoint-IO bytes", bytes);
  met_.flip_latency = metrics_.histogram(
      "lsr_integrity_detect_latency_seconds",
      "simulated injection-to-detection latency per caught flip",
      Registry::seconds_buckets());

  // Flight-recorder metrics. The replay-path event and drop counts are
  // Stable: the sequential control path records a thread-count-invariant
  // event sequence into a fixed-capacity ring, so both are deterministic.
  // Watchdog trips and dumps are Stable by the zero-in-healthy-runs
  // argument: any run where they differ from zero is already broken.
  using metrics::Stability;
  diag::MetricHooks dm;
  dm.events_recorded =
      metrics_.counter("lsr_diag_events_recorded_total",
                       "flight-recorder events on the deterministic replay path");
  dm.events_dropped =
      metrics_.counter("lsr_diag_events_dropped_total",
                       "replay-path events overwritten in the bounded sim ring");
  dm.thread_events =
      metrics_.counter("lsr_diag_thread_events_total",
                       "flight-recorder events from worker/watchdog threads",
                       Stability::Volatile);
  dm.thread_dropped =
      metrics_.counter("lsr_diag_thread_events_dropped_total",
                       "thread-ring events overwritten", Stability::Volatile);
  dm.watchdog_trips = metrics_.counter(
      "lsr_diag_watchdog_trips_total",
      "stall/deadlock/divergence watchdog trips (zero in a healthy run)");
  dm.dumps_written = metrics_.counter(
      "lsr_diag_dumps_written_total",
      "post-mortem diagnostic dumps written (zero in a healthy run)");
  dm.ring_high_water = metrics_.gauge(
      "lsr_diag_ring_high_water",
      "peak events resident in the flight recorder's sim ring",
      Stability::Volatile);
  diag_.set_metrics(dm);
  diag_.set_registry(&metrics_);
  diag_.set_sim_clock(&makespan_);
  diag_.configure(diag::parse_mode(std::getenv("LSR_DIAG")),
                  diag::Options::from_env());
}

// --- Recorder track interning (profiling-enabled paths only) ---------------

int Engine::proc_track(int proc) {
  const auto& p = machine_.proc(proc);
  return recorder_.track(
      (p.kind == ProcKind::GPU ? "GPU" : "CPU") + std::to_string(proc), p.node);
}

int Engine::control_track() { return recorder_.track("control", 0); }
int Engine::io_track() { return recorder_.track("pfs", 0); }
int Engine::collective_track() { return recorder_.track("collective", 0); }

void Engine::mark(prof::Category cat) {
  recorder_.record(cat, control_track(), makespan_, makespan_, -1.0,
                   prof::category_name(cat));
}

double Engine::control_advance(double overhead, std::string_view label) {
  double start = control_clock_;
  control_clock_ += overhead;
  bump(control_clock_);
  if (recorder_.enabled()) {
    int tr = control_track();
    recorder_.record(prof::Category::Launch, tr, start, control_clock_, -1.0,
                     label.empty() ? "launch" : std::string(label));
    recorder_.add_busy(tr, overhead);
  }
  return control_clock_;
}

double Engine::busy_proc(int proc, double ready, double duration,
                         std::string_view label) {
  double& clk = proc_clock_.at(proc);
  double start = std::max(clk, ready);
  clk = start + duration;
  bump(clk);
  if (recorder_.enabled()) {
    int tr = proc_track(proc);
    recorder_.record(prof::Category::Kernel, tr, start, clk, ready,
                     label.empty() ? "task" : std::string(label));
    recorder_.add_busy(tr, duration);
  }
  return clk;
}

double& Engine::pair_link(int src_mem, int dst_mem) {
  auto key = std::minmax(src_mem, dst_mem);
  return pair_links_[{key.first, key.second}];
}

double Engine::copy(int src, int dst, double bytes, double ready) {
  // Validate before touching any clock or counter: a bad id must not leave
  // half-applied accounting behind (`.at()` below would only throw after the
  // copy was already counted, with an unhelpful "map::at" message).
  const int nmem = static_cast<int>(machine_.memories().size());
  if (src < 0 || src >= nmem)
    throw IndexError("Engine::copy: source memory id " + std::to_string(src) +
                         " out of range [0, " + std::to_string(nmem) + ")",
                     "src_mem", src, nmem);
  if (dst < 0 || dst >= nmem)
    throw IndexError("Engine::copy: destination memory id " +
                         std::to_string(dst) + " out of range [0, " +
                         std::to_string(nmem) + ")",
                     "dst_mem", dst, nmem);
  ++stats_.copies;
  met_.copies.inc();
  bytes *= cost_scale_;
  const auto& sm = machine_.memory(src);
  const auto& dm = machine_.memory(dst);
  const bool rec = recorder_.enabled();
  double done;
  int track = -1;
  double start = ready, busy = 0;
  if (src == dst) {
    // Intra-memory movement: allocation resizing, local reshape.
    double bw = sm.kind == MemKind::Frame ? pp_.gpu_mem_bw : pp_.sysmem_bw;
    double& clk = mem_copy_clock_.at(src);
    start = std::max(clk, ready);
    done = start + pp_.sysmem_lat + bytes / bw;
    busy = done - start;
    clk = done;
    stats_.bytes_intra += bytes;
    met_.bytes_intra.inc(bytes);
    met_.copy_intra.observe(bytes);
    if (rec) track = recorder_.track("mem" + std::to_string(src), sm.node);
  } else if (sm.node == dm.node) {
    // Intra-node: NVLink-class point-to-point link per memory pair.
    double& clk = pair_link(src, dst);
    start = std::max(clk, ready);
    done = start + pp_.nvlink_lat + bytes / pp_.nvlink_bw;
    busy = done - start;
    clk = done;
    stats_.bytes_nvlink += bytes;
    met_.bytes_nvlink.inc(bytes);
    met_.copy_nvlink.observe(bytes);
    if (rec) {
      auto key = std::minmax(src, dst);
      track = recorder_.track(
          "link" + std::to_string(key.first) + "-" + std::to_string(key.second),
          sm.node);
    }
  } else {
    // Inter-node: the transfer occupies the source NIC-out and destination
    // NIC-in queues independently (LogGP-style). Each side serializes its
    // own traffic — the bottleneck that throttles the quantum simulation's
    // near-all-to-all pattern — without coupling unrelated transfers
    // through each other's completion times.
    double& out = nic_out_.at(sm.node);
    double& in = nic_in_.at(dm.node);
    double tx = bytes / pp_.ib_bw;
    start = std::max(out, ready);
    out = start + tx;
    in = std::max(in, ready) + tx;
    done = std::max(out, in) + pp_.ib_lat;
    stats_.bytes_ib += bytes;
    met_.bytes_ib.inc(bytes);
    met_.copy_ib.observe(bytes);
    if (rec) {
      // The timeline shows the copy once, on the sender's NIC queue; both
      // queues get their transmission time counted toward utilization.
      track = recorder_.track("nic-out" + std::to_string(sm.node), sm.node);
      recorder_.add_busy(track, tx);
      recorder_.add_busy(
          recorder_.track("nic-in" + std::to_string(dm.node), dm.node), tx);
    }
  }
  bump(done);
  if (rec) {
    if (busy > 0) recorder_.add_busy(track, busy);
    recorder_.record(prof::Category::Copy, track, start, done, ready,
                     "copy mem" + std::to_string(src) + "->mem" +
                         std::to_string(dst));
    auto& ev = recorder_.last();
    ev.bytes = bytes;
    ev.src_mem = src;
    ev.dst_mem = dst;
    ev.src_node = sm.node;
    ev.dst_node = dm.node;
    recorder_.add_traffic(sm.node, dm.node, bytes);
  }
  diag_.record(diag::EventKind::Copy, "copy", src, dst, bytes);
  return done;
}

double Engine::allreduce(int nprocs, double ready, bool legate_style) {
  ++stats_.allreduces;
  met_.allreduces.inc();
  double t = ready;
  if (nprocs > 1) {
    double hops = std::ceil(std::log2(static_cast<double>(nprocs)));
    if (legate_style) {
      t = ready + hops * pp_.legate_allreduce_alpha +
          nprocs * pp_.legate_allreduce_linear;
    } else {
      t = ready + hops * pp_.mpi_allreduce_alpha;
    }
    bump(t);
  }
  if (recorder_.enabled()) {
    int tr = collective_track();
    recorder_.record(prof::Category::Allreduce, tr, ready, t, ready,
                     legate_style ? "allreduce" : "mpi_allreduce");
    recorder_.add_busy(tr, t - ready);
  }
  return t;
}

double Engine::allreduce_bytes(int nprocs, double bytes, double ready,
                               bool legate_style) {
  bytes *= cost_scale_;
  double t = allreduce(nprocs, ready, legate_style);
  if (nprocs > 1 && bytes > 0) {
    // Bottleneck link of the ring: Infiniband once multiple nodes are
    // involved, NVLink (GPU) or system memory (CPU) within one node.
    double bw;
    if (machine_.nodes() > 1) {
      bw = pp_.ib_bw;
    } else if (machine_.target() == ProcKind::GPU) {
      bw = pp_.nvlink_bw;
    } else {
      bw = pp_.sysmem_bw;
    }
    double p = static_cast<double>(nprocs);
    double ring = 2.0 * bytes * ((p - 1.0) / p) / bw;
    t += ring;
    bump(t);
    // Traffic attribution: in a ring all-reduce every hop i -> i+1 carries
    // 2*b*(p-1)/p bytes. Book each hop by its locality — only hops crossing
    // a node boundary touch the NIC; hops between memories of one node ride
    // NVLink; ring neighbors sharing a memory (CPU sockets on one socket
    // pair's sysmem) stay intra-memory. Previously every multi-node run
    // booked a flat 2*b to bytes_ib and single-node rings booked nothing.
    double hop_bytes = 2.0 * bytes * ((p - 1.0) / p);
    int np = machine_.num_procs();
    for (int i = 0; i < nprocs; ++i) {
      const auto& a = machine_.proc(i % np);
      const auto& b = machine_.proc(((i + 1) % nprocs) % np);
      if (a.id == b.id) continue;  // degenerate ring position, no movement
      if (a.mem == b.mem) {
        stats_.bytes_intra += hop_bytes;
        met_.bytes_intra.inc(hop_bytes);
      } else if (a.node == b.node) {
        stats_.bytes_nvlink += hop_bytes;
        met_.bytes_nvlink.inc(hop_bytes);
      } else {
        stats_.bytes_ib += hop_bytes;
        met_.bytes_ib.inc(hop_bytes);
      }
      if (recorder_.enabled()) recorder_.add_traffic(a.node, b.node, hop_bytes);
    }
    if (recorder_.enabled()) {
      // Fold the ring term into the event allreduce() just recorded.
      recorder_.extend_last(t);
      recorder_.last().bytes = bytes;
      recorder_.add_busy(collective_track(), ring);
    }
  }
  return t;
}

void Engine::alloc_bytes(int mem, double bytes) {
  bytes *= cost_scale_;
  double& used = mem_used_.at(mem);
  const auto& m = machine_.memory(mem);
  if (used + bytes > m.capacity) {
    std::ostringstream os;
    os << "memory " << mem << " (node " << m.node << ", "
       << (m.kind == MemKind::Frame ? "framebuffer" : "sysmem")
       << ") over capacity: allocating " << bytes / 1e9 << " GB with "
       << used / 1e9 << " GB used of " << m.capacity / 1e9 << " GB";
    throw OutOfMemoryError(os.str());
  }
  used += bytes;
  mem_peak_.at(mem) = std::max(mem_peak_.at(mem), used);
}

void Engine::free_bytes(int mem, double bytes) {
  bytes *= cost_scale_;
  LSR_CHECK_MSG(bytes >= 0, "negative release");
  double& used = mem_used_.at(mem);
  const auto& m = machine_.memory(mem);
  std::ostringstream os;
  os << "memory " << mem << " (node " << m.node << ") released " << bytes
     << " B with only " << used << " B reserved of " << m.capacity
     << " B capacity";
  // Tolerate accumulated floating-point slack; anything larger means a
  // double-free in the allocation store.
  LSR_CHECK_MSG(bytes <= used + 1.0, os.str());
  used = std::max(0.0, used - bytes);
}

double Engine::stall_all(double at, double seconds) {
  met_.stall_seconds.observe(seconds);
  double stall_start = std::max(control_clock_, at);
  control_clock_ = stall_start + seconds;
  double latest = control_clock_;
  for (double& clk : proc_clock_) {
    clk = std::max(clk, at) + seconds;
    latest = std::max(latest, clk);
  }
  for (double& clk : mem_copy_clock_) clk = std::max(clk, at) + seconds;
  for (double& clk : nic_in_) clk = std::max(clk, at) + seconds;
  for (double& clk : nic_out_) clk = std::max(clk, at) + seconds;
  bump(latest);
  if (recorder_.enabled()) {
    recorder_.record(prof::Category::Stall, control_track(), stall_start,
                     stall_start + seconds, -1.0, "stall");
  }
  diag_.record(diag::EventKind::Stall, "machine-stall", 0, 0, seconds);
  return latest;
}

double Engine::checkpoint_io(double bytes, double ready, bool restore) {
  bytes *= cost_scale_;
  if (restore) {
    ++stats_.restores;
    met_.restores.inc();
  } else {
    ++stats_.checkpoints;
    met_.checkpoints.inc();
  }
  stats_.bytes_ckpt += bytes;
  met_.bytes_ckpt.inc(bytes);
  met_.ckpt_bytes.observe(bytes);
  double start = std::max(io_clock_, ready);
  io_clock_ = start + pp_.checkpoint_lat + bytes / pp_.checkpoint_bw;
  bump(io_clock_);
  if (recorder_.enabled()) {
    int tr = io_track();
    recorder_.record(prof::Category::Checkpoint, tr, start, io_clock_, ready,
                     restore ? "restore" : "checkpoint");
    recorder_.add_busy(tr, io_clock_ - start);
    recorder_.last().bytes = bytes;
  }
  diag_.record(restore ? diag::EventKind::Restore : diag::EventKind::Checkpoint,
               restore ? "restore" : "checkpoint", 0, 0, bytes);
  return io_clock_;
}

void Engine::reset() {
  control_clock_ = 0;
  io_clock_ = 0;
  proc_clock_.assign(proc_clock_.size(), 0.0);
  mem_copy_clock_.assign(mem_copy_clock_.size(), 0.0);
  nic_in_.assign(nic_in_.size(), 0.0);
  nic_out_.assign(nic_out_.size(), 0.0);
  pair_links_.clear();
  stats_ = Stats{};
  makespan_ = 0;
  mem_peak_ = mem_used_;
  recorder_.reset();
  // Drain the flight recorder before the metrics zero out so its flush sink
  // (if any) can snapshot the epoch it belongs to; this also joins and
  // restarts the watchdog thread, so resets never leak a stale thread.
  diag_.reset();
  metrics_.reset();
}

std::string Engine::report() const {
  std::ostringstream os;
  os << "makespan=" << makespan_ << "s tasks=" << stats_.tasks
     << " copies=" << stats_.copies << " allreduces=" << stats_.allreduces
     << " bytes{intra=" << stats_.bytes_intra / 1e6 << "MB, nvlink="
     << stats_.bytes_nvlink / 1e6 << "MB, ib=" << stats_.bytes_ib / 1e6 << "MB}";
  if (stats_.faults_injected + stats_.retries + stats_.spills +
          stats_.checkpoints + stats_.restores >
      0) {
    os << " faults{injected=" << stats_.faults_injected
       << ", retries=" << stats_.retries << ", spills=" << stats_.spills
       << ", checkpoints=" << stats_.checkpoints
       << ", restores=" << stats_.restores
       << ", ckpt_bytes=" << stats_.bytes_ckpt / 1e6 << "MB}";
  }
  if (stats_.flips_injected + stats_.flips_detected + stats_.flips_recovered >
      0) {
    os << " integrity{flips_injected=" << stats_.flips_injected
       << ", detected=" << stats_.flips_detected
       << ", recovered=" << stats_.flips_recovered << "}";
  }
  return os.str();
}

}  // namespace legate::sim
