#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

namespace legate::sim {

/// One scripted transient fault: attempt `attempt` (0-based) of the point
/// task with deterministic sequence number `task` fails.
struct ScriptedFault {
  long task{0};
  int attempt{0};
};

/// One scripted wall-clock execution stall: the first launch whose task name
/// contains `task` sleeps for `seconds` of real time while it holds the
/// control path (a hung kernel / wedged driver model). Charges no simulated
/// time — the point is to exercise the diag watchdog, not the cost model.
/// Each entry fires exactly once.
struct ScriptedStall {
  std::string task;
  double seconds{0};
};

/// One scripted silent bit flip: at simulated time `time`, flip bit `bit`
/// (0-7) of the byte at `offset` within store `store`. `node` is advisory
/// metadata (which node's memory the upset models); the canonical host
/// buffer is what actually takes the flip. Each entry fires exactly once.
struct ScriptedFlip {
  double time{0};
  int node{-1};
  std::uint64_t store{0};
  std::uint64_t offset{0};
  int bit{0};
};

/// Deterministic fault schedule, configured through rt::RuntimeOptions.
/// Everything here is a pure function of the seed and the task sequence, so
/// the same configuration produces a bit-identical schedule (and therefore
/// bit-identical Stats) on every run.
struct FaultConfig {
  bool enabled{false};
  std::uint64_t seed{0};

  // --- transient leaf-task faults ---------------------------------------
  /// Probability that a given (task, attempt) pair suffers a transient
  /// fault (ECC error, killed kernel, flaky link). Drawn independently per
  /// attempt from the deterministic hash stream.
  double task_fault_rate{0};
  /// Explicitly scripted faults, checked in addition to the random stream
  /// ("fail attempt k of task n").
  std::vector<ScriptedFault> scripted;
  /// Attempts per point task before the launch is declared poisoned.
  int max_attempts{3};
  /// Failure-detection latency charged per failed attempt (heartbeat /
  /// ECC-interrupt turnaround on the modeled machine).
  double detect_seconds{200e-6};
  /// Base of the exponential backoff before attempt k: base * 2^(k-1).
  double backoff_seconds{100e-6};

  // --- silent data corruption --------------------------------------------
  /// Expected silent upsets per resident byte per simulated second (DRAM /
  /// framebuffer bit-rot). The runtime polls on its sequential control path
  /// and converts `rate x resident bytes x elapsed` into a deterministic
  /// flip count per store, so the schedule is bit-identical run to run.
  double bitflip_rate{0};
  /// Probability that one launch's written bytes take an in-flight upset
  /// *before* the runtime checksums them (corruption on the wire or in a
  /// cache the store CRC never observes). Only algorithmic checks (ABFT,
  /// residual replacement) can catch these.
  double output_flip_rate{0};
  /// Explicitly scripted flips, applied in addition to the random stream.
  std::vector<ScriptedFlip> scripted_flips;

  // --- execution stalls ----------------------------------------------------
  /// Scripted wall-clock hangs, matched by task-name substring; used to
  /// trip the lsr_diag watchdog deterministically in tests and CI.
  std::vector<ScriptedStall> scripted_stalls;

  // --- whole-node loss ----------------------------------------------------
  /// Simulated time at which node `node_loss_node` is lost; < 0 disables.
  double node_loss_time{-1};
  int node_loss_node{0};
  /// Outage charged to every clock while the runtime detects the loss and
  /// re-admits a replacement node (hot-spare model: the machine shape is
  /// unchanged, but all data resident on the lost node is gone).
  double node_recovery_seconds{0.25};

  // --- memory-pressure injection -----------------------------------------
  /// Phantom bytes reserved in every framebuffer at startup, shrinking the
  /// usable capacity to force the spill path without paper-scale problems.
  double oom_pressure_bytes{0};
};

/// Answers "does attempt k of task n fail?" and "has the scheduled node
/// loss fired yet?" deterministically from the config.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

  /// Whether attempt `attempt` (0-based) of point task `task_seq` fails.
  /// Pure: independent of call order.
  [[nodiscard]] bool should_fail(long task_seq, int attempt) const;

  /// Fraction of the task's duration that elapses before the fault hits
  /// (the processor is occupied for this much wasted work). In [0.1, 1).
  [[nodiscard]] double fail_fraction(long task_seq, int attempt) const;

  /// True exactly once, the first time `now` passes the scheduled loss time.
  [[nodiscard]] bool node_loss_due(double now);
  [[nodiscard]] bool node_loss_fired() const { return node_loss_fired_; }

  // --- silent data corruption --------------------------------------------
  /// Number of random resident-byte upsets store `store` suffers during
  /// control-path poll number `poll_seq`, given `byte_seconds` of exposure
  /// (resident bytes x elapsed simulated seconds). Pure in its arguments:
  /// the expectation `bitflip_rate * byte_seconds` is split into a certain
  /// floor plus one deterministically-thinned extra flip.
  [[nodiscard]] int resident_flips(long poll_seq, std::uint64_t store,
                                   double byte_seconds) const;
  /// Byte offset (in [0, nbytes)) and bit (in [0, 8)) of random flip `k`
  /// from poll `poll_seq` on store `store`. Pure.
  [[nodiscard]] std::uint64_t flip_offset(long poll_seq, std::uint64_t store,
                                          int k, std::uint64_t nbytes) const;
  [[nodiscard]] int flip_bit(long poll_seq, std::uint64_t store, int k) const;

  /// Whether the bytes written by task `task_seq` take an in-flight upset
  /// before they are checksummed. Pure.
  [[nodiscard]] bool output_flip(long task_seq) const;
  /// Which of the launch's `n` written elements the upset lands on. Pure.
  [[nodiscard]] std::uint64_t output_flip_index(long task_seq,
                                                std::uint64_t n) const;
  /// Which bit of the victim double flips; drawn from the exponent bits
  /// [52, 62] so the damage is large enough for scaled algorithmic checks
  /// to see (low-mantissa upsets below the check tolerance are explicitly
  /// out of the modeled threat's scope — see DESIGN.md).
  [[nodiscard]] int output_flip_bit(long task_seq) const;

  /// Indices into config().scripted_flips whose time has passed; each entry
  /// fires exactly once (stateful, like node_loss_due).
  [[nodiscard]] std::vector<std::size_t> scripted_flips_due(double now);

  /// Total wall seconds of scripted stall due for a launch named `task`
  /// (every not-yet-fired entry whose substring matches); 0 when none.
  /// Stateful like node_loss_due: each entry fires exactly once.
  [[nodiscard]] double stall_seconds_due(const std::string& task);

 private:
  [[nodiscard]] std::uint64_t hash(long task_seq, int attempt,
                                   std::uint64_t salt) const;
  /// Generic two-word variant of the hash stream for flip draws.
  [[nodiscard]] std::uint64_t mix(std::uint64_t a, std::uint64_t b,
                                  std::uint64_t salt) const;

  FaultConfig cfg_;
  bool node_loss_fired_{false};
  std::vector<bool> flips_fired_;
  std::vector<bool> stalls_fired_;
};

}  // namespace legate::sim
