#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

namespace legate::sim {

/// One scripted transient fault: attempt `attempt` (0-based) of the point
/// task with deterministic sequence number `task` fails.
struct ScriptedFault {
  long task{0};
  int attempt{0};
};

/// Deterministic fault schedule, configured through rt::RuntimeOptions.
/// Everything here is a pure function of the seed and the task sequence, so
/// the same configuration produces a bit-identical schedule (and therefore
/// bit-identical Stats) on every run.
struct FaultConfig {
  bool enabled{false};
  std::uint64_t seed{0};

  // --- transient leaf-task faults ---------------------------------------
  /// Probability that a given (task, attempt) pair suffers a transient
  /// fault (ECC error, killed kernel, flaky link). Drawn independently per
  /// attempt from the deterministic hash stream.
  double task_fault_rate{0};
  /// Explicitly scripted faults, checked in addition to the random stream
  /// ("fail attempt k of task n").
  std::vector<ScriptedFault> scripted;
  /// Attempts per point task before the launch is declared poisoned.
  int max_attempts{3};
  /// Failure-detection latency charged per failed attempt (heartbeat /
  /// ECC-interrupt turnaround on the modeled machine).
  double detect_seconds{200e-6};
  /// Base of the exponential backoff before attempt k: base * 2^(k-1).
  double backoff_seconds{100e-6};

  // --- whole-node loss ----------------------------------------------------
  /// Simulated time at which node `node_loss_node` is lost; < 0 disables.
  double node_loss_time{-1};
  int node_loss_node{0};
  /// Outage charged to every clock while the runtime detects the loss and
  /// re-admits a replacement node (hot-spare model: the machine shape is
  /// unchanged, but all data resident on the lost node is gone).
  double node_recovery_seconds{0.25};

  // --- memory-pressure injection -----------------------------------------
  /// Phantom bytes reserved in every framebuffer at startup, shrinking the
  /// usable capacity to force the spill path without paper-scale problems.
  double oom_pressure_bytes{0};
};

/// Answers "does attempt k of task n fail?" and "has the scheduled node
/// loss fired yet?" deterministically from the config.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

  /// Whether attempt `attempt` (0-based) of point task `task_seq` fails.
  /// Pure: independent of call order.
  [[nodiscard]] bool should_fail(long task_seq, int attempt) const;

  /// Fraction of the task's duration that elapses before the fault hits
  /// (the processor is occupied for this much wasted work). In [0.1, 1).
  [[nodiscard]] double fail_fraction(long task_seq, int attempt) const;

  /// True exactly once, the first time `now` passes the scheduled loss time.
  [[nodiscard]] bool node_loss_due(double now);
  [[nodiscard]] bool node_loss_fired() const { return node_loss_fired_; }

 private:
  [[nodiscard]] std::uint64_t hash(long task_seq, int attempt,
                                   std::uint64_t salt) const;

  FaultConfig cfg_;
  bool node_loss_fired_{false};
};

}  // namespace legate::sim
