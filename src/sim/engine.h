#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "diag/diag.h"
#include "metrics/metrics.h"
#include "prof/prof.h"
#include "sim/machine.h"
#include "util/common.h"

namespace legate::sim {

/// Roofline work descriptor for one leaf task / kernel invocation.
struct Cost {
  double bytes{0};       ///< bytes moved through the memory system
  double flops{0};       ///< floating point operations
  double efficiency{1};  ///< multiplier < 1 slows the kernel down
};

/// Traffic & activity counters, reported with every benchmark run.
struct Stats {
  double bytes_intra{0};   ///< intra-memory copies (allocation resizing)
  double bytes_nvlink{0};  ///< intra-node inter-memory traffic
  double bytes_ib{0};      ///< inter-node traffic
  double bytes_ckpt{0};    ///< checkpoint/restore traffic to the modeled PFS
  long copies{0};
  long tasks{0};
  long allreduces{0};
  // Resilience counters (all zero unless fault injection / recovery fires).
  long faults_injected{0};  ///< transient task faults + node losses injected
  long retries{0};          ///< point-task re-executions after a fault
  long spills{0};           ///< allocations evicted/spilled under OOM pressure
  long checkpoints{0};      ///< Runtime::checkpoint() snapshots taken
  long restores{0};         ///< Runtime::restore() rollbacks performed
  // Data-integrity counters (zero unless silent-corruption injection fires).
  long flips_injected{0};   ///< silent bit flips applied to store bytes
  long flips_detected{0};   ///< flips caught by checksum verification
  long flips_recovered{0};  ///< flips repaired bit-exactly in place
};

/// Turns a roofline Cost into seconds on a given processor kind.
/// Callers select the core fraction (Legate reserves runtime cores; SciPy is
/// single-threaded) so the same model serves the runtime and all baselines.
class CostModel {
 public:
  explicit CostModel(const PerfParams& pp) : pp_(pp) {}

  [[nodiscard]] double kernel_seconds(ProcKind kind, const Cost& c,
                                      double core_fraction = 1.0) const {
    double bw = 0, fl = 0;
    switch (kind) {
      case ProcKind::CPU:
        bw = pp_.cpu_mem_bw * core_fraction;
        fl = pp_.cpu_flops * core_fraction;
        break;
      case ProcKind::GPU:
        bw = pp_.gpu_mem_bw;
        fl = pp_.gpu_flops;
        break;
    }
    // A non-positive efficiency is always a misconfigured kernel descriptor
    // (the multiplier divides the roofline time); failing loudly here beats
    // silently charging full-speed time for a kernel someone meant to derate.
    LSR_CHECK_MSG(c.efficiency > 0, "kernel cost has non-positive efficiency");
    double t = std::max(c.bytes / bw, c.flops / fl);
    return t / c.efficiency;
  }

 private:
  PerfParams pp_;
};

/// Discrete-event accounting for one program run.
///
/// The runtime executes leaf tasks for real and, in parallel, asks the engine
/// when each task/copy/collective would complete on the modeled machine.
/// Because the task stream is processed in order and every dependence is
/// already resolved to a completion time, no event queue is needed: each
/// resource (processor, copy link, NIC, control lane) is a monotone clock.
class Engine {
 public:
  explicit Engine(const Machine& machine);

  /// Occupy the sequential launch path (Python / library op dispatch) for
  /// `overhead` seconds; returns the time the launch is finished. `label`
  /// names the dispatched operation on the recorded timeline.
  double control_advance(double overhead, std::string_view label = {});

  /// Occupy processor `proc` starting no earlier than `ready` for `duration`
  /// seconds; returns completion time. `label` names the task on the
  /// recorded timeline (ignored unless profiling is enabled).
  double busy_proc(int proc, double ready, double duration,
                   std::string_view label = {});

  /// Model a copy of `bytes` from memory `src` to memory `dst` whose source
  /// data is available at `ready`; returns completion time. `src == dst`
  /// models intra-memory movement (allocation resizing / reshape).
  double copy(int src, int dst, double bytes, double ready);

  /// Model an all-reduce across `nprocs` processors whose inputs are ready at
  /// `ready`. Legate-style carries a linear per-processor term (the Legion
  /// issue exposed in Fig. 9); MPI-style is a clean log tree.
  double allreduce(int nprocs, double ready, bool legate_style);

  /// All-reduce carrying `bytes` of payload per processor (dense partial
  /// sums). Adds a ring term 2·b·(p−1)/p over the bottleneck link.
  double allreduce_bytes(int nprocs, double bytes, double ready, bool legate_style);

  /// Capacity accounting: reserve / release application bytes in a memory.
  /// Throws OutOfMemoryError when a memory would exceed capacity.
  void alloc_bytes(int mem, double bytes);
  void free_bytes(int mem, double bytes);
  [[nodiscard]] double used_bytes(int mem) const { return mem_used_.at(mem); }
  [[nodiscard]] double peak_bytes(int mem) const { return mem_peak_.at(mem); }
  [[nodiscard]] double capacity(int mem) const { return machine_.memory(mem).capacity; }
  /// Bytes still allocatable (cost_scale applied symmetrically by callers).
  [[nodiscard]] double free_capacity(int mem) const {
    return machine_.memory(mem).capacity - mem_used_.at(mem);
  }

  /// Global outage: every clock (control, processors, copy engines) stalls
  /// for `seconds` starting no earlier than `at`. Models whole-machine
  /// hiccups such as node-loss detection + replacement admission.
  double stall_all(double at, double seconds);

  /// Model a checkpoint write (or restore read) of `bytes` to the parallel
  /// file system; one shared PFS channel serializes checkpoint traffic.
  /// Bumps the matching resilience counter and returns the completion time.
  double checkpoint_io(double bytes, double ready, bool restore);

  /// Extend the makespan to at least `t` (failure-detection tails that
  /// occupy no resource clock).
  void bump_to(double t) { bump(t); }

  void note_task() {
    ++stats_.tasks;
    met_.tasks.inc();
  }
  void note_fault() {
    ++stats_.faults_injected;
    met_.faults.inc();
    if (recorder_.enabled()) mark(prof::Category::Fault);
    diag_.record(diag::EventKind::Fault, "fault");
  }
  void note_retry() {
    ++stats_.retries;
    met_.retries.inc();
    if (recorder_.enabled()) mark(prof::Category::Retry);
    diag_.record(diag::EventKind::Retry, "retry");
  }
  void note_spill() {
    ++stats_.spills;
    met_.spills.inc();
    if (recorder_.enabled()) mark(prof::Category::Spill);
    diag_.record(diag::EventKind::Spill, "spill");
  }
  /// Instant timeline marker for a metrics snapshot (Runtime::metrics_snapshot
  /// calls this so snapshots show up on recorded traces).
  void note_snapshot() {
    if (recorder_.enabled()) mark(prof::Category::Snapshot);
  }
  void note_flip_injected() {
    ++stats_.flips_injected;
    met_.flips_injected.inc();
    if (recorder_.enabled()) mark(prof::Category::Integrity);
    diag_.record(diag::EventKind::Integrity, "flip-injected", 0);
  }
  /// Instant timeline marker: the runtime rewrote a launch window into one
  /// fused launch (src/fuse).
  void note_fused() {
    if (recorder_.enabled()) mark(prof::Category::Fused);
  }
  /// Instant timeline marker: the runtime applied a (cached) exchange plan
  /// in place of per-piece staleness copies (src/comm).
  void note_comm() {
    if (recorder_.enabled()) mark(prof::Category::Comm);
  }
  /// `latency` is simulated seconds between injection and detection (0 when
  /// the flip is caught at the very poll that injected it).
  void note_flip_detected(double latency) {
    ++stats_.flips_detected;
    met_.flips_detected.inc();
    met_.flip_latency.observe(latency);
    if (recorder_.enabled()) mark(prof::Category::Integrity);
    diag_.record(diag::EventKind::Integrity, "flip-detected", 1, 0, latency);
  }
  void note_flip_recovered() {
    ++stats_.flips_recovered;
    met_.flips_recovered.inc();
    if (recorder_.enabled()) mark(prof::Category::Integrity);
    diag_.record(diag::EventKind::Integrity, "flip-recovered", 2);
  }

  /// Workload scale factor S: benchmarks execute a 1/S functional sample of
  /// the modeled problem and charge S x the bytes/flops/capacity, which is
  /// exact whenever every cost scales linearly with rows/nnz (true for all
  /// paper workloads; see DESIGN.md). Affects copies, payload collectives
  /// and capacity accounting; kernel durations are scaled by the callers.
  void set_cost_scale(double s) { cost_scale_ = s; }
  [[nodiscard]] double cost_scale() const { return cost_scale_; }
  [[nodiscard]] double makespan() const { return makespan_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Machine& machine() const { return machine_; }
  [[nodiscard]] const CostModel& cost_model() const { return cost_model_; }

  /// Always-on aggregate metrics (legate::metrics). One registry per engine,
  /// so concurrent Runtimes (e.g. a bench's sequential reference run) never
  /// pollute each other's counts. Engine paths record simulated traffic and
  /// stall metrics here; the runtime and solvers register their own on top.
  [[nodiscard]] metrics::Registry& metrics() { return metrics_; }
  [[nodiscard]] const metrics::Registry& metrics() const { return metrics_; }

  /// Timeline recorder (legate::prof). Disabled by default: every engine
  /// path checks `recorder().enabled()` before building labels or events,
  /// so simulated times and stats are bit-identical with recording off.
  [[nodiscard]] prof::Recorder& recorder() { return recorder_; }
  [[nodiscard]] const prof::Recorder& recorder() const { return recorder_; }
  [[nodiscard]] bool profiling() const { return recorder_.enabled(); }

  /// Always-on flight recorder + watchdog (legate::diag). Configured from
  /// LSR_DIAG at construction; rt::Runtime reconfigures from
  /// RuntimeOptions::diag. Recording charges no simulated time and bumps no
  /// engine stats, so simulated results are bit-identical with diag on/off.
  [[nodiscard]] diag::FlightRecorder& flight() { return diag_; }
  [[nodiscard]] const diag::FlightRecorder& flight() const { return diag_; }

  /// Rewind the engine for reuse across benchmark repetitions: clears every
  /// resource clock, the makespan, all Stats counters, and the recorded
  /// timeline. Capacity accounting survives (allocations owned by a live
  /// Runtime stay reserved); peaks restart from current usage.
  void reset();

  [[nodiscard]] std::string report() const;

 private:
  double& pair_link(int src_mem, int dst_mem);
  void bump(double t) { makespan_ = std::max(makespan_, t); }
  // Track interning for the recorder (profiling-enabled paths only).
  int proc_track(int proc);
  int control_track();
  int io_track();
  int collective_track();
  /// Record an instant resilience marker at the current makespan.
  void mark(prof::Category cat);

  const Machine& machine_;
  CostModel cost_model_;
  PerfParams pp_;

  double control_clock_{0};
  double io_clock_{0};  ///< shared checkpoint/restore PFS channel
  std::vector<double> proc_clock_;
  std::vector<double> mem_copy_clock_;  ///< per-memory intra-copy engine
  std::vector<double> nic_in_, nic_out_;
  std::map<std::pair<int, int>, double> pair_links_;

  std::vector<double> mem_used_, mem_peak_;
  Stats stats_;
  double makespan_{0};
  double cost_scale_{1.0};
  prof::Recorder recorder_;

  metrics::Registry metrics_;
  diag::FlightRecorder diag_;
  /// Pre-registered handles for the engine's own metrics (registered once in
  /// the constructor; increments are lock-free).
  struct Met {
    metrics::Counter tasks, copies, allreduces;
    metrics::Counter bytes_intra, bytes_nvlink, bytes_ib, bytes_ckpt;
    metrics::Counter faults, retries, spills, checkpoints, restores;
    metrics::Counter flips_injected, flips_detected, flips_recovered;
    metrics::Histogram copy_intra, copy_nvlink, copy_ib;
    metrics::Histogram stall_seconds, ckpt_bytes, flip_latency;
  } met_;
};

}  // namespace legate::sim
