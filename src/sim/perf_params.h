#pragma once

namespace legate::sim {

/// Every tunable of the performance model in one place.
///
/// The reproduction executes kernels for real (bit-exact results) but charges
/// *simulated* time for them on a Summit-like machine model. Each constant
/// below is annotated with the paper effect it drives; EXPERIMENTS.md records
/// how the resulting curves compare with the paper's figures. Values are
/// first-order approximations of Summit hardware (IBM POWER9 + V100, NVLink
/// 2.0, Infiniband EDR) and published Legion/Legate overheads.
struct PerfParams {
  // --- CPU socket (one POWER9 socket, 20 usable cores) -------------------
  double cpu_mem_bw = 135e9;   ///< bytes/s, STREAM-like per socket
  double cpu_flops = 500e9;    ///< flop/s per socket (SpMV is bw-bound anyway)
  /// Legion reserves cores for runtime meta-work; the paper notes PETSc
  /// slightly outperforms Legate-CPU for this reason (Fig. 9).
  double legate_cpu_core_fraction = 18.0 / 20.0;
  /// SciPy runs single-threaded: one core's slice of socket bandwidth.
  double scipy_core_fraction = 1.5 / 20.0;  // one core w/ some prefetch benefit

  // --- GPU (V100) ---------------------------------------------------------
  double gpu_mem_bw = 790e9;        ///< HBM2 bytes/s
  double gpu_flops = 7.0e12;        ///< FP64 flop/s
  double gpu_fb_capacity = 16.0e9;  ///< framebuffer bytes
  /// Legion + NCCL + cuSPARSE reserve framebuffer; the paper cites this as
  /// why CuPy can squeeze ML-25M onto one GPU while Legate cannot (Sec. 6.2).
  double legate_fb_reserved = 2.5e9;
  double gpu_kernel_launch = 8e-6;  ///< per-kernel launch latency, seconds

  // --- Interconnect ---------------------------------------------------------
  double nvlink_bw = 45e9;   ///< bytes/s per GPU pair (NVLink 2.0, 3 bricks)
  double nvlink_lat = 2e-6;
  double ib_bw = 12.0e9;     ///< bytes/s per direction per node (IB EDR)
  double ib_lat = 3e-6;
  double sysmem_bw = 100e9;  ///< intra-memory copy bandwidth (alloc resizing)
  double sysmem_lat = 1e-6;

  // --- Control-lane (task launch) overheads --------------------------------
  /// Legate's Python->Legion launch path; exposed by small tasks in the GMG
  /// V-cycle (Fig. 10: CuPy 30% faster at 1 GPU), the RK stages of the
  /// quantum simulation (Fig. 11) and the factorization minibatches
  /// (Fig. 12: CuPy 2.8x at ML-10M).
  double legate_task_overhead = 40e-6;
  double cupy_op_overhead = 6e-6;
  double scipy_op_overhead = 2e-6;
  double petsc_op_overhead = 2e-6;

  // --- Collectives ----------------------------------------------------------
  /// Legion's all-reduce carries a per-participant linear term (the known
  /// issue the paper cites in Fig. 9, exposed past 32 nodes) on top of a
  /// log-tree of hops.
  double legate_allreduce_alpha = 5e-6;     ///< per tree hop
  double legate_allreduce_linear = 1.0e-6;  ///< per participating processor
  double mpi_allreduce_alpha = 4e-6;        ///< PETSc/MPI per hop

  // --- Kernel efficiency quirks ---------------------------------------------
  /// Legate stores one *global* CSR; local pieces must be reshaped (pos
  /// rebased) before a cuSPARSE-style call, touching pos again (Sec. 3 /
  /// Fig. 8 "slight performance differences").
  double legate_csr_reshape_fraction = 0.30;
  /// cuSPARSE's SDDMM is much slower than the DISTAL-generated kernel;
  /// dominates CuPy at ML-25M (Sec. 6.2).
  double cupy_sddmm_slowdown = 12.0;

  // --- Resilience (fault detection / checkpoint I/O) ------------------------
  /// Checkpoint/restore bandwidth to the modeled parallel file system
  /// (burst-buffer class, per job); one shared channel serializes traffic.
  double checkpoint_bw = 2.4e9;
  double checkpoint_lat = 1e-3;  ///< per-snapshot metadata/open latency

  // --- Machine shape ---------------------------------------------------------
  int sockets_per_node = 2;
  int gpus_per_node = 6;
  double sysmem_capacity = 512e9;  ///< per node (Summit: 512 GB DDR4)
};

}  // namespace legate::sim
