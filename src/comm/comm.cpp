#include "comm/comm.h"

#include <algorithm>
#include <cstring>
#include <tuple>

namespace legate::comm {

Mode parse_comm_mode(const char* s) {
  if (s == nullptr) return Mode::Unset;
  if (std::strcmp(s, "off") == 0 || std::strcmp(s, "0") == 0) return Mode::Off;
  if (std::strcmp(s, "plan") == 0 || std::strcmp(s, "on") == 0 ||
      std::strcmp(s, "1") == 0) {
    return Mode::Plan;
  }
  if (std::strcmp(s, "overlap") == 0) return Mode::Overlap;
  return Mode::Unset;
}

const char* comm_mode_name(Mode m) {
  switch (m) {
    case Mode::Unset: return "unset";
    case Mode::Off: return "off";
    case Mode::Plan: return "plan";
    case Mode::Overlap: return "overlap";
  }
  return "?";
}

void ExchangePlan::coalesce(int colors, const std::vector<int>& mem_node) {
  transfers.clear();
  ghost_bytes_by_color.assign(static_cast<std::size_t>(colors), 0.0);
  total_bytes = 0;
  stores.clear();

  // One transfer per modeled link, in first-appearance order (ghost order is
  // deterministic, so so is this). The representative memory pair is the
  // first member's: intra and nvlink groups share it by construction, and
  // the engine routes cross-node copies through the node NICs, so any member
  // pair with the right nodes charges identically.
  std::map<std::tuple<int, int, int>, std::size_t> index;
  for (std::uint32_t gi = 0; gi < ghosts.size(); ++gi) {
    const Ghost& g = ghosts[gi];
    std::tuple<int, int, int> link;
    if (g.src_mem == g.dst_mem) {
      link = {0, g.src_mem, g.src_mem};
    } else if (mem_node[static_cast<std::size_t>(g.src_mem)] ==
               mem_node[static_cast<std::size_t>(g.dst_mem)]) {
      link = {1, g.src_mem, g.dst_mem};
    } else {
      // Cross-node groups keep source-memory granularity: the aggregate's
      // start is gated on max(src readiness) over its members, so folding a
      // whole node's memories together would couple every destination to the
      // node's slowest producer.
      link = {2, g.src_mem,
              mem_node[static_cast<std::size_t>(g.dst_mem)]};
    }
    auto [it, inserted] = index.try_emplace(link, transfers.size());
    if (inserted) transfers.push_back(Transfer{g.src_mem, g.dst_mem, 0.0, {}});
    Transfer& t = transfers[it->second];
    t.bytes += g.bytes;
    t.ghosts.push_back(gi);
    ghost_bytes_by_color[static_cast<std::size_t>(g.color)] += g.bytes;
    total_bytes += g.bytes;
  }
}

namespace {
std::uint64_t slot_of(std::uint64_t key, std::uint64_t sig) {
  Hash h;
  h.mix(key);
  h.mix(sig);
  return h.digest();
}
}  // namespace

const ExchangePlan* PlanCache::lookup(std::uint64_t key, std::uint64_t sig) {
  auto it = plans_.find(slot_of(key, sig));
  if (it == plans_.end() || it->second.signature != sig) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

const ExchangePlan* PlanCache::insert(std::uint64_t key, ExchangePlan plan) {
  const std::uint64_t slot = slot_of(key, plan.signature);
  if (plans_.size() >= kMaxPlans && plans_.find(slot) == plans_.end()) {
    plans_.clear();
    by_store_.clear();
  }
  for (StoreId s : plan.stores) by_store_[s].insert(slot);
  auto [it, inserted] = plans_.insert_or_assign(slot, std::move(plan));
  (void)inserted;
  return &it->second;
}

long PlanCache::invalidate_store(StoreId id) {
  auto it = by_store_.find(id);
  if (it == by_store_.end()) return 0;
  long n = 0;
  for (std::uint64_t k : it->second) n += static_cast<long>(plans_.erase(k));
  by_store_.erase(it);
  stats_.invalidations += n;
  return n;
}

void PlanCache::clear() {
  plans_.clear();
  by_store_.clear();
}

}  // namespace legate::comm
