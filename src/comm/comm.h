#pragma once

// Communication planner (lsr_comm): explicit halo-exchange plans for the
// runtime's staleness copies.
//
// The runtime's default staging path (Runtime::ensure_in_memory) re-derives
// and issues each launch's ghost copies one (source, destination) pair at a
// time, on every launch. For the fixed-structure iterations that dominate
// CG/GMRES the staleness set is identical from one iteration to the next, so
// this layer materializes it once into an ExchangePlan — the per-destination
// ghost index sets with their byte volumes — and caches it keyed by the
// launch's partition structure plus a valid-set signature of the stores'
// version/ownership/instance state. A cached plan is only replayed when the
// freshly computed signature matches, so correctness never depends on
// invalidation hooks; invalidation (store mutation, destruction,
// repartitioning) is hygiene that keeps the cache small and the hit/miss
// counters meaningful.
//
// A plan's ghosts are coalesced into one aggregated transfer per modeled
// link: per memory for intra-memory traffic, per (src, dst) memory pair for
// same-node (nvlink) traffic, and per (src, dst) node pair for inter-node
// (ib) traffic — replacing one-copy-per-piece charging with one latency
// payment per link. See DESIGN.md §15.
//
// This library sits below rt (links only lsr_util); the runtime owns the
// derivation and application logic (src/rt/runtime_comm.cpp).

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "util/interval.h"

namespace legate::comm {

/// Mirrors rt::StoreId without depending on rt headers.
using StoreId = std::uint64_t;

/// Communication-planner mode (RuntimeOptions::comm / LSR_COMM).
enum class Mode {
  Unset,    ///< read LSR_COMM (`off|plan|overlap`), defaulting to Off
  Off,      ///< per-piece staging copies (the baseline engine-op sequence)
  Plan,     ///< cached exchange plans + per-link message coalescing
  Overlap,  ///< Plan, plus interior/boundary kernel splitting so compute
            ///< proceeds while ghost transfers are in flight
};

/// Parse `off|0|plan|on|1|overlap` (anything else = Unset → default).
[[nodiscard]] Mode parse_comm_mode(const char* s);
[[nodiscard]] const char* comm_mode_name(Mode m);

/// FNV-1a 64-bit accumulator for the structural plan key and the valid-set
/// signature. Hashing interval runs (lo, hi, normalized value) makes both
/// digests independent of partition object identity — the runtime rebuilds
/// broadcast/halo Partition objects every launch, so uids cannot key a cache.
struct Hash {
  std::uint64_t h{14695981039346656037ULL};

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 1099511628211ULL;
    }
  }
  void mix_i(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t digest() const { return h; }
};

/// One stale piece a launch must pull: `piece` (element coordinates) of the
/// plan's `arg`-th keyed argument, from `src_mem` into `dst_mem`, feeding
/// point task `color`. Stores are addressed by keyed-argument ordinal, not
/// id: iterative solvers rotate temporary store ids every iteration while
/// the exchange structure stays fixed.
struct Ghost {
  Interval piece;
  int arg{0};      ///< ordinal within the plan's keyed (ghost-bearing) args
  int src_mem{-1};
  int dst_mem{-1};
  int color{0};
  double bytes{0};  ///< raw (unscaled) payload bytes
};

/// One aggregated transfer: every ghost riding the same modeled link, issued
/// as a single copy of the summed bytes between representative memories.
struct Transfer {
  int src_mem{-1};
  int dst_mem{-1};
  double bytes{0};
  std::vector<std::uint32_t> ghosts;  ///< indices into ExchangePlan::ghosts
};

/// A launch's materialized staleness-copy set plus its coalesced form.
struct ExchangePlan {
  std::vector<Ghost> ghosts;
  std::vector<Transfer> transfers;
  /// Raw ghost bytes delivered to each point task (indexed by color); the
  /// overlap mode sizes the boundary phase of each kernel from this.
  std::vector<double> ghost_bytes_by_color;
  double total_bytes{0};
  std::uint64_t signature{0};
  /// Store ids contributing ghost bytes at derivation time (sorted, unique)
  /// — the invalidation index. Deliberately NOT every keyed argument: solver
  /// temporaries that are read aligned (no ghosts) rotate ids every
  /// iteration, and binding them here would evict structurally reusable
  /// plans each time one dies. Signature validation guards correctness for
  /// every store either way.
  std::vector<StoreId> stores;

  /// Group `ghosts` into `transfers` by modeled link — intra-memory (same
  /// memory), nvlink (same node: per memory pair), ib (cross-node: per node
  /// pair) — and fill the per-color/total byte tallies. `mem_node` maps
  /// memory id → node id; `colors` sizes ghost_bytes_by_color.
  void coalesce(int colors, const std::vector<int>& mem_node);
};

/// Keyed plan cache with a per-store invalidation index. Entries live under
/// the combined (structural key, valid-set signature) hash, so one launch
/// structure may cache several plans for distinct store states — launches
/// sharing a structure (e.g. axpy/dot over identically partitioned vectors)
/// must not evict each other, and a solver alternating between two states
/// must not thrash a single slot.
class PlanCache {
 public:
  struct Stats {
    long hits{0};
    long misses{0};
    long invalidations{0};
  };

  /// Returns the cached plan iff (`key`, `sig`) is present; bumps hit/miss
  /// stats.
  const ExchangePlan* lookup(std::uint64_t key, std::uint64_t sig);
  /// Insert the plan (whose `signature` must be set) under `key`; returns
  /// the stored plan. When the cache is full the whole map is dropped first
  /// (plans are cheap to re-derive; eviction order must not depend on hash
  /// iteration order).
  const ExchangePlan* insert(std::uint64_t key, ExchangePlan plan);
  /// Drop every plan touching `id`; returns the number dropped (also added
  /// to stats().invalidations).
  long invalidate_store(StoreId id);
  void clear();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return plans_.size(); }

 private:
  static constexpr std::size_t kMaxPlans = 512;
  std::unordered_map<std::uint64_t, ExchangePlan> plans_;
  std::map<StoreId, std::set<std::uint64_t>> by_store_;
  Stats stats_;
};

}  // namespace legate::comm
