#include "solve/lanczos.h"

#include <algorithm>
#include <cmath>

namespace legate::solve {

using dense::DArray;
using dense::Scalar;

namespace {

/// Eigenvalues of a symmetric tridiagonal matrix (diagonal `a`, off-diagonal
/// `b`) by bisection on the Sturm sequence. O(m^2 log(1/eps)): fine for the
/// small Krylov dimensions Lanczos produces.
std::vector<double> tridiag_eigenvalues(const std::vector<double>& a,
                                        const std::vector<double>& b) {
  int m = static_cast<int>(a.size());
  // Gershgorin bounds.
  double lo = a[0], hi = a[0];
  for (int i = 0; i < m; ++i) {
    double r = (i > 0 ? std::fabs(b[static_cast<std::size_t>(i) - 1]) : 0) +
               (i + 1 < m ? std::fabs(b[static_cast<std::size_t>(i)]) : 0);
    lo = std::min(lo, a[static_cast<std::size_t>(i)] - r);
    hi = std::max(hi, a[static_cast<std::size_t>(i)] + r);
  }
  // Count of eigenvalues < x via the Sturm sequence.
  auto count_below = [&](double x) {
    int count = 0;
    double d = 1.0;
    for (int i = 0; i < m; ++i) {
      double bb = i > 0 ? b[static_cast<std::size_t>(i) - 1] : 0.0;
      d = a[static_cast<std::size_t>(i)] - x - (d != 0.0 ? bb * bb / d : std::fabs(bb) / 1e-300);
      if (d < 0) ++count;
      if (d == 0) d = -1e-300;
    }
    return count;
  };
  std::vector<double> eig(static_cast<std::size_t>(m));
  for (int k = 0; k < m; ++k) {
    double a_lo = lo, a_hi = hi;
    for (int it = 0; it < 200 && a_hi - a_lo > 1e-13 * std::max(1.0, std::fabs(a_hi));
         ++it) {
      double mid = 0.5 * (a_lo + a_hi);
      if (count_below(mid) > k) {
        a_hi = mid;
      } else {
        a_lo = mid;
      }
    }
    eig[static_cast<std::size_t>(k)] = 0.5 * (a_lo + a_hi);
  }
  return eig;
}

}  // namespace

LanczosResult lanczos(const sparse::CsrMatrix& A, int k, int max_iter,
                      std::uint64_t seed) {
  LSR_CHECK_MSG(A.rows() == A.cols(), "lanczos needs a square (symmetric) matrix");
  rt::Runtime& rt = A.runtime();
  rt::ProvenanceScope prof_scope(rt, "lanczos");
  coord_t n = A.rows();
  int m = std::min<int>(max_iter, static_cast<int>(n));

  std::vector<DArray> V;
  V.reserve(static_cast<std::size_t>(m) + 1);
  DArray v = DArray::random(rt, n, seed);
  {
    Scalar nrm = v.norm();
    v.iscale({1.0 / nrm.value, nrm.ready});
  }
  V.push_back(v);

  std::vector<double> alpha, beta;
  for (int j = 0; j < m; ++j) {
    DArray w = A.spmv(V[static_cast<std::size_t>(j)]);
    Scalar a = w.dot(V[static_cast<std::size_t>(j)]);
    alpha.push_back(a.value);
    w.axpy({-a.value, a.ready}, V[static_cast<std::size_t>(j)]);
    if (j > 0) w.axpy(-beta.back(), V[static_cast<std::size_t>(j) - 1]);
    // Full reorthogonalization keeps the basis numerically orthogonal.
    for (int i = 0; i <= j; ++i) {
      Scalar h = w.dot(V[static_cast<std::size_t>(i)]);
      w.axpy({-h.value, h.ready}, V[static_cast<std::size_t>(i)]);
    }
    double b = w.norm().value;
    if (b < 1e-12 || j == m - 1) break;
    beta.push_back(b);
    V.push_back(w.scale(1.0 / b));
  }

  LanczosResult res;
  res.iterations = static_cast<int>(alpha.size());
  // All Ritz values, ascending; the `k` extreme ones (front/back) are the
  // converged approximations when max_iter comfortably exceeds k.
  (void)k;
  res.eigenvalues = tridiag_eigenvalues(alpha, beta);
  return res;
}

}  // namespace legate::solve
