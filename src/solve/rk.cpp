#include "solve/rk.h"

#include <cmath>

namespace legate::solve {

using dense::DArray;

namespace {

ButcherTableau make_rk4() {
  ButcherTableau t;
  t.stages = 4;
  t.a.assign(16, 0.0);
  t.a[1 * 4 + 0] = 0.5;
  t.a[2 * 4 + 1] = 0.5;
  t.a[3 * 4 + 2] = 1.0;
  t.b = {1.0 / 6, 1.0 / 3, 1.0 / 3, 1.0 / 6};
  t.c = {0, 0.5, 0.5, 1.0};
  return t;
}

/// Cooper-Verner 11-stage, order 8 (coefficients in terms of √21).
ButcherTableau make_rk8() {
  const double s = std::sqrt(21.0);
  ButcherTableau t;
  t.stages = 11;
  t.a.assign(121, 0.0);
  auto A = [&](int i, int j) -> double& {
    return t.a[static_cast<std::size_t>(i * 11 + j)];
  };
  A(1, 0) = 1.0 / 2;
  A(2, 0) = 1.0 / 4;
  A(2, 1) = 1.0 / 4;
  A(3, 0) = 1.0 / 7;
  A(3, 1) = (-7 - 3 * s) / 98;
  A(3, 2) = (21 + 5 * s) / 49;
  A(4, 0) = (11 + s) / 84;
  A(4, 2) = (18 + 4 * s) / 63;
  A(4, 3) = (21 - s) / 252;
  A(5, 0) = (5 + s) / 48;
  A(5, 2) = (9 + s) / 36;
  A(5, 3) = (-231 + 14 * s) / 360;
  A(5, 4) = (63 - 7 * s) / 80;
  A(6, 0) = (10 - s) / 42;
  A(6, 2) = (-432 + 92 * s) / 315;
  A(6, 3) = (633 - 145 * s) / 90;
  A(6, 4) = (-504 + 115 * s) / 70;
  A(6, 5) = (63 - 13 * s) / 35;
  A(7, 0) = 1.0 / 14;
  A(7, 4) = (14 - 3 * s) / 126;
  A(7, 5) = (13 - 3 * s) / 63;
  A(7, 6) = 1.0 / 9;
  A(8, 0) = 1.0 / 32;
  A(8, 4) = (91 - 21 * s) / 576;
  A(8, 5) = 11.0 / 72;
  A(8, 6) = (-385 - 75 * s) / 1152;
  A(8, 7) = (63 + 13 * s) / 128;
  A(9, 0) = 1.0 / 14;
  A(9, 4) = 1.0 / 9;
  A(9, 5) = (-733 - 147 * s) / 2205;
  A(9, 6) = (515 + 111 * s) / 504;
  A(9, 7) = (-51 - 11 * s) / 56;
  A(9, 8) = (132 + 28 * s) / 245;
  A(10, 4) = (-42 + 7 * s) / 18;
  A(10, 5) = (-18 + 28 * s) / 45;
  A(10, 6) = (-273 - 53 * s) / 72;
  A(10, 7) = (301 + 53 * s) / 72;
  A(10, 8) = (28 - 28 * s) / 45;
  A(10, 9) = (49 - 7 * s) / 18;
  t.b = {1.0 / 20, 0, 0, 0, 0, 0, 0, 49.0 / 180, 16.0 / 45, 49.0 / 180, 1.0 / 20};
  t.c = {0,
         1.0 / 2,
         1.0 / 2,
         (7 + s) / 14,
         (7 + s) / 14,
         1.0 / 2,
         (7 - s) / 14,
         (7 - s) / 14,
         1.0 / 2,
         (7 + s) / 14,
         1.0};
  return t;
}

}  // namespace

const ButcherTableau& ButcherTableau::rk4() {
  static const ButcherTableau t = make_rk4();
  return t;
}

const ButcherTableau& ButcherTableau::rk8() {
  static const ButcherTableau t = make_rk8();
  return t;
}

OdeResult integrate(const ButcherTableau& tab, const OdeRhs& f, const DArray& y0,
                    double t0, double t1, int steps) {
  LSR_CHECK(steps > 0);
  double h = (t1 - t0) / steps;
  DArray y = y0.copy();
  rt::ProvenanceScope prof_scope(y.runtime(), "rk-step");
  OdeResult res;
  for (int step = 0; step < steps; ++step) {
    double t = t0 + h * step;
    std::vector<DArray> k;
    k.reserve(static_cast<std::size_t>(tab.stages));
    for (int i = 0; i < tab.stages; ++i) {
      DArray yi = y.copy();
      for (int j = 0; j < i; ++j) {
        double aij = tab.at(i, j);
        if (aij != 0.0) yi.axpy(h * aij, k[static_cast<std::size_t>(j)]);
      }
      k.push_back(f(t + tab.c[static_cast<std::size_t>(i)] * h, yi));
      ++res.rhs_evaluations;
    }
    for (int i = 0; i < tab.stages; ++i) {
      double bi = tab.b[static_cast<std::size_t>(i)];
      if (bi != 0.0) y.axpy(h * bi, k[static_cast<std::size_t>(i)]);
    }
    ++res.steps;
  }
  res.y = y;
  return res;
}

OdeResult rk45(const OdeRhs& f, const DArray& y0, double t0, double t1, double rtol,
               double atol, double initial_step) {
  // Dormand-Prince 5(4) coefficients.
  constexpr int S = 7;
  static const double A[S][S] = {
      {0, 0, 0, 0, 0, 0, 0},
      {1.0 / 5, 0, 0, 0, 0, 0, 0},
      {3.0 / 40, 9.0 / 40, 0, 0, 0, 0, 0},
      {44.0 / 45, -56.0 / 15, 32.0 / 9, 0, 0, 0, 0},
      {19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729, 0, 0, 0},
      {9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656, 0, 0},
      {35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}};
  static const double B5[S] = {35.0 / 384, 0, 500.0 / 1113, 125.0 / 192,
                               -2187.0 / 6784, 11.0 / 84, 0};
  static const double B4[S] = {5179.0 / 57600,    0,           7571.0 / 16695,
                               393.0 / 640,       -92097.0 / 339200,
                               187.0 / 2100,      1.0 / 40};
  static const double C[S] = {0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1.0, 1.0};

  DArray y = y0.copy();
  double t = t0;
  double h = initial_step;
  OdeResult res;
  double ynorm = y.norm().value;
  while (t < t1) {
    if (t + h > t1) h = t1 - t;
    std::vector<DArray> k;
    k.reserve(S);
    for (int i = 0; i < S; ++i) {
      DArray yi = y.copy();
      for (int j = 0; j < i; ++j) {
        if (A[i][j] != 0.0) yi.axpy(h * A[i][j], k[static_cast<std::size_t>(j)]);
      }
      k.push_back(f(t + C[i] * h, yi));
      ++res.rhs_evaluations;
    }
    // 5th-order solution and embedded error estimate.
    DArray y5 = y.copy();
    DArray err = y.scale(0.0);
    for (int i = 0; i < S; ++i) {
      if (B5[i] != 0.0) y5.axpy(h * B5[i], k[static_cast<std::size_t>(i)]);
      double d = B5[i] - B4[i];
      if (d != 0.0) err.axpy(h * d, k[static_cast<std::size_t>(i)]);
    }
    double scale = atol + rtol * std::max(ynorm, y5.norm().value);
    double enorm = err.norm().value / scale;
    if (enorm <= 1.0 || h <= 1e-14 * (t1 - t0)) {
      t += h;
      y = y5;
      ynorm = y.norm().value;
      ++res.steps;
    }
    double factor = enorm > 0 ? 0.9 * std::pow(enorm, -0.2) : 5.0;
    h *= std::min(5.0, std::max(0.2, factor));
  }
  res.y = y;
  return res;
}

}  // namespace legate::solve
