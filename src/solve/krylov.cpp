#include "solve/krylov.h"

#include <cmath>
#include <optional>
#include <vector>

#include "diag/diag.h"
#include "rt/checkpoint.h"

namespace legate::solve {

using dense::DArray;
using dense::Scalar;

namespace {

/// Combine two scalar futures; the result is ready when both inputs are and
/// poisoned when either is.
Scalar fdiv(Scalar a, Scalar b) {
  return {a.value / b.value, std::max(a.ready, b.ready), a.poisoned || b.poisoned};
}
Scalar fneg(Scalar a) { return {-a.value, a.ready, a.poisoned}; }

/// Faults a solver survives before giving up (repeated node losses faster
/// than the checkpoint cadence make no forward progress).
constexpr int kMaxRestores = 8;

/// Re-executions of an ABFT-failed SpMV under Integrity::Recover before the
/// solver falls back to a checkpoint rollback. A retry draws a fresh
/// output-flip lottery, so a clean retry reproduces the fault-free product
/// bit-for-bit.
constexpr int kAbftRetries = 3;
/// Rounding slack of the checksum test, scaled by |A|-magnitude column sums.
constexpr double kAbftRtol = 1e-8;
/// Residual-replacement drift threshold: recursive vs true residual gaps
/// beyond this (relative to the larger of the two, floored at tol·‖b‖) mean
/// corruption escaped the checksum layers.
constexpr double kRrDriftRtol = 1e-3;

/// ABFT-protected y = A @ x. With integrity off this is a plain spmv.
/// Otherwise verify the Huang–Abraham checksum invariant Σ(Ax) == c·x for the
/// cached check row c = colsums(A), with slack kAbftRtol·(|A|colsums·|x| +
/// |c·x|) — the magnitude scale is essential because plain column sums of
/// stencil operators cancel to ~0. Under Detect a violation reports *ok =
/// false (the solver aborts unconverged); under Recover the product is
/// recomputed up to kAbftRetries times and the event counted recovered.
DArray checked_spmv(const sparse::CsrMatrix& A, const DArray& x, bool& ok) {
  rt::Runtime& rt = A.runtime();
  const rt::Integrity mode = rt.options().integrity;
  if (mode == rt::Integrity::Off) return A.spmv(x);
  const int attempts = mode == rt::Integrity::Recover ? 1 + kAbftRetries : 1;
  for (int t = 0; t < attempts; ++t) {
    DArray y = A.spmv(x);
    Scalar lhs = y.sum();
    Scalar rhs = A.check_row().dot(x);
    Scalar scale = A.abs_check_row().dot(x.abs());
    // Fail-stop poison (lost node mid-product) is the retry machinery's
    // problem, not ABFT's — hand the poisoned result straight back.
    if (lhs.poisoned || rhs.poisoned || scale.poisoned) return y;
    if (std::fabs(lhs.value - rhs.value) <=
        kAbftRtol * (scale.value + std::fabs(rhs.value))) {
      if (t > 0) rt.engine().note_flip_recovered();
      return y;
    }
    rt.engine().note_flip_detected(0.0);
  }
  ok = false;
  return A.spmv(x);  // caller aborts or rolls back via ok
}

/// Per-solver convergence telemetry (lsr_solve_<name>_*). Owns the
/// ProvenanceScope labeling the solver's launches on recorded timelines and
/// registers the solver's metrics on the runtime's registry. Everything here
/// runs on the control thread between launches against bit-identical values
/// (residuals, iteration counts, simulated time), so all of it is Stable.
class Telemetry {
 public:
  Telemetry(rt::Runtime& rt, const char* name)
      : rt_(rt), scope_(rt, name), scope_name_(name),
        guard_(rt.flight(), name) {
    auto& reg = rt.metrics();
    std::string p = std::string("lsr_solve_") + name + "_";
    solves_ = reg.counter(p + "solves_total", "solve invocations");
    iters_ = reg.counter(p + "iterations_total", "iterations summed over solves");
    residual_ = reg.gauge(p + "residual", "final residual of the last solve");
    converged_ = reg.gauge(p + "converged", "1 when the last solve converged");
    time_to_tol_ = reg.gauge(p + "time_to_tol_seconds",
                             "simulated seconds from solve start to finish");
    res_log10_ =
        reg.histogram(p + "residual_log10", "per-iteration log10(residual)",
                      metrics::Registry::log10_buckets());
    part_nnz_ = reg.gauge(
        p + "partition_nnz",
        "1 when the last solve's system matrix ran over the nnz-balanced "
        "row split (DESIGN.md section 12), 0 for the equal row split");
    fused_fraction_ = reg.gauge(
        p + "fused_fraction",
        "fraction of the last solve's original launches that were folded "
        "into fused launches (0 with fusion off; DESIGN.md section 13)");
    solves_.inc();
    t0_ = rt.sim_time();
    base_applied_ = rt.launches_applied();
    base_fused_ = rt.fused_participants();
    base_eliminated_ = rt.fused_eliminated();
  }

  /// Record the system matrix's effective row-split strategy so convergence
  /// telemetry can be correlated with the partitioning it ran under.
  void matrix(const sparse::CsrMatrix& A) {
    part_nnz_.set(
        A.partition_strategy() == rt::PartitionStrategy::Nnz ? 1.0 : 0.0);
  }

  /// Record one iteration's residual (the solve's convergence history).
  /// Feeds the diag flight recorder (stable SolverIter event) and the
  /// divergence guard: both run on the sequential control path against
  /// bit-identical residuals, so neither perturbs determinism.
  void iteration(double residual) {
    res_log10_.observe(residual > 0 ? std::log10(residual) : -16.0);
    const long it = it_++;
    auto& fr = rt_.flight();
    if (fr.enabled()) {
      fr.record(diag::EventKind::SolverIter, scope_name_, it, 0, residual);
      fr.progress();
    }
    guard_.observe(static_cast<int>(it), residual);
  }

  /// Stamp the final outcome; call once before returning the result.
  void finish(const SolveResult& res) {
    iters_.inc(static_cast<double>(res.iterations));
    residual_.set(res.residual);
    converged_.set(res.converged ? 1.0 : 0.0);
    time_to_tol_.set(rt_.sim_time() - t0_);
    // Fused fraction: of the original launches this solve issued (applied
    // after fusion + eliminated), how many were folded into fused launches.
    const double applied =
        static_cast<double>(rt_.launches_applied() - base_applied_);
    const double fused =
        static_cast<double>(rt_.fused_participants() - base_fused_);
    const double eliminated =
        static_cast<double>(rt_.fused_eliminated() - base_eliminated_);
    const double issued = applied + eliminated;
    fused_fraction_.set(issued > 0 ? fused / issued : 0.0);
  }

 private:
  rt::Runtime& rt_;
  rt::ProvenanceScope scope_;
  const char* scope_name_;
  diag::DivergenceGuard guard_;
  long it_{0};
  double t0_{0};
  long base_applied_{0}, base_fused_{0}, base_eliminated_{0};
  metrics::Counter solves_, iters_;
  metrics::Gauge residual_, converged_, time_to_tol_, part_nnz_, fused_fraction_;
  metrics::Histogram res_log10_;
};

}  // namespace

SolveResult cg(const sparse::CsrMatrix& A, const DArray& b, double tol, int maxiter,
               const Precond& M, const CheckpointPolicy& ckpt) {
  rt::Runtime& rt = A.runtime();
  Telemetry tel(rt, "cg");
  tel.matrix(A);
  coord_t n = A.rows();
  DArray x = DArray::zeros(rt, n);
  DArray r = b.copy();
  DArray z = M ? M(r) : r.copy();
  DArray p = z.copy();
  Scalar rz = r.dot(z);
  double bnorm = b.norm().value;
  if (bnorm == 0) bnorm = 1;

  SolveResult res;
  {
    double r0 = r.norm().value;
    if (r0 / bnorm < tol) {
      res.converged = true;
      res.residual = r0;
      res.x = x;
      tel.finish(res);
      return res;
    }
  }
  // {x, r, p} plus the rz recurrence and the iteration counter pin the
  // whole remaining solve (z is recomputed in-loop when preconditioned).
  std::optional<rt::Checkpoint> snap;
  int restores_left = kMaxRestores;
  auto roll_back = [&]() {
    --restores_left;
    (void)rt.consume_node_loss();  // the rollback handles any pending loss
    double t = rt.restore(*snap);
    rz = {snap->scalar("rz"), t};
    res.residual = snap->scalar("rnorm");
    return static_cast<int>(snap->scalar("it"));
  };
  int it = 0;
  while (it < maxiter) {
    if (ckpt.every > 0) {
      if (rt.consume_node_loss() || rt.store_poisoned(x.store()) ||
          rt.store_poisoned(r.store()) || rt.store_poisoned(p.store())) {
        if (!snap || restores_left <= 0) break;  // unrecoverable
        it = roll_back();
      }
      // Residual replacement (Recover): at the checkpoint cadence compare the
      // recursive residual against the true ‖b − Ax‖. Drift beyond rounding
      // means corruption escaped the checksum layers, so rewind to the last
      // snapshot instead of polishing tainted recurrences.
      if (rt.options().integrity == rt::Integrity::Recover && it > 0 &&
          it % ckpt.every == 0 && snap &&
          static_cast<int>(snap->scalar("it")) != it) {
        bool rr_ok = true;
        double tn = b.sub(checked_spmv(A, x, rr_ok)).norm().value;
        if (!rr_ok || std::fabs(tn - res.residual) >
                          kRrDriftRtol * std::max({tn, res.residual, tol * bnorm})) {
          if (restores_left <= 0) break;  // unrecoverable
          it = roll_back();
        }
      }
      if (it % ckpt.every == 0 &&
          (!snap || static_cast<int>(snap->scalar("it")) != it)) {
        rt::Checkpoint c = rt.checkpoint({x.store(), r.store(), p.store()});
        c.set_scalar("rz", rz.value);
        c.set_scalar("it", it);
        c.set_scalar("rnorm", res.residual);
        snap = std::move(c);
      }
    }
    bool abft_ok = true;
    DArray Ap = checked_spmv(A, p, abft_ok);
    if (!abft_ok) {
      // Recover with retries exhausted: fall back to the snapshot. Detect:
      // abort unconverged — the product is known corrupt.
      if (rt.options().integrity == rt::Integrity::Recover && ckpt.every > 0 &&
          snap && restores_left > 0) {
        it = roll_back();
        continue;
      }
      break;
    }
    Scalar pAp = p.dot(Ap);
    Scalar alpha = fdiv(rz, pAp);
    x.axpy(alpha, p);
    r.axpy(fneg(alpha), Ap);
    Scalar rnorm = r.norm();
    res.iterations = it + 1;
    res.residual = rnorm.value;
    tel.iteration(rnorm.value);
    if (rnorm.poisoned) {
      // Exhausted task retries mid-iteration: replay from the snapshot.
      if (ckpt.every > 0 && snap && restores_left > 0) {
        it = roll_back();
        continue;
      }
      break;  // unrecoverable
    }
    if (rnorm.value / bnorm < tol) {
      // A loss that spared r may still have taken pieces of x.
      if (rt.consume_node_loss() || rt.store_poisoned(x.store())) {
        if (ckpt.every > 0 && snap && restores_left > 0) {
          it = roll_back();
          continue;
        }
        break;  // unrecoverable: converged stays false
      }
      res.converged = true;
      break;
    }
    if (M) z = M(r);
    Scalar rz_new = M ? r.dot(z) : Scalar{rnorm.value * rnorm.value, rnorm.ready};
    Scalar beta = fdiv(rz_new, rz);
    if (M) {
      p.xpay(beta, z);  // p = z + beta p
    } else {
      p.xpay(beta, r);  // unpreconditioned: z == r
    }
    rz = rz_new;
    ++it;
  }
  res.x = x;
  tel.finish(res);
  return res;
}

SolveResult cgs(const sparse::CsrMatrix& A, const DArray& b, double tol, int maxiter) {
  rt::Runtime& rt = A.runtime();
  Telemetry tel(rt, "cgs");
  tel.matrix(A);
  coord_t n = A.rows();
  DArray x = DArray::zeros(rt, n);
  DArray r = b.copy();
  DArray rtilde = r.copy();
  DArray u = r.copy();
  DArray p = r.copy();
  Scalar rho = rtilde.dot(r);
  double bnorm = b.norm().value;
  if (bnorm == 0) bnorm = 1;

  SolveResult res;
  {
    double r0 = r.norm().value;
    if (r0 / bnorm < tol) {
      res.converged = true;
      res.residual = r0;
      res.x = x;
      tel.finish(res);
      return res;
    }
  }
  for (int it = 0; it < maxiter; ++it) {
    DArray Ap = A.spmv(p);
    Scalar sigma = rtilde.dot(Ap);
    Scalar alpha = fdiv(rho, sigma);
    DArray q = u.copy();
    q.axpy(fneg(alpha), Ap);  // q = u - alpha A p
    DArray uq = u.add(q);
    x.axpy(alpha, uq);
    DArray Auq = A.spmv(uq);
    r.axpy(fneg(alpha), Auq);
    Scalar rnorm = r.norm();
    res.iterations = it + 1;
    res.residual = rnorm.value;
    tel.iteration(rnorm.value);
    if (rnorm.value / bnorm < tol) {
      res.converged = true;
      break;
    }
    Scalar rho_new = rtilde.dot(r);
    Scalar beta = fdiv(rho_new, rho);
    u = r.copy();
    u.axpy(beta, q);  // u = r + beta q
    // p = u + beta (q + beta p)
    DArray tmp = q.copy();
    tmp.axpy(beta, p);
    p = u.copy();
    p.axpy(beta, tmp);
    rho = rho_new;
  }
  res.x = x;
  tel.finish(res);
  return res;
}

SolveResult bicg(const sparse::CsrMatrix& A, const DArray& b, double tol, int maxiter) {
  rt::Runtime& rt = A.runtime();
  Telemetry tel(rt, "bicg");
  tel.matrix(A);
  coord_t n = A.rows();
  sparse::CsrMatrix At = A.transpose();
  DArray x = DArray::zeros(rt, n);
  DArray r = b.copy();
  DArray rtilde = r.copy();
  DArray p = r.copy();
  DArray ptilde = r.copy();
  Scalar rho = rtilde.dot(r);
  double bnorm = b.norm().value;
  if (bnorm == 0) bnorm = 1;

  SolveResult res;
  {
    double r0 = r.norm().value;
    if (r0 / bnorm < tol) {
      res.converged = true;
      res.residual = r0;
      res.x = x;
      tel.finish(res);
      return res;
    }
  }
  for (int it = 0; it < maxiter; ++it) {
    DArray Ap = A.spmv(p);
    DArray Atp = At.spmv(ptilde);
    Scalar denom = ptilde.dot(Ap);
    Scalar alpha = fdiv(rho, denom);
    x.axpy(alpha, p);
    r.axpy(fneg(alpha), Ap);
    rtilde.axpy(fneg(alpha), Atp);
    Scalar rnorm = r.norm();
    res.iterations = it + 1;
    res.residual = rnorm.value;
    tel.iteration(rnorm.value);
    if (rnorm.value / bnorm < tol) {
      res.converged = true;
      break;
    }
    Scalar rho_new = rtilde.dot(r);
    Scalar beta = fdiv(rho_new, rho);
    p.xpay(beta, r);
    ptilde.xpay(beta, rtilde);
    rho = rho_new;
  }
  res.x = x;
  tel.finish(res);
  return res;
}

SolveResult bicgstab(const sparse::CsrMatrix& A, const DArray& b, double tol,
                     int maxiter) {
  rt::Runtime& rt = A.runtime();
  Telemetry tel(rt, "bicgstab");
  tel.matrix(A);
  coord_t n = A.rows();
  DArray x = DArray::zeros(rt, n);
  DArray r = b.copy();
  DArray rtilde = r.copy();
  DArray p = r.copy();
  Scalar rho = rtilde.dot(r);
  double bnorm = b.norm().value;
  if (bnorm == 0) bnorm = 1;

  SolveResult res;
  {
    double r0 = r.norm().value;
    if (r0 / bnorm < tol) {
      res.converged = true;
      res.residual = r0;
      res.x = x;
      tel.finish(res);
      return res;
    }
  }
  for (int it = 0; it < maxiter; ++it) {
    DArray v = A.spmv(p);
    Scalar denom = rtilde.dot(v);
    Scalar alpha = fdiv(rho, denom);
    DArray s = r.copy();
    s.axpy(fneg(alpha), v);
    Scalar snorm = s.norm();
    if (snorm.value / bnorm < tol) {
      x.axpy(alpha, p);
      res.iterations = it + 1;
      res.residual = snorm.value;
      tel.iteration(snorm.value);
      res.converged = true;
      break;
    }
    DArray t = A.spmv(s);
    Scalar ts = t.dot(s);
    Scalar tt = t.dot(t);
    Scalar omega = fdiv(ts, tt);
    x.axpy(alpha, p);
    x.axpy(omega, s);
    r = s;
    r.axpy(fneg(omega), t);
    Scalar rnorm = r.norm();
    res.iterations = it + 1;
    res.residual = rnorm.value;
    tel.iteration(rnorm.value);
    if (rnorm.value / bnorm < tol) {
      res.converged = true;
      break;
    }
    Scalar rho_new = rtilde.dot(r);
    Scalar beta = {rho_new.value / rho.value * alpha.value / omega.value,
                   std::max({rho_new.ready, alpha.ready, omega.ready}),
                   rho_new.poisoned || alpha.poisoned || omega.poisoned};
    // p = r + beta (p - omega v)
    p.axpy(fneg(omega), v);
    p.xpay(beta, r);
    rho = rho_new;
  }
  res.x = x;
  tel.finish(res);
  return res;
}

SolveResult gmres(const sparse::CsrMatrix& A, const DArray& b, int restart,
                  double tol, int maxiter, const CheckpointPolicy& ckpt) {
  rt::Runtime& rt = A.runtime();
  Telemetry tel(rt, "gmres");
  tel.matrix(A);
  coord_t n = A.rows();
  DArray x = DArray::zeros(rt, n);
  double bnorm = b.norm().value;
  if (bnorm == 0) bnorm = 1;

  SolveResult res;
  int total_iters = 0;
  const int m = restart;

  // Only `x` carries state across outer cycles; the Arnoldi basis is
  // rebuilt every cycle, so snapshots at cycle boundaries suffice. `b` is
  // immutable but part of every replay's read set — it goes into the
  // snapshot so a node loss that takes its only copy stays recoverable.
  std::optional<rt::Checkpoint> snap;
  int restores_left = kMaxRestores;
  auto roll_back = [&]() {
    --restores_left;
    (void)rt.consume_node_loss();  // the rollback handles any pending loss
    rt.restore(*snap);
    return static_cast<int>(snap->scalar("iters"));
  };

  while (total_iters < maxiter) {
    if (ckpt.every > 0) {
      if (rt.consume_node_loss() || rt.store_poisoned(x.store())) {
        if (!snap || restores_left <= 0) break;  // unrecoverable
        total_iters = roll_back();
      }
      if (!snap ||
          total_iters - static_cast<int>(snap->scalar("iters")) >= ckpt.every) {
        rt::Checkpoint c = rt.checkpoint({x.store(), b.store()});
        c.set_scalar("iters", total_iters);
        snap = std::move(c);
      }
    }
    bool abft_ok = true;
    DArray r = b.sub(checked_spmv(A, x, abft_ok));
    Scalar rn = r.norm();
    if (rn.poisoned || !abft_ok) {
      if (ckpt.every > 0 && snap && restores_left > 0) {
        total_iters = roll_back();
        continue;
      }
      res.residual = rn.value;
      break;  // unrecoverable
    }
    double beta = rn.value;
    res.residual = beta;
    if (beta / bnorm < tol) {
      res.converged = true;
      break;
    }
    // Arnoldi basis (distributed vectors) + host-side Hessenberg/Givens.
    std::vector<DArray> V;
    V.push_back(r.scale(1.0 / beta));
    std::vector<double> H(static_cast<std::size_t>((m + 1) * m), 0.0);
    std::vector<double> cs(static_cast<std::size_t>(m), 0.0),
        sn(static_cast<std::size_t>(m), 0.0),
        g(static_cast<std::size_t>(m) + 1, 0.0);
    g[0] = beta;
    int k = 0;
    for (; k < m && total_iters < maxiter; ++k, ++total_iters) {
      DArray w = checked_spmv(A, V[static_cast<std::size_t>(k)], abft_ok);
      if (!abft_ok) break;  // corrupted Arnoldi vector: handled below
      for (int i = 0; i <= k; ++i) {
        Scalar h = w.dot(V[static_cast<std::size_t>(i)]);
        H[static_cast<std::size_t>(i * m + k)] = h.value;
        w.axpy(fneg(h), V[static_cast<std::size_t>(i)]);
      }
      double hk1 = w.norm().value;
      if (hk1 > 0) V.push_back(w.scale(1.0 / hk1));
      // Apply accumulated Givens rotations to the new column.
      double hik;
      for (int i = 0; i < k; ++i) {
        hik = H[static_cast<std::size_t>(i * m + k)];
        double hik1 = H[static_cast<std::size_t>((i + 1) * m + k)];
        H[static_cast<std::size_t>(i * m + k)] =
            cs[static_cast<std::size_t>(i)] * hik + sn[static_cast<std::size_t>(i)] * hik1;
        H[static_cast<std::size_t>((i + 1) * m + k)] =
            -sn[static_cast<std::size_t>(i)] * hik + cs[static_cast<std::size_t>(i)] * hik1;
      }
      double hkk = H[static_cast<std::size_t>(k * m + k)];
      double denom = std::sqrt(hkk * hkk + hk1 * hk1);
      if (denom == 0) denom = 1e-300;
      cs[static_cast<std::size_t>(k)] = hkk / denom;
      sn[static_cast<std::size_t>(k)] = hk1 / denom;
      H[static_cast<std::size_t>(k * m + k)] = denom;
      g[static_cast<std::size_t>(k) + 1] = -sn[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k)];
      g[static_cast<std::size_t>(k)] = cs[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k)];
      res.residual = std::fabs(g[static_cast<std::size_t>(k) + 1]);
      tel.iteration(res.residual);
      if (res.residual / bnorm < tol || hk1 == 0) {
        ++k;
        break;
      }
    }
    if (!abft_ok) {
      // A checksum violation inside the cycle taints the whole Krylov basis:
      // never fold it into x. Rewind to the last cycle-boundary snapshot.
      if (ckpt.every > 0 && snap && restores_left > 0) {
        total_iters = roll_back();
        continue;
      }
      break;  // unrecoverable: converged stays false
    }
    // Back-substitute y and update x += V y.
    std::vector<double> y(static_cast<std::size_t>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
      double sum = g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j)
        sum -= H[static_cast<std::size_t>(i * m + j)] * y[static_cast<std::size_t>(j)];
      y[static_cast<std::size_t>(i)] = sum / H[static_cast<std::size_t>(i * m + i)];
    }
    for (int i = 0; i < k; ++i)
      x.axpy(y[static_cast<std::size_t>(i)], V[static_cast<std::size_t>(i)]);
    res.iterations = total_iters;
    if (res.residual / bnorm < tol) {
      // Recompute the true residual before declaring victory. The Hessenberg
      // recurrence runs on host scalars, so a node loss mid-cycle surfaces
      // only here — as poison on the recomputed residual or on x itself.
      Scalar true_res = b.sub(checked_spmv(A, x, abft_ok)).norm();
      if (true_res.poisoned || !abft_ok || rt.consume_node_loss() ||
          rt.store_poisoned(x.store())) {
        if (ckpt.every > 0 && snap && restores_left > 0) {
          total_iters = roll_back();
          continue;
        }
        res.residual = true_res.value;
        break;  // unrecoverable: converged stays false
      }
      res.residual = true_res.value;
      if (true_res.value / bnorm < tol * 10) {
        res.converged = true;
        break;
      }
      // Under Recover, a Givens estimate that met tol while the true residual
      // did not means corruption slipped past the checksum layers mid-cycle:
      // rewind rather than polish a tainted x.
      if (rt.options().integrity == rt::Integrity::Recover && ckpt.every > 0 &&
          snap && restores_left > 0) {
        total_iters = roll_back();
        continue;
      }
    }
  }
  res.iterations = total_iters;
  res.x = x;
  tel.finish(res);
  return res;
}

EigenResult power_iteration(const sparse::CsrMatrix& A, int iters, std::uint64_t seed) {
  rt::Runtime& rt = A.runtime();
  DArray x = DArray::random(rt, A.rows(), seed);
  for (int i = 0; i < iters; ++i) {
    x = A.spmv(x);
    Scalar nrm = x.norm();
    x.iscale({1.0 / nrm.value, nrm.ready, nrm.poisoned});
  }
  EigenResult r;
  r.iterations = iters;
  r.eigenvalue = x.dot(A.spmv(x)).value;
  r.eigenvector = x;
  return r;
}

}  // namespace legate::solve
