#include "solve/krylov.h"

#include <cmath>
#include <vector>

namespace legate::solve {

using dense::DArray;
using dense::Scalar;

namespace {

/// Combine two scalar futures; the result is ready when both inputs are.
Scalar fdiv(Scalar a, Scalar b) { return {a.value / b.value, std::max(a.ready, b.ready)}; }
Scalar fneg(Scalar a) { return {-a.value, a.ready}; }

}  // namespace

SolveResult cg(const sparse::CsrMatrix& A, const DArray& b, double tol, int maxiter,
               const Precond& M) {
  rt::Runtime& rt = A.runtime();
  coord_t n = A.rows();
  DArray x = DArray::zeros(rt, n);
  DArray r = b.copy();
  DArray z = M ? M(r) : r.copy();
  DArray p = z.copy();
  Scalar rz = r.dot(z);
  double bnorm = b.norm().value;
  if (bnorm == 0) bnorm = 1;

  SolveResult res;
  {
    double r0 = r.norm().value;
    if (r0 / bnorm < tol) {
      res.converged = true;
      res.residual = r0;
      res.x = x;
      return res;
    }
  }
  for (int it = 0; it < maxiter; ++it) {
    DArray Ap = A.spmv(p);
    Scalar pAp = p.dot(Ap);
    Scalar alpha = fdiv(rz, pAp);
    x.axpy(alpha, p);
    r.axpy(fneg(alpha), Ap);
    Scalar rnorm = r.norm();
    res.iterations = it + 1;
    res.residual = rnorm.value;
    if (rnorm.value / bnorm < tol) {
      res.converged = true;
      break;
    }
    if (M) z = M(r);
    Scalar rz_new = M ? r.dot(z) : Scalar{rnorm.value * rnorm.value, rnorm.ready};
    Scalar beta = fdiv(rz_new, rz);
    if (M) {
      p.xpay(beta, z);  // p = z + beta p
    } else {
      p.xpay(beta, r);  // unpreconditioned: z == r
    }
    rz = rz_new;
  }
  res.x = x;
  return res;
}

SolveResult cgs(const sparse::CsrMatrix& A, const DArray& b, double tol, int maxiter) {
  rt::Runtime& rt = A.runtime();
  coord_t n = A.rows();
  DArray x = DArray::zeros(rt, n);
  DArray r = b.copy();
  DArray rtilde = r.copy();
  DArray u = r.copy();
  DArray p = r.copy();
  Scalar rho = rtilde.dot(r);
  double bnorm = b.norm().value;
  if (bnorm == 0) bnorm = 1;

  SolveResult res;
  {
    double r0 = r.norm().value;
    if (r0 / bnorm < tol) {
      res.converged = true;
      res.residual = r0;
      res.x = x;
      return res;
    }
  }
  for (int it = 0; it < maxiter; ++it) {
    DArray Ap = A.spmv(p);
    Scalar sigma = rtilde.dot(Ap);
    Scalar alpha = fdiv(rho, sigma);
    DArray q = u.copy();
    q.axpy(fneg(alpha), Ap);  // q = u - alpha A p
    DArray uq = u.add(q);
    x.axpy(alpha, uq);
    DArray Auq = A.spmv(uq);
    r.axpy(fneg(alpha), Auq);
    Scalar rnorm = r.norm();
    res.iterations = it + 1;
    res.residual = rnorm.value;
    if (rnorm.value / bnorm < tol) {
      res.converged = true;
      break;
    }
    Scalar rho_new = rtilde.dot(r);
    Scalar beta = fdiv(rho_new, rho);
    u = r.copy();
    u.axpy(beta, q);  // u = r + beta q
    // p = u + beta (q + beta p)
    DArray tmp = q.copy();
    tmp.axpy(beta, p);
    p = u.copy();
    p.axpy(beta, tmp);
    rho = rho_new;
  }
  res.x = x;
  return res;
}

SolveResult bicg(const sparse::CsrMatrix& A, const DArray& b, double tol, int maxiter) {
  rt::Runtime& rt = A.runtime();
  coord_t n = A.rows();
  sparse::CsrMatrix At = A.transpose();
  DArray x = DArray::zeros(rt, n);
  DArray r = b.copy();
  DArray rtilde = r.copy();
  DArray p = r.copy();
  DArray ptilde = r.copy();
  Scalar rho = rtilde.dot(r);
  double bnorm = b.norm().value;
  if (bnorm == 0) bnorm = 1;

  SolveResult res;
  {
    double r0 = r.norm().value;
    if (r0 / bnorm < tol) {
      res.converged = true;
      res.residual = r0;
      res.x = x;
      return res;
    }
  }
  for (int it = 0; it < maxiter; ++it) {
    DArray Ap = A.spmv(p);
    DArray Atp = At.spmv(ptilde);
    Scalar denom = ptilde.dot(Ap);
    Scalar alpha = fdiv(rho, denom);
    x.axpy(alpha, p);
    r.axpy(fneg(alpha), Ap);
    rtilde.axpy(fneg(alpha), Atp);
    Scalar rnorm = r.norm();
    res.iterations = it + 1;
    res.residual = rnorm.value;
    if (rnorm.value / bnorm < tol) {
      res.converged = true;
      break;
    }
    Scalar rho_new = rtilde.dot(r);
    Scalar beta = fdiv(rho_new, rho);
    p.xpay(beta, r);
    ptilde.xpay(beta, rtilde);
    rho = rho_new;
  }
  res.x = x;
  return res;
}

SolveResult bicgstab(const sparse::CsrMatrix& A, const DArray& b, double tol,
                     int maxiter) {
  rt::Runtime& rt = A.runtime();
  coord_t n = A.rows();
  DArray x = DArray::zeros(rt, n);
  DArray r = b.copy();
  DArray rtilde = r.copy();
  DArray p = r.copy();
  Scalar rho = rtilde.dot(r);
  double bnorm = b.norm().value;
  if (bnorm == 0) bnorm = 1;

  SolveResult res;
  {
    double r0 = r.norm().value;
    if (r0 / bnorm < tol) {
      res.converged = true;
      res.residual = r0;
      res.x = x;
      return res;
    }
  }
  for (int it = 0; it < maxiter; ++it) {
    DArray v = A.spmv(p);
    Scalar denom = rtilde.dot(v);
    Scalar alpha = fdiv(rho, denom);
    DArray s = r.copy();
    s.axpy(fneg(alpha), v);
    Scalar snorm = s.norm();
    if (snorm.value / bnorm < tol) {
      x.axpy(alpha, p);
      res.iterations = it + 1;
      res.residual = snorm.value;
      res.converged = true;
      break;
    }
    DArray t = A.spmv(s);
    Scalar ts = t.dot(s);
    Scalar tt = t.dot(t);
    Scalar omega = fdiv(ts, tt);
    x.axpy(alpha, p);
    x.axpy(omega, s);
    r = s;
    r.axpy(fneg(omega), t);
    Scalar rnorm = r.norm();
    res.iterations = it + 1;
    res.residual = rnorm.value;
    if (rnorm.value / bnorm < tol) {
      res.converged = true;
      break;
    }
    Scalar rho_new = rtilde.dot(r);
    Scalar beta = {rho_new.value / rho.value * alpha.value / omega.value,
                   std::max({rho_new.ready, alpha.ready, omega.ready})};
    // p = r + beta (p - omega v)
    p.axpy(fneg(omega), v);
    p.xpay(beta, r);
    rho = rho_new;
  }
  res.x = x;
  return res;
}

SolveResult gmres(const sparse::CsrMatrix& A, const DArray& b, int restart,
                  double tol, int maxiter) {
  rt::Runtime& rt = A.runtime();
  coord_t n = A.rows();
  DArray x = DArray::zeros(rt, n);
  double bnorm = b.norm().value;
  if (bnorm == 0) bnorm = 1;

  SolveResult res;
  int total_iters = 0;
  const int m = restart;

  while (total_iters < maxiter) {
    DArray r = b.sub(A.spmv(x));
    double beta = r.norm().value;
    res.residual = beta;
    if (beta / bnorm < tol) {
      res.converged = true;
      break;
    }
    // Arnoldi basis (distributed vectors) + host-side Hessenberg/Givens.
    std::vector<DArray> V;
    V.push_back(r.scale(1.0 / beta));
    std::vector<double> H(static_cast<std::size_t>((m + 1) * m), 0.0);
    std::vector<double> cs(static_cast<std::size_t>(m), 0.0),
        sn(static_cast<std::size_t>(m), 0.0),
        g(static_cast<std::size_t>(m) + 1, 0.0);
    g[0] = beta;
    int k = 0;
    for (; k < m && total_iters < maxiter; ++k, ++total_iters) {
      DArray w = A.spmv(V[static_cast<std::size_t>(k)]);
      for (int i = 0; i <= k; ++i) {
        Scalar h = w.dot(V[static_cast<std::size_t>(i)]);
        H[static_cast<std::size_t>(i * m + k)] = h.value;
        w.axpy(fneg(h), V[static_cast<std::size_t>(i)]);
      }
      double hk1 = w.norm().value;
      if (hk1 > 0) V.push_back(w.scale(1.0 / hk1));
      // Apply accumulated Givens rotations to the new column.
      double hik;
      for (int i = 0; i < k; ++i) {
        hik = H[static_cast<std::size_t>(i * m + k)];
        double hik1 = H[static_cast<std::size_t>((i + 1) * m + k)];
        H[static_cast<std::size_t>(i * m + k)] =
            cs[static_cast<std::size_t>(i)] * hik + sn[static_cast<std::size_t>(i)] * hik1;
        H[static_cast<std::size_t>((i + 1) * m + k)] =
            -sn[static_cast<std::size_t>(i)] * hik + cs[static_cast<std::size_t>(i)] * hik1;
      }
      double hkk = H[static_cast<std::size_t>(k * m + k)];
      double denom = std::sqrt(hkk * hkk + hk1 * hk1);
      if (denom == 0) denom = 1e-300;
      cs[static_cast<std::size_t>(k)] = hkk / denom;
      sn[static_cast<std::size_t>(k)] = hk1 / denom;
      H[static_cast<std::size_t>(k * m + k)] = denom;
      g[static_cast<std::size_t>(k) + 1] = -sn[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k)];
      g[static_cast<std::size_t>(k)] = cs[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k)];
      res.residual = std::fabs(g[static_cast<std::size_t>(k) + 1]);
      if (res.residual / bnorm < tol || hk1 == 0) {
        ++k;
        break;
      }
    }
    // Back-substitute y and update x += V y.
    std::vector<double> y(static_cast<std::size_t>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
      double sum = g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j)
        sum -= H[static_cast<std::size_t>(i * m + j)] * y[static_cast<std::size_t>(j)];
      y[static_cast<std::size_t>(i)] = sum / H[static_cast<std::size_t>(i * m + i)];
    }
    for (int i = 0; i < k; ++i)
      x.axpy(y[static_cast<std::size_t>(i)], V[static_cast<std::size_t>(i)]);
    res.iterations = total_iters;
    if (res.residual / bnorm < tol) {
      // Recompute the true residual before declaring victory.
      double true_res = b.sub(A.spmv(x)).norm().value;
      res.residual = true_res;
      if (true_res / bnorm < tol * 10) {
        res.converged = true;
        break;
      }
    }
  }
  res.iterations = total_iters;
  res.x = x;
  return res;
}

EigenResult power_iteration(const sparse::CsrMatrix& A, int iters, std::uint64_t seed) {
  rt::Runtime& rt = A.runtime();
  DArray x = DArray::random(rt, A.rows(), seed);
  for (int i = 0; i < iters; ++i) {
    x = A.spmv(x);
    Scalar nrm = x.norm();
    x.iscale({1.0 / nrm.value, nrm.ready});
  }
  EigenResult r;
  r.iterations = iters;
  r.eigenvalue = x.dot(A.spmv(x)).value;
  r.eigenvector = x;
  return r;
}

}  // namespace legate::solve
