#pragma once

#include <vector>

#include "solve/krylov.h"

namespace legate::solve {

/// Extreme eigenvalues of a symmetric matrix by the Lanczos process with
/// full reorthogonalization (the scipy.sparse.linalg.eigsh work-horse for
/// small Krylov dimensions). Distributed vectors; the tridiagonal
/// eigenproblem is solved on the host by bisection + inverse iteration on
/// the Sturm sequence (dimension = iterations, tiny).
struct LanczosResult {
  std::vector<double> eigenvalues;  ///< all Ritz values, ascending; with
                                    ///< max_iter >> k the first/last k are
                                    ///< converged extreme eigenvalues
  int iterations{0};
};

LanczosResult lanczos(const sparse::CsrMatrix& A, int k, int max_iter = 80,
                      std::uint64_t seed = 1);

}  // namespace legate::solve
