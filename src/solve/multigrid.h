#pragma once

#include "solve/krylov.h"
#include "sparse/csr.h"

namespace legate::solve {

/// Two-level geometric multigrid V-cycle used as a CG preconditioner —
/// the paper's GMG benchmark (Fig. 10): injection restriction operator and
/// weighted-Jacobi smoother, ~"300 lines of Python" ported here.
///
/// The V-cycle launches many small tasks (smoother sweeps on the coarse
/// grid), which is precisely the workload that exposes Legate's task-launch
/// overheads in the paper's single-GPU comparison with CuPy.
class TwoLevelGmg {
 public:
  /// A: fine operator; R: restriction (coarse x fine). The prolongation is
  /// Rᵀ scaled by `prolong_scale`, and the coarse operator is Ac = R A P.
  TwoLevelGmg(const sparse::CsrMatrix& A, const sparse::CsrMatrix& R,
              double omega = 2.0 / 3.0, int pre_sweeps = 2, int post_sweeps = 2,
              int coarse_sweeps = 16, double prolong_scale = 1.0);

  /// Apply one V-cycle to r, returning an approximate A⁻¹ r.
  [[nodiscard]] dense::DArray apply(const dense::DArray& r) const;

  /// Use as a preconditioner.
  [[nodiscard]] Precond preconditioner() const {
    return [this](const dense::DArray& r) { return apply(r); };
  }

  [[nodiscard]] const sparse::CsrMatrix& coarse_operator() const { return Ac_; }

  /// Injection restriction for a 1-D grid of n points (keeps even points).
  static sparse::CsrMatrix injection_1d(rt::Runtime& rt, coord_t n);
  /// Injection restriction for an n x n 2-D grid (keeps even/even points).
  static sparse::CsrMatrix injection_2d(rt::Runtime& rt, coord_t n);

 private:
  void jacobi_sweeps(const sparse::CsrMatrix& A, const dense::DArray& dinv,
                     dense::DArray& x, const dense::DArray& b, int sweeps) const;

  sparse::CsrMatrix A_, R_, P_, Ac_;
  dense::DArray dinv_fine_, dinv_coarse_;
  double omega_;
  int pre_, post_, coarse_sweeps_;
};

}  // namespace legate::solve
