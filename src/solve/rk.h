#pragma once

#include <functional>
#include <vector>

#include "dense/array.h"

namespace legate::solve {

/// Right-hand side of dy/dt = f(t, y).
using OdeRhs = std::function<dense::DArray(double, const dense::DArray&)>;

/// Explicit Runge-Kutta Butcher tableau.
struct ButcherTableau {
  int stages{0};
  std::vector<double> a;  ///< stages x stages, lower triangular, row-major
  std::vector<double> b;  ///< stage weights
  std::vector<double> c;  ///< stage times

  [[nodiscard]] double at(int i, int j) const {
    return a[static_cast<std::size_t>(i * stages + j)];
  }

  static const ButcherTableau& rk4();
  /// Cooper-Verner 11-stage 8th-order method — the integrator class used by
  /// the paper's quantum simulation ("8th-order Runge-Kutta", Section 6.1).
  static const ButcherTableau& rk8();
};

struct OdeResult {
  dense::DArray y;
  int steps{0};
  int rhs_evaluations{0};
};

/// Fixed-step explicit RK integration from t0 to t1 in `steps` steps.
OdeResult integrate(const ButcherTableau& tab, const OdeRhs& f,
                    const dense::DArray& y0, double t0, double t1, int steps);

/// Adaptive Dormand-Prince RK45 (SciPy's solve_ivp default).
OdeResult rk45(const OdeRhs& f, const dense::DArray& y0, double t0, double t1,
               double rtol = 1e-6, double atol = 1e-9,
               double initial_step = 1e-3);

}  // namespace legate::solve
