#include "solve/multigrid.h"

namespace legate::solve {

using dense::DArray;
using sparse::CsrMatrix;

namespace {

/// Element-wise reciprocal of the operator diagonal (zero-safe).
DArray reciprocal_diag(const CsrMatrix& A) {
  DArray d = A.diagonal();
  rt::Runtime& rt = A.runtime();
  rt::Store out = rt.create_store(rt::DType::F64, {d.size()});
  rt::TaskLauncher launch(rt, "recip_diag");
  int ia = launch.add_input(d.store());
  int io = launch.add_output(out);
  launch.align(ia, io);
  launch.set_leaf([=](rt::TaskContext& ctx) {
    auto x = ctx.full<double>(ia);
    auto y = ctx.full<double>(io);
    Interval iv = ctx.elem_interval(io);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = x[i] != 0.0 ? 1.0 / x[i] : 0.0;
    ctx.add_cost(static_cast<double>(iv.size()) * 16.0,
                 static_cast<double>(iv.size()));
  });
  launch.execute();
  return DArray(rt, out);
}

}  // namespace

TwoLevelGmg::TwoLevelGmg(const CsrMatrix& A, const CsrMatrix& R, double omega,
                         int pre_sweeps, int post_sweeps, int coarse_sweeps,
                         double prolong_scale)
    : A_(A),
      R_(R),
      P_(R.transpose().scale(prolong_scale)),
      Ac_(R.spgemm(A).spgemm(P_)),
      omega_(omega),
      pre_(pre_sweeps),
      post_(post_sweeps),
      coarse_sweeps_(coarse_sweeps) {
  dinv_fine_ = reciprocal_diag(A_);
  dinv_coarse_ = reciprocal_diag(Ac_);
}

void TwoLevelGmg::jacobi_sweeps(const CsrMatrix& A, const DArray& dinv, DArray& x,
                                const DArray& b, int sweeps) const {
  for (int s = 0; s < sweeps; ++s) {
    // x += omega * Dinv (b - A x)
    DArray r = b.sub(A.spmv(x));
    DArray corr = r.mul(dinv);
    x.axpy(omega_, corr);
  }
}

DArray TwoLevelGmg::apply(const DArray& r) const {
  rt::Runtime& rt = A_.runtime();
  rt::ProvenanceScope prof_scope(rt, "gmg-vcycle");
  DArray x = DArray::zeros(rt, r.size());
  jacobi_sweeps(A_, dinv_fine_, x, r, pre_);
  // Coarse-grid correction.
  DArray resid = r.sub(A_.spmv(x));
  DArray rc = R_.spmv(resid);
  DArray ec = DArray::zeros(rt, rc.size());
  jacobi_sweeps(Ac_, dinv_coarse_, ec, rc, coarse_sweeps_);
  x.iadd(P_.spmv(ec));
  jacobi_sweeps(A_, dinv_fine_, x, r, post_);
  return x;
}

CsrMatrix TwoLevelGmg::injection_1d(rt::Runtime& rt, coord_t n) {
  coord_t nc = n / 2;
  std::vector<coord_t> indptr, indices;
  std::vector<double> values;
  indptr.push_back(0);
  for (coord_t i = 0; i < nc; ++i) {
    indices.push_back(2 * i);
    values.push_back(1.0);
    indptr.push_back(static_cast<coord_t>(indices.size()));
  }
  return CsrMatrix::from_host(rt, nc, n, indptr, indices, values);
}

CsrMatrix TwoLevelGmg::injection_2d(rt::Runtime& rt, coord_t n) {
  coord_t nc = n / 2;
  std::vector<coord_t> indptr, indices;
  std::vector<double> values;
  indptr.push_back(0);
  for (coord_t ic = 0; ic < nc; ++ic) {
    for (coord_t jc = 0; jc < nc; ++jc) {
      indices.push_back((2 * ic) * n + (2 * jc));
      values.push_back(1.0);
      indptr.push_back(static_cast<coord_t>(indices.size()));
    }
  }
  return CsrMatrix::from_host(rt, nc * nc, n * n, indptr, indices, values);
}

}  // namespace legate::solve
