#pragma once

#include <functional>

#include "dense/array.h"
#include "sparse/csr.h"

namespace legate::solve {

/// Result of an iterative solve.
struct SolveResult {
  dense::DArray x;
  int iterations{0};
  double residual{0};  ///< final ‖b − Ax‖₂
  bool converged{false};
};

/// Optional preconditioner: z = M⁻¹ r.
using Precond = std::function<dense::DArray(const dense::DArray&)>;

/// Conjugate gradient for SPD systems — the Fig. 9 benchmark kernel. Ported
/// from the SciPy implementation: every operation is a dense-library or
/// sparse-library call, so futures (dot products) chain through the task
/// graph exactly as in Legate.
SolveResult cg(const sparse::CsrMatrix& A, const dense::DArray& b,
               double tol = 1e-8, int maxiter = 1000, const Precond& M = nullptr);

/// Conjugate gradient squared.
SolveResult cgs(const sparse::CsrMatrix& A, const dense::DArray& b,
                double tol = 1e-8, int maxiter = 1000);

/// Bi-conjugate gradient (uses Aᵀ, materialized once at entry).
SolveResult bicg(const sparse::CsrMatrix& A, const dense::DArray& b,
                 double tol = 1e-8, int maxiter = 1000);

/// Stabilized bi-conjugate gradient.
SolveResult bicgstab(const sparse::CsrMatrix& A, const dense::DArray& b,
                     double tol = 1e-8, int maxiter = 1000);

/// Restarted GMRES(m) for general systems.
SolveResult gmres(const sparse::CsrMatrix& A, const dense::DArray& b,
                  int restart = 30, double tol = 1e-8, int maxiter = 1000);

/// Largest-magnitude eigenvalue estimate by power iteration with a Rayleigh
/// quotient — the paper's Fig. 1 example program.
struct EigenResult {
  double eigenvalue{0};
  dense::DArray eigenvector;
  int iterations{0};
};
EigenResult power_iteration(const sparse::CsrMatrix& A, int iters,
                            std::uint64_t seed = 1);

}  // namespace legate::solve
