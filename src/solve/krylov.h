#pragma once

#include <functional>

#include "dense/array.h"
#include "sparse/csr.h"

namespace legate::solve {

/// Result of an iterative solve.
struct SolveResult {
  dense::DArray x;
  int iterations{0};
  double residual{0};  ///< final ‖b − Ax‖₂
  bool converged{false};
};

/// Optional preconditioner: z = M⁻¹ r.
using Precond = std::function<dense::DArray(const dense::DArray&)>;

/// Checkpoint/restart policy for iterative solvers: snapshot the recurrence
/// state every `every` iterations (0 disables checkpointing). When fault
/// injection reports a node loss — or a poisoned residual from exhausted
/// task retries — the solver restores the last snapshot and replays from
/// there. Replay is deterministic, so the recovered solve converges to the
/// bit-exact fault-free answer with the same iteration count; only simulated
/// time (checkpoint I/O, the outage, re-executed iterations) changes.
/// A fault before the first snapshot, or more faults than the solver's
/// restore budget, aborts the solve with converged=false.
struct CheckpointPolicy {
  int every{0};
};

/// Conjugate gradient for SPD systems — the Fig. 9 benchmark kernel. Ported
/// from the SciPy implementation: every operation is a dense-library or
/// sparse-library call, so futures (dot products) chain through the task
/// graph exactly as in Legate.
SolveResult cg(const sparse::CsrMatrix& A, const dense::DArray& b,
               double tol = 1e-8, int maxiter = 1000, const Precond& M = nullptr,
               const CheckpointPolicy& ckpt = {});

/// Conjugate gradient squared.
SolveResult cgs(const sparse::CsrMatrix& A, const dense::DArray& b,
                double tol = 1e-8, int maxiter = 1000);

/// Bi-conjugate gradient (uses Aᵀ, materialized once at entry).
SolveResult bicg(const sparse::CsrMatrix& A, const dense::DArray& b,
                 double tol = 1e-8, int maxiter = 1000);

/// Stabilized bi-conjugate gradient.
SolveResult bicgstab(const sparse::CsrMatrix& A, const dense::DArray& b,
                     double tol = 1e-8, int maxiter = 1000);

/// Restarted GMRES(m) for general systems. Checkpoints snapshot `x` at
/// outer-cycle boundaries once `ckpt.every` iterations have accumulated.
SolveResult gmres(const sparse::CsrMatrix& A, const dense::DArray& b,
                  int restart = 30, double tol = 1e-8, int maxiter = 1000,
                  const CheckpointPolicy& ckpt = {});

/// Largest-magnitude eigenvalue estimate by power iteration with a Rayleigh
/// quotient — the paper's Fig. 1 example program.
struct EigenResult {
  double eigenvalue{0};
  dense::DArray eigenvector;
  int iterations{0};
};
EigenResult power_iteration(const sparse::CsrMatrix& A, int iters,
                            std::uint64_t seed = 1);

}  // namespace legate::solve
