#pragma once

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace legate::apps {

/// Host-side CSR triple shared by every system under test (Legate runtime,
/// PETSc baseline, SciPy/CuPy baseline), so all systems solve bit-identical
/// problems.
struct HostProblem {
  coord_t rows{0}, cols{0};
  std::vector<coord_t> indptr, indices;
  std::vector<double> values;
  [[nodiscard]] coord_t nnz() const { return static_cast<coord_t>(values.size()); }
};

/// Banded SPD matrix for the SpMV microbenchmark (Fig. 8).
HostProblem banded_matrix(coord_t n, coord_t half_bandwidth, double value = 1.0);

/// 5-point 2-D Poisson operator on a grid x grid domain (Figs. 9 & 10).
HostProblem poisson2d(coord_t grid);

/// Zipf-skewed square matrix for the partition-strategy sweep: row i carries
/// a share of the ~n*avg_nnz_per_row nonzeros proportional to (i+1)^-s
/// (s ~ 1 gives a heavy power-law head), with at least one entry per row and
/// evenly spaced column coordinates. Equal row splits of this matrix put
/// nearly all the work on color 0; the nnz-balanced strategy exists for it.
HostProblem zipf_matrix(coord_t n, double s, coord_t avg_nnz_per_row,
                        std::uint64_t seed);

/// Rydberg-atom chain Hamiltonian for the quantum benchmark (Fig. 11).
///
/// States are the independent sets of an `atoms`-site path graph (nearest-
/// neighbour blockade), so dim = Fibonacci(atoms+2). The Hamiltonian has
/// Rabi off-diagonal terms (σx flips between adjacent excitation manifolds)
/// and a diagonal detuning term. Returned as the real 2dim x 2dim block
/// system [[0, H], [-H, 0]] so that dψ/dt = -iHψ becomes y' = B y for
/// y = (Re ψ, Im ψ) — integrable with real RK kernels.
///
/// The flip terms connect states whose indices are far apart — the wide
/// matrix bandwidth that drives the near-all-to-all communication the paper
/// reports for this benchmark.
struct RydbergSystem {
  HostProblem hamiltonian;  ///< the 2dim x 2dim real block system
  coord_t dim{0};           ///< number of blockade-allowed basis states
  int atoms{0};
  coord_t ground_state{0};  ///< index of |00...0>
};
RydbergSystem rydberg_chain(int atoms, double omega = 1.0, double delta = 0.5);

/// Number of blockade-allowed states of an n-atom chain (Fibonacci(n+2)).
coord_t rydberg_dim(int atoms);

/// Synthetic MovieLens-like ratings (Fig. 12): Zipf-distributed item
/// popularity, users with geometric-ish activity, ratings in {0.5..5.0}.
/// Stored as user-major CSR (users x items).
struct RatingsDataset {
  coord_t users{0}, items{0};
  std::vector<coord_t> indptr, indices;
  std::vector<double> ratings;
  [[nodiscard]] coord_t nnz() const { return static_cast<coord_t>(ratings.size()); }
};
RatingsDataset synthetic_movielens(coord_t users, coord_t items, coord_t nnz,
                                   std::uint64_t seed);

/// The dataset profiles used in Fig. 12 (50M/100M are fractal expansions of
/// the real datasets' shapes). `scale` shrinks the generated nnz while
/// keeping the shape, so functional runs stay fast; the capacity model uses
/// the full-size byte counts.
struct MovieLensProfile {
  const char* name;
  coord_t users, items, nnz;
};
const std::vector<MovieLensProfile>& movielens_profiles();

}  // namespace legate::apps
