#include "apps/workloads.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/rng.h"

namespace legate::apps {

HostProblem banded_matrix(coord_t n, coord_t half_bandwidth, double value) {
  HostProblem p;
  p.rows = p.cols = n;
  p.indptr.reserve(static_cast<std::size_t>(n) + 1);
  p.indptr.push_back(0);
  for (coord_t i = 0; i < n; ++i) {
    coord_t lo = std::max<coord_t>(0, i - half_bandwidth);
    coord_t hi = std::min<coord_t>(n - 1, i + half_bandwidth);
    for (coord_t j = lo; j <= hi; ++j) {
      p.indices.push_back(j);
      // Strong diagonal keeps the matrix SPD for solver use.
      p.values.push_back(i == j ? 2.0 * static_cast<double>(half_bandwidth) + 1.0
                                : value);
    }
    p.indptr.push_back(static_cast<coord_t>(p.indices.size()));
  }
  return p;
}

HostProblem poisson2d(coord_t grid) {
  HostProblem p;
  coord_t n = grid * grid;
  p.rows = p.cols = n;
  p.indptr.reserve(static_cast<std::size_t>(n) + 1);
  p.indptr.push_back(0);
  for (coord_t i = 0; i < grid; ++i) {
    for (coord_t j = 0; j < grid; ++j) {
      coord_t row = i * grid + j;
      auto emit = [&](coord_t r, coord_t c, double v) {
        (void)r;
        p.indices.push_back(c);
        p.values.push_back(v);
      };
      if (i > 0) emit(row, row - grid, -1.0);
      if (j > 0) emit(row, row - 1, -1.0);
      emit(row, row, 4.0);
      if (j < grid - 1) emit(row, row + 1, -1.0);
      if (i < grid - 1) emit(row, row + grid, -1.0);
      p.indptr.push_back(static_cast<coord_t>(p.indices.size()));
    }
  }
  return p;
}

HostProblem zipf_matrix(coord_t n, double s, coord_t avg_nnz_per_row,
                        std::uint64_t seed) {
  LSR_CHECK(n >= 1 && avg_nnz_per_row >= 1 && s > 0.0);
  Rng rng(seed);
  // Row i's share of the nonzero budget is (i+1)^-s of the harmonic mass;
  // clamp to [1, n] so every row exists and no row exceeds the width.
  double mass = 0.0;
  for (coord_t i = 0; i < n; ++i) mass += std::pow(static_cast<double>(i + 1), -s);
  const double total = static_cast<double>(n) * static_cast<double>(avg_nnz_per_row);
  HostProblem p;
  p.rows = p.cols = n;
  p.indptr.reserve(static_cast<std::size_t>(n) + 1);
  p.indptr.push_back(0);
  for (coord_t i = 0; i < n; ++i) {
    double share = total * std::pow(static_cast<double>(i + 1), -s) / mass;
    coord_t k = std::min<coord_t>(n, std::max<coord_t>(1, static_cast<coord_t>(std::llround(share))));
    // Entries fill one contiguous column block at a random offset, like a
    // hub row touching a neighbourhood. Contiguity matters: each row's
    // gather image coalesces to a single interval, so the sweep measures
    // load balance, not pathological image fragmentation.
    coord_t start = rng.next_coord(0, n - k + 1);
    for (coord_t j = 0; j < k; ++j) {
      p.indices.push_back(start + j);
      p.values.push_back(1.0 + rng.next_double());
    }
    p.indptr.push_back(static_cast<coord_t>(p.indices.size()));
  }
  return p;
}

coord_t rydberg_dim(int atoms) {
  // Fibonacci(atoms + 2): f(0)=1 (empty chain has 1 state).
  coord_t a = 1, b = 2;  // dims for 0 and 1 atoms
  if (atoms == 0) return 1;
  for (int i = 1; i < atoms; ++i) {
    coord_t c = a + b;
    a = b;
    b = c;
  }
  return b;
}

RydbergSystem rydberg_chain(int atoms, double omega, double delta) {
  LSR_CHECK(atoms >= 1 && atoms <= 40);
  // Enumerate blockade-allowed configurations (no two adjacent excitations),
  // in increasing bitmask order.
  std::vector<std::uint64_t> states;
  states.reserve(static_cast<std::size_t>(rydberg_dim(atoms)));
  std::uint64_t limit = 1ULL << atoms;
  for (std::uint64_t s = 0; s < limit; ++s) {
    if ((s & (s >> 1)) == 0) states.push_back(s);
  }
  std::unordered_map<std::uint64_t, coord_t> index;
  index.reserve(states.size() * 2);
  for (std::size_t k = 0; k < states.size(); ++k)
    index.emplace(states[k], static_cast<coord_t>(k));

  coord_t dim = static_cast<coord_t>(states.size());

  // H entries per row: diagonal detuning −Δ·|excited|, off-diagonal Ω/2 for
  // each valid single-atom flip.
  std::vector<std::vector<std::pair<coord_t, double>>> rows(
      static_cast<std::size_t>(dim));
  for (coord_t r = 0; r < dim; ++r) {
    std::uint64_t s = states[static_cast<std::size_t>(r)];
    auto& row = rows[static_cast<std::size_t>(r)];
    double nexc = static_cast<double>(__builtin_popcountll(s));
    if (delta != 0.0) row.emplace_back(r, -delta * nexc);
    for (int a = 0; a < atoms; ++a) {
      std::uint64_t flipped = s ^ (1ULL << a);
      if ((flipped & (flipped >> 1)) != 0) continue;  // blockade-violating
      row.emplace_back(index.at(flipped), omega / 2.0);
    }
    std::sort(row.begin(), row.end());
  }

  // Assemble the real block system [[0, H], [-H, 0]] of size 2dim.
  RydbergSystem sys;
  sys.atoms = atoms;
  sys.dim = dim;
  sys.ground_state = index.at(0);
  HostProblem& p = sys.hamiltonian;
  p.rows = p.cols = 2 * dim;
  p.indptr.push_back(0);
  for (coord_t r = 0; r < dim; ++r) {
    for (auto& [c, v] : rows[static_cast<std::size_t>(r)]) {
      p.indices.push_back(c + dim);
      p.values.push_back(v);
    }
    p.indptr.push_back(static_cast<coord_t>(p.indices.size()));
  }
  for (coord_t r = 0; r < dim; ++r) {
    for (auto& [c, v] : rows[static_cast<std::size_t>(r)]) {
      p.indices.push_back(c);
      p.values.push_back(-v);
    }
    p.indptr.push_back(static_cast<coord_t>(p.indices.size()));
  }
  return sys;
}

RatingsDataset synthetic_movielens(coord_t users, coord_t items, coord_t nnz,
                                   std::uint64_t seed) {
  Rng rng(seed);
  RatingsDataset d;
  d.users = users;
  d.items = items;
  // Planted low-rank structure (user/item latent factors + biases) with
  // noise, so factorization models have real signal to learn — mirroring the
  // collaborative-filtering structure of the real MovieLens data.
  std::vector<double> zu(static_cast<std::size_t>(users)),
      bu(static_cast<std::size_t>(users)), zi(static_cast<std::size_t>(items)),
      bi(static_cast<std::size_t>(items));
  for (auto& v : zu) v = rng.next_normal();
  for (auto& v : bu) v = 0.4 * rng.next_normal();
  for (auto& v : zi) v = rng.next_normal();
  for (auto& v : bi) v = 0.4 * rng.next_normal();
  // Per-user rating counts proportional to a Zipf draw, then fill rows with
  // Zipf-popular items (duplicates allowed then deduped per row).
  std::vector<std::vector<std::pair<coord_t, double>>> rows(
      static_cast<std::size_t>(users));
  for (coord_t k = 0; k < nnz; ++k) {
    coord_t u = rng.next_coord(0, users);
    coord_t i = rng.next_zipf(items, 1.2);
    double raw = 3.0 + 0.8 * zu[static_cast<std::size_t>(u)] * zi[static_cast<std::size_t>(i)] +
                 bu[static_cast<std::size_t>(u)] + bi[static_cast<std::size_t>(i)] +
                 0.3 * rng.next_normal();
    // Snap to the 0.5-star scale like MovieLens.
    double r = std::min(5.0, std::max(0.5, std::round(raw * 2.0) / 2.0));
    rows[static_cast<std::size_t>(u)].emplace_back(i, r);
  }
  d.indptr.push_back(0);
  for (auto& row : rows) {
    std::sort(row.begin(), row.end());
    coord_t prev = -1;
    for (auto& [i, r] : row) {
      if (i == prev) continue;  // keep first rating per (user, item)
      d.indices.push_back(i);
      d.ratings.push_back(r);
      prev = i;
    }
    d.indptr.push_back(static_cast<coord_t>(d.indices.size()));
  }
  return d;
}

const std::vector<MovieLensProfile>& movielens_profiles() {
  static const std::vector<MovieLensProfile> profiles = {
      {"ML-10M", 71567, 10681, 10000054},
      {"ML-25M", 162541, 62423, 25000095},
      {"ML-50M", 229866, 88279, 50000190},    // fractal expansion of 25M
      {"ML-100M", 325082, 124846, 100000380},  // fractal expansion of 25M
  };
  return profiles;
}

}  // namespace legate::apps
