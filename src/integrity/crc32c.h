#pragma once

#include <cstddef>
#include <cstdint>

namespace legate::integrity {

/// Incremental CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected). The
/// slicing-by-8 software implementation processes eight bytes per table
/// round — the same structure hardware-accelerated versions vectorize — so
/// the cost stays a small fraction of the memory traffic being protected
/// while remaining dependency-free and bit-identical on every platform.
///
/// `crc` is the running value for the bytes already hashed (0 to start);
/// chain calls to hash a region in pieces. The returned value matches the
/// canonical CRC32C of the concatenated input (pre/post-inversion handled
/// internally).
[[nodiscard]] std::uint32_t crc32c(std::uint32_t crc, const void* data,
                                   std::size_t nbytes);

}  // namespace legate::integrity
