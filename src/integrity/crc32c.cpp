#include "integrity/crc32c.h"

#include <array>
#include <cstring>

namespace legate::integrity {

namespace {

constexpr std::uint32_t kPoly = 0x82f63b78U;  // reflected Castagnoli

/// 8 slicing tables, 256 entries each, built once at static-init time.
/// table[0] is the classic byte-at-a-time table; table[k][b] is the CRC of
/// byte b followed by k zero bytes, which lets the hot loop fold eight input
/// bytes with eight independent table loads per iteration.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1U) ? (c >> 1) ^ kPoly : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = t[0][c & 0xffU] ^ (c >> 8);
        t[static_cast<std::size_t>(k)][i] = c;
      }
    }
  }
};

const Tables& tables() {
  static const Tables tb;
  return tb;
}

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t nbytes) {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~crc;

  // Head: align to 8 bytes so the sliced loads stay aligned.
  while (nbytes > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7U) != 0) {
    c = t[0][(c ^ *p++) & 0xffU] ^ (c >> 8);
    --nbytes;
  }

  // Body: slicing-by-8, one 64-bit chunk per round.
  while (nbytes >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    chunk ^= c;  // little-endian assumed (all supported targets)
    c = t[7][chunk & 0xffU] ^ t[6][(chunk >> 8) & 0xffU] ^
        t[5][(chunk >> 16) & 0xffU] ^ t[4][(chunk >> 24) & 0xffU] ^
        t[3][(chunk >> 32) & 0xffU] ^ t[2][(chunk >> 40) & 0xffU] ^
        t[1][(chunk >> 48) & 0xffU] ^ t[0][(chunk >> 56) & 0xffU];
    p += 8;
    nbytes -= 8;
  }

  // Tail.
  while (nbytes > 0) {
    c = t[0][(c ^ *p++) & 0xffU] ^ (c >> 8);
    --nbytes;
  }
  return ~c;
}

}  // namespace legate::integrity
