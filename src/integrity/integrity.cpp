#include "integrity/integrity.h"

#include <algorithm>

#include "integrity/crc32c.h"
#include "util/common.h"

namespace legate::integrity {

void ChecksumLedger::record(std::uint64_t id, const std::byte* data,
                            std::size_t nbytes, std::size_t lo,
                            std::size_t hi) {
  auto& cs = chunks_[id];
  cs.resize(chunk_count(nbytes), 0);
  if (nbytes == 0 || hi <= lo) return;
  hi = std::min(hi, nbytes);
  const std::size_t first = lo / kChunkBytes;
  const std::size_t last = (hi - 1) / kChunkBytes;
  for (std::size_t c = first; c <= last; ++c) {
    const std::size_t clo = c * kChunkBytes;
    const std::size_t chi = std::min(clo + kChunkBytes, nbytes);
    cs[c] = crc32c(0, data + clo, chi - clo);
    hashed_.inc(static_cast<double>(chi - clo));
  }
}

std::vector<BadChunk> ChecksumLedger::verify(std::uint64_t id,
                                             const std::byte* data,
                                             std::size_t nbytes) const {
  std::vector<BadChunk> bad;
  auto it = chunks_.find(id);
  if (it == chunks_.end()) return bad;
  const auto& cs = it->second;
  LSR_CHECK_MSG(cs.size() == chunk_count(nbytes),
                "checksum ledger chunk count disagrees with store size");
  for (std::size_t c = 0; c < cs.size(); ++c) {
    const std::size_t clo = c * kChunkBytes;
    const std::size_t chi = std::min(clo + kChunkBytes, nbytes);
    hashed_.inc(static_cast<double>(chi - clo));
    if (crc32c(0, data + clo, chi - clo) != cs[c]) bad.push_back({c, clo, chi});
  }
  return bad;
}

bool ChecksumLedger::try_correct(std::uint64_t id, std::byte* data,
                                 std::size_t nbytes, const BadChunk& bad) const {
  auto it = chunks_.find(id);
  if (it == chunks_.end()) return false;
  const auto& cs = it->second;
  if (bad.chunk >= cs.size() || bad.hi > nbytes || bad.lo >= bad.hi)
    return false;
  const std::uint32_t want = cs[bad.chunk];
  const std::size_t len = bad.hi - bad.lo;
  std::byte* chunk = data + bad.lo;
  for (std::size_t byte = 0; byte < len; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      const auto mask = static_cast<std::byte>(1U << bit);
      chunk[byte] ^= mask;
      if (crc32c(0, chunk, len) == want) {
        hashed_.inc(static_cast<double>((byte + 1) * len));
        return true;
      }
      chunk[byte] ^= mask;
    }
  }
  hashed_.inc(static_cast<double>(len * len * 8));
  return false;
}

}  // namespace legate::integrity
