#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/metrics.h"

namespace legate::integrity {

/// Thrown when checksum verification finds corrupted bytes that the active
/// integrity policy cannot (or may not) repair. Carries the store id and the
/// byte offset of the first bad chunk so callers can pinpoint the region.
class CorruptionError : public std::runtime_error {
 public:
  CorruptionError(const std::string& what, std::uint64_t store,
                  std::size_t offset)
      : std::runtime_error(what), store_(store), offset_(offset) {}
  [[nodiscard]] std::uint64_t store() const { return store_; }
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::uint64_t store_{0};
  std::size_t offset_{0};
};

/// One chunk whose stored and recomputed checksums disagree; [lo, hi) is the
/// byte range the chunk covers within the store.
struct BadChunk {
  std::size_t chunk{0};
  std::size_t lo{0};
  std::size_t hi{0};
};

/// Per-store incremental checksums over the canonical host buffers.
///
/// Each tracked store is split into fixed 512-byte chunks, each carrying its
/// own CRC32C. Chunking bounds the re-hash cost of a partial write-back to
/// the chunks the write touched, and bounds the brute-force search space of
/// single-bit correction to 4096 candidate flips per bad chunk. The ledger is
/// only ever touched from the runtime's sequential control path, so it needs
/// no locking and its state is a pure function of the deterministic
/// write/verify sequence.
class ChecksumLedger {
 public:
  static constexpr std::size_t kChunkBytes = 512;

  /// Metrics handle bumped with every byte hashed (record and verify).
  /// Default-constructed handles are inert, so wiring is optional.
  void set_hashed_counter(metrics::Counter c) { hashed_ = c; }

  [[nodiscard]] bool tracked(std::uint64_t id) const {
    return chunks_.count(id) != 0;
  }

  /// (Re)checksum the chunks of store `id` overlapping byte range [lo, hi).
  /// First call for a store sizes its chunk table from `nbytes`; the full
  /// range must be recorded (lo=0, hi=nbytes) before verify is meaningful,
  /// which the runtime guarantees by recording every store at attach/create.
  void record(std::uint64_t id, const std::byte* data, std::size_t nbytes,
              std::size_t lo, std::size_t hi);

  /// Recompute every chunk of store `id` and return the ones whose CRC
  /// disagrees with the ledger (empty = clean or untracked).
  [[nodiscard]] std::vector<BadChunk> verify(std::uint64_t id,
                                             const std::byte* data,
                                             std::size_t nbytes) const;

  /// Attempt single-bit correction of one bad chunk: try flipping each bit in
  /// the chunk until the recorded CRC matches. Returns true (data repaired in
  /// place, bit-exactly) on success; false leaves the data untouched. Only
  /// single-bit upsets are correctable this way — multi-bit damage within one
  /// chunk needs a replica or checkpoint.
  bool try_correct(std::uint64_t id, std::byte* data, std::size_t nbytes,
                   const BadChunk& bad) const;

  /// Drop all checksums for a store (destruction, or handing the buffer to
  /// external writers the ledger cannot observe).
  void forget(std::uint64_t id) { chunks_.erase(id); }

 private:
  [[nodiscard]] static std::size_t chunk_count(std::size_t nbytes) {
    return nbytes == 0 ? 0 : (nbytes + kChunkBytes - 1) / kChunkBytes;
  }

  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> chunks_;
  metrics::Counter hashed_;
};

}  // namespace legate::integrity
