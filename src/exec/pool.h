#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "metrics/metrics.h"

namespace legate::exec {

class Pool;

/// One node of the real-execution task graph: a unit of deferred work
/// (typically every point task of one index launch) plus the dependence
/// edges the runtime derived from its store reader/writer state. Nodes are
/// created by Pool::submit and become runnable once all predecessors
/// finished.
class Node {
 public:
  [[nodiscard]] bool done() const { return done_.load(std::memory_order_acquire); }

 private:
  friend class Pool;
  std::function<void()> fn_;
  std::vector<std::shared_ptr<Node>> succs_;  ///< waiters on this node
  int pending_{0};                            ///< unfinished predecessors
  std::atomic<bool> done_{false};
};

using NodeRef = std::shared_ptr<Node>;

/// Work-stealing thread pool executing real leaf-task work.
///
/// Structure: one deque per worker; an owner pushes and pops at the back
/// (LIFO, cache-friendly for nested loop chunks) while idle workers steal
/// from the front of a victim's deque (FIFO, oldest work first). All deques
/// hang off a single mutex: the scheduling granularity here is whole index
/// launches and loop chunks of leaf kernels — milliseconds, not nanoseconds —
/// so the stealing *policy* matters for fairness and locality while lock
/// contention does not.
///
/// Threads blocked in wait()/wait_all()/parallel_for() help: they steal and
/// run queued work instead of idling, so the control thread contributes a
/// full execution context while it drains a fence.
///
/// Task functions must not throw — callers (the runtime) capture exceptions
/// into their own records and surface them at the next fence.
class Pool {
 public:
  /// Spawn `threads` workers (clamped to >= 1). When `metrics` is non-null
  /// the pool reports scheduling telemetry there (steals, queue depth,
  /// parallel_for grain sizes, measured task wall time) — all registered
  /// Volatile: they legitimately vary with thread count and scheduling.
  explicit Pool(int threads, metrics::Registry* metrics = nullptr);
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] int threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task-graph node that runs `fn` once every node in `deps`
  /// (nulls and already-finished nodes are skipped) has completed.
  NodeRef submit(std::function<void()> fn, const std::vector<NodeRef>& deps);

  /// Block until `n` has finished, running other queued work meanwhile.
  void wait(const NodeRef& n);

  /// Block until every submitted node has finished and no task is running.
  void wait_all();

  /// Run body(0..n-1), each index exactly once, distributing chunks over the
  /// workers while the caller participates. Iterations are claimed from a
  /// shared atomic counter — idle workers steal loop iterations the same way
  /// they steal queued tasks. Returns after every iteration completed
  /// (completion publishes the bodies' writes to the caller).
  void parallel_for(long n, const std::function<void(long)>& body);

  /// Point-in-time scheduling state, sampled under the pool mutex. The diag
  /// watchdog uses this to classify a hang: `queued > 0 && running == 0`
  /// held across a deadline means ready work with every worker parked.
  struct Status {
    long queued{0};     ///< tasks parked across all deques
    long running{0};    ///< tasks currently executing
    long inflight{0};   ///< submitted nodes not yet done
    long completed{0};  ///< tasks finished since the pool started
  };
  [[nodiscard]] Status status();

 private:
  struct WorkerDeque {
    std::deque<std::function<void()>> q;
  };

  void worker_loop(int self);
  /// Pop own back / steal a victim's front. Lock must be held.
  bool pop_task(int self, std::function<void()>& out);
  /// Push a task (round-robin across deques) and wake a worker. Lock held.
  void push_task_locked(std::function<void()> fn);
  /// Make a ready node's task runnable. Lock must be held.
  void enqueue_node_locked(const NodeRef& n);
  /// Run one queued task if any, temporarily releasing `lk`.
  bool help_one(std::unique_lock<std::mutex>& lk);
  /// Execute a popped task outside the lock, timing it when metrics are on.
  void run_task(std::function<void()>& task);
  /// Total tasks parked across all deques. Lock must be held.
  [[nodiscard]] std::size_t queued_locked() const;

  std::mutex mu_;  ///< guards deques, node graph edges, counters
  std::condition_variable cv_work_;  ///< new task available
  std::condition_variable cv_done_;  ///< a task or node finished
  std::vector<WorkerDeque> deques_;
  std::size_t next_deque_{0};
  long inflight_nodes_{0};  ///< submitted, not yet done
  long running_{0};         ///< tasks currently executing
  long completed_{0};       ///< tasks finished since pool start
  bool stop_{false};
  std::vector<std::thread> workers_;

  // Scheduling telemetry (inert no-op handles when constructed without a
  // registry, e.g. in unit tests).
  metrics::Counter met_steals_;
  metrics::Gauge met_queue_peak_;
  metrics::Histogram met_grain_;
  metrics::Histogram met_task_wall_;
};

}  // namespace legate::exec
