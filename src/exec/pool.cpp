#include "exec/pool.h"

#include <algorithm>
#include <chrono>

namespace legate::exec {

Pool::Pool(int threads, metrics::Registry* metrics) {
  if (metrics != nullptr) {
    using metrics::Stability;
    met_steals_ = metrics->counter("lsr_exec_steals_total",
                                   "tasks taken from another worker's deque",
                                   Stability::Volatile);
    met_queue_peak_ = metrics->gauge("lsr_exec_queue_depth_peak",
                                     "max tasks parked across all deques",
                                     Stability::Volatile);
    met_grain_ = metrics->histogram(
        "lsr_exec_parallel_for_grain",
        "iterations claimed per parallel_for participant",
        {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}, Stability::Volatile);
    met_task_wall_ = metrics->histogram(
        "lsr_exec_task_wall_seconds", "measured wall time per pool task",
        metrics::Registry::seconds_buckets(), Stability::Volatile);
  }
  int n = std::max(1, threads);
  deques_.resize(static_cast<std::size_t>(n));
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

bool Pool::pop_task(int self, std::function<void()>& out) {
  auto& own = deques_[static_cast<std::size_t>(self)].q;
  if (!own.empty()) {
    out = std::move(own.back());
    own.pop_back();
    return true;
  }
  for (std::size_t k = 1; k < deques_.size(); ++k) {
    auto& victim = deques_[(static_cast<std::size_t>(self) + k) % deques_.size()].q;
    if (!victim.empty()) {
      out = std::move(victim.front());
      victim.pop_front();
      met_steals_.inc();
      return true;
    }
  }
  return false;
}

std::size_t Pool::queued_locked() const {
  std::size_t total = 0;
  for (const auto& d : deques_) total += d.q.size();
  return total;
}

Pool::Status Pool::status() {
  std::lock_guard<std::mutex> lk(mu_);
  return Status{static_cast<long>(queued_locked()), running_, inflight_nodes_,
                completed_};
}

void Pool::run_task(std::function<void()>& task) {
  auto t0 = std::chrono::steady_clock::now();
  task();
  met_task_wall_.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());
}

void Pool::push_task_locked(std::function<void()> fn) {
  deques_[next_deque_ % deques_.size()].q.push_back(std::move(fn));
  ++next_deque_;
  met_queue_peak_.update_max(static_cast<double>(queued_locked()));
  cv_work_.notify_one();
}

void Pool::enqueue_node_locked(const NodeRef& n) {
  push_task_locked([this, n] {
    n->fn_();
    std::vector<NodeRef> ready;
    {
      std::lock_guard<std::mutex> lk(mu_);
      n->done_.store(true, std::memory_order_release);
      n->fn_ = nullptr;
      for (auto& s : n->succs_) {
        if (--s->pending_ == 0) ready.push_back(s);
      }
      n->succs_.clear();
      for (auto& r : ready) enqueue_node_locked(r);
      --inflight_nodes_;
    }
    cv_done_.notify_all();
  });
}

NodeRef Pool::submit(std::function<void()> fn, const std::vector<NodeRef>& deps) {
  auto n = std::make_shared<Node>();
  n->fn_ = std::move(fn);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++inflight_nodes_;
    for (const auto& d : deps) {
      if (d == nullptr || d->done_.load(std::memory_order_acquire)) continue;
      d->succs_.push_back(n);
      ++n->pending_;
    }
    if (n->pending_ == 0) enqueue_node_locked(n);
  }
  return n;
}

bool Pool::help_one(std::unique_lock<std::mutex>& lk) {
  std::function<void()> task;
  if (!pop_task(0, task)) return false;
  ++running_;
  lk.unlock();
  run_task(task);
  lk.lock();
  --running_;
  ++completed_;
  cv_done_.notify_all();
  return true;
}

void Pool::wait(const NodeRef& n) {
  if (n == nullptr) return;
  std::unique_lock<std::mutex> lk(mu_);
  while (!n->done_.load(std::memory_order_acquire)) {
    if (!help_one(lk)) cv_done_.wait(lk);
  }
}

void Pool::wait_all() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (help_one(lk)) continue;
    if (inflight_nodes_ == 0 && running_ == 0) return;
    cv_done_.wait(lk);
  }
}

void Pool::worker_loop(int self) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    std::function<void()> task;
    if (pop_task(self, task)) {
      ++running_;
      lk.unlock();
      run_task(task);
      lk.lock();
      --running_;
      ++completed_;
      cv_done_.notify_all();
      continue;
    }
    if (stop_) return;
    cv_work_.wait(lk);
  }
}

void Pool::parallel_for(long n, const std::function<void(long)>& body) {
  if (n <= 0) return;
  if (n == 1) {
    body(0);
    return;
  }
  // Iterations are claimed from a shared counter; `completed` is the join.
  // Chunk-runner tasks that start after the loop drained exit without ever
  // touching `body` (the claim check dereferences only the counters), so the
  // initiator never waits on a runner that is still parked in a deque.
  struct LoopState {
    std::atomic<long> next{0};
    std::atomic<long> completed{0};
    long n{0};
    const std::function<void(long)>* body{nullptr};
  };
  auto st = std::make_shared<LoopState>();
  st->n = n;
  st->body = &body;

  auto run_chunks = [this, st] {
    long claimed = 0;
    for (long i; (i = st->next.fetch_add(1)) < st->n;) {
      ++claimed;
      (*st->body)(i);
      if (st->completed.fetch_add(1) + 1 == st->n) {
        std::lock_guard<std::mutex> lk(mu_);
        cv_done_.notify_all();
      }
    }
    if (claimed > 0) met_grain_.observe(static_cast<double>(claimed));
  };

  long helpers = std::min<long>(n - 1, threads());
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (long h = 0; h < helpers; ++h) push_task_locked(run_chunks);
  }
  cv_work_.notify_all();

  run_chunks();  // the initiator is a full participant

  std::unique_lock<std::mutex> lk(mu_);
  while (st->completed.load() < st->n) {
    // Help with whatever is queued (another node, a nested loop's chunks)
    // rather than idling while the last iterations finish elsewhere.
    if (!help_one(lk)) cv_done_.wait(lk);
  }
}

}  // namespace legate::exec
