#pragma once

// Task & kernel fusion analysis (lsr_fuse). Pure window analysis over
// deferred LaunchRecords: which launches may legally join a fusion window,
// whether a window can absorb the next record, and the combined-argument
// plan for rewriting a window into a single fused launch. The runtime side
// (window lifecycle, fused-record synthesis, replay) lives in
// src/rt/runtime_fuse.cpp; everything here is side-effect free and touches
// no simulated state. See DESIGN.md "Task & kernel fusion".

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "rt/runtime_detail.h"

namespace legate::fuse {

/// How a single launch relates to the fusion window.
enum class Eligibility {
  Ineligible,  ///< flushes the window and launches on its own
  Fusable,     ///< may start, join or extend a window
  HeadOnly,    ///< may only *start* a window (image/halo-constrained args:
               ///< their eager solve scans real source bytes, which pending
               ///< window members could still be about to write)
};

/// Static per-launch legality. Requirements for Fusable/HeadOnly:
///  - no forced color count (glue work pinned to one point stays alone);
///  - parallel-safe points (the fused leaf runs chains per color, relying on
///    disjoint writes exactly like the parallel executor does);
///  - no store-reduction arguments (their partial buffers are indexed by the
///    owning launch's argument list, which fusion rewrites);
///  - every argument solved by alignment or broadcast; image/halo arguments
///    demote the launch to HeadOnly. Scalar reductions (dot/nrm2) stay
///    eligible — the runtime appends them and flushes, making them the
///    terminal link of their chain.
[[nodiscard]] Eligibility classify(const rt::detail::LaunchRecord& R);

/// Incremental compatibility state for one open window. The legality rule is
/// a single invariant: for every store *written* anywhere in the window,
/// every access of that store across the whole window must use the same
/// concrete partition (Partition::uid equality — the same object, including
/// pinned nnz-balanced splits). This subsumes the obvious hazards: a
/// broadcast or image read of a window-written store can never share the
/// writer's disjoint partition uid, so it is rejected without a special
/// case. Records must have been eager-solved (eager_parts filled) before
/// they are offered.
class WindowTracker {
 public:
  /// Forget everything (window flushed).
  void clear();
  /// Would the window remain legal if `R` were appended? (Pure check.)
  [[nodiscard]] bool admits(const rt::detail::LaunchRecord& R) const;
  /// Fold an appended record's accesses into the state.
  void add(const rt::detail::LaunchRecord& R);

 private:
  struct StoreState {
    std::uint64_t uid{0};  ///< first partition identity seen
    bool mixed{false};     ///< a second identity appeared
    bool written{false};
  };
  int colors_{-1};
  std::map<rt::StoreId, StoreState> stores_;
};

/// Combined-argument plan for one fused launch.
struct FusePlan {
  /// Fused argument list, in first-occurrence order. The head child's
  /// arguments keep their original indices (so image_src references stay
  /// valid); later children's alignment-constrained arguments that re-access
  /// a store through the same partition object are merged into the earlier
  /// slot instead of being repeated.
  std::vector<rt::detail::LaunchRecord::RArg> args;
  /// Leaf-cost bytes to discount per color: every merged *read* of a store
  /// the window already held resident (written or read by an earlier child)
  /// is a round-trip the fused chain no longer pays.
  std::vector<double> saved_per_color;
  double bytes_saved{0};  ///< sum over colors (drives lsr_fuse_bytes_saved)
};

/// Build the combined arguments for a run of eager-solved, mutually
/// compatible children. Privilege merging per slot, in chain order:
/// write-then-read keeps the write (the read is satisfied in-chain),
/// read-then-write upgrades to ReadWrite (pre-window bytes are still
/// consumed), WriteDiscard stays WriteDiscard (the first access already
/// declared prior contents dead), and anything after ReadWrite stays
/// ReadWrite. Only alignment-solved (ckind None) accesses are merged;
/// broadcast duplicates are kept verbatim — re-staging them is idempotent
/// and their whole-store reads are not a per-element round-trip to save.
[[nodiscard]] FusePlan make_plan(
    const std::vector<std::shared_ptr<rt::detail::LaunchRecord>>& children);

}  // namespace legate::fuse
