#include "fuse/fuse.h"

#include <algorithm>
#include <numeric>

namespace legate::fuse {

using rt::ConstraintKind;
using rt::Priv;
using rt::detail::LaunchRecord;

Eligibility classify(const LaunchRecord& R) {
  if (R.forced_colors > 0 || !R.parallel_safe) return Eligibility::Ineligible;
  bool head_only = false;
  for (const auto& a : R.args) {
    if (a.priv == Priv::Reduce) return Eligibility::Ineligible;
    if (a.ckind != ConstraintKind::None && a.ckind != ConstraintKind::Broadcast) {
      head_only = true;
    }
  }
  return head_only ? Eligibility::HeadOnly : Eligibility::Fusable;
}

void WindowTracker::clear() {
  colors_ = -1;
  stores_.clear();
}

bool WindowTracker::admits(const LaunchRecord& R) const {
  LSR_CHECK_MSG(R.eager_parts.size() == R.args.size(),
                "fusion compatibility requires an eager-solved record");
  if (colors_ >= 0 && R.colors != colors_) return false;
  // Merge R's accesses into a copy of the per-store view and re-check the
  // invariant: written stores are only ever accessed through one partition.
  std::map<rt::StoreId, StoreState> merged = stores_;
  for (std::size_t i = 0; i < R.args.size(); ++i) {
    const auto& a = R.args[i];
    auto [it, fresh] =
        merged.try_emplace(a.view.id, StoreState{R.eager_parts[i]->uid(), false,
                                                 a.priv != Priv::Read});
    if (!fresh) {
      if (R.eager_parts[i]->uid() != it->second.uid) it->second.mixed = true;
      if (a.priv != Priv::Read) it->second.written = true;
    }
  }
  return std::none_of(merged.begin(), merged.end(), [](const auto& kv) {
    return kv.second.written && kv.second.mixed;
  });
}

void WindowTracker::add(const LaunchRecord& R) {
  LSR_CHECK_MSG(R.eager_parts.size() == R.args.size(),
                "fusion tracking requires an eager-solved record");
  colors_ = R.colors;
  for (std::size_t i = 0; i < R.args.size(); ++i) {
    const auto& a = R.args[i];
    auto [it, fresh] =
        stores_.try_emplace(a.view.id, StoreState{R.eager_parts[i]->uid(), false,
                                                  a.priv != Priv::Read});
    if (!fresh) {
      if (R.eager_parts[i]->uid() != it->second.uid) it->second.mixed = true;
      if (a.priv != Priv::Read) it->second.written = true;
    }
  }
}

namespace {

/// Chain-order privilege merge for one combined slot (see fuse.h).
Priv merge_priv(Priv cur, Priv next) {
  if (next == Priv::Read) return cur;
  // `next` writes (ReadWrite or WriteDiscard).
  switch (cur) {
    case Priv::Read: return Priv::ReadWrite;
    case Priv::WriteDiscard: return Priv::WriteDiscard;
    default: return Priv::ReadWrite;
  }
}

}  // namespace

FusePlan make_plan(const std::vector<std::shared_ptr<LaunchRecord>>& children) {
  LSR_CHECK_MSG(children.size() >= 2, "a fused launch needs at least two links");
  FusePlan plan;
  const int colors = children.front()->colors;
  plan.saved_per_color.assign(static_cast<std::size_t>(colors), 0.0);

  // Slot lookup for merge candidates: alignment-solved accesses keyed by
  // (store, concrete partition identity).
  std::map<std::pair<rt::StoreId, std::uint64_t>, std::size_t> slots;
  // Union-find over fused slots: slots end up in one alignment group iff
  // some child (transitively, through merged slots) aligned them.
  std::vector<std::size_t> parent;
  auto find = [&parent](std::size_t s) {
    while (parent[s] != s) {
      parent[s] = parent[parent[s]];
      s = parent[s];
    }
    return s;
  };

  for (std::size_t k = 0; k < children.size(); ++k) {
    const LaunchRecord& kid = *children[k];
    // First fused slot seen per child-internal alignment root; later members
    // of the same child group union into it.
    std::map<int, std::size_t> root_slot;
    for (std::size_t i = 0; i < kid.args.size(); ++i) {
      const auto& a = kid.args[i];
      std::size_t slot;
      bool merged = false;
      if (a.ckind == ConstraintKind::None && k > 0) {
        auto it = slots.find(std::make_pair(a.view.id, kid.eager_parts[i]->uid()));
        if (it != slots.end()) {
          slot = it->second;
          merged = true;
          plan.args[slot].priv = merge_priv(plan.args[slot].priv, a.priv);
          if (a.priv == Priv::Read) {
            // This read is satisfied in-chain: the store's bytes are already
            // resident (written or read by an earlier link), so the fused
            // leaf never pays this pass through the memory system again.
            double esize = static_cast<double>(rt::dtype_size(a.view.dtype));
            for (int c = 0; c < colors; ++c) {
              const Interval& iv = kid.ivs[static_cast<std::size_t>(c)][i];
              double bytes = static_cast<double>(iv.size()) *
                             static_cast<double>(a.view.stride) * esize;
              plan.saved_per_color[static_cast<std::size_t>(c)] += bytes;
              plan.bytes_saved += bytes;
            }
          }
        }
      }
      if (!merged) {
        slot = plan.args.size();
        plan.args.push_back(a);
        parent.push_back(slot);
        // image_src indices refer into the head child's argument list, which
        // occupies slots [0, head.args.size()) verbatim — nothing precedes
        // the head, and within one child nothing is merged.
        if (a.ckind == ConstraintKind::None) {
          slots.emplace(std::make_pair(a.view.id, kid.eager_parts[i]->uid()),
                        slot);
        }
      }
      auto [rit, fresh_root] = root_slot.try_emplace(a.root, slot);
      if (!fresh_root) parent[find(slot)] = find(rit->second);
    }
  }

  for (std::size_t s = 0; s < plan.args.size(); ++s) {
    plan.args[s].root = static_cast<int>(find(s));
  }
  return plan;
}

}  // namespace legate::fuse
