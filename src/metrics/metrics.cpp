#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "util/common.h"

namespace legate::metrics {

namespace {

/// fetch_add for atomic<double> via CAS (C++20 has it natively for
/// floating point, but keep the portable spelling; relaxed is enough —
/// readers synchronize via the fence that precedes any snapshot).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Shortest round-trip decimal for a double, with integral values printed
/// without an exponent/fraction so snapshots read like counts.
void append_double(std::string& out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    // Shortest precision that round-trips: "0.1" rather than
    // "0.10000000000000001" in bucket bounds and le= labels.
    for (int prec = 1; prec <= 17; ++prec) {
      std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
      if (std::strtod(buf, nullptr) == v) break;
    }
  }
  out += buf;
}

}  // namespace

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Counter: return "counter";
    case Kind::Gauge: return "gauge";
    case Kind::Histogram: return "histogram";
  }
  return "?";
}

const char* stability_name(Stability s) {
  return s == Stability::Stable ? "stable" : "volatile";
}

std::string sanitize_name(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

void Counter::inc(double v) const {
  if (reg_ == nullptr) return;
  reg_->add(def_->first_slot, v);
}

void Gauge::set(double v) const {
  if (reg_ == nullptr) return;
  reg_->gauge_store(def_->first_slot, v);
}

void Gauge::update_max(double v) const {
  if (reg_ == nullptr) return;
  reg_->gauge_max(def_->first_slot, v);
}

void Histogram::observe(double v) const {
  if (reg_ == nullptr) return;
  const auto& bounds = def_->bounds;
  int bucket = static_cast<int>(bounds.size());  // overflow by default
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (v <= bounds[i]) {
      bucket = static_cast<int>(i);
      break;
    }
  }
  int base = def_->first_slot;
  int nbuckets = static_cast<int>(bounds.size()) + 1;
  reg_->add(base + bucket, 1.0);
  reg_->add(base + nbuckets, v);       // sum
  reg_->add(base + nbuckets + 1, 1.0);  // count
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry::Registry() {
  for (auto& sh : shards_) {
    sh.slots = std::make_unique<std::atomic<double>[]>(kSlots);
    for (int i = 0; i < kSlots; ++i) sh.slots[i].store(0.0);
  }
  gauges_ = std::make_unique<std::atomic<double>[]>(kSlots);
  for (int i = 0; i < kSlots; ++i) gauges_[i].store(0.0);
}

int Registry::shard_of_thread() {
  // A given thread always maps to the same shard so its increments never
  // race with themselves; distinct threads may share a shard (atomics make
  // that safe, it only costs contention).
  static std::atomic<int> next{0};
  thread_local int shard = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void Registry::add(int slot, double v) {
  atomic_add(shards_[shard_of_thread()].slots[slot], v);
}

void Registry::gauge_store(int slot, double v) {
  gauges_[slot].store(v, std::memory_order_relaxed);
}

void Registry::gauge_max(int slot, double v) { atomic_max(gauges_[slot], v); }

double Registry::merged(int slot) const {
  // Fixed shard order. All Stable metrics are incremented by exactly one
  // thread (the control thread), so their whole value sits in a single
  // shard and the merge reproduces the sequential sum bit-for-bit.
  double acc = 0.0;
  for (const auto& sh : shards_) {
    acc += sh.slots[slot].load(std::memory_order_relaxed);
  }
  return acc;
}

const detail::MetricDef* Registry::register_metric(const std::string& name,
                                                   const std::string& help,
                                                   Kind kind, Stability st,
                                                   std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, def] : by_name_) {
    if (n == name) {
      LSR_CHECK_MSG(def->kind == kind,
                    "metric re-registered with different kind: " + name);
      LSR_CHECK_MSG(def->stability == st,
                    "metric re-registered with different stability: " + name);
      LSR_CHECK_MSG(def->bounds == bounds,
                    "metric re-registered with different buckets: " + name);
      return def;
    }
  }
  if (kind == Kind::Histogram) {
    LSR_CHECK_MSG(!bounds.empty(), "histogram needs at least one bucket bound");
    LSR_CHECK_MSG(std::is_sorted(bounds.begin(), bounds.end()),
                  "histogram bounds must be sorted: " + name);
  }
  auto def = std::make_unique<detail::MetricDef>();
  def->name = name;
  def->help = help;
  def->kind = kind;
  def->stability = st;
  def->bounds = std::move(bounds);
  def->first_slot = next_slot_;
  def->nslots = kind == Kind::Histogram
                    ? static_cast<int>(def->bounds.size()) + 1 + 2
                    : 1;
  LSR_CHECK_MSG(next_slot_ + def->nslots <= kSlots,
                "metrics registry slot capacity exhausted");
  next_slot_ += def->nslots;
  const detail::MetricDef* out = def.get();
  by_name_.emplace_back(name, out);
  defs_.push_back(std::move(def));
  return out;
}

Counter Registry::counter(const std::string& name, const std::string& help,
                          Stability st) {
  const auto* def = register_metric(name, help, Kind::Counter, st, {});
  return Counter(this, def);
}

Gauge Registry::gauge(const std::string& name, const std::string& help,
                      Stability st) {
  const auto* def = register_metric(name, help, Kind::Gauge, st, {});
  return Gauge(this, def);
}

Histogram Registry::histogram(const std::string& name, const std::string& help,
                              std::vector<double> bounds, Stability st) {
  const auto* def =
      register_metric(name, help, Kind::Histogram, st, std::move(bounds));
  return Histogram(this, def);
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.metrics.reserve(defs_.size());
  for (const auto& def : defs_) {
    Snapshot::Metric m;
    m.name = def->name;
    m.help = def->help;
    m.kind = def->kind;
    m.stability = def->stability;
    m.bounds = def->bounds;
    if (def->kind == Kind::Gauge) {
      m.value = gauges_[def->first_slot].load(std::memory_order_relaxed);
    } else if (def->kind == Kind::Counter) {
      m.value = merged(def->first_slot);
    } else {
      int nbuckets = static_cast<int>(def->bounds.size()) + 1;
      m.buckets.resize(nbuckets);
      for (int i = 0; i < nbuckets; ++i) {
        m.buckets[i] = merged(def->first_slot + i);
      }
      m.sum = merged(def->first_slot + nbuckets);
      m.count = merged(def->first_slot + nbuckets + 1);
    }
    snap.metrics.push_back(std::move(m));
  }
  // Deterministic emission order: sorted by name, independent of the order
  // subsystems registered their metrics. Snapshot deltas, the JSON and
  // Prometheus exporters, and bench_compare baselines all inherit this, so
  // diffs stay stable across presets and registration-order refactors.
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const Snapshot::Metric& a, const Snapshot::Metric& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& sh : shards_) {
    for (int i = 0; i < kSlots; ++i) {
      sh.slots[i].store(0.0, std::memory_order_relaxed);
    }
  }
  for (int i = 0; i < kSlots; ++i) {
    gauges_[i].store(0.0, std::memory_order_relaxed);
  }
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return defs_.size();
}

std::vector<double> Registry::byte_buckets() {
  std::vector<double> b;
  for (double v = 1e3; v <= 1e10; v *= 10.0) b.push_back(v);
  return b;
}

std::vector<double> Registry::seconds_buckets() {
  std::vector<double> b;
  for (double v = 1e-6; v <= 1e2; v *= 10.0) b.push_back(v);
  return b;
}

std::vector<double> Registry::log10_buckets() {
  std::vector<double> b;
  for (double v = -16.0; v <= 4.0; v += 2.0) b.push_back(v);
  return b;
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

const Snapshot::Metric* Snapshot::find(const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Snapshot Snapshot::delta(const Snapshot& base) const {
  Snapshot out = *this;
  for (auto& m : out.metrics) {
    if (m.kind == Kind::Gauge) continue;  // gauges report the current value
    const Metric* b = base.find(m.name);
    if (b == nullptr || b->kind != m.kind) continue;
    if (m.kind == Kind::Counter) {
      m.value -= b->value;
    } else if (m.bounds == b->bounds) {
      for (std::size_t i = 0; i < m.buckets.size(); ++i) {
        m.buckets[i] -= b->buckets[i];
      }
      m.sum -= b->sum;
      m.count -= b->count;
    }
  }
  return out;
}

std::string Snapshot::to_json(bool stable_only) const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& m : metrics) {
    if (stable_only && m.stability != Stability::Stable) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, m.name);
    out += ",\"kind\":\"";
    out += kind_name(m.kind);
    out += "\",\"stability\":\"";
    out += stability_name(m.stability);
    out += '"';
    if (m.kind == Kind::Histogram) {
      out += ",\"bounds\":[";
      for (std::size_t i = 0; i < m.bounds.size(); ++i) {
        if (i != 0) out += ',';
        append_double(out, m.bounds[i]);
      }
      out += "],\"buckets\":[";
      for (std::size_t i = 0; i < m.buckets.size(); ++i) {
        if (i != 0) out += ',';
        append_double(out, m.buckets[i]);
      }
      out += "],\"sum\":";
      append_double(out, m.sum);
      out += ",\"count\":";
      append_double(out, m.count);
    } else {
      out += ",\"value\":";
      append_double(out, m.value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string Snapshot::to_prometheus() const {
  std::string out;
  for (const auto& m : metrics) {
    std::string name = sanitize_name(m.name);
    out += "# HELP " + name + " " + m.help + "\n";
    out += "# TYPE " + name + " ";
    out += kind_name(m.kind);
    out += '\n';
    if (m.kind != Kind::Histogram) {
      out += name + " ";
      append_double(out, m.value);
      out += '\n';
      continue;
    }
    double cumulative = 0.0;
    for (std::size_t i = 0; i < m.buckets.size(); ++i) {
      cumulative += m.buckets[i];
      out += name + "_bucket{le=\"";
      if (i < m.bounds.size()) {
        append_double(out, m.bounds[i]);
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      append_double(out, cumulative);
      out += '\n';
    }
    out += name + "_sum ";
    append_double(out, m.sum);
    out += '\n';
    out += name + "_count ";
    append_double(out, m.count);
    out += '\n';
  }
  return out;
}

}  // namespace legate::metrics
