#pragma once

// legate::metrics — always-on aggregate metrics (lsr_metrics).
//
// Where legate::prof records opt-in per-event timelines, this registry keeps
// cheap always-on aggregates: the counts the paper's mapping and partitioning
// arguments are ultimately about (partition-cache reuse, coalesced vs. fresh
// allocations, per-link bytes moved) plus executor and solver telemetry.
//
// Model: a Registry owns named counters, gauges, and fixed-bucket histograms.
// Increments are lock-free — each value is sharded across a small fixed set
// of cache-line-padded atomic slot arrays, and a thread always lands in the
// same shard — so leaf tasks on legate::exec pool workers can bump metrics
// without serializing. Reads (snapshot/export) merge the shards in fixed
// shard order.
//
// Determinism contract: every metric is tagged Stable or Volatile at
// registration. Stable metrics are only ever incremented from the runtime's
// deterministic control path (the sequential launch replay), so one thread
// produces the whole sequence of increments and the shard merge reproduces
// the exact sequential sum — snapshots of the stable subset are bit-identical
// at any exec thread count. Volatile metrics (steals, queue depth, measured
// wall times) may be bumped concurrently from pool workers and legitimately
// vary run to run. Snapshots taken at a fence observe a consistent stable
// set; `Snapshot::to_json(/*stable_only=*/true)` is the comparable view.

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace legate::metrics {

/// Whether a metric is part of the deterministic (thread-count-invariant)
/// subset. See the determinism contract above.
enum class Stability { Stable, Volatile };

enum class Kind { Counter, Gauge, Histogram };

[[nodiscard]] const char* kind_name(Kind k);
[[nodiscard]] const char* stability_name(Stability s);

class Registry;

namespace detail {

/// One registered metric. Stored in a deque inside the Registry so handles
/// can keep stable pointers across later registrations.
struct MetricDef {
  std::string name;
  std::string help;
  Kind kind{Kind::Counter};
  Stability stability{Stability::Stable};
  std::vector<double> bounds;  ///< histogram upper bounds (+Inf implied)
  int first_slot{0};  ///< slot range [first_slot, first_slot + nslots)
  int nslots{1};      ///< counters/gauges: 1; histograms: buckets+1 +sum +count
};

}  // namespace detail

/// Monotone counter handle. Default-constructed handles are inert no-ops, so
/// instrumented code never needs a null registry check at the call site.
class Counter {
 public:
  Counter() = default;
  void inc(double v = 1.0) const;

 private:
  friend class Registry;
  Counter(Registry* reg, const detail::MetricDef* def) : reg_(reg), def_(def) {}
  Registry* reg_{nullptr};
  const detail::MetricDef* def_{nullptr};
};

/// Last-write-wins gauge handle (plus a monotone-max variant for peaks).
/// Gauges are not sharded: sets are atomic stores, so a Stable gauge must
/// only be set from the deterministic control path.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const;
  /// Monotone update: keep the maximum of the current and given value.
  void update_max(double v) const;

 private:
  friend class Registry;
  Gauge(Registry* reg, const detail::MetricDef* def) : reg_(reg), def_(def) {}
  Registry* reg_{nullptr};
  const detail::MetricDef* def_{nullptr};
};

/// Fixed-bucket histogram handle. `observe(v)` bumps the first bucket whose
/// upper bound is >= v (the last bucket is the implicit +Inf overflow) and
/// accumulates sum/count.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const;

 private:
  friend class Registry;
  Histogram(Registry* reg, const detail::MetricDef* def) : reg_(reg), def_(def) {}
  Registry* reg_{nullptr};
  const detail::MetricDef* def_{nullptr};
};

/// Merged point-in-time view of a registry, in registration order.
struct Snapshot {
  struct Metric {
    std::string name;
    std::string help;
    Kind kind{Kind::Counter};
    Stability stability{Stability::Stable};
    double value{0};              ///< counter / gauge
    std::vector<double> bounds;   ///< histogram upper bounds
    std::vector<double> buckets;  ///< per-bucket counts; size bounds()+1
    double sum{0};
    double count{0};
  };
  std::vector<Metric> metrics;

  [[nodiscard]] const Metric* find(const std::string& name) const;

  /// Counter and histogram values minus `base` (metrics missing from `base`
  /// keep their full value); gauges keep their current value. Used by the
  /// benches to report the timed region only, excluding warmup.
  [[nodiscard]] Snapshot delta(const Snapshot& base) const;

  /// Deterministic JSON: an object with a "metrics" array in registration
  /// order, doubles printed with round-trip precision. With `stable_only`
  /// the volatile subset is omitted — two stable-only strings from runs that
  /// differ only in exec thread count must compare equal.
  [[nodiscard]] std::string to_json(bool stable_only = false) const;

  /// Prometheus text exposition format (counters, gauges, and histograms
  /// with cumulative `_bucket{le=...}` series).
  [[nodiscard]] std::string to_prometheus() const;
};

/// Registry of named metrics. Registration is idempotent by name (the
/// existing handle is returned; kind/stability/bounds must match) and takes
/// a mutex; increments are lock-free on pre-allocated shard slots.
class Registry {
 public:
  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter counter(const std::string& name, const std::string& help,
                  Stability st = Stability::Stable);
  Gauge gauge(const std::string& name, const std::string& help,
              Stability st = Stability::Stable);
  Histogram histogram(const std::string& name, const std::string& help,
                      std::vector<double> bounds,
                      Stability st = Stability::Stable);

  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every value, keeping the registered metric set (Engine::reset).
  void reset();

  /// Number of registered metrics (test/diagnostic hook).
  [[nodiscard]] std::size_t size() const;

  // -- common bucket layouts -------------------------------------------------
  /// Decade buckets for byte volumes: 1 kB .. 10 GB.
  [[nodiscard]] static std::vector<double> byte_buckets();
  /// Decade buckets for durations in seconds: 1 µs .. 100 s.
  [[nodiscard]] static std::vector<double> seconds_buckets();
  /// log10(residual) buckets: -16 .. +4 in steps of 2.
  [[nodiscard]] static std::vector<double> log10_buckets();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  static constexpr int kShards = 8;
  static constexpr int kSlots = 2048;

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<double>[]> slots;
  };

  [[nodiscard]] static int shard_of_thread();
  void add(int slot, double v);
  void gauge_store(int slot, double v);
  void gauge_max(int slot, double v);
  [[nodiscard]] double merged(int slot) const;

  const detail::MetricDef* register_metric(const std::string& name,
                                           const std::string& help, Kind kind,
                                           Stability st,
                                           std::vector<double> bounds);

  mutable std::mutex mu_;  ///< guards defs_/by_name_/next_slot_ (registration)
  // std::deque-like stable storage: handles keep MetricDef pointers.
  std::vector<std::unique_ptr<detail::MetricDef>> defs_;
  std::vector<std::pair<std::string, const detail::MetricDef*>> by_name_;
  int next_slot_{0};
  Shard shards_[kShards];
  std::unique_ptr<std::atomic<double>[]> gauges_;  ///< non-sharded slots
};

/// Sanitize an arbitrary label into a Prometheus-legal metric-name fragment
/// ([a-zA-Z0-9_]; anything else becomes '_').
[[nodiscard]] std::string sanitize_name(const std::string& s);

/// Append `s` to `out` as a quoted JSON string (escapes quotes, backslashes
/// and control characters). Shared by the snapshot exporter and the bench
/// metrics writer.
void append_json_string(std::string& out, const std::string& s);

}  // namespace legate::metrics
