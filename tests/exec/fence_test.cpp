// Fence-point semantics of the deferred (pipelined) execution path: every
// place the control path observes real data must drain the launch queue
// first, so no caller ever sees a torn or stale store.
#include <gtest/gtest.h>

#include <vector>

#include "rt/checkpoint.h"
#include "rt/runtime.h"

namespace legate::rt {
namespace {

sim::Machine gpus(int n) {
  sim::PerfParams pp;
  return sim::Machine::gpus(n, pp);
}

RuntimeOptions threaded(int threads) {
  RuntimeOptions opts;
  opts.exec_threads = threads;
  opts.exec_pipeline = 1;
  return opts;
}

/// One partitioned launch writing i*scale into every element of `s`.
void launch_fill(Runtime& rt, Store& s, double scale) {
  TaskLauncher launch(rt, "fill");
  int out = launch.add_output(s);
  launch.set_leaf([out, scale](TaskContext& ctx) {
    auto y = ctx.full<double>(out);
    Interval iv = ctx.elem_interval(out);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = static_cast<double>(i) * scale;
    ctx.add_cost(static_cast<double>(iv.size()) * 8, 0);
  });
  launch.execute();
}

TEST(Fence, LaunchesDeferUntilExplicitFence) {
  Runtime rt(gpus(4), threaded(4));
  ASSERT_TRUE(rt.pipelining());
  Store s = rt.create_store(DType::F64, {1000});
  launch_fill(rt, s, 1.0);
  launch_fill(rt, s, 2.0);
  EXPECT_EQ(rt.pending_launches(), 2u);
  rt.fence();
  EXPECT_EQ(rt.pending_launches(), 0u);
}

TEST(Fence, SpanAccessDrainsAndSeesFullyWrittenData) {
  Runtime rt(gpus(4), threaded(8));
  Store s = rt.create_store(DType::F64, {10000});
  launch_fill(rt, s, 1.0);
  launch_fill(rt, s, 3.0);
  EXPECT_GT(rt.pending_launches(), 0u);
  // span() is a fence point: both launches drain, and the second one's
  // writes are complete across every point's sub-interval (no torn reads).
  auto sp = s.span<double>();
  EXPECT_EQ(rt.pending_launches(), 0u);
  for (coord_t i = 0; i < 10000; ++i) ASSERT_EQ(sp[i], static_cast<double>(i) * 3.0);
}

TEST(Fence, ScalarFutureReadDrains) {
  Runtime rt(gpus(4), threaded(4));
  Store s = rt.create_store(DType::F64, {1000});
  launch_fill(rt, s, 2.0);
  EXPECT_EQ(rt.pending_launches(), 1u);

  TaskLauncher launch(rt, "sum");
  int in = launch.add_input(s);
  launch.reduce_scalar(ScalarRedop::Sum);
  launch.set_leaf([in](TaskContext& ctx) {
    auto x = ctx.full<double>(in);
    Interval iv = ctx.elem_interval(in);
    double acc = 0;
    for (coord_t i = iv.lo; i < iv.hi; ++i) acc += x[i];
    ctx.add_cost(static_cast<double>(iv.size()) * 8, static_cast<double>(iv.size()));
    ctx.contribute(acc);
  });
  Future f = launch.execute();
  // A scalar-producing launch is itself a fence point: the value must be
  // real, so nothing stays deferred behind it.
  EXPECT_EQ(rt.pending_launches(), 0u);
  ASSERT_TRUE(f.valid);
  EXPECT_DOUBLE_EQ(f.value, 2.0 * (999.0 * 1000.0 / 2.0));
}

TEST(Fence, SimTimeAndStatsAccessorsDrain) {
  Runtime rt(gpus(4), threaded(4));
  Store s = rt.create_store(DType::F64, {1000});
  double t0 = rt.sim_time();
  launch_fill(rt, s, 1.0);
  EXPECT_EQ(rt.pending_launches(), 1u);
  double t1 = rt.sim_time();  // fence point: deferred launch must be charged
  EXPECT_EQ(rt.pending_launches(), 0u);
  EXPECT_GT(t1, t0);

  launch_fill(rt, s, 2.0);
  long tasks_before = rt.engine().stats().tasks;  // engine() fences
  EXPECT_EQ(rt.pending_launches(), 0u);
  EXPECT_GT(tasks_before, 0);
}

TEST(Fence, CheckpointAndRestoreObserveFullData) {
  Runtime rt(gpus(4), threaded(4));
  Store s = rt.create_store(DType::F64, {5000});
  launch_fill(rt, s, 1.0);
  EXPECT_EQ(rt.pending_launches(), 1u);
  Checkpoint ckpt = rt.checkpoint({s});  // fence point
  EXPECT_EQ(rt.pending_launches(), 0u);

  launch_fill(rt, s, 9.0);  // overwrite after the snapshot
  rt.restore(ckpt);         // fence point: drains, then rewrites
  EXPECT_EQ(rt.pending_launches(), 0u);
  auto sp = s.span<double>();
  for (coord_t i = 0; i < 5000; ++i) ASSERT_EQ(sp[i], static_cast<double>(i));
}

TEST(Fence, FaultInjectionDisablesPipelining) {
  // Fault-injection retries must observe launch results at every step, so
  // the runtime never defers with faults enabled.
  RuntimeOptions opts = threaded(4);
  opts.faults.enabled = true;
  opts.faults.task_fault_rate = 0.05;
  opts.faults.seed = 7;
  Runtime rt(gpus(4), opts);
  EXPECT_FALSE(rt.pipelining());
  EXPECT_EQ(rt.exec_threads(), 4);
  Store s = rt.create_store(DType::F64, {1000});
  launch_fill(rt, s, 1.0);
  EXPECT_EQ(rt.pending_launches(), 0u);  // applied eagerly, retries included
  auto sp = s.span<double>();
  for (coord_t i = 0; i < 1000; ++i) ASSERT_EQ(sp[i], static_cast<double>(i));
}

TEST(Fence, PipeliningCanBeDisabledExplicitly) {
  RuntimeOptions opts = threaded(4);
  opts.exec_pipeline = 0;
  Runtime rt(gpus(4), opts);
  EXPECT_FALSE(rt.pipelining());
  EXPECT_EQ(rt.exec_threads(), 4);  // point tasks still run on the pool
  Store s = rt.create_store(DType::F64, {1000});
  launch_fill(rt, s, 4.0);
  // Sequential mode applies launches eagerly; with fusion enabled the one
  // launch sits in the (not yet flushed) fusion window instead.
  EXPECT_EQ(rt.pending_launches(), rt.fusion_enabled() ? 1u : 0u);
  auto sp = s.span<double>();
  for (coord_t i = 0; i < 1000; ++i) ASSERT_EQ(sp[i], static_cast<double>(i) * 4.0);
}

TEST(Fence, RawDependenceChainSurvivesDeferral) {
  // Producer/consumer chain across deferred launches: the consumer's leaf
  // reads what the producer's leaf wrote, even though both are deferred.
  Runtime rt(gpus(4), threaded(4));
  Store a = rt.create_store(DType::F64, {4000});
  Store b = rt.create_store(DType::F64, {4000});
  launch_fill(rt, a, 1.0);
  {
    TaskLauncher launch(rt, "double");
    int in = launch.add_input(a);
    int out = launch.add_output(b);
    launch.align(in, out);
    launch.set_leaf([in, out](TaskContext& ctx) {
      auto x = ctx.full<double>(in);
      auto y = ctx.full<double>(out);
      Interval iv = ctx.elem_interval(out);
      for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = 2.0 * x[i];
      ctx.add_cost(static_cast<double>(iv.size()) * 16, 0);
    });
    launch.execute();
  }
  EXPECT_EQ(rt.pending_launches(), 2u);
  auto sp = b.span<double>();
  for (coord_t i = 0; i < 4000; ++i) ASSERT_EQ(sp[i], static_cast<double>(i) * 2.0);
}

TEST(Fence, DeferredAccountingMatchesEagerBitExactly) {
  // Same program, pipelined vs not: simulated makespans and stats must be
  // bit-identical, because deferred replay re-runs the identical accounting
  // in issue order.
  auto run = [](int pipeline) {
    RuntimeOptions opts;
    opts.exec_threads = 4;
    opts.exec_pipeline = pipeline;
    Runtime rt(gpus(4), opts);
    Store a = rt.create_store(DType::F64, {8192});
    for (int it = 0; it < 6; ++it) launch_fill(rt, a, 1.0 + it);
    rt.fence();
    return std::make_tuple(rt.sim_time(), rt.engine().stats().tasks,
                           rt.engine().stats().copies,
                           rt.engine().stats().bytes_nvlink);
  };
  EXPECT_EQ(run(0), run(1));
}

}  // namespace
}  // namespace legate::rt
