#include "exec/pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace legate::exec {
namespace {

TEST(Pool, SingleThreadRunsInline) {
  Pool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  int ran = 0;
  auto n = pool.submit([&] { ++ran; }, {});
  pool.wait(n);
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(n->done());
}

TEST(Pool, DependenciesOrderExecution) {
  Pool pool(4);
  std::vector<int> order;
  std::mutex mu;
  auto note = [&](int v) {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back(v);
  };
  auto a = pool.submit([&] { note(1); }, {});
  auto b = pool.submit([&] { note(2); }, {a});
  auto c = pool.submit([&] { note(3); }, {b});
  pool.wait(c);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Pool, NullAndFinishedDepsAreSkipped) {
  Pool pool(2);
  auto a = pool.submit([] {}, {});
  pool.wait(a);
  int ran = 0;
  auto b = pool.submit([&] { ++ran; }, {a, nullptr, a});
  pool.wait(b);
  EXPECT_EQ(ran, 1);
}

TEST(Pool, DiamondDependence) {
  Pool pool(4);
  std::atomic<int> stage{0};
  auto top = pool.submit([&] { stage.fetch_add(1); }, {});
  auto left = pool.submit([&] { EXPECT_GE(stage.load(), 1); stage.fetch_add(10); },
                          {top});
  auto right = pool.submit([&] { EXPECT_GE(stage.load(), 1); stage.fetch_add(10); },
                           {top});
  auto bottom = pool.submit([&] { EXPECT_EQ(stage.load(), 21); }, {left, right});
  pool.wait(bottom);
  EXPECT_TRUE(bottom->done());
}

TEST(Pool, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 2, 8}) {
    Pool pool(threads);
    constexpr long kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](long i) { hits[static_cast<std::size_t>(i)]++; });
    for (long i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
  }
}

TEST(Pool, ParallelForPublishesWrites) {
  Pool pool(4);
  constexpr long kN = 4096;
  std::vector<double> out(kN, 0.0);
  // Plain (non-atomic) disjoint writes: parallel_for's completion must
  // publish them to the caller.
  pool.parallel_for(kN, [&](long i) { out[static_cast<std::size_t>(i)] = i * 2.0; });
  for (long i = 0; i < kN; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 2.0);
}

TEST(Pool, NestedParallelForFromTask) {
  // A submitted node may itself run a parallel_for (a pipelined launch's
  // point loop) without deadlocking the worker it runs on.
  Pool pool(2);
  std::atomic<long> sum{0};
  auto n = pool.submit(
      [&] { pool.parallel_for(100, [&](long i) { sum.fetch_add(i); }); }, {});
  pool.wait(n);
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(Pool, WaitAllDrainsEverything) {
  Pool pool(4);
  std::atomic<int> done{0};
  std::vector<NodeRef> nodes;
  NodeRef prev;
  for (int i = 0; i < 64; ++i) {
    prev = pool.submit([&] { done.fetch_add(1); },
                       prev ? std::vector<NodeRef>{prev} : std::vector<NodeRef>{});
    nodes.push_back(prev);
  }
  pool.wait_all();
  EXPECT_EQ(done.load(), 64);
  for (auto& n : nodes) EXPECT_TRUE(n->done());
}

TEST(Pool, ManyIndependentNodesAllComplete) {
  Pool pool(8);
  std::atomic<int> done{0};
  std::vector<NodeRef> nodes;
  nodes.reserve(500);
  for (int i = 0; i < 500; ++i) nodes.push_back(pool.submit([&] { done.fetch_add(1); }, {}));
  for (auto& n : nodes) pool.wait(n);
  EXPECT_EQ(done.load(), 500);
}

}  // namespace
}  // namespace legate::exec
