#include "util/rng.h"

#include <gtest/gtest.h>

namespace legate {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, PerPointStreamsAreDeterministicAndIndependent) {
  // Same (seed, stream) → identical draws; different streams decorrelate.
  Rng a(42, 3), b(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(42, 4), d(42, 0);
  Rng base(42);
  int same_cd = 0, same_d_base = 0;
  for (int i = 0; i < 100; ++i) {
    std::uint64_t vc = c.next_u64(), vd = d.next_u64(), vb = base.next_u64();
    same_cd += vc == vd;
    same_d_base += vd == vb;
  }
  EXPECT_EQ(same_cd, 0);
  EXPECT_EQ(same_d_base, 0);  // stream 0 is not the plain-seed stream
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0, sq = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double x = r.next_normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, ZipfIsSkewedAndBounded) {
  Rng r(15);
  constexpr coord_t kN = 1000;
  int low = 0, total = 20000;
  for (int i = 0; i < total; ++i) {
    coord_t k = r.next_zipf(kN, 1.1);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, kN);
    low += k < kN / 10;
  }
  // Heavy head: far more than 10% of mass in the first decile.
  EXPECT_GT(low, total / 2);
}

}  // namespace
}  // namespace legate
