#include "util/interval.h"

#include <gtest/gtest.h>

namespace legate {
namespace {

TEST(Interval, EmptyBasics) {
  Interval e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.size(), 0);
  Interval iv{3, 3};
  EXPECT_TRUE(iv.empty());
  Interval rev{5, 2};
  EXPECT_TRUE(rev.empty());
}

TEST(Interval, ContainsPoint) {
  Interval iv{2, 7};
  EXPECT_FALSE(iv.contains(1));
  EXPECT_TRUE(iv.contains(2));
  EXPECT_TRUE(iv.contains(6));
  EXPECT_FALSE(iv.contains(7));
}

TEST(Interval, ContainsInterval) {
  Interval iv{2, 7};
  EXPECT_TRUE(iv.contains(Interval{2, 7}));
  EXPECT_TRUE(iv.contains(Interval{3, 5}));
  EXPECT_TRUE(iv.contains(Interval{}));  // empty always contained
  EXPECT_FALSE(iv.contains(Interval{1, 3}));
  EXPECT_FALSE(iv.contains(Interval{6, 8}));
}

TEST(Interval, Overlaps) {
  Interval iv{2, 7};
  EXPECT_TRUE(iv.overlaps({6, 10}));
  EXPECT_FALSE(iv.overlaps({7, 10}));  // touching is not overlapping
  EXPECT_FALSE(iv.overlaps({0, 2}));
  EXPECT_TRUE(iv.overlaps({0, 3}));
  EXPECT_FALSE(iv.overlaps({}));
}

TEST(Interval, Intersect) {
  Interval iv{2, 7};
  EXPECT_EQ(iv.intersect({5, 10}), (Interval{5, 7}));
  EXPECT_TRUE(iv.intersect({7, 10}).empty());
  EXPECT_EQ(iv.intersect({0, 100}), iv);
}

TEST(Interval, SpanUnion) {
  EXPECT_EQ((Interval{2, 4}.span_union({8, 10})), (Interval{2, 10}));
  EXPECT_EQ((Interval{}.span_union({8, 10})), (Interval{8, 10}));
  EXPECT_EQ((Interval{2, 4}.span_union({})), (Interval{2, 4}));
}

TEST(Interval, EqualityTreatsAllEmptyAsEqual) {
  EXPECT_EQ((Interval{3, 3}), (Interval{9, 2}));
  EXPECT_NE((Interval{3, 4}), (Interval{3, 5}));
}

}  // namespace
}  // namespace legate
