#include "util/interval_map.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace legate {
namespace {

TEST(IntervalMap, AssignAndQuery) {
  IntervalMap<int> m;
  m.assign({0, 10}, 1);
  EXPECT_EQ(m.at(0), 1);
  EXPECT_EQ(m.at(9), 1);
  EXPECT_FALSE(m.at(10).has_value());
  EXPECT_FALSE(m.at(-1).has_value());
}

TEST(IntervalMap, OverwriteSplitsSegments) {
  IntervalMap<int> m;
  m.assign({0, 10}, 1);
  m.assign({3, 6}, 2);
  EXPECT_EQ(m.at(2), 1);
  EXPECT_EQ(m.at(3), 2);
  EXPECT_EQ(m.at(5), 2);
  EXPECT_EQ(m.at(6), 1);
  EXPECT_EQ(m.segment_count(), 3u);
}

TEST(IntervalMap, AdjacentEqualValuesMerge) {
  IntervalMap<int> m;
  m.assign({0, 5}, 7);
  m.assign({5, 10}, 7);
  EXPECT_EQ(m.segment_count(), 1u);
  m.assign({10, 20}, 8);
  EXPECT_EQ(m.segment_count(), 2u);
  m.assign({10, 20}, 7);
  EXPECT_EQ(m.segment_count(), 1u);
}

TEST(IntervalMap, EraseMiddle) {
  IntervalMap<int> m;
  m.assign({0, 10}, 1);
  m.erase({4, 6});
  EXPECT_EQ(m.at(3), 1);
  EXPECT_FALSE(m.at(4).has_value());
  EXPECT_FALSE(m.at(5).has_value());
  EXPECT_EQ(m.at(6), 1);
}

TEST(IntervalMap, GapsAndCoverage) {
  IntervalMap<int> m;
  m.assign({2, 4}, 1);
  m.assign({6, 8}, 1);
  std::vector<Interval> gaps;
  m.for_each_gap({0, 10}, [&](Interval iv) { gaps.push_back(iv); });
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (Interval{0, 2}));
  EXPECT_EQ(gaps[1], (Interval{4, 6}));
  EXPECT_EQ(gaps[2], (Interval{8, 10}));
  EXPECT_FALSE(m.covers({0, 10}));
  EXPECT_TRUE(m.covers({2, 4}));
  EXPECT_EQ(m.covered_size({0, 10}), 4);
}

TEST(IntervalMap, ForEachInClipsToRange) {
  IntervalMap<int> m;
  m.assign({0, 100}, 5);
  std::vector<std::pair<Interval, int>> seen;
  m.for_each_in({10, 20}, [&](Interval iv, int v) { seen.emplace_back(iv, v); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, (Interval{10, 20}));
}

TEST(IntervalMap, UpdateReadModifyWrite) {
  IntervalMap<std::uint64_t> m;
  m.assign({0, 5}, 3u);
  // Max-merge 1 over [0, 10): covered piece keeps 3, gap becomes 1.
  m.update({0, 10}, [](Interval, std::optional<std::uint64_t> old) {
    return old ? std::max<std::uint64_t>(*old, 1) : std::uint64_t{1};
  });
  EXPECT_EQ(m.at(2), 3u);
  EXPECT_EQ(m.at(7), 1u);
}

TEST(IntervalMap, SnapshotReturnsOrdered) {
  IntervalMap<int> m;
  m.assign({5, 8}, 2);
  m.assign({0, 3}, 1);
  auto snap = m.snapshot({0, 10});
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].second, 1);
  EXPECT_EQ(snap[1].second, 2);
}

/// Property sweep: compare against a naive per-point model under random
/// assign/erase workloads.
class IntervalMapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalMapProperty, MatchesNaiveModel) {
  constexpr coord_t kDomain = 200;
  Rng rng(GetParam());
  IntervalMap<int> m;
  std::vector<int> naive(kDomain, -1);  // -1 = uncovered

  for (int step = 0; step < 300; ++step) {
    coord_t a = rng.next_coord(0, kDomain);
    coord_t b = rng.next_coord(0, kDomain + 1);
    if (a > b) std::swap(a, b);
    Interval iv{a, b};
    if (rng.next_below(4) == 0) {
      m.erase(iv);
      for (coord_t i = a; i < b; ++i) naive[static_cast<std::size_t>(i)] = -1;
    } else {
      int v = static_cast<int>(rng.next_below(5));
      m.assign(iv, v);
      for (coord_t i = a; i < b; ++i) naive[static_cast<std::size_t>(i)] = v;
    }
  }
  for (coord_t i = 0; i < kDomain; ++i) {
    auto got = m.at(i);
    int expect = naive[static_cast<std::size_t>(i)];
    if (expect == -1) {
      EXPECT_FALSE(got.has_value()) << "at " << i;
    } else {
      ASSERT_TRUE(got.has_value()) << "at " << i;
      EXPECT_EQ(*got, expect) << "at " << i;
    }
  }
  // Segment invariants: disjoint, sorted, merged.
  auto snap = m.snapshot({0, kDomain});
  for (std::size_t k = 1; k < snap.size(); ++k) {
    EXPECT_LE(snap[k - 1].first.hi, snap[k].first.lo);
    if (snap[k - 1].first.hi == snap[k].first.lo) {
      EXPECT_NE(snap[k - 1].second, snap[k].second) << "unmerged equal neighbors";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalMapProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(IntervalSet, Arithmetic) {
  IntervalSet s;
  s.add({0, 10});
  s.subtract({3, 5});
  EXPECT_TRUE(s.contains({0, 3}));
  EXPECT_FALSE(s.contains({2, 4}));
  EXPECT_EQ(s.size_within({0, 10}), 8);
  std::vector<Interval> gaps;
  s.for_each_gap({0, 10}, [&](Interval iv) { gaps.push_back(iv); });
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (Interval{3, 5}));
}

}  // namespace
}  // namespace legate
