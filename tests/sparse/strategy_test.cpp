// Partitioning-strategy tests: nnz-balanced row splits must agree
// bit-for-bit with the default equal splits on every kernel that never
// splits a row, the Auto heuristic must pick the balanced split only for
// skewed matrices, and the edge cases the strategy sweep flushed out
// (rows < colors, empty matrices, out-of-range accessors) must stay fixed.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "oracle.h"
#include "sparse/csr.h"
#include "sparse/formats.h"
#include "util/common.h"

namespace legate::sparse {
namespace {

using dense::DArray;
using testing::HostCsr;
using testing::random_host_csr;
using testing::upload;

/// A deliberately skewed pattern: row 0 is dense, the rest carry a light
/// diagonal — the shape the nnz strategy exists for.
HostCsr hot_row_csr(coord_t n) {
  HostCsr m;
  m.rows = n;
  m.cols = n;
  m.indptr.push_back(0);
  for (coord_t j = 0; j < n; ++j) {
    m.indices.push_back(j);
    m.values.push_back(1.0 + static_cast<double>(j % 7));
  }
  m.indptr.push_back(static_cast<coord_t>(m.indices.size()));
  for (coord_t i = 1; i < n; ++i) {
    m.indices.push_back(i);
    m.values.push_back(2.0 + static_cast<double>(i % 5));
    m.indptr.push_back(static_cast<coord_t>(m.indices.size()));
  }
  return m;
}

class StrategyTest : public ::testing::Test {
 protected:
  StrategyTest() : machine_(sim::Machine::gpus(4, pp_)), rt_(machine_) {}
  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(StrategyTest, SpmvBitIdenticalAcrossStrategies) {
  HostCsr m = hot_row_csr(257);
  CsrMatrix a = upload(rt_, m);
  auto x = DArray::random(rt_, 257, 11);
  a.set_partition_strategy(rt::PartitionStrategy::Rows);
  auto y_rows = a.spmv(x).to_vector();
  a.set_partition_strategy(rt::PartitionStrategy::Nnz);
  auto y_nnz = a.spmv(x).to_vector();
  ASSERT_EQ(y_rows.size(), y_nnz.size());
  // Row-contiguous splits never cut a row, so per-row dot products are the
  // same fp reductions under either strategy: bit identity, not tolerance.
  for (std::size_t i = 0; i < y_rows.size(); ++i)
    EXPECT_EQ(y_rows[i], y_nnz[i]) << "row " << i;
}

TEST_F(StrategyTest, KernelSweepMatchesAcrossStrategies) {
  HostCsr m = random_host_csr(120, 120, 0.08, 29);
  CsrMatrix a = upload(rt_, m);
  auto x = DArray::random(rt_, 120, 3);
  auto d = DArray::random(rt_, 120, 5);
  coord_t k = 5;
  auto bm = DArray::random2d(rt_, 120, k, 7);
  auto cm = DArray::random2d(rt_, k, 120, 9);

  a.set_partition_strategy(rt::PartitionStrategy::Rows);
  auto spmv_r = a.spmv(x).to_vector();
  auto spmm_r = a.spmm(bm).to_vector();
  auto diag_r = a.diagonal().to_vector();
  auto rows_r = a.sum(1).to_vector();
  auto srows_r = a.scale_rows(d).spmv(x).to_vector();
  auto gemm_r = testing::download(a.spgemm(a));
  auto ddmm_r = testing::download(a.sddmm(bm, cm));

  a.set_partition_strategy(rt::PartitionStrategy::Nnz);
  auto spmv_n = a.spmv(x).to_vector();
  auto spmm_n = a.spmm(bm).to_vector();
  auto diag_n = a.diagonal().to_vector();
  auto rows_n = a.sum(1).to_vector();
  auto srows_n = a.scale_rows(d).spmv(x).to_vector();
  auto gemm_n = testing::download(a.spgemm(a));
  auto ddmm_n = testing::download(a.sddmm(bm, cm));

  EXPECT_EQ(spmv_r, spmv_n);
  EXPECT_EQ(spmm_r, spmm_n);
  EXPECT_EQ(diag_r, diag_n);
  EXPECT_EQ(rows_r, rows_n);
  EXPECT_EQ(srows_r, srows_n);
  EXPECT_EQ(gemm_r.indptr, gemm_n.indptr);
  EXPECT_EQ(gemm_r.indices, gemm_n.indices);
  EXPECT_EQ(gemm_r.values, gemm_n.values);
  EXPECT_EQ(ddmm_r.indptr, ddmm_n.indptr);
  EXPECT_EQ(ddmm_r.indices, ddmm_n.indices);
  EXPECT_EQ(ddmm_r.values, ddmm_n.values);
}

TEST_F(StrategyTest, HotRowImbalanceTriggersAuto) {
  CsrMatrix skewed = upload(rt_, hot_row_csr(400));
  // Equal splits put the dense row plus ~100 light rows on color 0: the
  // imbalance ratio is far above the Auto threshold.
  EXPECT_GT(skewed.row_imbalance_ratio(), 1.5);
  skewed.set_partition_strategy(rt::PartitionStrategy::Auto);
  EXPECT_EQ(skewed.partition_strategy(), rt::PartitionStrategy::Nnz);

  // A uniform banded matrix sits at ratio ~1 and stays on row splits.
  HostCsr band = random_host_csr(400, 400, 0.02, 13);
  CsrMatrix uniform = upload(rt_, band);
  uniform.set_partition_strategy(rt::PartitionStrategy::Auto);
  EXPECT_EQ(uniform.partition_strategy(), rt::PartitionStrategy::Rows);
}

TEST_F(StrategyTest, RuntimeOptionSetsTheDefault) {
  rt::RuntimeOptions opts;
  opts.partition = rt::PartitionStrategy::Nnz;
  rt::Runtime rt(machine_, opts);
  EXPECT_EQ(rt.partition_strategy(), rt::PartitionStrategy::Nnz);
  CsrMatrix a = upload(rt, hot_row_csr(64));
  EXPECT_EQ(a.partition_strategy(), rt::PartitionStrategy::Nnz);
  // A per-matrix override wins over the runtime default.
  a.set_partition_strategy(rt::PartitionStrategy::Rows);
  EXPECT_EQ(a.partition_strategy(), rt::PartitionStrategy::Rows);
}

TEST_F(StrategyTest, StrategyCountersAndImbalanceGauge) {
  rt::RuntimeOptions opts;
  opts.partition = rt::PartitionStrategy::Nnz;
  rt::Runtime rt(machine_, opts);
  CsrMatrix a = upload(rt, hot_row_csr(300));
  auto x = DArray::full(rt, 300, 1.0);
  auto y = a.spmv(x);
  rt.fence();
  auto snap = rt.metrics_snapshot();
  const auto* nnz = snap.find("lsr_part_strategy_nnz_total");
  ASSERT_NE(nnz, nullptr);
  EXPECT_GE(nnz->value, 1.0);
  ASSERT_NE(snap.find("lsr_part_imbalance_pct"), nullptr);
  ASSERT_NE(snap.find("lsr_part_max_work"), nullptr);

  // The same program over equal splits books to the rows counter and ends
  // with a worse (or equal) work spread on this skewed matrix.
  rt::Runtime rt2(machine_, rt::RuntimeOptions{});
  CsrMatrix b = upload(rt2, hot_row_csr(300));
  b.set_partition_strategy(rt::PartitionStrategy::Rows);
  auto y2 = b.spmv(DArray::full(rt2, 300, 1.0));
  rt2.fence();
  auto snap2 = rt2.metrics_snapshot();
  const auto* rows = snap2.find("lsr_part_strategy_rows_total");
  ASSERT_NE(rows, nullptr);
  EXPECT_GE(rows->value, 1.0);
}

TEST_F(StrategyTest, BalancedSplitLowersImbalanceGauge) {
  auto run = [&](rt::PartitionStrategy s) {
    rt::Runtime rt(machine_);
    CsrMatrix a = upload(rt, hot_row_csr(1000));
    a.set_partition_strategy(s);
    auto y = a.spmv(DArray::full(rt, 1000, 1.0));
    rt.fence();
    return rt.metrics_snapshot().find("lsr_part_imbalance_pct")->value;
  };
  double imb_rows = run(rt::PartitionStrategy::Rows);
  double imb_nnz = run(rt::PartitionStrategy::Nnz);
  EXPECT_LT(imb_nnz, imb_rows);
}

// --- satellite: rows < colors must degrade to empty subspaces, not UB -----

TEST(StrategyEdge, TinyMatrixOnWideMachine) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(8, pp);
  rt::Runtime rt(m);
  CsrMatrix a = CsrMatrix::from_host(rt, 2, 2, {0, 1, 2}, {0, 1}, {3.0, 4.0});
  auto x = DArray::full(rt, 2, 2.0);
  for (auto s : {rt::PartitionStrategy::Rows, rt::PartitionStrategy::Nnz}) {
    a.set_partition_strategy(s);
    auto y = a.spmv(x).to_vector();
    ASSERT_EQ(y.size(), 2u);
    EXPECT_DOUBLE_EQ(y[0], 6.0);   // not double-counted by empty subspaces
    EXPECT_DOUBLE_EQ(y[1], 8.0);
    EXPECT_DOUBLE_EQ(a.sum(0).to_vector()[0], 3.0);
    EXPECT_DOUBLE_EQ(a.sum_all().value, 7.0);
  }
}

TEST(StrategyEdge, SingleRowMatrixUnderNnz) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(6, pp);
  rt::Runtime rt(m);
  CsrMatrix a =
      CsrMatrix::from_host(rt, 1, 4, {0, 3}, {0, 2, 3}, {1.0, 2.0, 3.0});
  a.set_partition_strategy(rt::PartitionStrategy::Nnz);
  auto y = a.spmv(DArray::full(rt, 4, 1.0)).to_vector();
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
}

// --- satellite: empty-matrix reductions must not read the placeholder -----

class EmptyMatrixTest : public ::testing::Test {
 protected:
  EmptyMatrixTest() : machine_(sim::Machine::gpus(3, pp_)), rt_(machine_) {}
  CsrMatrix empty() {
    return CsrMatrix::from_host(rt_, 4, 5, std::vector<coord_t>(5, 0), {}, {});
  }
  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(EmptyMatrixTest, NormsAndSumsAreZero) {
  CsrMatrix a = empty();
  EXPECT_DOUBLE_EQ(a.norm_fro().value, 0.0);
  EXPECT_DOUBLE_EQ(a.norm_1().value, 0.0);
  EXPECT_DOUBLE_EQ(a.norm_inf().value, 0.0);
  EXPECT_DOUBLE_EQ(a.sum_all().value, 0.0);
  EXPECT_DOUBLE_EQ(a.count_nonzero().value, 0.0);
}

TEST_F(EmptyMatrixTest, PlaceholderNeverLeaksThroughValueOps) {
  // power_values(0) maps the placeholder slot to 0^0 = 1; if any reduction
  // read the placeholder as data, the norms would come out as 1.
  CsrMatrix a = empty().power_values(0.0);
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_DOUBLE_EQ(a.norm_fro().value, 0.0);
  EXPECT_DOUBLE_EQ(a.sum_all().value, 0.0);
  EXPECT_DOUBLE_EQ(a.norm_1().value, 0.0);
}

TEST_F(EmptyMatrixTest, MaxMinThrowDescriptively) {
  CsrMatrix a = empty();
  EXPECT_THROW((void)a.max_value(), std::logic_error);
  EXPECT_THROW((void)a.min_value(), std::logic_error);
}

// --- satellite: accessor bounds checks throw the named error --------------

class BoundsTest : public ::testing::Test {
 protected:
  BoundsTest() : machine_(sim::Machine::gpus(2, pp_)), rt_(machine_) {}
  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(BoundsTest, AccessorsThrowIndexError) {
  CsrMatrix a =
      CsrMatrix::from_host(rt_, 3, 4, {0, 1, 1, 2}, {0, 3}, {1.0, 2.0});
  EXPECT_THROW((void)a.getrow(3), IndexError);
  EXPECT_THROW((void)a.getrow(-1), IndexError);
  EXPECT_THROW((void)a.getcol(4), IndexError);
  EXPECT_THROW((void)a.get(3, 0), IndexError);
  EXPECT_THROW((void)a.get(0, 4), IndexError);
  EXPECT_THROW((void)a.row_slice(0, 5), IndexError);
  EXPECT_THROW((void)a.row_slice(-1, 2), IndexError);
  try {
    (void)a.getrow(7);
    FAIL() << "expected IndexError";
  } catch (const IndexError& e) {
    EXPECT_EQ(e.axis(), "row");
    EXPECT_EQ(e.index(), 7);
    EXPECT_EQ(e.extent(), 3);
  }
  // In-range accessors still work.
  EXPECT_DOUBLE_EQ(a.get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.getrow(2).to_vector()[3], 2.0);
}

}  // namespace
}  // namespace legate::sparse
