#include <gtest/gtest.h>

#include <cmath>

#include "oracle.h"
#include "sparse/csr.h"
#include "sparse/formats.h"

namespace legate::sparse {
namespace {

using dense::DArray;
using testing::HostCsr;
using testing::download;
using testing::random_host_csr;
using testing::upload;

class ExtraTest : public ::testing::Test {
 protected:
  ExtraTest() : machine_(sim::Machine::gpus(3, pp_)), rt_(machine_) {}
  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(ExtraTest, NormsMatchOracle) {
  HostCsr m = random_host_csr(25, 30, 0.2, 1);
  CsrMatrix a = upload(rt_, m);
  double fro = 0;
  std::vector<double> colsum(30, 0), rowsum(25, 0);
  for (coord_t i = 0; i < 25; ++i) {
    for (coord_t j = m.indptr[static_cast<std::size_t>(i)];
         j < m.indptr[static_cast<std::size_t>(i) + 1]; ++j) {
      double v = m.values[static_cast<std::size_t>(j)];
      fro += v * v;
      rowsum[static_cast<std::size_t>(i)] += std::fabs(v);
      colsum[static_cast<std::size_t>(m.indices[static_cast<std::size_t>(j)])] +=
          std::fabs(v);
    }
  }
  EXPECT_NEAR(a.norm_fro().value, std::sqrt(fro), 1e-12);
  EXPECT_NEAR(a.norm_1().value, *std::max_element(colsum.begin(), colsum.end()),
              1e-12);
  EXPECT_NEAR(a.norm_inf().value, *std::max_element(rowsum.begin(), rowsum.end()),
              1e-12);
}

TEST_F(ExtraTest, MaxMinValues) {
  CsrMatrix a = CsrMatrix::from_host(rt_, 2, 2, {0, 2, 3}, {0, 1, 0}, {-4, 2, 7});
  EXPECT_DOUBLE_EQ(a.max_value().value, 7.0);
  EXPECT_DOUBLE_EQ(a.min_value().value, -4.0);
}

TEST_F(ExtraTest, CountNonzeroIgnoresStoredZeros) {
  CsrMatrix a = CsrMatrix::from_host(rt_, 2, 2, {0, 2, 3}, {0, 1, 0}, {0.0, 2, 7});
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.count_nonzero().value, 2.0);
}

TEST_F(ExtraTest, MeanIsScaledSum) {
  HostCsr m = random_host_csr(10, 20, 0.3, 2);
  CsrMatrix a = upload(rt_, m);
  auto mean1 = a.mean(1).to_vector();
  auto sum1 = a.sum(1).to_vector();
  for (std::size_t i = 0; i < mean1.size(); ++i)
    EXPECT_NEAR(mean1[i], sum1[i] / 20.0, 1e-12);
}

TEST_F(ExtraTest, TrilTriuPartitionMatrix) {
  HostCsr m = random_host_csr(20, 20, 0.3, 3);
  CsrMatrix a = upload(rt_, m);
  CsrMatrix lo = a.tril(-1);   // strictly below
  CsrMatrix di = a.tril(0).triu(0);  // the diagonal only
  CsrMatrix up = a.triu(1);    // strictly above
  EXPECT_EQ(lo.nnz() + di.nnz() + up.nnz(), a.nnz());
  // Reassembling gives back the original values.
  CsrMatrix re = lo.add(di).add(up);
  HostCsr h1 = download(a), h2 = download(re);
  EXPECT_EQ(h1.indptr, h2.indptr);
  EXPECT_EQ(h1.indices, h2.indices);
  for (std::size_t i = 0; i < h1.values.size(); ++i)
    EXPECT_NEAR(h1.values[i], h2.values[i], 1e-12);
  // Structure checks.
  HostCsr hlo = download(lo);
  for (coord_t i = 0; i < 20; ++i)
    for (coord_t j = hlo.indptr[static_cast<std::size_t>(i)];
         j < hlo.indptr[static_cast<std::size_t>(i) + 1]; ++j)
      EXPECT_LT(hlo.indices[static_cast<std::size_t>(j)], i);
}

TEST_F(ExtraTest, GetRowColElement) {
  HostCsr m = random_host_csr(15, 12, 0.3, 4);
  CsrMatrix a = upload(rt_, m);
  auto dense = m.todense();
  auto row3 = a.getrow(3).to_vector();
  for (coord_t j = 0; j < 12; ++j)
    EXPECT_DOUBLE_EQ(row3[static_cast<std::size_t>(j)],
                     dense[static_cast<std::size_t>(3 * 12 + j)]);
  auto col5 = a.getcol(5).to_vector();
  for (coord_t i = 0; i < 15; ++i)
    EXPECT_DOUBLE_EQ(col5[static_cast<std::size_t>(i)],
                     dense[static_cast<std::size_t>(i * 12 + 5)]);
  for (coord_t i = 0; i < 15; ++i)
    for (coord_t j = 0; j < 12; ++j)
      EXPECT_DOUBLE_EQ(a.get(i, j), dense[static_cast<std::size_t>(i * 12 + j)]);
}

TEST_F(ExtraTest, WithDiagonalReplacesDiag) {
  CsrMatrix a = diags(rt_, 10, {{-1, 1.0}, {0, 2.0}, {1, 1.0}});
  auto d = DArray::arange(rt_, 10);
  CsrMatrix b = a.with_diagonal(d);
  auto got = b.diagonal().to_vector();
  for (coord_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(i)], static_cast<double>(i));
  // Off-diagonal untouched.
  EXPECT_DOUBLE_EQ(b.get(3, 4), 1.0);
}

TEST_F(ExtraTest, VstackHstack) {
  HostCsr m1 = random_host_csr(4, 6, 0.4, 5);
  HostCsr m2 = random_host_csr(3, 6, 0.4, 6);
  CsrMatrix v = vstack({upload(rt_, m1), upload(rt_, m2)});
  EXPECT_EQ(v.rows(), 7);
  EXPECT_EQ(v.cols(), 6);
  auto dv = download(v).todense();
  auto d1 = m1.todense(), d2 = m2.todense();
  for (std::size_t i = 0; i < d1.size(); ++i) EXPECT_DOUBLE_EQ(dv[i], d1[i]);
  for (std::size_t i = 0; i < d2.size(); ++i)
    EXPECT_DOUBLE_EQ(dv[d1.size() + i], d2[i]);

  HostCsr m3 = random_host_csr(4, 5, 0.4, 7);
  CsrMatrix h = hstack({upload(rt_, m1), upload(rt_, m3)});
  EXPECT_EQ(h.rows(), 4);
  EXPECT_EQ(h.cols(), 11);
  auto dh = download(h).todense();
  auto d3 = m3.todense();
  for (coord_t i = 0; i < 4; ++i) {
    for (coord_t j = 0; j < 6; ++j)
      EXPECT_DOUBLE_EQ(dh[static_cast<std::size_t>(i * 11 + j)],
                       d1[static_cast<std::size_t>(i * 6 + j)]);
    for (coord_t j = 0; j < 5; ++j)
      EXPECT_DOUBLE_EQ(dh[static_cast<std::size_t>(i * 11 + 6 + j)],
                       d3[static_cast<std::size_t>(i * 5 + j)]);
  }
}

TEST_F(ExtraTest, BlockDiag) {
  CsrMatrix a = eye(rt_, 3, 2.0);
  CsrMatrix b = eye(rt_, 2, 5.0);
  CsrMatrix d = block_diag({a, b});
  EXPECT_EQ(d.rows(), 5);
  EXPECT_EQ(d.cols(), 5);
  auto diag = d.diagonal().to_vector();
  EXPECT_EQ(diag, (std::vector<double>{2, 2, 2, 5, 5}));
  EXPECT_DOUBLE_EQ(d.get(0, 3), 0.0);
}

TEST_F(ExtraTest, BsrRoundTripAndSpmv) {
  // Matrix with clustered blocks: banded with half-bandwidth 3, block 4.
  CsrMatrix a = banded(rt_, 32, 3, 1.5);
  BsrMatrix b = BsrMatrix::from_csr(a, 4);
  EXPECT_EQ(b.block_size(), 4);
  EXPECT_EQ(b.block_rows(), 8);
  EXPECT_GT(b.nnz_blocks(), 0);
  // Round trip drops the zero fill.
  HostCsr h1 = download(a), h2 = download(b.tocsr());
  EXPECT_EQ(h1.indptr, h2.indptr);
  EXPECT_EQ(h1.indices, h2.indices);
  EXPECT_EQ(h1.values, h2.values);
  // SpMV agreement (BSR result is (brows x bs)-shaped; flattened identical).
  auto x = DArray::random(rt_, 32, 8);
  auto y1 = a.spmv(x).to_vector();
  auto y2 = b.spmv(x).to_vector();
  ASSERT_EQ(y2.size(), y1.size());
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y2[i], y1[i], 1e-12);
}

TEST_F(ExtraTest, BsrRandomMatrixSpmv) {
  HostCsr m = random_host_csr(24, 24, 0.2, 9);
  CsrMatrix a = upload(rt_, m);
  BsrMatrix b = BsrMatrix::from_csr(a, 3);
  auto x = DArray::random(rt_, 24, 10);
  auto ref = m.spmv(x.to_vector());
  auto got = b.spmv(x).to_vector();
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(got[i], ref[i], 1e-12);
}

TEST_F(ExtraTest, BsrDuplicateBlockCoalescing) {
  // Two CSR entries in the same block must land in one block.
  CsrMatrix a = CsrMatrix::from_host(rt_, 4, 4, {0, 2, 2, 2, 2}, {0, 1}, {1, 2});
  BsrMatrix b = BsrMatrix::from_csr(a, 2);
  EXPECT_EQ(b.nnz_blocks(), 1);
}

}  // namespace
}  // namespace legate::sparse
