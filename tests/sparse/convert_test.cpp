#include <gtest/gtest.h>

#include "oracle.h"
#include "sparse/csr.h"
#include "sparse/formats.h"

namespace legate::sparse {
namespace {

using dense::DArray;
using testing::HostCsr;
using testing::download;
using testing::random_host_csr;
using testing::upload;

class ConvertTest : public ::testing::Test {
 protected:
  ConvertTest() : machine_(sim::Machine::gpus(3, pp_)), rt_(machine_) {}
  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(ConvertTest, CsrCooRoundTrip) {
  HostCsr h = random_host_csr(21, 17, 0.25, 1);
  CsrMatrix a = upload(rt_, h);
  CooMatrix coo = a.tocoo();
  EXPECT_EQ(coo.nnz(), a.nnz());
  CsrMatrix back = coo.tocsr();
  HostCsr hb = download(back);
  EXPECT_EQ(hb.indptr, h.indptr);
  EXPECT_EQ(hb.indices, h.indices);
  EXPECT_EQ(hb.values, h.values);
}

TEST_F(ConvertTest, CooSumsDuplicates) {
  CooMatrix coo = CooMatrix::from_host(rt_, 3, 3, {0, 0, 2, 2, 2}, {1, 1, 0, 2, 0},
                                       {1.0, 2.0, 5.0, 7.0, 3.0});
  CsrMatrix a = coo.tocsr();
  EXPECT_EQ(a.nnz(), 3);
  HostCsr h = download(a);
  EXPECT_EQ(h.indices, (std::vector<coord_t>{1, 0, 2}));
  EXPECT_EQ(h.values, (std::vector<double>{3.0, 8.0, 7.0}));
}

TEST_F(ConvertTest, CooSpmvMatchesCsr) {
  HostCsr h = random_host_csr(33, 27, 0.2, 2);
  CsrMatrix a = upload(rt_, h);
  auto x = DArray::random(rt_, 27, 3);
  auto y_csr = a.spmv(x).to_vector();
  auto y_coo = a.tocoo().spmv(x).to_vector();
  for (std::size_t i = 0; i < y_csr.size(); ++i)
    EXPECT_NEAR(y_coo[i], y_csr[i], 1e-12);
}

TEST_F(ConvertTest, CooTransposeSwapsCoordinates) {
  HostCsr h = random_host_csr(10, 20, 0.2, 4);
  CsrMatrix a = upload(rt_, h);
  CooMatrix t = a.tocoo().transpose();
  EXPECT_EQ(t.rows(), 20);
  EXPECT_EQ(t.cols(), 10);
  auto x = DArray::random(rt_, 10, 5);
  auto y = t.spmv(x).to_vector();
  // Oracle: yᵀ[j] = Σ_i A(i,j) x[i]
  std::vector<double> ref(20, 0.0);
  auto xv = x.to_vector();
  for (coord_t i = 0; i < 10; ++i)
    for (coord_t j = h.indptr[static_cast<std::size_t>(i)];
         j < h.indptr[static_cast<std::size_t>(i) + 1]; ++j)
      ref[static_cast<std::size_t>(h.indices[static_cast<std::size_t>(j)])] +=
          h.values[static_cast<std::size_t>(j)] * xv[static_cast<std::size_t>(i)];
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
}

TEST_F(ConvertTest, CscSpmvMatchesCsr) {
  HostCsr h = random_host_csr(26, 31, 0.2, 6);
  CsrMatrix a = upload(rt_, h);
  CscMatrix csc = a.tocsc();
  EXPECT_EQ(csc.nnz(), a.nnz());
  auto x = DArray::random(rt_, 31, 7);
  auto y1 = a.spmv(x).to_vector();
  auto y2 = csc.spmv(x).to_vector();
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y2[i], y1[i], 1e-12);
}

TEST_F(ConvertTest, CscToCsrRoundTrip) {
  HostCsr h = random_host_csr(19, 23, 0.25, 8);
  CsrMatrix a = upload(rt_, h);
  CsrMatrix back = a.tocsc().tocsr();
  HostCsr hb = download(back);
  EXPECT_EQ(hb.indptr, h.indptr);
  EXPECT_EQ(hb.indices, h.indices);
  EXPECT_EQ(hb.values, h.values);
}

TEST_F(ConvertTest, TransposeInvolution) {
  HostCsr h = random_host_csr(15, 28, 0.2, 9);
  CsrMatrix a = upload(rt_, h);
  CsrMatrix t = a.transpose();
  EXPECT_EQ(t.rows(), 28);
  EXPECT_EQ(t.cols(), 15);
  CsrMatrix tt = t.transpose();
  HostCsr hb = download(tt);
  EXPECT_EQ(hb.indptr, h.indptr);
  EXPECT_EQ(hb.indices, h.indices);
  EXPECT_EQ(hb.values, h.values);
}

TEST_F(ConvertTest, TransposeSpmvIsAdjoint) {
  // <A x, y> == <x, Aᵀ y>
  HostCsr h = random_host_csr(22, 18, 0.25, 10);
  CsrMatrix a = upload(rt_, h);
  auto x = DArray::random(rt_, 18, 11);
  auto y = DArray::random(rt_, 22, 12);
  double lhs = a.spmv(x).dot(y).value;
  double rhs = x.dot(a.transpose().spmv(y)).value;
  EXPECT_NEAR(lhs, rhs, 1e-10);
}

TEST_F(ConvertTest, DiaRoundTripAndSpmv) {
  // Tridiagonal matrix exercises DIA cleanly.
  CsrMatrix a = diags(rt_, 40, {{-1, 1.0}, {0, -2.0}, {1, 1.0}});
  DiaMatrix d = a.todia();
  EXPECT_EQ(d.offsets(), (std::vector<coord_t>{-1, 0, 1}));
  auto x = DArray::random(rt_, 40, 13);
  auto y1 = a.spmv(x).to_vector();
  auto y2 = d.spmv(x).to_vector();
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y2[i], y1[i], 1e-12);
  // DIA -> CSR keeps in-band explicit entries; prune to compare patterns.
  CsrMatrix back = d.tocsr().prune(0.0);
  HostCsr h1 = download(a), h2 = download(back);
  EXPECT_EQ(h1.indptr, h2.indptr);
  EXPECT_EQ(h1.indices, h2.indices);
  EXPECT_EQ(h1.values, h2.values);
}

TEST_F(ConvertTest, DiaSpmvRectangularBands) {
  HostCsr h = random_host_csr(12, 12, 0.35, 14);
  CsrMatrix a = upload(rt_, h);
  DiaMatrix d = a.todia();
  auto x = DArray::random(rt_, 12, 15);
  auto y1 = a.spmv(x).to_vector();
  auto y2 = d.spmv(x).to_vector();
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y2[i], y1[i], 1e-12);
}

}  // namespace
}  // namespace legate::sparse
