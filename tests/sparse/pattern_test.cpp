#include <gtest/gtest.h>

#include <cmath>

#include "oracle.h"
#include "sparse/csr.h"
#include "sparse/formats.h"

namespace legate::sparse {
namespace {

using dense::DArray;
using testing::HostCsr;
using testing::dense_matmul;
using testing::download;
using testing::random_host_csr;
using testing::upload;

class PatternTest : public ::testing::Test {
 protected:
  PatternTest() : machine_(sim::Machine::gpus(3, pp_)), rt_(machine_) {}
  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

void expect_dense_eq(const HostCsr& got, const std::vector<double>& ref,
                     coord_t rows, coord_t cols, double tol = 1e-12) {
  auto dense = got.todense();
  ASSERT_EQ(dense.size(), static_cast<std::size_t>(rows * cols));
  for (std::size_t i = 0; i < dense.size(); ++i)
    ASSERT_NEAR(dense[i], ref[i], tol) << "at flat index " << i;
}

void expect_sorted_unique_columns(const HostCsr& m) {
  for (coord_t i = 0; i < m.rows; ++i) {
    for (coord_t j = m.indptr[static_cast<std::size_t>(i)] + 1;
         j < m.indptr[static_cast<std::size_t>(i) + 1]; ++j) {
      ASSERT_LT(m.indices[static_cast<std::size_t>(j - 1)],
                m.indices[static_cast<std::size_t>(j)])
          << "row " << i << " not sorted/unique";
    }
  }
}

TEST_F(PatternTest, SpgemmMatchesDenseOracle) {
  HostCsr ha = random_host_csr(20, 15, 0.2, 1);
  HostCsr hb = random_host_csr(15, 25, 0.2, 2);
  CsrMatrix c = upload(rt_, ha).spgemm(upload(rt_, hb));
  EXPECT_EQ(c.rows(), 20);
  EXPECT_EQ(c.cols(), 25);
  auto ref = dense_matmul(ha.todense(), hb.todense(), 20, 15, 25);
  HostCsr hc = download(c);
  expect_dense_eq(hc, ref, 20, 25);
  expect_sorted_unique_columns(hc);
}

TEST_F(PatternTest, SpgemmWithIdentityIsNoop) {
  HostCsr ha = random_host_csr(18, 18, 0.2, 3);
  CsrMatrix a = upload(rt_, ha);
  CsrMatrix c = a.spgemm(eye(rt_, 18));
  HostCsr hc = download(c);
  expect_dense_eq(hc, ha.todense(), 18, 18);
}

TEST_F(PatternTest, SpgemmEmptyOperand) {
  CsrMatrix zero = CsrMatrix::from_host(rt_, 10, 10,
                                        std::vector<coord_t>(11, 0), {}, {});
  HostCsr ha = random_host_csr(10, 10, 0.3, 4);
  CsrMatrix c = upload(rt_, ha).spgemm(zero);
  EXPECT_EQ(c.nnz(), 0);
}

TEST_F(PatternTest, AddMatchesOracle) {
  HostCsr ha = random_host_csr(30, 22, 0.15, 5);
  HostCsr hb = random_host_csr(30, 22, 0.15, 6);
  CsrMatrix c = upload(rt_, ha).add(upload(rt_, hb));
  auto da = ha.todense();
  auto db = hb.todense();
  for (std::size_t i = 0; i < da.size(); ++i) da[i] += db[i];
  HostCsr hc = download(c);
  expect_dense_eq(hc, da, 30, 22);
  expect_sorted_unique_columns(hc);
}

TEST_F(PatternTest, SubMatchesOracle) {
  HostCsr ha = random_host_csr(12, 12, 0.3, 7);
  HostCsr hb = random_host_csr(12, 12, 0.3, 8);
  CsrMatrix c = upload(rt_, ha).sub(upload(rt_, hb));
  auto da = ha.todense();
  auto db = hb.todense();
  for (std::size_t i = 0; i < da.size(); ++i) da[i] -= db[i];
  expect_dense_eq(download(c), da, 12, 12);
}

TEST_F(PatternTest, SubtractSelfIsStructurallyZero) {
  HostCsr ha = random_host_csr(16, 16, 0.25, 9);
  CsrMatrix a = upload(rt_, ha);
  CsrMatrix d = a.sub(a);
  // Pattern survives (a - a keeps the union pattern) but values vanish.
  HostCsr hd = download(d);
  for (double v : hd.values) EXPECT_DOUBLE_EQ(v, 0.0);
  // prune() then removes them.
  EXPECT_EQ(d.prune().nnz(), 0);
}

TEST_F(PatternTest, MultiplyKeepsIntersection) {
  HostCsr ha = random_host_csr(20, 20, 0.3, 10);
  HostCsr hb = random_host_csr(20, 20, 0.3, 11);
  CsrMatrix c = upload(rt_, ha).multiply(upload(rt_, hb));
  auto da = ha.todense();
  auto db = hb.todense();
  for (std::size_t i = 0; i < da.size(); ++i) da[i] *= db[i];
  expect_dense_eq(download(c), da, 20, 20);
}

TEST_F(PatternTest, AddIsCommutativeInValues) {
  HostCsr ha = random_host_csr(14, 9, 0.3, 12);
  HostCsr hb = random_host_csr(14, 9, 0.3, 13);
  CsrMatrix ab = upload(rt_, ha).add(upload(rt_, hb));
  CsrMatrix ba = upload(rt_, hb).add(upload(rt_, ha));
  HostCsr h1 = download(ab), h2 = download(ba);
  EXPECT_EQ(h1.indptr, h2.indptr);
  EXPECT_EQ(h1.indices, h2.indices);
  for (std::size_t i = 0; i < h1.values.size(); ++i)
    EXPECT_NEAR(h1.values[i], h2.values[i], 1e-12);
}

TEST_F(PatternTest, PruneDropsSmallEntries) {
  std::vector<coord_t> indptr{0, 2, 4};
  std::vector<coord_t> indices{0, 1, 0, 1};
  std::vector<double> values{1.0, 1e-9, 0.0, 2.0};
  CsrMatrix a = CsrMatrix::from_host(rt_, 2, 2, indptr, indices, values);
  CsrMatrix p0 = a.prune();  // drops exact zeros only
  EXPECT_EQ(p0.nnz(), 3);
  CsrMatrix p1 = a.prune(1e-6);
  EXPECT_EQ(p1.nnz(), 2);
  HostCsr hp = download(p1);
  EXPECT_EQ(hp.values, (std::vector<double>{1.0, 2.0}));
}

TEST_F(PatternTest, FromDenseRoundTrip) {
  HostCsr ha = random_host_csr(11, 13, 0.3, 14);
  CsrMatrix a = upload(rt_, ha);
  CsrMatrix b = csr_from_dense(a.todense());
  HostCsr h1 = download(a), h2 = download(b);
  EXPECT_EQ(h1.indptr, h2.indptr);
  EXPECT_EQ(h1.indices, h2.indices);
  for (std::size_t i = 0; i < h1.values.size(); ++i)
    EXPECT_NEAR(h1.values[i], h2.values[i], 1e-12);
}

/// SpGEMM across processor counts: partitioning must not change results.
class SpgemmSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpgemmSweep, PartitionIndependent) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(GetParam(), pp);
  rt::Runtime rt(m);
  HostCsr ha = random_host_csr(40, 40, 0.1, 20);
  HostCsr hb = random_host_csr(40, 40, 0.1, 21);
  CsrMatrix c = upload(rt, ha).spgemm(upload(rt, hb));
  auto ref = dense_matmul(ha.todense(), hb.todense(), 40, 40, 40);
  expect_dense_eq(download(c), ref, 40, 40);
}

INSTANTIATE_TEST_SUITE_P(Procs, SpgemmSweep, ::testing::Values(1, 2, 5, 12));

}  // namespace
}  // namespace legate::sparse
