#include <gtest/gtest.h>

#include "oracle.h"
#include "sparse/csr.h"
#include "sparse/formats.h"

namespace legate::sparse {
namespace {

using dense::DArray;
using testing::HostCsr;
using testing::download;

class ConstructTest : public ::testing::Test {
 protected:
  ConstructTest() : machine_(sim::Machine::gpus(2, pp_)), rt_(machine_) {}
  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(ConstructTest, EyeIsIdentityUnderSpmv) {
  CsrMatrix i = eye(rt_, 25);
  EXPECT_EQ(i.nnz(), 25);
  auto x = DArray::random(rt_, 25, 1);
  auto y = i.spmv(x);
  EXPECT_EQ(y.to_vector(), x.to_vector());
}

TEST_F(ConstructTest, EyeScaled) {
  CsrMatrix i = eye(rt_, 10, 3.0);
  auto d = i.diagonal().to_vector();
  for (double v : d) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST_F(ConstructTest, BandedShape) {
  CsrMatrix b = banded(rt_, 100, 5, 1.0);
  // Interior rows have 11 entries; boundary rows fewer.
  auto counts = b.row_nnz().to_vector();
  EXPECT_DOUBLE_EQ(counts[50], 11.0);
  EXPECT_DOUBLE_EQ(counts[0], 6.0);
  EXPECT_DOUBLE_EQ(counts[99], 6.0);
  // Symmetric: <Ax,y> == <x,Ay>.
  auto x = DArray::random(rt_, 100, 2);
  auto y = DArray::random(rt_, 100, 3);
  EXPECT_NEAR(b.spmv(x).dot(y).value, x.dot(b.spmv(y)).value, 1e-9);
}

TEST_F(ConstructTest, DiagsBuildsPoisson1d) {
  CsrMatrix t = diags(rt_, 50, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
  auto ones = DArray::full(rt_, 50, 1.0);
  auto y = t.spmv(ones).to_vector();
  EXPECT_DOUBLE_EQ(y[0], 1.0);   // 2 - 1
  EXPECT_DOUBLE_EQ(y[25], 0.0);  // -1 + 2 - 1
  EXPECT_DOUBLE_EQ(y[49], 1.0);
}

TEST_F(ConstructTest, RandomCsrDensity) {
  CsrMatrix r = random_csr(rt_, 200, 200, 0.1, 42);
  double density = static_cast<double>(r.nnz()) / (200.0 * 200.0);
  EXPECT_NEAR(density, 0.1, 0.02);
  HostCsr h = download(r);
  for (coord_t c : h.indices) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 200);
  }
  for (double v : h.values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST_F(ConstructTest, RandomCsrDeterministic) {
  HostCsr a = download(random_csr(rt_, 50, 50, 0.2, 7));
  HostCsr b = download(random_csr(rt_, 50, 50, 0.2, 7));
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.values, b.values);
}

TEST_F(ConstructTest, KronWithIdentity) {
  CsrMatrix t = diags(rt_, 4, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
  CsrMatrix i = eye(rt_, 3);
  CsrMatrix k = kron(i, t);
  EXPECT_EQ(k.rows(), 12);
  EXPECT_EQ(k.cols(), 12);
  EXPECT_EQ(k.nnz(), 3 * t.nnz());
  // Block-diagonal: spmv acts like t on each block.
  auto x = DArray::random(rt_, 12, 9);
  auto y = k.spmv(x).to_vector();
  auto xv = x.to_vector();
  HostCsr ht = download(t);
  for (int blk = 0; blk < 3; ++blk) {
    std::vector<double> xb(xv.begin() + blk * 4, xv.begin() + (blk + 1) * 4);
    auto yb = ht.spmv(xb);
    for (int i2 = 0; i2 < 4; ++i2)
      EXPECT_NEAR(y[static_cast<std::size_t>(blk * 4 + i2)],
                  yb[static_cast<std::size_t>(i2)], 1e-12);
  }
}

TEST_F(ConstructTest, Poisson2dViaKron) {
  // A = kron(I, T) + kron(T, I) is the standard 5-point Laplacian.
  constexpr coord_t g = 5;
  CsrMatrix t = diags(rt_, g, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
  CsrMatrix i = eye(rt_, g);
  CsrMatrix a = kron(i, t).add(kron(t, i));
  EXPECT_EQ(a.rows(), g * g);
  auto d = a.diagonal().to_vector();
  for (double v : d) EXPECT_DOUBLE_EQ(v, 4.0);
  // Interior row has 5 entries.
  auto counts = a.row_nnz().to_vector();
  EXPECT_DOUBLE_EQ(counts[static_cast<std::size_t>(g * 2 + 2)], 5.0);
}

}  // namespace
}  // namespace legate::sparse
