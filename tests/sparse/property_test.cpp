// Property sweeps across formats, shapes and seeds: every format's SpMV
// agrees with the host oracle, conversion chains are lossless, and algebraic
// identities hold under arbitrary partitioning.
#include <gtest/gtest.h>

#include <cmath>

#include "oracle.h"
#include "sparse/csr.h"
#include "sparse/formats.h"

namespace legate::sparse {
namespace {

using dense::DArray;
using testing::HostCsr;
using testing::download;
using testing::random_host_csr;
using testing::upload;

struct SweepParam {
  int procs;
  coord_t rows, cols;
  double density;
  std::uint64_t seed;
};

class FormatSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  FormatSweep()
      : machine_(sim::Machine::gpus(GetParam().procs, pp_)), rt_(machine_) {}
  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_P(FormatSweep, AllFormatsAgreeOnSpmv) {
  auto [procs, rows, cols, density, seed] = GetParam();
  HostCsr h = random_host_csr(rows, cols, density, seed);
  CsrMatrix a = upload(rt_, h);
  auto x = DArray::random(rt_, cols, seed + 1);
  auto ref = h.spmv(x.to_vector());

  auto check = [&](const std::vector<double>& got, const char* what) {
    ASSERT_EQ(got.size(), ref.size()) << what;
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_NEAR(got[i], ref[i], 1e-11) << what << " row " << i;
  };
  check(a.spmv(x).to_vector(), "csr");
  check(a.tocoo().spmv(x).to_vector(), "coo");
  check(a.tocsc().spmv(x).to_vector(), "csc");
  check(a.todia().spmv(x).to_vector(), "dia");
  if (rows % 4 == 0 && cols % 4 == 0) {
    check(BsrMatrix::from_csr(a, 4).spmv(x).to_vector(), "bsr");
  }
}

TEST_P(FormatSweep, ConversionChainIsLossless) {
  auto [procs, rows, cols, density, seed] = GetParam();
  HostCsr h = random_host_csr(rows, cols, density, seed);
  CsrMatrix a = upload(rt_, h);
  // csr -> coo -> csr -> csc -> csr -> dia -> csr(pruned like the original)
  CsrMatrix b = a.tocoo().tocsr().tocsc().tocsr().todia().tocsr().prune(0.0);
  HostCsr hb = download(b);
  EXPECT_EQ(hb.indptr, h.indptr);
  EXPECT_EQ(hb.indices, h.indices);
  EXPECT_EQ(hb.values, h.values);
}

TEST_P(FormatSweep, AlgebraicIdentities) {
  auto [procs, rows, cols, density, seed] = GetParam();
  HostCsr h = random_host_csr(rows, cols, density, seed);
  CsrMatrix a = upload(rt_, h);
  auto x = DArray::random(rt_, cols, seed + 2);

  // (2A)x == 2(Ax)
  auto lhs = a.scale(2.0).spmv(x).to_vector();
  auto rhs = a.spmv(x).scale(2.0).to_vector();
  for (std::size_t i = 0; i < lhs.size(); ++i) ASSERT_NEAR(lhs[i], rhs[i], 1e-11);

  // (A + A)x == 2(Ax)
  auto sum = a.add(a).spmv(x).to_vector();
  for (std::size_t i = 0; i < sum.size(); ++i) ASSERT_NEAR(sum[i], rhs[i], 1e-11);

  // (A - A) pruned is empty
  EXPECT_EQ(a.sub(a).prune().nnz(), 0);

  // A ⊙ A == values squared on the same pattern
  HostCsr sq = download(a.multiply(a));
  for (std::size_t i = 0; i < sq.values.size(); ++i)
    ASSERT_NEAR(sq.values[i], h.values[i] * h.values[i], 1e-12);

  // (Aᵀ)ᵀ x == A x
  auto tt = a.transpose().transpose().spmv(x).to_vector();
  auto ax = a.spmv(x).to_vector();
  for (std::size_t i = 0; i < tt.size(); ++i) ASSERT_NEAR(tt[i], ax[i], 1e-12);
}

TEST_P(FormatSweep, SpgemmAssociatesWithSpmv) {
  auto [procs, rows, cols, density, seed] = GetParam();
  // (A B) x == A (B x) for square operands.
  coord_t n = rows;
  HostCsr ha = random_host_csr(n, n, density, seed);
  HostCsr hb = random_host_csr(n, n, density, seed + 7);
  CsrMatrix a = upload(rt_, ha), b = upload(rt_, hb);
  auto x = DArray::random(rt_, n, seed + 3);
  auto lhs = a.spgemm(b).spmv(x).to_vector();
  auto rhs = a.spmv(b.spmv(x)).to_vector();
  for (std::size_t i = 0; i < lhs.size(); ++i) ASSERT_NEAR(lhs[i], rhs[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FormatSweep,
    ::testing::Values(SweepParam{1, 16, 16, 0.3, 1}, SweepParam{2, 32, 24, 0.2, 2},
                      SweepParam{3, 48, 48, 0.1, 3}, SweepParam{5, 40, 64, 0.15, 4},
                      SweepParam{8, 64, 64, 0.08, 5}, SweepParam{16, 96, 96, 0.05, 6},
                      SweepParam{4, 20, 20, 0.5, 7}, SweepParam{6, 128, 32, 0.1, 8}));

}  // namespace
}  // namespace legate::sparse
