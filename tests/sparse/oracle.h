#pragma once

// Host-side reference implementations used as test oracles for the
// distributed sparse library. Everything here is deliberately naive.

#include <map>
#include <vector>

#include "sparse/csr.h"
#include "sparse/formats.h"
#include "util/rng.h"

namespace legate::sparse::testing {

/// Naive host CSR triple.
struct HostCsr {
  coord_t rows{0}, cols{0};
  std::vector<coord_t> indptr, indices;
  std::vector<double> values;

  [[nodiscard]] std::vector<double> spmv(const std::vector<double>& x) const {
    std::vector<double> y(static_cast<std::size_t>(rows), 0.0);
    for (coord_t i = 0; i < rows; ++i)
      for (coord_t j = indptr[static_cast<std::size_t>(i)];
           j < indptr[static_cast<std::size_t>(i) + 1]; ++j)
        y[static_cast<std::size_t>(i)] +=
            values[static_cast<std::size_t>(j)] *
            x[static_cast<std::size_t>(indices[static_cast<std::size_t>(j)])];
    return y;
  }

  [[nodiscard]] std::vector<double> todense() const {
    std::vector<double> d(static_cast<std::size_t>(rows * cols), 0.0);
    for (coord_t i = 0; i < rows; ++i)
      for (coord_t j = indptr[static_cast<std::size_t>(i)];
           j < indptr[static_cast<std::size_t>(i) + 1]; ++j)
        d[static_cast<std::size_t>(i * cols + indices[static_cast<std::size_t>(j)])] +=
            values[static_cast<std::size_t>(j)];
    return d;
  }
};

/// Random host CSR with ~density fraction of entries, sorted unique columns.
inline HostCsr random_host_csr(coord_t rows, coord_t cols, double density,
                               std::uint64_t seed) {
  Rng rng(seed);
  HostCsr m;
  m.rows = rows;
  m.cols = cols;
  m.indptr.push_back(0);
  for (coord_t i = 0; i < rows; ++i) {
    for (coord_t j = 0; j < cols; ++j) {
      if (rng.next_double() < density) {
        m.indices.push_back(j);
        m.values.push_back(rng.next_double() * 2 - 1);
      }
    }
    m.indptr.push_back(static_cast<coord_t>(m.indices.size()));
  }
  return m;
}

inline CsrMatrix upload(rt::Runtime& rt, const HostCsr& m) {
  return CsrMatrix::from_host(rt, m.rows, m.cols, m.indptr, m.indices, m.values);
}

inline HostCsr download(const CsrMatrix& m) {
  HostCsr h;
  h.rows = m.rows();
  h.cols = m.cols();
  m.to_host(h.indptr, h.indices, h.values);
  return h;
}

/// Dense matmul oracle for SpGEMM checks.
inline std::vector<double> dense_matmul(const std::vector<double>& a,
                                        const std::vector<double>& b, coord_t m,
                                        coord_t k, coord_t n) {
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  for (coord_t i = 0; i < m; ++i)
    for (coord_t l = 0; l < k; ++l)
      for (coord_t j = 0; j < n; ++j)
        c[static_cast<std::size_t>(i * n + j)] +=
            a[static_cast<std::size_t>(i * k + l)] *
            b[static_cast<std::size_t>(l * n + j)];
  return c;
}

}  // namespace legate::sparse::testing
