// Construction-time format validation: the integrity layer's first line of
// defense. Beyond the structural Fig. 3 invariants, validate() rejects the
// signatures silent corruption leaves in a CSR triple — out-of-order column
// indices and non-finite values — naming the offending row so a corrupted
// upload is pinpointed at the source.
#include "sparse/csr.h"

#include <gtest/gtest.h>

#include <limits>

#include "sparse/formats.h"

namespace legate::sparse {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  ValidateTest() : machine_(sim::Machine::gpus(4, pp_)), rt_(machine_) {}

  /// what() of the FormatError thrown by f, or "" if nothing was thrown.
  template <typename F>
  static std::string format_error_of(F f) {
    try {
      f();
    } catch (const FormatError& e) {
      return e.what();
    }
    return "";
  }

  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(ValidateTest, AcceptsCanonicalMatrix) {
  EXPECT_NO_THROW(CsrMatrix::from_host(rt_, 2, 3, {0, 2, 3}, {0, 2, 1},
                                       {1.0, 2.0, 3.0}));
}

TEST_F(ValidateTest, RejectsOutOfOrderColumnsNamingTheRow) {
  // Row 1 holds columns {2, 1}: legal values, broken ordering.
  std::string what = format_error_of([&] {
    (void)CsrMatrix::from_host(rt_, 2, 3, {0, 1, 3}, {0, 2, 1},
                               {1.0, 1.0, 1.0});
  });
  EXPECT_NE(what.find("out of order"), std::string::npos) << what;
  EXPECT_NE(what.find("row 1"), std::string::npos) << what;
}

TEST_F(ValidateTest, RejectsDuplicateColumnInRow) {
  std::string what = format_error_of([&] {
    (void)CsrMatrix::from_host(rt_, 1, 4, {0, 2}, {2, 2}, {1.0, 1.0});
  });
  EXPECT_NE(what.find("out of order"), std::string::npos) << what;
  EXPECT_NE(what.find("row 0"), std::string::npos) << what;
}

TEST_F(ValidateTest, RejectsNaNValueNamingTheRow) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::string what = format_error_of([&] {
    (void)CsrMatrix::from_host(rt_, 2, 2, {0, 1, 2}, {0, 1}, {1.0, nan});
  });
  EXPECT_NE(what.find("non-finite"), std::string::npos) << what;
  EXPECT_NE(what.find("row 1"), std::string::npos) << what;
}

TEST_F(ValidateTest, RejectsInfValueNamingTheRow) {
  const double inf = std::numeric_limits<double>::infinity();
  std::string what = format_error_of([&] {
    (void)CsrMatrix::from_host(rt_, 2, 2, {0, 1, 2}, {0, 1}, {-inf, 1.0});
  });
  EXPECT_NE(what.find("non-finite"), std::string::npos) << what;
  EXPECT_NE(what.find("row 0"), std::string::npos) << what;
}

TEST_F(ValidateTest, FormatErrorCarriesFieldAndIndex) {
  try {
    (void)CsrMatrix::from_host(rt_, 2, 3, {0, 1, 3}, {0, 2, 1},
                               {1.0, 1.0, 1.0});
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_EQ(e.field(), "crd");
    EXPECT_EQ(e.index(), 1);  // the offending row
  }
}

TEST_F(ValidateTest, ValidationCanBeDisabled) {
  bool& on = validate_formats();
  const bool saved = on;
  on = false;
  EXPECT_NO_THROW(CsrMatrix::from_host(rt_, 2, 3, {0, 1, 3}, {0, 2, 1},
                                       {1.0, 1.0, 1.0}));
  on = saved;
}

}  // namespace
}  // namespace legate::sparse
