#include "sparse/csr.h"

#include <gtest/gtest.h>

#include <cmath>

#include "oracle.h"
#include "sparse/formats.h"

namespace legate::sparse {
namespace {

using dense::DArray;
using testing::HostCsr;
using testing::download;
using testing::random_host_csr;
using testing::upload;

class CsrTest : public ::testing::Test {
 protected:
  CsrTest() : machine_(sim::Machine::gpus(4, pp_)), rt_(machine_) {}
  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(CsrTest, HostRoundTrip) {
  HostCsr m = random_host_csr(23, 31, 0.2, 7);
  CsrMatrix a = upload(rt_, m);
  EXPECT_EQ(a.rows(), 23);
  EXPECT_EQ(a.cols(), 31);
  EXPECT_EQ(a.nnz(), static_cast<coord_t>(m.values.size()));
  HostCsr back = download(a);
  EXPECT_EQ(back.indptr, m.indptr);
  EXPECT_EQ(back.indices, m.indices);
  EXPECT_EQ(back.values, m.values);
}

TEST_F(CsrTest, EmptyMatrix) {
  CsrMatrix a = CsrMatrix::from_host(rt_, 5, 5,
                                     std::vector<coord_t>(6, 0), {}, {});
  EXPECT_EQ(a.nnz(), 0);
  auto x = DArray::full(rt_, 5, 1.0);
  auto y = a.spmv(x);
  for (double v : y.to_vector()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_F(CsrTest, SpmvMatchesOracle) {
  HostCsr m = random_host_csr(101, 101, 0.1, 3);
  CsrMatrix a = upload(rt_, m);
  auto x = DArray::random(rt_, 101, 11);
  auto y = a.spmv(x);
  auto ref = m.spmv(x.to_vector());
  auto got = y.to_vector();
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(got[i], ref[i], 1e-12);
}

TEST_F(CsrTest, SpmvRectangular) {
  HostCsr m = random_host_csr(40, 90, 0.15, 5);
  CsrMatrix a = upload(rt_, m);
  auto x = DArray::random(rt_, 90, 13);
  auto ref = m.spmv(x.to_vector());
  auto got = a.spmv(x).to_vector();
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(got[i], ref[i], 1e-12);
}

TEST_F(CsrTest, SpmmMatchesDenseOracle) {
  HostCsr m = random_host_csr(30, 20, 0.2, 9);
  CsrMatrix a = upload(rt_, m);
  auto b = DArray::random2d(rt_, 20, 7, 17);
  auto c = a.spmm(b);
  auto ref = testing::dense_matmul(m.todense(), b.to_vector(), 30, 20, 7);
  auto got = c.to_vector();
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(got[i], ref[i], 1e-12);
}

TEST_F(CsrTest, SddmmMatchesOracle) {
  HostCsr m = random_host_csr(25, 35, 0.2, 21);
  CsrMatrix a = upload(rt_, m);
  coord_t k = 6;
  auto b = DArray::random2d(rt_, 25, k, 1);
  auto c = DArray::random2d(rt_, k, 35, 2);
  CsrMatrix out = a.sddmm(b, c);
  ASSERT_EQ(out.nnz(), a.nnz());
  auto bc = testing::dense_matmul(b.to_vector(), c.to_vector(), 25, k, 35);
  HostCsr got = download(out);
  HostCsr orig = download(a);
  EXPECT_EQ(got.indices, orig.indices);  // same sparsity pattern
  for (coord_t i = 0; i < 25; ++i) {
    for (coord_t j = got.indptr[static_cast<std::size_t>(i)];
         j < got.indptr[static_cast<std::size_t>(i) + 1]; ++j) {
      coord_t col = got.indices[static_cast<std::size_t>(j)];
      double expect = orig.values[static_cast<std::size_t>(j)] *
                      bc[static_cast<std::size_t>(i * 35 + col)];
      EXPECT_NEAR(got.values[static_cast<std::size_t>(j)], expect, 1e-12);
    }
  }
}

TEST_F(CsrTest, DiagonalExtraction) {
  CsrMatrix a = upload(rt_, random_host_csr(50, 50, 0.15, 33));
  HostCsr m = download(a);
  auto d = a.diagonal().to_vector();
  for (coord_t i = 0; i < 50; ++i) {
    double expect = 0;
    for (coord_t j = m.indptr[static_cast<std::size_t>(i)];
         j < m.indptr[static_cast<std::size_t>(i) + 1]; ++j)
      if (m.indices[static_cast<std::size_t>(j)] == i)
        expect += m.values[static_cast<std::size_t>(j)];
    EXPECT_NEAR(d[static_cast<std::size_t>(i)], expect, 1e-12);
  }
}

TEST_F(CsrTest, RowAndColumnSums) {
  HostCsr m = random_host_csr(37, 29, 0.2, 41);
  CsrMatrix a = upload(rt_, m);
  auto rs = a.sum(1).to_vector();
  auto cs = a.sum(0).to_vector();
  std::vector<double> ref_r(37, 0), ref_c(29, 0);
  for (coord_t i = 0; i < 37; ++i) {
    for (coord_t j = m.indptr[static_cast<std::size_t>(i)];
         j < m.indptr[static_cast<std::size_t>(i) + 1]; ++j) {
      ref_r[static_cast<std::size_t>(i)] += m.values[static_cast<std::size_t>(j)];
      ref_c[static_cast<std::size_t>(m.indices[static_cast<std::size_t>(j)])] +=
          m.values[static_cast<std::size_t>(j)];
    }
  }
  for (std::size_t i = 0; i < ref_r.size(); ++i) EXPECT_NEAR(rs[i], ref_r[i], 1e-12);
  for (std::size_t i = 0; i < ref_c.size(); ++i) EXPECT_NEAR(cs[i], ref_c[i], 1e-12);
  double total = 0;
  for (double v : m.values) total += v;
  EXPECT_NEAR(a.sum_all().value, total, 1e-12);
}

TEST_F(CsrTest, ValueOpsShareStructure) {
  HostCsr m = random_host_csr(20, 20, 0.3, 55);
  CsrMatrix a = upload(rt_, m);
  CsrMatrix s = a.scale(2.0);
  EXPECT_TRUE(s.pos().same_as(a.pos()));
  EXPECT_TRUE(s.crd().same_as(a.crd()));
  HostCsr hs = download(s);
  for (std::size_t i = 0; i < m.values.size(); ++i)
    EXPECT_DOUBLE_EQ(hs.values[i], 2.0 * m.values[i]);

  HostCsr habs = download(a.abs_values());
  for (std::size_t i = 0; i < m.values.size(); ++i)
    EXPECT_DOUBLE_EQ(habs.values[i], std::fabs(m.values[i]));

  HostCsr hp = download(a.power_values(2.0));
  for (std::size_t i = 0; i < m.values.size(); ++i)
    EXPECT_NEAR(hp.values[i], m.values[i] * m.values[i], 1e-12);

  HostCsr hneg = download(a.neg());
  for (std::size_t i = 0; i < m.values.size(); ++i)
    EXPECT_DOUBLE_EQ(hneg.values[i], -m.values[i]);

  HostCsr hcopy = download(a.copy());
  EXPECT_EQ(hcopy.values, m.values);
}

TEST_F(CsrTest, ScaleRows) {
  HostCsr m = random_host_csr(15, 10, 0.3, 77);
  CsrMatrix a = upload(rt_, m);
  auto d = DArray::arange(rt_, 15);
  HostCsr got = download(a.scale_rows(d));
  for (coord_t i = 0; i < 15; ++i)
    for (coord_t j = m.indptr[static_cast<std::size_t>(i)];
         j < m.indptr[static_cast<std::size_t>(i) + 1]; ++j)
      EXPECT_NEAR(got.values[static_cast<std::size_t>(j)],
                  m.values[static_cast<std::size_t>(j)] * static_cast<double>(i),
                  1e-12);
}

TEST_F(CsrTest, RowNnz) {
  HostCsr m = random_host_csr(25, 25, 0.2, 91);
  CsrMatrix a = upload(rt_, m);
  auto counts = a.row_nnz().to_vector();
  for (coord_t i = 0; i < 25; ++i) {
    EXPECT_DOUBLE_EQ(counts[static_cast<std::size_t>(i)],
                     static_cast<double>(m.indptr[static_cast<std::size_t>(i) + 1] -
                                         m.indptr[static_cast<std::size_t>(i)]));
  }
}

TEST_F(CsrTest, RowSlice) {
  HostCsr m = random_host_csr(30, 12, 0.25, 101);
  CsrMatrix a = upload(rt_, m);
  CsrMatrix s = a.row_slice(10, 20);
  EXPECT_EQ(s.rows(), 10);
  EXPECT_EQ(s.cols(), 12);
  HostCsr hs = download(s);
  auto x = DArray::random(rt_, 12, 5);
  auto ys = s.spmv(x).to_vector();
  auto yfull = m.spmv(x.to_vector());
  for (coord_t i = 0; i < 10; ++i)
    EXPECT_NEAR(ys[static_cast<std::size_t>(i)],
                yfull[static_cast<std::size_t>(i + 10)], 1e-12);
}

TEST_F(CsrTest, ToDense) {
  HostCsr m = random_host_csr(9, 14, 0.3, 111);
  CsrMatrix a = upload(rt_, m);
  auto d = a.todense();
  EXPECT_EQ(d.rows(), 9);
  EXPECT_EQ(d.cols(), 14);
  auto ref = m.todense();
  auto got = d.to_vector();
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(got[i], ref[i], 1e-12);
}

/// Distributed == sequential across processor counts and shapes (the central
/// composability property: results never depend on partitioning).
class CsrSpmvSweep
    : public ::testing::TestWithParam<std::tuple<int, coord_t, double>> {};

TEST_P(CsrSpmvSweep, PartitionIndependent) {
  auto [procs, n, density] = GetParam();
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(procs, pp);
  rt::Runtime rt(m);
  HostCsr h = random_host_csr(n, n, density, 1234);
  CsrMatrix a = upload(rt, h);
  auto x = DArray::random(rt, n, 99);
  auto got = a.spmv(x).to_vector();
  auto ref = h.spmv(x.to_vector());
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_NEAR(got[i], ref[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CsrSpmvSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 16),
                       ::testing::Values<coord_t>(1, 17, 200),
                       ::testing::Values(0.05, 0.5)));

}  // namespace
}  // namespace legate::sparse
