// Task & kernel fusion (src/fuse + the runtime window): legality edges,
// window lifecycle, determinism, and the launch-reduction acceptance bar.
// Every value-producing scenario is checked bit-for-bit against the same
// program with fusion off — fusion is a pure launch-stream rewrite and must
// never change result bits (DESIGN.md "Task & kernel fusion").
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/workloads.h"
#include "dense/array.h"
#include "metrics/metrics.h"
#include "solve/krylov.h"
#include "sparse/formats.h"

namespace legate {
namespace {

using dense::DArray;
using rt::ConstraintKind;
using rt::DType;
using rt::Priv;
using rt::Runtime;
using rt::RuntimeOptions;
using rt::Store;
using rt::TaskContext;
using rt::TaskLauncher;
using sparse::CsrMatrix;

RuntimeOptions fusion_opts(rt::Fusion mode, int threads = 4) {
  RuntimeOptions opts;
  opts.fusion = mode;
  opts.exec_threads = threads;
  opts.exec_pipeline = 1;
  return opts;
}

void launch_fill(Runtime& rt, Store& s, double scale) {
  TaskLauncher launch(rt, "fill");
  int out = launch.add_output(s);
  launch.set_leaf([out, scale](TaskContext& ctx) {
    auto y = ctx.full<double>(out);
    Interval iv = ctx.elem_interval(out);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = static_cast<double>(i) * scale;
    ctx.add_cost(static_cast<double>(iv.size()) * 8, 0);
  });
  launch.execute();
}

void launch_scale(Runtime& rt, Store& s, double factor,
                  rt::PartitionRef pin = nullptr) {
  TaskLauncher launch(rt, "scale");
  int io = launch.add_inout(s);
  if (pin) launch.set_partition(io, pin);
  launch.set_leaf([io, factor](TaskContext& ctx) {
    auto y = ctx.full<double>(io);
    Interval iv = ctx.elem_interval(io);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] *= factor;
    ctx.add_cost(static_cast<double>(iv.size()) * 16, iv.size());
  });
  launch.execute();
}

TEST(Fusion, ModeParsing) {
  EXPECT_EQ(rt::parse_fusion_mode(nullptr), rt::Fusion::Unset);
  EXPECT_EQ(rt::parse_fusion_mode("off"), rt::Fusion::Off);
  EXPECT_EQ(rt::parse_fusion_mode("0"), rt::Fusion::Off);
  EXPECT_EQ(rt::parse_fusion_mode("on"), rt::Fusion::On);
  EXPECT_EQ(rt::parse_fusion_mode("ON"), rt::Fusion::On);
  EXPECT_EQ(rt::parse_fusion_mode("1"), rt::Fusion::On);
  EXPECT_EQ(rt::parse_fusion_mode("auto"), rt::Fusion::Auto);
  EXPECT_EQ(rt::parse_fusion_mode("bogus"), rt::Fusion::Unset);
}

TEST(Fusion, ElementwiseChainFusesAndMatchesOffBits) {
  auto run = [](rt::Fusion mode) {
    sim::PerfParams pp;
    Runtime rt(sim::Machine::gpus(4, pp), fusion_opts(mode));
    auto x = DArray::random(rt, 5000, 11);
    auto y = DArray::random(rt, 5000, 13);
    for (int i = 0; i < 4; ++i) {
      x.axpy(0.5, y);
      x.iscale(0.75);
      y.iadd(x);
    }
    return std::make_tuple(x.to_vector(), rt.fused_participants(),
                           rt.fused_eliminated());
  };
  auto [off, off_fused, off_elim] = run(rt::Fusion::Off);
  auto [on, on_fused, on_elim] = run(rt::Fusion::On);
  EXPECT_EQ(off_fused, 0);
  EXPECT_EQ(off_elim, 0);
  EXPECT_GT(on_fused, 0);
  EXPECT_GT(on_elim, 0);
  ASSERT_EQ(off.size(), on.size());
  EXPECT_EQ(std::memcmp(off.data(), on.data(), off.size() * sizeof(double)), 0)
      << "fusion changed result bits";
}

TEST(Fusion, FenceMidChainSplitsWindow) {
  sim::PerfParams pp;
  Runtime rt(sim::Machine::gpus(2, pp), fusion_opts(rt::Fusion::On));
  if (!rt.fusion_enabled()) GTEST_SKIP();
  Store s = rt.create_store(DType::F64, {2000});
  launch_fill(rt, s, 1.0);
  rt.fence();  // observation point: the window must flush as a single launch
  launch_scale(rt, s, 2.0);
  rt.fence();
  // Both windows were singletons: nothing fused, nothing eliminated.
  EXPECT_EQ(rt.fused_participants(), 0);
  EXPECT_EQ(rt.fused_eliminated(), 0);
  auto sp = s.span<double>();
  for (coord_t i = 0; i < 2000; ++i) ASSERT_EQ(sp[i], static_cast<double>(i) * 2.0);
}

TEST(Fusion, PartitionChangeMidChainSplitsWindow) {
  sim::PerfParams pp;
  Runtime rt(sim::Machine::gpus(2, pp), fusion_opts(rt::Fusion::On));
  if (!rt.fusion_enabled()) GTEST_SKIP();
  Store s = rt.create_store(DType::F64, {2000});
  launch_fill(rt, s, 1.0);
  // A pinned partition has a fresh uid even when its intervals coincide with
  // the equal split the fill solved to: the window must not mix them.
  auto pin = rt::Partition::equal(2000, 2);
  launch_scale(rt, s, 3.0, pin);
  rt.fence();
  EXPECT_EQ(rt.fused_participants(), 0);
  EXPECT_EQ(rt.fused_eliminated(), 0);
  auto sp = s.span<double>();
  for (coord_t i = 0; i < 2000; ++i) ASSERT_EQ(sp[i], static_cast<double>(i) * 3.0);
}

TEST(Fusion, SamePinnedPartitionKeepsChainFusable) {
  sim::PerfParams pp;
  Runtime rt(sim::Machine::gpus(2, pp), fusion_opts(rt::Fusion::On));
  if (!rt.fusion_enabled()) GTEST_SKIP();
  Store s = rt.create_store(DType::F64, {2000});
  launch_fill(rt, s, 1.0);
  rt.fence();
  // Both links pin the *same* partition object (uid-equal): still one window.
  auto pin = rt::Partition::equal(2000, 2);
  launch_scale(rt, s, 2.0, pin);
  launch_scale(rt, s, 5.0, pin);
  rt.fence();
  EXPECT_EQ(rt.fused_participants(), 2);
  EXPECT_EQ(rt.fused_eliminated(), 1);
  auto sp = s.span<double>();
  for (coord_t i = 0; i < 2000; ++i) ASSERT_EQ(sp[i], static_cast<double>(i) * 10.0);
}

TEST(Fusion, AliasingStoreAsInputAndOutputKeepsProgramOrder) {
  // a is written by link 1 and read by link 2; b is read by link 1 and
  // written by link 2. The fused leaf must replay the links in program order
  // per color or the chain computes different bits.
  auto run = [](rt::Fusion mode) {
    sim::PerfParams pp;
    Runtime rt(sim::Machine::gpus(4, pp), fusion_opts(mode));
    auto a = DArray::random(rt, 4096, 3);
    auto b = DArray::random(rt, 4096, 5);
    for (int i = 0; i < 3; ++i) {
      a.iadd(b);  // a = a + b
      b.iadd(a);  // b = b + (a + b)
    }
    auto va = a.to_vector();
    auto vb = b.to_vector();
    va.insert(va.end(), vb.begin(), vb.end());
    return std::make_pair(va, rt.fused_participants());
  };
  auto [off, off_fused] = run(rt::Fusion::Off);
  auto [on, on_fused] = run(rt::Fusion::On);
  EXPECT_EQ(off_fused, 0);
  EXPECT_GT(on_fused, 0);
  ASSERT_EQ(off.size(), on.size());
  EXPECT_EQ(std::memcmp(off.data(), on.data(), off.size() * sizeof(double)), 0);
}

TEST(Fusion, ReductionTerminatesWindowAndResolvesEagerly) {
  auto run = [](rt::Fusion mode) {
    sim::PerfParams pp;
    Runtime rt(sim::Machine::gpus(4, pp), fusion_opts(mode));
    auto x = DArray::random(rt, 3000, 7);
    auto y = DArray::random(rt, 3000, 9);
    x.axpy(2.0, y);
    x.iscale(0.5);
    dense::Scalar d = x.dot(y);  // terminal link: must resolve immediately
    EXPECT_EQ(rt.fuse_window_size(), 0u);
    return d.value;
  };
  double off = run(rt::Fusion::Off);
  double on = run(rt::Fusion::On);
  EXPECT_EQ(off, on) << "fused trailing reduction changed the scalar bits";
}

TEST(Fusion, StoreDestroyedMidWindowKeepsHazardEdges) {
  // Regression: a store destroyed while the window is open (the temporary of
  // an `x = f(x)`-style rebinding) must keep its hazard entry alive until the
  // window's records are enqueued, or the fused launch loses its dependence
  // edge on the temporary's producer and races it on the pool.
  auto run = [](rt::Fusion mode, int threads) {
    sim::PerfParams pp;
    Runtime rt(sim::Machine::gpus(2, pp), fusion_opts(mode, threads));
    auto x = DArray::random(rt, 4000, 3);
    for (int i = 0; i < 6; ++i) {
      auto t = DArray::random(rt, 4000, static_cast<std::uint64_t>(i));
      x.iadd(t);
      x.iscale(0.5);
    }  // t dies here, usually with the window still open
    return x.to_vector();
  };
  auto base = run(rt::Fusion::Off, 1);
  for (int threads : {1, 4, 8}) {
    auto v = run(rt::Fusion::On, threads);
    ASSERT_EQ(base.size(), v.size());
    EXPECT_EQ(std::memcmp(base.data(), v.data(), base.size() * sizeof(double)), 0)
        << "diverged at exec_threads=" << threads;
  }
}

TEST(Fusion, SpmvChainRebindingBitIdenticalAcrossThreads) {
  // The Fig. 5 steady-state loop with handle rebinding: spmv heads each
  // window (image solve reads real bytes), iscale joins it, and the dying
  // old vector exercises the deferred release + hazard retirement path.
  auto run = [](rt::Fusion mode, int threads) {
    sim::PerfParams pp;
    Runtime rt(sim::Machine::gpus(2, pp), fusion_opts(mode, threads));
    auto prob = apps::banded_matrix(4000, 1);
    auto A = CsrMatrix::from_host(rt, prob.rows, prob.cols, prob.indptr,
                                  prob.indices, prob.values);
    auto x = DArray::random(rt, prob.rows, 3);
    for (int it = 0; it < 6; ++it) {
      x = A.spmv(x);
      x.iscale(0.25);
    }
    return x.to_vector();
  };
  auto base = run(rt::Fusion::Off, 1);
  for (int threads : {1, 4, 8}) {
    auto v = run(rt::Fusion::On, threads);
    ASSERT_EQ(base.size(), v.size());
    EXPECT_EQ(std::memcmp(base.data(), v.data(), base.size() * sizeof(double)), 0)
        << "diverged at exec_threads=" << threads;
  }
}

TEST(Fusion, ComposesWithIntegrityVerifyOnRead) {
  // Integrity disables pipelining but not fusion: fused chains re-record
  // only their final outputs, and verify-on-read still sees correct bytes.
  auto run = [](rt::Fusion mode) {
    sim::PerfParams pp;
    RuntimeOptions opts = fusion_opts(mode);
    opts.integrity = rt::Integrity::Recover;
    Runtime rt(sim::Machine::gpus(2, pp), opts);
    auto x = DArray::random(rt, 2048, 17);
    auto y = DArray::random(rt, 2048, 19);
    for (int i = 0; i < 3; ++i) {
      x.axpy(0.25, y);
      x.iscale(1.5);
    }
    return std::make_pair(x.to_vector(), rt.fused_participants());
  };
  auto [off, off_fused] = run(rt::Fusion::Off);
  auto [on, on_fused] = run(rt::Fusion::On);
  EXPECT_EQ(off_fused, 0);
  EXPECT_GT(on_fused, 0) << "fusion should stay active under integrity";
  ASSERT_EQ(off.size(), on.size());
  EXPECT_EQ(std::memcmp(off.data(), on.data(), off.size() * sizeof(double)), 0);
}

TEST(Fusion, FaultInjectionDisablesFusion) {
  sim::PerfParams pp;
  RuntimeOptions opts = fusion_opts(rt::Fusion::On);
  opts.faults.enabled = true;
  Runtime rt(sim::Machine::gpus(2, pp), opts);
  EXPECT_FALSE(rt.fusion_enabled());
  EXPECT_EQ(rt.fusion_mode(), rt::Fusion::On);  // requested mode is preserved
}

TEST(Fusion, CgLaunchReductionAtLeastFortyPercent) {
  // Acceptance bar: fusion removes >= 40% of CG's per-iteration launches
  // (spmv+dot and axpy+axpy+norm chains fold; xpay stays alone), measured
  // through the stable counters and the per-solver telemetry gauge.
  sim::PerfParams pp;
  Runtime rt(sim::Machine::gpus(4, pp), fusion_opts(rt::Fusion::On));
  if (!rt.fusion_enabled()) GTEST_SKIP();
  CsrMatrix t = sparse::diags(rt, 20, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
  CsrMatrix i = sparse::eye(rt, 20);
  CsrMatrix A = sparse::kron(i, t).add(sparse::kron(t, i));
  auto b = DArray::full(rt, A.rows(), 1.0);
  long applied0 = rt.launches_applied();
  long elim0 = rt.fused_eliminated();
  auto res = solve::cg(A, b, 1e-10, 500);
  EXPECT_TRUE(res.converged);
  long applied = rt.launches_applied() - applied0;
  long elim = rt.fused_eliminated() - elim0;
  ASSERT_GT(applied + elim, 0);
  double fraction = static_cast<double>(elim) / static_cast<double>(applied + elim);
  EXPECT_GE(fraction, 0.40) << "eliminated " << elim << " of " << (applied + elim);

  metrics::Snapshot snap = rt.metrics_snapshot();
  const auto* elim_m = snap.find("lsr_fuse_launches_eliminated_total");
  ASSERT_NE(elim_m, nullptr);
  EXPECT_GE(elim_m->value, static_cast<double>(elim));
  const auto* frac_m = snap.find("lsr_solve_cg_fused_fraction");
  ASSERT_NE(frac_m, nullptr);
  EXPECT_GE(frac_m->value, 0.40);

  // Bit-identity of the accepted configuration against fusion off.
  Runtime rt_off(sim::Machine::gpus(4, pp), fusion_opts(rt::Fusion::Off));
  CsrMatrix t2 = sparse::diags(rt_off, 20, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
  CsrMatrix i2 = sparse::eye(rt_off, 20);
  CsrMatrix A2 = sparse::kron(i2, t2).add(sparse::kron(t2, i2));
  auto b2 = DArray::full(rt_off, A2.rows(), 1.0);
  auto res2 = solve::cg(A2, b2, 1e-10, 500);
  EXPECT_EQ(res.iterations, res2.iterations);
  auto x_on = res.x.to_vector();
  auto x_off = res2.x.to_vector();
  ASSERT_EQ(x_on.size(), x_off.size());
  EXPECT_EQ(std::memcmp(x_on.data(), x_off.data(), x_on.size() * sizeof(double)), 0);
}

TEST(Fusion, WindowCountersAreConsistent) {
  sim::PerfParams pp;
  Runtime rt(sim::Machine::gpus(2, pp), fusion_opts(rt::Fusion::On));
  if (!rt.fusion_enabled()) GTEST_SKIP();
  auto x = DArray::full(rt, 1000, 1.0);
  auto y = DArray::full(rt, 1000, 2.0);
  x.iadd(y);
  x.iscale(0.5);
  x.iadd(y);
  rt.fence();
  metrics::Snapshot snap = rt.metrics_snapshot();
  const auto* scanned = snap.find("lsr_fuse_windows_scanned_total");
  const auto* fused = snap.find("lsr_fuse_launches_fused_total");
  const auto* elim = snap.find("lsr_fuse_launches_eliminated_total");
  const auto* saved = snap.find("lsr_fuse_bytes_saved_total");
  ASSERT_NE(scanned, nullptr);
  ASSERT_NE(fused, nullptr);
  ASSERT_NE(elim, nullptr);
  ASSERT_NE(saved, nullptr);
  EXPECT_GT(scanned->value, 0.0);
  // Each fused window of k links eliminates k-1 launches.
  EXPECT_GT(fused->value, elim->value);
  EXPECT_GT(saved->value, 0.0) << "merged reads should discount round-trips";
  auto sp = x.to_vector();
  for (double v : sp) ASSERT_EQ(v, 3.5);  // (1+2)*0.5 + 2
}

}  // namespace
}  // namespace legate
