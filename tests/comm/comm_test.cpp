// Communication planner (src/comm + rt/runtime_comm.cpp): mode parsing,
// link coalescing, the combined (key, signature) plan cache, invalidation
// through span access / repartitioning / store destruction, bit-identical
// results across off|plan|overlap, and a deterministic hit/miss sequence.
//
// Assertion guide for the dirty-x SpMV loop (x is rewritten each iteration
// so the next spmv must re-gather it): csr_spmv reaches steady-state cache
// HITS from the third iteration, while axpy reads the freshly created y and
// misses every iteration by design (new store state = new signature, cached
// as a separate combined-slot entry). Loop tests therefore assert on hit
// *growth* per iteration, never on a global hit rate; the >= 90% acceptance
// rate is asserted on CG, whose working set is persistent.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/workloads.h"
#include "comm/comm.h"
#include "metrics/metrics.h"
#include "solve/krylov.h"
#include "sparse/formats.h"

namespace legate {
namespace {

using dense::DArray;
using sparse::CsrMatrix;

constexpr int kProcs = 12;

rt::RuntimeOptions comm_opts(comm::Mode m, int threads = 1) {
  rt::RuntimeOptions o;
  o.comm = m;
  o.exec_threads = threads;
  o.partition = rt::PartitionStrategy::Nnz;
  return o;
}

apps::HostProblem zipf_problem() {
  // Skewed rows so the nnz partition's gathers cross node boundaries.
  return apps::zipf_matrix(600 * kProcs, 1.05, 8, 97);
}

CsrMatrix from_problem(rt::Runtime& rt, const apps::HostProblem& p) {
  return CsrMatrix::from_host(rt, p.rows, p.cols, p.indptr, p.indices,
                              p.values);
}

struct LoopRun {
  std::vector<double> x;
  comm::PlanCache::Stats stats;
  double makespan{0};
};

// The comm-bound microbenchmark loop: y = A x; x += 1e-9 y.
LoopRun run_spmv_loop(comm::Mode mode, int iters, int threads = 1) {
  sim::PerfParams pp;
  rt::Runtime rt(sim::Machine::gpus(kProcs, pp), comm_opts(mode, threads));
  apps::HostProblem prob = zipf_problem();
  CsrMatrix A = from_problem(rt, prob);
  DArray x = DArray::full(rt, prob.rows, 1.0);
  for (int i = 0; i < iters; ++i) {
    DArray y = A.spmv(x);
    x.axpy(dense::Scalar{1e-9}, y);
  }
  rt.fence();
  return {x.to_vector(), rt.comm_plan_stats(), rt.sim_time()};
}

CsrMatrix poisson2d(rt::Runtime& rt, coord_t g) {
  CsrMatrix t = sparse::diags(rt, g, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
  CsrMatrix i = sparse::eye(rt, g);
  return sparse::kron(i, t).add(sparse::kron(t, i));
}

void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_FALSE(a.empty()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
      << what;
}

TEST(CommMode, ParseAndName) {
  EXPECT_EQ(comm::parse_comm_mode(nullptr), comm::Mode::Unset);
  EXPECT_EQ(comm::parse_comm_mode(""), comm::Mode::Unset);
  EXPECT_EQ(comm::parse_comm_mode("off"), comm::Mode::Off);
  EXPECT_EQ(comm::parse_comm_mode("0"), comm::Mode::Off);
  EXPECT_EQ(comm::parse_comm_mode("plan"), comm::Mode::Plan);
  EXPECT_EQ(comm::parse_comm_mode("on"), comm::Mode::Plan);
  EXPECT_EQ(comm::parse_comm_mode("1"), comm::Mode::Plan);
  EXPECT_EQ(comm::parse_comm_mode("overlap"), comm::Mode::Overlap);
  EXPECT_EQ(comm::parse_comm_mode("bogus"), comm::Mode::Unset);
  EXPECT_STREQ(comm::comm_mode_name(comm::Mode::Off), "off");
  EXPECT_STREQ(comm::comm_mode_name(comm::Mode::Plan), "plan");
  EXPECT_STREQ(comm::comm_mode_name(comm::Mode::Overlap), "overlap");
}

TEST(CommPlan, CoalesceGroupsByModeledLink) {
  // Memories 0,1 on node 0; memories 2,3 on node 1.
  const std::vector<int> mem_node{0, 0, 1, 1};
  comm::ExchangePlan plan;
  auto ghost = [](int src, int dst, int color, double bytes) {
    comm::Ghost g;
    g.piece = {0, 8};
    g.src_mem = src;
    g.dst_mem = dst;
    g.color = color;
    g.bytes = bytes;
    return g;
  };
  plan.ghosts = {
      ghost(0, 0, 0, 10),  // intra-memory
      ghost(0, 1, 1, 20),  // nvlink (same node)
      ghost(0, 2, 2, 30),  // ib: (src_mem 0, node 1)
      ghost(0, 3, 2, 40),  // ib: same group as above (same src_mem, dst node)
      ghost(1, 2, 0, 50),  // ib: distinct group (different src_mem)
  };
  plan.coalesce(3, mem_node);

  ASSERT_EQ(plan.transfers.size(), 4u);
  // First-appearance order, so indices are stable.
  EXPECT_EQ(plan.transfers[0].bytes, 10);
  EXPECT_EQ(plan.transfers[1].bytes, 20);
  EXPECT_EQ(plan.transfers[2].bytes, 70);  // ghosts 2 and 3 coalesced
  EXPECT_EQ(plan.transfers[3].bytes, 50);
  EXPECT_EQ(plan.transfers[2].src_mem, 0);
  EXPECT_EQ(plan.transfers[2].dst_mem, 2);  // representative = first member
  ASSERT_EQ(plan.transfers[2].ghosts.size(), 2u);
  EXPECT_EQ(plan.transfers[2].ghosts[0], 2u);
  EXPECT_EQ(plan.transfers[2].ghosts[1], 3u);
  EXPECT_EQ(plan.total_bytes, 150);
  ASSERT_EQ(plan.ghost_bytes_by_color.size(), 3u);
  EXPECT_EQ(plan.ghost_bytes_by_color[0], 60);
  EXPECT_EQ(plan.ghost_bytes_by_color[1], 20);
  EXPECT_EQ(plan.ghost_bytes_by_color[2], 70);
}

TEST(CommPlan, CacheKeepsDistinctSignaturesUnderOneKey) {
  comm::PlanCache cache;
  const std::uint64_t key = 0xabcdULL;

  EXPECT_EQ(cache.lookup(key, 1), nullptr);
  comm::ExchangePlan p1;
  p1.signature = 1;
  p1.total_bytes = 100;
  cache.insert(key, p1);
  comm::ExchangePlan p2;
  p2.signature = 2;
  p2.total_bytes = 200;
  cache.insert(key, p2);

  // A launch structure alternating between two store states must not thrash:
  // both plans coexist.
  const comm::ExchangePlan* h1 = cache.lookup(key, 1);
  const comm::ExchangePlan* h2 = cache.lookup(key, 2);
  ASSERT_NE(h1, nullptr);
  ASSERT_NE(h2, nullptr);
  EXPECT_EQ(h1->total_bytes, 100);
  EXPECT_EQ(h2->total_bytes, 200);
  EXPECT_EQ(cache.lookup(key, 3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().hits, 2);
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(CommPlan, CacheInvalidateStoreDropsEveryReferencingPlan) {
  comm::PlanCache cache;
  comm::ExchangePlan pa;
  pa.signature = 1;
  pa.stores = {7, 9};
  cache.insert(0x1ULL, pa);
  comm::ExchangePlan pb;
  pb.signature = 2;
  pb.stores = {7};
  cache.insert(0x2ULL, pb);
  comm::ExchangePlan pc;
  pc.signature = 3;
  pc.stores = {9};
  cache.insert(0x3ULL, pc);

  EXPECT_EQ(cache.invalidate_store(42), 0);  // unknown id: no-op
  EXPECT_EQ(cache.invalidate_store(7), 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().invalidations, 2);
  EXPECT_EQ(cache.lookup(0x1ULL, 1), nullptr);
  EXPECT_EQ(cache.lookup(0x2ULL, 2), nullptr);
  EXPECT_NE(cache.lookup(0x3ULL, 3), nullptr);
  EXPECT_EQ(cache.invalidate_store(7), 0);  // index entry consumed
}

TEST(CommPlan, CacheCapDropsWholeMap) {
  // kMaxPlans = 512: the 513th distinct entry clears the map rather than
  // evicting in hash order.
  comm::PlanCache cache;
  for (std::uint64_t i = 0; i < 512; ++i) {
    comm::ExchangePlan p;
    p.signature = i + 1;
    cache.insert(i, p);
  }
  EXPECT_EQ(cache.size(), 512u);
  comm::ExchangePlan p;
  p.signature = 1000;
  cache.insert(9999, p);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.lookup(9999, 1000), nullptr);
}

TEST(CommRuntime, ModeGates) {
  sim::PerfParams pp;
  {
    rt::Runtime rt(sim::Machine::gpus(2, pp), comm_opts(comm::Mode::Off));
    EXPECT_FALSE(rt.comm_enabled());
    EXPECT_EQ(rt.comm_mode(), comm::Mode::Off);
  }
  {
    rt::Runtime rt(sim::Machine::gpus(2, pp), comm_opts(comm::Mode::Plan));
    EXPECT_TRUE(rt.comm_enabled());
    EXPECT_EQ(rt.comm_mode(), comm::Mode::Plan);
  }
  {
    rt::Runtime rt(sim::Machine::gpus(2, pp), comm_opts(comm::Mode::Overlap));
    EXPECT_TRUE(rt.comm_enabled());
    EXPECT_EQ(rt.comm_mode(), comm::Mode::Overlap);
  }
  {
    // Fault injection retries launches; plans must not be replayed around it.
    rt::RuntimeOptions o = comm_opts(comm::Mode::Plan);
    o.faults.enabled = true;
    rt::Runtime rt(sim::Machine::gpus(2, pp), o);
    EXPECT_FALSE(rt.comm_enabled());
  }
  {
    rt::RuntimeOptions o = comm_opts(comm::Mode::Plan);
    o.coalescing = false;
    rt::Runtime rt(sim::Machine::gpus(2, pp), o);
    EXPECT_FALSE(rt.comm_enabled());
  }
}

TEST(CommRuntime, SpmvLoopBitIdenticalAcrossModes) {
  LoopRun off = run_spmv_loop(comm::Mode::Off, 6);
  LoopRun plan = run_spmv_loop(comm::Mode::Plan, 6);
  LoopRun overlap = run_spmv_loop(comm::Mode::Overlap, 6);
  expect_bits_equal(off.x, plan.x, "off vs plan");
  expect_bits_equal(off.x, overlap.x, "off vs overlap");
  EXPECT_EQ(off.stats.hits, 0);
  EXPECT_EQ(off.stats.misses, 0);
  EXPECT_GT(plan.stats.hits, 0);
}

TEST(CommRuntime, SpmvLoopBitIdenticalAcrossThreads) {
  LoopRun t1 = run_spmv_loop(comm::Mode::Overlap, 6, 1);
  LoopRun t4 = run_spmv_loop(comm::Mode::Overlap, 6, 4);
  LoopRun t8 = run_spmv_loop(comm::Mode::Overlap, 6, 8);
  expect_bits_equal(t1.x, t4.x, "threads 1 vs 4");
  expect_bits_equal(t1.x, t8.x, "threads 1 vs 8");
  EXPECT_EQ(t1.makespan, t4.makespan);
  EXPECT_EQ(t1.makespan, t8.makespan);
  EXPECT_EQ(t1.stats.hits, t4.stats.hits);
  EXPECT_EQ(t1.stats.misses, t4.stats.misses);
  EXPECT_EQ(t1.stats.hits, t8.stats.hits);
  EXPECT_EQ(t1.stats.misses, t8.stats.misses);
}

TEST(CommRuntime, SpmvReachesSteadyStateHits) {
  sim::PerfParams pp;
  rt::Runtime rt(sim::Machine::gpus(kProcs, pp), comm_opts(comm::Mode::Plan));
  apps::HostProblem prob = zipf_problem();
  CsrMatrix A = from_problem(rt, prob);
  DArray x = DArray::full(rt, prob.rows, 1.0);
  for (int i = 0; i < 3; ++i) {
    DArray y = A.spmv(x);
    x.axpy(dense::Scalar{1e-9}, y);
  }
  comm::PlanCache::Stats warm = rt.comm_plan_stats();
  const int extra = 5;
  for (int i = 0; i < extra; ++i) {
    DArray y = A.spmv(x);
    x.axpy(dense::Scalar{1e-9}, y);
  }
  comm::PlanCache::Stats done = rt.comm_plan_stats();
  // csr_spmv replays its cached gather plan every iteration past warmup.
  // (axpy misses every iteration by design: it realigns the freshly created
  // y, whose destruction invalidates the plan — so no equality on misses or
  // invalidations here, only hit growth.)
  EXPECT_GE(done.hits - warm.hits, extra);
}

TEST(CommRuntime, HitMissSequenceIsDeterministic) {
  LoopRun a = run_spmv_loop(comm::Mode::Plan, 8);
  LoopRun b = run_spmv_loop(comm::Mode::Plan, 8);
  EXPECT_EQ(a.stats.hits, b.stats.hits);
  EXPECT_EQ(a.stats.misses, b.stats.misses);
  EXPECT_EQ(a.stats.invalidations, b.stats.invalidations);
  EXPECT_EQ(a.makespan, b.makespan);
  expect_bits_equal(a.x, b.x, "repeat run");
}

TEST(CommRuntime, SpanAccessForcesFreshPlan) {
  sim::PerfParams pp;
  rt::Runtime rt(sim::Machine::gpus(kProcs, pp), comm_opts(comm::Mode::Plan));
  apps::HostProblem prob = zipf_problem();
  CsrMatrix A = from_problem(rt, prob);
  DArray x = DArray::full(rt, prob.rows, 1.0);
  for (int i = 0; i < 4; ++i) {
    DArray y = A.spmv(x);
    x.axpy(dense::Scalar{1e-9}, y);
  }
  comm::PlanCache::Stats warm = rt.comm_plan_stats();

  // Mutable span access to the gathered operand: every plan built from its
  // state must be dropped, and the next spmv must re-derive.
  x.store().span<double>()[0] += 0.5;
  comm::PlanCache::Stats after = rt.comm_plan_stats();
  EXPECT_GT(after.invalidations, warm.invalidations);

  DArray y = A.spmv(x);
  rt.fence();
  comm::PlanCache::Stats probe = rt.comm_plan_stats();
  EXPECT_GT(probe.misses, after.misses);
}

TEST(CommRuntime, RepartitionForcesFreshPlan) {
  sim::PerfParams pp;
  rt::RuntimeOptions o = comm_opts(comm::Mode::Plan);
  o.partition = rt::PartitionStrategy::Rows;
  rt::Runtime rt(sim::Machine::gpus(kProcs, pp), o);
  apps::HostProblem prob = zipf_problem();
  CsrMatrix A = from_problem(rt, prob);
  DArray x = DArray::full(rt, prob.rows, 1.0);
  for (int i = 0; i < 4; ++i) {
    DArray y = A.spmv(x);
    x.axpy(dense::Scalar{1e-9}, y);
  }
  comm::PlanCache::Stats warm = rt.comm_plan_stats();

  // rows -> nnz changes the color runs, hence the structural key: the next
  // spmv cannot reuse any rows-keyed plan.
  A.set_partition_strategy(rt::PartitionStrategy::Nnz);
  {
    DArray y = A.spmv(x);
    x.axpy(dense::Scalar{1e-9}, y);
  }
  rt.fence();
  comm::PlanCache::Stats probe = rt.comm_plan_stats();
  EXPECT_GT(probe.misses, warm.misses);

  // And the nnz structure warms up in turn.
  for (int i = 0; i < 3; ++i) {
    DArray y = A.spmv(x);
    x.axpy(dense::Scalar{1e-9}, y);
  }
  comm::PlanCache::Stats warm2 = rt.comm_plan_stats();
  DArray y = A.spmv(x);
  rt.fence();
  comm::PlanCache::Stats steady = rt.comm_plan_stats();
  EXPECT_GT(steady.hits, warm2.hits);
}

TEST(CommRuntime, DestroyedStoreInvalidatesItsPlans) {
  sim::PerfParams pp;
  rt::Runtime rt(sim::Machine::gpus(kProcs, pp), comm_opts(comm::Mode::Plan));
  apps::HostProblem prob = zipf_problem();
  CsrMatrix A = from_problem(rt, prob);
  comm::PlanCache::Stats warm;
  {
    DArray x1 = DArray::full(rt, prob.rows, 1.0);
    for (int i = 0; i < 4; ++i) {
      DArray y = A.spmv(x1);
      x1.axpy(dense::Scalar{1e-9}, y);
    }
    warm = rt.comm_plan_stats();
  }
  // x1 destroyed: the csr_spmv plans gathering it must not survive, even if
  // a later store recycles its footprint.
  comm::PlanCache::Stats after = rt.comm_plan_stats();
  EXPECT_GT(after.invalidations, warm.invalidations);

  DArray x2 = DArray::full(rt, prob.rows, 1.0);
  DArray y = A.spmv(x2);
  rt.fence();
  comm::PlanCache::Stats probe = rt.comm_plan_stats();
  EXPECT_GT(probe.misses, after.misses);
}

TEST(CommRuntime, CgHitRateAtLeastNinetyPercent) {
  sim::PerfParams pp;
  // The Fig. 9 CG configuration row-splits every store identically, so the
  // whole working set is persistent: after the first iteration warms the
  // cache, each launch replays its plan. (Under an nnz split the vector ops
  // realign spmv's output, which dies each iteration and takes its plan with
  // it — a different, deliberately uncached pattern.)
  rt::RuntimeOptions o = comm_opts(comm::Mode::Plan);
  o.partition = rt::PartitionStrategy::Rows;
  rt::Runtime rt(sim::Machine::gpus(kProcs, pp), o);
  CsrMatrix A = poisson2d(rt, 40);
  DArray b = DArray::full(rt, A.rows(), 1.0);
  solve::SolveResult res = solve::cg(A, b, 1e-12, 25);
  EXPECT_GT(res.iterations, 5);
  comm::PlanCache::Stats st = rt.comm_plan_stats();
  ASSERT_GT(st.hits + st.misses, 0);
  const double rate =
      static_cast<double>(st.hits) / static_cast<double>(st.hits + st.misses);
  EXPECT_GE(rate, 0.9) << "hits=" << st.hits << " misses=" << st.misses;
}

TEST(CommRuntime, CgBitIdenticalAcrossModes) {
  auto run = [](comm::Mode m) {
    sim::PerfParams pp;
    rt::Runtime rt(sim::Machine::gpus(kProcs, pp), comm_opts(m));
    CsrMatrix A = poisson2d(rt, 30);
    DArray b = DArray::full(rt, A.rows(), 1.0);
    solve::SolveResult res = solve::cg(A, b, 1e-10, 60);
    rt.fence();
    return std::make_pair(res.x.to_vector(), res.residual);
  };
  auto off = run(comm::Mode::Off);
  auto plan = run(comm::Mode::Plan);
  auto overlap = run(comm::Mode::Overlap);
  expect_bits_equal(off.first, plan.first, "cg off vs plan");
  expect_bits_equal(off.first, overlap.first, "cg off vs overlap");
  EXPECT_EQ(off.second, plan.second);
  EXPECT_EQ(off.second, overlap.second);
}

TEST(CommRuntime, ComposesWithFusion) {
  auto run = [](comm::Mode m) {
    sim::PerfParams pp;
    rt::RuntimeOptions o = comm_opts(m);
    o.fusion = rt::Fusion::On;
    rt::Runtime rt(sim::Machine::gpus(kProcs, pp), o);
    CsrMatrix A = poisson2d(rt, 30);
    DArray b = DArray::full(rt, A.rows(), 1.0);
    solve::SolveResult res = solve::cg(A, b, 1e-10, 60);
    rt.fence();
    return res.x.to_vector();
  };
  std::vector<double> off = run(comm::Mode::Off);
  std::vector<double> plan = run(comm::Mode::Plan);
  expect_bits_equal(off, plan, "fusion+comm");
}

TEST(CommRuntime, MetricsMirrorPlannerActivity) {
  sim::PerfParams pp;
  rt::Runtime rt(sim::Machine::gpus(kProcs, pp), comm_opts(comm::Mode::Plan));
  apps::HostProblem prob = zipf_problem();
  CsrMatrix A = from_problem(rt, prob);
  DArray x = DArray::full(rt, prob.rows, 1.0);
  for (int i = 0; i < 6; ++i) {
    DArray y = A.spmv(x);
    x.axpy(dense::Scalar{1e-9}, y);
  }
  rt.fence();
  comm::PlanCache::Stats st = rt.comm_plan_stats();
  metrics::Snapshot snap = rt.metrics_snapshot();
  const auto* hits = snap.find("lsr_comm_plan_hits_total");
  const auto* misses = snap.find("lsr_comm_plan_misses_total");
  const auto* msgs = snap.find("lsr_comm_messages_total");
  const auto* saved = snap.find("lsr_comm_messages_saved_total");
  const auto* bytes = snap.find("lsr_comm_bytes_total");
  const auto* intra = snap.find("lsr_comm_bytes_intra_total");
  const auto* nvlink = snap.find("lsr_comm_bytes_nvlink_total");
  const auto* ib = snap.find("lsr_comm_bytes_ib_total");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  ASSERT_NE(msgs, nullptr);
  ASSERT_NE(saved, nullptr);
  ASSERT_NE(bytes, nullptr);
  ASSERT_NE(intra, nullptr);
  ASSERT_NE(nvlink, nullptr);
  ASSERT_NE(ib, nullptr);
  EXPECT_EQ(hits->value, static_cast<double>(st.hits));
  EXPECT_EQ(misses->value, static_cast<double>(st.misses));
  EXPECT_GT(msgs->value, 0);
  // Coalescing is the point: piece copies saved must dwarf messages sent.
  EXPECT_GT(saved->value, msgs->value);
  EXPECT_GT(bytes->value, 0);
  const double split = intra->value + nvlink->value + ib->value;
  EXPECT_NEAR(bytes->value, split, 1e-6 * bytes->value + 1e-9);
}

TEST(CommRuntime, OverlapSplitsKernelsAndNeverRegresses) {
  LoopRun plan = run_spmv_loop(comm::Mode::Plan, 6);
  LoopRun overlap = run_spmv_loop(comm::Mode::Overlap, 6);
  expect_bits_equal(plan.x, overlap.x, "plan vs overlap");
  // A split kernel finishes no later than the unsplit one: the interior
  // phase starts before the ghosts land and the boundary phase pays the
  // remainder.
  EXPECT_LE(overlap.makespan, plan.makespan + 1e-12);

  sim::PerfParams pp;
  rt::Runtime rt(sim::Machine::gpus(kProcs, pp),
                 comm_opts(comm::Mode::Overlap));
  // Comm-bound regime (the bench's scale): ghosts land after local deps, so
  // kernels actually split.
  rt.engine().set_cost_scale(64.0);
  apps::HostProblem prob = zipf_problem();
  CsrMatrix A = from_problem(rt, prob);
  DArray x = DArray::full(rt, prob.rows, 1.0);
  for (int i = 0; i < 6; ++i) {
    DArray y = A.spmv(x);
    x.axpy(dense::Scalar{1e-9}, y);
  }
  rt.fence();
  metrics::Snapshot snap = rt.metrics_snapshot();
  const auto* splits = snap.find("lsr_comm_overlap_splits_total");
  ASSERT_NE(splits, nullptr);
  EXPECT_GT(splits->value, 0);
}

}  // namespace
}  // namespace legate
