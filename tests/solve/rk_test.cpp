#include "solve/rk.h"

#include <gtest/gtest.h>

#include <cmath>

namespace legate::solve {
namespace {

using dense::DArray;

class RkTest : public ::testing::Test {
 protected:
  RkTest() : machine_(sim::Machine::gpus(2, pp_)), rt_(machine_) {}
  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

/// Butcher-tableau sanity: row sums equal c, quadrature conditions up to the
/// claimed order (Σ bᵢ cᵢᵏ = 1/(k+1)).
void check_tableau(const ButcherTableau& t, int order) {
  for (int i = 0; i < t.stages; ++i) {
    double row = 0;
    for (int j = 0; j < i; ++j) row += t.at(i, j);
    EXPECT_NEAR(row, t.c[static_cast<std::size_t>(i)], 1e-12) << "row " << i;
  }
  for (int k = 0; k < order; ++k) {
    double sum = 0;
    for (int i = 0; i < t.stages; ++i)
      sum += t.b[static_cast<std::size_t>(i)] *
             std::pow(t.c[static_cast<std::size_t>(i)], k);
    EXPECT_NEAR(sum, 1.0 / (k + 1), 1e-12) << "quadrature order " << k;
  }
}

TEST_F(RkTest, Rk4TableauConsistent) { check_tableau(ButcherTableau::rk4(), 4); }

TEST_F(RkTest, Rk8TableauConsistent) { check_tableau(ButcherTableau::rk8(), 8); }

TEST_F(RkTest, Rk4SolvesExponential) {
  // y' = -y, y(0)=1 -> y(1) = e^-1.
  auto y0 = DArray::full(rt_, 4, 1.0);
  OdeRhs f = [](double, const DArray& y) { return y.neg(); };
  auto res = integrate(ButcherTableau::rk4(), f, y0, 0, 1, 50);
  for (double v : res.y.to_vector()) EXPECT_NEAR(v, std::exp(-1.0), 1e-8);
  EXPECT_EQ(res.steps, 50);
  EXPECT_EQ(res.rhs_evaluations, 200);
}

TEST_F(RkTest, Rk8SolvesExponentialToMachinePrecision) {
  auto y0 = DArray::full(rt_, 4, 1.0);
  OdeRhs f = [](double, const DArray& y) { return y.neg(); };
  auto res = integrate(ButcherTableau::rk8(), f, y0, 0, 1, 20);
  for (double v : res.y.to_vector()) EXPECT_NEAR(v, std::exp(-1.0), 1e-13);
}

TEST_F(RkTest, Rk8ConvergenceOrder) {
  // Harmonic oscillator: y'' = -y as a 2-vector system; error ratio between
  // h and h/2 should approach 2^8 = 256 (allow generous slack).
  OdeRhs f = [this](double, const DArray& y) {
    auto v = y.to_vector();
    return DArray::from_vector(rt_, {v[1], -v[0]});
  };
  auto y0 = DArray::from_vector(rt_, {1.0, 0.0});
  auto err = [&](int steps) {
    auto res = integrate(ButcherTableau::rk8(), f, y0, 0, 2.0, steps);
    auto v = res.y.to_vector();
    return std::hypot(v[0] - std::cos(2.0), v[1] + std::sin(2.0));
  };
  double e1 = err(4), e2 = err(8);
  EXPECT_GT(e1 / e2, 100.0);  // ~256 for a true 8th-order method
}

TEST_F(RkTest, Rk4ConvergenceOrder) {
  OdeRhs f = [this](double, const DArray& y) {
    auto v = y.to_vector();
    return DArray::from_vector(rt_, {v[1], -v[0]});
  };
  auto y0 = DArray::from_vector(rt_, {1.0, 0.0});
  auto err = [&](int steps) {
    auto res = integrate(ButcherTableau::rk4(), f, y0, 0, 2.0, steps);
    auto v = res.y.to_vector();
    return std::hypot(v[0] - std::cos(2.0), v[1] + std::sin(2.0));
  };
  double e1 = err(16), e2 = err(32);
  double ratio = e1 / e2;
  EXPECT_GT(ratio, 12.0);  // ~16 for 4th order
  EXPECT_LT(ratio, 20.0);
}

TEST_F(RkTest, TimeDependentRhs) {
  // y' = t, y(0)=0 -> y(1) = 1/2 (exact for any RK of order >= 2).
  OdeRhs f = [this](double t, const DArray& y) {
    return DArray::full(rt_, y.size(), t);
  };
  auto y0 = DArray::zeros(rt_, 3);
  auto res = integrate(ButcherTableau::rk4(), f, y0, 0, 1, 10);
  for (double v : res.y.to_vector()) EXPECT_NEAR(v, 0.5, 1e-12);
}

TEST_F(RkTest, Rk45AdaptiveSolvesExponential) {
  auto y0 = DArray::full(rt_, 2, 1.0);
  OdeRhs f = [](double, const DArray& y) { return y.neg(); };
  auto res = rk45(f, y0, 0, 1, 1e-9, 1e-12);
  for (double v : res.y.to_vector()) EXPECT_NEAR(v, std::exp(-1.0), 1e-7);
  EXPECT_GT(res.steps, 0);
}

TEST_F(RkTest, Rk45TakesFewerStepsAtLooseTolerance) {
  auto y0 = DArray::full(rt_, 2, 1.0);
  OdeRhs f = [](double, const DArray& y) { return y.neg(); };
  auto tight = rk45(f, y0, 0, 1, 1e-10, 1e-12);
  auto loose = rk45(f, y0, 0, 1, 1e-4, 1e-6);
  EXPECT_LT(loose.rhs_evaluations, tight.rhs_evaluations);
}

}  // namespace
}  // namespace legate::solve
