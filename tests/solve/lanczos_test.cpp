#include "solve/lanczos.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sparse/formats.h"

namespace legate::solve {
namespace {

class LanczosTest : public ::testing::Test {
 protected:
  LanczosTest() : machine_(sim::Machine::gpus(3, pp_)), rt_(machine_) {}
  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(LanczosTest, DiagonalMatrixSpectrumEnds) {
  // diag(1..n): extreme eigenvalues are 1 and n.
  constexpr coord_t n = 40;
  std::vector<coord_t> indptr(n + 1), indices(n);
  std::vector<double> values(n);
  for (coord_t i = 0; i <= n; ++i) indptr[static_cast<std::size_t>(i)] = i;
  for (coord_t i = 0; i < n; ++i) {
    indices[static_cast<std::size_t>(i)] = i;
    values[static_cast<std::size_t>(i)] = static_cast<double>(i + 1);
  }
  auto A = sparse::CsrMatrix::from_host(rt_, n, n, indptr, indices, values);
  auto res = lanczos(A, 2, 40);
  ASSERT_FALSE(res.eigenvalues.empty());
  EXPECT_NEAR(res.eigenvalues.front(), 1.0, 1e-6);
  EXPECT_NEAR(res.eigenvalues.back(), static_cast<double>(n), 1e-6);
}

TEST_F(LanczosTest, Poisson1dSpectrumMatchesClosedForm) {
  // 1-D Poisson eigenvalues: 2 - 2 cos(k*pi/(n+1)).
  constexpr coord_t n = 30;
  auto A = sparse::diags(rt_, n, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
  auto res = lanczos(A, 3, 30);
  auto lam = [&](int k) {
    return 2.0 - 2.0 * std::cos(k * M_PI / (n + 1.0));
  };
  EXPECT_NEAR(res.eigenvalues.front(), lam(1), 1e-8);
  EXPECT_NEAR(res.eigenvalues.back(), lam(n), 1e-8);
}

TEST_F(LanczosTest, AgreesWithPowerIteration) {
  constexpr coord_t n = 64;
  auto R = sparse::random_csr(rt_, n, n, 0.08, 5);
  auto A = R.add(R.transpose()).scale(0.5).add(sparse::eye(rt_, n).scale(10.0));
  auto power = power_iteration(A, 300, 2);
  auto lz = lanczos(A, 1, 64);
  EXPECT_NEAR(lz.eigenvalues.back(), power.eigenvalue, 1e-5);
}

TEST_F(LanczosTest, EarlyBreakdownOnLowRank) {
  // Rank-1-ish: eye scaled by zero except one entry -> Lanczos stops early.
  std::vector<coord_t> indptr{0, 1, 1, 1, 1};
  std::vector<coord_t> indices{0};
  std::vector<double> values{5.0};
  auto A = sparse::CsrMatrix::from_host(rt_, 4, 4, indptr, indices, values);
  auto res = lanczos(A, 1, 20);
  EXPECT_LE(res.iterations, 4);
  EXPECT_NEAR(res.eigenvalues.back(), 5.0, 1e-8);
}

}  // namespace
}  // namespace legate::solve
