#include "solve/multigrid.h"

#include <gtest/gtest.h>

#include "sparse/formats.h"

namespace legate::solve {
namespace {

using dense::DArray;
using sparse::CsrMatrix;

class GmgTest : public ::testing::Test {
 protected:
  GmgTest() : machine_(sim::Machine::gpus(3, pp_)), rt_(machine_) {}

  CsrMatrix poisson2d(coord_t g) {
    CsrMatrix t = sparse::diags(rt_, g, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
    CsrMatrix i = sparse::eye(rt_, g);
    return sparse::kron(i, t).add(sparse::kron(t, i));
  }

  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(GmgTest, InjectionShapes) {
  CsrMatrix r1 = TwoLevelGmg::injection_1d(rt_, 16);
  EXPECT_EQ(r1.rows(), 8);
  EXPECT_EQ(r1.cols(), 16);
  EXPECT_EQ(r1.nnz(), 8);
  CsrMatrix r2 = TwoLevelGmg::injection_2d(rt_, 8);
  EXPECT_EQ(r2.rows(), 16);
  EXPECT_EQ(r2.cols(), 64);
  EXPECT_EQ(r2.nnz(), 16);
}

TEST_F(GmgTest, InjectionPicksEvenPoints) {
  CsrMatrix r = TwoLevelGmg::injection_1d(rt_, 8);
  auto x = DArray::arange(rt_, 8);
  auto c = r.spmv(x).to_vector();
  EXPECT_EQ(c, (std::vector<double>{0, 2, 4, 6}));
}

TEST_F(GmgTest, CoarseOperatorShape) {
  constexpr coord_t g = 16;
  CsrMatrix A = poisson2d(g);
  CsrMatrix R = TwoLevelGmg::injection_2d(rt_, g);
  TwoLevelGmg gmg(A, R);
  EXPECT_EQ(gmg.coarse_operator().rows(), (g / 2) * (g / 2));
  EXPECT_EQ(gmg.coarse_operator().cols(), (g / 2) * (g / 2));
  EXPECT_GT(gmg.coarse_operator().nnz(), 0);
}

TEST_F(GmgTest, VCycleReducesResidual) {
  constexpr coord_t g = 16;
  CsrMatrix A = poisson2d(g);
  CsrMatrix R = TwoLevelGmg::injection_2d(rt_, g);
  TwoLevelGmg gmg(A, R);
  auto b = DArray::random(rt_, g * g, 1);
  DArray x = gmg.apply(b);
  double r0 = b.norm().value;
  double r1 = b.sub(A.spmv(x)).norm().value;
  EXPECT_LT(r1, r0);  // one V-cycle must make progress
}

TEST_F(GmgTest, GmgPreconditionedCgSolves) {
  constexpr coord_t g = 16;
  CsrMatrix A = poisson2d(g);
  CsrMatrix R = TwoLevelGmg::injection_2d(rt_, g);
  TwoLevelGmg gmg(A, R);
  auto b = DArray::random(rt_, g * g, 2);
  auto res = cg(A, b, 1e-8, 500, gmg.preconditioner());
  EXPECT_TRUE(res.converged);
  double resid = b.sub(A.spmv(res.x)).norm().value / b.norm().value;
  EXPECT_LT(resid, 1e-6);
}

TEST_F(GmgTest, PreconditioningReducesIterations) {
  constexpr coord_t g = 32;
  CsrMatrix A = poisson2d(g);
  CsrMatrix R = TwoLevelGmg::injection_2d(rt_, g);
  TwoLevelGmg gmg(A, R);
  auto b = DArray::random(rt_, g * g, 3);
  auto plain = cg(A, b, 1e-8, 5000);
  auto pre = cg(A, b, 1e-8, 5000, gmg.preconditioner());
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

}  // namespace
}  // namespace legate::solve
