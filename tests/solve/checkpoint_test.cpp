#include <gtest/gtest.h>

#include <vector>

#include "solve/krylov.h"
#include "sparse/formats.h"

namespace legate::solve {
namespace {

using dense::DArray;
using sparse::CsrMatrix;

/// Two-node machine (2 GPUs per node). Node 0 holds the home system memory
/// (the attached A and b), so tests lose node 1 — the recoverable case.
sim::Machine two_node_machine() {
  sim::PerfParams pp;
  return sim::Machine::gpus(4, pp, /*gpus_per_node=*/2);
}

CsrMatrix poisson1d(rt::Runtime& rt, coord_t n) {
  return sparse::diags(rt, n, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
}

CsrMatrix nonsym1d(rt::Runtime& rt, coord_t n) {
  return sparse::diags(rt, n, {{-1, -1.0}, {0, 2.5}, {1, -0.7}});
}

TEST(CheckpointRecovery, CgSurvivesNodeLossBitExact) {
  const coord_t n = 64;
  const CheckpointPolicy every4{4};

  // Fault-free reference (same checkpoint cadence, no injection).
  SolveResult ref;
  {
    auto m = two_node_machine();
    rt::Runtime rt(m);
    CsrMatrix A = poisson1d(rt, n);
    auto b = DArray::random(rt, n, 1);
    ref = cg(A, b, 1e-10, 500, nullptr, every4);
    ASSERT_TRUE(ref.converged);
    EXPECT_GT(rt.engine().stats().checkpoints, 0);
    EXPECT_EQ(rt.engine().stats().restores, 0);
  }

  // Same solve with node 1 lost mid-stream.
  auto m = two_node_machine();
  rt::RuntimeOptions opts;
  opts.faults.enabled = true;
  opts.faults.node_loss_time = 2e-3;
  opts.faults.node_loss_node = 1;
  opts.faults.node_recovery_seconds = 0.01;
  rt::Runtime rt(m, opts);
  CsrMatrix A = poisson1d(rt, n);
  auto b = DArray::random(rt, n, 1);
  SolveResult res = cg(A, b, 1e-10, 500, nullptr, every4);

  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, ref.iterations);
  EXPECT_DOUBLE_EQ(res.residual, ref.residual);
  std::vector<double> xs = res.x.to_vector();
  std::vector<double> xr = ref.x.to_vector();
  ASSERT_EQ(xs.size(), xr.size());
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(xs[i], xr[i]) << i;

  const auto& st = rt.engine().stats();
  EXPECT_EQ(st.faults_injected, 1);
  EXPECT_GE(st.restores, 1);
  EXPECT_GT(st.checkpoints, 0);
  // The recovered run pays for the outage, the restore and the replay.
  EXPECT_GE(rt.engine().makespan(), opts.faults.node_recovery_seconds);
}

TEST(CheckpointRecovery, GmresSurvivesNodeLossBitExact) {
  const coord_t n = 64;
  const CheckpointPolicy every10{10};

  SolveResult ref;
  {
    auto m = two_node_machine();
    rt::Runtime rt(m);
    CsrMatrix A = nonsym1d(rt, n);
    auto b = DArray::random(rt, n, 3);
    ref = gmres(A, b, 30, 1e-9, 400, every10);
    ASSERT_TRUE(ref.converged);
  }

  auto m = two_node_machine();
  rt::RuntimeOptions opts;
  opts.faults.enabled = true;
  opts.faults.node_loss_time = 2e-3;
  opts.faults.node_loss_node = 1;
  opts.faults.node_recovery_seconds = 0.01;
  rt::Runtime rt(m, opts);
  CsrMatrix A = nonsym1d(rt, n);
  auto b = DArray::random(rt, n, 3);
  SolveResult res = gmres(A, b, 30, 1e-9, 400, every10);

  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, ref.iterations);
  EXPECT_DOUBLE_EQ(res.residual, ref.residual);
  std::vector<double> xs = res.x.to_vector();
  std::vector<double> xr = ref.x.to_vector();
  ASSERT_EQ(xs.size(), xr.size());
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(xs[i], xr[i]) << i;
  EXPECT_GE(rt.engine().stats().restores, 1);
}

TEST(CheckpointRecovery, CgTransientRetriesStayBitExact) {
  // Transient faults below the retry limit never need a rollback: the
  // values are bit-exact and only simulated time grows.
  const coord_t n = 48;
  SolveResult ref;
  double clean_makespan;
  {
    auto m = two_node_machine();
    rt::Runtime rt(m);
    CsrMatrix A = poisson1d(rt, n);
    auto b = DArray::random(rt, n, 7);
    ref = cg(A, b, 1e-10, 500);
    ASSERT_TRUE(ref.converged);
    clean_makespan = rt.engine().makespan();
  }
  auto m = two_node_machine();
  rt::RuntimeOptions opts;
  opts.faults.enabled = true;
  opts.faults.seed = 99;
  opts.faults.task_fault_rate = 0.02;
  rt::Runtime rt(m, opts);
  CsrMatrix A = poisson1d(rt, n);
  auto b = DArray::random(rt, n, 7);
  SolveResult res = cg(A, b, 1e-10, 500);

  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, ref.iterations);
  std::vector<double> xs = res.x.to_vector();
  std::vector<double> xr = ref.x.to_vector();
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(xs[i], xr[i]) << i;
  EXPECT_GT(rt.engine().stats().retries, 0);
  // Retry time is charged to the processor clocks; at this scale the control
  // clock dominates the makespan, so only require it not to shrink.
  EXPECT_GE(rt.engine().makespan(), clean_makespan);
}

TEST(CheckpointRecovery, FaultedRunsAreDeterministic) {
  const coord_t n = 48;
  auto run = [&]() {
    auto m = two_node_machine();
    rt::RuntimeOptions opts;
    opts.faults.enabled = true;
    opts.faults.seed = 4242;
    opts.faults.task_fault_rate = 0.03;
    opts.faults.node_loss_time = 2e-3;
    opts.faults.node_loss_node = 1;
    opts.faults.node_recovery_seconds = 0.01;
    rt::Runtime rt(m, opts);
    CsrMatrix A = poisson1d(rt, n);
    auto b = DArray::random(rt, n, 5);
    SolveResult res = cg(A, b, 1e-10, 500, nullptr, CheckpointPolicy{5});
    return std::make_pair(rt.engine().report(), res.x.to_vector());
  };
  auto [report1, x1] = run();
  auto [report2, x2] = run();
  EXPECT_EQ(report1, report2);  // identical schedule, Stats and makespan
  EXPECT_EQ(x1, x2);
  EXPECT_NE(report1.find("faults{"), std::string::npos);
}

TEST(CheckpointRecovery, LossWithoutPolicyAborts) {
  // Without a checkpoint policy the solver cannot recover: it must report
  // failure rather than return silently-wrong values.
  const coord_t n = 64;
  auto m = two_node_machine();
  rt::RuntimeOptions opts;
  opts.faults.enabled = true;
  opts.faults.task_fault_rate = 1.0;  // every task exhausts its retries
  opts.faults.max_attempts = 2;
  rt::Runtime rt(m, opts);
  CsrMatrix A = poisson1d(rt, n);
  auto b = DArray::random(rt, n, 1);
  SolveResult res = cg(A, b, 1e-10, 50);
  EXPECT_FALSE(res.converged);
}

}  // namespace
}  // namespace legate::solve
