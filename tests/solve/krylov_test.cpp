#include "solve/krylov.h"

#include <gtest/gtest.h>

#include "sparse/formats.h"

namespace legate::solve {
namespace {

using dense::DArray;
using sparse::CsrMatrix;

class KrylovTest : public ::testing::Test {
 protected:
  KrylovTest() : machine_(sim::Machine::gpus(3, pp_)), rt_(machine_) {}

  /// 1-D Poisson operator (SPD, well-conditioned at this size).
  CsrMatrix poisson1d(coord_t n) {
    return sparse::diags(rt_, n, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
  }

  /// Verify ‖b − A x‖ / ‖b‖ below tol.
  static void expect_solves(const CsrMatrix& A, const DArray& b, const DArray& x,
                            double tol) {
    double r = b.sub(A.spmv(x)).norm().value;
    double bn = b.norm().value;
    EXPECT_LT(r / bn, tol);
  }

  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(KrylovTest, CgSolvesPoisson) {
  CsrMatrix A = poisson1d(64);
  auto b = DArray::random(rt_, 64, 1);
  auto res = cg(A, b, 1e-10, 500);
  EXPECT_TRUE(res.converged);
  expect_solves(A, b, res.x, 1e-8);
}

TEST_F(KrylovTest, CgExactAfterNIterations) {
  // CG is exact in at most n steps (in exact arithmetic).
  CsrMatrix A = poisson1d(16);
  auto b = DArray::random(rt_, 16, 2);
  auto res = cg(A, b, 1e-12, 32);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 20);
}

TEST_F(KrylovTest, CgZeroRhsGivesZero) {
  CsrMatrix A = poisson1d(10);
  auto b = DArray::zeros(rt_, 10);
  auto res = cg(A, b, 1e-10, 50);
  EXPECT_TRUE(res.converged);
  for (double v : res.x.to_vector()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_F(KrylovTest, JacobiPreconditionedCgConverges) {
  // Diagonally scaled Poisson benefits from Jacobi preconditioning.
  CsrMatrix A0 = poisson1d(64);
  auto d = DArray::arange(rt_, 64).add_scalar(1.0);
  CsrMatrix A = A0.scale_rows(d);          // rows scaled: not symmetric
  CsrMatrix As = A.add(A.transpose());     // symmetrize -> SPD-ish
  auto b = DArray::random(rt_, 64, 3);
  DArray dinv_src = As.diagonal();
  auto dv = dinv_src.to_vector();
  for (auto& v : dv) v = 1.0 / v;
  DArray dinv = DArray::from_vector(rt_, dv);
  Precond M = [&](const DArray& r) { return r.mul(dinv); };
  auto res_pc = cg(As, b, 1e-9, 2000, M);
  EXPECT_TRUE(res_pc.converged);
  expect_solves(As, b, res_pc.x, 1e-7);
  auto res_plain = cg(As, b, 1e-9, 2000);
  EXPECT_LE(res_pc.iterations, res_plain.iterations);
}

TEST_F(KrylovTest, CgsSolvesPoisson) {
  CsrMatrix A = poisson1d(48);
  auto b = DArray::random(rt_, 48, 4);
  auto res = cgs(A, b, 1e-10, 500);
  EXPECT_TRUE(res.converged);
  expect_solves(A, b, res.x, 1e-7);
}

TEST_F(KrylovTest, BicgSolvesNonsymmetric) {
  // Upwind-ish advection-diffusion operator (nonsymmetric).
  CsrMatrix A = sparse::diags(rt_, 40, {{-1, -1.5}, {0, 3.0}, {1, -0.5}});
  auto b = DArray::random(rt_, 40, 5);
  auto res = bicg(A, b, 1e-10, 500);
  EXPECT_TRUE(res.converged);
  expect_solves(A, b, res.x, 1e-7);
}

TEST_F(KrylovTest, BicgstabSolvesNonsymmetric) {
  CsrMatrix A = sparse::diags(rt_, 40, {{-1, -1.5}, {0, 3.0}, {1, -0.5}});
  auto b = DArray::random(rt_, 40, 6);
  auto res = bicgstab(A, b, 1e-10, 500);
  EXPECT_TRUE(res.converged);
  expect_solves(A, b, res.x, 1e-7);
}

TEST_F(KrylovTest, GmresSolvesNonsymmetric) {
  CsrMatrix A = sparse::diags(rt_, 50, {{-2, 0.3}, {-1, -1.5}, {0, 3.0}, {1, -0.5}});
  auto b = DArray::random(rt_, 50, 7);
  auto res = gmres(A, b, 20, 1e-10, 500);
  EXPECT_TRUE(res.converged);
  expect_solves(A, b, res.x, 1e-7);
}

TEST_F(KrylovTest, GmresRestartStillConverges) {
  CsrMatrix A = poisson1d(40);
  auto b = DArray::random(rt_, 40, 8);
  auto res = gmres(A, b, 5, 1e-9, 2000);  // tiny restart forces many cycles
  EXPECT_TRUE(res.converged);
  expect_solves(A, b, res.x, 1e-6);
}

TEST_F(KrylovTest, SolversAgreeOnSameSystem) {
  CsrMatrix A = poisson1d(32);
  auto b = DArray::random(rt_, 32, 9);
  auto x1 = cg(A, b, 1e-11, 500).x.to_vector();
  auto x2 = bicgstab(A, b, 1e-11, 500).x.to_vector();
  auto x3 = gmres(A, b, 32, 1e-11, 500).x.to_vector();
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_NEAR(x1[i], x2[i], 1e-6);
    EXPECT_NEAR(x1[i], x3[i], 1e-6);
  }
}

TEST_F(KrylovTest, PowerIterationFindsDominantEigenvalue) {
  // diag(1..n): dominant eigenvalue n.
  constexpr coord_t n = 20;
  std::vector<coord_t> indptr(n + 1), indices(n);
  std::vector<double> values(n);
  for (coord_t i = 0; i <= n; ++i) indptr[static_cast<std::size_t>(i)] = i;
  for (coord_t i = 0; i < n; ++i) {
    indices[static_cast<std::size_t>(i)] = i;
    values[static_cast<std::size_t>(i)] = static_cast<double>(i + 1);
  }
  CsrMatrix A = CsrMatrix::from_host(rt_, n, n, indptr, indices, values);
  auto res = power_iteration(A, 200, 3);
  EXPECT_NEAR(res.eigenvalue, static_cast<double>(n), 1e-6);
  EXPECT_NEAR(res.eigenvector.norm().value, 1.0, 1e-10);
}

TEST_F(KrylovTest, Fig1ProgramRuns) {
  // The paper's Fig. 1: A = 0.5 (R + Rᵀ) + n I, power iteration.
  constexpr coord_t n = 64;
  CsrMatrix R = sparse::random_csr(rt_, n, n, 0.05, 42);
  CsrMatrix A =
      R.add(R.transpose()).scale(0.5).add(sparse::eye(rt_, n).scale(double(n)));
  auto res = power_iteration(A, 50, 7);
  // Gershgorin: eigenvalue near n (diag dominates), strictly positive.
  EXPECT_GT(res.eigenvalue, static_cast<double>(n) * 0.5);
  EXPECT_LT(res.eigenvalue, static_cast<double>(n) * 2.0);
}

}  // namespace
}  // namespace legate::solve
