#include "sim/machine.h"

#include <gtest/gtest.h>

namespace legate::sim {
namespace {

TEST(Machine, GpuPackingMatchesSummitShape) {
  PerfParams pp;
  Machine m = Machine::gpus(12, pp);
  EXPECT_EQ(m.num_procs(), 12);
  EXPECT_EQ(m.nodes(), 2);  // 6 GPUs per node
  EXPECT_EQ(m.target(), ProcKind::GPU);
  for (const auto& p : m.procs()) {
    EXPECT_EQ(p.kind, ProcKind::GPU);
    EXPECT_EQ(m.memory(p.mem).kind, MemKind::Frame);
    EXPECT_EQ(m.memory(p.mem).node, p.node);
  }
}

TEST(Machine, PartialNode) {
  PerfParams pp;
  Machine m = Machine::gpus(3, pp);
  EXPECT_EQ(m.num_procs(), 3);
  EXPECT_EQ(m.nodes(), 1);
}

TEST(Machine, SocketPacking) {
  PerfParams pp;
  Machine m = Machine::sockets(8, pp);
  EXPECT_EQ(m.num_procs(), 8);
  EXPECT_EQ(m.nodes(), 4);  // 2 sockets per node
  for (const auto& p : m.procs()) {
    EXPECT_EQ(p.kind, ProcKind::CPU);
    EXPECT_EQ(m.memory(p.mem).kind, MemKind::Sys);
  }
  // Both sockets of a node share the same system memory.
  EXPECT_EQ(m.proc(0).mem, m.proc(1).mem);
  EXPECT_NE(m.proc(0).mem, m.proc(2).mem);
}

TEST(Machine, HomeMemoryIsNodeZeroSysmem) {
  PerfParams pp;
  Machine m = Machine::gpus(6, pp);
  EXPECT_EQ(m.memory(m.home_memory()).kind, MemKind::Sys);
  EXPECT_EQ(m.memory(m.home_memory()).node, 0);
}

TEST(Machine, FramebufferCapacityMinusReserve) {
  PerfParams pp;
  Machine m = Machine::gpus(1, pp);
  double cap = m.memory(m.proc(0).mem).capacity;
  EXPECT_DOUBLE_EQ(cap, pp.gpu_fb_capacity - pp.legate_fb_reserved);
}

}  // namespace
}  // namespace legate::sim
