#include "sim/engine.h"

#include <gtest/gtest.h>

namespace legate::sim {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  PerfParams pp;
};

TEST_F(EngineTest, ProcClocksSerializeWork) {
  Machine m = Machine::gpus(2, pp);
  Engine e(m);
  double t1 = e.busy_proc(0, 0.0, 1.0);
  double t2 = e.busy_proc(0, 0.0, 1.0);  // same proc: queues behind t1
  double t3 = e.busy_proc(1, 0.0, 1.0);  // other proc: parallel
  EXPECT_DOUBLE_EQ(t1, 1.0);
  EXPECT_DOUBLE_EQ(t2, 2.0);
  EXPECT_DOUBLE_EQ(t3, 1.0);
  EXPECT_DOUBLE_EQ(e.makespan(), 2.0);
}

TEST_F(EngineTest, ReadyTimeDelaysStart) {
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  double t = e.busy_proc(0, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(t, 6.0);
}

TEST_F(EngineTest, ControlLaneAccumulates) {
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  double a = e.control_advance(10e-6);
  double b = e.control_advance(10e-6);
  EXPECT_DOUBLE_EQ(b - a, 10e-6);
}

TEST_F(EngineTest, IntraNodeCopyUsesNvlink) {
  Machine m = Machine::gpus(2, pp);
  Engine e(m);
  int fb0 = m.proc(0).mem, fb1 = m.proc(1).mem;
  double bytes = 45e9;  // exactly one second at NVLink bandwidth
  double t = e.copy(fb0, fb1, bytes, 0.0);
  EXPECT_NEAR(t, 1.0 + pp.nvlink_lat, 1e-9);
  EXPECT_DOUBLE_EQ(e.stats().bytes_nvlink, bytes);
  EXPECT_DOUBLE_EQ(e.stats().bytes_ib, 0.0);
}

TEST_F(EngineTest, InterNodeCopyUsesIbAndContends) {
  Machine m = Machine::gpus(12, pp);  // 2 nodes
  Engine e(m);
  int fb0 = m.proc(0).mem;        // node 0
  int fb6 = m.proc(6).mem;        // node 1
  int fb7 = m.proc(7).mem;        // node 1
  double bytes = pp.ib_bw;        // one second each
  double t1 = e.copy(fb0, fb6, bytes, 0.0);
  // Second copy from the same node shares the NIC-out queue: its
  // transmission serializes behind the first (latency is per message, not
  // per queue slot).
  double t2 = e.copy(fb0, fb7, bytes, 0.0);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(t2 - t1, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(e.stats().bytes_ib, 2 * bytes);
}

TEST_F(EngineTest, IntraMemoryCopyCountsAsIntra) {
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  int fb = m.proc(0).mem;
  e.copy(fb, fb, 1e6, 0.0);
  EXPECT_DOUBLE_EQ(e.stats().bytes_intra, 1e6);
}

TEST_F(EngineTest, CopyRejectsOutOfRangeMemoryIds) {
  Machine m = Machine::gpus(2, pp);
  Engine e(m);
  const int nmem = static_cast<int>(m.memories().size());
  int fb = m.proc(0).mem;
  EXPECT_THROW(e.copy(-1, fb, 1e6, 0.0), IndexError);
  EXPECT_THROW(e.copy(nmem, fb, 1e6, 0.0), IndexError);
  EXPECT_THROW(e.copy(fb, -3, 1e6, 0.0), IndexError);
  EXPECT_THROW(e.copy(fb, nmem + 7, 1e6, 0.0), IndexError);
  // The check precedes any accounting: a rejected copy must not half-apply.
  EXPECT_EQ(e.stats().copies, 0L);
  EXPECT_DOUBLE_EQ(e.stats().bytes_intra, 0.0);
  EXPECT_DOUBLE_EQ(e.stats().bytes_nvlink, 0.0);
  EXPECT_DOUBLE_EQ(e.stats().bytes_ib, 0.0);
  EXPECT_DOUBLE_EQ(e.makespan(), 0.0);
  // And the message names the offending axis and bound.
  try {
    e.copy(fb, nmem, 1e6, 0.0);
    FAIL() << "expected IndexError";
  } catch (const IndexError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("destination memory id"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(nmem)), std::string::npos) << what;
  }
}

TEST_F(EngineTest, LegateAllreduceHasLinearTerm) {
  Machine m = Machine::gpus(6, pp);
  Engine e(m);
  double t_legate_small = e.allreduce(2, 0.0, true) ;
  double t_legate_big = e.allreduce(192, 0.0, true);
  double t_mpi_big = e.allreduce(192, 0.0, false);
  // The Legate-style reduction degrades much faster with processor count.
  EXPECT_GT(t_legate_big - t_legate_small, 192 * pp.legate_allreduce_linear * 0.9);
  EXPECT_LT(t_mpi_big, t_legate_big / 5);
}

TEST_F(EngineTest, AllreduceSingleProcIsFree) {
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  EXPECT_DOUBLE_EQ(e.allreduce(1, 3.0, true), 3.0);
}

TEST_F(EngineTest, CapacityOverflowThrows) {
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  int fb = m.proc(0).mem;
  double cap = m.memory(fb).capacity;
  e.alloc_bytes(fb, cap * 0.9);
  EXPECT_THROW(e.alloc_bytes(fb, cap * 0.2), OutOfMemoryError);
}

TEST_F(EngineTest, FreeBytesAllowsReuse) {
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  int fb = m.proc(0).mem;
  double cap = m.memory(fb).capacity;
  e.alloc_bytes(fb, cap * 0.9);
  e.free_bytes(fb, cap * 0.9);
  EXPECT_NO_THROW(e.alloc_bytes(fb, cap * 0.9));
  EXPECT_NEAR(e.peak_bytes(fb), cap * 0.9, 1.0);
}

TEST_F(EngineTest, CostModelRooflineCpuVsGpu) {
  CostModel cm(pp);
  Cost c{1e9, 1e6, 1.0};  // memory bound
  double cpu = cm.kernel_seconds(ProcKind::CPU, c, 1.0);
  double gpu = cm.kernel_seconds(ProcKind::GPU, c);
  EXPECT_NEAR(cpu, 1e9 / pp.cpu_mem_bw, 1e-12);
  EXPECT_NEAR(gpu, 1e9 / pp.gpu_mem_bw, 1e-12);
  // Core fraction scales CPU throughput (SciPy single-thread mode).
  double scipy = cm.kernel_seconds(ProcKind::CPU, c, pp.scipy_core_fraction);
  EXPECT_GT(scipy, 5 * cpu);
}

TEST_F(EngineTest, EfficiencyFactorSlowsKernel) {
  CostModel cm(pp);
  Cost fast{1e9, 0, 1.0}, slow{1e9, 0, 0.2};
  EXPECT_NEAR(cm.kernel_seconds(ProcKind::GPU, slow),
              5 * cm.kernel_seconds(ProcKind::GPU, fast), 1e-12);
}

TEST_F(EngineTest, AllreduceBytesAddsRingTerm) {
  Machine m = Machine::gpus(12, pp);  // 2 nodes -> IB bottleneck
  Engine e(m);
  double t0 = e.allreduce(12, 0.0, true);
  double t1 = e.allreduce_bytes(12, 12e9, 0.0, true);
  EXPECT_NEAR(t1 - t0, 2.0 * 12e9 * (11.0 / 12.0) / pp.ib_bw, 1e-6);
}

TEST_F(EngineTest, KernelSecondsRejectsNonPositiveEfficiency) {
  CostModel cm(pp);
  Cost zero{1e9, 0, 0.0};
  Cost negative{1e9, 0, -0.5};
  EXPECT_THROW(cm.kernel_seconds(ProcKind::GPU, zero), std::logic_error);
  EXPECT_THROW(cm.kernel_seconds(ProcKind::CPU, negative), std::logic_error);
}

// Ring all-reduce traffic attribution: every hop i -> i+1 carries
// 2*b*(p-1)/p bytes, booked by hop locality. The pre-fix accounting charged
// a flat 2*b to bytes_ib on any multi-node machine and nothing on one node.

TEST_F(EngineTest, SingleNodeGpuAllreduceBooksNvlink) {
  Machine m = Machine::gpus(6, pp);  // 1 node, 6 framebuffers
  Engine e(m);
  double bytes = 6e6;
  e.allreduce_bytes(6, bytes, 0.0, true);
  double hop = 2.0 * bytes * (5.0 / 6.0);
  EXPECT_DOUBLE_EQ(e.stats().bytes_nvlink, 6 * hop);  // full ring on NVLink
  EXPECT_DOUBLE_EQ(e.stats().bytes_ib, 0.0);
  EXPECT_DOUBLE_EQ(e.stats().bytes_intra, 0.0);
}

TEST_F(EngineTest, SharedSysmemAllreduceBooksIntra) {
  Machine m = Machine::sockets(2, pp);  // 1 node, sockets share sysmem
  Engine e(m);
  double bytes = 4e6;
  e.allreduce_bytes(2, bytes, 0.0, true);
  double hop = 2.0 * bytes * (1.0 / 2.0);
  EXPECT_DOUBLE_EQ(e.stats().bytes_intra, 2 * hop);  // hops 0->1 and 1->0
  EXPECT_DOUBLE_EQ(e.stats().bytes_nvlink, 0.0);
  EXPECT_DOUBLE_EQ(e.stats().bytes_ib, 0.0);
}

TEST_F(EngineTest, MultiNodeAllreduceBooksOnlyBoundaryHopsToIb) {
  Machine m = Machine::gpus(12, pp);  // 2 nodes x 6 GPUs
  Engine e(m);
  double bytes = 12e6;
  e.allreduce_bytes(12, bytes, 0.0, true);
  double hop = 2.0 * bytes * (11.0 / 12.0);
  // Ring 0..11: hops 5->6 and 11->0 cross the node boundary, the other ten
  // stay on NVLink inside a node.
  EXPECT_DOUBLE_EQ(e.stats().bytes_ib, 2 * hop);
  EXPECT_DOUBLE_EQ(e.stats().bytes_nvlink, 10 * hop);
  EXPECT_DOUBLE_EQ(e.stats().bytes_intra, 0.0);
}

TEST_F(EngineTest, SingleProcAllreduceMovesNothing) {
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  e.allreduce_bytes(1, 1e9, 0.0, true);
  EXPECT_DOUBLE_EQ(e.stats().bytes_ib, 0.0);
  EXPECT_DOUBLE_EQ(e.stats().bytes_nvlink, 0.0);
  EXPECT_DOUBLE_EQ(e.stats().bytes_intra, 0.0);
  EXPECT_EQ(e.stats().allreduces, 1);
}

TEST_F(EngineTest, NicInSerializesAtDestination) {
  Machine m = Machine::gpus(18, pp);  // 3 nodes x 6 GPUs
  Engine e(m);
  int src0 = m.proc(0).mem;    // node 0
  int src1 = m.proc(6).mem;    // node 1
  int dst = m.proc(12).mem;    // node 2
  double bytes = pp.ib_bw;     // one second of transmission each
  double t1 = e.copy(src0, dst, bytes, 0.0);
  // Different source nodes, so NIC-out queues are independent — but both
  // transfers drain through node 2's NIC-in, which serializes them.
  double t2 = e.copy(src1, dst, bytes, 0.0);
  EXPECT_NEAR(t1, 1.0 + pp.ib_lat, 1e-9);
  EXPECT_NEAR(t2, 2.0 + pp.ib_lat, 1e-9);
}

TEST_F(EngineTest, ResetClearsClocksStatsAndTimeline) {
  Machine m = Machine::gpus(2, pp);
  Engine e(m);
  e.recorder().enable();
  int mem = m.proc(0).mem;
  e.alloc_bytes(mem, 1e6);
  e.busy_proc(0, 0.0, 1.0, "work");
  e.copy(m.proc(0).mem, m.proc(1).mem, 1e6, 0.0);
  e.allreduce_bytes(2, 1e3, 0.0, true);
  e.control_advance(10e-6);
  ASSERT_GT(e.makespan(), 0.0);
  ASSERT_GT(e.stats().copies, 0);

  e.reset();
  EXPECT_DOUBLE_EQ(e.makespan(), 0.0);
  EXPECT_EQ(e.stats().copies, 0);
  EXPECT_EQ(e.stats().tasks, 0);
  EXPECT_EQ(e.stats().allreduces, 0);
  EXPECT_DOUBLE_EQ(e.stats().bytes_intra, 0.0);
  EXPECT_DOUBLE_EQ(e.stats().bytes_nvlink, 0.0);
  EXPECT_DOUBLE_EQ(e.stats().bytes_ib, 0.0);
  EXPECT_TRUE(e.recorder().events().empty());
  // Live allocations survive (they belong to the owning Runtime); peak
  // restarts from current usage.
  EXPECT_DOUBLE_EQ(e.used_bytes(mem), 1e6);
  EXPECT_DOUBLE_EQ(e.peak_bytes(mem), 1e6);
  // Every clock rewound: identical work replays to identical times.
  EXPECT_DOUBLE_EQ(e.busy_proc(0, 0.0, 1.0), 1.0);
  EXPECT_NEAR(e.copy(m.proc(0).mem, m.proc(1).mem, 45e9, 0.0),
              1.0 + pp.nvlink_lat, 1e-9);
}

}  // namespace
}  // namespace legate::sim
