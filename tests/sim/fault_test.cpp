#include "sim/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/machine.h"

namespace legate::sim {
namespace {

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 42;
  cfg.task_fault_rate = 0.3;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  for (long t = 0; t < 500; ++t) {
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(a.should_fail(t, k), b.should_fail(t, k));
      EXPECT_DOUBLE_EQ(a.fail_fraction(t, k), b.fail_fraction(t, k));
    }
  }
}

TEST(FaultInjector, ScheduleIsPureFunctionOfArguments) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 7;
  cfg.task_fault_rate = 0.5;
  FaultInjector inj(cfg);
  // Query in two different orders; answers must not depend on call history.
  std::vector<bool> forward, backward;
  for (long t = 0; t < 100; ++t) forward.push_back(inj.should_fail(t, 0));
  for (long t = 99; t >= 0; --t) backward.push_back(inj.should_fail(t, 0));
  for (long t = 0; t < 100; ++t) {
    EXPECT_EQ(forward[static_cast<std::size_t>(t)],
              backward[static_cast<std::size_t>(99 - t)]);
  }
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  FaultConfig a;
  a.enabled = true;
  a.seed = 1;
  a.task_fault_rate = 0.5;
  FaultConfig b = a;
  b.seed = 2;
  FaultInjector ia(a), ib(b);
  int differ = 0;
  for (long t = 0; t < 200; ++t) {
    if (ia.should_fail(t, 0) != ib.should_fail(t, 0)) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, RateZeroNeverFailsRateOneAlwaysFails) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 3;
  cfg.task_fault_rate = 0.0;
  FaultInjector never(cfg);
  cfg.task_fault_rate = 1.0;
  FaultInjector always(cfg);
  for (long t = 0; t < 100; ++t) {
    EXPECT_FALSE(never.should_fail(t, 0));
    EXPECT_TRUE(always.should_fail(t, 0));
  }
}

TEST(FaultInjector, ScriptedFaultHonored) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.scripted = {{7, 0}, {7, 1}, {11, 2}};
  FaultInjector inj(cfg);
  EXPECT_TRUE(inj.should_fail(7, 0));
  EXPECT_TRUE(inj.should_fail(7, 1));
  EXPECT_FALSE(inj.should_fail(7, 2));
  EXPECT_TRUE(inj.should_fail(11, 2));
  EXPECT_FALSE(inj.should_fail(8, 0));
}

TEST(FaultInjector, FailFractionInRange) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 9;
  FaultInjector inj(cfg);
  for (long t = 0; t < 200; ++t) {
    double f = inj.fail_fraction(t, 0);
    EXPECT_GE(f, 0.1);
    EXPECT_LT(f, 1.0);
  }
}

TEST(FaultInjector, NodeLossFiresExactlyOnce) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.node_loss_time = 1.0;
  FaultInjector inj(cfg);
  EXPECT_FALSE(inj.node_loss_due(0.5));
  EXPECT_FALSE(inj.node_loss_fired());
  EXPECT_TRUE(inj.node_loss_due(1.5));
  EXPECT_TRUE(inj.node_loss_fired());
  EXPECT_FALSE(inj.node_loss_due(2.0));
}

TEST(Engine, FreeBytesUnderflowIsCaught) {
  PerfParams pp;
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  int mem = m.proc(0).mem;
  e.alloc_bytes(mem, 1000.0);
  e.free_bytes(mem, 1000.0);
  // Releasing more than is reserved is a double-free in the alloc store.
  EXPECT_THROW(e.free_bytes(mem, 4096.0), std::logic_error);
}

TEST(Engine, OomMessageReportsUsage) {
  PerfParams pp;
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  int mem = m.proc(0).mem;
  double cap = e.capacity(mem);
  try {
    e.alloc_bytes(mem, cap + 1.0);
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& err) {
    std::string msg = err.what();
    EXPECT_NE(msg.find("GB used of"), std::string::npos) << msg;
  }
}

TEST(Engine, CheckpointIoChargesAndCounts) {
  PerfParams pp;
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  double t1 = e.checkpoint_io(1e6, 0.0, /*restore=*/false);
  EXPECT_GT(t1, pp.checkpoint_lat);  // latency + bytes/bw
  double t2 = e.checkpoint_io(1e6, 0.0, /*restore=*/true);
  EXPECT_GT(t2, t1);  // one shared PFS channel serializes traffic
  EXPECT_EQ(e.stats().checkpoints, 1);
  EXPECT_EQ(e.stats().restores, 1);
  EXPECT_DOUBLE_EQ(e.stats().bytes_ckpt, 2e6);
  EXPECT_GE(e.makespan(), t2);
}

TEST(Engine, StallAllAdvancesEveryClock) {
  PerfParams pp;
  Machine m = Machine::gpus(2, pp);
  Engine e(m);
  double before = e.makespan();
  double after = e.stall_all(before, 0.25);
  EXPECT_GE(after, before + 0.25);
  // Processors cannot start work before the outage ends.
  double done = e.busy_proc(0, 0.0, 0.0);
  EXPECT_GE(done, 0.25);
}

TEST(Engine, ResilienceCountersOnlyInReportWhenNonzero) {
  PerfParams pp;
  Machine m = Machine::gpus(1, pp);
  Engine clean(m);
  EXPECT_EQ(clean.report().find("faults{"), std::string::npos);
  Engine faulty(m);
  faulty.note_fault();
  EXPECT_NE(faulty.report().find("faults{"), std::string::npos);
}

}  // namespace
}  // namespace legate::sim
