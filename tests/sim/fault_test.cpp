#include "sim/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/machine.h"

namespace legate::sim {
namespace {

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 42;
  cfg.task_fault_rate = 0.3;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  for (long t = 0; t < 500; ++t) {
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(a.should_fail(t, k), b.should_fail(t, k));
      EXPECT_DOUBLE_EQ(a.fail_fraction(t, k), b.fail_fraction(t, k));
    }
  }
}

TEST(FaultInjector, ScheduleIsPureFunctionOfArguments) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 7;
  cfg.task_fault_rate = 0.5;
  FaultInjector inj(cfg);
  // Query in two different orders; answers must not depend on call history.
  std::vector<bool> forward, backward;
  for (long t = 0; t < 100; ++t) forward.push_back(inj.should_fail(t, 0));
  for (long t = 99; t >= 0; --t) backward.push_back(inj.should_fail(t, 0));
  for (long t = 0; t < 100; ++t) {
    EXPECT_EQ(forward[static_cast<std::size_t>(t)],
              backward[static_cast<std::size_t>(99 - t)]);
  }
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  FaultConfig a;
  a.enabled = true;
  a.seed = 1;
  a.task_fault_rate = 0.5;
  FaultConfig b = a;
  b.seed = 2;
  FaultInjector ia(a), ib(b);
  int differ = 0;
  for (long t = 0; t < 200; ++t) {
    if (ia.should_fail(t, 0) != ib.should_fail(t, 0)) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, RateZeroNeverFailsRateOneAlwaysFails) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 3;
  cfg.task_fault_rate = 0.0;
  FaultInjector never(cfg);
  cfg.task_fault_rate = 1.0;
  FaultInjector always(cfg);
  for (long t = 0; t < 100; ++t) {
    EXPECT_FALSE(never.should_fail(t, 0));
    EXPECT_TRUE(always.should_fail(t, 0));
  }
}

TEST(FaultInjector, ScriptedFaultHonored) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.scripted = {{7, 0}, {7, 1}, {11, 2}};
  FaultInjector inj(cfg);
  EXPECT_TRUE(inj.should_fail(7, 0));
  EXPECT_TRUE(inj.should_fail(7, 1));
  EXPECT_FALSE(inj.should_fail(7, 2));
  EXPECT_TRUE(inj.should_fail(11, 2));
  EXPECT_FALSE(inj.should_fail(8, 0));
}

TEST(FaultInjector, DuplicateScriptedEntriesBehaveLikeOne) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.scripted = {{7, 0}, {7, 0}, {7, 0}};
  FaultInjector inj(cfg);
  // A duplicated {task, attempt} entry is idempotent: the pair fails, its
  // neighbors do not, and repeated queries agree (pure function).
  EXPECT_TRUE(inj.should_fail(7, 0));
  EXPECT_TRUE(inj.should_fail(7, 0));
  EXPECT_FALSE(inj.should_fail(7, 1));
  EXPECT_FALSE(inj.should_fail(6, 0));

  FaultConfig one = cfg;
  one.scripted = {{7, 0}};
  FaultInjector single(one);
  for (long t = 0; t < 50; ++t) {
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(inj.should_fail(t, k), single.should_fail(t, k));
    }
  }
}

TEST(FaultInjector, ScriptedAttemptBeyondMaxAttemptsIsInert) {
  // An entry whose attempt index can never be reached (attempt >=
  // max_attempts) answers true if asked, but the reachable attempts of the
  // same task are untouched — the schedule of a run that retries up to
  // max_attempts times is identical to one with no such entry.
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.max_attempts = 3;
  cfg.scripted = {{5, 7}};
  FaultInjector inj(cfg);
  EXPECT_TRUE(inj.should_fail(5, 7));  // honored if queried...
  for (int k = 0; k < cfg.max_attempts; ++k) {
    EXPECT_FALSE(inj.should_fail(5, k));  // ...invisible to real attempts
  }
}

TEST(FaultInjector, ScriptedEntriesDoNotPerturbTheRandomStream) {
  // Scripted faults overlay the random stream; everywhere off-script the two
  // schedules must be bit-identical.
  FaultConfig random_only;
  random_only.enabled = true;
  random_only.seed = 99;
  random_only.task_fault_rate = 0.25;
  FaultConfig mixed = random_only;
  mixed.scripted = {{13, 1}, {13, 1}, {40, 9}};
  FaultInjector r(random_only), m(mixed);
  for (long t = 0; t < 300; ++t) {
    for (int k = 0; k < 3; ++k) {
      if (t == 13 && k == 1) {
        EXPECT_TRUE(m.should_fail(t, k));
        continue;
      }
      EXPECT_EQ(r.should_fail(t, k), m.should_fail(t, k));
      EXPECT_DOUBLE_EQ(r.fail_fraction(t, k), m.fail_fraction(t, k));
    }
  }
}

TEST(FaultInjector, FlipDrawsArePureAndSeeded) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 17;
  cfg.bitflip_rate = 1e-3;
  cfg.output_flip_rate = 0.2;
  FaultInjector a(cfg), b(cfg);
  for (long s = 0; s < 100; ++s) {
    EXPECT_EQ(a.resident_flips(s, 4, 2048.0), b.resident_flips(s, 4, 2048.0));
    EXPECT_EQ(a.flip_offset(s, 4, 0, 8192), b.flip_offset(s, 4, 0, 8192));
    EXPECT_LT(a.flip_offset(s, 4, 0, 8192), 8192U);
    EXPECT_EQ(a.flip_bit(s, 4, 0), b.flip_bit(s, 4, 0));
    EXPECT_GE(a.flip_bit(s, 4, 0), 0);
    EXPECT_LT(a.flip_bit(s, 4, 0), 8);
    EXPECT_EQ(a.output_flip(s), b.output_flip(s));
    EXPECT_EQ(a.output_flip_index(s, 1024), b.output_flip_index(s, 1024));
    EXPECT_LT(a.output_flip_index(s, 1024), 1024U);
    // Output flips live in the exponent bits so scaled checks must see them.
    EXPECT_GE(a.output_flip_bit(s), 52);
    EXPECT_LE(a.output_flip_bit(s), 62);
  }
}

TEST(FaultInjector, ResidentFlipCountTracksExposure) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 5;
  cfg.bitflip_rate = 0.5;
  FaultInjector inj(cfg);
  // The expectation rate * byte_seconds is honored as floor + thinned extra.
  EXPECT_EQ(inj.resident_flips(0, 1, 0.0), 0);
  EXPECT_GE(inj.resident_flips(0, 1, 8.0), 4);   // lambda = 4.0 exactly
  EXPECT_LE(inj.resident_flips(0, 1, 8.0), 5);
  long total = 0;
  for (long s = 0; s < 2000; ++s) total += inj.resident_flips(s, 1, 1.0);
  // lambda = 0.5 per poll: the thinned draw should land near 1000.
  EXPECT_GT(total, 800);
  EXPECT_LT(total, 1200);
}

TEST(FaultInjector, ScriptedFlipsFireExactlyOnceInTimeOrder) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.scripted_flips = {{1.0, 0, 10, 0, 0}, {2.0, 0, 11, 8, 3},
                        {2.0, 0, 11, 9, 4}};
  FaultInjector inj(cfg);
  EXPECT_TRUE(inj.scripted_flips_due(0.5).empty());
  auto first = inj.scripted_flips_due(1.5);
  ASSERT_EQ(first.size(), 1U);
  EXPECT_EQ(first[0], 0U);
  auto rest = inj.scripted_flips_due(3.0);
  ASSERT_EQ(rest.size(), 2U);  // both t=2 entries, each exactly once
  EXPECT_EQ(rest[0], 1U);
  EXPECT_EQ(rest[1], 2U);
  EXPECT_TRUE(inj.scripted_flips_due(10.0).empty());
}

TEST(FaultInjector, FailFractionInRange) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 9;
  FaultInjector inj(cfg);
  for (long t = 0; t < 200; ++t) {
    double f = inj.fail_fraction(t, 0);
    EXPECT_GE(f, 0.1);
    EXPECT_LT(f, 1.0);
  }
}

TEST(FaultInjector, NodeLossFiresExactlyOnce) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.node_loss_time = 1.0;
  FaultInjector inj(cfg);
  EXPECT_FALSE(inj.node_loss_due(0.5));
  EXPECT_FALSE(inj.node_loss_fired());
  EXPECT_TRUE(inj.node_loss_due(1.5));
  EXPECT_TRUE(inj.node_loss_fired());
  EXPECT_FALSE(inj.node_loss_due(2.0));
}

TEST(Engine, FreeBytesUnderflowIsCaught) {
  PerfParams pp;
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  int mem = m.proc(0).mem;
  e.alloc_bytes(mem, 1000.0);
  e.free_bytes(mem, 1000.0);
  // Releasing more than is reserved is a double-free in the alloc store.
  EXPECT_THROW(e.free_bytes(mem, 4096.0), std::logic_error);
}

TEST(Engine, OomMessageReportsUsage) {
  PerfParams pp;
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  int mem = m.proc(0).mem;
  double cap = e.capacity(mem);
  try {
    e.alloc_bytes(mem, cap + 1.0);
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& err) {
    std::string msg = err.what();
    EXPECT_NE(msg.find("GB used of"), std::string::npos) << msg;
  }
}

TEST(Engine, CheckpointIoChargesAndCounts) {
  PerfParams pp;
  Machine m = Machine::gpus(1, pp);
  Engine e(m);
  double t1 = e.checkpoint_io(1e6, 0.0, /*restore=*/false);
  EXPECT_GT(t1, pp.checkpoint_lat);  // latency + bytes/bw
  double t2 = e.checkpoint_io(1e6, 0.0, /*restore=*/true);
  EXPECT_GT(t2, t1);  // one shared PFS channel serializes traffic
  EXPECT_EQ(e.stats().checkpoints, 1);
  EXPECT_EQ(e.stats().restores, 1);
  EXPECT_DOUBLE_EQ(e.stats().bytes_ckpt, 2e6);
  EXPECT_GE(e.makespan(), t2);
}

TEST(Engine, StallAllAdvancesEveryClock) {
  PerfParams pp;
  Machine m = Machine::gpus(2, pp);
  Engine e(m);
  double before = e.makespan();
  double after = e.stall_all(before, 0.25);
  EXPECT_GE(after, before + 0.25);
  // Processors cannot start work before the outage ends.
  double done = e.busy_proc(0, 0.0, 0.0);
  EXPECT_GE(done, 0.25);
}

TEST(Engine, ResilienceCountersOnlyInReportWhenNonzero) {
  PerfParams pp;
  Machine m = Machine::gpus(1, pp);
  Engine clean(m);
  EXPECT_EQ(clean.report().find("faults{"), std::string::npos);
  Engine faulty(m);
  faulty.note_fault();
  EXPECT_NE(faulty.report().find("faults{"), std::string::npos);
}

}  // namespace
}  // namespace legate::sim
