// lsr_diag flight recorder: ring semantics (overwrite-oldest, drop counts,
// reset-by-floor), cross-thread drain ordering, mode/option parsing, dump
// JSON shape, the reset/flush-sink contract, and the determinism acceptance
// check (stable snapshots bit-identical at any thread count with diag on).
#include "diag/diag.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rt/runtime.h"
#include "sim/machine.h"
#include "solve/krylov.h"
#include "sparse/formats.h"

namespace legate::diag {
namespace {

Event make_event(std::uint64_t seq, const char* label) {
  Event e;
  e.seq = seq;
  e.wall = static_cast<double>(seq);
  e.kind = EventKind::Mark;
  std::snprintf(e.label, sizeof e.label, "%s", label);
  return e;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Fresh per-test dump directory under the build tree.
std::string test_dump_dir(const char* name) {
  std::string dir = std::string("diag_dumps_") + name;
  std::remove(dir.c_str());  // best effort; dump() mkdirs as needed
  return dir;
}

TEST(DiagRing, DrainReturnsPushedOrderOldestFirst) {
  Ring r(8, "t");
  for (int i = 1; i <= 5; ++i) EXPECT_FALSE(r.push(make_event(i, "e")));
  auto evs = r.drain();
  ASSERT_EQ(evs.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(evs[i].seq, static_cast<unsigned>(i + 1));
}

TEST(DiagRing, OverwritesOldestAndCountsDrops) {
  Ring r(8, "t");  // capacities round up to a power of two, minimum 8
  EXPECT_EQ(r.capacity(), 8u);
  for (int i = 1; i <= 20; ++i) r.push(make_event(i, "e"));
  EXPECT_EQ(r.pushed(), 20u);
  EXPECT_EQ(r.dropped(), 12u);  // 20 pushed into 8 slots
  auto evs = r.drain();
  ASSERT_EQ(evs.size(), 8u);
  EXPECT_EQ(evs.front().seq, 13u);  // oldest surviving
  EXPECT_EQ(evs.back().seq, 20u);
}

TEST(DiagRing, FloorResetEmptiesWithoutTouchingSlotsOrCountingDrops) {
  Ring r(8, "t");
  for (int i = 1; i <= 4; ++i) r.push(make_event(i, "e"));
  r.set_floor_head();
  EXPECT_EQ(r.resident(), 0u);
  // Pushes after a floor reset overwrite logically-dead slots: no drops.
  const auto dropped_before = r.dropped();
  for (int i = 5; i <= 8; ++i) EXPECT_FALSE(r.push(make_event(i, "e")));
  EXPECT_EQ(r.dropped(), dropped_before);
  auto evs = r.drain(/*min_seq=*/5);
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().seq, 5u);
}

TEST(DiagParse, ModeAndLogLevelAndNames) {
  EXPECT_EQ(parse_mode("off"), Mode::Off);
  EXPECT_EQ(parse_mode("0"), Mode::Off);
  EXPECT_EQ(parse_mode("on"), Mode::On);
  EXPECT_EQ(parse_mode("1"), Mode::On);
  EXPECT_EQ(parse_mode("abort-on-hang"), Mode::AbortOnHang);
  EXPECT_EQ(parse_mode("ABORT"), Mode::AbortOnHang);
  EXPECT_EQ(parse_mode("bogus"), Mode::Unset);
  EXPECT_EQ(parse_mode(nullptr), Mode::Unset);
  EXPECT_STREQ(mode_name(Mode::On), "on");
  EXPECT_STREQ(mode_name(Mode::AbortOnHang), "abort-on-hang");

  EXPECT_EQ(parse_log_level("silent"), LogLevel::Silent);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
}

TEST(DiagOptions, FromEnvOverlaysDefaults) {
  ::setenv("LSR_DIAG_RING", "128", 1);
  ::setenv("LSR_DIAG_STALL_S", "1.5", 1);
  ::setenv("LSR_DIAG_DIVERGENCE_WINDOW", "7", 1);
  ::setenv("LSR_DIAG_DIR", "some/dir", 1);
  Options o = Options::from_env();
  EXPECT_EQ(o.ring_capacity, 128u);
  EXPECT_DOUBLE_EQ(o.stall_deadline_s, 1.5);
  EXPECT_EQ(o.divergence_window, 7);
  EXPECT_EQ(o.dump_dir, "some/dir");
  ::unsetenv("LSR_DIAG_RING");
  ::unsetenv("LSR_DIAG_STALL_S");
  ::unsetenv("LSR_DIAG_DIVERGENCE_WINDOW");
  ::unsetenv("LSR_DIAG_DIR");
}

TEST(DiagRecorder, DisabledRecorderRecordsNothing) {
  FlightRecorder fr;
  fr.record(EventKind::Mark, "ignored");
  fr.record_thread(EventKind::Mark, "ignored");
  EXPECT_EQ(fr.events_recorded(), 0u);
  EXPECT_FALSE(fr.enabled());
}

TEST(DiagRecorder, RecordsEventsWithMonotoneSeqAndLabels) {
  FlightRecorder fr;
  Options o;
  o.watchdog = false;
  fr.configure(Mode::On, o);
  fr.record(EventKind::Launch, "spmv", 3, 0, 1.5);
  fr.record(EventKind::Retire, "spmv");
  auto d = fr.drain();
  ASSERT_EQ(d.events.size(), 2u);
  EXPECT_LT(d.events[0].second.seq, d.events[1].second.seq);
  EXPECT_EQ(d.events[0].second.kind, EventKind::Launch);
  EXPECT_STREQ(d.events[0].second.label, "spmv");
  EXPECT_EQ(d.events[0].second.a, 3);
  EXPECT_DOUBLE_EQ(d.events[0].second.v, 1.5);
}

TEST(DiagRecorder, CrossThreadDrainIsSortedByWallThenSeq) {
  // Satellite (b): events recorded from several threads must come out of
  // drain() in a monotonic (wall, seq) order, whatever the ring layout.
  FlightRecorder fr;
  Options o;
  o.watchdog = false;
  fr.configure(Mode::On, o);
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&fr] {
      for (int i = 0; i < 50; ++i) fr.record_thread(EventKind::Mark, "m", i);
    });
  }
  for (auto& th : ts) th.join();
  fr.record(EventKind::Fence, "fence");
  auto d = fr.drain();
  ASSERT_EQ(d.events.size(), 201u);
  for (std::size_t i = 1; i < d.events.size(); ++i) {
    const Event& prev = d.events[i - 1].second;
    const Event& cur = d.events[i].second;
    EXPECT_TRUE(prev.wall < cur.wall ||
                (prev.wall == cur.wall && prev.seq <= cur.seq))
        << "event " << i << " out of order";
  }
  EXPECT_GE(d.rings.size(), 2u);  // sim ring + at least one thread ring
}

TEST(DiagRecorder, ResetRunsFlushSinkThenDrainsEmpty) {
  FlightRecorder fr;
  Options o;
  o.watchdog = false;
  fr.configure(Mode::On, o);
  fr.record(EventKind::Mark, "pre-reset");
  int sink_events = -1;
  fr.set_flush_sink([&sink_events](FlightRecorder& r) {
    sink_events = static_cast<int>(r.drain().events.size());
  });
  fr.reset();
  EXPECT_EQ(sink_events, 1);  // sink saw the event before the floor rose
  EXPECT_TRUE(fr.drain().events.empty());
  // Recording continues after reset on the same rings.
  fr.record(EventKind::Mark, "post-reset");
  auto d = fr.drain();
  ASSERT_EQ(d.events.size(), 1u);
  EXPECT_STREQ(d.events[0].second.label, "post-reset");
}

TEST(DiagRecorder, DumpWritesVersionedJsonWithSuspectBlock) {
  FlightRecorder fr;
  Options o;
  o.watchdog = false;
  o.dump_dir = test_dump_dir("basic");
  fr.configure(Mode::On, o);
  fr.begin_launch("suspect_task", 2);
  fr.record(EventKind::Launch, "suspect_task");
  std::string path = fr.dump("unit-test");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("lsr_dump_"), std::string::npos);
  std::string j = slurp(path);
  EXPECT_NE(j.find("\"schema\":1"), std::string::npos);
  EXPECT_NE(j.find("\"tool\":\"lsr_diag\""), std::string::npos);
  EXPECT_NE(j.find("\"reason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(j.find("\"suspect\""), std::string::npos);
  EXPECT_NE(j.find("suspect_task"), std::string::npos);
  EXPECT_NE(j.find("\"active\":true"), std::string::npos);
  EXPECT_EQ(fr.dumps_written(), 1u);
  fr.end_launch();
  std::remove(path.c_str());
}

TEST(DiagGuard, DivergenceGuardTripsOnStagnationNotOnProgress) {
  FlightRecorder fr;
  Options o;
  o.watchdog = false;
  o.dump_on_trip = false;
  o.divergence_window = 5;
  o.divergence_rtol = 1e-3;
  fr.configure(Mode::On, o);
  {
    DivergenceGuard improving(fr, "cg");
    double r = 1.0;
    for (int i = 0; i < 50; ++i) {
      EXPECT_FALSE(improving.observe(i, r));
      r *= 0.5;
    }
    EXPECT_FALSE(improving.tripped());
  }
  {
    DivergenceGuard stuck(fr, "cg");
    bool tripped_now = false;
    for (int i = 0; i < 10 && !tripped_now; ++i)
      tripped_now = stuck.observe(i, 1.0);
    EXPECT_TRUE(stuck.tripped());
    EXPECT_GE(fr.trips(), 1u);
    // Once tripped, the guard stays quiet (one trip per solve).
    EXPECT_FALSE(stuck.observe(11, 1.0));
  }
}

TEST(DiagGuard, NonFiniteResidualNeverCountsAsProgress) {
  FlightRecorder fr;
  Options o;
  o.watchdog = false;
  o.dump_on_trip = false;
  o.divergence_window = 4;
  fr.configure(Mode::On, o);
  DivergenceGuard g(fr, "cg");
  const double nan = std::nan("");
  bool tripped = false;
  for (int i = 0; i < 6 && !tripped; ++i) tripped = g.observe(i, nan);
  EXPECT_TRUE(g.tripped());
}

// --- runtime integration ---------------------------------------------------

namespace rttest {

using rt::Runtime;
using rt::RuntimeOptions;
using rt::Store;
using rt::TaskLauncher;

void run_axpy(Runtime& rt, Store& s, double v, const char* name = "axpy") {
  TaskLauncher launch(rt, name);
  int out = launch.add_output(s);
  launch.set_leaf([out, v](rt::TaskContext& ctx) {
    auto y = ctx.full<double>(out);
    Interval iv = ctx.elem_interval(out);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] += v;
    ctx.add_cost(static_cast<double>(iv.size()) * 16,
                 static_cast<double>(iv.size()));
  });
  launch.execute();
}

}  // namespace rttest

TEST(DiagRuntime, LaunchAndRetireEventsFlowIntoStableMetrics) {
  sim::PerfParams pp;
  auto m = sim::Machine::gpus(2, pp);
  rt::RuntimeOptions opts;
  opts.diag = Mode::On;
  opts.diag_opts.watchdog = false;
  rt::Runtime rt(m, opts);
  rt::Store s = rt.create_store(rt::DType::F64, {64});
  rttest::run_axpy(rt, s, 1.0);
  rt.fence();
  auto& fr = rt.flight();
  ASSERT_TRUE(fr.enabled());
  auto d = fr.drain();
  bool saw_launch = false, saw_retire = false;
  for (const auto& [ring, ev] : d.events) {
    if (ev.kind == EventKind::Launch) saw_launch = true;
    if (ev.kind == EventKind::Retire) saw_retire = true;
  }
  EXPECT_TRUE(saw_launch);
  EXPECT_TRUE(saw_retire);
  auto snap = rt.metrics_snapshot();
  const auto* rec = snap.find("lsr_diag_events_recorded_total");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->stability, metrics::Stability::Stable);
  EXPECT_GT(rec->value, 0.0);
  const auto* trips = snap.find("lsr_diag_watchdog_trips_total");
  ASSERT_NE(trips, nullptr);
  EXPECT_DOUBLE_EQ(trips->value, 0.0);  // healthy run
}

TEST(DiagRuntime, StableSnapshotsBitIdenticalAcrossThreadsWithDiagOn) {
  // The acceptance determinism check: everything Stable — including the
  // lsr_diag event counters — must be bit-identical at any exec thread
  // count while the recorder is on.
  auto run = [](int threads) {
    sim::PerfParams pp;
    auto m = sim::Machine::gpus(3, pp);
    rt::RuntimeOptions opts;
    opts.exec_threads = threads;
    opts.diag = Mode::On;
    opts.diag_opts.watchdog = false;
    rt::Runtime rt(m, opts);
    auto A = sparse::diags(rt, 96, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
    auto b = dense::DArray::random(rt, 96, 7);
    auto res = solve::cg(A, b, 1e-10, 200);
    EXPECT_TRUE(res.converged);
    rt.fence();
    return rt.metrics_snapshot().to_json(/*stable_only=*/true);
  };
  const std::string t1 = run(1);
  EXPECT_EQ(t1, run(4));
  EXPECT_EQ(t1, run(8));
}

TEST(DiagRuntime, SimTimeIdenticalWithDiagOnAndOff) {
  // Recording charges no simulated time: bit-identical makespans.
  auto run = [](Mode mode) {
    sim::PerfParams pp;
    auto m = sim::Machine::gpus(2, pp);
    rt::RuntimeOptions opts;
    opts.diag = mode;
    opts.diag_opts.watchdog = false;
    rt::Runtime rt(m, opts);
    rt::Store s = rt.create_store(rt::DType::F64, {256});
    for (int i = 0; i < 10; ++i) rttest::run_axpy(rt, s, 1.0);
    rt.fence();
    return rt.sim_time();
  };
  EXPECT_EQ(run(Mode::Off), run(Mode::On));
}

}  // namespace
}  // namespace legate::diag
