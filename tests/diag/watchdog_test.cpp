// lsr_diag watchdog: stall detection against a scripted wall-clock hang,
// deadlock classification from the exec-pool probe, node-loss post-mortems,
// and the deterministic divergence guard on a stagnating CG — each trip must
// leave a dump whose suspect block names the offending launch / node.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "diag/diag.h"
#include "rt/runtime.h"
#include "sim/machine.h"
#include "solve/krylov.h"
#include "sparse/csr.h"
#include "sparse/formats.h"

namespace legate::diag {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Spin (with sleeps) until `pred` holds or ~5 wall seconds pass.
template <typename Pred>
bool wait_for(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

void run_named(rt::Runtime& rt, rt::Store& s, const char* name) {
  rt::TaskLauncher launch(rt, name);
  int out = launch.add_output(s);
  launch.set_leaf([out](rt::TaskContext& ctx) {
    auto y = ctx.full<double>(out);
    Interval iv = ctx.elem_interval(out);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = 1.0;
    ctx.add_cost(static_cast<double>(iv.size()) * 8, 0);
  });
  launch.execute();
}

TEST(DiagWatchdog, TripsOnStalledProgressWhileBusy) {
  FlightRecorder fr;
  Options o;
  o.stall_deadline_s = 0.1;
  o.poll_interval_s = 0.01;
  o.dump_dir = "diag_dumps_stall_unit";
  fr.configure(Mode::On, o);
  // Busy (an active launch on the board) but no progress: must trip.
  fr.begin_launch("wedged_task", 0);
  EXPECT_TRUE(wait_for([&fr] { return fr.dumps_written() > 0; }));
  fr.end_launch();
  EXPECT_GE(fr.trips(), 1u);
}

TEST(DiagWatchdog, StaysQuietWhileIdle) {
  FlightRecorder fr;
  Options o;
  o.stall_deadline_s = 0.05;
  o.poll_interval_s = 0.01;
  o.dump_on_trip = false;
  fr.configure(Mode::On, o);
  // Idle board, no pool: nothing to wait on, so no trip however long the
  // deadline has passed.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(fr.trips(), 0u);
}

TEST(DiagWatchdog, ClassifiesDeadlockFromPoolProbe) {
  FlightRecorder fr;
  Options o;
  o.stall_deadline_s = 0.1;
  o.poll_interval_s = 0.01;
  o.dump_dir = "diag_dumps_deadlock_unit";
  fr.configure(Mode::On, o);
  // Ready work queued, nothing running, no progress: the deadlock signature.
  fr.set_pool_status([] {
    PoolStatus s;
    s.queued = 3;
    s.running = 0;
    s.completed = 1;
    s.valid = true;
    return s;
  });
  // The trip bumps trips() first and then writes the dump; wait for the
  // dump so the assertions don't race the watchdog thread mid-trip.
  EXPECT_TRUE(wait_for([&fr] { return fr.dumps_written() > 0; }));
  EXPECT_GE(fr.trips(), 1u);
  auto d = fr.drain();
  bool saw_trip = false;
  for (const auto& [ring, ev] : d.events) {
    if (ev.kind == EventKind::WatchdogTrip) saw_trip = true;
  }
  EXPECT_TRUE(saw_trip);
  fr.set_pool_status({});
}

TEST(DiagWatchdog, ScriptedStallTripsAndDumpNamesTheLaunch) {
  // End-to-end acceptance: a scripted wall-clock hang inside a leaf trips
  // the watchdog mid-launch and the post-mortem names the hung launch.
  sim::PerfParams pp;
  auto m = sim::Machine::gpus(2, pp);
  rt::RuntimeOptions opts;
  opts.faults.enabled = true;
  opts.faults.scripted_stalls = {{"stall_victim", 0.6}};
  opts.diag = Mode::On;
  opts.diag_opts.stall_deadline_s = 0.15;
  opts.diag_opts.poll_interval_s = 0.02;
  opts.diag_opts.dump_dir = "diag_dumps_stall_rt";
  rt::Runtime rt(m, opts);
  rt::Store s = rt.create_store(rt::DType::F64, {64});
  run_named(rt, s, "warmup_task");
  run_named(rt, s, "stall_victim");  // sleeps 0.6 s on the control path
  rt.fence();
  auto& fr = rt.flight();
  EXPECT_GE(fr.trips(), 1u);
  ASSERT_GE(fr.dumps_written(), 1u);
  // The trip fired while stall_victim was the in-flight launch; its dump
  // must carry the name in the suspect block and a Stall event in the log.
  std::string latest = fr.dump("post-assert");  // fresh dump, same board
  ASSERT_FALSE(latest.empty());
  std::string j = slurp(latest);
  EXPECT_NE(j.find("stall_victim"), std::string::npos);
  std::remove(latest.c_str());
}

TEST(DiagWatchdog, NodeLossWritesDumpNamingTheNode) {
  sim::PerfParams pp;
  auto m = sim::Machine::gpus(4, pp, 2);  // 2 nodes x 2 GPUs
  rt::RuntimeOptions opts;
  opts.faults.enabled = true;
  opts.faults.node_loss_time = 1e-9;
  opts.faults.node_loss_node = 1;
  opts.faults.node_recovery_seconds = 0.05;
  opts.diag = Mode::On;
  opts.diag_opts.watchdog = false;
  opts.diag_opts.dump_dir = "diag_dumps_nodeloss";
  rt::Runtime rt(m, opts);
  rt::Store s = rt.create_store(rt::DType::F64, {400});
  run_named(rt, s, "fill_before_loss");
  run_named(rt, s, "launch_during_loss");  // polls the schedule, loses node 1
  rt.fence();
  auto& fr = rt.flight();
  ASSERT_GE(fr.dumps_written(), 1u);
  const auto bd = fr.board();
  EXPECT_EQ(bd.lost_node, 1);
  // A fresh dump from the same recorder reflects the node-loss suspect that
  // the automatic "node-loss" dump recorded at trip time.
  std::string path = fr.dump("post-assert");
  ASSERT_FALSE(path.empty());
  std::string j = slurp(path);
  EXPECT_NE(j.find("\"node_lost\":true"), std::string::npos);
  EXPECT_NE(j.find("\"node\":1"), std::string::npos);
  auto d = fr.drain();
  bool saw_loss = false;
  for (const auto& [ring, ev] : d.events) {
    if (ev.kind == EventKind::NodeLoss && ev.a == 1) saw_loss = true;
  }
  EXPECT_TRUE(saw_loss);
  std::remove(path.c_str());
}

TEST(DiagWatchdog, DivergentCgTripsDivergenceGuardDeterministically) {
  // CG on a deliberately indefinite diagonal matrix with b = ones: the very
  // first search direction has pᵀAp = 0 (the ±1/±2 eigenvalue blocks cancel
  // exactly), so the recurrence produces non-finite residuals forever — a
  // breakdown the divergence guard must flag as "never progressing". Runs
  // entirely on the control path, so the trip is deterministic.
  auto run = [](int threads) {
    sim::PerfParams pp;
    auto m = sim::Machine::gpus(2, pp);
    rt::RuntimeOptions opts;
    opts.exec_threads = threads;
    opts.diag = Mode::On;
    opts.diag_opts.watchdog = false;
    opts.diag_opts.divergence_window = 10;
    // Big enough to keep the mid-run trip event resident through the
    // post-trip iterations' worth of launch/retire events.
    opts.diag_opts.ring_capacity = 32768;
    opts.diag_opts.dump_dir = "diag_dumps_divergence";
    rt::Runtime rt(m, opts);
    const coord_t n = 16;
    std::vector<coord_t> indptr(n + 1), indices(n);
    std::vector<double> values(n);
    const double diagvals[4] = {1.0, -1.0, 2.0, -2.0};
    for (coord_t i = 0; i < n; ++i) {
      indptr[i + 1] = i + 1;
      indices[i] = i;
      values[i] = diagvals[i % 4];
    }
    auto A = sparse::CsrMatrix::from_host(rt, n, n, indptr, indices, values);
    auto b = dense::DArray::full(rt, n, 1.0);
    auto res = solve::cg(A, b, /*tol=*/1e-10, 60);
    EXPECT_FALSE(res.converged);
    rt.fence();
    auto& fr = rt.flight();
    EXPECT_GE(fr.trips(), 1u) << "threads=" << threads;
    EXPECT_GE(fr.dumps_written(), 1u);
    auto d = fr.drain();
    std::uint64_t solver_iters = 0;
    bool saw_trip_event = false;
    for (const auto& [ring, ev] : d.events) {
      if (ev.kind == EventKind::SolverIter) ++solver_iters;
      if (ev.kind == EventKind::WatchdogTrip &&
          std::string(ev.label) == "cg") {
        saw_trip_event = true;
      }
    }
    EXPECT_GT(solver_iters, 0u);
    EXPECT_TRUE(saw_trip_event);
    return fr.trips();
  };
  EXPECT_EQ(run(1), run(4));  // trip count is thread-invariant
}

}  // namespace
}  // namespace legate::diag
