// Unit tests of the integrity primitives: the CRC32C kernel, the per-store
// chunk ledger (record / verify / single-bit correction), and the versioned,
// checksummed checkpoint file format with its torn-file rejection paths.
#include "integrity/crc32c.h"
#include "integrity/integrity.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dense/array.h"
#include "rt/checkpoint.h"
#include "rt/runtime.h"
#include "sim/machine.h"

namespace legate {
namespace {

using integrity::ChecksumLedger;
using integrity::crc32c;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(Crc32c, KnownVector) {
  // The canonical CRC-32C check value (RFC 3720 appendix B.4 test pattern).
  const std::string s = "123456789";
  EXPECT_EQ(crc32c(0, s.data(), s.size()), 0xE3069283U);
}

TEST(Crc32c, EmptyInputIsZero) { EXPECT_EQ(crc32c(0, nullptr, 0), 0U); }

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string s = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32c(0, s.data(), s.size());
  for (std::size_t cut : {std::size_t{1}, std::size_t{7}, s.size() - 1}) {
    std::uint32_t c = crc32c(0, s.data(), cut);
    c = crc32c(c, s.data() + cut, s.size() - cut);
    EXPECT_EQ(c, whole) << "cut at " << cut;
  }
}

TEST(Crc32c, EveryBitFlipChangesTheSum) {
  std::vector<std::byte> buf = bytes_of("checksummed payload bytes");
  const std::uint32_t clean = crc32c(0, buf.data(), buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      buf[i] ^= std::byte{static_cast<unsigned char>(1U << b)};
      EXPECT_NE(crc32c(0, buf.data(), buf.size()), clean);
      buf[i] ^= std::byte{static_cast<unsigned char>(1U << b)};
    }
  }
}

TEST(Ledger, CleanVerifyFindsNothing) {
  ChecksumLedger led;
  std::vector<std::byte> buf(3 * ChecksumLedger::kChunkBytes + 17,
                             std::byte{0x5a});
  led.record(1, buf.data(), buf.size(), 0, buf.size());
  EXPECT_TRUE(led.tracked(1));
  EXPECT_TRUE(led.verify(1, buf.data(), buf.size()).empty());
}

TEST(Ledger, DetectsAndCorrectsSingleBitFlip) {
  ChecksumLedger led;
  std::vector<std::byte> buf(2 * ChecksumLedger::kChunkBytes, std::byte{0});
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = std::byte{static_cast<unsigned char>(i * 31)};
  led.record(7, buf.data(), buf.size(), 0, buf.size());
  const std::vector<std::byte> clean = buf;

  const std::size_t victim = ChecksumLedger::kChunkBytes + 101;
  buf[victim] ^= std::byte{0x10};
  auto bad = led.verify(7, buf.data(), buf.size());
  ASSERT_EQ(bad.size(), 1U);
  EXPECT_EQ(bad[0].chunk, 1U);
  EXPECT_LE(bad[0].lo, victim);
  EXPECT_GT(bad[0].hi, victim);

  EXPECT_TRUE(led.try_correct(7, buf.data(), buf.size(), bad[0]));
  EXPECT_EQ(buf, clean);  // bit-exact repair
  EXPECT_TRUE(led.verify(7, buf.data(), buf.size()).empty());
}

TEST(Ledger, DoubleFlipInOneChunkIsUncorrectable) {
  ChecksumLedger led;
  std::vector<std::byte> buf(ChecksumLedger::kChunkBytes, std::byte{0x33});
  led.record(9, buf.data(), buf.size(), 0, buf.size());
  buf[5] ^= std::byte{0x01};
  buf[400] ^= std::byte{0x80};
  auto bad = led.verify(9, buf.data(), buf.size());
  ASSERT_EQ(bad.size(), 1U);
  EXPECT_FALSE(led.try_correct(9, buf.data(), buf.size(), bad[0]));
}

TEST(Ledger, PartialRecordRehashesOnlyTouchedChunks) {
  ChecksumLedger led;
  std::vector<std::byte> buf(4 * ChecksumLedger::kChunkBytes, std::byte{0});
  led.record(3, buf.data(), buf.size(), 0, buf.size());
  // A legitimate write to chunk 2, re-recorded over its own range.
  const std::size_t lo = 2 * ChecksumLedger::kChunkBytes;
  buf[lo + 8] = std::byte{0xff};
  led.record(3, buf.data(), buf.size(), lo, lo + 16);
  EXPECT_TRUE(led.verify(3, buf.data(), buf.size()).empty());
}

TEST(Ledger, ForgetDropsTheStore) {
  ChecksumLedger led;
  std::vector<std::byte> buf(64, std::byte{1});
  led.record(5, buf.data(), buf.size(), 0, buf.size());
  led.forget(5);
  EXPECT_FALSE(led.tracked(5));
}

// --- checkpoint file format -------------------------------------------------

class CheckpointFileTest : public ::testing::Test {
 protected:
  CheckpointFileTest()
      : machine_(sim::Machine::gpus(4, pp_, 2)), rt_(machine_, {}) {}

  std::string temp_path(const char* name) {
    return ::testing::TempDir() + "lsr_ckpt_" + name;
  }

  /// what() of the exception thrown by f, or "" if nothing was thrown.
  template <typename F>
  static std::string thrown_what(F f) {
    try {
      f();
    } catch (const std::exception& e) {
      return e.what();
    }
    return "";
  }

  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(CheckpointFileTest, SaveLoadRestoreRoundTrip) {
  auto x = dense::DArray::from_vector(rt_, {1.0, 2.0, 3.0, 4.0, 5.0});
  rt::Checkpoint ck = rt_.checkpoint({x.store()});
  ck.set_scalar("it", 7);
  const std::string path = temp_path("roundtrip");
  ck.save(path);

  x.fill({0.0, 0.0});
  rt::Checkpoint loaded = rt::Checkpoint::load(path, {x.store()});
  EXPECT_TRUE(loaded.valid());
  EXPECT_EQ(loaded.scalar("it"), 7);
  EXPECT_EQ(loaded.taken_at(), ck.taken_at());
  rt_.restore(loaded);
  EXPECT_EQ(x.to_vector(), (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST_F(CheckpointFileTest, RejectsEmptyFile) {
  const std::string path = temp_path("empty");
  { std::ofstream os(path, std::ios::binary | std::ios::trunc); }
  auto x = dense::DArray::zeros(rt_, 4);
  std::string what =
      thrown_what([&] { (void)rt::Checkpoint::load(path, {x.store()}); });
  EXPECT_NE(what.find("file is empty"), std::string::npos) << what;
}

TEST_F(CheckpointFileTest, RejectsBadMagic) {
  const std::string path = temp_path("magic");
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << "definitely not a checkpoint";
  }
  auto x = dense::DArray::zeros(rt_, 4);
  std::string what =
      thrown_what([&] { (void)rt::Checkpoint::load(path, {x.store()}); });
  EXPECT_NE(what.find("bad magic"), std::string::npos) << what;
}

TEST_F(CheckpointFileTest, RejectsTornFile) {
  auto x = dense::DArray::from_vector(rt_, {1.0, 2.0, 3.0, 4.0});
  rt::Checkpoint ck = rt_.checkpoint({x.store()});
  const std::string path = temp_path("torn");
  ck.save(path);
  // Tear the file mid-payload (the classic crash-during-write artifact).
  std::ifstream is(path, std::ios::binary);
  std::string all((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
  is.close();
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(all.data(), static_cast<std::streamsize>(all.size() - 9));
  }
  std::string what =
      thrown_what([&] { (void)rt::Checkpoint::load(path, {x.store()}); });
  EXPECT_NE(what.find("truncated"), std::string::npos) << what;
}

TEST_F(CheckpointFileTest, RejectsCorruptPayload) {
  auto x = dense::DArray::from_vector(rt_, {1.0, 2.0, 3.0, 4.0});
  rt::Checkpoint ck = rt_.checkpoint({x.store()});
  const std::string path = temp_path("flip");
  ck.save(path);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(-3, std::ios::end);
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(-3, std::ios::end);
  f.write(&c, 1);
  f.close();
  std::string what =
      thrown_what([&] { (void)rt::Checkpoint::load(path, {x.store()}); });
  EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
}

TEST_F(CheckpointFileTest, RejectsUnsupportedVersion) {
  auto x = dense::DArray::from_vector(rt_, {1.0, 2.0});
  rt::Checkpoint ck = rt_.checkpoint({x.store()});
  const std::string path = temp_path("version");
  ck.save(path);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8, std::ios::beg);  // the u32 version field follows the magic
  const std::uint32_t bogus = 99;
  f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  f.close();
  std::string what =
      thrown_what([&] { (void)rt::Checkpoint::load(path, {x.store()}); });
  EXPECT_NE(what.find("unsupported format version 99"), std::string::npos)
      << what;
}

TEST_F(CheckpointFileTest, RejectsStoreCountMismatch) {
  auto x = dense::DArray::from_vector(rt_, {1.0, 2.0});
  rt::Checkpoint ck = rt_.checkpoint({x.store()});
  const std::string path = temp_path("count");
  ck.save(path);
  auto y = dense::DArray::zeros(rt_, 2);
  std::string what = thrown_what(
      [&] { (void)rt::Checkpoint::load(path, {x.store(), y.store()}); });
  EXPECT_NE(what.find("expected 2"), std::string::npos) << what;
}

}  // namespace
}  // namespace legate
