// End-to-end silent-data-corruption tests: deterministic flip injection,
// checksummed-store detection (Integrity::Detect), and ABFT-hardened solver
// recovery (Integrity::Recover). The contract under test is the strongest
// the stack makes anywhere: with integrity=recover, a solve under injected
// corruption converges to the *bit-identical* answer of the fault-free run,
// at any executor thread count, while integrity=off gets that answer wrong.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "dense/array.h"
#include "solve/krylov.h"
#include "sparse/formats.h"

namespace legate {
namespace {

using dense::DArray;

constexpr coord_t kN = 512;
constexpr double kTol = 1e-10;
// 1-D Poisson needs ~n CG iterations; leave generous room for rollbacks.
constexpr int kMaxIter = 1500;

sim::Machine two_node_machine(sim::PerfParams& pp) {
  return sim::Machine::gpus(4, pp, /*gpus_per_node=*/2);
}

sparse::CsrMatrix poisson1d(rt::Runtime& rt, coord_t n) {
  return sparse::diags(rt, n, {{-1, -1.0}, {0, 2.0}, {1, -1.0}});
}

/// Corruption schedule of the hardened-solver tests: steady resident
/// bit-rot over every F64 store plus in-flight upsets on the SpMV path.
rt::RuntimeOptions corrupted(rt::Integrity mode, int threads = 0) {
  rt::RuntimeOptions opts;
  opts.integrity = mode;
  opts.exec_threads = threads;
  opts.faults.enabled = true;
  opts.faults.seed = 33;
  opts.faults.bitflip_rate = 5e-3;
  opts.faults.output_flip_rate = 5e-3;
  return opts;
}

/// Fault-free reference at the same integrity mode; the integrity machinery
/// must be a pure observer, so this matches a plain clean run bit-for-bit.
rt::RuntimeOptions clean(rt::Integrity mode, int threads = 0) {
  rt::RuntimeOptions opts;
  opts.integrity = mode;
  opts.exec_threads = threads;
  return opts;
}

struct CgRun {
  solve::SolveResult res;
  std::vector<double> x;
  sim::Stats stats;
  std::string report;
};

CgRun run_cg(const rt::RuntimeOptions& opts, int ckpt_every = 10) {
  sim::PerfParams pp;
  sim::Machine machine = two_node_machine(pp);
  rt::Runtime rt(machine, opts);
  auto A = poisson1d(rt, kN);
  auto b = DArray::random(rt, kN, 1);
  CgRun out;
  out.res = solve::cg(A, b, kTol, kMaxIter, nullptr,
                      solve::CheckpointPolicy{ckpt_every});
  rt.integrity_scrub();
  out.x = out.res.x.to_vector();
  out.stats = rt.engine().stats();
  out.report = rt.engine().report();
  return out;
}

// --- scripted flips: exact detection accounting ----------------------------

TEST(ScriptedFlips, EveryFlipOnALiveRegionIsDetected) {
  // Probe run: learn the store id of b and the solve's makespan under the
  // exact configuration the scripted run will use. Store ids and simulated
  // times are deterministic, so the probe's answers transfer.
  std::uint64_t b_id = 0;
  double t_built = 0, t_done = 0;
  {
    sim::PerfParams pp;
    sim::Machine machine = two_node_machine(pp);
    rt::Runtime rt(machine, clean(rt::Integrity::Detect));
    auto A = poisson1d(rt, kN);
    auto b = DArray::random(rt, kN, 1);
    b_id = b.store().id();
    t_built = rt.sim_time();
    (void)solve::cg(A, b, kTol, kMaxIter, nullptr, solve::CheckpointPolicy{10});
    t_done = rt.sim_time();
  }
  ASSERT_GT(t_done, t_built);

  rt::RuntimeOptions opts = clean(rt::Integrity::Detect);
  opts.faults.enabled = true;
  // Three upsets into b, spread through the solve, in distinct 512-byte
  // chunks. b is read only at solver start, so nothing overwrites them and
  // detection happens at the final scrub with positive latency.
  for (int i = 0; i < 3; ++i) {
    sim::ScriptedFlip f;
    f.time = t_built + (t_done - t_built) * (0.2 + 0.25 * i);
    f.node = 1;
    f.store = b_id;
    f.offset = static_cast<std::uint64_t>(600 * i + 40);
    f.bit = i + 1;
    opts.faults.scripted_flips.push_back(f);
  }

  sim::PerfParams pp;
  sim::Machine machine = two_node_machine(pp);
  rt::Runtime rt(machine, opts);
  auto A = poisson1d(rt, kN);
  auto b = DArray::random(rt, kN, 1);
  ASSERT_EQ(b.store().id(), b_id);
  auto res = solve::cg(A, b, kTol, kMaxIter, nullptr, solve::CheckpointPolicy{10});
  EXPECT_TRUE(res.converged);  // b's corruption postdates its only read
  rt.integrity_scrub();

  const sim::Stats& st = rt.engine().stats();
  EXPECT_EQ(st.flips_injected, 3);
  EXPECT_EQ(st.flips_detected, 3);
  EXPECT_EQ(st.flips_recovered, 0);  // Detect never repairs
  EXPECT_NE(rt.engine().report().find("integrity{"), std::string::npos);
}

TEST(ScriptedFlips, DetectionLatencyIsRecorded) {
  // Same shape as above but through the metrics registry: the latency
  // histogram must hold one positive-latency sample per caught flip.
  std::uint64_t b_id = 0;
  double t_built = 0, t_done = 0;
  {
    sim::PerfParams pp;
    sim::Machine machine = two_node_machine(pp);
    rt::Runtime rt(machine, clean(rt::Integrity::Detect));
    auto A = poisson1d(rt, kN);
    auto b = DArray::random(rt, kN, 1);
    b_id = b.store().id();
    t_built = rt.sim_time();
    (void)solve::cg(A, b, kTol, kMaxIter, nullptr, solve::CheckpointPolicy{10});
    t_done = rt.sim_time();
  }
  rt::RuntimeOptions opts = clean(rt::Integrity::Detect);
  opts.faults.enabled = true;
  // Mid-solve upset on b, whose only read is at solver start: the scrub is
  // what finds it, strictly later than the injection instant.
  opts.faults.scripted_flips.push_back({(t_built + t_done) / 2, 0, b_id, 8, 3});

  sim::PerfParams pp;
  sim::Machine machine = two_node_machine(pp);
  rt::Runtime rt(machine, opts);
  auto A = poisson1d(rt, kN);
  auto b = DArray::random(rt, kN, 1);
  (void)solve::cg(A, b, kTol, kMaxIter, nullptr, solve::CheckpointPolicy{10});
  rt.integrity_scrub();
  auto snap = rt.metrics_snapshot();
  const auto* lat = snap.find("lsr_integrity_detect_latency_seconds");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, rt.engine().stats().flips_detected);
  EXPECT_GT(lat->sum, 0.0);
  const auto* hashed = snap.find("lsr_integrity_bytes_hashed_total");
  ASSERT_NE(hashed, nullptr);
  EXPECT_GT(hashed->value, 0.0);
}

// --- random upsets: ledger balance and recovery ----------------------------

TEST(RandomUpsets, DetectLedgerBalances) {
  CgRun run = run_cg(corrupted(rt::Integrity::Detect));
  ASSERT_GT(run.stats.flips_injected, 0);
  EXPECT_GT(run.stats.flips_detected, 0);
  EXPECT_LE(run.stats.flips_detected, run.stats.flips_injected);
}

TEST(RandomUpsets, InjectedEqualsDetectedPlusRetired) {
  sim::PerfParams pp;
  sim::Machine machine = two_node_machine(pp);
  rt::Runtime rt(machine, corrupted(rt::Integrity::Recover));
  auto A = poisson1d(rt, kN);
  auto b = DArray::random(rt, kN, 1);
  auto res = solve::cg(A, b, kTol, kMaxIter, nullptr, solve::CheckpointPolicy{10});
  EXPECT_TRUE(res.converged);
  rt.integrity_scrub();
  auto snap = rt.metrics_snapshot();
  const auto* injected = snap.find("lsr_integrity_flips_injected_total");
  const auto* detected = snap.find("lsr_integrity_flips_detected_total");
  const auto* retired = snap.find("lsr_integrity_flips_overwritten_total");
  ASSERT_NE(injected, nullptr);
  ASSERT_NE(detected, nullptr);
  ASSERT_NE(retired, nullptr);
  ASSERT_GT(injected->value, 0.0);
  // Every upset is accounted for: caught by a checksum/ABFT layer, or
  // retired because the damaged bytes died (overwritten / store freed)
  // before any reader could observe them.
  EXPECT_EQ(injected->value, detected->value + retired->value);
}

// --- the headline guarantee: bit-identical recovery ------------------------

TEST(Recovery, CgRecoversCleanAnswerBitExactly) {
  CgRun ref = run_cg(clean(rt::Integrity::Off));
  ASSERT_TRUE(ref.res.converged);

  CgRun hard = run_cg(corrupted(rt::Integrity::Recover));
  ASSERT_GT(hard.stats.flips_injected, 0) << "schedule injected nothing";
  ASSERT_TRUE(hard.res.converged);
  EXPECT_EQ(hard.res.iterations, ref.res.iterations);
  EXPECT_EQ(hard.res.residual, ref.res.residual);
  ASSERT_EQ(hard.x.size(), ref.x.size());
  for (std::size_t i = 0; i < ref.x.size(); ++i) {
    ASSERT_EQ(hard.x[i], ref.x[i]) << "element " << i << " diverged";
  }
}

TEST(Recovery, OffGetsTheSameScheduleWrong) {
  CgRun ref = run_cg(clean(rt::Integrity::Off));
  CgRun off = run_cg(corrupted(rt::Integrity::Off));
  ASSERT_GT(off.stats.flips_injected, 0);
  // Undefended, the same corruption schedule must visibly damage the solve:
  // either it fails to converge, or it lands on a different answer.
  bool wrong = !off.res.converged || off.res.iterations != ref.res.iterations;
  for (std::size_t i = 0; !wrong && i < ref.x.size(); ++i) {
    wrong = off.x[i] != ref.x[i];
  }
  EXPECT_TRUE(wrong) << "corruption schedule was a no-op; strengthen rates";
}

TEST(Recovery, BitIdentityHoldsAcrossExecThreads) {
  CgRun ref = run_cg(clean(rt::Integrity::Off));
  std::string report1;
  for (int threads : {1, 4, 8}) {
    CgRun hard = run_cg(corrupted(rt::Integrity::Recover, threads));
    ASSERT_TRUE(hard.res.converged) << threads << " threads";
    ASSERT_GT(hard.stats.flips_injected, 0);
    for (std::size_t i = 0; i < ref.x.size(); ++i) {
      ASSERT_EQ(hard.x[i], ref.x[i])
          << "element " << i << " diverged at " << threads << " threads";
    }
    // The whole engine report — makespan, traffic, every stable counter,
    // the integrity block — is one deterministic artifact.
    if (report1.empty()) {
      report1 = hard.report;
    } else {
      EXPECT_EQ(hard.report, report1) << threads << " threads";
    }
  }
  EXPECT_NE(report1.find("integrity{"), std::string::npos);
}

TEST(Recovery, GmresRecoversCleanAnswerBitExactly) {
  auto run_gmres = [](const rt::RuntimeOptions& opts) {
    sim::PerfParams pp;
    sim::Machine machine = two_node_machine(pp);
    rt::Runtime rt(machine, opts);
    // Nonsymmetric operator: convection-diffusion-like stencil.
    auto A = sparse::diags(rt, kN, {{-1, -1.3}, {0, 2.2}, {1, -0.7}});
    auto b = DArray::random(rt, kN, 5);
    auto res = solve::gmres(A, b, /*restart=*/30, 1e-9, kMaxIter,
                            solve::CheckpointPolicy{1});
    rt.integrity_scrub();
    long injected = rt.engine().stats().flips_injected;
    return std::make_pair(res, injected);
  };
  auto [ref, ref_injected] = run_gmres(clean(rt::Integrity::Off));
  ASSERT_TRUE(ref.converged);
  ASSERT_EQ(ref_injected, 0);

  auto [hard, injected] = run_gmres(corrupted(rt::Integrity::Recover));
  ASSERT_GT(injected, 0);
  ASSERT_TRUE(hard.converged);
  EXPECT_EQ(hard.residual, ref.residual);
  auto xr = ref.x.to_vector();
  auto xh = hard.x.to_vector();
  ASSERT_EQ(xh.size(), xr.size());
  for (std::size_t i = 0; i < xr.size(); ++i) {
    ASSERT_EQ(xh[i], xr[i]) << "element " << i << " diverged";
  }
}

TEST(Recovery, DetectModeAbortsOnAbftViolation) {
  // A high in-flight rate guarantees a corrupted SpMV product early in the
  // solve; Detect has no license to retry, so the solver must refuse to
  // converge rather than return a tainted answer.
  rt::RuntimeOptions opts = clean(rt::Integrity::Detect);
  opts.faults.enabled = true;
  opts.faults.seed = 11;
  opts.faults.output_flip_rate = 0.5;
  CgRun run = run_cg(opts);
  EXPECT_FALSE(run.res.converged);
  EXPECT_GT(run.stats.flips_detected, 0);
}

TEST(Recovery, ReportIsDeterministicRunToRun) {
  CgRun a = run_cg(corrupted(rt::Integrity::Recover));
  CgRun b = run_cg(corrupted(rt::Integrity::Recover));
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.res.iterations, b.res.iterations);
  EXPECT_EQ(a.x, b.x);
}

TEST(Recovery, IntegrityMachineryIsPureObserverWhenClean) {
  // With no faults configured, Detect must change nothing about the solve
  // except the bytes-hashed counter: same answer, same iteration count.
  CgRun off = run_cg(clean(rt::Integrity::Off));
  CgRun det = run_cg(clean(rt::Integrity::Detect));
  EXPECT_EQ(det.res.iterations, off.res.iterations);
  EXPECT_EQ(det.x, off.x);
  EXPECT_EQ(det.stats.flips_injected, 0);
  EXPECT_EQ(det.stats.flips_detected, 0);
}

}  // namespace
}  // namespace legate
