#include "baselines/ref/ref.h"

#include <gtest/gtest.h>

#include "apps/workloads.h"

namespace legate::baselines::ref {
namespace {

class RefTest : public ::testing::Test {
 protected:
  sim::PerfParams pp_;
};

TEST_F(RefTest, VectorOps) {
  RefContext ctx(Device::ScipyCpu, pp_);
  RefVector a(ctx, {1, 2, 3});
  RefVector b(ctx, {1, 1, 1});
  a.axpy(2.0, b);
  EXPECT_EQ(a.data(), (std::vector<double>{3, 4, 5}));
  EXPECT_DOUBLE_EQ(a.dot(b), 12.0);
  EXPECT_DOUBLE_EQ(RefVector(ctx, {3, 4}).norm(), 5.0);
  EXPECT_GT(ctx.now(), 0.0);
}

TEST_F(RefTest, SpmvMatchesManual) {
  RefContext ctx(Device::CupyGpu, pp_);
  // [[2, 1], [0, 3]]
  RefCsr a(ctx, 2, 2, {0, 2, 3}, {0, 1, 1}, {2, 1, 3});
  RefVector x(ctx, {1, 2});
  auto y = a.spmv(x);
  EXPECT_EQ(y.data(), (std::vector<double>{4, 6}));
}

TEST_F(RefTest, TransposeAndSpgemm) {
  RefContext ctx(Device::ScipyCpu, pp_);
  RefCsr a(ctx, 2, 3, {0, 2, 3}, {0, 2, 1}, {1, 2, 3});
  RefCsr at = a.transpose();
  EXPECT_EQ(at.rows(), 3);
  EXPECT_EQ(at.cols(), 2);
  RefCsr aat = a.spgemm(at);  // 2x2: [[1*1+2*2, 0], [0, 9]]
  RefVector x(ctx, {1, 1});
  auto y = aat.spmv(x);
  EXPECT_EQ(y.data(), (std::vector<double>{5, 9}));
}

TEST_F(RefTest, SddmmChargesCupyPenalty) {
  sim::PerfParams pp;
  RefContext cpu(Device::ScipyCpu, pp);
  RefContext gpu(Device::CupyGpu, pp);
  coord_t n = 1 << 18, k = 64;
  std::vector<coord_t> indptr(static_cast<std::size_t>(n) + 1), indices(
      static_cast<std::size_t>(n));
  std::vector<double> vals(static_cast<std::size_t>(n), 1.0);
  for (coord_t i = 0; i <= n; ++i) indptr[static_cast<std::size_t>(i)] = i;
  for (coord_t i = 0; i < n; ++i) indices[static_cast<std::size_t>(i)] = i;
  std::vector<double> b(static_cast<std::size_t>(n * k), 0.5),
      c(static_cast<std::size_t>(k * n), 0.5);

  RefCsr am(gpu, n, n, indptr, indices, vals);
  double t0 = gpu.now();
  auto out = am.sddmm(b, c, k);
  double sddmm_time = gpu.now() - t0;
  // Compare against an equally-sized SpMM (no penalty).
  t0 = gpu.now();
  (void)am.spmm(b, k);
  double spmm_time = gpu.now() - t0;
  EXPECT_GT(sddmm_time, 2.0 * spmm_time);  // the cuSPARSE inefficiency
  // Values: out(i,i) = vals * sum_l b(i,l) c(l,i) = k * 0.25.
  EXPECT_DOUBLE_EQ(out.values()[0], static_cast<double>(k) * 0.25);
}

TEST_F(RefTest, CupyOomAtCapacity) {
  RefContext ctx(Device::CupyGpu, pp_);
  EXPECT_THROW(
      {
        RefVector huge(ctx, static_cast<coord_t>(3e9));  // 24 GB > 15.3 GB
      },
      OutOfMemoryError);
}

TEST_F(RefTest, ScipyIsSlowerThanCupyOnLargeKernels) {
  sim::PerfParams pp;
  RefContext cpu(Device::ScipyCpu, pp);
  RefContext gpu(Device::CupyGpu, pp);
  RefVector a(cpu, 1 << 20, 1.0), b(cpu, 1 << 20, 2.0);
  RefVector c(gpu, 1 << 20, 1.0), d(gpu, 1 << 20, 2.0);
  double t0 = cpu.now();
  a.axpy(1.0, b);
  double cpu_t = cpu.now() - t0;
  t0 = gpu.now();
  c.axpy(1.0, d);
  double gpu_t = gpu.now() - t0;
  EXPECT_GT(cpu_t, 10 * gpu_t);
}

TEST_F(RefTest, CupyOverheadDominatesSmallKernels) {
  sim::PerfParams pp;
  RefContext gpu(Device::CupyGpu, pp);
  RefVector a(gpu, 8, 1.0), b(gpu, 8, 2.0);
  double t0 = gpu.now();
  a.axpy(1.0, b);
  double t = gpu.now() - t0;
  EXPECT_GT(t, pp.cupy_op_overhead);  // latency-bound
  EXPECT_LT(t, 3 * (pp.cupy_op_overhead + pp.gpu_kernel_launch));
}

TEST_F(RefTest, AddMergesPatterns) {
  RefContext ctx(Device::ScipyCpu, pp_);
  RefCsr a(ctx, 2, 2, {0, 1, 2}, {0, 1}, {1, 2});
  RefCsr b(ctx, 2, 2, {0, 1, 2}, {1, 1}, {5, 7});
  RefCsr c = a.add(b);
  EXPECT_EQ(c.nnz(), 3);
  RefVector x(ctx, {1, 1});
  auto y = c.spmv(x);
  EXPECT_EQ(y.data(), (std::vector<double>{6, 9}));
}

TEST_F(RefTest, DiagonalExtraction) {
  RefContext ctx(Device::ScipyCpu, pp_);
  RefCsr a(ctx, 2, 2, {0, 2, 3}, {0, 1, 1}, {2, 1, 3});
  auto d = a.diagonal();
  EXPECT_EQ(d.data(), (std::vector<double>{2, 3}));
}

}  // namespace
}  // namespace legate::baselines::ref
