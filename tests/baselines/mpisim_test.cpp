#include "baselines/mpisim/mpisim.h"

#include <gtest/gtest.h>

namespace legate::baselines::mpisim {
namespace {

class MpiSimTest : public ::testing::Test {
 protected:
  sim::PerfParams pp_;
};

TEST_F(MpiSimTest, ComputeAdvancesOnlyTheOwningRank) {
  MpiSim sim(sim::ProcKind::GPU, 4, pp_);
  sim.compute(1, 790e9, 0);  // one second of GPU bandwidth
  EXPECT_GT(sim.now(1), 1.0);
  EXPECT_DOUBLE_EQ(sim.now(0), 0.0);
  EXPECT_DOUBLE_EQ(sim.now(3), 0.0);
  EXPECT_GT(sim.makespan(), 1.0);
}

TEST_F(MpiSimTest, BarrierEqualizesClocks) {
  MpiSim sim(sim::ProcKind::GPU, 3, pp_);
  sim.compute(0, 790e9, 0);
  sim.barrier();
  EXPECT_DOUBLE_EQ(sim.now(1), sim.now(0));
  EXPECT_DOUBLE_EQ(sim.now(2), sim.now(0));
}

TEST_F(MpiSimTest, AllreduceIsLogTree) {
  MpiSim sim2(sim::ProcKind::GPU, 2, pp_);
  MpiSim sim64(sim::ProcKind::GPU, 64, pp_);
  sim2.allreduce_scalar();
  sim64.allreduce_scalar();
  EXPECT_NEAR(sim2.makespan(), pp_.mpi_allreduce_alpha, 1e-12);
  EXPECT_NEAR(sim64.makespan(), 6 * pp_.mpi_allreduce_alpha, 1e-12);
}

TEST_F(MpiSimTest, ExchangeDoesNotCascadeAcrossNodes) {
  // A ring of same-sized messages across many nodes must cost roughly one
  // NIC's share, not the sum of all hops (regression test for the copy-
  // coupling bug found during Fig. 8 calibration).
  MpiSim sim(sim::ProcKind::GPU, 24, pp_);  // 4 nodes
  std::map<std::pair<int, int>, double> bytes;
  for (int r = 0; r < 23; ++r) {
    bytes[{r, r + 1}] = 1e6;
    bytes[{r + 1, r}] = 1e6;
  }
  sim.exchange(bytes);
  // Per-NIC share: ~2 inter-node messages of 1 MB at IB bandwidth.
  double per_msg = 1e6 / pp_.ib_bw;
  EXPECT_LT(sim.makespan(), 6 * per_msg + 1e-3);
}

TEST_F(MpiSimTest, ExchangeSynchronizesParticipants) {
  MpiSim sim(sim::ProcKind::GPU, 2, pp_);
  sim.compute(0, 790e9, 0);  // rank 0 ahead by ~1s
  std::map<std::pair<int, int>, double> bytes{{{0, 1}, 1e6}};
  sim.exchange(bytes);
  EXPECT_GE(sim.now(1), sim.now(0) - 1e-9);
}

TEST_F(MpiSimTest, AllreduceBytesChargesRing) {
  MpiSim sim(sim::ProcKind::GPU, 12, pp_);  // 2 nodes -> IB
  double t0 = sim.makespan();
  sim.allreduce_bytes(12e9);
  EXPECT_GT(sim.makespan() - t0, 1.0);  // 2*b*(p-1)/p over 12 GB/s > 1 s
}

TEST_F(MpiSimTest, AllocRespectsFramebufferCapacity) {
  MpiSim sim(sim::ProcKind::GPU, 1, pp_);
  double cap = sim.machine().memory(sim.machine().proc(0).mem).capacity;
  sim.alloc(0, cap * 0.9);
  EXPECT_THROW(sim.alloc(0, cap * 0.2), OutOfMemoryError);
}

}  // namespace
}  // namespace legate::baselines::mpisim
