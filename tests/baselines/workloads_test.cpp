#include "apps/workloads.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace legate::apps {
namespace {

TEST(Workloads, BandedShape) {
  auto p = banded_matrix(100, 5);
  EXPECT_EQ(p.rows, 100);
  EXPECT_EQ(p.nnz(), static_cast<coord_t>(p.values.size()));
  // Interior rows: 11 entries.
  EXPECT_EQ(p.indptr[51] - p.indptr[50], 11);
  // Diagonal dominance (SPD by Gershgorin).
  for (coord_t i = 0; i < 100; ++i) {
    double diag = 0, off = 0;
    for (coord_t j = p.indptr[static_cast<std::size_t>(i)];
         j < p.indptr[static_cast<std::size_t>(i) + 1]; ++j) {
      if (p.indices[static_cast<std::size_t>(j)] == i)
        diag = p.values[static_cast<std::size_t>(j)];
      else
        off += std::fabs(p.values[static_cast<std::size_t>(j)]);
    }
    EXPECT_GT(diag, off);
  }
}

TEST(Workloads, Poisson2dStructure) {
  auto p = poisson2d(6);
  EXPECT_EQ(p.rows, 36);
  EXPECT_EQ(p.nnz(), 36 * 5 - 4 * 6);  // 5-point minus boundary cuts
  // Row sums: 0 in the interior, positive on the boundary.
  for (coord_t i = 1; i < 5; ++i) {
    for (coord_t j = 1; j < 5; ++j) {
      coord_t row = i * 6 + j;
      double sum = 0;
      for (coord_t k = p.indptr[static_cast<std::size_t>(row)];
           k < p.indptr[static_cast<std::size_t>(row) + 1]; ++k)
        sum += p.values[static_cast<std::size_t>(k)];
      EXPECT_DOUBLE_EQ(sum, 0.0);
    }
  }
}

TEST(Workloads, RydbergDimIsFibonacci) {
  EXPECT_EQ(rydberg_dim(1), 2);
  EXPECT_EQ(rydberg_dim(2), 3);
  EXPECT_EQ(rydberg_dim(3), 5);
  EXPECT_EQ(rydberg_dim(10), 144);
  EXPECT_EQ(rydberg_dim(20), 17711);
}

TEST(Workloads, RydbergChainStates) {
  auto sys = rydberg_chain(4, 1.0, 0.5);
  EXPECT_EQ(sys.dim, rydberg_dim(4));
  EXPECT_EQ(sys.hamiltonian.rows, 2 * sys.dim);
  EXPECT_EQ(sys.ground_state, 0);  // |0000> is the first bitmask
}

TEST(Workloads, RydbergBlockStructureIsAntisymmetric) {
  // B = [[0, H], [-H, 0]] means B(r, c+dim) == -B(r+dim, c) for the same H
  // entry, and the spectrum is purely imaginary: y'=By conserves ||y||.
  auto sys = rydberg_chain(5);
  const auto& p = sys.hamiltonian;
  coord_t dim = sys.dim;
  // Upper-right block: columns >= dim for rows < dim.
  for (coord_t r = 0; r < dim; ++r) {
    for (coord_t j = p.indptr[static_cast<std::size_t>(r)];
         j < p.indptr[static_cast<std::size_t>(r) + 1]; ++j) {
      EXPECT_GE(p.indices[static_cast<std::size_t>(j)], dim);
    }
  }
  for (coord_t r = dim; r < 2 * dim; ++r) {
    for (coord_t j = p.indptr[static_cast<std::size_t>(r)];
         j < p.indptr[static_cast<std::size_t>(r) + 1]; ++j) {
      EXPECT_LT(p.indices[static_cast<std::size_t>(j)], dim);
    }
  }
}

TEST(Workloads, RydbergHamiltonianIsSymmetricInH) {
  auto sys = rydberg_chain(6);
  const auto& p = sys.hamiltonian;
  coord_t dim = sys.dim;
  // Collect the H block and check symmetry.
  std::set<std::pair<coord_t, coord_t>> entries;
  for (coord_t r = 0; r < dim; ++r)
    for (coord_t j = p.indptr[static_cast<std::size_t>(r)];
         j < p.indptr[static_cast<std::size_t>(r) + 1]; ++j)
      entries.emplace(r, p.indices[static_cast<std::size_t>(j)] - dim);
  for (auto& [r, c] : entries) {
    EXPECT_TRUE(entries.count({c, r})) << r << "," << c;
  }
}

TEST(Workloads, RydbergWideBandwidth) {
  // The flip terms connect far-apart state indices — the paper's
  // communication-heavy pattern.
  auto sys = rydberg_chain(16);
  const auto& p = sys.hamiltonian;
  coord_t dim = sys.dim;
  coord_t max_span = 0;
  for (coord_t r = 0; r < dim; ++r) {
    for (coord_t j = p.indptr[static_cast<std::size_t>(r)];
         j < p.indptr[static_cast<std::size_t>(r) + 1]; ++j) {
      max_span = std::max(max_span, std::abs(p.indices[static_cast<std::size_t>(j)] - dim - r));
    }
  }
  EXPECT_GT(max_span, dim / 3);
}

TEST(Workloads, MovieLensShape) {
  auto d = synthetic_movielens(1000, 500, 20000, 42);
  EXPECT_EQ(d.users, 1000);
  EXPECT_EQ(d.items, 500);
  EXPECT_LE(d.nnz(), 20000);  // dedup may drop a few
  EXPECT_GT(d.nnz(), 13000);  // Zipf collisions dedup some
  for (double r : d.ratings) {
    EXPECT_GE(r, 0.5);
    EXPECT_LE(r, 5.0);
  }
  // Zipf popularity: the most popular decile of items gets most ratings.
  std::vector<coord_t> item_counts(500, 0);
  for (coord_t i : d.indices) ++item_counts[static_cast<std::size_t>(i)];
  coord_t head = 0;
  for (coord_t i = 0; i < 50; ++i) head += item_counts[static_cast<std::size_t>(i)];
  EXPECT_GT(head, d.nnz() / 2);
}

TEST(Workloads, MovieLensDeterministic) {
  auto a = synthetic_movielens(100, 50, 1000, 7);
  auto b = synthetic_movielens(100, 50, 1000, 7);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.ratings, b.ratings);
}

TEST(Workloads, ProfilesMatchPaper) {
  const auto& p = movielens_profiles();
  ASSERT_EQ(p.size(), 4u);
  EXPECT_STREQ(p[0].name, "ML-10M");
  EXPECT_NEAR(static_cast<double>(p[0].nnz), 1e7, 1e5);
  EXPECT_NEAR(static_cast<double>(p[3].nnz), 1e8, 1e6);
}

}  // namespace
}  // namespace legate::apps
