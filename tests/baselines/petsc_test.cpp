#include "baselines/petsc/petsc.h"

#include <gtest/gtest.h>
#include <cmath>

#include "apps/workloads.h"

namespace legate::baselines::petsc {
namespace {

class PetscTest : public ::testing::Test {
 protected:
  sim::PerfParams pp_;
};

TEST_F(PetscTest, VecScatterGatherRoundTrip) {
  mpisim::MpiSim sim(sim::ProcKind::GPU, 3, pp_);
  std::vector<double> data{1, 2, 3, 4, 5, 6, 7};
  Vec v(sim, data);
  EXPECT_EQ(v.gather(), data);
  EXPECT_EQ(v.local(0).size() + v.local(1).size() + v.local(2).size(), 7u);
}

TEST_F(PetscTest, VecBlas) {
  mpisim::MpiSim sim(sim::ProcKind::GPU, 2, pp_);
  Vec a(sim, {1, 2, 3, 4});
  Vec b(sim, {1, 1, 1, 1});
  a.axpy(2.0, b);
  EXPECT_EQ(a.gather(), (std::vector<double>{3, 4, 5, 6}));
  EXPECT_DOUBLE_EQ(a.dot(b), 18.0);
  Vec c(sim, {3, 4, 0, 0});
  EXPECT_DOUBLE_EQ(c.norm(), 5.0);
}

TEST_F(PetscTest, MatMultMatchesSequential) {
  auto prob = apps::poisson2d(8);
  for (int ranks : {1, 2, 4}) {
    mpisim::MpiSim sim(sim::ProcKind::GPU, ranks, pp_);
    Mat A(sim, prob.rows, prob.cols, prob.indptr, prob.indices, prob.values);
    std::vector<double> xh(static_cast<std::size_t>(prob.rows));
    for (std::size_t i = 0; i < xh.size(); ++i) xh[i] = std::sin(static_cast<double>(i));
    Vec x(sim, xh);
    Vec y(sim, prob.rows);
    A.mult(x, y);
    // Sequential oracle.
    std::vector<double> ref(xh.size(), 0.0);
    for (coord_t i = 0; i < prob.rows; ++i)
      for (coord_t j = prob.indptr[static_cast<std::size_t>(i)];
           j < prob.indptr[static_cast<std::size_t>(i) + 1]; ++j)
        ref[static_cast<std::size_t>(i)] +=
            prob.values[static_cast<std::size_t>(j)] *
            xh[static_cast<std::size_t>(prob.indices[static_cast<std::size_t>(j)])];
    auto got = y.gather();
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_NEAR(got[i], ref[i], 1e-12) << "ranks=" << ranks << " i=" << i;
  }
}

TEST_F(PetscTest, ScatterBytesOnlyForOffDiagonal) {
  // Banded matrix: each rank needs only a halo from its neighbours.
  auto prob = apps::banded_matrix(1000, 1);
  mpisim::MpiSim sim(sim::ProcKind::GPU, 4, pp_);
  Mat A(sim, prob.rows, prob.cols, prob.indptr, prob.indices, prob.values);
  double total = 0;
  for (auto& [pair, b] : A.scatter_bytes()) {
    EXPECT_EQ(std::abs(pair.first - pair.second), 1);  // neighbours only
    total += b;
  }
  EXPECT_DOUBLE_EQ(total, 6 * 8.0);  // one element per direction per cut
}

TEST_F(PetscTest, KspCgSolvesPoisson) {
  auto prob = apps::poisson2d(12);
  mpisim::MpiSim sim(sim::ProcKind::GPU, 3, pp_);
  Mat A(sim, prob.rows, prob.cols, prob.indptr, prob.indices, prob.values);
  std::vector<double> bh(static_cast<std::size_t>(prob.rows), 1.0);
  Vec b(sim, bh);
  auto res = ksp_cg(A, b, 1e-10, 2000);
  EXPECT_TRUE(res.converged);
  // Verify residual with the sequential oracle.
  auto x = res.x.gather();
  double rnorm = 0;
  for (coord_t i = 0; i < prob.rows; ++i) {
    double ax = 0;
    for (coord_t j = prob.indptr[static_cast<std::size_t>(i)];
         j < prob.indptr[static_cast<std::size_t>(i) + 1]; ++j)
      ax += prob.values[static_cast<std::size_t>(j)] *
            x[static_cast<std::size_t>(prob.indices[static_cast<std::size_t>(j)])];
    rnorm += (1.0 - ax) * (1.0 - ax);
  }
  EXPECT_LT(std::sqrt(rnorm), 1e-7);
}

TEST_F(PetscTest, CgIterationCountIndependentOfRanks) {
  auto prob = apps::poisson2d(10);
  std::vector<double> bh(static_cast<std::size_t>(prob.rows), 1.0);
  int iters1 = 0;
  for (int ranks : {1, 2, 6}) {
    mpisim::MpiSim sim(sim::ProcKind::GPU, ranks, pp_);
    Mat A(sim, prob.rows, prob.cols, prob.indptr, prob.indices, prob.values);
    Vec b(sim, bh);
    auto res = ksp_cg(A, b, 1e-10, 2000);
    EXPECT_TRUE(res.converged);
    if (ranks == 1) {
      iters1 = res.iterations;
    } else {
      EXPECT_EQ(res.iterations, iters1);  // same arithmetic at any rank count
    }
  }
}

TEST_F(PetscTest, WeakScalingIsFlatForBandedSpmv) {
  // PETSc achieves near-perfect weak scaling on the microbenchmark (Fig. 8).
  auto time_per_iter = [&](int ranks) {
    auto prob = apps::banded_matrix(200000 * ranks, 5);
    mpisim::MpiSim sim(sim::ProcKind::GPU, ranks, pp_);
    Mat A(sim, prob.rows, prob.cols, prob.indptr, prob.indices, prob.values);
    Vec x(sim, std::vector<double>(static_cast<std::size_t>(prob.rows), 1.0));
    Vec y(sim, prob.rows);
    double t0 = sim.makespan();
    for (int i = 0; i < 5; ++i) A.mult(x, y);
    return (sim.makespan() - t0) / 5;
  };
  double t1 = time_per_iter(1);
  double t12 = time_per_iter(12);
  EXPECT_LT(t12, t1 * 1.5);
}

TEST_F(PetscTest, CpuModeUsesSockets) {
  mpisim::MpiSim sim(sim::ProcKind::CPU, 4, pp_);
  EXPECT_EQ(sim.kind(), sim::ProcKind::CPU);
  EXPECT_EQ(sim.machine().nodes(), 2);
}

}  // namespace
}  // namespace legate::baselines::petsc
