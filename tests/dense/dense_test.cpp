#include "dense/array.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace legate::dense {
namespace {

class DenseTest : public ::testing::Test {
 protected:
  DenseTest() : machine_(sim::Machine::gpus(3, pp_)), rt_(machine_) {}
  sim::PerfParams pp_;
  sim::Machine machine_;
  rt::Runtime rt_;
};

TEST_F(DenseTest, ZerosFullArange) {
  auto z = DArray::zeros(rt_, 10);
  for (double v : z.to_vector()) EXPECT_DOUBLE_EQ(v, 0.0);
  auto f = DArray::full(rt_, 10, 3.5);
  for (double v : f.to_vector()) EXPECT_DOUBLE_EQ(v, 3.5);
  auto a = DArray::arange(rt_, 5);
  EXPECT_EQ(a.to_vector(), (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST_F(DenseTest, ElementwiseBinary) {
  auto a = DArray::from_vector(rt_, {1, 2, 3, 4});
  auto b = DArray::from_vector(rt_, {10, 20, 30, 40});
  EXPECT_EQ(a.add(b).to_vector(), (std::vector<double>{11, 22, 33, 44}));
  EXPECT_EQ(b.sub(a).to_vector(), (std::vector<double>{9, 18, 27, 36}));
  EXPECT_EQ(a.mul(b).to_vector(), (std::vector<double>{10, 40, 90, 160}));
  EXPECT_EQ(b.div(a).to_vector(), (std::vector<double>{10, 10, 10, 10}));
}

TEST_F(DenseTest, InplaceOps) {
  auto a = DArray::from_vector(rt_, {1, 2, 3});
  auto b = DArray::from_vector(rt_, {1, 1, 1});
  a.iadd(b);
  EXPECT_EQ(a.to_vector(), (std::vector<double>{2, 3, 4}));
  a.isub(b);
  a.imul(a);
  EXPECT_EQ(a.to_vector(), (std::vector<double>{1, 4, 9}));
  a.iscale(2.0);
  EXPECT_EQ(a.to_vector(), (std::vector<double>{2, 8, 18}));
}

TEST_F(DenseTest, AxpyAndXpay) {
  auto y = DArray::from_vector(rt_, {1, 1, 1});
  auto x = DArray::from_vector(rt_, {1, 2, 3});
  y.axpy(2.0, x);
  EXPECT_EQ(y.to_vector(), (std::vector<double>{3, 5, 7}));
  y.xpay(0.5, x);  // y = x + 0.5*y
  EXPECT_EQ(y.to_vector(), (std::vector<double>{2.5, 4.5, 6.5}));
}

TEST_F(DenseTest, UnaryOps) {
  auto a = DArray::from_vector(rt_, {-4, 9});
  EXPECT_EQ(a.abs().to_vector(), (std::vector<double>{4, 9}));
  EXPECT_EQ(a.abs().sqrt().to_vector(), (std::vector<double>{2, 3}));
  EXPECT_EQ(a.neg().to_vector(), (std::vector<double>{4, -9}));
  auto e = DArray::from_vector(rt_, {0});
  EXPECT_DOUBLE_EQ(e.exp().to_vector()[0], 1.0);
}

TEST_F(DenseTest, ScalarOps) {
  auto a = DArray::from_vector(rt_, {1, 2});
  EXPECT_EQ(a.scale(3.0).to_vector(), (std::vector<double>{3, 6}));
  EXPECT_EQ(a.add_scalar(1.5).to_vector(), (std::vector<double>{2.5, 3.5}));
}

TEST_F(DenseTest, Reductions) {
  auto a = DArray::from_vector(rt_, {3, -1, 4, 1, -5});
  EXPECT_DOUBLE_EQ(a.sum().value, 2.0);
  EXPECT_DOUBLE_EQ(a.max().value, 4.0);
  EXPECT_DOUBLE_EQ(a.min().value, -5.0);
  auto b = DArray::from_vector(rt_, {1, 1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(a.dot(b).value, 2.0);
  auto c = DArray::from_vector(rt_, {3, 4});
  EXPECT_DOUBLE_EQ(c.norm().value, 5.0);
}

TEST_F(DenseTest, DotIsDistributedAndExact) {
  constexpr coord_t kN = 10007;
  auto a = DArray::arange(rt_, kN);
  auto b = DArray::full(rt_, kN, 2.0);
  double expect = static_cast<double>(kN - 1) * kN;  // 2 * sum(0..n-1)
  EXPECT_DOUBLE_EQ(a.dot(b).value, expect);
}

TEST_F(DenseTest, RandomIsPartitionIndependent) {
  auto a = DArray::random(rt_, 1000, 42);
  sim::Machine m1 = sim::Machine::gpus(1, pp_);
  rt::Runtime rt1(m1);
  auto b = DArray::random(rt1, 1000, 42);
  EXPECT_EQ(a.to_vector(), b.to_vector());
  for (double v : a.to_vector()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST_F(DenseTest, Matmul) {
  // A = [[1,2],[3,4],[5,6]] (3x2), B = [[1,0],[0,1]] -> A
  auto a = DArray(rt_, rt_.create_store(rt::DType::F64, {3, 2}));
  std::vector<double> av{1, 2, 3, 4, 5, 6};
  std::copy(av.begin(), av.end(), a.store().span<double>().begin());
  rt_.mark_attached(a.store());
  auto b = DArray(rt_, rt_.create_store(rt::DType::F64, {2, 2}));
  std::vector<double> bv{1, 0, 0, 1};
  std::copy(bv.begin(), bv.end(), b.store().span<double>().begin());
  rt_.mark_attached(b.store());
  auto c = a.matmul(b);
  EXPECT_EQ(c.to_vector(), av);
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.cols(), 2);
}

TEST_F(DenseTest, MatmulAgainstOracle) {
  constexpr coord_t m = 17, k = 9, n = 5;
  auto a = DArray::random2d(rt_, m, k, 1);
  auto b = DArray::random2d(rt_, k, n, 2);
  auto c = a.matmul(b);
  auto av = a.to_vector(), bv = b.to_vector(), cv = c.to_vector();
  for (coord_t i = 0; i < m; ++i) {
    for (coord_t j = 0; j < n; ++j) {
      double acc = 0;
      for (coord_t l = 0; l < k; ++l)
        acc += av[static_cast<std::size_t>(i * k + l)] *
               bv[static_cast<std::size_t>(l * n + j)];
      EXPECT_NEAR(cv[static_cast<std::size_t>(i * n + j)], acc, 1e-12);
    }
  }
}

TEST_F(DenseTest, TransposeInvolution) {
  auto a = DArray::random2d(rt_, 8, 5, 3);
  auto t = a.transpose();
  EXPECT_EQ(t.rows(), 5);
  EXPECT_EQ(t.cols(), 8);
  auto tt = t.transpose();
  EXPECT_EQ(tt.to_vector(), a.to_vector());
}

TEST_F(DenseTest, ScalarFutureChainsDependence) {
  // x /= norm(x): the scale must wait for the allreduce'd norm.
  auto x = DArray::random(rt_, 1 << 16, 7);
  Scalar n = x.norm();
  double before = rt_.sim_time();
  x.iscale({1.0 / n.value, n.ready});
  EXPECT_GE(rt_.sim_time(), before);
  EXPECT_NEAR(x.norm().value, 1.0, 1e-12);
}

TEST_F(DenseTest, MaximumMinimumClip) {
  auto a = DArray::from_vector(rt_, {1, 5, -3, 2});
  auto b = DArray::from_vector(rt_, {2, 4, -1, 2});
  EXPECT_EQ(a.maximum(b).to_vector(), (std::vector<double>{2, 5, -1, 2}));
  EXPECT_EQ(a.minimum(b).to_vector(), (std::vector<double>{1, 4, -3, 2}));
  EXPECT_EQ(a.clip(-1, 2).to_vector(), (std::vector<double>{1, 2, -1, 2}));
}

TEST_F(DenseTest, SquareReciprocalLog) {
  auto a = DArray::from_vector(rt_, {1, 2, 4});
  EXPECT_EQ(a.square().to_vector(), (std::vector<double>{1, 4, 16}));
  EXPECT_EQ(a.reciprocal().to_vector(), (std::vector<double>{1, 0.5, 0.25}));
  auto e = DArray::from_vector(rt_, {1.0});
  EXPECT_DOUBLE_EQ(e.log().to_vector()[0], 0.0);
  EXPECT_NEAR(a.log().exp().to_vector()[1], 2.0, 1e-12);
}

TEST_F(DenseTest, SliceCopiesWindow) {
  auto a = DArray::arange(rt_, 100);
  auto s = a.slice(10, 25);
  EXPECT_EQ(s.size(), 15);
  auto v = s.to_vector();
  for (coord_t i = 0; i < 15; ++i)
    EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(i)], static_cast<double>(10 + i));
  // Degenerate slices.
  EXPECT_EQ(a.slice(0, 0).size(), 0);
  EXPECT_EQ(a.slice(0, 100).to_vector(), a.to_vector());
}

/// Weak-scaling sanity: the same per-processor work should take roughly
/// constant simulated time as processors grow (embarrassingly parallel op).
class DenseWeakScaling : public ::testing::TestWithParam<int> {};

TEST_P(DenseWeakScaling, ElementwiseIsScalable) {
  sim::PerfParams pp;
  int procs = GetParam();
  sim::Machine m = sim::Machine::gpus(procs, pp);
  rt::Runtime rt(m);
  coord_t n = 100000 * procs;
  auto a = DArray::full(rt, n, 1.0);
  auto b = DArray::full(rt, n, 2.0);
  double t0 = rt.sim_time();
  for (int i = 0; i < 5; ++i) a.iadd(b);
  double per_iter = (rt.sim_time() - t0) / 5;
  // Must stay near the 1-proc time; allow generous overhead slack.
  sim::Machine m1 = sim::Machine::gpus(1, pp);
  rt::Runtime rt1(m1);
  auto a1 = DArray::full(rt1, 100000, 1.0);
  auto b1 = DArray::full(rt1, 100000, 2.0);
  double s0 = rt1.sim_time();
  for (int i = 0; i < 5; ++i) a1.iadd(b1);
  double per_iter_1 = (rt1.sim_time() - s0) / 5;
  EXPECT_LT(per_iter, per_iter_1 * 3);
}

INSTANTIATE_TEST_SUITE_P(Procs, DenseWeakScaling, ::testing::Values(1, 2, 6, 12, 24));

}  // namespace
}  // namespace legate::dense
