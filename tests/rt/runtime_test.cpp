#include "rt/runtime.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace legate::rt {
namespace {

sim::Machine gpu_machine(int n) {
  sim::PerfParams pp;
  return sim::Machine::gpus(n, pp);
}

TEST(Runtime, AttachRoundTrip) {
  auto m = gpu_machine(2);
  Runtime rt(m);
  std::vector<double> v{1, 2, 3, 4};
  Store s = rt.attach(v);
  auto sp = s.span<double>();
  EXPECT_EQ(std::vector<double>(sp.begin(), sp.end()), v);
}

TEST(Runtime, FillTaskWritesAllElements) {
  auto m = gpu_machine(3);
  Runtime rt(m);
  Store s = rt.create_store(DType::F64, {100});
  TaskLauncher launch(rt, "fill");
  int out = launch.add_output(s);
  launch.set_leaf([out](TaskContext& ctx) {
    auto y = ctx.full<double>(out);
    Interval iv = ctx.elem_interval(out);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = 7.0;
    ctx.add_cost(static_cast<double>(iv.size()) * 8, 0);
  });
  launch.execute();
  for (double x : s.span<double>()) EXPECT_DOUBLE_EQ(x, 7.0);
}

TEST(Runtime, AlignedBinaryOpComputesEverywhere) {
  auto m = gpu_machine(4);
  Runtime rt(m);
  std::vector<double> av(97), bv(97);
  std::iota(av.begin(), av.end(), 0.0);
  std::iota(bv.begin(), bv.end(), 100.0);
  Store a = rt.attach(av), b = rt.attach(bv);
  Store c = rt.create_store(DType::F64, {97});
  TaskLauncher launch(rt, "add");
  int ia = launch.add_input(a), ib = launch.add_input(b), ic = launch.add_output(c);
  launch.align(ia, ib);
  launch.align(ia, ic);
  launch.set_leaf([=](TaskContext& ctx) {
    auto x = ctx.full<double>(ia);
    auto y = ctx.full<double>(ib);
    auto z = ctx.full<double>(ic);
    Interval iv = ctx.elem_interval(ic);
    for (coord_t i = iv.lo; i < iv.hi; ++i) z[i] = x[i] + y[i];
    ctx.add_cost(static_cast<double>(iv.size()) * 24, static_cast<double>(iv.size()));
  });
  launch.execute();
  auto sp = c.span<double>();
  for (coord_t i = 0; i < 97; ++i) EXPECT_DOUBLE_EQ(sp[i], av[i] + bv[i]);
}

TEST(Runtime, ScalarReductionSumsPartials) {
  auto m = gpu_machine(4);
  Runtime rt(m);
  std::vector<double> v(1000, 0.5);
  Store s = rt.attach(v);
  TaskLauncher launch(rt, "sum");
  int in = launch.add_input(s);
  launch.reduce_scalar(ScalarRedop::Sum);
  launch.set_leaf([in](TaskContext& ctx) {
    auto x = ctx.full<double>(in);
    Interval iv = ctx.elem_interval(in);
    double acc = 0;
    for (coord_t i = iv.lo; i < iv.hi; ++i) acc += x[i];
    ctx.add_cost(static_cast<double>(iv.size()) * 8, static_cast<double>(iv.size()));
    ctx.contribute(acc);
  });
  Future f = launch.execute();
  ASSERT_TRUE(f.valid);
  EXPECT_DOUBLE_EQ(f.value, 500.0);
  EXPECT_GT(f.ready, 0.0);
}

TEST(Runtime, PartitionReuseAvoidsNewPartitions) {
  auto m = gpu_machine(4);
  Runtime rt(m);
  Store a = rt.create_store(DType::F64, {1000});
  auto run_fill = [&](Store& s) {
    TaskLauncher launch(rt, "fill");
    int out = launch.add_output(s);
    launch.set_leaf([out](TaskContext& ctx) {
      auto y = ctx.full<double>(out);
      Interval iv = ctx.elem_interval(out);
      for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = 1.0;
      ctx.add_cost(static_cast<double>(iv.size()) * 8, 0);
    });
    launch.execute();
  };
  run_fill(a);
  long after_first = rt.partitions_created();
  for (int i = 0; i < 10; ++i) run_fill(a);
  // The key partition of `a` satisfies the constraints of every later fill.
  EXPECT_EQ(rt.partitions_created(), after_first);
  EXPECT_NE(rt.key_partition(a), nullptr);
}

TEST(Runtime, PartitionReuseCanBeDisabled) {
  auto m = gpu_machine(4);
  RuntimeOptions opts;
  opts.partition_reuse = false;
  Runtime rt(m, opts);
  Store a = rt.create_store(DType::F64, {1000});
  auto run_fill = [&] {
    TaskLauncher launch(rt, "fill");
    int out = launch.add_output(a);
    launch.set_leaf([out](TaskContext& ctx) {
      auto y = ctx.full<double>(out);
      Interval iv = ctx.elem_interval(out);
      for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = 1.0;
      ctx.add_cost(1, 0);
    });
    launch.execute();
  };
  run_fill();
  long after_first = rt.partitions_created();
  run_fill();
  EXPECT_GT(rt.partitions_created(), after_first);
}

TEST(Runtime, RawDependenceSerializesTasks) {
  auto m = gpu_machine(1);
  Runtime rt(m);
  Store a = rt.create_store(DType::F64, {1 << 20});
  auto write_then_reduce = [&]() -> Future {
    {
      TaskLauncher w(rt, "w");
      int out = w.add_output(a);
      w.set_leaf([out](TaskContext& ctx) {
        auto y = ctx.full<double>(out);
        Interval iv = ctx.elem_interval(out);
        for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = 1.0;
        ctx.add_cost(static_cast<double>(iv.size()) * 8, 0);
      });
      w.execute();
    }
    TaskLauncher r(rt, "r");
    int in = r.add_input(a);
    r.reduce_scalar(ScalarRedop::Sum);
    r.set_leaf([in](TaskContext& ctx) {
      auto x = ctx.full<double>(in);
      Interval iv = ctx.elem_interval(in);
      double acc = 0;
      for (coord_t i = iv.lo; i < iv.hi; ++i) acc += x[i];
      ctx.add_cost(static_cast<double>(iv.size()) * 8, 0);
      ctx.contribute(acc);
    });
    return r.execute();
  };
  Future f1 = write_then_reduce();
  Future f2 = write_then_reduce();
  // Second round must strictly follow the first (WAR on `a` then RAW).
  EXPECT_GT(f2.ready, f1.ready);
}

TEST(Runtime, FutureDependenceDelaysConsumer) {
  auto m = gpu_machine(2);
  Runtime rt(m);
  Store a = rt.create_store(DType::F64, {64});
  double far_future = 123.0;
  TaskLauncher launch(rt, "w");
  int out = launch.add_output(a);
  launch.depend_on(far_future);
  launch.reduce_scalar(ScalarRedop::Sum);
  launch.set_leaf([out](TaskContext& ctx) {
    auto y = ctx.full<double>(out);
    Interval iv = ctx.elem_interval(out);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = 0;
    ctx.add_cost(8, 0);
    ctx.contribute(0);
  });
  Future f = launch.execute();
  EXPECT_GE(f.ready, far_future);
}

TEST(Runtime, ImageRectsBoundsFollowData) {
  auto m = gpu_machine(2);
  Runtime rt(m);
  // pos with 4 rows; rows 0-1 reference crd [0,3), rows 2-3 reference [3,6).
  Store pos = rt.create_store(DType::Rect1, {4});
  auto pr = pos.span<Rect1>();
  pr[0] = {0, 1};
  pr[1] = {2, 2};
  pr[2] = {3, 4};
  pr[3] = {5, 5};
  rt.mark_attached(pos);
  Store crd = rt.create_store(DType::I64, {6});
  auto cr = crd.span<coord_t>();
  // Each colored half of crd references a window of x.
  cr[0] = 0; cr[1] = 1; cr[2] = 2; cr[3] = 7; cr[4] = 8; cr[5] = 9;
  rt.mark_attached(crd);
  Store x = rt.create_store(DType::F64, {10});

  TaskLauncher launch(rt, "probe");
  int ip = launch.add_input(pos);
  int ic = launch.add_input(crd);
  int ix = launch.add_input(x);
  launch.image_rects(ip, ic);
  launch.image_points(ic, ix);
  std::vector<Interval> crd_ivs(2), x_ivs(2);
  launch.set_leaf([&, ic, ix](TaskContext& ctx) {
    crd_ivs[static_cast<std::size_t>(ctx.color())] = ctx.elem_interval(ic);
    x_ivs[static_cast<std::size_t>(ctx.color())] = ctx.elem_interval(ix);
    ctx.add_cost(1, 0);
  });
  launch.execute();
  rt.fence();  // leaf side-effects (captured intervals) need a drain
  EXPECT_EQ(crd_ivs[0], (Interval{0, 3}));
  EXPECT_EQ(crd_ivs[1], (Interval{3, 6}));
  EXPECT_EQ(x_ivs[0], (Interval{0, 3}));
  EXPECT_EQ(x_ivs[1], (Interval{7, 10}));
}

TEST(Runtime, BroadcastGivesWholeStoreToEachPoint) {
  auto m = gpu_machine(3);
  Runtime rt(m);
  std::vector<double> v(10, 2.0);
  Store b = rt.attach(v);
  Store out = rt.create_store(DType::F64, {30});
  TaskLauncher launch(rt, "bcast");
  int ib = launch.add_input(b);
  int io = launch.add_output(out);
  launch.broadcast(ib);
  launch.set_leaf([=](TaskContext& ctx) {
    EXPECT_EQ(ctx.elem_interval(ib), (Interval{0, 10}));
    auto y = ctx.full<double>(io);
    Interval iv = ctx.elem_interval(io);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = 1.0;
    ctx.add_cost(1, 0);
  });
  launch.execute();
}

TEST(Runtime, StoreReductionSumsAcrossPoints) {
  auto m = gpu_machine(4);
  Runtime rt(m);
  Store acc = rt.create_store(DType::F64, {8});
  TaskLauncher launch(rt, "reduce");
  int ir = launch.add_reduction(acc);
  // Give the launch a partitioned driver so 4 points run.
  Store driver = rt.create_store(DType::F64, {400});
  int id = launch.add_output(driver);
  launch.set_leaf([=](TaskContext& ctx) {
    auto part = ctx.full<double>(ir);  // private zeroed partial buffer
    for (auto& p : part) p = 1.0;
    auto y = ctx.full<double>(id);
    Interval iv = ctx.elem_interval(id);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = 0;
    ctx.add_cost(1, 0);
  });
  launch.execute();
  for (double x : acc.span<double>()) EXPECT_DOUBLE_EQ(x, 4.0);
}

TEST(Runtime, SingleColorLaunchRunsOnce) {
  auto m = gpu_machine(4);
  Runtime rt(m);
  Store a = rt.create_store(DType::F64, {100});
  int runs = 0;
  TaskLauncher launch(rt, "seq");
  int out = launch.add_output(a);
  launch.require_colors(1);
  launch.set_leaf([&, out](TaskContext& ctx) {
    ++runs;
    EXPECT_EQ(ctx.elem_interval(out), (Interval{0, 100}));
    ctx.add_cost(1, 0);
  });
  launch.execute();
  rt.fence();  // leaf side-effects (captured counter) need a drain
  EXPECT_EQ(runs, 1);
}

TEST(Runtime, ShuffleTransposesAndChargesTraffic) {
  auto m = gpu_machine(4);
  Runtime rt(m);
  Store in = rt.create_store(DType::F64, {4, 3});
  auto is = in.span<double>();
  for (coord_t i = 0; i < 12; ++i) is[i] = static_cast<double>(i);
  rt.mark_attached(in);
  Store out = rt.create_store(DType::F64, {3, 4});
  long copies_before = rt.engine().stats().copies;
  rt.shuffle(in, out, [&]() {
    auto a = in.span<double>();
    auto b = out.span<double>();
    for (coord_t i = 0; i < 4; ++i)
      for (coord_t j = 0; j < 3; ++j) b[j * 4 + i] = a[i * 3 + j];
  });
  EXPECT_DOUBLE_EQ(out.span<double>()[0 * 4 + 2], 6.0);  // out[0][2] == in[2][0]
  EXPECT_GT(rt.engine().stats().copies, copies_before);
}

TEST(Runtime, ShuffleSingleProcChargesNoTraffic) {
  // Regression: the volume/P^2 all-to-all model used to charge every (s, d)
  // pair including s == d, so a single-proc shuffle booked interconnect
  // traffic for data that never leaves the processor.
  auto m = gpu_machine(1);
  Runtime rt(m);
  Store in = rt.create_store(DType::F64, {4, 3});
  auto is = in.span<double>();
  for (coord_t i = 0; i < 12; ++i) is[i] = static_cast<double>(i);
  rt.mark_attached(in);
  Store out = rt.create_store(DType::F64, {3, 4});
  const auto before = rt.engine().stats();
  rt.shuffle(in, out, [&]() {
    auto a = in.span<double>();
    auto b = out.span<double>();
    for (coord_t i = 0; i < 4; ++i)
      for (coord_t j = 0; j < 3; ++j) b[j * 4 + i] = a[i * 3 + j];
  });
  EXPECT_DOUBLE_EQ(out.span<double>()[0 * 4 + 2], 6.0);
  const auto& after = rt.engine().stats();
  EXPECT_EQ(after.copies, before.copies);
  EXPECT_DOUBLE_EQ(after.bytes_intra, before.bytes_intra);
  EXPECT_DOUBLE_EQ(after.bytes_nvlink, before.bytes_nvlink);
  EXPECT_DOUBLE_EQ(after.bytes_ib, before.bytes_ib);
}

TEST(Runtime, ShuffleCpuSocketsChargeIntraOnly) {
  // Two sockets sharing one sysmem: cross-socket pairs move bytes within a
  // single memory, never over nvlink or the NIC.
  sim::PerfParams pp;
  auto m = sim::Machine::sockets(2, pp);
  Runtime rt(m);
  Store in = rt.create_store(DType::F64, {8, 4});
  auto is = in.span<double>();
  for (coord_t i = 0; i < 32; ++i) is[i] = static_cast<double>(i);
  rt.mark_attached(in);
  Store out = rt.create_store(DType::F64, {4, 8});
  const auto before = rt.engine().stats();
  rt.shuffle(in, out, [&]() {
    auto a = in.span<double>();
    auto b = out.span<double>();
    for (coord_t i = 0; i < 8; ++i)
      for (coord_t j = 0; j < 4; ++j) b[j * 8 + i] = a[i * 4 + j];
  });
  const auto& after = rt.engine().stats();
  EXPECT_GT(after.bytes_intra, before.bytes_intra);
  EXPECT_DOUBLE_EQ(after.bytes_nvlink, before.bytes_nvlink);
  EXPECT_DOUBLE_EQ(after.bytes_ib, before.bytes_ib);
}

TEST(Runtime, MoreColorsThanRowsClamps) {
  auto m = gpu_machine(6);
  Runtime rt(m);
  Store a = rt.create_store(DType::F64, {3});
  int points = 0;
  TaskLauncher launch(rt, "tiny");
  int out = launch.add_output(a);
  launch.set_leaf([&, out](TaskContext& ctx) {
    ++points;
    auto y = ctx.full<double>(out);
    Interval iv = ctx.elem_interval(out);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = 1;
    ctx.add_cost(1, 0);
  });
  launch.execute();
  EXPECT_LE(points, 3);
  for (double x : a.span<double>()) EXPECT_DOUBLE_EQ(x, 1.0);
}

}  // namespace
}  // namespace legate::rt
