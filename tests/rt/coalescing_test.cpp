// Reproduces the paper's Fig. 5 walk-through: a power-iteration loop
// (x = A @ x; x *= s) on two GPUs must reach a steady state where the only
// inter-GPU traffic is the one-element halo exchange of x, with no further
// allocation resizing. This exercises image partitioning, partition reuse,
// allocation coalescing and the out-of-scope allocation pool together.
#include <gtest/gtest.h>

#include <vector>

#include "rt/runtime.h"

namespace legate::rt {
namespace {

struct Csr {
  Store pos, crd, vals;
  coord_t rows;
};

/// Tridiagonal matrix with all entries 1/3 (any banded matrix works).
Csr make_tridiag(Runtime& rt, coord_t n) {
  std::vector<Rect1> pos(static_cast<std::size_t>(n));
  std::vector<coord_t> crd;
  std::vector<double> vals;
  for (coord_t i = 0; i < n; ++i) {
    coord_t lo = static_cast<coord_t>(crd.size());
    for (coord_t j = std::max<coord_t>(0, i - 1); j <= std::min(n - 1, i + 1); ++j) {
      crd.push_back(j);
      vals.push_back(1.0 / 3.0);
    }
    pos[static_cast<std::size_t>(i)] = {lo, static_cast<coord_t>(crd.size()) - 1};
  }
  Csr A;
  A.rows = n;
  A.pos = rt.create_store(DType::Rect1, {n});
  std::copy(pos.begin(), pos.end(), A.pos.span<Rect1>().begin());
  rt.mark_attached(A.pos);
  A.crd = rt.attach(crd);
  A.vals = rt.attach(vals);
  return A;
}

Store spmv(Runtime& rt, const Csr& A, const Store& x) {
  Store y = rt.create_store(DType::F64, {A.rows});
  TaskLauncher launch(rt, "spmv");
  int iy = launch.add_output(y);
  int ip = launch.add_input(A.pos);
  int ic = launch.add_input(A.crd);
  int iv = launch.add_input(A.vals);
  int ix = launch.add_input(x);
  launch.align(iy, ip);
  launch.image_rects(ip, ic);
  launch.image_rects(ip, iv);
  launch.image_points(ic, ix);
  launch.set_leaf([=](TaskContext& ctx) {
    auto yv = ctx.full<double>(iy);
    auto pv = ctx.full<Rect1>(ip);
    auto cv = ctx.full<coord_t>(ic);
    auto vv = ctx.full<double>(iv);
    auto xv = ctx.full<double>(ix);
    Interval rows = ctx.elem_interval(iy);
    double nnz = 0;
    for (coord_t i = rows.lo; i < rows.hi; ++i) {
      double acc = 0;
      for (coord_t j = pv[i].lo; j <= pv[i].hi; ++j) acc += vv[j] * xv[cv[j]];
      yv[i] = acc;
      nnz += static_cast<double>(pv[i].size());
    }
    ctx.add_cost(nnz * 24 + static_cast<double>(rows.size()) * 24, 2 * nnz);
  });
  launch.execute();
  return y;
}

void scale_inplace(Runtime& rt, Store& x, double s) {
  TaskLauncher launch(rt, "scale");
  int ix = launch.add_inout(x);
  launch.set_leaf([=](TaskContext& ctx) {
    auto xv = ctx.full<double>(ix);
    Interval iv = ctx.elem_interval(ix);
    for (coord_t i = iv.lo; i < iv.hi; ++i) xv[i] *= s;
    ctx.add_cost(static_cast<double>(iv.size()) * 16, static_cast<double>(iv.size()));
  });
  launch.execute();
}

class CoalescingFig5 : public ::testing::Test {
 protected:
  static constexpr coord_t kN = 1000;
};

TEST_F(CoalescingFig5, SteadyStateOnlyHaloTraffic) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(2, pp);
  Runtime rt(m);
  Csr A = make_tridiag(rt, kN);
  std::vector<double> x0(static_cast<std::size_t>(kN), 1.0);
  Store x = rt.attach(x0);

  // Warm up past the paper's startup transitions (steady by iteration 3).
  for (int it = 0; it < 4; ++it) {
    Store y = spmv(rt, A, x);
    scale_inplace(rt, y, 0.5);
    x = y;
  }

  const auto& st = rt.engine().stats();
  double nvlink0 = st.bytes_nvlink;
  double intra0 = st.bytes_intra;
  for (int it = 0; it < 5; ++it) {
    Store y = spmv(rt, A, x);
    scale_inplace(rt, y, 0.5);
    x = y;
    rt.fence();  // stats observation point: drain deferred launches
    // Per iteration: exactly one 8-byte halo element in each direction.
    EXPECT_DOUBLE_EQ(st.bytes_nvlink - nvlink0, 16.0 * (it + 1));
    // And no further allocation resizing.
    EXPECT_DOUBLE_EQ(st.bytes_intra, intra0);
  }
}

TEST_F(CoalescingFig5, WithoutCoalescingEveryIterationRecopies) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(2, pp);
  RuntimeOptions opts;
  opts.coalescing = false;
  Runtime rt(m, opts);
  Csr A = make_tridiag(rt, kN);
  std::vector<double> x0(static_cast<std::size_t>(kN), 1.0);
  Store x = rt.attach(x0);
  for (int it = 0; it < 4; ++it) {
    Store y = spmv(rt, A, x);
    scale_inplace(rt, y, 0.5);
    x = y;
  }
  const auto& st = rt.engine().stats();
  double total0 = st.bytes_nvlink + st.bytes_intra;
  for (int it = 0; it < 3; ++it) {
    Store y = spmv(rt, A, x);
    scale_inplace(rt, y, 0.5);
    x = y;
  }
  rt.fence();  // stats observation point: drain deferred launches
  // Far more than halo traffic: each iteration re-copies whole blocks
  // (block-sized local copies plus the halo elements).
  EXPECT_GT(st.bytes_nvlink + st.bytes_intra - total0, 3 * 16.0 * 10);
}

TEST_F(CoalescingFig5, ResultsIdenticalWithAndWithoutCoalescing) {
  sim::PerfParams pp;
  auto run = [&](bool coalesce) {
    sim::Machine m = sim::Machine::gpus(2, pp);
    RuntimeOptions opts;
    opts.coalescing = coalesce;
    Runtime rt(m, opts);
    Csr A = make_tridiag(rt, kN);
    std::vector<double> x0(static_cast<std::size_t>(kN), 1.0);
    Store x = rt.attach(x0);
    for (int it = 0; it < 6; ++it) {
      Store y = spmv(rt, A, x);
      scale_inplace(rt, y, 0.5);
      x = y;
    }
    auto sp = x.span<double>();
    return std::vector<double>(sp.begin(), sp.end());
  };
  // The mapper policy must never change results, only performance.
  EXPECT_EQ(run(true), run(false));
}

TEST_F(CoalescingFig5, SequentialOracleAgreement) {
  sim::PerfParams pp;
  sim::Machine m = sim::Machine::gpus(3, pp);
  Runtime rt(m);
  Csr A = make_tridiag(rt, kN);
  std::vector<double> ref(static_cast<std::size_t>(kN), 1.0);
  Store x = rt.attach(ref);
  for (int it = 0; it < 3; ++it) {
    Store y = spmv(rt, A, x);
    x = y;
    // Sequential tridiagonal SpMV oracle.
    std::vector<double> next(ref.size());
    for (coord_t i = 0; i < kN; ++i) {
      double acc = 0;
      for (coord_t j = std::max<coord_t>(0, i - 1); j <= std::min(kN - 1, i + 1); ++j)
        acc += ref[static_cast<std::size_t>(j)] / 3.0;
      next[static_cast<std::size_t>(i)] = acc;
    }
    ref = next;
  }
  auto sp = x.span<double>();
  for (coord_t i = 0; i < kN; ++i)
    EXPECT_NEAR(sp[i], ref[static_cast<std::size_t>(i)], 1e-12) << i;
}

}  // namespace
}  // namespace legate::rt
