#include "rt/partition.h"

#include <gtest/gtest.h>

namespace legate::rt {
namespace {

TEST(Partition, EqualCoversDisjointly) {
  auto p = Partition::equal(10, 3);
  ASSERT_EQ(p->colors(), 3);
  EXPECT_TRUE(p->disjoint());
  coord_t total = 0, cursor = 0;
  for (int c = 0; c < 3; ++c) {
    Interval iv = p->sub(c);
    EXPECT_EQ(iv.lo, cursor);
    cursor = iv.hi;
    total += iv.size();
  }
  EXPECT_EQ(total, 10);
  EXPECT_EQ(cursor, 10);
}

TEST(Partition, EqualRemainderSpreadsOverLeadingColors) {
  auto p = Partition::equal(11, 4);
  EXPECT_EQ(p->sub(0).size(), 3);
  EXPECT_EQ(p->sub(1).size(), 3);
  EXPECT_EQ(p->sub(2).size(), 3);
  EXPECT_EQ(p->sub(3).size(), 2);
}

TEST(Partition, EqualMoreColorsThanElements) {
  auto p = Partition::equal(2, 4);
  EXPECT_EQ(p->sub(0).size(), 1);
  EXPECT_EQ(p->sub(1).size(), 1);
  EXPECT_TRUE(p->sub(2).empty());
  EXPECT_TRUE(p->sub(3).empty());
}

TEST(Partition, EqualityComparesSubspaces) {
  auto a = Partition::equal(10, 2);
  auto b = Partition::equal(10, 2);
  auto c = Partition::equal(10, 5);
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);
}

}  // namespace
}  // namespace legate::rt
