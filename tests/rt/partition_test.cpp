#include "rt/partition.h"

#include <gtest/gtest.h>

namespace legate::rt {
namespace {

TEST(Partition, EqualCoversDisjointly) {
  auto p = Partition::equal(10, 3);
  ASSERT_EQ(p->colors(), 3);
  EXPECT_TRUE(p->disjoint());
  coord_t total = 0, cursor = 0;
  for (int c = 0; c < 3; ++c) {
    Interval iv = p->sub(c);
    EXPECT_EQ(iv.lo, cursor);
    cursor = iv.hi;
    total += iv.size();
  }
  EXPECT_EQ(total, 10);
  EXPECT_EQ(cursor, 10);
}

TEST(Partition, EqualRemainderSpreadsOverLeadingColors) {
  auto p = Partition::equal(11, 4);
  EXPECT_EQ(p->sub(0).size(), 3);
  EXPECT_EQ(p->sub(1).size(), 3);
  EXPECT_EQ(p->sub(2).size(), 3);
  EXPECT_EQ(p->sub(3).size(), 2);
}

TEST(Partition, EqualMoreColorsThanElements) {
  auto p = Partition::equal(2, 4);
  EXPECT_EQ(p->sub(0).size(), 1);
  EXPECT_EQ(p->sub(1).size(), 1);
  EXPECT_TRUE(p->sub(2).empty());
  EXPECT_TRUE(p->sub(3).empty());
}

TEST(Partition, BalancedCutsAtExactPrefixSums) {
  // weights: 4 1 1 1 1 4 — total 12, 3 colors, target 4 per color. The cut
  // rule (smallest i with prefix(i)*colors >= c*total) puts the cuts after
  // row 0 (prefix 4) and after row 4 (prefix 8).
  auto p = Partition::balanced({4, 1, 1, 1, 1, 4}, 3);
  ASSERT_EQ(p->colors(), 3);
  EXPECT_TRUE(p->disjoint());
  EXPECT_EQ(p->sub(0), (Interval{0, 1}));
  EXPECT_EQ(p->sub(1), (Interval{1, 5}));
  EXPECT_EQ(p->sub(2), (Interval{5, 6}));
}

TEST(Partition, BalancedCoversDisjointly) {
  auto p = Partition::balanced({3, 0, 7, 2, 2, 9, 1, 1}, 4);
  coord_t cursor = 0;
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(p->sub(c).lo, cursor);
    cursor = p->sub(c).hi;
  }
  EXPECT_EQ(cursor, 8);
}

TEST(Partition, BalancedAllZeroWeightsDegeneratesToEqual) {
  auto p = Partition::balanced({0, 0, 0, 0, 0, 0}, 3);
  auto eq = Partition::equal(6, 3);
  EXPECT_TRUE(*p == *eq);
}

TEST(Partition, BalancedSingleHotRowIsolatesIt) {
  // One row carries nearly all the work: it gets a color of its own and the
  // trailing colors collapse to (possibly empty) light remainders.
  auto p = Partition::balanced({1, 100, 1, 1}, 3);
  ASSERT_EQ(p->colors(), 3);
  // The hot row must not share a color with more than the one leading light
  // row needed to reach its cut.
  int hot_color = -1;
  for (int c = 0; c < 3; ++c) {
    if (p->sub(c).contains(1)) hot_color = c;
  }
  ASSERT_GE(hot_color, 0);
  EXPECT_LE(p->sub(hot_color).size(), 2);
  coord_t cursor = 0;
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(p->sub(c).lo, cursor);
    cursor = p->sub(c).hi;
  }
  EXPECT_EQ(cursor, 4);
}

TEST(Partition, BalancedFewerRowsThanColors) {
  auto p = Partition::balanced({5, 5}, 4);
  ASSERT_EQ(p->colors(), 4);
  coord_t total = 0;
  for (int c = 0; c < 4; ++c) total += p->sub(c).size();
  EXPECT_EQ(total, 2);
  // Trailing colors get zero-length subspaces, not out-of-range ones.
  EXPECT_TRUE(p->sub(3).empty());
}

TEST(Partition, BalancedEmptyWeights) {
  auto p = Partition::balanced({}, 3);
  ASSERT_EQ(p->colors(), 3);
  for (int c = 0; c < 3; ++c) EXPECT_TRUE(p->sub(c).empty());
}

TEST(Partition, StrategyParseRoundTrips) {
  EXPECT_EQ(parse_partition_strategy("rows"), PartitionStrategy::Rows);
  EXPECT_EQ(parse_partition_strategy("nnz"), PartitionStrategy::Nnz);
  EXPECT_EQ(parse_partition_strategy("auto"), PartitionStrategy::Auto);
  EXPECT_EQ(parse_partition_strategy("bogus"), PartitionStrategy::Unset);
  EXPECT_EQ(parse_partition_strategy(nullptr), PartitionStrategy::Unset);
  EXPECT_STREQ(partition_strategy_name(PartitionStrategy::Nnz), "nnz");
  EXPECT_STREQ(partition_strategy_name(PartitionStrategy::Rows), "rows");
}

TEST(Partition, EqualityComparesSubspaces) {
  auto a = Partition::equal(10, 2);
  auto b = Partition::equal(10, 2);
  auto c = Partition::equal(10, 5);
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);
}

}  // namespace
}  // namespace legate::rt
