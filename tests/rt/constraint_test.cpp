// Tests for the halo constraint, precise images, store reductions and the
// RuntimeOptions toggles.
#include <gtest/gtest.h>

#include <vector>

#include "rt/runtime.h"

namespace legate::rt {
namespace {

sim::Machine gpus(int n) {
  sim::PerfParams pp;
  return sim::Machine::gpus(n, pp);
}

TEST(HaloConstraint, ExpandsAndClips) {
  auto m = gpus(3);
  Runtime rt(m);
  Store y = rt.create_store(DType::F64, {90});
  Store x = rt.create_store(DType::F64, {90});
  std::vector<Interval> seen(3);
  TaskLauncher launch(rt, "halo");
  int iy = launch.add_output(y);
  int ix = launch.add_input(x);
  launch.halo(iy, ix, -2, 3);
  launch.set_leaf([&, iy, ix](TaskContext& ctx) {
    seen[static_cast<std::size_t>(ctx.color())] = ctx.elem_interval(ix);
    auto yv = ctx.full<double>(iy);
    Interval iv = ctx.elem_interval(iy);
    for (coord_t i = iv.lo; i < iv.hi; ++i) yv[i] = 0;
    ctx.add_cost(1, 0);
  });
  launch.execute();
  rt.fence();  // leaf side-effects (captured intervals) need a drain
  EXPECT_EQ(seen[0], (Interval{0, 33}));    // [0-2, 30+3) clipped at 0
  EXPECT_EQ(seen[1], (Interval{28, 63}));   // [30-2, 60+3)
  EXPECT_EQ(seen[2], (Interval{58, 90}));   // [60-2, 90+3) clipped at 90
}

TEST(PreciseImages, SparseGatherCopiesOnlyTouchedData) {
  // crd references two tiny clusters at the far ends of x: the bounding
  // interval spans all of x, but only the clusters move.
  auto m = gpus(2);
  Runtime rt(m);
  constexpr coord_t kN = 100000;
  std::vector<coord_t> crd_v;
  for (coord_t i = 0; i < 8; ++i) crd_v.push_back(i);            // head cluster
  for (coord_t i = 0; i < 8; ++i) crd_v.push_back(kN - 8 + i);   // tail cluster
  // Two colors, each sees both clusters -> same pattern on each.
  for (coord_t i = 0; i < 8; ++i) crd_v.push_back(i);
  for (coord_t i = 0; i < 8; ++i) crd_v.push_back(kN - 8 + i);
  Store crd = rt.attach(crd_v);
  std::vector<double> xv(static_cast<std::size_t>(kN), 1.0);
  Store x = rt.attach(xv);
  Store out = rt.create_store(DType::F64, {32});

  double nv0 = rt.engine().stats().bytes_nvlink;
  TaskLauncher launch(rt, "gather");
  int io = launch.add_output(out);
  int ic = launch.add_input(crd);
  int ix = launch.add_input(x);
  launch.align(io, ic);
  launch.image_points(ic, ix);
  launch.set_leaf([=](TaskContext& ctx) {
    auto ov = ctx.full<double>(io);
    auto cv = ctx.full<coord_t>(ic);
    auto xs = ctx.full<double>(ix);
    Interval iv = ctx.elem_interval(io);
    for (coord_t i = iv.lo; i < iv.hi; ++i) ov[i] = xs[cv[i]];
    ctx.add_cost(static_cast<double>(iv.size()) * 24.0, 0);
  });
  launch.execute();
  double moved = rt.engine().stats().bytes_nvlink - nv0;
  // Without precise images each GPU would pull ~kN*8 = 800 KB; with them,
  // only the clusters (16 values) plus the small crd/out arrays move.
  EXPECT_LT(moved, 4096);
  EXPECT_GT(moved, 0);
  // Values are correct.
  auto ov = out.span<double>();
  for (double v : ov) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(PreciseImages, BoundingAllocationStillCharged) {
  // Even with precise copies, the instance covers the bounding interval —
  // that is what makes the quantum benchmark's footprint balloon.
  auto m = gpus(1);
  Runtime rt(m);
  constexpr coord_t kN = 1 << 20;
  std::vector<coord_t> crd_v{0, kN - 1};
  Store crd = rt.attach(crd_v);
  std::vector<double> xv(static_cast<std::size_t>(kN), 2.0);
  Store x = rt.attach(xv);
  Store out = rt.create_store(DType::F64, {2});
  int fb = m.proc(0).mem;
  double used0 = rt.engine().used_bytes(fb);
  TaskLauncher launch(rt, "gather");
  int io = launch.add_output(out);
  int ic = launch.add_input(crd);
  int ix = launch.add_input(x);
  launch.align(io, ic);
  launch.image_points(ic, ix);
  launch.set_leaf([=](TaskContext& ctx) {
    auto ov = ctx.full<double>(io);
    auto cv = ctx.full<coord_t>(ic);
    auto xs = ctx.full<double>(ix);
    Interval iv = ctx.elem_interval(io);
    for (coord_t i = iv.lo; i < iv.hi; ++i) ov[i] = xs[cv[i]];
    ctx.add_cost(16, 0);
  });
  launch.execute();
  double grew = rt.engine().used_bytes(fb) - used0;
  EXPECT_GE(grew, static_cast<double>(kN) * 8.0);  // full bounding instance
}

TEST(RuntimeOptions, TaskOverheadOverride) {
  auto m = gpus(1);
  RuntimeOptions cheap;
  cheap.task_overhead = 1e-6;
  Runtime rt_cheap(m, cheap);
  Runtime rt_default(m);
  auto run = [](Runtime& rt) {
    Store s = rt.create_store(DType::F64, {16});
    for (int i = 0; i < 50; ++i) {
      TaskLauncher launch(rt, "tiny");
      int out = launch.add_output(s);
      launch.set_leaf([out](TaskContext& ctx) {
        auto y = ctx.full<double>(out);
        Interval iv = ctx.elem_interval(out);
        for (coord_t k = iv.lo; k < iv.hi; ++k) y[k] = 1;
        ctx.add_cost(1, 0);
      });
      launch.execute();
    }
    return rt.sim_time();
  };
  // 50 tiny tasks are launch-bound: the cheap runtime is far faster.
  EXPECT_LT(run(rt_cheap) * 5, run(rt_default));
}

TEST(StoreReduction, ReplicatesResultEverywhere) {
  auto m = gpus(3);
  Runtime rt(m);
  Store acc = rt.create_store(DType::F64, {4});
  Store driver = rt.create_store(DType::F64, {300});
  {
    TaskLauncher launch(rt, "reduce");
    int ir = launch.add_reduction(acc);
    int id = launch.add_output(driver);
    launch.set_leaf([=](TaskContext& ctx) {
      auto part = ctx.full<double>(ir);
      for (auto& p : part) p = static_cast<double>(ctx.color() + 1);
      auto y = ctx.full<double>(id);
      Interval iv = ctx.elem_interval(id);
      for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = 0;
      ctx.add_cost(1, 0);
    });
    launch.execute();
  }
  for (double v : acc.span<double>()) EXPECT_DOUBLE_EQ(v, 1 + 2 + 3);
  // A follow-up read on any processor should need no copies: every memory
  // already holds the reduced value.
  long copies = rt.engine().stats().copies;
  TaskLauncher read(rt, "read");
  int ia = read.add_input(acc);
  read.broadcast(ia);
  Store out = rt.create_store(DType::F64, {300});
  int io = read.add_output(out);
  read.set_leaf([=](TaskContext& ctx) {
    auto a = ctx.full<double>(ia);
    auto y = ctx.full<double>(io);
    Interval iv = ctx.elem_interval(io);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = a[0];
    ctx.add_cost(1, 0);
  });
  read.execute();
  EXPECT_EQ(rt.engine().stats().copies, copies);
}

TEST(ImageCache, RepeatedLaunchesComputeImagesOnce) {
  auto m = gpus(2);
  Runtime rt(m);
  std::vector<coord_t> crd_v(1000);
  for (coord_t i = 0; i < 1000; ++i) crd_v[static_cast<std::size_t>(i)] = i;
  Store crd = rt.attach(crd_v);
  std::vector<double> xv(1000, 1.0);
  Store x = rt.attach(xv);
  auto run = [&] {
    Store out = rt.create_store(DType::F64, {1000});
    TaskLauncher launch(rt, "gather");
    int io = launch.add_output(out);
    int ic = launch.add_input(crd);
    int ix = launch.add_input(x);
    launch.align(io, ic);
    launch.image_points(ic, ix);
    launch.set_leaf([=](TaskContext& ctx) {
      auto ov = ctx.full<double>(io);
      auto cv = ctx.full<coord_t>(ic);
      auto xs = ctx.full<double>(ix);
      Interval iv = ctx.elem_interval(io);
      for (coord_t i = iv.lo; i < iv.hi; ++i) ov[i] = xs[cv[i]];
      ctx.add_cost(1, 0);
    });
    launch.execute();
  };
  run();
  long parts = rt.partitions_created();
  for (int i = 0; i < 5; ++i) run();
  // crd never changes, so the cached image partition is reused.
  EXPECT_EQ(rt.partitions_created(), parts);
}

}  // namespace
}  // namespace legate::rt
