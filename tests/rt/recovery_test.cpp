#include <gtest/gtest.h>

#include <vector>

#include "rt/runtime.h"

namespace legate::rt {
namespace {

sim::Machine gpu_machine(int n) {
  sim::PerfParams pp;
  return sim::Machine::gpus(n, pp);
}

/// Fill `s` with `v` via a regular point-task launch; returns the future.
Future run_fill(Runtime& rt, Store& s, double v) {
  TaskLauncher launch(rt, "fill");
  int out = launch.add_output(s);
  launch.set_leaf([out, v](TaskContext& ctx) {
    auto y = ctx.full<double>(out);
    Interval iv = ctx.elem_interval(out);
    for (coord_t i = iv.lo; i < iv.hi; ++i) y[i] = v;
    ctx.add_cost(static_cast<double>(iv.size()) * 8, 0);
  });
  return launch.execute();
}

Future run_sum(Runtime& rt, Store& s) {
  TaskLauncher launch(rt, "sum");
  int in = launch.add_input(s);
  launch.reduce_scalar(ScalarRedop::Sum);
  launch.set_leaf([in](TaskContext& ctx) {
    auto x = ctx.full<double>(in);
    Interval iv = ctx.elem_interval(in);
    double acc = 0;
    for (coord_t i = iv.lo; i < iv.hi; ++i) acc += x[i];
    ctx.add_cost(static_cast<double>(iv.size()) * 8,
                 static_cast<double>(iv.size()));
    ctx.contribute(acc);
  });
  return launch.execute();
}

TEST(Recovery, TransientRetryChargesTimeNotValues) {
  auto m = gpu_machine(3);
  double clean_makespan;
  {
    Runtime rt(m);
    Store s = rt.create_store(DType::F64, {300});
    run_fill(rt, s, 5.0);
    clean_makespan = rt.engine().makespan();
  }
  RuntimeOptions opts;
  opts.faults.enabled = true;
  opts.faults.scripted = {{0, 0}};  // first attempt of the first point fails
  Runtime rt(m, opts);
  Store s = rt.create_store(DType::F64, {300});
  Future f = run_fill(rt, s, 5.0);
  EXPECT_FALSE(f.poisoned);
  for (double x : s.span<double>()) EXPECT_DOUBLE_EQ(x, 5.0);
  EXPECT_EQ(rt.engine().stats().faults_injected, 1);
  EXPECT_EQ(rt.engine().stats().retries, 1);
  EXPECT_GT(rt.engine().makespan(), clean_makespan);
}

TEST(Recovery, RetryExhaustionPoisonsNotCorrupts) {
  auto m = gpu_machine(2);
  RuntimeOptions opts;
  opts.faults.enabled = true;
  opts.faults.task_fault_rate = 1.0;  // every attempt of every task fails
  opts.faults.max_attempts = 2;
  Runtime rt(m, opts);
  Store s = rt.create_store(DType::F64, {100});
  Future f = run_fill(rt, s, 3.0);
  EXPECT_TRUE(f.poisoned);
  EXPECT_TRUE(rt.store_poisoned(s));
  // The canonical bits are still the fault-free values (leaves always run);
  // only the metadata marks them untrustworthy.
  for (double x : s.span<double>()) EXPECT_DOUBLE_EQ(x, 3.0);
  // A reduction over the poisoned store yields a poisoned future.
  Future sum = run_sum(rt, s);
  EXPECT_TRUE(sum.valid);
  EXPECT_TRUE(sum.poisoned);
  EXPECT_GT(rt.engine().stats().faults_injected, 0);
}

TEST(Recovery, HealthyFullOverwriteClearsPoison) {
  auto m = gpu_machine(2);
  RuntimeOptions opts;
  opts.faults.enabled = true;
  opts.faults.max_attempts = 1;     // a single scripted fault exhausts
  opts.faults.scripted = {{0, 0}, {1, 0}};  // both points of the first launch
  Runtime rt(m, opts);
  Store s = rt.create_store(DType::F64, {100});
  Future f = run_fill(rt, s, 1.0);
  EXPECT_TRUE(f.poisoned);
  EXPECT_TRUE(rt.store_poisoned(s));
  // The next (healthy) launch rewrites the full extent: poison washes out.
  Future g = run_fill(rt, s, 2.0);
  EXPECT_FALSE(g.poisoned);
  EXPECT_FALSE(rt.store_poisoned(s));
  Future sum = run_sum(rt, s);
  EXPECT_FALSE(sum.poisoned);
  EXPECT_DOUBLE_EQ(sum.value, 200.0);
}

TEST(Recovery, InertInjectorMatchesDisabledMakespan) {
  auto m = gpu_machine(3);
  auto workload = [&](Runtime& rt) {
    Store a = rt.create_store(DType::F64, {512});
    Store b = rt.create_store(DType::F64, {512});
    run_fill(rt, a, 1.0);
    run_fill(rt, b, 2.0);
    run_sum(rt, a);
    run_sum(rt, b);
    return rt.engine().makespan();
  };
  // Fusion off on both sides: fault injection disables fusion, and this test
  // measures injector inertness, not window rewriting.
  RuntimeOptions plain_opts;
  plain_opts.fusion = rt::Fusion::Off;
  Runtime plain(m, plain_opts);
  double t_plain = workload(plain);
  RuntimeOptions opts;
  opts.fusion = rt::Fusion::Off;
  opts.faults.enabled = true;  // enabled but with nothing scheduled
  Runtime inert(m, opts);
  double t_inert = workload(inert);
  EXPECT_DOUBLE_EQ(t_plain, t_inert);
  EXPECT_EQ(plain.engine().report(), inert.engine().report());
}

TEST(Recovery, SameSeedSameStats) {
  auto m = gpu_machine(3);
  auto run = [&]() {
    RuntimeOptions opts;
    opts.faults.enabled = true;
    opts.faults.seed = 1234;
    opts.faults.task_fault_rate = 0.2;
    Runtime rt(m, opts);
    Store a = rt.create_store(DType::F64, {512});
    for (int i = 0; i < 10; ++i) run_fill(rt, a, static_cast<double>(i));
    run_sum(rt, a);
    return rt.engine().report();
  };
  std::string first = run();
  std::string second = run();
  EXPECT_GT(first.find("faults{"), 0U);
  EXPECT_EQ(first, second);
}

TEST(Recovery, OomPressureSpillsInsteadOfFailing) {
  sim::PerfParams pp;
  auto m = sim::Machine::gpus(2, pp);
  // Shrink every framebuffer to ~40 KB of usable space.
  double fb_cap = 0;
  for (const auto& mem : m.memories()) {
    if (mem.kind == sim::MemKind::Frame) fb_cap = mem.capacity;
  }
  RuntimeOptions opts;
  opts.faults.enabled = true;
  opts.faults.oom_pressure_bytes = fb_cap - 40e3;

  Runtime rt(m, opts);
  // Keep many live stores cycling through the tiny framebuffers; without
  // spilling this would exceed capacity quickly.
  std::vector<Store> stores;
  for (int i = 0; i < 12; ++i) {
    stores.push_back(rt.create_store(DType::F64, {1000}));
    run_fill(rt, stores.back(), static_cast<double>(i));
  }
  // Everything still reads back bit-exact after eviction round-trips.
  for (int i = 0; i < 12; ++i) {
    Future sum = run_sum(rt, stores[static_cast<std::size_t>(i)]);
    EXPECT_DOUBLE_EQ(sum.value, 1000.0 * i);
    EXPECT_FALSE(sum.poisoned);
  }
  EXPECT_GT(rt.engine().stats().spills, 0);
}

TEST(Recovery, SpillDisabledSurfacesOom) {
  sim::PerfParams pp;
  auto m = sim::Machine::gpus(2, pp);
  double fb_cap = 0;
  for (const auto& mem : m.memories()) {
    if (mem.kind == sim::MemKind::Frame) fb_cap = mem.capacity;
  }
  RuntimeOptions opts;
  opts.spill_on_oom = false;
  opts.faults.enabled = true;
  opts.faults.oom_pressure_bytes = fb_cap - 40e3;
  Runtime rt(m, opts);
  std::vector<Store> stores;
  EXPECT_THROW(
      {
        for (int i = 0; i < 12; ++i) {
          stores.push_back(rt.create_store(DType::F64, {1000}));
          run_fill(rt, stores.back(), 1.0);
        }
      },
      OutOfMemoryError);
}

TEST(Recovery, NodeLossPoisonsResidentStores) {
  sim::PerfParams pp;
  auto m = sim::Machine::gpus(4, pp, 2);  // 2 nodes x 2 GPUs
  RuntimeOptions opts;
  opts.faults.enabled = true;
  opts.faults.node_loss_time = 1e-9;  // after the fill, before the sum
  opts.faults.node_loss_node = 1;
  opts.faults.node_recovery_seconds = 0.1;
  Runtime rt(m, opts);
  Store s = rt.create_store(DType::F64, {400});
  run_fill(rt, s, 4.0);  // writes land on GPUs of both nodes
  // The next launch polls the schedule, loses node 1, and poisons the
  // pieces whose only copy lived there.
  Future sum = run_sum(rt, s);
  EXPECT_TRUE(rt.consume_node_loss());
  EXPECT_FALSE(rt.consume_node_loss());  // flag is one-shot
  EXPECT_TRUE(sum.poisoned);
  EXPECT_TRUE(rt.store_poisoned(s));
  EXPECT_GE(rt.engine().makespan(), 0.1);  // the outage stalled the machine
  EXPECT_EQ(rt.engine().stats().faults_injected, 1);
}

}  // namespace
}  // namespace legate::rt
